package robustatomic

import (
	"flag"
	"fmt"
	"strings"
	"testing"

	"robustatomic/internal/obs"
)

// chaosSeedFlag replays a chaos-enabled test under the exact fault streams
// of a logged failure: every such test routes its base seed through
// chaosSeedFor, so one flag pins the whole run.
var chaosSeedFlag = flag.Int64("chaos.seed", 0, "override the base seed of chaos-enabled tests (replay a logged failure)")

// chaosSeedFor returns the chaos-enabled test's base seed — def unless
// -chaos.seed overrides it — and registers a cleanup that, if the test
// fails, logs the seed, the mixed per-object fault streams it derives for
// the given object ids, and the one-flag replay command. Chaos tests are
// probabilistic in coverage but deterministic per seed; this makes any
// failure reproducible from the log line alone.
func chaosSeedFor(t *testing.T, def int64, sids ...int) int64 {
	t.Helper()
	seed := def
	if *chaosSeedFlag != 0 {
		seed = *chaosSeedFlag
	}
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		if len(sids) > 0 {
			per := make([]string, len(sids))
			for i, sid := range sids {
				per[i] = fmt.Sprintf("s%d=%d", sid, mixSeed(seed, int64(sid)))
			}
			t.Logf("chaos seed %d (mixed per-object fault seeds: %s)", seed, strings.Join(per, " "))
		} else {
			t.Logf("chaos seed %d", seed)
		}
		t.Logf("replay: go test -run '^%s$' -v -args -chaos.seed=%d", t.Name(), seed)
	})
	return seed
}

// chaosTracer returns a tracer for a chaos-enabled test's Options.Tracer,
// tracing every op, and registers a cleanup that — if the test fails — dumps
// the round traces of every failed op next to chaosSeedFor's replay command:
// which rounds ran, which objects answered, and (for multiplexed replies)
// which register sub-bundles each reply actually carried.
func chaosTracer(t *testing.T) *obs.Tracer {
	t.Helper()
	tr := obs.NewTracer(64, 1)
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		t.Logf("failed-op round traces (dump-on-failure):\n%s", tr.FormatFailed())
	})
	return tr
}
