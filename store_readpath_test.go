package robustatomic

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestStoreGetElidedRounds pins the adaptive read's fast case: on a stable
// shard (last write complete on a full quorum) a Get is exactly the two
// query rounds — the write-back the paper's worst-case read needs is
// certified redundant by the queries themselves and elided.
func TestStoreGetElidedRounds(t *testing.T) {
	st, rounds, _ := countingStore(t, 41)
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		atomic.StoreInt64(rounds, 0)
		v, err := st.Get("k")
		if err != nil || v != "v" {
			t.Fatalf("Get %d = %q, %v; want v", i, v, err)
		}
		if got := atomic.LoadInt64(rounds); got != 2 {
			t.Fatalf("stable Get %d took %d rounds, want 2 (write-back elided)", i, got)
		}
	}
}

// TestStoreGetFallbackOnIncompleteWrite pins the worst case Proposition 1
// proves necessary: when the queried quorum cannot certify the decided
// write as complete, the Get pays the full 4 rounds (2 queries + the
// 2-round write-back) — and a later Get against a recovered quorum earns
// the elision back.
func TestStoreGetFallbackOnIncompleteWrite(t *testing.T) {
	st, rounds, _ := countingStore(t, 42)
	c := st.c
	if err := st.Put("k", "v1"); err != nil {
		t.Fatal(err)
	}
	// v2 lands on {1,2,3} only; the read then quorum-switches to {1,2,4},
	// where only two objects have seen v2 — completeness stays in doubt.
	if err := c.Partition(4); err != nil {
		t.Fatal(err)
	}
	if err := st.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if err := c.Heal(4); err != nil {
		t.Fatal(err)
	}
	if err := c.Partition(3); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(rounds, 0)
	v, err := st.Get("k")
	if err != nil || v != "v2" {
		t.Fatalf("Get = %q, %v; want v2", v, err)
	}
	if got := atomic.LoadInt64(rounds); got != 4 {
		t.Fatalf("incomplete-write Get took %d rounds, want 4 (full write-back)", got)
	}
	// Quorum recovered: v2 is now held by {1,2,3} (and re-asserted by the
	// write-back), so the next Get elides again.
	if err := c.Heal(3); err != nil {
		t.Fatal(err)
	}
	atomic.StoreInt64(rounds, 0)
	if v, err := st.Get("k"); err != nil || v != "v2" {
		t.Fatalf("recovered Get = %q, %v; want v2", v, err)
	}
	if got := atomic.LoadInt64(rounds); got != 2 {
		t.Fatalf("recovered Get took %d rounds, want 2 (elision earned back)", got)
	}
}

// TestStoreGetNoElisionUnderByzantine pins the elision condition's
// soundness against active adversaries: a stale or equivocating object can
// WITHHOLD completeness evidence (costing the read its write-back rounds)
// but can never forge the S−t w-reports that would let a read elide the
// write-back of a genuinely incomplete decision — and the read still
// returns the freshest certified value.
func TestStoreGetNoElisionUnderByzantine(t *testing.T) {
	for _, mode := range []string{"stale", "equivocate"} {
		t.Run(mode, func(t *testing.T) {
			st, rounds, _ := countingStore(t, 43)
			c := st.c
			if err := st.Put("k", "v1"); err != nil {
				t.Fatal(err)
			}
			if err := c.InjectFault(1, mode); err != nil {
				t.Fatal(err)
			}
			if mode == "equivocate" {
				// The equivocator answers readers from a state frozen at the
				// first read it serves: freeze it at v1, before v2 lands.
				if v, err := st.Get("k"); err != nil || v != "v1" {
					t.Fatalf("freeze Get = %q, %v; want v1", v, err)
				}
			}
			if err := st.Put("k", "v2"); err != nil {
				t.Fatal(err)
			}
			// Cut one CORRECT holder of v2 off: the queried quorum is now
			// {byzantine 1, correct 2, correct 3} — two genuine w-reports of
			// v2, one forged-or-frozen view. Elision must not fire.
			if err := c.Partition(4); err != nil {
				t.Fatal(err)
			}
			atomic.StoreInt64(rounds, 0)
			v, err := st.Get("k")
			if err != nil || v != "v2" {
				t.Fatalf("Get = %q, %v; want v2", v, err)
			}
			if got := atomic.LoadInt64(rounds); got != 4 {
				t.Fatalf("Byzantine-disturbed Get took %d rounds, want 4 (elision withheld, never forged)", got)
			}
		})
	}
}

// TestStoreGetCoalescing pins the read-side group commit: Gets that arrive
// while a shard read is in flight coalesce into one pending batch served by
// a SINGLE protocol read once the in-flight read completes — K concurrent
// Gets cost 2 rounds, not 2K. The test plays the in-flight leader itself
// (taking the leadership flag, then handing off exactly as a finishing
// leader does), which makes the coalescing window deterministic.
func TestStoreGetCoalescing(t *testing.T) {
	st, rounds, _ := countingStore(t, 44)
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	sh, err := st.shards.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// Pose as a running read leader: arriving Gets must now coalesce.
	sh.rmu.Lock()
	sh.greading = true
	sh.rmu.Unlock()

	const K = 6
	var wg sync.WaitGroup
	errs := make([]error, K)
	vals := make([]string, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			vals[i], errs[i] = st.Get("k")
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.rmu.Lock()
		joined := 0
		if sh.gnext != nil {
			joined = sh.gnext.waiters
		}
		sh.rmu.Unlock()
		if joined == K {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d Gets coalesced into the pending batch", joined, K)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Finish as the leader would: hand the pending batch its leadership
	// token. One waiter runs the shared read; the rest ride it.
	atomic.StoreInt64(rounds, 0)
	sh.rmu.Lock()
	sh.gnext.lead <- struct{}{}
	sh.rmu.Unlock()
	wg.Wait()
	for i := 0; i < K; i++ {
		if errs[i] != nil || vals[i] != "v" {
			t.Fatalf("coalesced Get %d = %q, %v; want v", i, vals[i], errs[i])
		}
	}
	if got := atomic.LoadInt64(rounds); got != 2 {
		t.Fatalf("%d coalesced Gets took %d rounds, want 2 (one shared elided read)", K, got)
	}
	// The shard must be back in its idle state.
	sh.rmu.Lock()
	idle := !sh.greading && sh.gnext == nil
	sh.rmu.Unlock()
	if !idle {
		t.Fatal("shard read state not idle after the batch drained")
	}
}

// TestStoreGetCertifiedTableCache pins the decode cache: consecutive Gets
// deciding on the same certified timestamp share ONE decoded table (the
// second read skips the decode entirely), and any flush that moves the
// register head drops the entry.
func TestStoreGetCertifiedTableCache(t *testing.T) {
	st, _, _ := countingStore(t, 45)
	for i := 0; i < 4; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), "v"); err != nil {
			t.Fatal(err)
		}
	}
	sh, err := st.shards.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := sh.sharedRead()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sh.sharedRead()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(t1).Pointer() != reflect.ValueOf(t2).Pointer() {
		t.Fatal("second read at the same certified timestamp decoded a fresh table (cache miss)")
	}
	// A flush moves the head and must invalidate; the next read decides the
	// new timestamp and decodes anew.
	if err := st.Put("k0", "v2"); err != nil {
		t.Fatal(err)
	}
	sh.cacheMu.Lock()
	invalidated := sh.cacheTab == nil
	sh.cacheMu.Unlock()
	if !invalidated {
		t.Fatal("flush did not invalidate the certified-table cache")
	}
	t3, err := sh.sharedRead()
	if err != nil {
		t.Fatal(err)
	}
	if reflect.ValueOf(t3).Pointer() == reflect.ValueOf(t1).Pointer() {
		t.Fatal("read after flush returned the stale cached table")
	}
	if t3["k0"] != "v2" || t3["k1"] != "v" {
		t.Fatalf("post-flush table = %v", t3)
	}
	// The cache must never alias the committer-private table (the committer
	// mutates its copy in place between flushes).
	sh.cacheMu.Lock()
	aliased := sh.cacheTab != nil &&
		reflect.ValueOf(sh.cacheTab).Pointer() == reflect.ValueOf(sh.table).Pointer()
	sh.cacheMu.Unlock()
	if aliased {
		t.Fatal("certified-table cache aliases the committer's table")
	}
}
