module robustatomic

go 1.22
