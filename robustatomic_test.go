package robustatomic

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestPublicAPIQuickstart(t *testing.T) {
	c, err := NewCluster(Options{Faults: 1, Readers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Objects() != 4 || c.Faults() != 1 {
		t.Fatalf("geometry: S=%d t=%d", c.Objects(), c.Faults())
	}
	w := c.Writer()
	if err := w.Write("hello"); err != nil {
		t.Fatal(err)
	}
	r, err := c.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "hello" {
		t.Errorf("read = %q", v)
	}
}

func TestPublicAPIInitialValueEmpty(t *testing.T) {
	c, err := NewCluster(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r, err := c.Reader(1)
	if err != nil {
		t.Fatal(err)
	}
	v, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "" {
		t.Errorf("initial read = %q", v)
	}
}

func TestPublicAPIFaultInjection(t *testing.T) {
	for _, mode := range []string{"silent", "garbage", "stale", "equivocate", "flaky"} {
		c, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		w := c.Writer()
		if err := w.Write("v1"); err != nil {
			t.Fatal(err)
		}
		if err := c.InjectFault(1, mode); err != nil {
			t.Fatal(err)
		}
		if err := w.Write("v2"); err != nil {
			t.Fatalf("%s: write: %v", mode, err)
		}
		r, _ := c.Reader(1)
		v, err := r.Read()
		if err != nil {
			t.Fatalf("%s: read: %v", mode, err)
		}
		if v != "v2" {
			t.Errorf("%s: read = %q, want v2", mode, v)
		}
		c.Close()
	}
	c, _ := NewCluster(Options{})
	defer c.Close()
	if err := c.InjectFault(1, "nonsense"); err == nil {
		t.Error("unknown fault mode accepted")
	}
}

func TestPublicAPISecretModel(t *testing.T) {
	c, err := NewCluster(Options{Faults: 1, Readers: 2, Model: SecretTokens, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	w := c.Writer()
	if err := w.Write("s"); err != nil {
		t.Fatal(err)
	}
	r, _ := c.Reader(2)
	v, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "s" {
		t.Errorf("read = %q", v)
	}
}

func TestPublicAPIConcurrent(t *testing.T) {
	c, err := NewCluster(Options{Faults: 1, Readers: 3, Seed: 4, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := c.Writer()
		for i := 1; i <= 5; i++ {
			if err := w.Write(fmt.Sprintf("v%d", i)); err != nil {
				t.Errorf("write: %v", err)
			}
		}
	}()
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := c.Reader(i)
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 3; j++ {
				if _, err := r.Read(); err != nil {
					t.Errorf("read: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestPublicAPIReaderBounds(t *testing.T) {
	c, err := NewCluster(Options{Readers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Reader(0); err == nil {
		t.Error("reader 0 accepted")
	}
	if _, err := c.Reader(3); err == nil {
		t.Error("reader beyond R accepted")
	}
}

func TestConnectValidatesGeometry(t *testing.T) {
	if _, err := Connect([]string{"x:1", "x:2"}, Options{Faults: 1}); err == nil {
		t.Error("2 addresses accepted for t=1 (needs 4)")
	}
}
