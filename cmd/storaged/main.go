// Command storaged runs one storage object as a TCP daemon. A robust atomic
// deployment needs 3t+1 of these (one per object id):
//
//	storaged -id 1 -addr :7001 -data-dir /var/lib/robustatomic/s1 &
//	storaged -id 2 -addr :7002 -data-dir /var/lib/robustatomic/s2 &
//	storaged -id 3 -addr :7003 -data-dir /var/lib/robustatomic/s3 &
//	storaged -id 4 -addr :7004 -data-dir /var/lib/robustatomic/s4 &
//
// One daemon set hosts any number of independent register instances, lazily
// instantiated as clients address them — the single register of
// storctl read/write, and all N shards of the keyed Store layer behind
// storctl put/get.
//
// # Durability
//
// With -data-dir set, every state-mutating request is logged to a
// write-ahead log before the reply leaves and the state is periodically
// snapshotted and the log truncated, so a crashed or kill -9'd daemon
// restarts exactly where it stopped — a correct-but-slow object instead of
// an amnesiac one that silently burns the fault budget. -fsync picks the
// machine-crash window: "always" fsyncs before every ack (group-committed
// under load), "batch" (default) fsyncs in the background every couple of
// milliseconds, "off" leaves flushing to the OS. All modes survive a killed
// process; fsync only matters when the whole machine dies. An empty
// -data-dir keeps the daemon purely in-memory, exactly the old behavior.
//
// To replace a dead machine, start a blank daemon on the old address and
// reconstitute it from the live quorum with `storctl repair`.
//
// # Chaos
//
// The -chaos flag makes the object Byzantine for demonstrations and drills:
//
//	garbage     fabricate huge-timestamp replies, drop writes
//	silent      process every message but never reply
//	flaky       honest, but drop each reply with -chaos-drop probability
//	            (seeded by -chaos-seed)
//	stale       acknowledge writes but serve reads from a state frozen at
//	            injection time, per register instance
//	equivocate  split-brain: honest to the writer, stale to readers
//
// Orthogonally, -chaos-batch-drop and -chaos-batch-shuffle attack the
// generation-3 batched wire frames specifically: drop individual
// sub-bundles out of batched replies, or scramble their order, without
// touching single-register traffic. They compose with any -chaos mode.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"robustatomic/internal/obs"
	"robustatomic/internal/persist"
	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
)

func main() {
	id := flag.Int("id", 1, "object id (1-based)")
	addr := flag.String("addr", ":7001", "listen address")
	dataDir := flag.String("data-dir", "", "durability directory (empty = in-memory only)")
	fsync := flag.String("fsync", "batch", "WAL fsync policy: always | batch | off")
	chaos := flag.String("chaos", "", "Byzantine behavior: garbage | silent | flaky | stale | equivocate (empty = honest)")
	chaosDrop := flag.Float64("chaos-drop", 0.5, "flaky: probability of dropping a reply")
	chaosSeed := flag.Int64("chaos-seed", 1, "flaky: RNG seed for the drop pattern")
	chaosBatchDrop := flag.Float64("chaos-batch-drop", 0, "probability of dropping each sub-bundle from a batched reply")
	chaosBatchShuffle := flag.Bool("chaos-batch-shuffle", false, "scramble sub-bundle order in batched replies")
	debugAddr := flag.String("debug-addr", "", "observability HTTP address serving /metrics, /debug/vars and /debug/pprof (empty = off)")
	flag.Parse()

	mode, err := persist.ParseFsyncMode(*fsync)
	if err != nil {
		fmt.Fprintln(os.Stderr, "storaged:", err)
		os.Exit(2)
	}
	s, err := tcpnet.NewServerWith(*id, *addr, tcpnet.ServerOptions{DataDir: *dataDir, Fsync: mode})
	if err != nil {
		fmt.Fprintln(os.Stderr, "storaged:", err)
		os.Exit(1)
	}
	defer s.Close()
	switch *chaos {
	case "":
	case "garbage":
		s.SetBehavior(server.Garbage{Level: 1 << 30, Val: "forged"})
	case "silent":
		s.SetBehavior(server.Silent{})
	case "flaky":
		s.SetBehavior(server.Flaky{
			Rand:     rand.New(rand.NewSource(*chaosSeed)),
			DropProb: *chaosDrop,
		})
	case "stale":
		s.SetBehavior(&server.Stale{})
	case "equivocate":
		s.SetBehavior(server.Equivocate{Readers: &server.Stale{}})
	default:
		fmt.Fprintf(os.Stderr, "storaged: unknown chaos mode %q\n", *chaos)
		os.Exit(2)
	}
	if *chaosBatchDrop > 0 || *chaosBatchShuffle {
		s.SetBatchChaos(rand.New(rand.NewSource(*chaosSeed)), *chaosBatchDrop, *chaosBatchShuffle)
	}
	if *debugAddr != "" {
		// Listen synchronously so a bad address fails loudly at startup (and
		// integration scripts can curl the moment the banner prints), then
		// serve in the background for the life of the daemon.
		ln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "storaged: debug listener:", err)
			os.Exit(1)
		}
		go func() {
			if err := http.Serve(ln, obs.Handler(obs.Default, nil)); err != nil {
				fmt.Fprintln(os.Stderr, "storaged: debug server:", err)
			}
		}()
		fmt.Printf("storaged: debug endpoints on http://%s/metrics /debug/vars /debug/pprof\n", ln.Addr())
	}
	durability := "volatile"
	if *dataDir != "" {
		durability = fmt.Sprintf("wal@%s fsync=%s", *dataDir, mode)
	}
	fmt.Printf("storaged: object s%d serving on %s (%s, chaos=%q)\n", *id, s.Addr(), durability, *chaos)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("storaged: shutting down (%d register instances hosted)\n", s.Registers())
}
