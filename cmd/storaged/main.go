// Command storaged runs one storage object as a TCP daemon. A robust atomic
// deployment needs 3t+1 of these (one per object id):
//
//	storaged -id 1 -addr :7001 &
//	storaged -id 2 -addr :7002 &
//	storaged -id 3 -addr :7003 &
//	storaged -id 4 -addr :7004 &
//
// One daemon set hosts any number of independent register instances, lazily
// instantiated as clients address them — the single register of
// storctl read/write, and all N shards of the keyed Store layer behind
// storctl put/get. The -chaos flag makes the object Byzantine (for
// demonstrations: "garbage" or "silent").
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
)

func main() {
	id := flag.Int("id", 1, "object id (1-based)")
	addr := flag.String("addr", ":7001", "listen address")
	chaos := flag.String("chaos", "", "Byzantine behavior: garbage | silent (empty = honest)")
	flag.Parse()

	s, err := tcpnet.NewServer(*id, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "storaged:", err)
		os.Exit(1)
	}
	defer s.Close()
	switch *chaos {
	case "":
	case "garbage":
		s.SetBehavior(server.Garbage{Level: 1 << 30, Val: "forged"})
	case "silent":
		s.SetBehavior(server.Silent{})
	default:
		fmt.Fprintf(os.Stderr, "storaged: unknown chaos mode %q\n", *chaos)
		os.Exit(2)
	}
	fmt.Printf("storaged: object s%d serving on %s (chaos=%q)\n", *id, s.Addr(), *chaos)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Printf("storaged: shutting down (%d register instances hosted)\n", s.Registers())
}
