// Command storbench is an open-loop load generator for the keyed Store: it
// issues Put/Get traffic at a fixed target arrival rate (NOT as fast as the
// previous reply allows), so queueing delay shows up in the latency
// distribution instead of silently throttling the offered load — the
// coordinated-omission-free methodology. Latency is measured from each
// operation's SCHEDULED arrival time to its completion and recorded into
// log-bucketed HDR histograms (internal/hdr); a comma-separated -qps list
// sweeps a whole throughput-vs-latency curve in one invocation (E14 in
// EXPERIMENTS.md).
//
// Examples:
//
//	storbench -qps 500,1000,2000,4000 -duration 5s -read-frac 0.9
//	storbench -servers host1:7001,host2:7001,host3:7001,host4:7001 -qps 1000 -format csv
//	storbench -qps 2000 -dist uniform -chaos flaky   # in-process fault drill
//	storbench -preset read-heavy -qps 1000,4000      # adaptive read path sweep
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic"
	"robustatomic/internal/hdr"
	"robustatomic/internal/obs"
)

type stepResult struct {
	TargetQPS   int     `json:"target_qps"`
	AchievedQPS float64 `json:"achieved_qps"`
	Ops         int64   `json:"ops"`
	Errors      int64   `json:"errors"`
	P50us       int64   `json:"p50_us"`
	P90us       int64   `json:"p90_us"`
	P99us       int64   `json:"p99_us"`
	P999us      int64   `json:"p999_us"`
	MaxUs       int64   `json:"max_us"`
	MeanUs      float64 `json:"mean_us"`
}

func main() {
	qpsList := flag.String("qps", "1000", "comma-separated target arrival rates to sweep (ops/s)")
	duration := flag.Duration("duration", 5*time.Second, "measured duration per qps step")
	warmup := flag.Duration("warmup", time.Second, "per-step warmup (load offered, latencies discarded)")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of operations that are Gets")
	keys := flag.Int("keys", 1024, "key-space size")
	dist := flag.String("dist", "zipf", "key popularity distribution: zipf | uniform")
	zipfS := flag.Float64("zipf-s", 1.1, "zipf skew parameter (>1; higher = more skewed)")
	valueSize := flag.Int("value-size", 64, "written value size in bytes")
	workers := flag.Int("workers", 64, "concurrent executors draining the arrival queue")
	servers := flag.String("servers", "", "comma-separated daemon addresses (empty = in-process cluster)")
	shards := flag.Int("shards", 16, "Store shards")
	faults := flag.Int("faults", 1, "fault budget t (cluster size 3t+1)")
	readers := flag.Int("readers", 8, "reader handles in the per-shard read pools")
	seed := flag.Int64("seed", 1, "workload RNG seed")
	format := flag.String("format", "table", "output: table | csv | json")
	chaos := flag.String("chaos", "", "in-process only: make object 2 Byzantine (flaky | stale | equivocate | silent | garbage)")
	obsDump := flag.Bool("obs", false, "after the sweep, print the client-side obs snapshot (round counts, flush-path mix, mux state)")
	preset := flag.String("preset", "", "workload preset: read-heavy (0.98 Gets, zipf skew 1.3 over 128 keys, 16 reader handles — drives the adaptive read path: elision, coalescing, table cache); explicitly-set flags win")
	flag.Parse()

	// Presets fill in defaults for flags the user did NOT set explicitly:
	// -preset read-heavy -keys 4096 sweeps a large read-heavy key space.
	if *preset != "" {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		switch *preset {
		case "read-heavy":
			if !set["read-frac"] {
				*readFrac = 0.98
			}
			if !set["dist"] {
				*dist = "zipf"
			}
			if !set["zipf-s"] {
				*zipfS = 1.3
			}
			if !set["keys"] {
				*keys = 128
			}
			if !set["readers"] {
				*readers = 16
			}
		default:
			fmt.Fprintf(os.Stderr, "storbench: unknown -preset %q (want read-heavy)\n", *preset)
			os.Exit(2)
		}
	}

	var targets []int
	for _, f := range strings.Split(*qpsList, ",") {
		q, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || q <= 0 {
			fmt.Fprintf(os.Stderr, "storbench: bad -qps entry %q\n", f)
			os.Exit(2)
		}
		targets = append(targets, q)
	}

	opts := robustatomic.Options{Faults: *faults, Readers: *readers, Seed: *seed}
	var (
		cluster *robustatomic.Cluster
		err     error
	)
	if *servers == "" {
		cluster, err = robustatomic.NewCluster(opts)
	} else {
		cluster, err = robustatomic.Connect(strings.Split(*servers, ","), opts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "storbench: %v\n", err)
		os.Exit(1)
	}
	defer cluster.Close()
	if *chaos != "" {
		if err := cluster.InjectFault(2, *chaos); err != nil {
			fmt.Fprintf(os.Stderr, "storbench: %v\n", err)
			os.Exit(1)
		}
	}
	store, err := cluster.NewStore(robustatomic.StoreOptions{Shards: *shards})
	if err != nil {
		fmt.Fprintf(os.Stderr, "storbench: %v\n", err)
		os.Exit(1)
	}

	payload := strings.Repeat("x", *valueSize)
	var results []stepResult
	for _, q := range targets {
		results = append(results, runStep(store, q, *duration, *warmup, *readFrac, *keys, *dist, *zipfS, payload, *workers, *seed))
	}
	emit(results, *format)
	if *obsDump {
		fmt.Println("\n== client obs snapshot")
		fmt.Print(obs.Default.Snapshot().Format())
	}
}

// runStep offers load at target ops/s for warmup+duration and returns the
// measured-window statistics.
func runStep(store *robustatomic.Store, target int, duration, warmup time.Duration, readFrac float64, keys int, dist string, zipfS float64, payload string, workers int, seed int64) stepResult {
	interval := time.Duration(int64(time.Second) / int64(target))
	total := int((warmup + duration).Seconds() * float64(target))
	arrivals := make(chan time.Time, total+workers) // full-depth buffer keeps the loop open
	var errs atomic.Int64

	hists := make([]*hdr.Histogram, workers)
	var wg sync.WaitGroup
	start := time.Now()
	measureFrom := start.Add(warmup)
	for w := 0; w < workers; w++ {
		hists[w] = &hdr.Histogram{}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, zipfS, 1, uint64(keys-1))
			h := hists[w]
			for sched := range arrivals {
				var k uint64
				if dist == "uniform" {
					k = uint64(rng.Intn(keys))
				} else {
					k = zipf.Uint64()
				}
				key := fmt.Sprintf("key%06d", k)
				var err error
				if rng.Float64() < readFrac {
					_, err = store.Get(key)
				} else {
					err = store.Put(key, payload)
				}
				if sched.Before(measureFrom) {
					continue
				}
				if err != nil {
					errs.Add(1)
					continue
				}
				h.Record(time.Since(sched).Microseconds())
			}
		}(w)
	}

	// Open-loop arrival process: operation i is due at start + i·interval,
	// independent of how the previous operations fared.
	for i := 0; i < total; i++ {
		due := start.Add(time.Duration(i) * interval)
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		arrivals <- due
	}
	close(arrivals)
	wg.Wait()

	merged := &hdr.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	elapsed := time.Since(measureFrom)
	return stepResult{
		TargetQPS:   target,
		AchievedQPS: float64(merged.Count()) / elapsed.Seconds(),
		Ops:         merged.Count(),
		Errors:      errs.Load(),
		P50us:       merged.Quantile(0.50),
		P90us:       merged.Quantile(0.90),
		P99us:       merged.Quantile(0.99),
		P999us:      merged.Quantile(0.999),
		MaxUs:       merged.Max(),
		MeanUs:      merged.Mean(),
	}
}

func emit(results []stepResult, format string) {
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		enc.Encode(results)
	case "csv":
		fmt.Println("target_qps,achieved_qps,ops,errors,p50_us,p90_us,p99_us,p999_us,max_us,mean_us")
		for _, r := range results {
			fmt.Printf("%d,%.1f,%d,%d,%d,%d,%d,%d,%d,%.1f\n",
				r.TargetQPS, r.AchievedQPS, r.Ops, r.Errors, r.P50us, r.P90us, r.P99us, r.P999us, r.MaxUs, r.MeanUs)
		}
	default:
		fmt.Printf("%10s %12s %8s %7s %9s %9s %9s %9s %9s\n",
			"target", "achieved", "ops", "errors", "p50", "p90", "p99", "p99.9", "max")
		for _, r := range results {
			fmt.Printf("%10d %12.1f %8d %7d %8dµs %8dµs %8dµs %8dµs %8dµs\n",
				r.TargetQPS, r.AchievedQPS, r.Ops, r.Errors, r.P50us, r.P90us, r.P99us, r.P999us, r.MaxUs)
		}
	}
}
