// Command storctl is the client for a storaged cluster. It speaks both
// APIs: the paper's single robust atomic register (write/read) and the
// sharded multi-key Store layer (put/get/del), which hashes keys onto
// -shards independent registers hosted on the same daemons. It is also the
// operator tool for membership: repair reconstitutes a blank replacement
// daemon from a quorum of its live peers; probe inspects one daemon's raw
// register state; doctor sweeps the whole cluster for diverged register
// state; and config/join/leave/move query and change the epoch-versioned
// membership live (state migrates to incoming daemons automatically, and
// running clients refetch the new configuration transparently). reseed
// re-installs the certified configuration into a newcomer a join/move
// decided but failed to seed.
//
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 write hello
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 read
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 put order:42 shipped
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 get order:42
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 repair 3
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 probe 3
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 doctor
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 config
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 move 2 h:7005
//
// The -servers list is only the BOOTSTRAP membership: if the cluster was
// reconfigured since, operations transparently chase the wrong-epoch
// redirect to the active configuration (storctl config shows it).
//
// Every invocation recovers shard state from the cluster before writing, so
// puts compose across invocations. The registers are multi-writer:
// concurrent puts from different processes are safe PROVIDED each process
// uses a distinct -writer id (embedded in every timestamp it issues) and a
// distinct -reader index (reader identities own their write-back registers
// exclusively). Concurrent puts to the same key resolve atomically to one
// of the written values; concurrent puts to different keys of the same
// shard are last-writer-wins at shard granularity. All clients of one
// deployment must agree on -shards — it determines which register a key
// routes to, and how many register instances repair reconstitutes
// (instance 0 plus one per shard).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic"
	"robustatomic/internal/config"
	"robustatomic/internal/obs"
	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"
)

func main() {
	servers := flag.String("servers", "", "comma-separated object addresses (3t+1 of them, in id order)")
	t := flag.Int("t", 1, "fault budget")
	readers := flag.Int("readers", 2, "total reader count R")
	readerIdx := flag.Int("reader", 1, "this client's reader index (1..R; concurrent clients use distinct indices)")
	writerID := flag.Int("writer", 0, "this client's writer id (concurrent writing clients use distinct ids)")
	shards := flag.Int("shards", 8, "shard count of the keyed store (put/get/del, repair/probe)")
	trace := flag.Int("trace", 0, "per-op round tracing: sample one op in N (1 = every op, 0 = off); failed-op traces dump to stderr on error")
	flag.Parse()

	if err := run(*servers, *t, *readers, *readerIdx, *writerID, *shards, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "storctl:", err)
		os.Exit(1)
	}
}

func run(servers string, t, readers, readerIdx, writerID, shards, trace int, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: storctl [flags] write <value> | read | put <key> <value> | get <key> | del <key> | burst <prefix> <count> | getburst <prefix> <count> | stats <debug-addr>... | repair <object-id> | probe <object-id> | doctor | config | join <addr> | leave <slot> | move <slot> <addr> | reseed <addr>")
	}
	addrs := strings.Split(servers, ",")
	if args[0] == "stats" {
		// Stats scrapes daemon debug endpoints directly; no cluster needed.
		if len(args) < 2 {
			return fmt.Errorf("usage: storctl stats <debug-addr>... (the storaged -debug-addr addresses)")
		}
		return stats(args[1:])
	}
	if args[0] == "probe" {
		// Probe talks to a single daemon directly; no cluster needed. The
		// writer's register prints for every instance; the per-reader
		// write-back registers print only when non-blank (there are R of them
		// per instance and most stay untouched).
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl probe <object-id>")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil || id < 1 || id > len(addrs) {
			return fmt.Errorf("probe: object id %q out of 1..%d", args[1], len(addrs))
		}
		d, err := tcpnet.DialDirect(addrs[id-1], 5*time.Second)
		if err != nil {
			return err
		}
		defer d.Close()
		for reg := 0; reg <= shards; reg++ {
			pw, w, err := d.Probe(reg)
			if err != nil {
				return err
			}
			fmt.Printf("s%d reg %d: pw=%s w=%s\n", id, reg, pw, w)
			for r := 1; r <= readers; r++ {
				pw, w, err := d.ProbeReg(reg, types.ReaderReg(r))
				if err != nil {
					return err
				}
				if pw.IsBottom() && w.IsBottom() {
					continue
				}
				fmt.Printf("s%d reg %d r%d: pw=%s w=%s\n", id, reg, r, pw, w)
			}
		}
		return nil
	}
	if args[0] == "doctor" {
		// Doctor scans every daemon's raw register state directly; no cluster
		// needed.
		if len(args) != 1 {
			return fmt.Errorf("usage: storctl doctor")
		}
		return doctor(addrs, shards, readers)
	}
	var tracer *obs.Tracer
	if trace > 0 {
		tracer = obs.NewTracer(256, trace)
		// Dump the round traces of every failed op next to the error: which
		// rounds ran, which objects replied, and what the replies carried.
		defer func() {
			if failed := tracer.Failed(); len(failed) > 0 {
				fmt.Fprintln(os.Stderr, "== failed-op round traces")
				fmt.Fprint(os.Stderr, tracer.FormatFailed())
			}
		}()
	}
	cluster, err := robustatomic.Connect(addrs, robustatomic.Options{Faults: t, Readers: readers, WriterID: writerID, Tracer: tracer})
	if err != nil {
		return err
	}
	defer cluster.Close()
	// The keyed store's read pool uses only this client's own reader
	// identity, so concurrent storctl processes with distinct -reader
	// indices never contend for a write-back register.
	storeOpts := robustatomic.StoreOptions{Shards: shards, Readers: []int{readerIdx}}
	switch args[0] {
	case "write":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl write <value>")
		}
		if err := cluster.Writer().Write(args[1]); err != nil {
			return err
		}
		fmt.Println("OK (2 rounds uncontended; fallback on interference)")
		return nil
	case "read":
		r, err := cluster.Reader(readerIdx)
		if err != nil {
			return err
		}
		v, err := r.Read()
		if err != nil {
			return err
		}
		fmt.Printf("%q (2 rounds stable; 4 worst case)\n", v)
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl put <key> <value>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		if err := st.Put(args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl get <key>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		v, err := st.Get(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%q (shard %d/%d)\n", v, st.ShardOf(args[1]), st.Shards())
		return nil
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl del <key>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		if err := st.Delete(args[1]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	case "burst":
		// burst hammers the store with <count> concurrent puts over ONE
		// pipelined connection set: keys <prefix>:1..count, value v<i>. This
		// is the integration-drill workload for the multiplexed wire — many
		// rounds in flight per daemon connection, cross-shard flushes
		// coalesced into batched frames — and it must ride out a daemon
		// being kill -9'd and restarted mid-burst (the mux fails that
		// connection's in-flight rounds, the quorum masks the loss, and the
		// 1s-backoff redial folds the daemon back in).
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl burst <prefix> <count>")
		}
		count, err := strconv.Atoi(args[2])
		if err != nil || count < 1 {
			return fmt.Errorf("burst: bad count %q", args[2])
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		const workers = 16
		var (
			next    atomic.Int64
			firstMu sync.Mutex
			first   error
			wg      sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i > count {
						return
					}
					key := fmt.Sprintf("%s:%d", args[1], i)
					if err := st.Put(key, fmt.Sprintf("v%d", i)); err != nil {
						firstMu.Lock()
						if first == nil {
							first = fmt.Errorf("put %s: %w", key, err)
						}
						firstMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
		fmt.Printf("OK burst: %d puts, %d workers, %v\n", count, workers, time.Since(start).Round(time.Millisecond))
		return nil
	case "getburst":
		// getburst is the read-side drill symmetric to burst: 16 workers Get
		// keys <prefix>:1..count concurrently through ONE store (and, with
		// the default single -reader identity, ONE reader handle) and verify
		// each value is the v<i> a prior burst wrote. The concurrency makes
		// shard read coalescing real — Gets landing on a shard with a read
		// already in flight ride that read's decision rounds instead of
		// queueing for the pool — and the sweep must ride out daemon faults
		// exactly as the write drill does: write-back elision refuses while
		// the quorum view is disturbed and the 4-round fallback carries the
		// reads, so every certified value still comes back.
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl getburst <prefix> <count>")
		}
		count, err := strconv.Atoi(args[2])
		if err != nil || count < 1 {
			return fmt.Errorf("getburst: bad count %q", args[2])
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		const workers = 16
		var (
			next    atomic.Int64
			firstMu sync.Mutex
			first   error
			wg      sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i > count {
						return
					}
					key := fmt.Sprintf("%s:%d", args[1], i)
					v, err := st.Get(key)
					if err == nil && v != fmt.Sprintf("v%d", i) {
						err = fmt.Errorf("certified %q, want %q", v, fmt.Sprintf("v%d", i))
					}
					if err != nil {
						firstMu.Lock()
						if first == nil {
							first = fmt.Errorf("get %s: %w", key, err)
						}
						firstMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
		fmt.Printf("OK getburst: %d gets, %d workers, %v\n", count, workers, time.Since(start).Round(time.Millisecond))
		return nil
	case "repair":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl repair <object-id>")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("repair: bad object id %q", args[1])
		}
		repaired, err := cluster.Repair(id, shards)
		for _, r := range repaired {
			if r.Skipped {
				fmt.Printf("s%d reg %d: blank (never written), skipped\n", id, r.Reg)
				continue
			}
			fmt.Printf("s%d reg %d: installed ts=%s (%d bytes) from quorum\n", id, r.Reg, r.TS, r.Bytes)
		}
		if err != nil {
			return err
		}
		fmt.Printf("OK (%d register instances)\n", len(repaired))
		return nil
	case "config":
		cfg, err := cluster.ConfigQuery()
		if err != nil {
			return err
		}
		printConfig(cfg)
		return nil
	case "join":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl join <addr>")
		}
		cfg, migrated, err := cluster.Join(args[1], shards)
		printMigrated(migrated)
		if err != nil {
			return err
		}
		fmt.Printf("OK join: %s admitted\n", args[1])
		printConfig(cfg)
		return nil
	case "leave":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl leave <slot>")
		}
		sid, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("leave: bad slot %q", args[1])
		}
		cfg, err := cluster.Leave(sid)
		if err != nil {
			return err
		}
		fmt.Printf("OK leave: slot %d vacated\n", sid)
		printConfig(cfg)
		return nil
	case "reseed":
		// The remediation for a join/move that decided the new configuration
		// but failed to seed the newcomer (ErrNewcomerUnseeded): re-read the
		// certified configuration and re-install it. Idempotent.
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl reseed <addr>")
		}
		if err := cluster.ReseedConfig(args[1]); err != nil {
			return err
		}
		fmt.Printf("OK reseed: %s holds the certified configuration\n", args[1])
		return nil
	case "move":
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl move <slot> <addr>")
		}
		sid, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("move: bad slot %q", args[1])
		}
		cfg, migrated, err := cluster.Move(sid, args[2], shards)
		printMigrated(migrated)
		if err != nil {
			return err
		}
		fmt.Printf("OK move: slot %d now %s\n", sid, args[2])
		printConfig(cfg)
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// printConfig renders one configuration, vacant slots marked.
func printConfig(cfg config.Config) {
	fmt.Printf("epoch %d (%d/%d slots live)\n", cfg.Epoch, cfg.Live(), len(cfg.Addrs))
	for i, a := range cfg.Addrs {
		if a == config.Vacant {
			fmt.Printf("  slot %d: VACANT\n", i+1)
			continue
		}
		fmt.Printf("  slot %d: %s\n", i+1, a)
	}
}

// printMigrated renders a migration's per-instance outcomes.
func printMigrated(migrated []robustatomic.RepairedRegister) {
	for _, m := range migrated {
		if m.Skipped {
			fmt.Printf("migrate reg %d: blank (never written), skipped\n", m.Reg)
			continue
		}
		fmt.Printf("migrate reg %d: transferred ts=%s (%d bytes)\n", m.Reg, m.TS, m.Bytes)
	}
}

// doctor sweeps every daemon's raw register state — the writer's register
// and all R per-reader write-back registers of every instance — and reports
// timestamps at which daemons hold DIVERGED values: two pairs with one
// timestamp but different contents. A correct history binds each timestamp
// to exactly one value, so divergence is always pathological; on a
// write-back register it is the known residue of pre-v8 reader write-back
// sequence reuse (a reader restarting mid-operation could reissue a
// write-back sequence number for a different certified value). Doctor
// prints the affected daemons and the wipe+repair remediation, and fails
// (exit 1) when anything diverged — clean clusters print OK.
func doctor(addrs []string, shards, readers int) error {
	type regKey struct {
		reg int
		id  types.RegID
	}
	type owner struct {
		daemon int
		pair   types.Pair
		kind   string // "pw" or "w"
	}
	byTS := map[regKey]map[types.TS][]owner{}
	scanned, unreachable := 0, 0
	for i, addr := range addrs {
		id := i + 1
		d, err := tcpnet.DialDirect(addr, 5*time.Second)
		if err != nil {
			fmt.Printf("s%d %s: UNREACHABLE (%v) — skipped\n", id, addr, err)
			unreachable++
			continue
		}
		for reg := 0; reg <= shards; reg++ {
			regIDs := make([]types.RegID, 0, readers+1)
			regIDs = append(regIDs, types.WriterReg)
			for r := 1; r <= readers; r++ {
				regIDs = append(regIDs, types.ReaderReg(r))
			}
			for _, rid := range regIDs {
				pw, w, err := d.ProbeReg(reg, rid)
				if err != nil {
					d.Close()
					return fmt.Errorf("doctor: s%d reg %d %v: %w", id, reg, rid, err)
				}
				k := regKey{reg, rid}
				for _, o := range []owner{{id, pw, "pw"}, {id, w, "w"}} {
					if o.pair.IsBottom() {
						continue
					}
					if byTS[k] == nil {
						byTS[k] = map[types.TS][]owner{}
					}
					byTS[k][o.pair.TS] = append(byTS[k][o.pair.TS], o)
				}
			}
		}
		d.Close()
		scanned++
	}
	diverged := 0
	for k, tss := range byTS {
		for ts, owners := range tss {
			vals := map[types.Value]bool{}
			for _, o := range owners {
				vals[o.pair.Val] = true
			}
			if len(vals) < 2 {
				continue
			}
			diverged++
			fmt.Printf("DIVERGED reg %d %v ts=%s: %d distinct values at one timestamp\n", k.reg, k.id, ts, len(vals))
			for _, o := range owners {
				fmt.Printf("  s%d %s holds %q\n", o.daemon, o.kind, o.pair.Val)
			}
		}
	}
	if diverged == 0 {
		fmt.Printf("OK doctor: %d daemons scanned, no diverged timestamps", scanned)
		if unreachable > 0 {
			fmt.Printf(" (%d unreachable, not scanned)", unreachable)
		}
		fmt.Println()
		return nil
	}
	fmt.Println("remediation — for each daemon listed above, ONE AT A TIME (wiping more")
	fmt.Println("than t daemons concurrently forfeits the fault budget):")
	fmt.Println("  1. stop the daemon")
	fmt.Println("  2. wipe its -data-dir")
	fmt.Println("  3. restart it blank on the same address")
	fmt.Println("  4. storctl -servers ... repair <object-id>")
	return fmt.Errorf("doctor: %d diverged timestamp(s) found", diverged)
}

// stats scrapes each daemon's /debug/vars and renders one combined table:
// metrics down, daemons across. Histograms render their sample count (the
// full distributions stay on /metrics).
func stats(debugAddrs []string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	snaps := make([]obs.Snapshot, len(debugAddrs))
	for i, addr := range debugAddrs {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := client.Get(url + "/debug/vars")
		if err != nil {
			return fmt.Errorf("stats: %s: %w", addr, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snaps[i])
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("stats: %s: %w", addr, err)
		}
	}
	// Union of metric names across daemons, sorted: daemons restarted at
	// different times (or with different roles) expose different subsets.
	nameSet := map[string]bool{}
	for _, s := range snaps {
		for _, n := range s.Names() {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	width := len("metric")
	for n := range nameSet {
		names = append(names, n)
		if len(n) > width {
			width = len(n)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-*s", width, "metric")
	for i := range debugAddrs {
		fmt.Printf(" %12s", fmt.Sprintf("s%d", i+1))
	}
	fmt.Println()
	cell := func(s obs.Snapshot, name string) string {
		if v, ok := s.Counters[name]; ok {
			return strconv.FormatInt(v, 10)
		}
		if v, ok := s.Gauges[name]; ok {
			return strconv.FormatInt(v, 10)
		}
		if h, ok := s.Hists[name]; ok {
			return fmt.Sprintf("n=%d", h.Count)
		}
		return "-"
	}
	for _, n := range names {
		fmt.Printf("%-*s", width, n)
		for _, s := range snaps {
			fmt.Printf(" %12s", cell(s, n))
		}
		fmt.Println()
	}
	return nil
}
