// Command storctl is the client for a storaged cluster. It speaks both
// APIs: the paper's single robust atomic register (write/read) and the
// sharded multi-key Store layer (put/get/del), which hashes keys onto
// -shards independent registers hosted on the same daemons. It is also the
// operator tool for node replacement: repair reconstitutes a blank
// replacement daemon from a quorum of its live peers, and probe inspects
// one daemon's raw register state.
//
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 write hello
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 read
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 put order:42 shipped
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 get order:42
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 repair 3
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 probe 3
//
// Every invocation recovers shard state from the cluster before writing, so
// puts compose across invocations. The registers are multi-writer:
// concurrent puts from different processes are safe PROVIDED each process
// uses a distinct -writer id (embedded in every timestamp it issues) and a
// distinct -reader index (reader identities own their write-back registers
// exclusively). Concurrent puts to the same key resolve atomically to one
// of the written values; concurrent puts to different keys of the same
// shard are last-writer-wins at shard granularity. All clients of one
// deployment must agree on -shards — it determines which register a key
// routes to, and how many register instances repair reconstitutes
// (instance 0 plus one per shard).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic"
	"robustatomic/internal/obs"
	"robustatomic/internal/tcpnet"
)

func main() {
	servers := flag.String("servers", "", "comma-separated object addresses (3t+1 of them, in id order)")
	t := flag.Int("t", 1, "fault budget")
	readers := flag.Int("readers", 2, "total reader count R")
	readerIdx := flag.Int("reader", 1, "this client's reader index (1..R; concurrent clients use distinct indices)")
	writerID := flag.Int("writer", 0, "this client's writer id (concurrent writing clients use distinct ids)")
	shards := flag.Int("shards", 8, "shard count of the keyed store (put/get/del, repair/probe)")
	trace := flag.Int("trace", 0, "per-op round tracing: sample one op in N (1 = every op, 0 = off); failed-op traces dump to stderr on error")
	flag.Parse()

	if err := run(*servers, *t, *readers, *readerIdx, *writerID, *shards, *trace, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "storctl:", err)
		os.Exit(1)
	}
}

func run(servers string, t, readers, readerIdx, writerID, shards, trace int, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: storctl [flags] write <value> | read | put <key> <value> | get <key> | del <key> | burst <prefix> <count> | getburst <prefix> <count> | stats <debug-addr>... | repair <object-id> | probe <object-id>")
	}
	addrs := strings.Split(servers, ",")
	if args[0] == "stats" {
		// Stats scrapes daemon debug endpoints directly; no cluster needed.
		if len(args) < 2 {
			return fmt.Errorf("usage: storctl stats <debug-addr>... (the storaged -debug-addr addresses)")
		}
		return stats(args[1:])
	}
	if args[0] == "probe" {
		// Probe talks to a single daemon directly; no cluster needed.
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl probe <object-id>")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil || id < 1 || id > len(addrs) {
			return fmt.Errorf("probe: object id %q out of 1..%d", args[1], len(addrs))
		}
		d, err := tcpnet.DialDirect(addrs[id-1], 5*time.Second)
		if err != nil {
			return err
		}
		defer d.Close()
		for reg := 0; reg <= shards; reg++ {
			pw, w, err := d.Probe(reg)
			if err != nil {
				return err
			}
			fmt.Printf("s%d reg %d: pw=%s w=%s\n", id, reg, pw, w)
		}
		return nil
	}
	var tracer *obs.Tracer
	if trace > 0 {
		tracer = obs.NewTracer(256, trace)
		// Dump the round traces of every failed op next to the error: which
		// rounds ran, which objects replied, and what the replies carried.
		defer func() {
			if failed := tracer.Failed(); len(failed) > 0 {
				fmt.Fprintln(os.Stderr, "== failed-op round traces")
				fmt.Fprint(os.Stderr, tracer.FormatFailed())
			}
		}()
	}
	cluster, err := robustatomic.Connect(addrs, robustatomic.Options{Faults: t, Readers: readers, WriterID: writerID, Tracer: tracer})
	if err != nil {
		return err
	}
	defer cluster.Close()
	// The keyed store's read pool uses only this client's own reader
	// identity, so concurrent storctl processes with distinct -reader
	// indices never contend for a write-back register.
	storeOpts := robustatomic.StoreOptions{Shards: shards, Readers: []int{readerIdx}}
	switch args[0] {
	case "write":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl write <value>")
		}
		if err := cluster.Writer().Write(args[1]); err != nil {
			return err
		}
		fmt.Println("OK (2 rounds uncontended; fallback on interference)")
		return nil
	case "read":
		r, err := cluster.Reader(readerIdx)
		if err != nil {
			return err
		}
		v, err := r.Read()
		if err != nil {
			return err
		}
		fmt.Printf("%q (2 rounds stable; 4 worst case)\n", v)
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl put <key> <value>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		if err := st.Put(args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl get <key>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		v, err := st.Get(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%q (shard %d/%d)\n", v, st.ShardOf(args[1]), st.Shards())
		return nil
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl del <key>")
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		if err := st.Delete(args[1]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	case "burst":
		// burst hammers the store with <count> concurrent puts over ONE
		// pipelined connection set: keys <prefix>:1..count, value v<i>. This
		// is the integration-drill workload for the multiplexed wire — many
		// rounds in flight per daemon connection, cross-shard flushes
		// coalesced into batched frames — and it must ride out a daemon
		// being kill -9'd and restarted mid-burst (the mux fails that
		// connection's in-flight rounds, the quorum masks the loss, and the
		// 1s-backoff redial folds the daemon back in).
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl burst <prefix> <count>")
		}
		count, err := strconv.Atoi(args[2])
		if err != nil || count < 1 {
			return fmt.Errorf("burst: bad count %q", args[2])
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		const workers = 16
		var (
			next    atomic.Int64
			firstMu sync.Mutex
			first   error
			wg      sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i > count {
						return
					}
					key := fmt.Sprintf("%s:%d", args[1], i)
					if err := st.Put(key, fmt.Sprintf("v%d", i)); err != nil {
						firstMu.Lock()
						if first == nil {
							first = fmt.Errorf("put %s: %w", key, err)
						}
						firstMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
		fmt.Printf("OK burst: %d puts, %d workers, %v\n", count, workers, time.Since(start).Round(time.Millisecond))
		return nil
	case "getburst":
		// getburst is the read-side drill symmetric to burst: 16 workers Get
		// keys <prefix>:1..count concurrently through ONE store (and, with
		// the default single -reader identity, ONE reader handle) and verify
		// each value is the v<i> a prior burst wrote. The concurrency makes
		// shard read coalescing real — Gets landing on a shard with a read
		// already in flight ride that read's decision rounds instead of
		// queueing for the pool — and the sweep must ride out daemon faults
		// exactly as the write drill does: write-back elision refuses while
		// the quorum view is disturbed and the 4-round fallback carries the
		// reads, so every certified value still comes back.
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl getburst <prefix> <count>")
		}
		count, err := strconv.Atoi(args[2])
		if err != nil || count < 1 {
			return fmt.Errorf("getburst: bad count %q", args[2])
		}
		st, err := cluster.NewStore(storeOpts)
		if err != nil {
			return err
		}
		const workers = 16
		var (
			next    atomic.Int64
			firstMu sync.Mutex
			first   error
			wg      sync.WaitGroup
		)
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1))
					if i > count {
						return
					}
					key := fmt.Sprintf("%s:%d", args[1], i)
					v, err := st.Get(key)
					if err == nil && v != fmt.Sprintf("v%d", i) {
						err = fmt.Errorf("certified %q, want %q", v, fmt.Sprintf("v%d", i))
					}
					if err != nil {
						firstMu.Lock()
						if first == nil {
							first = fmt.Errorf("get %s: %w", key, err)
						}
						firstMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return first
		}
		fmt.Printf("OK getburst: %d gets, %d workers, %v\n", count, workers, time.Since(start).Round(time.Millisecond))
		return nil
	case "repair":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl repair <object-id>")
		}
		id, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("repair: bad object id %q", args[1])
		}
		repaired, err := cluster.Repair(id, shards)
		for _, r := range repaired {
			if r.Skipped {
				fmt.Printf("s%d reg %d: blank (never written), skipped\n", id, r.Reg)
				continue
			}
			fmt.Printf("s%d reg %d: installed ts=%s (%d bytes) from quorum\n", id, r.Reg, r.TS, r.Bytes)
		}
		if err != nil {
			return err
		}
		fmt.Printf("OK (%d register instances)\n", len(repaired))
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}

// stats scrapes each daemon's /debug/vars and renders one combined table:
// metrics down, daemons across. Histograms render their sample count (the
// full distributions stay on /metrics).
func stats(debugAddrs []string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	snaps := make([]obs.Snapshot, len(debugAddrs))
	for i, addr := range debugAddrs {
		url := addr
		if !strings.Contains(url, "://") {
			url = "http://" + url
		}
		resp, err := client.Get(url + "/debug/vars")
		if err != nil {
			return fmt.Errorf("stats: %s: %w", addr, err)
		}
		err = json.NewDecoder(resp.Body).Decode(&snaps[i])
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("stats: %s: %w", addr, err)
		}
	}
	// Union of metric names across daemons, sorted: daemons restarted at
	// different times (or with different roles) expose different subsets.
	nameSet := map[string]bool{}
	for _, s := range snaps {
		for _, n := range s.Names() {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	width := len("metric")
	for n := range nameSet {
		names = append(names, n)
		if len(n) > width {
			width = len(n)
		}
	}
	sort.Strings(names)
	fmt.Printf("%-*s", width, "metric")
	for i := range debugAddrs {
		fmt.Printf(" %12s", fmt.Sprintf("s%d", i+1))
	}
	fmt.Println()
	cell := func(s obs.Snapshot, name string) string {
		if v, ok := s.Counters[name]; ok {
			return strconv.FormatInt(v, 10)
		}
		if v, ok := s.Gauges[name]; ok {
			return strconv.FormatInt(v, 10)
		}
		if h, ok := s.Hists[name]; ok {
			return fmt.Sprintf("n=%d", h.Count)
		}
		return "-"
	}
	for _, n := range names {
		fmt.Printf("%-*s", width, n)
		for _, s := range snaps {
			fmt.Printf(" %12s", cell(s, n))
		}
		fmt.Println()
	}
	return nil
}
