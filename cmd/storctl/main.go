// Command storctl is the client for a storaged cluster: it reads and writes
// the robust atomic register over TCP.
//
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 write hello
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 read
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustatomic"
)

func main() {
	servers := flag.String("servers", "", "comma-separated object addresses (3t+1 of them, in id order)")
	t := flag.Int("t", 1, "fault budget")
	readers := flag.Int("readers", 2, "total reader count R")
	readerIdx := flag.Int("reader", 1, "this client's reader index (1..R)")
	flag.Parse()

	if err := run(*servers, *t, *readers, *readerIdx, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "storctl:", err)
		os.Exit(1)
	}
}

func run(servers string, t, readers, readerIdx int, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: storctl [flags] write <value> | read")
	}
	addrs := strings.Split(servers, ",")
	cluster, err := robustatomic.Connect(addrs, robustatomic.Options{Faults: t, Readers: readers})
	if err != nil {
		return err
	}
	defer cluster.Close()
	switch args[0] {
	case "write":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl write <value>")
		}
		if err := cluster.Writer().Write(args[1]); err != nil {
			return err
		}
		fmt.Println("OK (2 rounds)")
		return nil
	case "read":
		r, err := cluster.Reader(readerIdx)
		if err != nil {
			return err
		}
		v, err := r.Read()
		if err != nil {
			return err
		}
		fmt.Printf("%q (4 rounds)\n", v)
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
