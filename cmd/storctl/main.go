// Command storctl is the client for a storaged cluster. It speaks both
// APIs: the paper's single robust atomic register (write/read) and the
// sharded multi-key Store layer (put/get/del), which hashes keys onto
// -shards independent registers hosted on the same daemons.
//
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 write hello
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 read
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 put order:42 shipped
//	storctl -servers "h:7001,h:7002,h:7003,h:7004" -t 1 -shards 8 get order:42
//
// Every invocation recovers shard state from the cluster before writing, so
// sequential puts from the key owner compose across invocations. Keys are
// single-writer: concurrent puts to the same shard from different processes
// are outside the model. All clients of one deployment must agree on
// -shards — it determines which register a key routes to.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"robustatomic"
)

func main() {
	servers := flag.String("servers", "", "comma-separated object addresses (3t+1 of them, in id order)")
	t := flag.Int("t", 1, "fault budget")
	readers := flag.Int("readers", 2, "total reader count R")
	readerIdx := flag.Int("reader", 1, "this client's reader index (1..R)")
	shards := flag.Int("shards", 8, "shard count of the keyed store (put/get/del)")
	flag.Parse()

	if err := run(*servers, *t, *readers, *readerIdx, *shards, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "storctl:", err)
		os.Exit(1)
	}
}

func run(servers string, t, readers, readerIdx, shards int, args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: storctl [flags] write <value> | read | put <key> <value> | get <key> | del <key>")
	}
	addrs := strings.Split(servers, ",")
	cluster, err := robustatomic.Connect(addrs, robustatomic.Options{Faults: t, Readers: readers})
	if err != nil {
		return err
	}
	defer cluster.Close()
	switch args[0] {
	case "write":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl write <value>")
		}
		if err := cluster.Writer().Write(args[1]); err != nil {
			return err
		}
		fmt.Println("OK (2 rounds)")
		return nil
	case "read":
		r, err := cluster.Reader(readerIdx)
		if err != nil {
			return err
		}
		v, err := r.Read()
		if err != nil {
			return err
		}
		fmt.Printf("%q (4 rounds)\n", v)
		return nil
	case "put":
		if len(args) != 3 {
			return fmt.Errorf("usage: storctl put <key> <value>")
		}
		st, err := cluster.NewStore(robustatomic.StoreOptions{Shards: shards})
		if err != nil {
			return err
		}
		if err := st.Put(args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	case "get":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl get <key>")
		}
		st, err := cluster.NewStore(robustatomic.StoreOptions{Shards: shards})
		if err != nil {
			return err
		}
		v, err := st.Get(args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%q (shard %d/%d)\n", v, st.ShardOf(args[1]), st.Shards())
		return nil
	case "del":
		if len(args) != 2 {
			return fmt.Errorf("usage: storctl del <key>")
		}
		st, err := cluster.NewStore(robustatomic.StoreOptions{Shards: shards})
		if err != nil {
			return err
		}
		if err := st.Delete(args[1]); err != nil {
			return err
		}
		fmt.Printf("OK (shard %d/%d)\n", st.ShardOf(args[1]), st.Shards())
		return nil
	default:
		return fmt.Errorf("unknown command %q", args[0])
	}
}
