// Command lbproof executes the paper's lower-bound constructions and prints
// the resulting partial runs as block diagrams in the style of Figures 1
// and 2, ending with the atomicity-violation witness.
//
//	lbproof -fig 1 -t 1            # Proposition 1 (read lower bound)
//	lbproof -fig 2 -k 4            # Lemma 1 (write lower bound), the paper's instance
//	lbproof -fig 2 -k 2 -victim gullible
package main

import (
	"flag"
	"fmt"
	"os"

	"robustatomic/internal/lowerbound"
)

func main() {
	fig := flag.Int("fig", 1, "figure to regenerate: 1 (read bound) or 2 (write bound)")
	t := flag.Int("t", 1, "fault budget for -fig 1 (S = 4t)")
	k := flag.Int("k", 2, "write rounds for -fig 2 (t = t_k, S = 3·t_k+1)")
	victim := flag.String("victim", "cautious", "victim decision rule: cautious | gullible")
	diagrams := flag.Bool("diagrams", true, "render block diagrams")
	flag.Parse()
	if err := run(*fig, *t, *k, *victim, *diagrams); err != nil {
		fmt.Fprintln(os.Stderr, "lbproof:", err)
		os.Exit(1)
	}
}

func run(fig, t, k int, victim string, diagrams bool) error {
	gullible := victim == "gullible"
	var out *lowerbound.Outcome
	var err error
	switch fig {
	case 1:
		fmt.Printf("Proposition 1 (Figure 1): no 2-round reads with S = %d ≤ 4t, t = %d, R = 4\n", 4*t, t)
		fmt.Printf("victim: %s 2-round-write/2-round-read register\n\n", victim)
		rb := &lowerbound.ReadBound{T: t, Victim: lowerbound.FixedVictim{K: 2, R: 2, Gullible: gullible}, Render: diagrams}
		out, err = rb.Run()
	case 2:
		fmt.Printf("Lemma 1 (Figure 2): no %d-round writes with 3-round reads; t_k = %d, S = %d\n",
			k, lowerbound.TMin(k), 3*lowerbound.TMin(k)+1)
		fmt.Printf("victim: %s %d-round-write/3-round-read register\n\n", victim, k)
		wb := &lowerbound.WriteBound{K: k, Victim: lowerbound.FixedVictim{K: k, R: 3, Gullible: gullible}, Render: diagrams}
		out, err = wb.Run()
	default:
		return fmt.Errorf("unknown figure %d", fig)
	}
	if err != nil {
		return err
	}
	for _, rep := range out.Reports {
		fmt.Printf("── run %s (appended read returned %s) ──\n", rep.Name, rep.ReadValue)
		if rep.Diagram != "" {
			fmt.Println(rep.Diagram)
		}
	}
	fmt.Printf("indistinguishability claims verified mechanically: %d\n\n", out.IndistinguishabilityChecks)
	fmt.Printf("VIOLATION exhibited in run %s:\n  %v\n", out.Run, out.Violation)
	return nil
}
