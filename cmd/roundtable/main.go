// Command roundtable prints the reproduction's numeric tables: the Lemma 1
// recurrence (E3), the Section 5 round-complexity comparison measured in the
// simulator (E4), and the retry-vs-optimal read latency contrast (E6).
package main

import (
	"flag"
	"fmt"
	"os"

	"robustatomic/internal/experiments"
)

func main() {
	kMax := flag.Int("kmax", 12, "recurrence table rows")
	t := flag.Int("t", 2, "fault budget for the complexity table")
	tMax := flag.Int("tmax", 4, "fault budgets for the retry contrast")
	flag.Parse()

	fmt.Println(experiments.RecurrenceTable(*kMax))
	tbl, err := experiments.ComplexityTable(*t)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundtable:", err)
		os.Exit(1)
	}
	fmt.Println(tbl)
	contrast, err := experiments.RetryContrastTable(*tMax)
	if err != nil {
		fmt.Fprintln(os.Stderr, "roundtable:", err)
		os.Exit(1)
	}
	fmt.Println(contrast)
}
