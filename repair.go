package robustatomic

import (
	"fmt"
	"time"

	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"
)

// RepairedRegister reports the outcome of repairing one register instance.
type RepairedRegister struct {
	// Reg is the wire register instance (0 = the standalone register,
	// 1..Shards = the keyed Store's shards).
	Reg int
	// TS is the timestamp of the pair installed on the replacement object.
	TS types.TS
	// Bytes is the size of the installed value.
	Bytes int
	// Skipped reports an instance that was never written (nothing to
	// install; a blank register is its correct state).
	Skipped bool
}

// Repair reconstitutes a blank replacement object from its live peers, in
// the style of RADON's repairable atomic storage: for every register
// instance up to shards (instance 0 plus one per Store shard) it performs a
// full atomic read against the cluster — which tolerates the blank object
// and up to t liars among the rest — and installs the certified result
// directly into object id's register via the protocol's own write-back
// messages. The installed state is exactly what a correct object that
// missed every message would be brought to by an honest reader's
// write-back, so safety is untouched; what repair restores is the fault
// budget: the replacement again certifies the current value, so the
// deployment survives a further t failures.
//
// Repair requires a remote (Connect) cluster. Run it while the repaired
// registers are otherwise idle, after replacing a dead machine with a blank
// daemon on the old address. Re-running it is harmless: objects merge state
// monotonically, so a repeated or stale install is a no-op.
func (c *Cluster) Repair(id int, shards int) ([]RepairedRegister, error) {
	if c.addrs == nil {
		return nil, fmt.Errorf("robustatomic: repair needs a remote cluster (Connect)")
	}
	addrs := c.activeAddrs()
	if id < 1 || id > len(addrs) {
		return nil, fmt.Errorf("robustatomic: object id %d out of 1..%d", id, len(addrs))
	}
	if addrs[id-1] == "" {
		return nil, fmt.Errorf("robustatomic: slot %d is vacant in the active configuration", id)
	}
	if shards < 0 {
		return nil, fmt.Errorf("robustatomic: negative shard count %d", shards)
	}
	if c.opts.Model == SecretTokens {
		// The quorum read yields the certified pair but not the secret
		// tokens the peers hold alongside it; a replacement seeded with a
		// zero token could never again contribute to the single-round
		// fast path's (pair, token) matching, silently weakening the
		// deployment. Refuse rather than half-repair.
		return nil, fmt.Errorf("robustatomic: repair does not support the SecretTokens model (recovered state would lack the peers' tokens)")
	}
	d, err := tcpnet.DialDirect(addrs[id-1], 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("robustatomic: repair: %w", err)
	}
	defer d.Close()
	return c.transferRegisters(d, shards)
}
