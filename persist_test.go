package robustatomic

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustatomic/internal/checker"
	"robustatomic/internal/persist"
	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"
)

// restartDaemon rebinds a daemon on its old address (the OS may hold the
// port briefly after Close).
func restartDaemon(t *testing.T, id int, addr string, opts tcpnet.ServerOptions) *tcpnet.Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := tcpnet.NewServerWith(id, addr, opts)
		if err == nil {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStoreCrashRestartAtomicity is the crash-recovery acceptance property
// test (run with -race): a seeded concurrent write burst against real TCP
// daemons with data dirs, one daemon kill -9'd at a seeded random point of
// the burst and restarted from disk mid-burst, then verification that (1)
// the burst never observed an error, (2) the checker accepts the full
// per-key history, (3) the restarted daemon's recovered state reaches the
// head of every shard — state recovered, no regression to amnesia.
func TestStoreCrashRestartAtomicity(t *testing.T) {
	const (
		shards  = 4
		keys    = 16
		writes  = 6
		reads   = 4
		readers = 2
	)
	// The seed picks the victim, the kill point and the cluster's delay
	// streams; a failure replays with -chaos.seed.
	seed := chaosSeedFor(t, 31)
	base := t.TempDir()
	var servers [4]*tcpnet.Server
	var addrs []string
	var sopts [4]tcpnet.ServerOptions
	for i := 1; i <= 4; i++ {
		sopts[i-1] = tcpnet.ServerOptions{
			DataDir: filepath.Join(base, fmt.Sprintf("s%d", i)),
			Fsync:   persist.FsyncBatch,
		}
		s, err := tcpnet.NewServerWith(i, "127.0.0.1:0", sopts[i-1])
		if err != nil {
			t.Fatal(err)
		}
		servers[i-1] = s
		addrs = append(addrs, s.Addr())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	c, err := Connect(addrs, Options{Faults: 1, Readers: readers, Seed: seed, Tracer: chaosTracer(t)})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.NewStore(StoreOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	victim := rng.Intn(4)
	totalOps := keys * (writes + reads)
	killAt := totalOps/4 + rng.Intn(totalOps/4) // a seeded random point mid-burst

	hists := make([]*checker.History, keys)
	for i := range hists {
		hists[i] = &checker.History{}
	}
	var ops int64
	var wg sync.WaitGroup
	var killWg sync.WaitGroup
	killWg.Add(1)
	go func() { // the crash: kill the victim mid-burst, restart it from disk
		defer killWg.Done()
		for atomic.LoadInt64(&ops) < int64(killAt) {
			time.Sleep(200 * time.Microsecond)
		}
		servers[victim].Close()
		time.Sleep(100 * time.Millisecond) // the daemon stays dead mid-burst
		servers[victim] = restartDaemon(t, victim+1, addrs[victim], sopts[victim])
	}()
	for k := 0; k < keys; k++ {
		k := k
		key := fmt.Sprintf("key-%03d", k)
		wg.Add(1)
		go func() { // one putter per key: per-key writes stay sequential
			defer wg.Done()
			for i := 1; i <= writes; i++ {
				val := fmt.Sprintf("k%d-v%d", k, i)
				id := hists[k].Invoke(types.Writer, checker.OpWrite, types.Value(val))
				if err := st.Put(key, val); err != nil {
					t.Errorf("put %s: %v", key, err)
					return
				}
				hists[k].Respond(id, types.Value(val))
				atomic.AddInt64(&ops, 1)
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reads; i++ {
				id := hists[k].Invoke(types.Reader(k%readers+1), checker.OpRead, "")
				v, err := st.Get(key)
				if err != nil {
					t.Errorf("get %s: %v", key, err)
					return
				}
				hists[k].Respond(id, types.Value(v))
				atomic.AddInt64(&ops, 1)
			}
		}()
	}
	wg.Wait()
	killWg.Wait()

	// Let the clients' dial backoff expire and the background redial adopt
	// the restarted daemon, then drive a second short burst through it.
	time.Sleep(2 * tcpnet.DialBackoff)
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("key-%03d", k)
		val := fmt.Sprintf("k%d-final", k)
		id := hists[k].Invoke(types.Writer, checker.OpWrite, types.Value(val))
		if err := st.Put(key, val); err != nil {
			t.Fatalf("post-restart put %s: %v", key, err)
		}
		hists[k].Respond(id, types.Value(val))
		id = hists[k].Invoke(types.Reader(1), checker.OpRead, "")
		v, err := st.Get(key)
		if err != nil {
			t.Fatalf("post-restart get %s: %v", key, err)
		}
		hists[k].Respond(id, types.Value(v))
		if v != val {
			t.Errorf("post-restart %s = %q, want %q", key, v, val)
		}
	}

	// The full history of every key is atomic.
	for k, h := range hists {
		if err := checker.CheckAtomic(h); err != nil {
			t.Errorf("key %d: %v", k, err)
		}
	}

	// The restarted daemon recovered from disk and caught up: every shard
	// register holds genuine, current state.
	for reg := 1; reg <= shards; reg++ {
		_, w, err := tcpnet.Probe(addrs[victim], reg, time.Second)
		if err != nil {
			t.Fatalf("probe restarted s%d reg %d: %v", victim+1, reg, err)
		}
		if w.IsBottom() {
			t.Errorf("restarted s%d reg %d is blank: amnesia", victim+1, reg)
		}
	}
}

// TestRepairReconstitutesWipedObject drives the RADON-style node
// replacement flow: a machine dies and is replaced by a blank daemon on the
// old address, storctl-style repair reconstitutes it from the live quorum,
// and afterwards the deployment again survives a further failure — which it
// could not with the replacement left blank, because a stale object plus a
// blank one exceeds the t=1 budget and stalls certification.
func TestRepairReconstitutesWipedObject(t *testing.T) {
	const shards = 2
	var servers [4]*tcpnet.Server
	var addrs []string
	for i := 1; i <= 4; i++ {
		s, err := tcpnet.NewServer(i, "127.0.0.1:0") // volatile: the wipe is total
		if err != nil {
			t.Fatal(err)
		}
		servers[i-1] = s
		addrs = append(addrs, s.Addr())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()
	c, err := Connect(addrs, Options{Faults: 1, Readers: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.NewStore(StoreOptions{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{"alpha", "beta", "gamma", "delta"}
	w := c.Writer()
	rd, err := c.Reader(1)
	if err != nil {
		t.Fatal(err)
	}

	// Generation 1, then s1 goes stale (frozen below the final head).
	for _, k := range keys {
		if err := st.Put(k, k+"-gen1"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write("solo-gen1"); err != nil {
		t.Fatal(err)
	}
	servers[0].SetBehavior(&server.Stale{})
	// Generation 2 advances the head past s1's frozen state.
	for _, k := range keys {
		if err := st.Put(k, k+"-gen2"); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Write("solo-gen2"); err != nil {
		t.Fatal(err)
	}
	// Catch-up reads propagate write-backs to every live object.
	for _, k := range keys {
		if v, err := st.Get(k); err != nil || v != k+"-gen2" {
			t.Fatalf("get %s = %q, %v", k, v, err)
		}
	}
	if v, err := rd.Read(); err != nil || v != "solo-gen2" {
		t.Fatalf("read = %q, %v", v, err)
	}

	// The machine hosting s3 dies; a blank replacement takes its address.
	servers[2].Close()
	servers[2] = restartDaemon(t, 3, addrs[2], tcpnet.ServerOptions{})
	if _, w3, err := tcpnet.Probe(addrs[2], 0, time.Second); err != nil || !w3.IsBottom() {
		t.Fatalf("replacement not blank: %v, %v", w3, err)
	}

	// Repair: quorum-read every hosted instance, install the certified
	// head into the replacement.
	repaired, err := c.Repair(3, shards)
	if err != nil {
		t.Fatal(err)
	}
	if len(repaired) != shards+1 {
		t.Fatalf("repaired %d instances, want %d", len(repaired), shards+1)
	}
	for _, r := range repaired {
		if r.Skipped || r.TS.IsZero() {
			t.Errorf("instance %d not repaired: %+v", r.Reg, r)
		}
	}
	if _, w3, err := tcpnet.Probe(addrs[2], 0, time.Second); err != nil || string(w3.Val) != "solo-gen2" {
		t.Fatalf("replacement reg 0 after repair = %v, %v", w3, err)
	}

	// Re-establish the store's pooled reader connections to the replacement
	// daemon (their conns still point at the dead predecessor; the first
	// round through each reader redials). Two gets per key rotate through
	// both pooled reader identities of each shard.
	for _, k := range keys {
		for i := 0; i < 2; i++ {
			if v, err := st.Get(k); err != nil || v != k+"-gen2" {
				t.Fatalf("warm-up get %s = %q, %v", k, v, err)
			}
		}
	}
	if v, err := rd.Read(); err != nil || v != "solo-gen2" {
		t.Fatalf("warm-up read = %q, %v", v, err)
	}

	// The deployment must now survive losing s4: reads certify through the
	// repaired s3 (s1 is stale below the head, so s2 alone could not).
	servers[3].Close()
	for _, k := range keys {
		if v, err := st.Get(k); err != nil || v != k+"-gen2" {
			t.Fatalf("post-repair get %s = %q, %v (repaired object not certifying)", k, v, err)
		}
	}
	if v, err := rd.Read(); err != nil || v != "solo-gen2" {
		t.Fatalf("post-repair read = %q, %v", v, err)
	}

	// Idempotence: repairing again is a harmless no-op on live state.
	if _, err := c.Repair(3, shards); err != nil {
		t.Fatalf("second repair: %v", err)
	}
}

// TestRepairRefusesSecretTokens: the quorum read cannot recover the secret
// tokens peers hold alongside the pair, so a half-repaired object would be
// permanently excluded from the fast path; Repair must refuse up front.
func TestRepairRefusesSecretTokens(t *testing.T) {
	addrs := []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3", "127.0.0.1:4"}
	c, err := Connect(addrs, Options{Faults: 1, Model: SecretTokens})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Repair(1, 2); err == nil {
		t.Fatal("repair accepted a SecretTokens cluster")
	}
}
