package robustatomic

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// TestPipelinedBatchedRoundsAtomicUnderChaos is the wire-generation-3
// acceptance test: two separately Connected processes hammer a sharded
// Store over real TCP daemons with pipelining and cross-shard coalescing
// forced on, while the fault injection targets exactly the new machinery —
// object 1 is protocol-flaky AND drops/reorders individual sub-bundles out
// of batched replies, object 2 reorders every batch it answers. Every
// per-key history must still pass the multi-writer atomicity checker. Run
// with -race.
func TestPipelinedBatchedRoundsAtomicUnderChaos(t *testing.T) {
	const (
		shards        = 8
		keys          = 4
		writesPerProc = 4
		reads         = 4
	)
	addrs, servers := startServers(t, 4)
	// Object 1: flaky at the protocol level (drops whole replies) and
	// unreliable at the batch level (drops 30% of sub-bundles, shuffles the
	// survivors), so a batched round may get a partial, reordered bundle.
	// Every chaos stream derives from one base seed so a failure replays
	// with -chaos.seed.
	base := chaosSeedFor(t, 41, 1, 2)
	servers[0].SetBehavior(server.Flaky{Rand: rand.New(rand.NewSource(mixSeed(base, 1))), DropProb: 0.4})
	servers[0].SetBatchChaos(rand.New(rand.NewSource(mixSeed(base, 1, 2))), 0.3, true)
	// Object 2: answers everything, in scrambled sub-bundle order.
	servers[1].SetBatchChaos(rand.New(rand.NewSource(mixSeed(base, 2))), 0, true)

	tracer := chaosTracer(t)
	c1, err := Connect(addrs, Options{Faults: 1, Readers: 4, WriterID: 1, Seed: mixSeed(base, 401), Coalesce: CoalesceOn, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Connect(addrs, Options{Faults: 1, Readers: 4, WriterID: 2, Seed: mixSeed(base, 402), Coalesce: CoalesceOn, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st1, err := c1.NewStore(StoreOptions{Shards: shards, Readers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c2.NewStore(StoreOptions{Shards: shards, Readers: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}

	hists := make([]*checker.History, keys)
	for i := range hists {
		hists[i] = &checker.History{}
	}
	// Contended keys on pairwise distinct shards: concurrent flushes of
	// different shards are what the Combiner merges into batched rounds.
	keyNames := make([]string, 0, keys)
	usedShard := map[int]bool{}
	for i := 0; len(keyNames) < keys; i++ {
		name := fmt.Sprintf("piped-%d", i)
		if sh := st1.ShardOf(name); !usedShard[sh] {
			usedShard[sh] = true
			keyNames = append(keyNames, name)
		}
	}

	var wg sync.WaitGroup
	for k := 0; k < keys; k++ {
		for p, st := range []*Store{st1, st2} {
			k, p, st := k, p+1, st
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 1; i <= writesPerProc; i++ {
					val := fmt.Sprintf("w%d-k%d-v%d", p, k, i)
					id := hists[k].Invoke(types.WriterID(p), checker.OpWrite, types.Value(val))
					if err := st.Put(keyNames[k], val); err != nil {
						t.Errorf("process %d put %s: %v", p, keyNames[k], err)
						return
					}
					hists[k].Respond(id, types.Value(val))
				}
			}()
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < reads; i++ {
					id := hists[k].Invoke(types.Reader(2*k+p), checker.OpRead, "")
					v, err := st.Get(keyNames[k])
					if err != nil {
						t.Errorf("process %d get %s: %v", p, keyNames[k], err)
						return
					}
					hists[k].Respond(id, types.Value(v))
				}
			}()
		}
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for k, h := range hists {
		if err := checker.CheckAtomicMW(h); err != nil {
			t.Errorf("key %d: %v", k, err)
		}
	}
	// Quiescent agreement across processes, per key.
	for k := 0; k < keys; k++ {
		v1, err1 := st1.Get(keyNames[k])
		v2, err2 := st2.Get(keyNames[k])
		if err1 != nil || err2 != nil {
			t.Fatalf("key %d: final reads: %v / %v", k, err1, err2)
		}
		if v1 != v2 {
			t.Errorf("key %d: processes disagree after quiescence: %q vs %q", k, v1, v2)
		}
	}
}

// TestLockStepStoreStillCorrect pins the escape hatch: Options.LockStep
// reproduces the one-in-flight wire behavior of generations ≤ 2 (the E13
// baseline) and the Store stays fully functional on it.
func TestLockStepStoreStillCorrect(t *testing.T) {
	addrs, _ := startServers(t, 4)
	c, err := Connect(addrs, Options{Faults: 1, Readers: 2, Seed: 403, LockStep: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.NewStore(StoreOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		v, err := st.Get(fmt.Sprintf("k%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if v != fmt.Sprintf("v%d", i) {
			t.Errorf("k%d = %q, want v%d", i, v, i)
		}
	}
}
