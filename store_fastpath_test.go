package robustatomic

import (
	"fmt"
	"sync/atomic"
	"testing"

	"robustatomic/internal/types"
)

// countingStore builds a 1-shard store over an in-process cluster with a
// round counter on every handle and a register-write counter on the shard.
func countingStore(t *testing.T, seed int64) (*Store, *int64, *int64) {
	t.Helper()
	var rounds int64
	c, err := NewCluster(Options{
		Faults:    1,
		Readers:   1,
		Seed:      seed,
		RoundHook: func(string) { atomic.AddInt64(&rounds, 1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	st, err := c.NewStore(StoreOptions{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Count register writes across BOTH flush paths (the fast validated
	// write and the certified read-modify-write).
	sh, err := st.shards.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	var writes int64
	origClean := sh.writeClean
	sh.writeClean = func(v types.Value) (types.Pair, bool, error) {
		p, ok, err := origClean(v)
		if err == nil && ok {
			atomic.AddInt64(&writes, 1)
		}
		return p, ok, err
	}
	origModify := sh.modify
	sh.modify = func(fn func(types.Pair) (types.Value, error)) (types.Pair, error) {
		wrote := false
		p, err := origModify(func(cur types.Pair) (types.Value, error) {
			v, ferr := fn(cur)
			wrote = ferr == nil
			return v, ferr
		})
		if err == nil && wrote {
			atomic.AddInt64(&writes, 1)
		}
		return p, err
	}
	return st, &rounds, &writes
}

// TestStoreFlushFastPathRounds pins the flush's adaptive round complexity:
// an uncontended dirty flush is exactly 3 rounds (freshness validation +
// the two write phases — no certified read, no decision procedure), and
// every flush costs exactly one register write.
func TestStoreFlushFastPathRounds(t *testing.T) {
	st, rounds, writes := countingStore(t, 31)
	if err := st.Put("k", "v0"); err != nil { // first Put instantiates the shard
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		atomic.StoreInt64(rounds, 0)
		atomic.StoreInt64(writes, 0)
		if err := st.Put("k", fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt64(rounds); got != 3 {
			t.Fatalf("uncontended flush %d took %d rounds, want 3 (WVAL + PREWRITE + WRITE)", i, got)
		}
		if got := atomic.LoadInt64(writes); got != 1 {
			t.Fatalf("uncontended flush %d took %d register writes, want 1", i, got)
		}
	}
}

// TestStoreNoOpMutationsElided pins satellite behavior: a Put of the
// already-current value or a Delete of an absent key, alone in a batch,
// commits with ONE validation round and NO register write; mixed with a
// real mutation the batch pays the normal single write.
func TestStoreNoOpMutationsElided(t *testing.T) {
	st, rounds, writes := countingStore(t, 32)
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}

	atomic.StoreInt64(rounds, 0)
	atomic.StoreInt64(writes, 0)
	if err := st.Put("k", "v"); err != nil { // Put of the current value
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(rounds); got != 1 {
		t.Fatalf("no-op Put took %d rounds, want 1 (validation only)", got)
	}
	if got := atomic.LoadInt64(writes); got != 0 {
		t.Fatalf("no-op Put took %d register writes, want 0", got)
	}

	atomic.StoreInt64(rounds, 0)
	atomic.StoreInt64(writes, 0)
	if err := st.Delete("absent-key"); err != nil { // Delete of an absent key
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(rounds); got != 1 {
		t.Fatalf("no-op Delete took %d rounds, want 1 (validation only)", got)
	}
	if got := atomic.LoadInt64(writes); got != 0 {
		t.Fatalf("no-op Delete took %d register writes, want 0", got)
	}

	// The elision must not have lost anything.
	if v, err := st.Get("k"); err != nil || v != "v" {
		t.Fatalf("Get(k) after elided flushes = %q, %v; want v", v, err)
	}

	// A real mutation still writes (and the dirty bit, not the batch size,
	// decides: the no-op rides along for free).
	atomic.StoreInt64(writes, 0)
	if err := st.Put("k", "v2"); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(writes); got != 1 {
		t.Fatalf("dirty flush took %d register writes, want 1", got)
	}
	if v, err := st.Get("k"); err != nil || v != "v2" {
		t.Fatalf("Get(k) = %q, %v; want v2", v, err)
	}
}

// TestStoreFlushRebasesAfterForeignWrite drives the fast-path conflict over
// TCP: process B lands a foreign write on A's shard, so A's next flush must
// detect the stale cache (validation conflict), fall back to the certified
// read-modify-write, and rebase WITHOUT dropping B's key.
func TestStoreFlushRebasesAfterForeignWrite(t *testing.T) {
	addrs, _ := startServers(t, 4)
	connect := func(wid int, reader int) *Store {
		c, err := Connect(addrs, Options{Faults: 1, Readers: 2, WriterID: wid, Seed: int64(40 + wid)})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		st, err := c.NewStore(StoreOptions{Shards: 1, Readers: []int{reader}})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a := connect(1, 1)
	b := connect(2, 2)
	if err := a.Put("a-key", "a1"); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("b-key", "b1"); err != nil { // B rebases onto A's table, then writes
		t.Fatal(err)
	}
	if err := a.Put("a-key", "a2"); err != nil { // A's cache is stale → conflict → rebase
		t.Fatal(err)
	}
	// A's rebase must have preserved B's foreign key, and vice versa.
	for _, tc := range []struct{ key, want string }{{"a-key", "a2"}, {"b-key", "b1"}} {
		if v, err := a.Get(tc.key); err != nil || v != tc.want {
			t.Errorf("A.Get(%s) = %q, %v; want %q", tc.key, v, err, tc.want)
		}
		if v, err := b.Get(tc.key); err != nil || v != tc.want {
			t.Errorf("B.Get(%s) = %q, %v; want %q", tc.key, v, err, tc.want)
		}
	}
}

// TestStoreNoOpAfterRebaseStillWrites pins the elision's soundness
// boundary: when the certified path REBASED onto a pair it did not commit
// itself, an all-no-op batch must still write the rebased table at a fresh
// successor rather than elide — the certified read is a regular read with
// no write-back, so the observed pair could be an incomplete foreign write
// that later atomic reads are allowed never to return; re-asserting it at
// our own timestamp (as the pre-adaptive flush always did) completes it.
func TestStoreNoOpAfterRebaseStillWrites(t *testing.T) {
	st, _, writes := countingStore(t, 34)
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	sh, err := st.shards.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	// Rewind the committer's cache, as if this process had never seen the
	// current head, and disable the fast path: the writer handle's own
	// LastTS still tracks the true head (so validation would pass and dodge
	// the boundary under test); the certified path is the one that must
	// detect the "foreign" pair, rebase, and refuse to elide.
	sh.lastTS = types.TS{}
	sh.table = map[string]string{}
	sh.keys = nil
	sh.writeClean = nil
	atomic.StoreInt64(writes, 0)
	if err := st.Put("k", "v"); err != nil { // no-op against the REBASED table
		t.Fatal(err)
	}
	if got := atomic.LoadInt64(writes); got != 1 {
		t.Fatalf("no-op batch after rebase took %d register writes, want 1 (must re-assert the rebased pair)", got)
	}
	if v, err := st.Get("k"); err != nil || v != "v" {
		t.Fatalf("Get(k) = %q, %v; want v", v, err)
	}
}

// TestStoreFlushPenaltyProbesFastPathAgain: after a conflict the shard runs
// its penalty window on the certified path, then probes the fast path and —
// with contention gone — stays on it.
func TestStoreFlushPenaltyProbesFastPathAgain(t *testing.T) {
	st, rounds, _ := countingStore(t, 33)
	if err := st.Put("k", "v"); err != nil {
		t.Fatal(err)
	}
	sh, err := st.shards.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	sh.penalty = 2                          // as if a conflict just happened
	for i, want := range []int64{4, 4, 3} { // two certified flushes, then the probe succeeds
		atomic.StoreInt64(rounds, 0)
		if err := st.Put("k", fmt.Sprintf("p%d", i)); err != nil {
			t.Fatal(err)
		}
		if got := atomic.LoadInt64(rounds); got != want {
			t.Fatalf("penalty flush %d took %d rounds, want %d", i, got, want)
		}
	}
}
