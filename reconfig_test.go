package robustatomic

import (
	"fmt"
	"testing"

	"robustatomic/internal/config"
	"robustatomic/internal/tcpnet"
)

// TestConfigQueryBootstrap pins the never-reconfigured baseline: the config
// register is unwritten, so the active configuration is the bootstrap one —
// epoch 1 over the Connect address list.
func TestConfigQueryBootstrap(t *testing.T) {
	addrs, _ := startServers(t, 4)
	c, err := Connect(addrs, Options{Faults: 1, Readers: 2, Seed: 71})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	cfg, err := c.ConfigQuery()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Epoch != 1 {
		t.Errorf("bootstrap epoch = %d, want 1", cfg.Epoch)
	}
	for i, a := range cfg.Addrs {
		if a != addrs[i] {
			t.Errorf("bootstrap slot %d = %q, want %q", i+1, a, addrs[i])
		}
	}
}

// TestLiveReplace is the tentpole acceptance flow: a cluster serving a keyed
// Store has one object replaced live via Move — state migrated to a fresh
// daemon on a new port, the single-slot swap decided on the config register,
// the departed daemon killed — while the replacing client keeps operating,
// and a second client still holding the SUPERSEDED address list recovers
// transparently: its first round is refused with the typed redirect, it
// refetches the certified configuration from the hint, adopts it, and
// retries — zero failed operations either side.
func TestLiveReplace(t *testing.T) {
	const shards = 4
	addrs, servers := startServers(t, 4)
	c1, err := Connect(addrs, Options{Faults: 1, Readers: 4, WriterID: 1, Seed: 72})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	st1, err := c1.NewStore(StoreOptions{Shards: shards, Readers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := st1.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)); err != nil {
			t.Fatalf("pre-replace put: %v", err)
		}
	}

	// The replacement daemon: slot 2's object identity, fresh port.
	s2b, err := tcpnet.NewServer(2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s2b.Close)

	cfg, migrated, err := c1.Move(2, s2b.Addr(), shards)
	if err != nil {
		t.Fatalf("Move: %v", err)
	}
	if cfg.Epoch != 2 {
		t.Errorf("post-move epoch = %d, want 2", cfg.Epoch)
	}
	if got := cfg.Addrs[1]; got != s2b.Addr() {
		t.Errorf("slot 2 = %q, want the replacement %q", got, s2b.Addr())
	}
	// Instance 0 was never written (no standalone Write); every shard was.
	if len(migrated) != shards+1 {
		t.Fatalf("migrated %d instances, want %d", len(migrated), shards+1)
	}
	for _, m := range migrated[1:] {
		if m.Skipped {
			t.Errorf("instance %d skipped, want transferred", m.Reg)
		}
	}

	// The departed daemon dies for real; the cluster must not notice.
	servers[1].Close()
	for i := 0; i < 8; i++ {
		if err := st1.Put(fmt.Sprintf("k%d", i), fmt.Sprintf("w%d", i)); err != nil {
			t.Fatalf("post-replace put: %v", err)
		}
	}

	// The stale client: connected with the superseded list (dead old daemon
	// included). Every operation must succeed via the transparent redirect →
	// certified refetch → retry path.
	c2, err := Connect(addrs, Options{Faults: 1, Readers: 4, WriterID: 2, Seed: 73})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st2, err := c2.NewStore(StoreOptions{Shards: shards, Readers: []int{3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		k := fmt.Sprintf("k%d", i)
		v, err := st2.Get(k)
		if err != nil {
			t.Fatalf("stale client get %s: %v", k, err)
		}
		if want := fmt.Sprintf("w%d", i); v != want {
			t.Errorf("stale client get %s = %q, want %q", k, v, want)
		}
	}
	if err := st2.Put("k0", "from-stale-client"); err != nil {
		t.Fatalf("stale client put: %v", err)
	}
	v, err := st1.Get("k0")
	if err != nil {
		t.Fatal(err)
	}
	if v != "from-stale-client" {
		t.Errorf("cross-client read = %q, want from-stale-client", v)
	}
	qcfg, err := c2.ConfigQuery()
	if err != nil {
		t.Fatal(err)
	}
	if qcfg.Epoch != 2 {
		t.Errorf("stale client's queried epoch = %d, want 2", qcfg.Epoch)
	}
}

// TestLeaveThenJoin exercises the vacancy flow: Leave vacates a slot (the
// vacancy spends the fault budget, operations continue on the survivors),
// Join admits a fresh daemon into it with migrated state, and the epoch
// advances once per transition.
func TestLeaveThenJoin(t *testing.T) {
	const shards = 2
	addrs, servers := startServers(t, 4)
	c, err := Connect(addrs, Options{Faults: 1, Readers: 2, WriterID: 1, Seed: 74})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	st, err := c.NewStore(StoreOptions{Shards: shards, Readers: []int{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put("a", "1"); err != nil {
		t.Fatal(err)
	}

	cfg, err := c.Leave(3)
	if err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if cfg.Epoch != 2 || cfg.Addrs[2] != config.Vacant {
		t.Fatalf("post-leave config = %v, want epoch 2 with slot 3 vacant", cfg)
	}
	servers[2].Close()
	// A second Leave must refuse: two vacancies would exceed the fault budget.
	if _, err := c.Leave(1); err == nil {
		t.Fatal("second Leave succeeded, want refusal (vacancies exceed t)")
	}
	if err := st.Put("a", "2"); err != nil {
		t.Fatalf("put with one vacant slot: %v", err)
	}

	s3b, err := tcpnet.NewServer(3, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s3b.Close)
	cfg, migrated, err := c.Join(s3b.Addr(), shards)
	if err != nil {
		t.Fatalf("Join: %v", err)
	}
	if cfg.Epoch != 3 || cfg.Addrs[2] != s3b.Addr() {
		t.Fatalf("post-join config = %v, want epoch 3 with slot 3 = %q", cfg, s3b.Addr())
	}
	if len(migrated) != shards+1 {
		t.Fatalf("migrated %d instances, want %d", len(migrated), shards+1)
	}
	// A further Join must refuse: no vacant slot remains (S is fixed).
	s6, err := tcpnet.NewServer(5, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s6.Close)
	if _, _, err := c.Join(s6.Addr(), shards); err == nil {
		t.Fatal("Join into a full configuration succeeded, want refusal")
	}
	if err := st.Put("a", "3"); err != nil {
		t.Fatalf("put after rejoin: %v", err)
	}
	v, err := st.Get("a")
	if err != nil {
		t.Fatal(err)
	}
	if v != "3" {
		t.Errorf("get after rejoin = %q, want 3", v)
	}
}

// TestStoreShardCountCollision pins the reserved-register guard: shard i
// lives on register instance i+1, so a shard count reaching the config
// register is refused at construction.
func TestStoreShardCountCollision(t *testing.T) {
	addrs, _ := startServers(t, 4)
	c, err := Connect(addrs, Options{Faults: 1, Readers: 1, Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.NewStore(StoreOptions{Shards: config.Reg, Readers: []int{1}}); err == nil {
		t.Fatal("shard count colliding with the config register accepted, want error")
	}
}
