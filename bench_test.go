// Benchmark harness: one benchmark per experiment of the reproduction
// (DESIGN.md Section 4; results recorded in EXPERIMENTS.md).
//
//	go test -bench=. -benchmem
package robustatomic

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustatomic/internal/experiments"
	"robustatomic/internal/lowerbound"
	"robustatomic/internal/persist"
	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/recurrence"
	"robustatomic/internal/regular"
	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"

	corereg "robustatomic/internal/core"
)

// BenchmarkE1ReadLowerBound executes the full Proposition 1 construction
// (Figure 1): the chain of partial runs pr_1..pr_{4k−1} with mechanical
// indistinguishability verification, until the atomicity-violation witness.
func BenchmarkE1ReadLowerBound(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("t=%d_S=%d", t, 4*t), func(b *testing.B) {
			checks := 0
			for i := 0; i < b.N; i++ {
				rb := &lowerbound.ReadBound{T: t, Victim: lowerbound.FixedVictim{K: 2, R: 2}}
				out, err := rb.Run()
				if err != nil {
					b.Fatal(err)
				}
				if out.Violation == nil {
					b.Fatal("no violation")
				}
				checks = out.IndistinguishabilityChecks
			}
			b.ReportMetric(float64(checks), "indist-checks")
		})
	}
}

// BenchmarkE2WriteLowerBound executes the Lemma 1 construction (Figure 2)
// for k = 2..4 (k = 4 is the paper's illustrated instance: t = 10, S = 31).
func BenchmarkE2WriteLowerBound(b *testing.B) {
	for _, k := range []int{2, 3, 4} {
		tk := lowerbound.TMin(k)
		b.Run(fmt.Sprintf("k=%d_t=%d_S=%d", k, tk, 3*tk+1), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				wb := &lowerbound.WriteBound{K: k}
				out, err := wb.Run()
				if err != nil {
					b.Fatal(err)
				}
				if out.Violation == nil {
					b.Fatal("no violation")
				}
			}
		})
	}
}

// BenchmarkE3Recurrence evaluates the t_k recurrence, its closed form and
// the Lemma 2 log bound across k = 1..30.
func BenchmarkE3Recurrence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := recurrence.Table(30)
		for _, r := range rows {
			if r.T != r.TClosed {
				b.Fatal("closed form mismatch")
			}
		}
	}
}

// BenchmarkE4RoundComplexity measures the Section 5 complexity table: every
// implementation's worst-case write/read rounds across Byzantine scenarios.
func BenchmarkE4RoundComplexity(b *testing.B) {
	for _, t := range []int{1, 2} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.MeasureComplexity(t)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range rows {
					if r.Name[0] == 'a' && r.ReadRounds != 4 && r.ReadRounds != 3 {
						b.Fatalf("%s: %d read rounds", r.Name, r.ReadRounds)
					}
				}
			}
		})
	}
}

// BenchmarkE5Boundaries probes the resilience boundaries: Proposition 1
// applies at S = 4t but its partition is impossible at S = 4t+1, and the
// Lemma 1 partition scales per Proposition 2.
func BenchmarkE5Boundaries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for t := 1; t <= 4; t++ {
			if _, err := quorum.NewProp1Partition(4*t, t); err != nil {
				b.Fatal(err)
			}
			if _, err := quorum.NewProp1Partition(4*t+1, t); err == nil {
				b.Fatal("S = 4t+1 accepted: the construction must not apply")
			}
		}
		for k := 2; k <= 5; k++ {
			for c := 1; c <= 3; c++ {
				p, err := quorum.NewScaledLemma1Partition(k, c)
				if err != nil {
					b.Fatal(err)
				}
				t := int64(p.Faults())
				if int64(p.S()) != recurrence.Resilience(k, t) {
					b.Fatal("Proposition 2 resilience mismatch")
				}
			}
		}
	}
}

// BenchmarkE6RetryVsOptimal contrasts the pre-2011 retry baseline's read
// rounds with the optimal 4 under a staleness adversary.
func BenchmarkE6RetryVsOptimal(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			var retryRounds, optRounds int
			for i := 0; i < b.N; i++ {
				rr, opt, converged, err := experiments.RetryContrast(t)
				if err != nil {
					b.Fatal(err)
				}
				if converged {
					b.Fatal("retry converged under perpetual staleness")
				}
				retryRounds, optRounds = rr, opt
			}
			b.ReportMetric(float64(retryRounds), "retry-rounds")
			b.ReportMetric(float64(optRounds), "optimal-rounds")
		})
	}
}

// BenchmarkE7LiveWrite measures in-process write latency (2 rounds on the
// adaptive fast path — the uncontended case) across fault budgets.
func BenchmarkE7LiveWrite(b *testing.B) {
	for _, t := range []int{1, 2} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			c, err := NewCluster(Options{Faults: t, Readers: 1, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			w := c.Writer()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Write(fmt.Sprintf("v%d", i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7LiveRead measures in-process 4-round read latency.
func BenchmarkE7LiveRead(b *testing.B) {
	for _, t := range []int{1, 2} {
		for _, readers := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("t=%d/R=%d", t, readers), func(b *testing.B) {
				c, err := NewCluster(Options{Faults: t, Readers: readers, Seed: 2})
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				if err := c.Writer().Write("x"); err != nil {
					b.Fatal(err)
				}
				r, err := c.Reader(1)
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := r.Read(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkE7SecretRead measures the 3-round secret-token read against the
// 4-round unauthenticated read (the Section 5 model contrast).
func BenchmarkE7SecretRead(b *testing.B) {
	c, err := NewCluster(Options{Faults: 1, Readers: 1, Model: SecretTokens, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if err := c.Writer().Write("x"); err != nil {
		b.Fatal(err)
	}
	r, err := c.Reader(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Read(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8TCP measures end-to-end write/read latency over loopback TCP
// against 4 storage daemons.
func BenchmarkE8TCP(b *testing.B) {
	th, err := quorum.NewThresholds(4, 1)
	if err != nil {
		b.Fatal(err)
	}
	var addrs []string
	for i := 1; i <= 4; i++ {
		s, err := tcpnet.NewServer(i, "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		addrs = append(addrs, s.Addr())
	}
	b.Run("write", func(b *testing.B) {
		wc := tcpnet.NewClient(types.Writer, addrs)
		defer wc.Close()
		wc.RoundTimeout = 5 * time.Second
		w := corereg.NewWriter(wc, th)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("read", func(b *testing.B) {
		rc := tcpnet.NewClient(types.Reader(1), addrs)
		defer rc.Close()
		rd := corereg.NewReader(rc, th, 1, 2)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rd.Read(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE9StorePut measures aggregate multi-key write throughput of the
// sharded Store layer across shard counts: 64 keys, parallel putters. Each
// shard is an independent single-writer register, so aggregate ops/sec
// scales with the shard count until the runtime saturates (compare ns/op
// across sub-benchmarks; lower is more throughput).
func BenchmarkE9StorePut(b *testing.B) {
	const keyCount = 64
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for _, shards := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := NewCluster(Options{Faults: 1, Readers: 2, Seed: 9})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			st, err := c.NewStore(StoreOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys { // instantiate every shard up front
				if err := st.Put(k, "warm"); err != nil {
					b.Fatal(err)
				}
			}
			var ctr int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := atomic.AddInt64(&ctr, 1)
					if err := st.Put(keys[i%keyCount], fmt.Sprintf("v%d", i)); err != nil {
						b.Error(err) // Fatal must not run off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkE9StorePutCoalesced isolates the group-commit win: every putter
// hammers keys of ONE shard, so without write coalescing all operations
// would serialize into one 2-round protocol execution each, while with
// coalescing concurrent mutations share register writes. The reported
// writes/op metric is the average number of register writes one Put costs
// (1.0 = no batching; lower = batched).
func BenchmarkE9StorePutCoalesced(b *testing.B) {
	const keyCount = 16
	c, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	st, err := c.NewStore(StoreOptions{Shards: 1})
	if err != nil {
		b.Fatal(err)
	}
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		if err := st.Put(keys[i], "warm"); err != nil {
			b.Fatal(err)
		}
	}
	sh, err := st.shards.Get(0)
	if err != nil {
		b.Fatal(err)
	}
	var flushes int64
	orig := sh.modify
	sh.modify = func(fn func(types.Pair) (types.Value, error)) (types.Pair, error) {
		atomic.AddInt64(&flushes, 1)
		return orig(fn)
	}
	origClean := sh.writeClean
	sh.writeClean = func(v types.Value) (types.Pair, bool, error) {
		atomic.AddInt64(&flushes, 1)
		return origClean(v)
	}
	var ctr int64
	b.SetParallelism(8) // 8×GOMAXPROCS putters: contention even on small boxes
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := atomic.AddInt64(&ctr, 1)
			if err := st.Put(keys[i%keyCount], fmt.Sprintf("v%d", i)); err != nil {
				b.Error(err) // Fatal must not run off the benchmark goroutine
				return
			}
		}
	})
	b.ReportMetric(float64(atomic.LoadInt64(&flushes))/float64(b.N), "writes/op")
}

// BenchmarkE9StoreGet measures aggregate multi-key read throughput: reads of
// one shard contend for its pool of R reader identities, so shards × R
// bounds read parallelism.
func BenchmarkE9StoreGet(b *testing.B) {
	const keyCount = 64
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			c, err := NewCluster(Options{Faults: 1, Readers: 2, Seed: 10})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			st, err := c.NewStore(StoreOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			for i, k := range keys {
				if err := st.Put(k, fmt.Sprintf("v%d", i)); err != nil {
					b.Fatal(err)
				}
			}
			var ctr int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := atomic.AddInt64(&ctr, 1)
					if _, err := st.Get(keys[i%keyCount]); err != nil {
						b.Error(err) // Fatal must not run off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkE16AdaptiveRead measures the adaptive Store read path in the
// three shapes the design targets. "stable" is the elision fast case:
// repeated Gets against an unchanging shard decide in the two query rounds
// and serve the table from the certified-TS cache (no write-back, no
// decode). "contended" hammers ONE hot single-shard store from all procs so
// concurrent Gets coalesce into shared protocol reads (the R-scaling
// collapse also visible in E7LiveRead R=1/4/8). "zipfmix" is the realistic
// blend: zipf-skewed Gets over 16 keys on 4 shards with a ~10% Put mix, so
// the certified-table cache is repeatedly invalidated and re-earned and
// elision degrades to the 4-round fallback around each write.
func BenchmarkE16AdaptiveRead(b *testing.B) {
	newStore := func(b *testing.B, seed int64, shards int) *Store {
		b.Helper()
		c, err := NewCluster(Options{Faults: 1, Readers: 4, Seed: seed})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		st, err := c.NewStore(StoreOptions{Shards: shards})
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	b.Run("stable", func(b *testing.B) {
		st := newStore(b, 16, 4)
		if err := st.Put("hot", "v"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := st.Get("hot"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("contended", func(b *testing.B) {
		st := newStore(b, 17, 1)
		if err := st.Put("hot", "v"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := st.Get("hot"); err != nil {
					b.Error(err) // Fatal must not run off the benchmark goroutine
					return
				}
			}
		})
	})
	b.Run("zipfmix", func(b *testing.B) {
		const keyCount = 16
		st := newStore(b, 18, 4)
		keys := make([]string, keyCount)
		for i := range keys {
			keys[i] = fmt.Sprintf("key-%02d", i)
			if err := st.Put(keys[i], "v0"); err != nil {
				b.Fatal(err)
			}
		}
		zipf := rand.NewZipf(rand.New(rand.NewSource(18)), 1.2, 1, keyCount-1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := keys[zipf.Uint64()]
			if i%10 == 9 {
				if err := st.Put(k, fmt.Sprintf("v%d", i)); err != nil {
					b.Fatal(err)
				}
			} else if _, err := st.Get(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE10PersistPut measures the durability tax on the sharded Store
// write path: the E9StorePut workload shape (64 keys, 8 shards, parallel
// putters) over loopback TCP against 4 daemons, with a volatile control and
// the three WAL fsync modes. "off" and "batch" share the same hot path (one
// write(2) per logged record; batch adds background fsyncs), so they should
// sit close together; "always" pays a group-committed fsync per batch of
// concurrent appends.
func BenchmarkE10PersistPut(b *testing.B) {
	const keyCount = 64
	keys := make([]string, keyCount)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
	}
	for _, tc := range []struct {
		name    string
		durable bool
		mode    persist.FsyncMode
	}{
		{"volatile", false, 0},
		{"fsync=off", true, persist.FsyncOff},
		{"fsync=batch", true, persist.FsyncBatch},
		{"fsync=always", true, persist.FsyncAlways},
	} {
		b.Run(tc.name, func(b *testing.B) {
			base := b.TempDir()
			var addrs []string
			for i := 1; i <= 4; i++ {
				opts := tcpnet.ServerOptions{}
				if tc.durable {
					opts.DataDir = fmt.Sprintf("%s/s%d", base, i)
					opts.Fsync = tc.mode
				}
				s, err := tcpnet.NewServerWith(i, "127.0.0.1:0", opts)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				addrs = append(addrs, s.Addr())
			}
			c, err := Connect(addrs, Options{Faults: 1, Readers: 2, Seed: 12})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			st, err := c.NewStore(StoreOptions{Shards: 8})
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range keys { // instantiate every shard up front
				if err := st.Put(k, "warm"); err != nil {
					b.Fatal(err)
				}
			}
			var ctr int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := atomic.AddInt64(&ctr, 1)
					if err := st.Put(keys[i%keyCount], fmt.Sprintf("v%d", i)); err != nil {
						b.Error(err) // Fatal must not run off the benchmark goroutine
						return
					}
				}
			})
		})
	}
}

// BenchmarkE11MultiWriterContention measures the multi-writer register's
// contention behavior over loopback TCP: W independent Connected processes
// (distinct WriterIDs, disjoint reader identities) put concurrently, either
// all hammering ONE key of one shard (every flush races every other) or
// each writing its own key on a distinct shard (no cross-writer contention,
// isolating the per-writer protocol cost). writers=1 is the post-refactor
// single-writer baseline; compare its ns/op against the recorded E10
// volatile numbers for the measured 2-round→3-round write latency tax.
func BenchmarkE11MultiWriterContention(b *testing.B) {
	for _, writers := range []int{1, 2, 4, 8} {
		for _, mode := range []string{"one-shard", "spread"} {
			b.Run(fmt.Sprintf("writers=%d/%s", writers, mode), func(b *testing.B) {
				var addrs []string
				for i := 1; i <= 4; i++ {
					s, err := tcpnet.NewServer(i, "127.0.0.1:0")
					if err != nil {
						b.Fatal(err)
					}
					defer s.Close()
					addrs = append(addrs, s.Addr())
				}
				const shards = 8
				stores := make([]*Store, writers)
				keys := make([]string, writers)
				usedShard := map[int]bool{}
				for w := 0; w < writers; w++ {
					c, err := Connect(addrs, Options{
						Faults:   1,
						Readers:  writers,
						WriterID: w + 1,
						Seed:     int64(1100 + w),
					})
					if err != nil {
						b.Fatal(err)
					}
					defer c.Close()
					st, err := c.NewStore(StoreOptions{Shards: shards, Readers: []int{w + 1}})
					if err != nil {
						b.Fatal(err)
					}
					stores[w] = st
					switch mode {
					case "one-shard":
						keys[w] = "contended"
					default: // spread: per-writer key on a distinct shard
						for i := 0; ; i++ {
							name := fmt.Sprintf("spread-%d-%d", w, i)
							if sh := st.ShardOf(name); !usedShard[sh] {
								usedShard[sh] = true
								keys[w] = name
								break
							}
						}
					}
					if err := st.Put(keys[w], "warm"); err != nil {
						b.Fatal(err)
					}
				}
				var ctr int64
				var wg sync.WaitGroup
				b.ResetTimer()
				for w := 0; w < writers; w++ {
					w := w
					wg.Add(1)
					go func() {
						defer wg.Done()
						for {
							i := atomic.AddInt64(&ctr, 1)
							if i > int64(b.N) {
								return
							}
							if err := stores[w].Put(keys[w], fmt.Sprintf("w%d-v%d", w, i)); err != nil {
								b.Error(err) // Fatal must not run off the benchmark goroutine
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}

// BenchmarkE12AdaptiveWrite quantifies the reclaimed multi-writer tax (the
// E12 experiment): the same register written through the adaptive fast path
// (2 rounds uncontended), through the unconditional PR 4 discovery flow
// (3 rounds — DiscoverNext then the write phases, measured live as the
// pre-adaptive baseline), and under forced contention (two writers, one
// always lagging two foreign writes, so every second write pays the
// 3-round fallback). The rounds/op metric makes the adaptivity visible
// directly rather than through ns/op.
func BenchmarkE12AdaptiveWrite(b *testing.B) {
	newWriterCluster := func(b *testing.B, hook func(string)) (*Cluster, *Writer) {
		c, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 12, RoundHook: hook})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		return c, c.Writer()
	}
	b.Run("fast-uncontended", func(b *testing.B) {
		var rounds int64
		_, w := newWriterCluster(b, func(string) { atomic.AddInt64(&rounds, 1) })
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w.Write(fmt.Sprintf("v%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(atomic.LoadInt64(&rounds))/float64(b.N), "rounds/op")
	})
	b.Run("discover-baseline", func(b *testing.B) {
		// The PR 4 flow, run live: an explicit discovery round before every
		// write — what every MWMR write cost before the fast path.
		c, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 13})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Close()
		th, err := quorum.NewThresholds(4, 1)
		if err != nil {
			b.Fatal(err)
		}
		rc := c.inproc.NewClientReg(types.Writer, 0)
		rw := regular.NewWriterAt(rc, th, types.WriterReg, 0, types.TS{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			next, err := corereg.DiscoverNext(rc, th, 0, rw.LastTS(), "WDISC")
			if err != nil {
				b.Fatal(err)
			}
			if err := rw.WritePair(types.Pair{TS: next, Val: types.Value(fmt.Sprintf("v%d", i))}); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(3, "rounds/op")
	})
	b.Run("contended-fallback", func(b *testing.B) {
		// Writer 2 stays two writes ahead of writer 1's cache, so every
		// writer-1 write conflicts and pays the 3-round fallback while
		// writer 2 rides the fast path — the adaptive mix under sustained
		// interference.
		var rounds int64
		hook := func(string) { atomic.AddInt64(&rounds, 1) }
		c1, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 14, WriterID: 1, RoundHook: hook})
		if err != nil {
			b.Fatal(err)
		}
		defer c1.Close()
		w1 := c1.Writer()
		th, err := quorum.NewThresholds(4, 1)
		if err != nil {
			b.Fatal(err)
		}
		// Writer 2 runs on the SAME in-process cluster via a direct client.
		w2 := corereg.NewWriterAt(proto.Observe(c1.inproc.NewClientReg(types.WriterID(2), 0), hook), th, 2, types.TS{})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := w2.Write(types.Value(fmt.Sprintf("x%d", i))); err != nil {
				b.Fatal(err)
			}
			if err := w2.Write(types.Value(fmt.Sprintf("y%d", i))); err != nil {
				b.Fatal(err)
			}
			if err := w1.Write(fmt.Sprintf("v%d", i)); err != nil {
				b.Fatal(err)
			}
		}
		// rounds/op over the three writes of each iteration (2+2+3 when the
		// adaptive mix behaves as designed).
		b.ReportMetric(float64(atomic.LoadInt64(&rounds))/float64(3*b.N), "rounds/op")
	})
}

// BenchmarkE12StoreFlush contrasts the Store's adaptive flush (3-round
// validated write; 1-round no-op elision) against the certified 4-round
// read-modify-write it replaced (PR 4's unconditional flush, still the
// fallback path — measured by disabling the fast path).
func BenchmarkE12StoreFlush(b *testing.B) {
	newStore := func(b *testing.B, disableFast bool) *Store {
		c, err := NewCluster(Options{Faults: 1, Readers: 1, Seed: 15})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(c.Close)
		st, err := c.NewStore(StoreOptions{Shards: 1})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Put("k", "warm"); err != nil {
			b.Fatal(err)
		}
		if disableFast {
			sh, err := st.shards.Get(0)
			if err != nil {
				b.Fatal(err)
			}
			sh.writeClean = nil
		}
		return st
	}
	b.Run("validated-fast", func(b *testing.B) {
		st := newStore(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put("k", fmt.Sprintf("v%d", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("certified-slow", func(b *testing.B) {
		st := newStore(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put("k", fmt.Sprintf("v%d", i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("noop-elided", func(b *testing.B) {
		st := newStore(b, false)
		if err := st.Put("k", "same"); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Put("k", "same"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE13PipelinedStorePut measures the wire-generation-3 win: 256
// concurrent putters over a 64-shard Store against 4 loopback TCP daemons,
// once over the pipelined multiplexed transport (one connection per daemon,
// demuxed by request ID, concurrent shard flushes coalesced into batched
// frames) and once over the lock-step baseline (Options.LockStep — the
// one-in-flight wire behavior of generations ≤ 2). Alongside ns/op the
// benchmark reports the per-Put latency distribution (p50-ns, p99-ns):
// pipelining must buy aggregate throughput without letting tail latency
// blow up. scripts/benchdiff.sh additionally gates pipelined throughput at
// ≥ 3x lock-step.
func BenchmarkE13PipelinedStorePut(b *testing.B) {
	const (
		shards  = 64
		clients = 256
	)
	for _, mode := range []string{"pipelined", "lockstep"} {
		b.Run(mode, func(b *testing.B) {
			var addrs []string
			for i := 1; i <= 4; i++ {
				s, err := tcpnet.NewServer(i, "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				addrs = append(addrs, s.Addr())
			}
			c, err := Connect(addrs, Options{Faults: 1, Readers: 1, Seed: 13, LockStep: mode == "lockstep"})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			st, err := c.NewStore(StoreOptions{Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			keys := make([]string, clients)
			for i := range keys { // instantiate every shard up front
				keys[i] = fmt.Sprintf("e13-key-%03d", i)
				if err := st.Put(keys[i], "warm"); err != nil {
					b.Fatal(err)
				}
			}
			lats := make([][]int64, clients)
			for g := range lats {
				lats[g] = make([]int64, 0, b.N/clients+1)
			}
			var ctr int64
			var wg sync.WaitGroup
			b.ResetTimer()
			for g := 0; g < clients; g++ {
				g := g
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						i := atomic.AddInt64(&ctr, 1)
						if i > int64(b.N) {
							return
						}
						start := time.Now()
						if err := st.Put(keys[int(i)%clients], fmt.Sprintf("v%d", i)); err != nil {
							b.Error(err) // Fatal must not run off the benchmark goroutine
							return
						}
						lats[g] = append(lats[g], time.Since(start).Nanoseconds())
					}
				}()
			}
			wg.Wait()
			b.StopTimer()
			var all []int64
			for _, l := range lats {
				all = append(all, l...)
			}
			if len(all) == 0 {
				return
			}
			sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
			pct := func(p int) float64 { return float64(all[p*(len(all)-1)/100]) }
			b.ReportMetric(pct(50), "p50-ns")
			b.ReportMetric(pct(99), "p99-ns")
		})
	}
}

// BenchmarkSimRegularRead profiles the decision procedure's fault-set
// enumeration cost (the documented O(S^t) engineering tradeoff).
func BenchmarkSimRegularRead(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("t=%d", t), func(b *testing.B) {
			c, err := NewCluster(Options{Faults: t, Readers: 1, Seed: 4})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if err := c.Writer().Write("x"); err != nil {
				b.Fatal(err)
			}
			r, err := c.Reader(1)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := r.Read(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
