// Package robustatomic is a robust atomic read/write storage library: a
// wait-free, optimally resilient MULTI-WRITER multi-reader atomic register
// over S = 3t+1 Byzantine-prone storage objects without data authentication.
// "The Complexity of Robust Atomic Storage" (Dobre, Guerraoui, Majuntke,
// Suri, Vukolić; PODC 2011) proves 4-round reads optimal in the WORST case;
// both operations here are ADAPTIVE. Writes take 2 rounds — the paper's
// single-writer optimum — whenever no concurrent foreign writer interferes
// (the optimistic proposal's prewrite round doubles as its validation),
// degrading to 3 under genuine write contention and bounded further only
// against Byzantine-forged reports. Reads take 2 rounds on a stable
// register: when the two query rounds certify the chosen value as
// completely written on a full quorum, the 2-round write-back is provably
// redundant and elided (see the internal/core package documentation for
// the safety argument), falling back to the full 4 rounds exactly when a
// concurrent or Byzantine-disturbed execution leaves completeness in
// doubt. The price of robustness is thus paid only when contention or
// faults actually show up. Timestamps are lexicographically ordered
// (Seq, WriterID) pairs, so writers that race to the same sequence number
// still issue totally ordered timestamps.
//
// The library runs over an in-process cluster (goroutines and channels, with
// optional fault injection and random delays) or over TCP against storage
// daemons (cmd/storaged); the protocol stack is identical in both cases.
// Processes that may write concurrently to one deployment configure
// distinct Options.WriterID values:
//
//	cluster, _ := robustatomic.NewCluster(robustatomic.Options{Faults: 1, Readers: 2})
//	defer cluster.Close()
//	w := cluster.Writer()
//	_ = w.Write("hello") // 2 rounds uncontended (adaptive fast path)
//	r, _ := cluster.Reader(1)
//	v, _ := r.Read() // "hello" (2 rounds stable; 4 worst case — the paper's optimum)
//
// Beyond the paper's single register, Store shards a keyed Put/Get API over
// N independent MWMR registers hosted on the same objects. Within a
// process, concurrent writes to one shard coalesce into a single adaptive
// flush (group commit; a validated 3-round write when the committer's
// cache is current, the certified read-modify-write when a foreign write
// forces a rebase, one validation round and no write at all for no-op
// batches); across processes, separately Connected clients with distinct
// WriterIDs (and disjoint StoreOptions.Readers) may Put concurrently —
// contention on the same key resolves atomically to one of the written
// values:
//
//	st, _ := cluster.NewStore(robustatomic.StoreOptions{Shards: 8})
//	_ = st.Put("order:42", "shipped")
//	v, _ = st.Get("order:42") // "shipped"
//
// Daemons started with -data-dir write-ahead-log every state mutation and
// recover it on restart, so a crashed object resumes as correct-but-slow
// instead of burning the fault budget with amnesia (pre-multi-writer data
// directories replay unchanged); Cluster.Repair (storctl repair)
// reconstitutes a wiped replacement object from a quorum of its live peers.
//
// See DESIGN.md for the paper reproduction map, the multi-writer promotion,
// the Store layer design and the durability subsystem, and EXPERIMENTS.md
// for the measured results (E11: the multi-writer round tax and contention
// behavior).
package robustatomic

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"robustatomic/internal/core"
	"robustatomic/internal/live"
	"robustatomic/internal/obs"
	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/secret"
	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"
)

// Model selects the failure/authentication model.
type Model int

// Models.
const (
	// Unauthenticated is the paper's primary model: Byzantine objects, no
	// data authentication. Writes take 2 rounds, reads 4 — optimal.
	Unauthenticated Model = iota + 1
	// SecretTokens is the stronger model of [DMSS09]: reads take 3 rounds
	// in contention-free executions.
	SecretTokens
)

// Options configures a cluster.
type Options struct {
	// Faults is t, the number of Byzantine storage objects tolerated.
	// The cluster uses S = 3t+1 objects. Default 1.
	Faults int
	// Readers is R, the number of reader handles (each gets a dedicated
	// write-back register). Default 2.
	Readers int
	// WriterID identifies this process's writer among the register's
	// concurrent writers: it is embedded in every timestamp the process
	// issues, breaking ties between writers that concurrently picked the
	// same sequence number. Processes that may write concurrently to the
	// same cluster MUST use distinct ids; 0 (the default) is writer w_0,
	// which preserves the exact timestamps of the original single-writer
	// deployments.
	WriterID int
	// Model selects the failure model. Default Unauthenticated.
	Model Model
	// LockStep disables request pipelining on remote clusters: every handle
	// gets a private connection pool allowing one in-flight request per
	// object, the wire behavior of generations ≤ 2. Kept as the E13 baseline
	// and a conservative escape hatch; the default (false) multiplexes every
	// handle's rounds over one pipelined connection per object.
	LockStep bool
	// Coalesce controls cross-shard flush coalescing (see CoalesceMode).
	Coalesce CoalesceMode
	// Seed drives randomized delays and token generation.
	Seed int64
	// MaxDelay bounds random in-process message delays (0 = none).
	MaxDelay time.Duration
	// RoundHook, when set, is invoked with the round's label after every
	// successfully completed communication round of every handle built from
	// this cluster — instrumentation for round-complexity assertions and
	// benchmarks (tests assert "2 rounds per uncontended write" instead of
	// inferring it from latency). It may be called concurrently from the
	// goroutines driving operations; keep it cheap and thread-safe.
	RoundHook func(label string)
	// Tracer, when set, samples per-operation round traces: every handle's
	// round executor is wrapped so that a Store flush or Get the tracer
	// selects records each of its rounds with per-object send/reply/error
	// timestamps (including sub-rounds riding another leader's merged batch
	// frame). Off the sampled path the wrapper costs one atomic load per
	// round. Failed traced operations are retained for post-mortem dumps —
	// see obs.Tracer.FormatFailed and the chaos harnesses.
	Tracer *obs.Tracer
}

// CoalesceMode controls whether concurrent Store shard flushes merge into
// cross-register batched rounds (one frame per object for the whole batch)
// instead of one round per shard.
type CoalesceMode int

// Coalesce modes.
const (
	// CoalesceAuto (the default) coalesces exactly where it pays: remote
	// clusters with pipelining enabled. In-process rounds have no frames to
	// save, and a lock-step transport would serialize the merged rounds
	// anyway.
	CoalesceAuto CoalesceMode = iota
	// CoalesceOn forces coalescing (any transport — the in-process runtime
	// batches too, which the chaos tests exercise).
	CoalesceOn
	// CoalesceOff disables coalescing: every shard flush runs its own
	// rounds.
	CoalesceOff
)

func (o *Options) defaults() {
	if o.Faults == 0 {
		o.Faults = 1
	}
	if o.Readers == 0 {
		o.Readers = 2
	}
	if o.Model == 0 {
		o.Model = Unauthenticated
	}
}

// Cluster is a handle to a running storage cluster (in-process or remote).
// Handle creation (Writer, Reader, NewStore) is safe for concurrent use;
// each handle is then single-goroutine as the model prescribes.
type Cluster struct {
	opts Options
	th   quorum.Thresholds

	inproc *live.Cluster // nil when remote
	addrs  []string      // nil when in-process
	// shared marks a Sibling handle: Close must not shut down the in-process
	// runtime it borrowed from its parent.
	shared bool

	mu         sync.Mutex // guards tcpClients, mux, combiner
	tcpClients []*tcpnet.Client
	// mux is the shared pipelined transport of a remote cluster: every
	// handle's rounds multiplex over its one connection per object. Built
	// lazily; nil in-process or under Options.LockStep.
	mux *tcpnet.Mux
	// combiner merges concurrent Store shard flushes into batched rounds
	// (lazily built by the first coalescing shard writer).
	combiner *proto.Combiner
}

// mixSeed derives a deterministic sub-seed from the cluster seed and a
// handle's coordinates, splitmix64-style, so every handle gets a private
// rand stream: near-identical inputs (adjacent reader indices, adjacent
// shards) yield unrelated streams, and no two handles ever share a
// *rand.Rand (which is not concurrency-safe).
func mixSeed(seed int64, salts ...int64) int64 {
	z := uint64(seed) ^ 0x5eedcafe
	for _, s := range salts {
		z ^= uint64(s) + 0x9e3779b97f4a7c15 + (z << 6) + (z >> 2)
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return int64(z)
}

// handleRNG returns a fresh private rand stream for the handle (proc, reg).
func (c *Cluster) handleRNG(proc types.ProcID, reg int) *rand.Rand {
	return rand.New(rand.NewSource(mixSeed(c.opts.Seed, int64(proc.Kind), int64(proc.Idx), int64(reg))))
}

// NewCluster starts an in-process cluster of S = 3t+1 storage objects.
func NewCluster(opts Options) (*Cluster, error) {
	opts.defaults()
	th, err := quorum.NewThresholds(quorum.OptimalObjects(opts.Faults), opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("robustatomic: %w", err)
	}
	c := &Cluster{
		opts: opts,
		th:   th,
		inproc: live.New(live.Config{
			Servers:  th.S,
			Seed:     opts.Seed,
			MaxDelay: opts.MaxDelay,
		}),
	}
	return c, nil
}

// Connect attaches to a remote cluster of storage daemons (cmd/storaged);
// addrs[i] must serve object i+1 and len(addrs) must be 3t+1 for the
// configured fault budget.
func Connect(addrs []string, opts Options) (*Cluster, error) {
	opts.defaults()
	th, err := quorum.NewThresholds(len(addrs), opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("robustatomic: %w", err)
	}
	return &Cluster{
		opts:  opts,
		th:    th,
		addrs: addrs,
	}, nil
}

// Sibling returns a second logical client process over the same running
// cluster: it shares the in-process runtime (or the daemon addresses) but
// carries its own WriterID, reader identities, seed and transport state —
// the in-process twin of a second machine running Connect. Concurrent
// sibling processes MUST configure distinct WriterIDs and use disjoint
// reader identities (reader handles own their write-back registers).
// Closing a sibling releases only its own transports; the parent's Close
// shuts the shared runtime down.
func (c *Cluster) Sibling(opts Options) (*Cluster, error) {
	opts.defaults()
	if opts.Faults != c.opts.Faults {
		return nil, fmt.Errorf("robustatomic: sibling fault budget %d != cluster's %d", opts.Faults, c.opts.Faults)
	}
	return &Cluster{
		opts:   opts,
		th:     c.th,
		inproc: c.inproc,
		addrs:  c.addrs,
		shared: true,
	}, nil
}

// Close shuts down an in-process cluster or the TCP connections.
func (c *Cluster) Close() {
	if c.inproc != nil && !c.shared {
		c.inproc.Close()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, tc := range c.tcpClients {
		tc.Close()
	}
	if c.mux != nil {
		c.mux.Close()
	}
}

// Faults returns t.
func (c *Cluster) Faults() int { return c.th.T }

// Objects returns S = 3t+1.
func (c *Cluster) Objects() int { return c.th.S }

// InjectFault makes in-process object sid Byzantine with a named behavior:
// "silent", "garbage", "stale", "equivocate" or "flaky". It is a no-op
// template for chaos testing; remote clusters configure behaviors on the
// daemons instead.
func (c *Cluster) InjectFault(sid int, mode string) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: fault injection needs an in-process cluster")
	}
	var b server.Behavior
	switch mode {
	case "silent":
		b = server.Silent{}
	case "garbage":
		b = server.Garbage{Level: 1 << 30, Val: "forged"}
	case "stale":
		// No explicit snapshot: every register instance the object hosts
		// (the single default register and each Store shard) is frozen at
		// its own state when the fault first bites, so staleness attacks
		// stay meaningful per shard.
		b = &server.Stale{}
	case "equivocate":
		b = server.Equivocate{Readers: &server.Stale{}}
	case "flaky":
		// Seed per object: flaky objects must not drop the same message
		// pattern in lockstep, or t flaky objects act as one.
		b = server.Flaky{Rand: rand.New(rand.NewSource(mixSeed(c.opts.Seed, int64(sid)))), DropProb: 0.5}
	default:
		return fmt.Errorf("robustatomic: unknown fault mode %q", mode)
	}
	c.inproc.SetByzantine(sid, b)
	return nil
}

// ClearFault restores in-process object sid to honest behavior, counting it
// back out of the fault budget (chaos windows end this way).
func (c *Cluster) ClearFault(sid int) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: fault injection needs an in-process cluster")
	}
	c.inproc.ClearByzantine(sid)
	return nil
}

// Partition cuts in-process object sid off the network: its inbound messages
// are dropped before processing, so its state does not advance — the
// in-process twin of a network partition (and, since live objects have no
// disk, also of a kill -9 with preserved state: the object resumes exactly
// where it stopped when Heal reconnects it). At most t objects may be
// partitioned at a time for rounds to stay live. Remote clusters partition
// via tcpnet.Server.SetPartitioned on the daemons instead.
func (c *Cluster) Partition(sid int) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: partitioning needs an in-process cluster")
	}
	c.inproc.SetPartitioned(sid, true)
	return nil
}

// Heal reconnects a partitioned in-process object.
func (c *Cluster) Heal(sid int) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: partitioning needs an in-process cluster")
	}
	c.inproc.SetPartitioned(sid, false)
	return nil
}

// SetNetem injects seeded link faults on in-process object sid: each inbound
// message is dropped with probability drop (never processed) and surviving
// replies are duplicated with probability dup. Both zero clears. The rand
// stream derives from the cluster seed and sid, so a replayed seed replays
// the same loss pattern. Composes with InjectFault — netem is the network,
// not the object.
func (c *Cluster) SetNetem(sid int, drop, dup float64) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: netem needs an in-process cluster")
	}
	if drop == 0 && dup == 0 {
		c.inproc.SetNetem(sid, nil, 0, 0)
		return nil
	}
	rng := rand.New(rand.NewSource(mixSeed(c.opts.Seed, int64(sid), 0x6e65746d)))
	c.inproc.SetNetem(sid, rng, drop, dup)
	return nil
}

// rounder builds the transport handle for one process against register
// instance reg (0 is the default single register; the Store layer uses
// 1..Shards).
func (c *Cluster) rounder(proc types.ProcID, reg int) proto.Rounder {
	r := c.transport(proc, reg)
	if c.opts.RoundHook != nil {
		r = proto.Observe(r, c.opts.RoundHook)
	}
	return r
}

// transport builds the raw (unobserved) round executor for (proc, reg).
func (c *Cluster) transport(proc types.ProcID, reg int) proto.Rounder {
	if c.inproc != nil {
		return c.inproc.NewClientReg(proc, reg)
	}
	if c.opts.LockStep {
		tc := tcpnet.NewLockStepClientReg(proc, c.addrs, reg)
		c.mu.Lock()
		c.tcpClients = append(c.tcpClients, tc)
		c.mu.Unlock()
		return tc
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.muxLocked().Client(proc, reg)
}

// muxLocked returns the shared pipelined Mux, building it on first use.
// Callers must hold c.mu.
func (c *Cluster) muxLocked() *tcpnet.Mux {
	if c.mux == nil {
		c.mux = tcpnet.NewMux(c.addrs)
	}
	return c.mux
}

// coalesceOn resolves Options.Coalesce for this cluster.
func (c *Cluster) coalesceOn() bool {
	switch c.opts.Coalesce {
	case CoalesceOn:
		return true
	case CoalesceOff:
		return false
	default:
		return c.addrs != nil && !c.opts.LockStep
	}
}

// flushCombiner returns the cluster-wide Combiner merging concurrent Store
// shard flushes (this process's writer identity) into batched rounds on one
// batch-capable inner transport.
func (c *Cluster) flushCombiner() *proto.Combiner {
	proc := types.WriterID(c.opts.WriterID)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.combiner != nil {
		return c.combiner
	}
	var inner proto.Rounder
	switch {
	case c.inproc != nil:
		inner = c.inproc.NewClientReg(proc, 0)
	case c.opts.LockStep:
		// CoalesceOn forced over a lock-step transport: merged rounds still
		// batch into one frame, just one in flight at a time.
		tc := tcpnet.NewLockStepClientReg(proc, c.addrs, 0)
		c.tcpClients = append(c.tcpClients, tc)
		inner = tc
	default:
		inner = c.muxLocked().Client(proc, 0)
	}
	c.combiner = proto.NewCombiner(inner)
	return c.combiner
}

// shardWriter builds the committer's writer handle for shard register reg.
// With coalescing on, the writer's rounds run through the cluster-wide
// Combiner, so concurrent flushes of different shards merge into one
// batched frame per object; the RoundHook still observes each shard's
// logical rounds individually (the hook wraps above the Combiner).
func (c *Cluster) shardWriter(reg int, last types.TS) *Writer {
	if !c.coalesceOn() {
		return c.writerReg(reg, last)
	}
	r := proto.Rounder(c.flushCombiner().Rounder(reg))
	if c.opts.RoundHook != nil {
		r = proto.Observe(r, c.opts.RoundHook)
	}
	return c.writerOn(r, reg, last)
}

// Writer is one of the register's writer handles. Its identity is the
// cluster's Options.WriterID; distinct concurrently-writing processes must
// configure distinct ids. A single handle is single-goroutine, like every
// client of the model.
type Writer struct {
	c      *Cluster
	plain  *core.Writer
	secret *secret.AtomicWriter
	// traced is the handle's trace-capable round executor (nil unless
	// Options.Tracer is set); the Store layer points it at sampled OpTraces.
	traced *proto.Traced
}

// Writer returns this process's writer handle for the standalone register
// (create it once per process; concurrent processes use distinct WriterIDs).
func (c *Cluster) Writer() *Writer { return c.writerReg(0, types.TS{}) }

// writerReg builds the writer handle for register instance reg, resuming
// from a known last timestamp (zero for a fresh register).
func (c *Cluster) writerReg(reg int, last types.TS) *Writer {
	return c.writerOn(c.rounder(types.WriterID(c.opts.WriterID), reg), reg, last)
}

// writerOn builds the writer handle for register instance reg over an
// already-constructed round executor.
func (c *Cluster) writerOn(rc proto.Rounder, reg int, last types.TS) *Writer {
	proc := types.WriterID(c.opts.WriterID)
	wid := int64(c.opts.WriterID)
	w := &Writer{c: c}
	if c.opts.Tracer != nil {
		w.traced = proto.Trace(rc, reg)
		rc = w.traced
	}
	switch c.opts.Model {
	case SecretTokens:
		w.secret = secret.NewAtomicWriterAt(rc, c.th, c.handleRNG(proc, reg), wid, last)
	default:
		w.plain = core.NewWriterAt(rc, c.th, wid, last)
	}
	return w
}

// Write stores v (2 communication rounds — the optimistic proposal plus
// its commit — whenever no concurrent foreign writer interfered; bounded
// fallback rounds otherwise, see internal/core's adaptive write flow). A
// wrong-epoch redirect (the membership was reconfigured under the handle)
// triggers a transparent config refetch and retry; every Writer operation
// below reacts the same way.
func (w *Writer) Write(v string) error {
	return w.c.retryEpoch(func() error {
		if w.plain != nil {
			return w.plain.Write(types.Value(v))
		}
		return w.secret.Write(types.Value(v))
	})
}

// modifyPair performs the certified read-modify-write the keyed Store layer
// rebases through (4 rounds: certified 2-round regular read + 2-round write
// at the successor timestamp).
func (w *Writer) modifyPair(fn func(cur types.Pair) (types.Value, error)) (p types.Pair, err error) {
	err = w.c.retryEpoch(func() error {
		var e error
		if w.plain != nil {
			p, e = w.plain.Modify(fn)
		} else {
			p, e = w.secret.Modify(fn)
		}
		return e
	})
	return p, err
}

// writeCleanPair attempts the flush fast path: one freshness round, then —
// iff no foreign write landed since the writer's last timestamp — the two
// write phases install v at the cached successor (3 rounds, no decision
// procedure).
func (w *Writer) writeCleanPair(v types.Value) (p types.Pair, ok bool, err error) {
	err = w.c.retryEpoch(func() error {
		var e error
		if w.plain != nil {
			p, ok, e = w.plain.WriteClean(v)
		} else {
			p, ok, e = w.secret.WriteClean(v)
		}
		return e
	})
	return p, ok, err
}

// validateClean runs the 1-round freshness check backing no-op flush
// elision.
func (w *Writer) validateClean() (ok bool, err error) {
	err = w.c.retryEpoch(func() error {
		var e error
		if w.plain != nil {
			ok, e = w.plain.Validate()
		} else {
			ok, e = w.secret.Validate()
		}
		return e
	})
	return ok, err
}

// Reader is one of the register's R reader handles.
type Reader struct {
	c      *Cluster
	plain  *core.Reader
	secret *secret.AtomicReader
	// traced is the handle's trace-capable round executor (nil unless
	// Options.Tracer is set); the Store layer points it at sampled OpTraces.
	traced *proto.Traced
}

// Reader returns reader handle idx (1-based, ≤ Options.Readers). Each
// reader identity must be used by at most one client at a time. Sequential
// reuse across process lifetimes is safe: a fresh handle rediscovers its
// write-back sequence number from its first read's query rounds, so it
// never re-issues a number an earlier lifetime already used (see
// core.ResumeSeq). Concurrent use of one identity remains forbidden.
func (c *Cluster) Reader(idx int) (*Reader, error) { return c.readerReg(idx, 0) }

// readerReg builds reader handle idx for register instance reg.
func (c *Cluster) readerReg(idx, reg int) (*Reader, error) {
	if idx < 1 || idx > c.opts.Readers {
		return nil, fmt.Errorf("robustatomic: reader index %d out of 1..%d", idx, c.opts.Readers)
	}
	rc := c.rounder(types.Reader(idx), reg)
	r := &Reader{c: c}
	if c.opts.Tracer != nil {
		r.traced = proto.Trace(rc, reg)
		rc = r.traced
	}
	switch c.opts.Model {
	case SecretTokens:
		r.secret = secret.NewAtomicReader(rc, c.th, c.handleRNG(types.Reader(idx), reg), idx, c.opts.Readers)
	default:
		r.plain = core.NewReader(rc, c.th, idx, c.opts.Readers)
	}
	return r, nil
}

// Read returns the register's current value (adaptive: 2 communication
// rounds on a stable register — 1 in the SecretTokens model — with the
// write-back elided when the query rounds certify the chosen value as
// completely written; 4 rounds worst case under contention or Byzantine
// disturbance, which Proposition 1 proves optimal). The empty string is the
// initial value.
func (r *Reader) Read() (string, error) {
	p, err := r.readPair()
	return string(p.Val), err
}

// readPair performs the atomic read and returns the chosen timestamp-value
// pair (the Store layer needs the timestamp for writer recovery). Like the
// Writer operations, a wrong-epoch redirect refetches the configuration and
// retries transparently.
func (r *Reader) readPair() (p types.Pair, err error) {
	err = r.c.retryEpoch(func() error {
		var e error
		if r.plain != nil {
			p, e = r.plain.ReadPair()
		} else {
			p, e = r.secret.ReadPair()
		}
		return e
	})
	return p, err
}

// elided reports whether the last readPair skipped its write-back (the
// query rounds certified the chosen pair as completely written).
func (r *Reader) elided() bool {
	if r.plain != nil {
		return r.plain.Elided
	}
	return r.secret.Elided
}
