// Package robustatomic is a robust atomic read/write storage library: a
// wait-free, optimally resilient single-writer multi-reader atomic register
// over S = 3t+1 Byzantine-prone storage objects without data authentication,
// with time-optimal operation latency — 2-round writes and 4-round reads —
// per "The Complexity of Robust Atomic Storage" (Dobre, Guerraoui, Majuntke,
// Suri, Vukolić; PODC 2011), whose lower bounds prove no scalable
// implementation can do better.
//
// The library runs over an in-process cluster (goroutines and channels, with
// optional fault injection and random delays) or over TCP against storage
// daemons (cmd/storaged); the protocol stack is identical in both cases.
//
//	cluster, _ := robustatomic.NewCluster(robustatomic.Options{Faults: 1, Readers: 2})
//	defer cluster.Close()
//	w := cluster.Writer()
//	_ = w.Write("hello")
//	r, _ := cluster.Reader(1)
//	v, _ := r.Read() // "hello"
//
// See DESIGN.md for the paper reproduction map and EXPERIMENTS.md for the
// measured results.
package robustatomic

import (
	"fmt"
	"math/rand"
	"time"

	"robustatomic/internal/core"
	"robustatomic/internal/live"
	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/secret"
	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
	"robustatomic/internal/types"
)

// Model selects the failure/authentication model.
type Model int

// Models.
const (
	// Unauthenticated is the paper's primary model: Byzantine objects, no
	// data authentication. Writes take 2 rounds, reads 4 — optimal.
	Unauthenticated Model = iota + 1
	// SecretTokens is the stronger model of [DMSS09]: reads take 3 rounds
	// in contention-free executions.
	SecretTokens
)

// Options configures a cluster.
type Options struct {
	// Faults is t, the number of Byzantine storage objects tolerated.
	// The cluster uses S = 3t+1 objects. Default 1.
	Faults int
	// Readers is R, the number of reader handles (each gets a dedicated
	// write-back register). Default 2.
	Readers int
	// Model selects the failure model. Default Unauthenticated.
	Model Model
	// Seed drives randomized delays and token generation.
	Seed int64
	// MaxDelay bounds random in-process message delays (0 = none).
	MaxDelay time.Duration
}

func (o *Options) defaults() {
	if o.Faults == 0 {
		o.Faults = 1
	}
	if o.Readers == 0 {
		o.Readers = 2
	}
	if o.Model == 0 {
		o.Model = Unauthenticated
	}
}

// Cluster is a handle to a running storage cluster (in-process or remote).
type Cluster struct {
	opts Options
	th   quorum.Thresholds
	rng  *rand.Rand

	inproc *live.Cluster // nil when remote
	addrs  []string      // nil when in-process

	tcpClients []*tcpnet.Client
}

// NewCluster starts an in-process cluster of S = 3t+1 storage objects.
func NewCluster(opts Options) (*Cluster, error) {
	opts.defaults()
	th, err := quorum.NewThresholds(quorum.OptimalObjects(opts.Faults), opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("robustatomic: %w", err)
	}
	c := &Cluster{
		opts: opts,
		th:   th,
		rng:  rand.New(rand.NewSource(opts.Seed ^ 0x5eedcafe)),
		inproc: live.New(live.Config{
			Servers:  th.S,
			Seed:     opts.Seed,
			MaxDelay: opts.MaxDelay,
		}),
	}
	return c, nil
}

// Connect attaches to a remote cluster of storage daemons (cmd/storaged);
// addrs[i] must serve object i+1 and len(addrs) must be 3t+1 for the
// configured fault budget.
func Connect(addrs []string, opts Options) (*Cluster, error) {
	opts.defaults()
	th, err := quorum.NewThresholds(len(addrs), opts.Faults)
	if err != nil {
		return nil, fmt.Errorf("robustatomic: %w", err)
	}
	return &Cluster{
		opts:  opts,
		th:    th,
		rng:   rand.New(rand.NewSource(opts.Seed ^ 0x5eedcafe)),
		addrs: addrs,
	}, nil
}

// Close shuts down an in-process cluster or the TCP connections.
func (c *Cluster) Close() {
	if c.inproc != nil {
		c.inproc.Close()
	}
	for _, tc := range c.tcpClients {
		tc.Close()
	}
}

// Faults returns t.
func (c *Cluster) Faults() int { return c.th.T }

// Objects returns S = 3t+1.
func (c *Cluster) Objects() int { return c.th.S }

// InjectFault makes in-process object sid Byzantine with a named behavior:
// "silent", "garbage", "stale", "equivocate" or "flaky". It is a no-op
// template for chaos testing; remote clusters configure behaviors on the
// daemons instead.
func (c *Cluster) InjectFault(sid int, mode string) error {
	if c.inproc == nil {
		return fmt.Errorf("robustatomic: fault injection needs an in-process cluster")
	}
	var b server.Behavior
	switch mode {
	case "silent":
		b = server.Silent{}
	case "garbage":
		b = server.Garbage{Level: 1 << 30, Val: "forged"}
	case "stale":
		b = &server.Stale{Snap: c.inproc.Snapshot(sid)}
	case "equivocate":
		b = server.Equivocate{Readers: &server.Stale{Snap: c.inproc.Snapshot(sid)}}
	case "flaky":
		b = server.Flaky{Rand: rand.New(rand.NewSource(c.opts.Seed)), DropProb: 0.5}
	default:
		return fmt.Errorf("robustatomic: unknown fault mode %q", mode)
	}
	c.inproc.SetByzantine(sid, b)
	return nil
}

// rounder builds the transport handle for one process.
func (c *Cluster) rounder(proc types.ProcID) proto.Rounder {
	if c.inproc != nil {
		return c.inproc.NewClient(proc)
	}
	tc := tcpnet.NewClient(proc, c.addrs)
	c.tcpClients = append(c.tcpClients, tc)
	return tc
}

// Writer is the register's single writer handle.
type Writer struct {
	c      *Cluster
	plain  *core.Writer
	secret *secret.AtomicWriter
}

// Writer returns the writer handle (create it once; the register is
// single-writer).
func (c *Cluster) Writer() *Writer {
	rc := c.rounder(types.Writer)
	w := &Writer{c: c}
	switch c.opts.Model {
	case SecretTokens:
		w.secret = secret.NewAtomicWriter(rc, c.th, c.rng)
	default:
		w.plain = core.NewWriter(rc, c.th)
	}
	return w
}

// Write stores v (2 communication rounds).
func (w *Writer) Write(v string) error {
	if w.plain != nil {
		return w.plain.Write(types.Value(v))
	}
	return w.secret.Write(types.Value(v))
}

// Reader is one of the register's R reader handles.
type Reader struct {
	c      *Cluster
	plain  *core.Reader
	secret *secret.AtomicReader
}

// Reader returns reader handle idx (1-based, ≤ Options.Readers). Each
// reader identity must be used by at most one client at a time.
func (c *Cluster) Reader(idx int) (*Reader, error) {
	if idx < 1 || idx > c.opts.Readers {
		return nil, fmt.Errorf("robustatomic: reader index %d out of 1..%d", idx, c.opts.Readers)
	}
	rc := c.rounder(types.Reader(idx))
	r := &Reader{c: c}
	switch c.opts.Model {
	case SecretTokens:
		r.secret = secret.NewAtomicReader(rc, c.th, c.rng, idx, c.opts.Readers)
	default:
		r.plain = core.NewReader(rc, c.th, idx, c.opts.Readers)
	}
	return r, nil
}

// Read returns the register's current value (4 communication rounds; 3 in
// the SecretTokens model without contention). The empty string is the
// initial value.
func (r *Reader) Read() (string, error) {
	if r.plain != nil {
		v, err := r.plain.Read()
		return string(v), err
	}
	v, err := r.secret.Read()
	return string(v), err
}
