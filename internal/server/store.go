// Package server implements the storage-object automaton of the paper's
// model: a passive process that replies to client messages and never
// initiates communication, plus the Byzantine behaviors used for fault
// injection and for the lower-bound adversaries.
//
// One Store hosts any number of register instances (multiplexed by RegID),
// which is what the regular→atomic transformation of Section 5 needs: the
// writer's register and the R per-reader write-back registers live on the
// same S physical objects and share physical communication rounds.
package server

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"robustatomic/internal/types"
)

// Automaton is a storage object's state machine. Handle processes one client
// message and returns the reply (objects reply to each message before
// receiving any other message, per the round model). Snapshot and Restore
// expose the full state — the lower-bound adversaries "forge the state to σ"
// by restoring snapshots taken at earlier points of a run.
type Automaton interface {
	Handle(from types.ProcID, m types.Message) types.Message
	Snapshot() ([]byte, error)
	Restore(snap []byte) error
}

// RegState is the per-register state of a storage object in the regular
// register protocol: the pre-written pair pw, the written pair w, and the
// secret tokens received with each (zero outside the [DMSS09] model).
type RegState struct {
	PW      types.Pair
	W       types.Pair
	TokenPW types.Token
	TokenW  types.Token
}

// Store is the storage object automaton. The zero value is not usable; use
// NewStore. It is not safe for concurrent use; runtimes serialize access
// (the model's objects process one message at a time).
type Store struct {
	regs map[types.RegID]*RegState
}

// NewStore returns an empty storage object.
func NewStore() *Store {
	return &Store{regs: make(map[types.RegID]*RegState)}
}

var _ Automaton = (*Store)(nil)

// reg returns the state of register id, creating it on first touch.
func (s *Store) reg(id types.RegID) *RegState {
	st, ok := s.regs[id]
	if !ok {
		st = &RegState{}
		s.regs[id] = st
	}
	return st
}

// Reg returns a copy of register id's current state (for tests and
// assertions).
func (s *Store) Reg(id types.RegID) RegState { return *s.reg(id) }

// Handle implements Automaton.
func (s *Store) Handle(from types.ProcID, m types.Message) types.Message {
	reply := s.handle(from, m, types.WriterReg)
	reply.Seq = m.Seq
	return reply
}

// handle dispatches one (possibly nested) message against register reg;
// top-level non-mux messages address the writer's register.
func (s *Store) handle(from types.ProcID, m types.Message, def types.RegID) types.Message {
	switch m.Kind {
	case types.MsgMux:
		out := types.Message{Kind: types.MsgMux, Sub: make([]types.SubMsg, len(m.Sub))}
		for i, sub := range m.Sub {
			out.Sub[i] = types.SubMsg{Reg: sub.Reg, Msg: s.handleReg(from, sub.Msg, sub.Reg)}
		}
		return out
	default:
		return s.handleReg(from, m, def)
	}
}

// handleReg processes a register-level message.
func (s *Store) handleReg(from types.ProcID, m types.Message, id types.RegID) types.Message {
	st := s.reg(id)
	switch m.Kind {
	case types.MsgPreWrite:
		if st.PW.Less(m.Pair) {
			st.PW = m.Pair
			st.TokenPW = m.Token
		}
		return types.Message{Kind: types.MsgAck}
	case types.MsgWrite, types.MsgWriteBack:
		if st.W.Less(m.Pair) {
			st.W = m.Pair
			st.TokenW = m.Token
		}
		return types.Message{Kind: types.MsgAck}
	case types.MsgRead1:
		return types.Message{
			Kind:    types.MsgState,
			PW:      st.PW,
			W:       st.W,
			TokenPW: st.TokenPW,
			Token:   st.TokenW,
		}
	case types.MsgABDQuery:
		return types.Message{Kind: types.MsgABDVal, Pair: st.W}
	case types.MsgABDStore:
		if st.W.Less(m.Pair) {
			st.W = m.Pair
		}
		return types.Message{Kind: types.MsgAck}
	case types.MsgConfirm:
		// Vouch for a pair the object has seen at or above the queried
		// timestamp in its written state.
		if st.W == m.Pair || st.PW == m.Pair {
			return types.Message{Kind: types.MsgAck, Pair: m.Pair}
		}
		return types.Message{Kind: types.MsgState, PW: st.PW, W: st.W}
	default:
		return types.Message{Kind: types.MsgState, PW: st.PW, W: st.W}
	}
}

// storeSnapshot is the gob wire form of a Store.
type storeSnapshot struct {
	IDs    []types.RegID
	States []RegState
}

// Snapshot implements Automaton.
func (s *Store) Snapshot() ([]byte, error) {
	snap := storeSnapshot{}
	ids := make([]types.RegID, 0, len(s.regs))
	for id := range s.regs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.Idx < b.Idx
	})
	for _, id := range ids {
		snap.IDs = append(snap.IDs, id)
		snap.States = append(snap.States, *s.regs[id])
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		return nil, fmt.Errorf("server: snapshot: %w", err)
	}
	return buf.Bytes(), nil
}

// Restore implements Automaton.
func (s *Store) Restore(b []byte) error {
	var snap storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&snap); err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	s.regs = make(map[types.RegID]*RegState, len(snap.IDs))
	for i, id := range snap.IDs {
		st := snap.States[i]
		s.regs[id] = &st
	}
	return nil
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	out := NewStore()
	for id, st := range s.regs {
		cp := *st
		out.regs[id] = &cp
	}
	return out
}
