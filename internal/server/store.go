// Package server implements the storage-object automaton of the paper's
// model: a passive process that replies to client messages and never
// initiates communication, plus the Byzantine behaviors used for fault
// injection and for the lower-bound adversaries.
//
// One Store hosts any number of register instances (multiplexed by RegID),
// which is what the regular→atomic transformation of Section 5 needs: the
// writer's register and the R per-reader write-back registers live on the
// same S physical objects and share physical communication rounds.
package server

import (
	"encoding/binary"
	"fmt"
	"sort"

	"robustatomic/internal/obs"
	"robustatomic/internal/types"
)

// mStores counts register-instance automata created process-wide: the
// instance-count signal behind the per-daemon register gauges (instances
// are created on first touch and never destroyed short of process exit).
var mStores = obs.Default.Counter("server_store_instances_total")

// Automaton is a storage object's state machine. Handle processes one client
// message and returns the reply (objects reply to each message before
// receiving any other message, per the round model). Snapshot and Restore
// expose the full state — the lower-bound adversaries "forge the state to σ"
// by restoring snapshots taken at earlier points of a run, and the
// durability engine (internal/persist) persists and recovers it.
type Automaton interface {
	Handle(from types.ProcID, m types.Message) types.Message
	Snapshot() ([]byte, error)
	Restore(snap []byte) error
}

// RegState is the per-register state of a storage object in the regular
// register protocol: the pre-written pair pw, the written pair w, and the
// secret tokens received with each (zero outside the [DMSS09] model).
type RegState struct {
	PW      types.Pair
	W       types.Pair
	TokenPW types.Token
	TokenW  types.Token
}

// Store is the storage object automaton. The zero value is not usable; use
// NewStore. It is not safe for concurrent use; runtimes serialize access
// (the model's objects process one message at a time).
type Store struct {
	regs map[types.RegID]*RegState
	// ids holds regs' keys in ascending regLess order, maintained
	// incrementally on first touch so Snapshot never re-sorts — periodic
	// snapshotting must not degrade with instance count.
	ids []types.RegID
}

// NewStore returns an empty storage object.
func NewStore() *Store {
	mStores.Inc()
	return &Store{regs: make(map[types.RegID]*RegState)}
}

var _ Automaton = (*Store)(nil)

// regLess orders register IDs by (Class, Idx).
func regLess(a, b types.RegID) bool {
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.Idx < b.Idx
}

// reg returns the state of register id, creating it on first touch.
func (s *Store) reg(id types.RegID) *RegState {
	st, ok := s.regs[id]
	if !ok {
		st = &RegState{}
		s.regs[id] = st
		i := sort.Search(len(s.ids), func(i int) bool { return !regLess(s.ids[i], id) })
		s.ids = append(s.ids, types.RegID{})
		copy(s.ids[i+1:], s.ids[i:])
		s.ids[i] = id
	}
	return st
}

// Reg returns a copy of register id's current state (for tests and
// assertions).
func (s *Store) Reg(id types.RegID) RegState { return *s.reg(id) }

// Handle implements Automaton.
func (s *Store) Handle(from types.ProcID, m types.Message) types.Message {
	reply := s.handle(from, m, types.WriterReg)
	reply.Seq = m.Seq
	return reply
}

// handle dispatches one (possibly nested) message against register reg;
// top-level non-mux messages address the writer's register.
func (s *Store) handle(from types.ProcID, m types.Message, def types.RegID) types.Message {
	switch m.Kind {
	case types.MsgMux:
		out := types.Message{Kind: types.MsgMux, Sub: make([]types.SubMsg, len(m.Sub))}
		for i, sub := range m.Sub {
			out.Sub[i] = types.SubMsg{Reg: sub.Reg, Msg: s.handleReg(from, sub.Msg, sub.Reg)}
		}
		return out
	default:
		return s.handleReg(from, m, def)
	}
}

// handleReg processes a register-level message.
func (s *Store) handleReg(from types.ProcID, m types.Message, id types.RegID) types.Message {
	st := s.reg(id)
	switch m.Kind {
	case types.MsgPreWrite:
		// The acknowledgement piggybacks the timestamps the object held
		// BEFORE applying this prewrite (values stripped — validation only
		// compares timestamps): the writer's optimistic fast path reads a
		// quorum of these to certify that nothing newer than its cached
		// timestamp is in circulation, without a separate discovery round.
		prior := types.Message{
			Kind: types.MsgAck,
			PW:   types.Pair{TS: st.PW.TS},
			W:    types.Pair{TS: st.W.TS},
		}
		if st.PW.Less(m.Pair) {
			st.PW = m.Pair
			st.TokenPW = m.Token
		}
		return prior
	case types.MsgWrite, types.MsgWriteBack:
		if st.W.Less(m.Pair) {
			st.W = m.Pair
			st.TokenW = m.Token
		}
		return types.Message{Kind: types.MsgAck}
	case types.MsgRead1:
		return types.Message{
			Kind:    types.MsgState,
			PW:      st.PW,
			W:       st.W,
			TokenPW: st.TokenPW,
			Token:   st.TokenW,
		}
	case types.MsgABDQuery:
		return types.Message{Kind: types.MsgABDVal, Pair: st.W}
	case types.MsgABDStore:
		if st.W.Less(m.Pair) {
			st.W = m.Pair
		}
		return types.Message{Kind: types.MsgAck}
	case types.MsgConfirm:
		// Vouch for a pair the object has seen at or above the queried
		// timestamp in its written state.
		if st.W == m.Pair || st.PW == m.Pair {
			return types.Message{Kind: types.MsgAck, Pair: m.Pair}
		}
		return types.Message{Kind: types.MsgState, PW: st.PW, W: st.W}
	default:
		return types.Message{Kind: types.MsgState, PW: st.PW, W: st.W}
	}
}

// Mutates reports whether handling m can advance a store's state. The
// durability layer logs exactly these messages (PREWRITE, WRITE, WRITEBACK,
// ABD_STORE, and any MUX bundle carrying one) before the reply leaves;
// everything else only queries state and needs no logging.
func Mutates(m types.Message) bool {
	switch m.Kind {
	case types.MsgPreWrite, types.MsgWrite, types.MsgWriteBack, types.MsgABDStore:
		return true
	case types.MsgMux:
		for _, sub := range m.Sub {
			if Mutates(sub.Msg) {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// Snapshot format: one version byte, a uvarint register count, then per
// register (in ascending regLess order) the RegID and RegState fields,
// integers as uvarints and values length-prefixed. The hand-rolled codec
// replaces the original per-call gob encoder: no type-descriptor preamble,
// no re-sorting (ids is maintained incrementally), one allocation.
//
// Version 0x03 carries multi-writer (Seq, WID) timestamps: each pair is
// Seq uvarint, WID uvarint, value. Version 0x02 (the PR 3 on-disk format)
// carried scalar timestamps — Restore still accepts it, decoding every
// timestamp as (Seq, WID 0), so pre-multi-writer snapshots replay cleanly.
const (
	snapshotVersion       = 0x03
	snapshotVersionScalar = 0x02
)

// Snapshot implements Automaton. The encoding is deterministic: equal states
// yield equal bytes.
func (s *Store) Snapshot() ([]byte, error) {
	size := 1 + binary.MaxVarintLen64
	for _, id := range s.ids {
		st := s.regs[id]
		size += 8*binary.MaxVarintLen64 + len(st.PW.Val) + len(st.W.Val)
	}
	b := make([]byte, 0, size)
	b = append(b, snapshotVersion)
	b = binary.AppendUvarint(b, uint64(len(s.ids)))
	for _, id := range s.ids {
		st := s.regs[id]
		b = binary.AppendUvarint(b, uint64(id.Class))
		b = binary.AppendUvarint(b, uint64(id.Idx))
		b = appendPair(b, st.PW)
		b = appendPair(b, st.W)
		b = binary.AppendUvarint(b, uint64(st.TokenPW))
		b = binary.AppendUvarint(b, uint64(st.TokenW))
	}
	return b, nil
}

// appendPair encodes a timestamp-value pair (sequence numbers are
// non-negative: writers issue them from 0 upward; the int64→uint64 uvarint
// round-trip is lossless regardless).
func appendPair(b []byte, p types.Pair) []byte {
	b = binary.AppendUvarint(b, uint64(p.TS.Seq))
	b = binary.AppendUvarint(b, uint64(p.TS.WID))
	b = binary.AppendUvarint(b, uint64(len(p.Val)))
	return append(b, string(p.Val)...)
}

// Restore implements Automaton. It accepts the current multi-writer format
// and the PR 3-era scalar-timestamp format (version 0x02).
func (s *Store) Restore(b []byte) error {
	if len(b) == 0 || (b[0] != snapshotVersion && b[0] != snapshotVersionScalar) {
		return fmt.Errorf("server: restore: bad snapshot header")
	}
	d := snapDecoder{b: b[1:], scalarTS: b[0] == snapshotVersionScalar}
	n := d.uvarint()
	if n > uint64(len(d.b)) { // each register costs ≥ 6 bytes; cheap bound
		return fmt.Errorf("server: restore: register count %d exceeds payload", n)
	}
	regs := make(map[types.RegID]*RegState, n)
	ids := make([]types.RegID, 0, n)
	for i := uint64(0); i < n; i++ {
		id := types.RegID{Class: types.RegClass(d.uvarint()), Idx: int(d.uvarint())}
		st := &RegState{}
		st.PW = d.pair()
		st.W = d.pair()
		st.TokenPW = types.Token(d.uvarint())
		st.TokenW = types.Token(d.uvarint())
		if d.err != nil {
			return fmt.Errorf("server: restore: truncated snapshot (register %d of %d)", i, n)
		}
		regs[id] = st
		ids = append(ids, id)
	}
	if len(d.b) != 0 {
		return fmt.Errorf("server: restore: %d trailing bytes", len(d.b))
	}
	// Snapshots are written in ascending order, but tolerate any order from
	// foreign producers: the incremental invariant must hold after Restore.
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return regLess(ids[i], ids[j]) }) {
		sort.Slice(ids, func(i, j int) bool { return regLess(ids[i], ids[j]) })
	}
	s.regs = regs
	s.ids = ids
	return nil
}

// snapDecoder cuts snapshot fields off a byte slice, latching the first
// error so call sites stay linear. scalarTS selects the legacy pair layout
// (no WID field; every timestamp decodes as WID 0).
type snapDecoder struct {
	b        []byte
	scalarTS bool
	err      error
}

func (d *snapDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	x, w := binary.Uvarint(d.b)
	if w <= 0 {
		d.err = fmt.Errorf("truncated uvarint")
		return 0
	}
	d.b = d.b[w:]
	return x
}

func (d *snapDecoder) pair() types.Pair {
	seq := d.uvarint()
	var wid uint64
	if !d.scalarTS {
		wid = d.uvarint()
	}
	n := d.uvarint()
	if d.err != nil {
		return types.Pair{}
	}
	if n > uint64(len(d.b)) {
		d.err = fmt.Errorf("truncated value")
		return types.Pair{}
	}
	p := types.Pair{TS: types.TS{Seq: int64(seq), WID: int64(wid)}, Val: types.Value(d.b[:n])}
	d.b = d.b[n:]
	return p
}

// Clone returns a deep copy of the store.
func (s *Store) Clone() *Store {
	out := &Store{
		regs: make(map[types.RegID]*RegState, len(s.regs)),
		ids:  append([]types.RegID(nil), s.ids...),
	}
	for id, st := range s.regs {
		cp := *st
		out.regs[id] = &cp
	}
	return out
}
