package server

import (
	"bytes"
	"testing"

	"robustatomic/internal/types"
)

// FuzzSnapshotRestore throws arbitrary bytes at the store snapshot decoder
// (both the current multi-writer format and the legacy scalar one share the
// entry point): Restore must never panic, and any input it accepts must
// round-trip — re-snapshotting the restored store yields bytes that restore
// to the identical state.
func FuzzSnapshotRestore(f *testing.F) {
	seed := NewStore()
	seed.Handle(types.WriterID(2), types.Message{Kind: types.MsgPreWrite, Pair: types.Pair{TS: types.TS{Seq: 3, WID: 2}, Val: "mw"}})
	seed.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: types.Pair{TS: types.At(1), Val: "sw"}})
	snap, err := seed.Snapshot()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(snap)
	f.Add([]byte{0x02, 0x00})
	f.Add([]byte{0x03, 0x00})
	f.Add([]byte("not a snapshot"))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := NewStore()
		if err := st.Restore(data); err != nil {
			return
		}
		re, err := st.Snapshot()
		if err != nil {
			t.Fatalf("restored store does not snapshot: %v", err)
		}
		rt := NewStore()
		if err := rt.Restore(re); err != nil {
			t.Fatalf("re-snapshot does not restore: %v", err)
		}
		rt2, err := rt.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(re, rt2) {
			t.Fatal("snapshot bytes drift across restore cycles")
		}
	})
}
