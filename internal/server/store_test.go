package server

import (
	"math/rand"
	"testing"

	"robustatomic/internal/types"
)

func pair(ts int64, v string) types.Pair { return types.Pair{TS: types.At(ts), Val: types.Value(v)} }

func TestStorePreWriteWriteMonotone(t *testing.T) {
	s := NewStore()
	r := s.Handle(types.Writer, types.Message{Kind: types.MsgPreWrite, Pair: pair(2, "b"), Seq: 7})
	if r.Kind != types.MsgAck || r.Seq != 7 {
		t.Fatalf("prewrite reply %v", r)
	}
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})
	// Older pair must not regress state.
	s.Handle(types.Writer, types.Message{Kind: types.MsgPreWrite, Pair: pair(1, "a")})
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	st := s.Reg(types.WriterReg)
	if st.PW != pair(2, "b") || st.W != pair(2, "b") {
		t.Errorf("state regressed: %+v", st)
	}
}

func TestStoreRead1ReportsState(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgPreWrite, Pair: pair(3, "c"), Token: 11})
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b"), Token: 9})
	r := s.Handle(types.Reader(1), types.Message{Kind: types.MsgRead1, Seq: 4})
	if r.Kind != types.MsgState || r.PW != pair(3, "c") || r.W != pair(2, "b") {
		t.Fatalf("read1 reply %v", r)
	}
	if r.TokenPW != 11 || r.Token != 9 {
		t.Errorf("tokens not echoed: %v", r)
	}
	if r.Seq != 4 {
		t.Errorf("seq not echoed")
	}
}

func TestStoreWriteBack(t *testing.T) {
	s := NewStore()
	s.Handle(types.Reader(2), types.Message{Kind: types.MsgWriteBack, Pair: pair(5, "e")})
	if st := s.Reg(types.WriterReg); st.W != pair(5, "e") {
		t.Errorf("writeback ignored: %+v", st)
	}
	if st := s.Reg(types.WriterReg); st.PW != types.BottomPair {
		t.Errorf("writeback touched pw: %+v", st)
	}
}

func TestStoreABD(t *testing.T) {
	s := NewStore()
	r := s.Handle(types.Reader(1), types.Message{Kind: types.MsgABDQuery})
	if r.Kind != types.MsgABDVal || !r.Pair.IsBottom() {
		t.Fatalf("initial abd query %v", r)
	}
	s.Handle(types.Writer, types.Message{Kind: types.MsgABDStore, Pair: pair(1, "a")})
	s.Handle(types.Writer, types.Message{Kind: types.MsgABDStore, Pair: pair(9, "z")})
	s.Handle(types.Writer, types.Message{Kind: types.MsgABDStore, Pair: pair(4, "d")})
	r = s.Handle(types.Reader(1), types.Message{Kind: types.MsgABDQuery})
	if r.Pair != pair(9, "z") {
		t.Errorf("abd query = %v", r.Pair)
	}
}

func TestStoreConfirm(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})
	r := s.Handle(types.Reader(1), types.Message{Kind: types.MsgConfirm, Pair: pair(2, "b")})
	if r.Kind != types.MsgAck {
		t.Errorf("confirm of held pair: %v", r)
	}
	r = s.Handle(types.Reader(1), types.Message{Kind: types.MsgConfirm, Pair: pair(3, "c")})
	if r.Kind == types.MsgAck {
		t.Errorf("confirmed unseen pair")
	}
}

func TestStoreMuxRoutesPerRegister(t *testing.T) {
	s := NewStore()
	req := types.Message{Kind: types.MsgMux, Seq: 2, Sub: []types.SubMsg{
		{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")}},
		{Reg: types.ReaderReg(3), Msg: types.Message{Kind: types.MsgWrite, Pair: pair(7, "x")}},
	}}
	r := s.Handle(types.Reader(3), req)
	if r.Kind != types.MsgMux || len(r.Sub) != 2 || r.Seq != 2 {
		t.Fatalf("mux reply %v", r)
	}
	if s.Reg(types.WriterReg).W != pair(1, "a") {
		t.Errorf("writer reg wrong")
	}
	if s.Reg(types.ReaderReg(3)).W != pair(7, "x") {
		t.Errorf("reader reg wrong")
	}
	if s.Reg(types.ReaderReg(1)).W != types.BottomPair {
		t.Errorf("unrelated reg touched")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgPreWrite, Pair: pair(3, "c"), Token: 5})
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})
	s.Handle(types.Reader(1), types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
		{Reg: types.ReaderReg(1), Msg: types.Message{Kind: types.MsgWrite, Pair: pair(4, "d")}},
	}})
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Mutate, then restore.
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(99, "zz")})
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if st := s.Reg(types.WriterReg); st.W != pair(2, "b") || st.PW != pair(3, "c") || st.TokenPW != 5 {
		t.Errorf("writer reg after restore: %+v", st)
	}
	if st := s.Reg(types.ReaderReg(1)); st.W != pair(4, "d") {
		t.Errorf("reader reg after restore: %+v", st)
	}
}

func TestRestoreRejectsJunk(t *testing.T) {
	s := NewStore()
	for _, junk := range [][]byte{nil, []byte("junk"), {snapshotVersion, 0xff, 0xff}, {snapshotVersion, 2, 1, 0}} {
		if err := s.Restore(junk); err == nil {
			t.Errorf("junk restore %v accepted", junk)
		}
	}
	// Trailing garbage after a well-formed snapshot must be rejected too.
	good, _ := NewStore().Snapshot()
	if err := s.Restore(append(good, 0)); err == nil {
		t.Error("trailing-garbage restore accepted")
	}
}

// TestSnapshotSortedWithoutResort pins the incremental sorted-ID invariant:
// registers touched in arbitrary order must still snapshot in ascending
// (Class, Idx) order, including after a Restore, without Snapshot sorting.
func TestSnapshotSortedWithoutResort(t *testing.T) {
	s := NewStore()
	touch := []types.RegID{
		types.ReaderReg(7), types.WriterReg, types.ReaderReg(2),
		types.ReaderReg(9), types.ReaderReg(1),
	}
	for i, id := range touch {
		s.Handle(types.Writer, types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
			{Reg: id, Msg: types.Message{Kind: types.MsgWrite, Pair: pair(int64(i+1), "v")}},
		}})
	}
	want := []types.RegID{
		types.WriterReg, types.ReaderReg(1), types.ReaderReg(2),
		types.ReaderReg(7), types.ReaderReg(9),
	}
	assertIDs := func(when string) {
		t.Helper()
		if len(s.ids) != len(want) {
			t.Fatalf("%s: ids = %v", when, s.ids)
		}
		for i, id := range want {
			if s.ids[i] != id {
				t.Fatalf("%s: ids[%d] = %v, want %v (ids %v)", when, i, s.ids[i], id, s.ids)
			}
		}
	}
	assertIDs("after touches")
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Determinism: a restored store re-snapshots to identical bytes.
	s2 := NewStore()
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	snap2, err := s2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if string(snap) != string(snap2) {
		t.Error("snapshot not deterministic across restore")
	}
	if err := s.Restore(snap); err != nil {
		t.Fatal(err)
	}
	assertIDs("after restore")
	s.Handle(types.Writer, types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
		{Reg: types.ReaderReg(5), Msg: types.Message{Kind: types.MsgRead1}},
	}})
	want = []types.RegID{
		types.WriterReg, types.ReaderReg(1), types.ReaderReg(2),
		types.ReaderReg(5), types.ReaderReg(7), types.ReaderReg(9),
	}
	assertIDs("after post-restore touch")
}

func TestMutates(t *testing.T) {
	mut := []types.Message{
		{Kind: types.MsgPreWrite},
		{Kind: types.MsgWrite},
		{Kind: types.MsgWriteBack},
		{Kind: types.MsgABDStore},
		{Kind: types.MsgMux, Sub: []types.SubMsg{
			{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgRead1}},
			{Reg: types.ReaderReg(1), Msg: types.Message{Kind: types.MsgWrite}},
		}},
	}
	for _, m := range mut {
		if !Mutates(m) {
			t.Errorf("Mutates(%v) = false", m.Kind)
		}
	}
	ro := []types.Message{
		{Kind: types.MsgRead1},
		{Kind: types.MsgABDQuery},
		{Kind: types.MsgConfirm},
		{Kind: types.MsgAck},
		{Kind: types.MsgMux, Sub: []types.SubMsg{
			{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgRead1}},
		}},
		{Kind: types.MsgMux},
	}
	for _, m := range ro {
		if Mutates(m) {
			t.Errorf("Mutates(%v) = true", m.Kind)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	c := s.Clone()
	c.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})
	if s.Reg(types.WriterReg).W != pair(1, "a") {
		t.Errorf("clone aliases original")
	}
}

func TestForgeBehavior(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	snapOld, _ := s.Snapshot()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})

	f := &Forge{Snap: snapOld}
	r, ok := f.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1})
	if !ok || r.W != pair(1, "a") {
		t.Errorf("forged reply %v", r)
	}
	// Forged state persists and evolves honestly afterwards.
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(3, "c")})
	r, _ = f.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1})
	if r.W != pair(3, "c") {
		t.Errorf("post-forge state %v", r)
	}
}

func TestStaleBehavior(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	snap, _ := s.Snapshot()
	st := &Stale{Snap: snap}
	// Writes advance the true state but reads see the frozen snapshot.
	st.Reply(s, types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(5, "e")})
	r, ok := st.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1})
	if !ok || r.W != pair(1, "a") {
		t.Errorf("stale read %v", r)
	}
	if s.Reg(types.WriterReg).W != pair(5, "e") {
		t.Errorf("true state did not advance")
	}
}

func TestSilentBehavior(t *testing.T) {
	s := NewStore()
	b := Silent{}
	if _, ok := b.Reply(s, types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")}); ok {
		t.Error("silent replied")
	}
	if s.Reg(types.WriterReg).W != pair(1, "a") {
		t.Error("silent object did not process message")
	}
}

func TestGarbageBehaviorNeverCertifiable(t *testing.T) {
	s := NewStore()
	g := Garbage{}
	r, ok := g.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1, Seq: 3})
	if !ok || r.Kind != types.MsgState || r.W.TS.IsZero() || r.Seq != 3 {
		t.Fatalf("garbage read %v", r)
	}
	if r.W.Val == types.Bottom {
		t.Error("garbage returned bottom value")
	}
	r2, _ := g.Reply(s, types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	if r2.Kind != types.MsgAck {
		t.Errorf("garbage write ack %v", r2)
	}
	if s.Reg(types.WriterReg).W != types.BottomPair {
		t.Error("garbage applied the write")
	}
	rm, _ := g.Reply(s, types.Reader(1), types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
		{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgRead1}},
	}})
	if rm.Kind != types.MsgMux || len(rm.Sub) != 1 || rm.Sub[0].Msg.Kind != types.MsgState {
		t.Errorf("garbage mux %v", rm)
	}
}

func TestEquivocateBehavior(t *testing.T) {
	s := NewStore()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(1, "a")})
	snap, _ := s.Snapshot()
	s.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(2, "b")})
	e := Equivocate{Readers: &Stale{Snap: snap}}
	rw, _ := e.Reply(s, types.Writer, types.Message{Kind: types.MsgRead1})
	rr, _ := e.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1})
	if rw.W != pair(2, "b") {
		t.Errorf("writer view %v", rw)
	}
	if rr.W != pair(1, "a") {
		t.Errorf("reader view %v", rr)
	}
}

func TestReplayOnlyReplaysHistoricalStates(t *testing.T) {
	s := NewStore()
	b := &ReplayOnly{Rand: rand.New(rand.NewSource(1))}
	seen := map[types.Pair]bool{}
	for i := 1; i <= 20; i++ {
		b.Reply(s, types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(int64(i), "v")})
	}
	for i := 0; i < 50; i++ {
		r, ok := b.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1, Seq: 9})
		if !ok || r.Kind != types.MsgState || r.Seq != 9 {
			t.Fatalf("replay reply %v", r)
		}
		seen[r.W] = true
	}
	if len(seen) < 2 {
		t.Error("replay-only never replayed stale state")
	}
	// Every replayed pair is one the object actually held (or bottom).
	for p := range seen {
		if p.TS.Seq < 0 || p.TS.Seq > 20 {
			t.Errorf("fabricated pair %v", p)
		}
		if !p.TS.IsZero() && p.Val != "v" {
			t.Errorf("fabricated value %v", p)
		}
	}
}

func TestFlakyBehavior(t *testing.T) {
	s := NewStore()
	f := Flaky{Rand: rand.New(rand.NewSource(2)), DropProb: 0.5}
	sent, dropped := 0, 0
	for i := 0; i < 100; i++ {
		if _, ok := f.Reply(s, types.Reader(1), types.Message{Kind: types.MsgRead1}); ok {
			sent++
		} else {
			dropped++
		}
	}
	if sent == 0 || dropped == 0 {
		t.Errorf("flaky not flaky: sent=%d dropped=%d", sent, dropped)
	}
}
