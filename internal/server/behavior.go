package server

import (
	"math/rand"

	"robustatomic/internal/types"
)

// Behavior customizes how a (possibly Byzantine) object answers a request.
// Reply returns the message to send and whether to send one at all: a false
// second result models an object that withholds its reply (asynchrony makes
// withholding indistinguishable from slowness, which is exactly what the
// lower-bound adversaries exploit).
//
// The model gives Byzantine objects full knowledge of the messages they
// received but no ability to fabricate data they never saw when the
// [DMSS09] secret-token restriction is in force; behaviors honoring that
// restriction only replay observed state (see ReplayOnly).
type Behavior interface {
	Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool)
}

// Honest answers faithfully. It is the behavior of correct objects.
type Honest struct{}

// Reply implements Behavior.
func (Honest) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	return inner.Handle(from, m), true
}

// Silent never replies but still processes the message (its state advances,
// matching a correct-but-slow object whose replies are lost until forever).
type Silent struct{}

// Reply implements Behavior.
func (Silent) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	inner.Handle(from, m)
	return types.Message{}, false
}

// Forge replaces the object's state with a snapshot the first time it
// replies, then behaves honestly from the forged state onward. This is the
// "forges its state to σ before replying" step of the proofs.
type Forge struct {
	Snap []byte
	done bool
}

// Reply implements Behavior.
func (f *Forge) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	if !f.done {
		if err := inner.Restore(f.Snap); err != nil {
			// A corrupt snapshot is a harness bug; surface it loudly by
			// answering garbage rather than hiding it.
			return types.Message{Kind: types.MsgState}, true
		}
		f.done = true
	}
	return inner.Handle(from, m), true
}

// Stale answers every read from a frozen past state while silently advancing
// its true state; write-class messages are acknowledged but reads never see
// them. It simulates an object stuck in the past. With Snap set, the frozen
// state is that explicit snapshot (the lower-bound constructions' "forge to
// σ"). With Snap nil, each register instance the object hosts is frozen at
// its state on first touch after injection — the right semantics for
// multi-register objects, where every shard must be served its own past.
type Stale struct {
	Snap   []byte
	frozen *Store            // Snap path: one frozen state for every instance
	perReg map[*Store]*Store // nil-Snap path: per-instance freeze on first touch
}

// Reply implements Behavior.
func (s *Stale) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	var frozen *Store
	if s.Snap != nil {
		if s.frozen == nil {
			s.frozen = NewStore()
			if err := s.frozen.Restore(s.Snap); err != nil {
				return types.Message{Kind: types.MsgState}, true
			}
		}
		frozen = s.frozen
	} else {
		if s.perReg == nil {
			s.perReg = make(map[*Store]*Store)
		}
		frozen = s.perReg[inner]
		if frozen == nil {
			frozen = inner.Clone()
			s.perReg[inner] = frozen
		}
	}
	reply := inner.Handle(from, m)
	if isReadOnly(m) {
		return frozen.Handle(from, m), true
	}
	return reply, true
}

// isReadOnly reports whether a message only queries state.
func isReadOnly(m types.Message) bool {
	switch m.Kind {
	case types.MsgRead1, types.MsgABDQuery, types.MsgConfirm:
		return true
	case types.MsgMux:
		for _, sub := range m.Sub {
			if !isReadOnly(sub.Msg) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// Garbage fabricates wildly wrong replies: reads see a bogus high-timestamp
// pair with a value that was never written, writes are acknowledged but
// dropped. Because the fabricated pair is unique to this object, it can
// never be certified by t+1 distinct objects — the certification threshold
// is exactly what defeats it.
type Garbage struct {
	Level int64 // fabricated timestamp; huge by default
	Val   types.Value
}

// Reply implements Behavior.
func (g Garbage) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	level := g.Level
	if level == 0 {
		level = 1 << 40
	}
	val := g.Val
	if val == types.Bottom {
		val = "forged"
	}
	fake := types.Pair{TS: types.At(level), Val: val}
	switch m.Kind {
	case types.MsgRead1:
		return types.Message{Kind: types.MsgState, PW: fake, W: fake, Seq: m.Seq}, true
	case types.MsgABDQuery:
		return types.Message{Kind: types.MsgABDVal, Pair: fake, Seq: m.Seq}, true
	case types.MsgMux:
		out := types.Message{Kind: types.MsgMux, Seq: m.Seq, Sub: make([]types.SubMsg, len(m.Sub))}
		for i, sub := range m.Sub {
			r, _ := g.Reply(inner, from, sub.Msg)
			out.Sub[i] = types.SubMsg{Reg: sub.Reg, Msg: r}
		}
		return out, true
	case types.MsgPreWrite:
		// Poison the validation piggyback too: the ack's prior-state report
		// carries the fabricated timestamp, forcing the optimistic write's
		// fallback on every attempt (a liveness nuisance the adaptive flow
		// bounds, never a safety breach — the report is uncertified).
		return types.Message{Kind: types.MsgAck, PW: fake, W: fake, Seq: m.Seq}, true
	default:
		return types.Message{Kind: types.MsgAck, Seq: m.Seq}, true
	}
}

// Equivocate answers different client kinds with different behaviors — the
// classic split-brain attack (e.g. honest to the writer, stale to readers).
type Equivocate struct {
	Writer  Behavior // nil → Honest
	Readers Behavior // nil → Honest
}

// Reply implements Behavior.
func (e Equivocate) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	b := e.Readers
	if from.Kind == types.KindWriter {
		b = e.Writer
	}
	if b == nil {
		b = Honest{}
	}
	return b.Reply(inner, from, m)
}

// ReplayOnly is the strongest attack permitted under the [DMSS09]
// secret-token restriction: the object may answer with any (pair, token)
// tuple it has ever legitimately held — including stale ones — but cannot
// attach a valid token to a value it never received. It replays a uniformly
// chosen historical state per reply.
type ReplayOnly struct {
	Rand  *rand.Rand
	hist  []*Store
	limit int
}

// Reply implements Behavior.
func (r *ReplayOnly) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	// Record the pre-message state; bound history to keep memory finite.
	if r.limit == 0 {
		r.limit = 64
	}
	if len(r.hist) < r.limit {
		r.hist = append(r.hist, inner.Clone())
	}
	reply := inner.Handle(from, m)
	if len(r.hist) > 0 && r.Rand != nil {
		old := r.hist[r.Rand.Intn(len(r.hist))]
		stale := old.Handle(from, m)
		stale.Seq = m.Seq
		return stale, true
	}
	return reply, true
}

// Flaky alternates between an inner behavior and silence.
type Flaky struct {
	Inner Behavior
	Rand  *rand.Rand
	// DropProb in [0,1]; default 0.5.
	DropProb float64
}

// Reply implements Behavior.
func (f Flaky) Reply(inner *Store, from types.ProcID, m types.Message) (types.Message, bool) {
	p := f.DropProb
	if p == 0 {
		p = 0.5
	}
	b := f.Inner
	if b == nil {
		b = Honest{}
	}
	msg, ok := b.Reply(inner, from, m)
	if !ok {
		return msg, false
	}
	if f.Rand != nil && f.Rand.Float64() < p {
		return types.Message{}, false
	}
	return msg, ok
}

var (
	_ Behavior = Honest{}
	_ Behavior = Silent{}
	_ Behavior = (*Forge)(nil)
	_ Behavior = (*Stale)(nil)
	_ Behavior = Garbage{}
	_ Behavior = Equivocate{}
	_ Behavior = (*ReplayOnly)(nil)
	_ Behavior = Flaky{}
)
