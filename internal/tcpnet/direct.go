package tcpnet

import (
	"fmt"
	"net"
	"time"

	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Direct is a request/reply channel to a single object, for operator
// tooling (storctl repair and probe). It deliberately bypasses the quorum
// protocol: a probe inspects one object's raw state, and a seed installs
// recovered state into one object — the RADON-style repair write-back that
// reconstitutes a replaced machine from its live peers. One Direct serves
// any number of register instances over one connection; it is not safe for
// concurrent use.
type Direct struct {
	conn    net.Conn
	enc     *wire.Encoder
	dec     *wire.Decoder
	timeout time.Duration
	id      uint64
}

// DialDirect connects to one object. timeout bounds the dial and each
// subsequent exchange (≤ 0 means 5s).
func DialDirect(addr string, timeout time.Duration) (*Direct, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dial %s: %w", addr, err)
	}
	return &Direct{conn: conn, enc: wire.NewEncoder(conn), dec: wire.NewDecoder(conn), timeout: timeout}, nil
}

// Close releases the connection.
func (d *Direct) Close() { d.conn.Close() }

// exchange sends one tagged message to register instance reg and awaits
// the reply echoing its request ID.
func (d *Direct) exchange(from types.ProcID, reg int, m types.Message) (types.Message, error) {
	d.conn.SetDeadline(time.Now().Add(d.timeout))
	d.id++
	m.Seq = int(d.id)
	if err := d.enc.EncodeRequest(wire.Request{ID: d.id, From: from, Reg: reg, Msg: m}); err != nil {
		return types.Message{}, err
	}
	for {
		rsp, err := d.dec.DecodeResponse()
		if err != nil {
			return types.Message{}, err
		}
		if rsp.ID == d.id {
			return rsp.Msg, nil
		}
	}
}

// Probe reads the object's raw (pw, w) state for register instance reg —
// an operator diagnostic, not a protocol read: the object may lie, and no
// quorum certifies the answer.
func (d *Direct) Probe(reg int) (pw, w types.Pair, err error) {
	rsp, err := d.exchange(types.Reader(1), reg, types.Message{Kind: types.MsgRead1})
	if err != nil {
		return types.Pair{}, types.Pair{}, fmt.Errorf("tcpnet: probe: %w", err)
	}
	if rsp.Kind != types.MsgState {
		return types.Pair{}, types.Pair{}, fmt.Errorf("tcpnet: probe: unexpected reply %v", rsp.Kind)
	}
	return rsp.PW, rsp.W, nil
}

// ProbeReg reads the object's raw (pw, w) state for one specific register
// of instance reg — the per-reader write-back registers a top-level Probe
// (which addresses the writer's register) cannot see. Implemented as a
// single-entry MUX bundle, the same sub-register addressing the protocol
// itself uses.
func (d *Direct) ProbeReg(reg int, id types.RegID) (pw, w types.Pair, err error) {
	m := types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{{Reg: id, Msg: types.Message{Kind: types.MsgRead1}}}}
	rsp, err := d.exchange(types.Reader(1), reg, m)
	if err != nil {
		return types.Pair{}, types.Pair{}, fmt.Errorf("tcpnet: probe %v: %w", id, err)
	}
	if rsp.Kind != types.MsgMux || len(rsp.Sub) != 1 || rsp.Sub[0].Msg.Kind != types.MsgState {
		return types.Pair{}, types.Pair{}, fmt.Errorf("tcpnet: probe %v: unexpected reply %v", id, rsp.Kind)
	}
	return rsp.Sub[0].Msg.PW, rsp.Sub[0].Msg.W, nil
}

// Seed installs a quorum-certified pair into the object's register instance
// reg (writer's register): PREWRITE then WRITEBACK of the pair, verified by
// reading the object's state back. The object's monotone state merge keeps
// Seed safe to repeat and unable to regress newer state.
func (d *Direct) Seed(reg int, p types.Pair) error {
	for _, kind := range []types.MsgKind{types.MsgPreWrite, types.MsgWriteBack} {
		rsp, err := d.exchange(types.Reader(1), reg, types.Message{Kind: kind, Pair: p})
		if err != nil {
			return fmt.Errorf("tcpnet: seed: %s: %w", kind, err)
		}
		if rsp.Kind != types.MsgAck {
			return fmt.Errorf("tcpnet: seed: %s not acknowledged: %v", kind, rsp.Kind)
		}
	}
	rsp, err := d.exchange(types.Reader(1), reg, types.Message{Kind: types.MsgRead1})
	if err != nil {
		return fmt.Errorf("tcpnet: seed: verify: %w", err)
	}
	if rsp.Kind != types.MsgState || rsp.W.TS.Less(p.TS) || rsp.PW.TS.Less(p.TS) {
		return fmt.Errorf("tcpnet: seed: state not installed (pw %v, w %v, want ≥ %v)", rsp.PW, rsp.W, p)
	}
	return nil
}

// Probe is the one-shot form of Direct.Probe.
func Probe(addr string, reg int, timeout time.Duration) (pw, w types.Pair, err error) {
	d, err := DialDirect(addr, timeout)
	if err != nil {
		return types.Pair{}, types.Pair{}, err
	}
	defer d.Close()
	return d.Probe(reg)
}

// Seed is the one-shot form of Direct.Seed.
func Seed(addr string, reg int, p types.Pair, timeout time.Duration) error {
	d, err := DialDirect(addr, timeout)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Seed(reg, p)
}
