package tcpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"robustatomic/internal/proto"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// startRawServer runs a wire-speaking object stub: handle is invoked
// serially, per decoded request, with the connection's encoder. It exists so
// mux tests can script exact reply timing (delays, reordering, silence) that
// a real Server never produces.
func startRawServer(t *testing.T, handle func(req wire.Request, enc *wire.Encoder)) (addr string, accepts *atomic.Int32, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var n atomic.Int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.Add(1)
			go func() {
				defer conn.Close()
				dec := wire.NewDecoder(conn)
				enc := wire.NewEncoder(conn)
				for {
					req, err := dec.DecodeRequest()
					if err != nil {
						return
					}
					handle(req, enc)
				}
			}()
		}
	}()
	stopped := false
	stop = func() {
		if !stopped {
			stopped = true
			ln.Close()
		}
	}
	t.Cleanup(stop)
	return ln.Addr().String(), &n, stop
}

func ackSpec(label string) proto.RoundSpec {
	return proto.RoundSpec{
		Label: label,
		Req:   func(sid int) types.Message { return types.Message{Kind: types.MsgRead1} },
		Acc:   proto.AckAcc(1),
	}
}

// TestLateReplyAfterTimeoutDiscarded pins the abandoned-waiter path: a reply
// that arrives after its round timed out and deregistered must be discarded
// without blocking the reader or leaking the demux slot, and the connection
// must keep serving later rounds.
func TestLateReplyAfterTimeoutDiscarded(t *testing.T) {
	var calls atomic.Int32
	addr, accepts, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		if calls.Add(1) == 1 {
			time.Sleep(150 * time.Millisecond) // reply long after the round's deadline
		}
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	c := NewClient(types.Reader(1), []string{addr})
	defer c.Close()
	c.RoundTimeout = 30 * time.Millisecond

	err := c.Round(ackSpec("SLOW"))
	if !errors.Is(err, ErrRoundTimeout) {
		t.Fatalf("slow round: err = %v, want ErrRoundTimeout", err)
	}
	// The round deregistered its waiter on the way out: the table is empty
	// even though the reply is still in flight.
	if n := c.mux.pendingWaiters(); n != 0 {
		t.Fatalf("after timed-out round: %d pending waiters, want 0 (leak)", n)
	}

	// The next round's reply is queued behind the late one on the same
	// connection, so its success proves the reader dropped the stale reply
	// and moved on rather than stalling or dying.
	c.RoundTimeout = 5 * time.Second
	if err := c.Round(ackSpec("AFTER")); err != nil {
		t.Fatalf("round after late reply: %v", err)
	}
	if n := c.mux.pendingWaiters(); n != 0 {
		t.Fatalf("after recovery round: %d pending waiters, want 0", n)
	}
	if got := accepts.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1 (late reply must not cost a redial)", got)
	}
}

// TestDropConnFailsInFlightWaiters pins connection-loss semantics: dropping
// a connection fails that connection's in-flight rounds with ErrConnLost
// immediately — distinctly and well before their deadlines — and a dead
// peer then sits in the documented 1s redial backoff.
func TestDropConnFailsInFlightWaiters(t *testing.T) {
	if DialBackoff != time.Second {
		t.Fatalf("DialBackoff = %v, want 1s (documented redial backoff)", DialBackoff)
	}
	addr, _, stop := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		// Withhold every reply: rounds stay in flight until the drop.
	})
	c := NewClient(types.Reader(1), []string{addr})
	defer c.Close()
	c.RoundTimeout = 10 * time.Second

	errCh := make(chan error, 1)
	start := time.Now()
	go func() { errCh <- c.Round(ackSpec("INFLIGHT")) }()
	deadline := time.Now().Add(5 * time.Second)
	for c.mux.pendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("round never registered its waiter")
		}
		time.Sleep(time.Millisecond)
	}
	c.mux.dropConn(1)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("dropped round: err = %v, want ErrConnLost", err)
		}
		if errors.Is(err, ErrRoundTimeout) {
			t.Fatalf("dropped round reported a timeout: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("round did not observe the drop")
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("drop took %v to surface, want well under the 10s deadline", d)
	}
	if n := c.mux.pendingWaiters(); n != 0 {
		t.Fatalf("after drop: %d pending waiters, want 0", n)
	}

	// With the peer gone for good, the fresh dial state redials synchronously
	// once (the failure opens the backoff window), then refuses instantly.
	stop()
	if err := c.Round(ackSpec("DEAD")); !errors.Is(err, ErrConnLost) {
		t.Fatalf("round against dead peer: err = %v, want ErrConnLost", err)
	}
	begin := time.Now()
	if _, err := c.mux.connFor(1); err != errObjectDown {
		t.Fatalf("connFor(dead) = %v, want errObjectDown", err)
	}
	if d := time.Since(begin); d > 100*time.Millisecond {
		t.Errorf("connFor during backoff took %v, want immediate", d)
	}
}

// TestOutOfOrderReplies pins the demux property the Seq-matched lock-step
// client never had: replies complete by request ID, not FIFO, so a round
// whose reply arrives first finishes first even if its request was sent
// second — over a single shared connection.
func TestOutOfOrderReplies(t *testing.T) {
	var (
		mu      sync.Mutex
		held    *wire.Request
		heldEnc *wire.Encoder
	)
	firstSeen := make(chan struct{})
	addr, accepts, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		mu.Lock()
		defer mu.Unlock()
		if held == nil {
			r := req
			held = &r
			heldEnc = enc
			close(firstSeen)
			return // withhold the first round's reply until released below
		}
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{addr})
	defer m.Close()
	c1 := m.Client(types.Reader(1), 1)
	c2 := m.Client(types.Reader(2), 2)

	firstDone := make(chan error, 1)
	go func() { firstDone <- c1.Round(ackSpec("FIRST")) }()
	<-firstSeen // the first request is in flight and withheld

	// The second round runs to completion while the first is still pending:
	// completion is by request ID, not FIFO over the shared connection.
	if err := c2.Round(ackSpec("SECOND")); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if n := m.pendingWaiters(); n != 1 {
		t.Fatalf("while first reply withheld: %d pending waiters, want 1", n)
	}
	mu.Lock()
	heldEnc.EncodeResponse(wire.Response{ID: held.ID, Msg: types.Message{Kind: types.MsgAck}})
	mu.Unlock()
	select {
	case err := <-firstDone:
		if err != nil {
			t.Fatalf("first round: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("released reply never completed the first round")
	}
	if got := accepts.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1 (rounds must share the mux connection)", got)
	}
}

// TestConcurrentRoundsShareOneConnection hammers one mux from many
// goroutines and asserts the whole load rode a single TCP connection with
// no leaked demux entries.
func TestConcurrentRoundsShareOneConnection(t *testing.T) {
	addr, accepts, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{addr})
	defer m.Close()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Client(types.Reader(g+1), g)
			for i := 0; i < 25; i++ {
				if err := c.Round(ackSpec(fmt.Sprintf("G%d/%d", g, i))); err != nil {
					t.Errorf("g%d round %d: %v", g, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := accepts.Load(); got != 1 {
		t.Errorf("server saw %d connections, want 1", got)
	}
	if n := m.pendingWaiters(); n != 0 {
		t.Errorf("%d pending waiters after quiescence, want 0", n)
	}
}
