// Package tcpnet runs the storage protocol over real TCP sockets: a Server
// exposes one storage object on a listener, and a Client implements
// proto.Rounder against a set of object addresses, so every register
// implementation in the repository runs unchanged across machines
// (cmd/storaged and cmd/storctl are the deployable binaries).
package tcpnet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"robustatomic/internal/persist"
	"robustatomic/internal/proto"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Persister is the durability hook around the storage-object automaton: it
// recovers the hosted register instances at startup, logs every
// state-mutating request before the reply leaves, and supports the
// rotate/commit compaction cycle. *persist.Engine is the production
// implementation; tests may substitute fakes.
type Persister interface {
	// Recover reconstitutes the register instances from disk. Called once,
	// before the server accepts connections.
	Recover() (map[int]*server.Store, error)
	// Append durably logs one mutating request per the engine's fsync mode.
	Append(req wire.Request) error
	// WALSize reports the bytes in the live WAL generation (compaction
	// trigger input).
	WALSize() int64
	// Rotate seals the live WAL generation and returns the new one; the
	// caller quiesces mutations across Rotate and the subsequent state
	// capture, and passes the returned generation to Commit with it.
	Rotate() (uint64, error)
	// Commit durably installs the captured snapshot under its matching
	// generation and prunes the generations it supersedes.
	Commit(gen uint64, snap []byte) error
	// Close seals the log.
	Close() error
}

var _ Persister = (*persist.Engine)(nil)

// ServerOptions configures the optional durability layer of a Server.
type ServerOptions struct {
	// DataDir is the durability directory. Empty means in-memory only —
	// exactly the pre-durability behavior.
	DataDir string
	// Fsync selects the WAL fsync policy (persist.FsyncBatch by default).
	Fsync persist.FsyncMode
	// Persist overrides the engine (tests, alternate engines). When set,
	// DataDir and Fsync are ignored.
	Persist Persister
	// CompactAt is the WAL size in bytes that triggers a snapshot+truncate
	// cycle. Default 1 MiB; negative disables automatic compaction.
	CompactAt int64
	// CompactEvery is the compaction poll period. Default 250ms.
	CompactEvery time.Duration
}

// Server serves one storage object over TCP. One object hosts any number of
// independent register instances (lazily instantiated, keyed by the Reg
// field of incoming requests), so a single daemon set backs a whole sharded
// multi-key Store. With a data directory configured, every state-mutating
// request is logged to a write-ahead log before the reply leaves and the
// instances are recovered on restart, so a crashed daemon resumes as a
// correct-but-slow object instead of an amnesiac one.
type Server struct {
	ID int

	lis     net.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	persist Persister
	opts    ServerOptions

	// applyMu orders WAL appends against compaction: every append+apply
	// pair runs under RLock, so under Lock the WAL holds no record whose
	// state change is still pending — a snapshot taken there covers every
	// sealed record (see Compact). compactMu serializes whole compaction
	// cycles (the background loop and explicit Compact calls).
	applyMu   sync.RWMutex
	compactMu sync.Mutex
	// Per-category warning latches: a compaction warning must not swallow
	// the later (and fatal) append-latch warning, or vice versa.
	warnAppend  sync.Once
	warnCompact sync.Once

	mu       sync.Mutex
	stores   map[int]*server.Store
	behavior server.Behavior
}

// NewServer starts serving object id on addr ("host:port"; ":0" picks a free
// port — use Addr to discover it) with no durability, exactly as before.
func NewServer(id int, addr string) (*Server, error) {
	return NewServerWith(id, addr, ServerOptions{})
}

// NewServerWith starts serving object id on addr with the given durability
// options. Recovery (snapshot load + WAL replay) completes before the
// listener accepts its first connection.
func NewServerWith(id int, addr string, opts ServerOptions) (*Server, error) {
	if opts.CompactAt == 0 {
		opts.CompactAt = 1 << 20
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 250 * time.Millisecond
	}
	s := &Server{ID: id, opts: opts, stores: make(map[int]*server.Store)}
	if opts.Persist != nil {
		s.persist = opts.Persist
	} else if opts.DataDir != "" {
		eng, err := persist.Open(opts.DataDir, persist.Options{Mode: opts.Fsync})
		if err != nil {
			return nil, fmt.Errorf("tcpnet: %w", err)
		}
		s.persist = eng
	}
	if s.persist != nil {
		stores, err := s.persist.Recover()
		if err != nil {
			s.persist.Close()
			return nil, fmt.Errorf("tcpnet: recover: %w", err)
		}
		s.stores = stores
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		if s.persist != nil {
			s.persist.Close()
		}
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.ctx, s.cancel = context.WithCancel(context.Background())
	s.wg.Add(1)
	go s.acceptLoop()
	if s.persist != nil && opts.CompactAt > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// MaxRegisters bounds the register instances one object will host. Register
// instances are allocated on first touch from a client-supplied field, so an
// unbounded map would let a buggy client grow the daemon's heap without
// limit; past the cap (and for negative instances) the object stays silent,
// which correct protocols treat as a faulty object.
const MaxRegisters = 1 << 16

// Registers returns the number of register instances the object currently
// hosts (instrumentation).
func (s *Server) Registers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stores)
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetBehavior injects a (Byzantine) behavior; nil restores honesty.
func (s *Server) SetBehavior(b server.Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.behavior = b
}

// Close stops the server, waits for its connections to drain, and seals the
// write-ahead log.
func (s *Server) Close() {
	s.cancel()
	s.lis.Close()
	s.wg.Wait()
	if s.persist != nil {
		s.persist.Close()
	}
}

// Compact forces one snapshot+truncate cycle: mutations are quiesced while
// the WAL rotates and the state is captured, then the snapshot is committed
// under the rotated generation and superseded generations pruned. No-op
// without persistence.
func (s *Server) Compact() error {
	if s.persist == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.applyMu.Lock()
	gen, err := s.persist.Rotate()
	var snap []byte
	if err == nil {
		s.mu.Lock()
		snap, err = persist.EncodeStores(s.stores)
		s.mu.Unlock()
	}
	s.applyMu.Unlock()
	if err != nil {
		return err
	}
	return s.persist.Commit(gen, snap)
}

// compactLoop triggers compaction whenever the WAL outgrows the threshold.
func (s *Server) compactLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			if s.persist.WALSize() < s.opts.CompactAt {
				continue
			}
			if err := s.Compact(); err != nil {
				s.warnf(&s.warnCompact, "s%d: compaction: %v", s.ID, err)
			}
		}
	}
}

// warnf reports the first problem of a category once (persistent failures
// would otherwise spam stderr at request rate).
func (s *Server) warnf(once *sync.Once, format string, args ...any) {
	once.Do(func() {
		fmt.Fprintf(os.Stderr, "tcpnet: "+format+"\n", args...)
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	go func() {
		<-s.ctx.Done()
		conn.Close()
	}()
	dec := wire.NewDecoder(conn)
	enc := wire.NewEncoder(conn)
	for {
		req, err := dec.DecodeRequest()
		if err != nil {
			return
		}
		if req.Reg < 0 || req.Reg >= MaxRegisters {
			continue // invalid instance: the client sees silence
		}
		// Log state-mutating requests before the reply leaves: once a client
		// counts this object's ack toward a quorum, the state change must
		// survive a restart, or an honest crash becomes an amnesia fault and
		// silently burns the t-budget. The append+apply pair runs under the
		// apply read-lock so compaction (which holds the write lock) never
		// snapshots between a sealed record and its state change.
		mutating := s.persist != nil && server.Mutates(req.Msg)
		if mutating {
			s.applyMu.RLock()
			if err := s.persist.Append(req); err != nil {
				s.applyMu.RUnlock()
				// An unloggable mutation must not be acked or applied: the
				// client sees silence, indistinguishable from slowness.
				s.warnf(&s.warnAppend, "s%d: wal append: %v", s.ID, err)
				continue
			}
		}
		s.mu.Lock()
		st, found := s.stores[req.Reg]
		if !found {
			st = server.NewStore()
			s.stores[req.Reg] = st
		}
		b := s.behavior
		if b == nil {
			b = server.Honest{}
		}
		reply, ok := b.Reply(st, req.From, req.Msg)
		s.mu.Unlock()
		if mutating {
			s.applyMu.RUnlock()
		}
		if !ok {
			continue // withheld reply: the client sees silence
		}
		reply.Seq = req.Msg.Seq
		if err := enc.EncodeResponse(wire.Response{Server: s.ID, Msg: reply}); err != nil {
			return
		}
	}
}

// ErrRoundTimeout is returned when a round cannot gather sufficient replies.
var ErrRoundTimeout = errors.New("tcpnet: round timed out")

// errDialPending is returned by conn while a (re)dial is in flight.
var errDialPending = errors.New("tcpnet: dial in progress")

// errObjectDown is returned by conn while a recently-failed object is in its
// redial backoff window.
var errObjectDown = errors.New("tcpnet: object unreachable, in dial backoff")

// dialTimeout bounds one connection attempt.
const dialTimeout = 2 * time.Second

// DialBackoff is how long after a failed dial the client waits before
// trying that object again. During the window, rounds skip the object
// immediately instead of stalling on a fresh dial — one unreachable object
// must not add dial latency to every round. (Exported so restart drills
// can wait out exactly this window.)
const DialBackoff = 1 * time.Second

// Client executes protocol rounds against a set of object addresses
// (addresses[i] serves object i+1). One Client serves one logical process
// against one register instance; operations are issued one at a time.
type Client struct {
	Proc         types.ProcID
	RoundTimeout time.Duration // default 5s

	addrs   []string
	reg     int
	mu      sync.Mutex
	conns   []*clientConn
	dials   []dialState
	closed  bool
	done    chan struct{} // closed by Close; releases blocked reader sends
	replyCh chan wire.Response
	seq     int
	// Rounds counts completed rounds (instrumentation).
	Rounds int
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *wire.Encoder
}

// dialState tracks one object's connection attempts. A zero failedAt means
// the next attempt dials synchronously (first contact, or after an
// established connection dropped — the common case of a healthy peer);
// after a failed dial, retries run in the background at most once per
// backoff window so rounds never block on a dead peer.
type dialState struct {
	failedAt time.Time
	inflight bool
}

// NewClient returns a round executor for proc against the given addresses,
// addressing the default register (instance 0).
func NewClient(proc types.ProcID, addrs []string) *Client {
	return NewClientReg(proc, addrs, 0)
}

// NewClientReg returns a round executor for proc against register instance
// reg of the given objects.
func NewClientReg(proc types.ProcID, addrs []string, reg int) *Client {
	return &Client{
		Proc:         proc,
		RoundTimeout: 5 * time.Second,
		addrs:        addrs,
		reg:          reg,
		conns:        make([]*clientConn, len(addrs)),
		dials:        make([]dialState, len(addrs)),
		done:         make(chan struct{}),
		replyCh:      make(chan wire.Response, 4*len(addrs)+16),
	}
}

var _ proto.Rounder = (*Client)(nil)

// NumServers implements proto.Rounder.
func (c *Client) NumServers() int { return len(c.addrs) }

// Close tears down the client's connections and releases its reader
// goroutines.
func (c *Client) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	close(c.done)
	for _, cc := range c.conns {
		if cc != nil && cc.conn != nil {
			cc.conn.Close()
		}
	}
}

// conn returns the pooled connection to object sid, dialing if needed. The
// first attempt (and the first after an established connection drops) dials
// synchronously; once an attempt has failed, further attempts are skipped
// for the backoff window and then retried in the background, so sends to
// live objects proceed immediately while a peer is down.
func (c *Client) conn(sid int) (*clientConn, error) {
	c.mu.Lock()
	if cc := c.conns[sid-1]; cc != nil && cc.conn != nil {
		c.mu.Unlock()
		return cc, nil
	}
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("tcpnet: client closed")
	}
	ds := &c.dials[sid-1]
	if ds.inflight {
		c.mu.Unlock()
		return nil, errDialPending
	}
	if ds.failedAt.IsZero() {
		ds.inflight = true
		c.mu.Unlock()
		conn, err := net.DialTimeout("tcp", c.addrs[sid-1], dialTimeout)
		c.mu.Lock()
		ds.inflight = false
		cc, installErr := c.installLocked(sid, conn, err)
		c.mu.Unlock()
		if installErr != nil {
			return nil, fmt.Errorf("tcpnet: dial s%d: %w", sid, installErr)
		}
		return cc, nil
	}
	if time.Since(ds.failedAt) < DialBackoff {
		c.mu.Unlock()
		return nil, errObjectDown
	}
	// Backoff expired: retry in the background; this round still skips the
	// object, the next one uses the connection if the dial succeeded.
	ds.inflight = true
	go func() {
		conn, err := net.DialTimeout("tcp", c.addrs[sid-1], dialTimeout)
		c.mu.Lock()
		ds.inflight = false
		c.installLocked(sid, conn, err)
		c.mu.Unlock()
	}()
	c.mu.Unlock()
	return nil, errDialPending
}

// installLocked records the outcome of a dial attempt (under c.mu): on
// success it pools the connection and starts its reader goroutine, which
// pumps responses into the client's reply channel — blocking when the
// channel is momentarily full rather than dropping, so current-round
// replies are never lost; Close releases any blocked reader.
func (c *Client) installLocked(sid int, conn net.Conn, err error) (*clientConn, error) {
	ds := &c.dials[sid-1]
	if err != nil {
		ds.failedAt = time.Now()
		return nil, err
	}
	if c.closed {
		conn.Close()
		return nil, errors.New("tcpnet: client closed")
	}
	ds.failedAt = time.Time{}
	cc := &clientConn{conn: conn, enc: wire.NewEncoder(conn)}
	c.conns[sid-1] = cc
	go func() {
		dec := wire.NewDecoder(conn)
		for {
			rsp, err := dec.DecodeResponse()
			if err != nil {
				return
			}
			// The object's identity is the connection it answered on, not
			// the Server field it claims: a Byzantine daemon must not be
			// able to cast votes as some other (correct) object.
			rsp.Server = sid
			select {
			case c.replyCh <- rsp:
			case <-c.done:
				return
			}
		}
	}()
	return cc, nil
}

// Round implements proto.Rounder.
func (c *Client) Round(spec proto.RoundSpec) error {
	c.seq++
	seq := c.seq
	// Anything buffered now answers an earlier round: drain it so readers
	// blocked on a momentarily-full channel can deliver current replies.
	for {
		select {
		case <-c.replyCh:
			continue
		default:
		}
		break
	}
	for sid := 1; sid <= len(c.addrs); sid++ {
		msg := spec.Req(sid)
		msg.Seq = seq
		cc, err := c.conn(sid)
		if err != nil {
			continue // unreachable object: counted as faulty
		}
		cc.mu.Lock()
		err = cc.enc.EncodeRequest(wire.Request{From: c.Proc, Reg: c.reg, Msg: msg})
		cc.mu.Unlock()
		if err != nil {
			c.dropConn(sid)
		}
	}
	timeout := c.RoundTimeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case rsp := <-c.replyCh:
			if rsp.Msg.Seq != seq {
				continue // late reply from an earlier round
			}
			spec.Acc.Add(rsp.Server, rsp.Msg)
			if spec.Acc.Done() {
				c.Rounds++
				return nil
			}
		case <-c.done:
			return errors.New("tcpnet: client closed")
		case <-deadline.C:
			return fmt.Errorf("%w: %s", ErrRoundTimeout, spec.Label)
		}
	}
}

func (c *Client) dropConn(sid int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc := c.conns[sid-1]; cc != nil && cc.conn != nil {
		cc.conn.Close()
		c.conns[sid-1] = nil
	}
	// An established connection died mid-send; the peer is probably still
	// up (daemon restart, transient reset), so the next attempt dials
	// synchronously again.
	c.dials[sid-1] = dialState{}
}
