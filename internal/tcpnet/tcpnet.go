// Package tcpnet runs the storage protocol over real TCP sockets: a Server
// exposes one storage object on a listener, and a Client implements
// proto.Rounder against a set of object addresses, so every register
// implementation in the repository runs unchanged across machines
// (cmd/storaged and cmd/storctl are the deployable binaries).
package tcpnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic/internal/config"
	"robustatomic/internal/obs"
	"robustatomic/internal/persist"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Daemon-side observability: request mix, batched sub-round fan-in, bytes
// at the socket boundary, and fault-injection activity. Per-server register
// counts are callback gauges keyed by object id (see NewServerWith).
var (
	mSrvConns        = obs.Default.Gauge("tcpnet_server_conns")
	mSrvSingle       = obs.Default.Counter("tcpnet_server_requests_total")
	mSrvBatch        = obs.Default.Counter("tcpnet_server_batch_requests_total")
	mSrvBatchSubs    = obs.Default.Hist("tcpnet_server_batch_subs")
	mSrvChaosDropped = obs.Default.Counter("tcpnet_server_chaos_subs_dropped_total")
	mSrvLinkDropped  = obs.Default.Counter("tcpnet_server_link_dropped_total")
	mSrvRxBytes      = obs.Default.Counter("tcpnet_server_rx_bytes_total")
	mSrvTxBytes      = obs.Default.Counter("tcpnet_server_tx_bytes_total")
	mSrvCompactions  = obs.Default.Counter("tcpnet_server_compactions_total")
	mSrvStaleEpoch   = obs.Default.Counter("tcpnet_server_stale_epoch_total")
)

// Persister is the durability hook around the storage-object automaton: it
// recovers the hosted register instances at startup, logs every
// state-mutating request before the reply leaves, and supports the
// rotate/commit compaction cycle. *persist.Engine is the production
// implementation; tests may substitute fakes.
type Persister interface {
	// Recover reconstitutes the register instances from disk. Called once,
	// before the server accepts connections.
	Recover() (map[int]*server.Store, error)
	// Append durably logs one mutating request per the engine's fsync mode.
	Append(req wire.Request) error
	// WALSize reports the bytes in the live WAL generation (compaction
	// trigger input).
	WALSize() int64
	// Rotate seals the live WAL generation and returns the new one; the
	// caller quiesces mutations across Rotate and the subsequent state
	// capture, and passes the returned generation to Commit with it.
	Rotate() (uint64, error)
	// Commit durably installs the captured snapshot under its matching
	// generation and prunes the generations it supersedes.
	Commit(gen uint64, snap []byte) error
	// Close seals the log.
	Close() error
}

var _ Persister = (*persist.Engine)(nil)

// ServerOptions configures the optional durability layer of a Server.
type ServerOptions struct {
	// DataDir is the durability directory. Empty means in-memory only —
	// exactly the pre-durability behavior.
	DataDir string
	// Fsync selects the WAL fsync policy (persist.FsyncBatch by default).
	Fsync persist.FsyncMode
	// Persist overrides the engine (tests, alternate engines). When set,
	// DataDir and Fsync are ignored.
	Persist Persister
	// CompactAt is the WAL size in bytes that triggers a snapshot+truncate
	// cycle. Default 1 MiB; negative disables automatic compaction.
	CompactAt int64
	// CompactEvery is the compaction poll period. Default 250ms.
	CompactEvery time.Duration
}

// Server serves one storage object over TCP. One object hosts any number of
// independent register instances (lazily instantiated, keyed by the Reg
// field of incoming requests), so a single daemon set backs a whole sharded
// multi-key Store. With a data directory configured, every state-mutating
// request is logged to a write-ahead log before the reply leaves and the
// instances are recovered on restart, so a crashed daemon resumes as a
// correct-but-slow object instead of an amnesiac one.
type Server struct {
	ID int

	lis     net.Listener
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	persist Persister
	opts    ServerOptions

	// applyMu orders WAL appends against compaction: every append+apply
	// pair runs under RLock, so under Lock the WAL holds no record whose
	// state change is still pending — a snapshot taken there covers every
	// sealed record (see Compact). compactMu serializes whole compaction
	// cycles (the background loop and explicit Compact calls).
	applyMu   sync.RWMutex
	compactMu sync.Mutex
	// Per-category warning latches: a compaction warning must not swallow
	// the later (and fatal) append-latch warning, or vice versa.
	warnAppend  sync.Once
	warnCompact sync.Once

	// Dynamic reconfiguration: activeEpoch is the epoch of the newest
	// configuration this object has seen land in its config register
	// (instance config.Reg); requests stamped with an older non-zero epoch
	// are refused with MsgWrongEpoch. epochHint (under mu) is that
	// configuration's encoded form, attached to refusals so redirected
	// clients can refetch without an extra round. Both re-derive from the
	// recovered config register at startup — the configuration is durable
	// because it lives in an ordinary register instance, covered by the
	// same WAL and snapshots as every shard.
	activeEpoch atomic.Uint64
	epochHint   types.Value

	mu       sync.Mutex
	stores   map[int]*server.Store
	behavior server.Behavior
	// Batch-level fault injection (SetBatchChaos): independent drop
	// probability per sub-reply, optional shuffle of the surviving
	// sub-replies within the response frame.
	batchRng     *rand.Rand
	batchDrop    float64
	batchShuffle bool
	// Link-level fault injection (SetPartitioned/SetNetem): requests dropped
	// before they reach the WAL or the automaton, replies delayed or
	// duplicated on the wire.
	partitioned bool
	netemRng    *rand.Rand
	netemDrop   float64
	netemDup    float64
	netemDelay  time.Duration
}

// NewServer starts serving object id on addr ("host:port"; ":0" picks a free
// port — use Addr to discover it) with no durability, exactly as before.
func NewServer(id int, addr string) (*Server, error) {
	return NewServerWith(id, addr, ServerOptions{})
}

// NewServerWith starts serving object id on addr with the given durability
// options. Recovery (snapshot load + WAL replay) completes before the
// listener accepts its first connection.
func NewServerWith(id int, addr string, opts ServerOptions) (*Server, error) {
	if opts.CompactAt == 0 {
		opts.CompactAt = 1 << 20
	}
	if opts.CompactEvery <= 0 {
		opts.CompactEvery = 250 * time.Millisecond
	}
	s := &Server{ID: id, opts: opts, stores: make(map[int]*server.Store)}
	if opts.Persist != nil {
		s.persist = opts.Persist
	} else if opts.DataDir != "" {
		eng, err := persist.Open(opts.DataDir, persist.Options{Mode: opts.Fsync})
		if err != nil {
			return nil, fmt.Errorf("tcpnet: %w", err)
		}
		s.persist = eng
	}
	if s.persist != nil {
		stores, err := s.persist.Recover()
		if err != nil {
			s.persist.Close()
			return nil, fmt.Errorf("tcpnet: recover: %w", err)
		}
		s.stores = stores
		s.refreshEpochLocked() // re-derive the active epoch from the recovered config register
	}
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		if s.persist != nil {
			s.persist.Close()
		}
		return nil, fmt.Errorf("tcpnet: listen %s: %w", addr, err)
	}
	s.lis = lis
	s.ctx, s.cancel = context.WithCancel(context.Background())
	obs.Default.GaugeFunc(fmt.Sprintf("tcpnet_server_registers{id=\"%d\"}", id), func() int64 {
		return int64(s.Registers())
	})
	obs.Default.GaugeFunc(fmt.Sprintf("tcpnet_server_epoch{id=\"%d\"}", id), func() int64 {
		return int64(s.activeEpoch.Load())
	})
	s.wg.Add(1)
	go s.acceptLoop()
	if s.persist != nil && opts.CompactAt > 0 {
		s.wg.Add(1)
		go s.compactLoop()
	}
	return s, nil
}

// MaxRegisters bounds the register instances one object will host. Register
// instances are allocated on first touch from a client-supplied field, so an
// unbounded map would let a buggy client grow the daemon's heap without
// limit; past the cap (and for negative instances) the object stays silent,
// which correct protocols treat as a faulty object.
const MaxRegisters = 1 << 16

// Registers returns the number of register instances the object currently
// hosts (instrumentation).
func (s *Server) Registers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stores)
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

// SetBehavior injects a (Byzantine) behavior; nil restores honesty.
func (s *Server) SetBehavior(b server.Behavior) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.behavior = b
}

// SetBatchChaos injects batch-level faults: each sub-reply of a batched
// response is independently dropped with probability drop, and the
// surviving sub-replies are shuffled within the frame when shuffle is set
// (clients must route sub-bundles by register instance, not position). A
// nil rng disables batch chaos. Orthogonal to SetBehavior, which acts on
// individual messages.
func (s *Server) SetBatchChaos(rng *rand.Rand, drop float64, shuffle bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchRng = rng
	s.batchDrop = drop
	s.batchShuffle = shuffle
}

// SetPartitioned cuts the object off the network (or heals it): inbound
// requests are dropped before they reach the WAL or the automaton, so —
// unlike server.Silent, which processes the message and withholds the reply
// — the object's state does not advance while partitioned. Connections stay
// open (the peer sees silence, then round timeouts), which is exactly what a
// filtering partition looks like from a client.
func (s *Server) SetPartitioned(partitioned bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.partitioned = partitioned
}

// SetNetem injects seeded link faults: each inbound request is dropped with
// probability drop (never processed — a lost datagram, not a Byzantine
// silence), each surviving reply is duplicated on the wire with probability
// dup (clients must dedupe by request id), and every reply is held back by
// delay before it is written. A nil rng clears drop/dup; delay applies
// regardless. Orthogonal to SetBehavior and SetBatchChaos — netem is the
// network, not the object.
func (s *Server) SetNetem(rng *rand.Rand, drop, dup float64, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.netemRng = rng
	s.netemDrop = drop
	s.netemDup = dup
	s.netemDelay = delay
}

// linkVerdict samples the partition/netem state for one inbound request.
// The rng is shared across connection goroutines, hence the lock.
func (s *Server) linkVerdict() (drop, dup bool, delay time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.partitioned {
		return true, false, 0
	}
	if s.netemRng != nil {
		if s.netemDrop > 0 && s.netemRng.Float64() < s.netemDrop {
			return true, false, 0
		}
		dup = s.netemDup > 0 && s.netemRng.Float64() < s.netemDup
	}
	return false, dup, s.netemDelay
}

// Close stops the server, waits for its connections to drain, and seals the
// write-ahead log.
func (s *Server) Close() {
	obs.Default.Unregister(fmt.Sprintf("tcpnet_server_registers{id=\"%d\"}", s.ID))
	obs.Default.Unregister(fmt.Sprintf("tcpnet_server_epoch{id=\"%d\"}", s.ID))
	s.cancel()
	s.lis.Close()
	s.wg.Wait()
	if s.persist != nil {
		s.persist.Close()
	}
}

// Compact forces one snapshot+truncate cycle: mutations are quiesced while
// the WAL rotates and the state is captured, then the snapshot is committed
// under the rotated generation and superseded generations pruned. No-op
// without persistence.
func (s *Server) Compact() error {
	if s.persist == nil {
		return nil
	}
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.applyMu.Lock()
	gen, err := s.persist.Rotate()
	var snap []byte
	if err == nil {
		s.mu.Lock()
		snap, err = persist.EncodeStores(s.stores)
		s.mu.Unlock()
	}
	s.applyMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.persist.Commit(gen, snap); err != nil {
		return err
	}
	mSrvCompactions.Inc()
	return nil
}

// compactLoop triggers compaction whenever the WAL outgrows the threshold.
func (s *Server) compactLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CompactEvery)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			if s.persist.WALSize() < s.opts.CompactAt {
				continue
			}
			if err := s.Compact(); err != nil {
				s.warnf(&s.warnCompact, "s%d: compaction: %v", s.ID, err)
			}
		}
	}
}

// warnf reports the first problem of a category once (persistent failures
// would otherwise spam stderr at request rate).
func (s *Server) warnf(once *sync.Once, format string, args ...any) {
	once.Do(func() {
		fmt.Fprintf(os.Stderr, "tcpnet: "+format+"\n", args...)
	})
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	mSrvConns.Inc()
	defer mSrvConns.Dec()
	go func() {
		<-s.ctx.Done()
		conn.Close()
	}()
	dec := wire.NewDecoder(countingReader{conn, mSrvRxBytes})
	enc := wire.NewEncoder(countingWriter{conn, mSrvTxBytes})
	for {
		req, err := dec.DecodeRequest()
		if err != nil {
			return
		}
		drop, dup, delay := s.linkVerdict()
		if drop {
			mSrvLinkDropped.Inc()
			continue // partitioned or netem-dropped: never processed
		}
		var rsp wire.Response
		var send bool
		if rsp, send = s.refuseStale(req); !send {
			if len(req.Subs) > 0 {
				mSrvBatch.Inc()
				mSrvBatchSubs.Record(int64(len(req.Subs)))
				rsp, send = s.handleBatch(req)
			} else {
				mSrvSingle.Inc()
				rsp, send = s.handleSingle(req)
			}
		}
		if !send {
			continue // withheld reply: the client sees silence
		}
		rsp.ID = req.ID
		rsp.Server = s.ID
		if delay > 0 {
			// The reply stalls on this connection's ordered stream — later
			// pipelined replies queue behind it, as real congestion would.
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-s.ctx.Done():
				t.Stop()
				return
			}
		}
		if err := enc.EncodeResponse(rsp); err != nil {
			return
		}
		if dup {
			// Duplicated on the wire: the client's demux must drop the copy
			// (its request id has already been resolved).
			if err := enc.EncodeResponse(rsp); err != nil {
				return
			}
		}
	}
}

// handleSingle runs one single-register request to a response (send=false
// means the client sees silence).
func (s *Server) handleSingle(req wire.Request) (rsp wire.Response, send bool) {
	if req.Reg < 0 || req.Reg >= MaxRegisters {
		return rsp, false // invalid instance: the client sees silence
	}
	// Log state-mutating requests before the reply leaves: once a client
	// counts this object's ack toward a quorum, the state change must
	// survive a restart, or an honest crash becomes an amnesia fault and
	// silently burns the t-budget. The append+apply pair runs under the
	// apply read-lock so compaction (which holds the write lock) never
	// snapshots between a sealed record and its state change.
	mutating := s.persist != nil && server.Mutates(req.Msg)
	if mutating {
		s.applyMu.RLock()
		if err := s.persist.Append(req); err != nil {
			s.applyMu.RUnlock()
			// An unloggable mutation must not be acked or applied: the
			// client sees silence, indistinguishable from slowness.
			s.warnf(&s.warnAppend, "s%d: wal append: %v", s.ID, err)
			return rsp, false
		}
	}
	s.mu.Lock()
	b := s.behavior
	if b == nil {
		b = server.Honest{}
	}
	reply, ok := b.Reply(s.storeLocked(req.Reg), req.From, req.Msg)
	s.mu.Unlock()
	if mutating {
		s.applyMu.RUnlock()
	}
	if req.Reg == config.Reg && server.Mutates(req.Msg) {
		s.refreshEpoch()
	}
	if !ok {
		return rsp, false
	}
	reply.Seq = req.Msg.Seq
	rsp.Msg = reply
	return rsp, true
}

// handleBatch runs every sub-request of a batch against its own register
// instance in one pass. The whole batch is one received message (logged
// once, answered once); a sub-reply the behavior withholds is simply absent
// from the response, and a response with no surviving sub-replies is not
// sent at all (silence, like a withheld single reply).
func (s *Server) handleBatch(req wire.Request) (rsp wire.Response, send bool) {
	// Sanitize before logging: out-of-range instances must reach neither
	// the WAL nor the automata (the client sees silence for them).
	valid := req.Subs[:0:0]
	for _, sub := range req.Subs {
		if sub.Reg >= 0 && sub.Reg < MaxRegisters {
			valid = append(valid, sub)
		}
	}
	req.Subs = valid
	if len(req.Subs) == 0 {
		return rsp, false
	}
	mutating := false
	if s.persist != nil {
		for i := range req.Subs {
			if server.Mutates(req.Subs[i].Msg) {
				mutating = true
				break
			}
		}
	}
	if mutating {
		s.applyMu.RLock()
		if err := s.persist.Append(req); err != nil {
			s.applyMu.RUnlock()
			s.warnf(&s.warnAppend, "s%d: wal append: %v", s.ID, err)
			return rsp, false
		}
	}
	s.mu.Lock()
	b := s.behavior
	if b == nil {
		b = server.Honest{}
	}
	out := make([]wire.SubReq, 0, len(req.Subs))
	for _, sub := range req.Subs {
		reply, ok := b.Reply(s.storeLocked(sub.Reg), req.From, sub.Msg)
		if !ok {
			continue // withheld sub-reply: absent from the response
		}
		reply.Seq = sub.Msg.Seq
		out = append(out, wire.SubReq{Reg: sub.Reg, Msg: reply})
	}
	if s.batchRng != nil {
		if s.batchDrop > 0 {
			kept := out[:0]
			for _, sub := range out {
				if s.batchRng.Float64() >= s.batchDrop {
					kept = append(kept, sub)
				} else {
					mSrvChaosDropped.Inc()
				}
			}
			out = kept
		}
		if s.batchShuffle && len(out) > 1 {
			s.batchRng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		}
	}
	s.mu.Unlock()
	if mutating {
		s.applyMu.RUnlock()
	}
	for i := range req.Subs {
		if req.Subs[i].Reg == config.Reg && server.Mutates(req.Subs[i].Msg) {
			s.refreshEpoch()
			break
		}
	}
	if len(out) == 0 {
		return rsp, false
	}
	rsp.Subs = out
	return rsp, true
}

// storeLocked returns register instance reg's automaton, creating it on
// first touch. Callers must hold s.mu and have bounds-checked reg.
func (s *Server) storeLocked(reg int) *server.Store {
	st, found := s.stores[reg]
	if !found {
		st = server.NewStore()
		s.stores[reg] = st
	}
	return st
}

// Epoch returns the object's active configuration epoch (instrumentation
// and tests). Zero means no configuration has ever landed — the object
// accepts every stamp.
func (s *Server) Epoch() uint64 { return s.activeEpoch.Load() }

// refuseStale refuses a request from a superseded configuration epoch: a
// non-zero stamp below the active epoch gets a MsgWrongEpoch reply whose
// Pair carries the active epoch (TS.Seq) and the encoded active config
// (Val), so the client can refetch and retry against the new membership.
// Epoch 0 is the wildcard stamp (config-plane rounds, Direct operator
// connections, legacy clients) and stamps AHEAD of the object are accepted
// too — the object is the stale party there, and it catches up when the
// config write reaches it; refusing would deadlock the handoff. The check
// runs before the WAL sees the request: a refused mutation is never logged
// or applied.
func (s *Server) refuseStale(req wire.Request) (wire.Response, bool) {
	active := s.activeEpoch.Load()
	if req.Epoch == 0 || req.Epoch >= active {
		return wire.Response{}, false
	}
	mSrvStaleEpoch.Inc()
	s.mu.Lock()
	hint := s.epochHint
	s.mu.Unlock()
	return wire.Response{Msg: types.Message{
		Kind: types.MsgWrongEpoch,
		Pair: types.Pair{TS: types.TS{Seq: int64(active)}, Val: hint},
		Seq:  req.Msg.Seq,
	}}, true
}

// refreshEpoch re-derives the active epoch from the config register's
// written state. Called after any mutation touching instance config.Reg
// lands (and at recovery): when the decoded configuration's epoch exceeds
// the active one, the object adopts it and starts refusing older stamps.
// The epoch is monotone — a stale or Byzantine client writing an old
// config value cannot roll it back (the register's own timestamp order
// already prevents old pairs from overwriting new ones; this guard covers
// the window where only the prewrite landed).
func (s *Server) refreshEpoch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.refreshEpochLocked()
}

func (s *Server) refreshEpochLocked() {
	st, ok := s.stores[config.Reg]
	if !ok {
		return
	}
	w := st.Reg(types.WriterReg).W
	if w.Val.IsBottom() {
		return
	}
	cfg, err := config.Decode(w.Val)
	if err != nil {
		return // unparseable config value: keep the last good epoch
	}
	if cfg.Epoch > s.activeEpoch.Load() {
		s.activeEpoch.Store(cfg.Epoch)
		s.epochHint = w.Val
	}
}

