package tcpnet

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"robustatomic/internal/config"
	"robustatomic/internal/core"
	"robustatomic/internal/persist"
	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// waitEpoch polls until the daemon's active epoch reaches want (the config
// write completes at a quorum; the last daemon adopts it asynchronously).
func waitEpoch(t *testing.T, s *Server, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Epoch() < want {
		if time.Now().After(deadline) {
			t.Fatalf("s%d epoch = %d, want %d", s.ID, s.Epoch(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerEpochGate pins the object-side epoch gate end to end: a config
// written to the reserved config register raises every daemon's active
// epoch; data-plane rounds stamped with the superseded epoch are refused
// with the typed redirect (carrying a decodable hint) and leave no trace in
// the WAL; stamps AHEAD of a daemon are accepted (the daemon is the stale
// party during activation); recovery re-derives the epoch from the
// persisted config register.
func TestServerEpochGate(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	var servers []*Server
	var addrs []string
	var opts []ServerOptions
	for i := 1; i <= 4; i++ {
		o := ServerOptions{DataDir: filepath.Join(base, fmt.Sprintf("s%d", i)), Fsync: persist.FsyncOff}
		s, err := NewServerWith(i, "127.0.0.1:0", o)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		opts = append(opts, o)
	}

	// Seed the data plane at the bootstrap epoch.
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("v1"); err != nil {
		t.Fatal(err)
	}

	// Activate epoch 2 by writing the config register (config-plane rounds
	// carry the wildcard stamp, so the write is never refused).
	cfg := config.Config{Epoch: 2, Addrs: addrs}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	cc := NewClientReg(types.Writer, addrs, config.Reg)
	defer cc.Close()
	if err := core.NewWriter(cc, thr).Write(cfg.Encode()); err != nil {
		t.Fatalf("config write: %v", err)
	}
	for _, s := range servers {
		waitEpoch(t, s, 2)
	}

	// The epoch-1 client is now stale: its next round must be refused with
	// the typed redirect, and the hint must decode to the active config.
	err = w.Write("stale")
	var we *WrongEpochError
	if !errors.As(err, &we) {
		t.Fatalf("stale write: err = %v, want *WrongEpochError", err)
	}
	if we.Epoch != 2 {
		t.Errorf("redirect epoch = %d, want 2", we.Epoch)
	}
	if len(we.Hints) == 0 {
		t.Fatal("redirect carried no config hint")
	}
	hinted, err := config.Decode(we.Hints[0])
	if err != nil || !hinted.Equal(cfg) {
		t.Errorf("hint decoded to (%v, %v), want the active config", hinted, err)
	}

	// Adopting the new configuration un-refuses the client; a stamp AHEAD of
	// the daemons (an epoch they have not yet activated) is also accepted —
	// the daemon is the stale party there, and refusing would deadlock the
	// handoff that is about to inform it.
	if err := wc.mux.Reconfigure(2, addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("v2"); err != nil {
		t.Fatalf("write after refetch: %v", err)
	}
	if err := wc.mux.Reconfigure(9, addrs); err != nil {
		t.Fatal(err)
	}
	if err := w.Write("v3"); err != nil {
		t.Fatalf("write with ahead stamp: %v", err)
	}

	// Restart a daemon from its data dir: recovery must re-derive the active
	// epoch from the persisted config register, and the refused stale write
	// must have left no trace (the gate runs before the WAL append).
	addr1 := servers[0].Addr()
	servers[0].Close()
	s1 := restartServer(t, 1, addr1, opts[0])
	t.Cleanup(s1.Close)
	if got := s1.Epoch(); got != 2 {
		t.Errorf("recovered epoch = %d, want 2", got)
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	if err := rc.mux.Reconfigure(2, addrs); err != nil {
		t.Fatal(err)
	}
	forceRedial(t, rc, 1)
	v, err := core.NewReader(rc, thr, 1, 2).Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v3" {
		t.Errorf("read after restart = %q, want v3 (refused write must not replay)", v)
	}
}
