package tcpnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"robustatomic/internal/checker"
	"robustatomic/internal/core"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// startCluster launches n object servers on loopback.
func startCluster(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	var servers []*Server
	var addrs []string
	for i := 1; i <= n; i++ {
		s, err := NewServer(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	return servers, addrs
}

func TestTCPAtomicRegisterEndToEnd(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startCluster(t, 4)
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	for i := 1; i <= 3; i++ {
		if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v3" {
		t.Errorf("read = %q, want v3", v)
	}
	// Stable register: the query rounds certify v3's write as complete and
	// the write-back is elided (Prop. 1's 4 rounds remain the worst case).
	if rc.Rounds != 2 {
		t.Errorf("read rounds = %d, want 2 (write-back elided)", rc.Rounds)
	}
}

func TestTCPByzantineServer(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	servers[0].SetBehavior(server.Garbage{Level: 777, Val: "evil"})
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "a" {
		t.Errorf("read = %q despite one Byzantine server", v)
	}
}

func TestTCPServerDownWithinBudget(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[3].Close() // one object crashes: within the t=1 budget
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "a" {
		t.Errorf("read = %q", v)
	}
}

func TestTCPRoundTimeoutBeyondBudget(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[2].Close()
	servers[3].Close() // two objects down: beyond the t=1 budget
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	wc.RoundTimeout = 200 * time.Millisecond
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err == nil {
		t.Fatal("write succeeded with 2 of 4 objects down")
	}
}

// TestDeadPeerDoesNotStallRounds pins the dial-backoff fix: after one failed
// dial, rounds must skip the dead object immediately (no synchronous redial
// per round), and a background redial must adopt the object once it is back.
func TestDeadPeerDoesNotStallRounds(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	deadAddr := servers[3].Addr()
	servers[3].Close() // object 4 is down from the start
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err != nil { // pays the one failed dial
		t.Fatal(err)
	}
	wc.mux.mu.Lock()
	failedAt := wc.mux.dials[3].failedAt
	wc.mux.mu.Unlock()
	if failedAt.IsZero() {
		t.Fatal("failed dial not recorded")
	}
	// Within the backoff window connFor must refuse instantly, not dial.
	start := time.Now()
	if _, err := wc.mux.connFor(4); err != errObjectDown {
		t.Fatalf("connFor(dead) = %v, want errObjectDown", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("conn(dead) took %v during backoff, want immediate", d)
	}
	start = time.Now()
	if err := w.Write("b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > dialTimeout {
		t.Errorf("round with a dead peer took %v, want no dial stall", d)
	}

	// Bring object 4 back and expire the backoff: the next conn kicks off a
	// background dial, and the connection appears without blocking a round.
	s4, err := NewServer(4, deadAddr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", deadAddr, err)
	}
	defer s4.Close()
	wc.mux.mu.Lock()
	wc.mux.dials[3].failedAt = time.Now().Add(-2 * DialBackoff)
	wc.mux.mu.Unlock()
	if _, err := wc.mux.connFor(4); err != errDialPending {
		t.Fatalf("connFor(recovering) = %v, want errDialPending", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		mc, err := wc.mux.connFor(4)
		if err == nil && mc != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("background dial never adopted the recovered object")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := w.Write("c"); err != nil {
		t.Fatal(err)
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startCluster(t, 4)
	h := &checker.History{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc := NewClient(types.Writer, addrs)
		defer wc.Close()
		w := core.NewWriter(wc, thr)
		for i := 1; i <= 4; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			id := h.Invoke(types.Writer, checker.OpWrite, v)
			if err := w.Write(v); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			h.Respond(id, types.Bottom)
		}
	}()
	for r := 1; r <= 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := NewClient(types.Reader(r), addrs)
			defer rc.Close()
			rd := core.NewReader(rc, thr, r, 2)
			for i := 0; i < 3; i++ {
				id := h.Invoke(types.Reader(r), checker.OpRead, types.Bottom)
				v, err := rd.Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				h.Respond(id, v)
			}
		}()
	}
	wg.Wait()
	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
}
