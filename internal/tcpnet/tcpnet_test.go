package tcpnet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"robustatomic/internal/checker"
	"robustatomic/internal/core"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// startCluster launches n object servers on loopback.
func startCluster(t *testing.T, n int) ([]*Server, []string) {
	t.Helper()
	var servers []*Server
	var addrs []string
	for i := 1; i <= n; i++ {
		s, err := NewServer(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
	}
	return servers, addrs
}

func TestTCPAtomicRegisterEndToEnd(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startCluster(t, 4)
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	for i := 1; i <= 3; i++ {
		if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v3" {
		t.Errorf("read = %q, want v3", v)
	}
	if rc.Rounds != 4 {
		t.Errorf("read rounds = %d, want 4", rc.Rounds)
	}
}

func TestTCPByzantineServer(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	servers[0].SetBehavior(server.Garbage{Level: 777, Val: "evil"})
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "a" {
		t.Errorf("read = %q despite one Byzantine server", v)
	}
}

func TestTCPServerDownWithinBudget(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[3].Close() // one object crashes: within the t=1 budget
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "a" {
		t.Errorf("read = %q", v)
	}
}

func TestTCPRoundTimeoutBeyondBudget(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[2].Close()
	servers[3].Close() // two objects down: beyond the t=1 budget
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	wc.RoundTimeout = 200 * time.Millisecond
	w := core.NewWriter(wc, thr)
	if err := w.Write("a"); err == nil {
		t.Fatal("write succeeded with 2 of 4 objects down")
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, addrs := startCluster(t, 4)
	h := &checker.History{}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		wc := NewClient(types.Writer, addrs)
		defer wc.Close()
		w := core.NewWriter(wc, thr)
		for i := 1; i <= 4; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			id := h.Invoke(types.Writer, checker.OpWrite, v)
			if err := w.Write(v); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			h.Respond(id, types.Bottom)
		}
	}()
	for r := 1; r <= 2; r++ {
		r := r
		wg.Add(1)
		go func() {
			defer wg.Done()
			rc := NewClient(types.Reader(r), addrs)
			defer rc.Close()
			rd := core.NewReader(rc, thr, r, 2)
			for i := 0; i < 3; i++ {
				id := h.Invoke(types.Reader(r), checker.OpRead, types.Bottom)
				v, err := rd.Read()
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				h.Respond(id, v)
			}
		}()
	}
	wg.Wait()
	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
}
