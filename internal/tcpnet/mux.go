// The multiplexed client transport (wire generations 3+).
//
// A Mux owns one TCP connection per storage object and pipelines any number
// of concurrent protocol rounds over it. Per connection there are exactly
// two goroutines: a writer that owns the encoder and drains a send queue
// (greedily, flushing once the queue runs dry, so a burst of requests
// coalesces into few syscalls), and a reader that decodes responses and
// routes each to its waiter by the request ID the frame carries. Rounds
// register one waiter per request before it is enqueued and deregister
// whatever they still own when they return, so:
//
//   - replies complete out of order (the demux table, not FIFO, matches them);
//   - a reply for an abandoned waiter (timed-out round) finds no table entry
//     and is dropped without blocking the reader or leaking the slot;
//   - connection loss fails all of that connection's in-flight waiters with
//     ErrConnLost immediately instead of letting them burn their deadlines.
//
// Waiter delivery can never block: a round's reply channel has capacity for
// every waiter the round registered, and each waiter delivers at most once
// (it is removed from the table before the send). The dial state machine is
// the lock-step client's, unchanged: first contact (and first contact after
// an established connection drops) dials synchronously, a failed dial puts
// the object in a 1s backoff window during which rounds skip it, and after
// the window redials run in the background.
package tcpnet

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic/internal/config"
	"robustatomic/internal/obs"
	"robustatomic/internal/proto"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Client-transport observability. The in-flight gauge moves with the waiter
// table (registered on send, released on delivery/abandon/teardown), so it
// is the live pipelining depth across every connection of the process.
var (
	mMuxInFlight  = obs.Default.Gauge("tcpnet_inflight_waiters")
	mMuxConnLost  = obs.Default.Counter("tcpnet_conn_lost_total")
	mMuxTimeouts  = obs.Default.Counter("tcpnet_round_timeout_total")
	mMuxUnsat     = obs.Default.Counter("tcpnet_round_unsat_total")
	mMuxDials     = obs.Default.Counter("tcpnet_dials_total")
	mMuxRedials   = obs.Default.Counter("tcpnet_redials_total")
	mMuxDialFails = obs.Default.Counter("tcpnet_dial_fail_total")
	mMuxTxBytes   = obs.Default.Counter("tcpnet_client_tx_bytes_total")
	mMuxRxBytes   = obs.Default.Counter("tcpnet_client_rx_bytes_total")
	mMuxBatchSubs = obs.Default.Hist("tcpnet_client_batch_subs")
)

// countingWriter / countingReader tally frame bytes at the buffer boundary:
// one atomic add per flush / per buffered fill, not per frame.
type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.c.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.c.Add(int64(n))
	return n, err
}

// ErrRoundTimeout is returned when a round cannot gather sufficient replies.
var ErrRoundTimeout = errors.New("tcpnet: round timed out")

// ErrConnLost is the distinct failure of in-flight requests whose
// connection died (peer reset, encode error, dropConn): rounds observe it
// immediately, well before their deadline, and can tell a lost connection
// from a slow quorum.
var ErrConnLost = errors.New("tcpnet: connection lost with requests in flight")

// ErrWrongEpoch is the sentinel every WrongEpochError wraps: the round was
// refused by objects whose active configuration supersedes the client's.
// The remedy is a config refetch and a retry — not a backoff
// (internal/retry classifies it accordingly).
var ErrWrongEpoch = errors.New("tcpnet: request epoch superseded by a newer configuration")

// WrongEpochError reports a round refused for carrying a stale
// configuration epoch. Epoch is the newest active epoch any refusing
// object reported and Hints their encoded configurations
// (config.Decode-able) — redirect hints only: a Byzantine object can
// fabricate both, so callers must certify a hint by quorum (or re-read the
// config register) before trusting it.
type WrongEpochError struct {
	Label string
	Epoch uint64
	Hints []types.Value
	// Cause is the failure the round would have reported had no refusal
	// arrived — set only when fewer than t+1 objects refused yet the quorum
	// was still denied (connection losses, or an accumulator no further
	// reply can satisfy). In that ambiguous mix the refusals alone do not
	// prove a newer configuration exists: callers whose config refetch
	// finds nothing newer should fall back to Cause (ErrConnLost /
	// ErrRoundTimeout — both retryable) so a lone Byzantine forgery cannot
	// upgrade a transient failure into a hard error. Nil when > t refusals
	// prove the redirect. Deliberately NOT exposed via Unwrap: the error
	// classifies as Reconfig (refetch first), not Transient.
	Cause error
}

// Error implements error.
func (e *WrongEpochError) Error() string {
	return fmt.Sprintf("%v: %s: objects report active epoch %d", ErrWrongEpoch, e.Label, e.Epoch)
}

// Unwrap makes errors.Is(err, ErrWrongEpoch) hold.
func (e *WrongEpochError) Unwrap() error { return ErrWrongEpoch }

// errClientClosed is returned by rounds after Close.
var errClientClosed = errors.New("tcpnet: client closed")

// errDialPending is returned by connFor while a (re)dial is in flight.
var errDialPending = errors.New("tcpnet: dial in progress")

// errObjectDown is returned by connFor while a recently-failed object is in
// its redial backoff window.
var errObjectDown = errors.New("tcpnet: object unreachable, in dial backoff")

// errSlotVacant is returned by connFor for a slot the active configuration
// leaves vacant (a departed object): no dial, no backoff state — the slot
// simply counts as faulty until a join fills it.
var errSlotVacant = errors.New("tcpnet: configuration slot vacant")

// dialTimeout bounds one connection attempt.
const dialTimeout = 2 * time.Second

// DialBackoff is how long after a failed dial the client waits before
// trying that object again. During the window, rounds skip the object
// immediately instead of stalling on a fresh dial — one unreachable object
// must not add dial latency to every round. (Exported so restart drills
// can wait out exactly this window.)
const DialBackoff = 1 * time.Second

// sendQueueDepth is the per-connection send queue; senders beyond it block
// (backpressure) until the writer drains.
const sendQueueDepth = 128

// Mux is the multiplexed transport to a set of object addresses
// (addresses[i] serves object i+1). Any number of Clients — and any number
// of concurrent rounds — share it; thousands of register operations share
// one connection per daemon.
//
// The address set is the mux's view of the active configuration and may
// change at runtime (Reconfigure): the slot count S is fixed for the mux's
// lifetime, but a slot's address can be swapped or vacated as the cluster
// reconfigures. Every request is stamped with the configuration epoch the
// mux holds; objects refuse stale stamps with MsgWrongEpoch and rounds
// surface that as a WrongEpochError, which the cluster layer answers with
// a config refetch + Reconfigure + retry.
type Mux struct {
	n           int // slot count, immutable (the fixed-S rule)
	maxInFlight int // ≤0 = unlimited; 1 reproduces lock-step
	nextID      atomic.Uint64
	epoch       atomic.Uint64 // configuration epoch stamped on requests

	mu     sync.Mutex
	addrs  []string // slot sid-1 → address; "" = vacant (guarded by mu)
	conns  []*muxConn
	dials  []dialState
	closed bool
	done   chan struct{} // closed by Close
}

// dialState tracks one object's connection attempts. A zero failedAt means
// the next attempt dials synchronously (first contact, or after an
// established connection dropped — the common case of a healthy peer);
// after a failed dial, retries run in the background at most once per
// backoff window so rounds never block on a dead peer.
type dialState struct {
	failedAt time.Time
	inflight bool
	// syncDone is non-nil while a synchronous dial is in flight; concurrent
	// rounds sharing the mux wait on it instead of skipping a peer that is a
	// few microseconds from connected (the lock-step client never had this
	// race — a private connection is only ever dialed by its own round).
	syncDone chan struct{}
}

// muxConn is one live connection and its demux state.
type muxConn struct {
	sid    int
	conn   net.Conn
	sendCh chan wire.Request
	slots  chan struct{} // in-flight semaphore; nil = unlimited
	down   chan struct{} // closed on teardown
	closer sync.Once

	mu      sync.Mutex
	dead    bool
	waiters map[uint64]chan muxReply
}

// muxReply is what the demux delivers to a round: a decoded response (with
// the server identity pinned to the connection it arrived on) or the
// failure of the request's connection.
type muxReply struct {
	sid  int
	msg  types.Message
	subs []wire.SubReq
	err  error
}

// NewMux returns a Mux with unlimited pipelining.
func NewMux(addrs []string) *Mux { return NewMuxLimited(addrs, 0) }

// NewMuxLimited returns a Mux allowing at most maxInFlight in-flight
// requests per connection (≤0 for unlimited). maxInFlight 1 reproduces the
// lock-step behavior of wire generations ≤2 — the E13 baseline and a
// conservative escape hatch.
func NewMuxLimited(addrs []string, maxInFlight int) *Mux {
	m := &Mux{
		n:           len(addrs),
		addrs:       append([]string(nil), addrs...),
		maxInFlight: maxInFlight,
		conns:       make([]*muxConn, len(addrs)),
		dials:       make([]dialState, len(addrs)),
		done:        make(chan struct{}),
	}
	m.epoch.Store(1) // the bootstrap configuration (see internal/config)
	return m
}

// NumServers returns S, the number of storage objects (epoch-invariant).
func (m *Mux) NumServers() int { return m.n }

// Epoch returns the configuration epoch the mux stamps on requests.
func (m *Mux) Epoch() uint64 { return m.epoch.Load() }

// Addrs returns a copy of the mux's current address view (slot sid-1 →
// address, "" for vacant slots).
func (m *Mux) Addrs() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.addrs...)
}

// Reconfigure installs a newer configuration: the mux adopts the epoch,
// swaps its address view, and for every slot whose address changed tears
// down the old connection and drops the slot's backoff latch — a departed
// daemon must not keep an eternal redial loop (or its backoff latch)
// alive, nor delay the replacement's first dial. A dial already in flight
// for the old address is left to finish on its own (its outcome is
// discarded by the stale-address guard); clobbering its marker here would
// race a second dial onto the slot and panic the first dialer's channel
// close. Connections on unchanged slots are untouched; in-flight rounds on
// a torn-down slot fail with ErrConnLost and retry against the new
// address. A stale call (epoch not newer than the mux's) is a no-op, so
// racing refetches converge on the newest configuration.
func (m *Mux) Reconfigure(epoch uint64, addrs []string) error {
	if len(addrs) != m.n {
		return fmt.Errorf("tcpnet: reconfigure with %d slots, mux has %d (S is fixed)", len(addrs), m.n)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errClientClosed
	}
	if epoch <= m.epoch.Load() {
		m.mu.Unlock()
		return nil
	}
	m.epoch.Store(epoch)
	var drop []*muxConn
	for i := range addrs {
		if m.addrs[i] == addrs[i] {
			continue
		}
		m.addrs[i] = addrs[i]
		if mc := m.conns[i]; mc != nil {
			// Detach under the lock: no round may resolve the departed
			// daemon's connection once the new address view is visible (its
			// replies must never count for the reconfigured slot).
			m.conns[i] = nil
			drop = append(drop, mc)
		}
		// Drop only the backoff latch: the departed address must not delay
		// the new one's first dial. The inflight/syncDone fields are
		// preserved — a dial in flight for the old address still owns the
		// slot's dial marker and clears it itself when it completes (the
		// stale-address guard in installLocked discards its outcome).
		// Zeroing them here would let a second dial start concurrently and
		// would yank the channel the first dialer is about to close.
		m.dials[i].failedAt = time.Time{}
	}
	m.mu.Unlock()
	for _, mc := range drop {
		m.teardown(mc, fmt.Errorf("%w (s%d reconfigured away)", ErrConnLost, mc.sid))
	}
	return nil
}

// Close tears down every connection, failing all in-flight waiters.
func (m *Mux) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.done)
	conns := append([]*muxConn(nil), m.conns...)
	m.mu.Unlock()
	for _, mc := range conns {
		if mc != nil {
			m.teardown(mc, errClientClosed)
		}
	}
}

// Client returns a round executor for proc against register instance reg,
// sharing this Mux's connections with every other handle.
func (m *Mux) Client(proc types.ProcID, reg int) *Client {
	return &Client{Proc: proc, RoundTimeout: 5 * time.Second, mux: m, reg: reg}
}

// connFor returns the live connection to object sid, dialing if needed
// (see dialState for the synchronous/backoff/background policy).
func (m *Mux) connFor(sid int) (*muxConn, error) {
	for {
		mc, wait, err := m.connOrWait(sid)
		if wait == nil {
			return mc, err
		}
		<-wait // a synchronous dial is in flight; adopt its outcome
	}
}

// connOrWait is connFor's locked step: it returns a connection, an error,
// or a channel to wait on while another round's synchronous dial completes.
func (m *Mux) connOrWait(sid int) (*muxConn, <-chan struct{}, error) {
	m.mu.Lock()
	if mc := m.conns[sid-1]; mc != nil {
		m.mu.Unlock()
		return mc, nil, nil
	}
	if m.closed {
		m.mu.Unlock()
		return nil, nil, errClientClosed
	}
	addr := m.addrs[sid-1]
	if addr == "" {
		// The active configuration leaves this slot vacant: nothing to
		// dial, no backoff state to keep — the slot counts as faulty until
		// a join fills it (Reconfigure clears the state then).
		m.mu.Unlock()
		return nil, nil, errSlotVacant
	}
	ds := &m.dials[sid-1]
	if ds.inflight {
		wait := ds.syncDone
		m.mu.Unlock()
		if wait != nil {
			return nil, wait, nil
		}
		return nil, nil, errDialPending
	}
	if ds.failedAt.IsZero() {
		done := make(chan struct{})
		ds.inflight = true
		ds.syncDone = done
		m.mu.Unlock()
		mMuxDials.Inc()
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		m.mu.Lock()
		// Close the captured channel, never the shared field: if some reset
		// replaced the slot's dial state while we dialed, ds.syncDone is no
		// longer ours to close (or clear) — closing a nil or foreign channel
		// would panic every round on the mux.
		if ds.syncDone == done {
			ds.inflight = false
			ds.syncDone = nil
		}
		mc, installErr := m.installLocked(sid, addr, conn, err)
		m.mu.Unlock()
		close(done)
		if installErr != nil {
			return nil, nil, fmt.Errorf("tcpnet: dial s%d: %w", sid, installErr)
		}
		return mc, nil, nil
	}
	if time.Since(ds.failedAt) < DialBackoff {
		m.mu.Unlock()
		return nil, nil, errObjectDown
	}
	// Backoff expired: retry in the background; this round still skips the
	// object, the next one uses the connection if the dial succeeded.
	ds.inflight = true
	go func() {
		mMuxRedials.Inc()
		conn, err := net.DialTimeout("tcp", addr, dialTimeout)
		m.mu.Lock()
		ds.inflight = false
		m.installLocked(sid, addr, conn, err)
		m.mu.Unlock()
	}()
	m.mu.Unlock()
	return nil, nil, errDialPending
}

// installLocked records the outcome of a dial attempt (under m.mu): on
// success it installs the connection and starts its writer and reader
// goroutines. addr is the address the dial actually targeted — if a
// Reconfigure swapped the slot while the dial was in flight, the outcome
// belongs to a departed daemon and is discarded (neither the connection
// nor a failure's backoff latch may leak into the new address's state).
func (m *Mux) installLocked(sid int, addr string, conn net.Conn, err error) (*muxConn, error) {
	if m.addrs[sid-1] != addr {
		if conn != nil {
			conn.Close()
		}
		return nil, errObjectDown
	}
	ds := &m.dials[sid-1]
	if err != nil {
		mMuxDialFails.Inc()
		ds.failedAt = time.Now()
		return nil, err
	}
	if m.closed {
		conn.Close()
		return nil, errClientClosed
	}
	if mc := m.conns[sid-1]; mc != nil {
		// A connection is already installed (racing dials after a
		// reconfigure cleared the slot's dial state): keep it.
		conn.Close()
		return mc, nil
	}
	ds.failedAt = time.Time{}
	mc := &muxConn{
		sid:     sid,
		conn:    conn,
		sendCh:  make(chan wire.Request, sendQueueDepth),
		down:    make(chan struct{}),
		waiters: make(map[uint64]chan muxReply),
	}
	if m.maxInFlight > 0 {
		mc.slots = make(chan struct{}, m.maxInFlight)
	}
	m.conns[sid-1] = mc
	go m.writeLoop(mc)
	go m.readLoop(mc)
	return mc, nil
}

// teardown kills one connection: the socket closes, the conn detaches from
// the table with its dial state reset (an established connection died — the
// peer is probably still up, so the next round dials synchronously; if it
// is not, that dial's failure opens the backoff window), and every
// in-flight waiter fails with err. Idempotent — the reader, the writer,
// dropConn and Close may race into it.
func (m *Mux) teardown(mc *muxConn, err error) {
	mc.closer.Do(func() {
		close(mc.down)
		mc.conn.Close()
	})
	m.mu.Lock()
	if m.conns[mc.sid-1] == mc {
		m.conns[mc.sid-1] = nil
		m.dials[mc.sid-1] = dialState{}
	}
	m.mu.Unlock()
	mc.mu.Lock()
	ws := mc.waiters
	mc.waiters = nil
	mc.dead = true
	mc.mu.Unlock()
	if !errors.Is(err, errClientClosed) {
		mMuxConnLost.Inc()
	}
	mMuxInFlight.Add(-int64(len(ws)))
	for _, ch := range ws {
		ch <- muxReply{sid: mc.sid, err: err}
	}
}

// writeLoop owns the connection's encoder: it drains the send queue
// greedily into a buffered writer and flushes when the queue runs dry, so
// pipelined bursts cost few syscalls.
func (m *Mux) writeLoop(mc *muxConn) {
	bw := bufio.NewWriterSize(countingWriter{mc.conn, mMuxTxBytes}, 64<<10)
	enc := wire.NewEncoder(bw)
	for {
		select {
		case req := <-mc.sendCh:
			for {
				if err := enc.EncodeRequest(req); err != nil {
					m.teardown(mc, fmt.Errorf("%w (send s%d: %v)", ErrConnLost, mc.sid, err))
					return
				}
				select {
				case req = <-mc.sendCh:
					continue
				default:
				}
				break
			}
			if err := bw.Flush(); err != nil {
				m.teardown(mc, fmt.Errorf("%w (send s%d: %v)", ErrConnLost, mc.sid, err))
				return
			}
		case <-mc.down:
			return
		case <-m.done:
			m.teardown(mc, errClientClosed)
			return
		}
	}
}

// readLoop decodes responses and routes each to its waiter by request ID.
// The object's identity is the connection it answered on, not the Server
// field it claims: a Byzantine daemon must not be able to cast votes as
// some other (correct) object. A response whose ID has no waiter — the
// round timed out and deregistered, or the peer forged an ID — is dropped
// on the spot; delivery to a live waiter cannot block (see the package
// comment), so one slow round never stalls the demux.
func (m *Mux) readLoop(mc *muxConn) {
	dec := wire.NewDecoder(countingReader{mc.conn, mMuxRxBytes})
	for {
		rsp, err := dec.DecodeResponse()
		if err != nil {
			m.teardown(mc, fmt.Errorf("%w (recv s%d: %v)", ErrConnLost, mc.sid, err))
			return
		}
		mc.mu.Lock()
		ch, ok := mc.waiters[rsp.ID]
		if ok {
			delete(mc.waiters, rsp.ID)
		}
		mc.mu.Unlock()
		if !ok {
			continue // abandoned or forged ID: discarded, slot already freed
		}
		mMuxInFlight.Dec()
		ch <- muxReply{sid: mc.sid, msg: rsp.Msg, subs: rsp.Subs}
		mc.release()
	}
}

// release frees one in-flight slot. Called exactly once per registered
// waiter, by whoever removes it from the table (reader on delivery, round
// on deregistration); teardown skips it because the dead connection's
// semaphore is irrelevant and blocked acquirers watch down.
func (mc *muxConn) release() {
	if mc.slots != nil {
		<-mc.slots
	}
}

// send registers the round's waiter for req.ID and enqueues the request on
// object sid's connection, dialing it first if needed.
func (m *Mux) send(sid int, req wire.Request, replyCh chan muxReply) (*muxConn, error) {
	mc, err := m.connFor(sid)
	if err != nil {
		return nil, err
	}
	if mc.slots != nil {
		select {
		case mc.slots <- struct{}{}:
		case <-mc.down:
			return nil, ErrConnLost
		case <-m.done:
			return nil, errClientClosed
		}
	}
	mc.mu.Lock()
	if mc.dead {
		mc.mu.Unlock()
		return nil, ErrConnLost
	}
	mc.waiters[req.ID] = replyCh
	mMuxInFlight.Inc() // inside the lock: teardown's bulk decrement counts this waiter
	mc.mu.Unlock()
	select {
	case mc.sendCh <- req:
	case <-mc.down:
		// The connection died between registration and enqueue. Teardown
		// already failed this waiter (registration checked dead under the
		// same mutex teardown collects under), so the round observes
		// ErrConnLost through the reply channel like any in-flight request.
	}
	return mc, nil
}

// round runs one communication round over the mux: one tagged request per
// object (single or batch form, per the spec), replies demultiplexed by ID
// and integrated as they arrive, out of order across concurrent rounds.
func (m *Mux) round(proc types.ProcID, reg int, timeout time.Duration, spec proto.RoundSpec) error {
	n := m.n
	// Stamp the round with the active configuration epoch. Config-plane
	// rounds (the config register itself) carry the epoch-0 wildcard: the
	// config must stay read/writable ACROSS an epoch change, or a client
	// refused for staleness could never learn the new configuration.
	epoch := m.epoch.Load()
	if len(spec.Subs) == 0 && reg == config.Reg {
		epoch = 0
	}
	// Capacity n: every registered waiter delivers at most once, so sends
	// to this channel can never block even after the round abandons it.
	replyCh := make(chan muxReply, n)
	type sent struct {
		mc *muxConn
		id uint64
	}
	var pending []sent
	// Deregister every waiter the round still owns on exit: a late reply
	// must find no slot (the reader drops it), and the in-flight slot must
	// not leak.
	defer func() {
		for _, p := range pending {
			p.mc.mu.Lock()
			_, owned := p.mc.waiters[p.id]
			if owned {
				delete(p.mc.waiters, p.id)
			}
			p.mc.mu.Unlock()
			if owned {
				mMuxInFlight.Dec()
				p.mc.release()
			}
		}
	}()
	// traced is set when anyone wants per-object events: the round's own
	// trace, or a merged sub-round's (the Combiner threads each originating
	// flush's trace through its SubRound, so a traced flush keeps its events
	// even when its round rode inside another leader's batch).
	traced := spec.Trace != nil
	if len(spec.Subs) > 0 {
		mMuxBatchSubs.Record(int64(len(spec.Subs)))
		for i := range spec.Subs {
			if spec.Subs[i].Trace != nil {
				traced = true
			}
		}
	}
	outstanding := 0
	for sid := 1; sid <= n; sid++ {
		req := wire.Request{ID: m.nextID.Add(1), From: proc, Epoch: epoch}
		// Seq is vestigial on this transport (matching is by ID) but the
		// automata echo it, so stamp something round-unique for traces.
		seq := int(req.ID & (1<<30 - 1))
		if len(spec.Subs) > 0 {
			req.Subs = make([]wire.SubReq, len(spec.Subs))
			for i := range spec.Subs {
				msg := spec.Subs[i].Req(sid)
				msg.Seq = seq
				req.Subs[i] = wire.SubReq{Reg: spec.Subs[i].Reg, Msg: msg}
			}
		} else {
			req.Reg = reg
			req.Msg = spec.Req(sid)
			req.Msg.Seq = seq
		}
		mc, err := m.send(sid, req, replyCh)
		if err != nil {
			if traced {
				traceEvent(&spec, sid, "skip", err.Error())
			}
			continue // unreachable object: counted as faulty
		}
		if traced {
			traceEvent(&spec, sid, "send", "")
		}
		pending = append(pending, sent{mc, req.ID})
		outstanding++
	}
	if outstanding == 0 {
		return fmt.Errorf("%w: %s: no object reachable", ErrConnLost, spec.Label)
	}
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	lost := 0
	// Wrong-epoch refusals: a refusing object contributes nothing to the
	// accumulator, so track them separately. More than t refusals prove at
	// least one CORRECT object holds a newer configuration — fail the round
	// immediately with the typed redirect instead of burning the deadline.
	wrongEpoch := 0
	weErr := &WrongEpochError{Label: spec.Label}
	for {
		select {
		case r := <-replyCh:
			outstanding--
			if r.err != nil {
				if traced {
					traceEvent(&spec, r.sid, "lost", r.err.Error())
				}
				lost++
			} else if r.msg.Kind == types.MsgWrongEpoch {
				if traced {
					traceEvent(&spec, r.sid, "reply", fmt.Sprintf("WRONG_EPOCH(%d)", r.msg.Pair.TS.Seq))
				}
				wrongEpoch++
				// The reported epoch rides in Seq, a Byzantine-controlled
				// int64: a negative value would convert to an astronomical
				// uint64 and permanently defeat the refetcher's
				// already-adopted short-circuit, so ignore it. (Genuine
				// epochs start at 1.)
				if s := r.msg.Pair.TS.Seq; s > 0 {
					if e := uint64(s); e > weErr.Epoch {
						weErr.Epoch = e
					}
				}
				if !r.msg.Pair.Val.IsBottom() {
					weErr.Hints = append(weErr.Hints, r.msg.Pair.Val)
				}
				if wrongEpoch > (n-1)/3 {
					return weErr
				}
			} else if len(r.subs) > 0 {
				if traced {
					traceSubReplies(&spec, r)
				}
				for _, sub := range r.subs {
					spec.AddSub(r.sid, sub.Reg, sub.Msg)
				}
			} else {
				if spec.Trace != nil {
					spec.Trace.Event(r.sid, "reply", r.msg.TraceNote())
				}
				spec.Acc.Add(r.sid, r.msg)
			}
			if r.err == nil && spec.Done() {
				return nil
			}
			if outstanding == 0 {
				// Every in-flight request resolved (reply or connection
				// loss) and the accumulators are still unsatisfied: no
				// later delivery can complete this round. Withheld replies
				// keep their waiters outstanding, so this fires only when
				// nothing more can arrive. Any wrong-epoch refusal in the
				// mix makes the redirect the actionable diagnosis first
				// (during a partial activation, fewer than t+1 objects may
				// refuse yet still deny the quorum) — but with ≤ t refusers
				// the redirect is unproven, so the error carries the
				// underlying transient failure as Cause: if the refetch
				// finds nothing newer (a lone Byzantine forgery, or a
				// config not yet certifiable), the caller degrades to the
				// Cause and its ordinary retry path instead of hard-failing.
				if lost > 0 {
					lostErr := fmt.Errorf("%w: %s: %d of %d requests failed", ErrConnLost, spec.Label, lost, n)
					if wrongEpoch > 0 {
						weErr.Cause = lostErr
						return weErr
					}
					return lostErr
				}
				unsatErr := fmt.Errorf("%w: %s: all replies in, accumulator unsatisfied", ErrRoundTimeout, spec.Label)
				if wrongEpoch > 0 {
					weErr.Cause = unsatErr
					return weErr
				}
				mMuxUnsat.Inc()
				return unsatErr
			}
		case <-deadline.C:
			mMuxTimeouts.Inc()
			return fmt.Errorf("%w: %s", ErrRoundTimeout, spec.Label)
		case <-m.done:
			return errClientClosed
		}
	}
}

// traceEvent posts a round-level event to whoever is tracing this round:
// the spec's own trace when present, otherwise every traced sub-round (a
// combiner-merged frame where only some originating flushes are traced).
func traceEvent(spec *proto.RoundSpec, sid int, kind, note string) {
	if spec.Trace != nil {
		spec.Trace.Event(sid, kind, note)
		return
	}
	for i := range spec.Subs {
		spec.Subs[i].Trace.Event(sid, kind, note)
	}
}

// traceSubReplies reports, per traced sub-round, whether object sid's
// batched reply actually carried that register's sub-bundle — the exact
// information a sub-bundle-dropping daemon hides from the accumulator.
func traceSubReplies(spec *proto.RoundSpec, r muxReply) {
	for i := range spec.Subs {
		rt := spec.Subs[i].Trace
		if rt == nil {
			continue
		}
		found := false
		for _, sub := range r.subs {
			if sub.Reg == spec.Subs[i].Reg {
				found = true
				break
			}
		}
		if found {
			rt.Event(r.sid, "reply", "sub present")
		} else {
			rt.Event(r.sid, "reply", "SUB MISSING")
		}
	}
	if spec.Trace != nil {
		spec.Trace.Event(r.sid, "reply", fmt.Sprintf("%d/%d subs", len(r.subs), len(spec.Subs)))
	}
}

// dropConn tears down the connection to object sid, failing all of its
// in-flight waiters with ErrConnLost immediately. The dial state resets so
// the next round redials synchronously (the peer is probably still up).
func (m *Mux) dropConn(sid int) {
	m.mu.Lock()
	mc := m.conns[sid-1]
	m.mu.Unlock()
	if mc != nil {
		m.teardown(mc, fmt.Errorf("%w (s%d dropped)", ErrConnLost, sid))
	}
}

// pendingWaiters counts in-flight waiters across all connections
// (instrumentation; leak assertions in tests).
func (m *Mux) pendingWaiters() int {
	m.mu.Lock()
	conns := append([]*muxConn(nil), m.conns...)
	m.mu.Unlock()
	total := 0
	for _, mc := range conns {
		if mc == nil {
			continue
		}
		mc.mu.Lock()
		total += len(mc.waiters)
		mc.mu.Unlock()
	}
	return total
}

// Client executes protocol rounds for one process against one register
// instance, over a Mux (its own, or one shared with other handles via
// Mux.Client). Operations are issued one at a time per handle; any number
// of handles run concurrently over a shared Mux.
type Client struct {
	Proc         types.ProcID
	RoundTimeout time.Duration // default 5s

	mux   *Mux
	owned bool // Close tears the mux down (private mux constructors)
	reg   int
	// Rounds counts completed rounds (instrumentation).
	Rounds int
	// stats caches per-label round metrics (single-goroutine per handle;
	// see live.Client.statsFor for the rationale).
	stats obs.StatsCache
}

// statsFor returns the cached round metrics for the spec's label; merged
// batch rounds share the "BATCH" family to bound metric cardinality.
func (c *Client) statsFor(spec *proto.RoundSpec) *obs.RoundStats {
	label := spec.Label
	if len(spec.Subs) > 0 {
		label = "BATCH"
	}
	return c.stats.Get(obs.Default, "mux", label)
}

var _ proto.Rounder = (*Client)(nil)

// NewClient returns a round executor for proc against the given addresses,
// addressing the default register (instance 0), on a private pipelined Mux.
func NewClient(proc types.ProcID, addrs []string) *Client {
	return NewClientReg(proc, addrs, 0)
}

// NewClientReg returns a round executor for proc against register instance
// reg of the given objects, on a private pipelined Mux.
func NewClientReg(proc types.ProcID, addrs []string, reg int) *Client {
	c := NewMux(addrs).Client(proc, reg)
	c.owned = true
	return c
}

// NewLockStepClientReg returns a round executor whose private Mux allows a
// single in-flight request per connection — the wire behavior of
// generations ≤2, kept as the E13 baseline and an escape hatch.
func NewLockStepClientReg(proc types.ProcID, addrs []string, reg int) *Client {
	c := NewMuxLimited(addrs, 1).Client(proc, reg)
	c.owned = true
	return c
}

// NumServers implements proto.Rounder.
func (c *Client) NumServers() int { return c.mux.NumServers() }

// Close tears down the client's private Mux; a no-op for handles on a
// shared Mux (close the Mux itself).
func (c *Client) Close() {
	if c.owned {
		c.mux.Close()
	}
}

// Round implements proto.Rounder.
func (c *Client) Round(spec proto.RoundSpec) error {
	st := c.statsFor(&spec)
	begun := st.Begin()
	err := c.mux.round(c.Proc, c.reg, c.RoundTimeout, spec)
	st.Done(begun, err)
	if err == nil {
		c.Rounds++
	}
	return err
}
