package tcpnet

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"robustatomic/internal/core"
	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// TestTCPPartitionDropsWithoutProcessing: a partitioned daemon drops
// requests before the WAL and the automaton — its state must not advance —
// while the S-t live quorum keeps serving; healing folds it straight back.
func TestTCPPartitionDropsWithoutProcessing(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[0].SetPartitioned(true)

	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	if err := w.Write("v1"); err != nil {
		t.Fatalf("write with one partitioned daemon: %v", err)
	}
	if n := servers[0].Registers(); n != 0 {
		t.Fatalf("partitioned daemon instantiated %d registers — it processed dropped requests", n)
	}

	servers[0].SetPartitioned(false)
	if err := w.Write("v2"); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	// The write round completes on 2t+1 acks, possibly before the healed
	// daemon drains its socket; give it a moment to show state.
	deadline := time.Now().Add(2 * time.Second)
	for servers[0].Registers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("healed daemon still not processing requests")
		}
		time.Sleep(5 * time.Millisecond)
	}

	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v2" {
		t.Fatalf("read = %q, want v2", v)
	}
}

// TestTCPNetemDropDupDelay: seeded link faults — dropped requests, doubled
// replies (the demux discards the copy: its request id is already resolved),
// and wire delay — stay within the fault budget and never corrupt results.
func TestTCPNetemDropDupDelay(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	servers, addrs := startCluster(t, 4)
	servers[1].SetNetem(rand.New(rand.NewSource(3)), 0.5, 0, 0)
	servers[2].SetNetem(rand.New(rand.NewSource(4)), 0, 1.0, time.Millisecond)

	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	for i := 0; i < 8; i++ {
		val := types.Value(fmt.Sprintf("v%d", i))
		if err := w.Write(val); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		v, err := rd.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if v != val {
			t.Fatalf("read %d = %q, want %q", i, v, val)
		}
	}
}
