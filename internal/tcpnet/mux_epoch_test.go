package tcpnet

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"robustatomic/internal/config"
	"robustatomic/internal/proto"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// wrongEpochReply builds the refusal a daemon sends for a stale stamp:
// active epoch in Pair.TS.Seq, the encoded configuration as the hint.
func wrongEpochReply(req wire.Request, epoch uint64, hint types.Value) wire.Response {
	return wire.Response{ID: req.ID, Msg: types.Message{
		Kind: types.MsgWrongEpoch,
		Pair: types.Pair{TS: types.TS{Seq: int64(epoch)}, Val: hint},
		Seq:  req.Msg.Seq,
	}}
}

// TestWrongEpochFailFast pins the redirect fast path: once more than t
// objects refuse a round for staleness, at least one CORRECT object holds a
// newer configuration, so the round must fail immediately with the typed
// WrongEpochError — carrying the newest reported epoch and the hints —
// instead of burning its deadline.
func TestWrongEpochFailFast(t *testing.T) {
	hint := config.Config{Epoch: 7, Addrs: []string{"a:1", "b:2", "c:3", "d:4"}}.Encode()
	addrs := make([]string, 4)
	for i := range addrs {
		addrs[i], _, _ = startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
			enc.EncodeResponse(wrongEpochReply(req, 7, hint))
		})
	}
	c := NewClient(types.Reader(1), addrs)
	defer c.Close()
	c.RoundTimeout = 5 * time.Second

	start := time.Now()
	err := c.Round(ackSpec("STALE"))
	if !errors.Is(err, ErrWrongEpoch) {
		t.Fatalf("refused round: err = %v, want ErrWrongEpoch", err)
	}
	var we *WrongEpochError
	if !errors.As(err, &we) {
		t.Fatalf("refused round: err = %T, want *WrongEpochError", err)
	}
	if we.Epoch != 7 {
		t.Errorf("reported epoch = %d, want 7", we.Epoch)
	}
	if len(we.Hints) == 0 {
		t.Error("no hints collected from refusals")
	}
	if we.Cause != nil {
		t.Errorf("proven redirect (> t refusers) carries Cause %v, want nil", we.Cause)
	}
	for _, h := range we.Hints {
		if cfg, err := config.Decode(h); err != nil || cfg.Epoch != 7 {
			t.Errorf("hint decoded to (%v, %v), want the epoch-7 config", cfg, err)
		}
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("redirect took %v, want fail-fast (well under the deadline)", d)
	}
	if n := c.mux.pendingWaiters(); n != 0 {
		t.Fatalf("after refused round: %d pending waiters, want 0", n)
	}
}

// TestWrongEpochMinorityStillRedirects pins the partial-activation case:
// with t or fewer refusals the round keeps collecting (a lone Byzantine
// forgery must not abort a satisfiable round), but if every reply arrives
// and the accumulator is still short, any refusal in the mix makes the
// redirect — not ErrRoundTimeout — the diagnosis.
func TestWrongEpochMinorityStillRedirects(t *testing.T) {
	addrs := make([]string, 4)
	for i := range addrs {
		refuse := i == 0 // exactly one refusal: ≤ t, no fast path
		addrs[i], _, _ = startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
			if refuse {
				enc.EncodeResponse(wrongEpochReply(req, 3, types.Bottom))
				return
			}
			enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
		})
	}
	c := NewClient(types.WriterID(1), addrs)
	defer c.Close()

	// Needs all four acks; the refusal denies the fourth.
	spec := proto.RoundSpec{
		Label: "NEEDS-ALL",
		Req:   func(sid int) types.Message { return types.Message{Kind: types.MsgRead1} },
		Acc:   proto.AckAcc(4),
	}
	err := c.Round(spec)
	var we *WrongEpochError
	if !errors.As(err, &we) {
		t.Fatalf("round short by one refusal: err = %v, want *WrongEpochError", err)
	}
	if we.Epoch != 3 {
		t.Errorf("reported epoch = %d, want 3", we.Epoch)
	}
	// ≤ t refusals do not PROVE a newer configuration — the error must carry
	// the underlying denial as Cause, so a caller whose config refetch finds
	// nothing newer can degrade to the ordinary retry path instead of
	// hard-failing on a lone forged refusal.
	if we.Cause == nil {
		t.Fatal("minority redirect carries no Cause; refetch failure would hard-fail the operation")
	}
	if !errors.Is(we.Cause, ErrRoundTimeout) {
		t.Errorf("Cause = %v, want ErrRoundTimeout (all replies in, accumulator unsatisfied)", we.Cause)
	}
	// Cause must stay OUT of the Unwrap chain: the error still classifies
	// Reconfig (refetch first); the fallback to Cause is an explicit caller
	// decision, not an errors.Is match.
	if errors.Is(we, ErrRoundTimeout) || errors.Is(we, ErrConnLost) {
		t.Error("WrongEpochError unwraps to its Cause; classification must stay Reconfig")
	}
	// A satisfiable round must NOT be aborted by the lone refusal: quorum 1
	// is met by any correct object's ack.
	if err := c.Round(ackSpec("SATISFIABLE")); err != nil {
		t.Fatalf("satisfiable round despite one refusal: %v", err)
	}
}

// TestEpochStamping pins the stamping rule: data-plane rounds carry the
// mux's configuration epoch, config-plane rounds (the config register) carry
// the epoch-0 wildcard — the config must stay readable ACROSS an epoch
// change, or a stale client could never learn the new configuration.
func TestEpochStamping(t *testing.T) {
	var lastEpoch atomic.Uint64
	var lastReg atomic.Int64
	addr, _, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		lastEpoch.Store(req.Epoch)
		lastReg.Store(int64(req.Reg))
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{addr})
	defer m.Close()

	if err := m.Client(types.Reader(1), 0).Round(ackSpec("DATA")); err != nil {
		t.Fatal(err)
	}
	if got := lastEpoch.Load(); got != 1 {
		t.Errorf("data-plane stamp = %d, want bootstrap epoch 1", got)
	}
	if err := m.Client(types.Reader(1), config.Reg).Round(ackSpec("CONFIG")); err != nil {
		t.Fatal(err)
	}
	if lastReg.Load() != config.Reg {
		t.Fatalf("config round addressed reg %d, want %d", lastReg.Load(), config.Reg)
	}
	if got := lastEpoch.Load(); got != 0 {
		t.Errorf("config-plane stamp = %d, want wildcard 0", got)
	}

	if err := m.Reconfigure(5, []string{addr}); err != nil {
		t.Fatal(err)
	}
	if err := m.Client(types.Reader(1), 0).Round(ackSpec("DATA2")); err != nil {
		t.Fatal(err)
	}
	if got := lastEpoch.Load(); got != 5 {
		t.Errorf("post-reconfigure stamp = %d, want 5", got)
	}
}

// TestReconfigureSwapsSlotAndClearsDialState pins the reconfiguration
// contract: swapping a slot's address tears down the old connection (its
// in-flight rounds fail with ErrConnLost, its replies never count for the
// slot again) and clears the slot's dial state — a departed daemon's
// backoff latch must not delay the first dial of its replacement.
func TestReconfigureSwapsSlotAndClearsDialState(t *testing.T) {
	oldAddr, oldAccepts, stopOld := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		// Withhold replies: rounds against the old daemon stay in flight.
	})
	newAddr, newAccepts, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{oldAddr})
	defer m.Close()
	c := m.Client(types.Reader(1), 0)
	c.RoundTimeout = 10 * time.Second

	errCh := make(chan error, 1)
	go func() { errCh <- c.Round(ackSpec("INFLIGHT")) }()
	deadline := time.Now().Add(5 * time.Second)
	for m.pendingWaiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("round never registered its waiter")
		}
		time.Sleep(time.Millisecond)
	}

	// Kill the old daemon and immediately reconfigure away from it — the
	// replace flow under test. The dead address would normally latch a 1s
	// dial backoff; the reconfigure must clear it so the new address is
	// dialed synchronously on the next round.
	stopOld()
	if err := m.Reconfigure(2, []string{newAddr}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrConnLost) {
			t.Fatalf("in-flight round across reconfigure: err = %v, want ErrConnLost", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("in-flight round did not observe the reconfigure")
	}

	start := time.Now()
	if err := c.Round(ackSpec("AFTER")); err != nil {
		t.Fatalf("first round on the new address: %v", err)
	}
	if d := time.Since(start); d > DialBackoff/2 {
		t.Errorf("first post-reconfigure round took %v — the departed address's backoff leaked", d)
	}
	if got := newAccepts.Load(); got != 1 {
		t.Errorf("new daemon saw %d connections, want 1", got)
	}

	// The departed address must see no further dials: wait past the backoff
	// window and run more rounds — an eternal redial loop would reconnect.
	old := oldAccepts.Load()
	time.Sleep(DialBackoff + 100*time.Millisecond)
	if err := c.Round(ackSpec("LATER")); err != nil {
		t.Fatal(err)
	}
	if got := oldAccepts.Load(); got != old {
		t.Errorf("departed address dialed again after reconfigure (%d → %d accepts)", old, got)
	}
	if n := m.pendingWaiters(); n != 0 {
		t.Fatalf("%d pending waiters after quiescence, want 0", n)
	}
}

// TestReconfigurePreservesInflightDial pins the fix for the reconfigure/
// dial race: Reconfigure swapping a slot while a synchronous dial is in
// flight must NOT zero the slot's dial marker. Doing so would (a) let a
// second round start a concurrent dial for the slot and (b) leave the
// first dialer to close a nil — or a foreign — syncDone channel, panicking
// every round sharing the mux. The marker belongs to the in-flight dialer
// until IT clears it; Reconfigure resets only the backoff latch.
func TestReconfigurePreservesInflightDial(t *testing.T) {
	addrA, _, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {})
	addrB, _, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{addrA})
	defer m.Close()

	// Plant the state connOrWait holds while its synchronous dial to addrA
	// is blocked inside net.DialTimeout (m.mu released): inflight with a
	// live syncDone, plus a stale backoff latch on the slot.
	done := make(chan struct{})
	m.mu.Lock()
	m.dials[0] = dialState{failedAt: time.Now(), inflight: true, syncDone: done}
	m.mu.Unlock()

	if err := m.Reconfigure(2, []string{addrB}); err != nil {
		t.Fatal(err)
	}

	m.mu.Lock()
	ds := m.dials[0]
	m.mu.Unlock()
	if !ds.inflight || ds.syncDone != done {
		t.Fatalf("reconfigure clobbered the in-flight dial marker (inflight=%v, syncDone preserved=%v): "+
			"the dialer would close a nil/foreign channel", ds.inflight, ds.syncDone == done)
	}
	if !ds.failedAt.IsZero() {
		t.Error("reconfigure kept the departed address's backoff latch")
	}

	// The dialer completes: it finds its own marker intact, clears it, and
	// installLocked's stale-address guard discards the outcome (addrA is no
	// longer slot 1's address). Replay exactly connOrWait's completion step.
	m.mu.Lock()
	if m.dials[0].syncDone == done {
		m.dials[0].inflight = false
		m.dials[0].syncDone = nil
	}
	_, installErr := m.installLocked(1, addrA, nil, errors.New("dial tcp: i/o timeout"))
	m.mu.Unlock()
	close(done)
	if installErr == nil {
		t.Fatal("stale dial outcome installed, want discarded")
	}
	m.mu.Lock()
	stale := !m.dials[0].failedAt.IsZero()
	m.mu.Unlock()
	if stale {
		t.Error("stale dial's failure latched a backoff onto the NEW address")
	}

	// The slot is clean: the next round dials the new address synchronously.
	if err := m.Client(types.Reader(1), 0).Round(ackSpec("AFTER-RACE")); err != nil {
		t.Fatalf("round after the settled race: %v", err)
	}
}

// TestWrongEpochNegativeSeqIgnored pins the hostile-input clamp: the
// refusal's epoch rides in Pair.TS.Seq, a Byzantine-controlled int64. A
// negative value converted blindly to uint64 would report an astronomical
// epoch that no genuine configuration can ever reach, permanently
// defeating the refetcher's already-adopted short-circuit. Negative Seqs
// must not contribute to the reported epoch.
func TestWrongEpochNegativeSeqIgnored(t *testing.T) {
	hint := config.Config{Epoch: 3, Addrs: []string{"a:1", "b:2", "c:3", "d:4"}}.Encode()
	addrs := make([]string, 4)
	for i := range addrs {
		negative := i%2 == 0 // two forged refusals, two genuine epoch-3 ones
		addrs[i], _, _ = startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
			if negative {
				enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{
					Kind: types.MsgWrongEpoch,
					Pair: types.Pair{TS: types.TS{Seq: -5}, Val: types.Bottom},
					Seq:  req.Msg.Seq,
				}})
				return
			}
			enc.EncodeResponse(wrongEpochReply(req, 3, hint))
		})
	}
	c := NewClient(types.Reader(1), addrs)
	defer c.Close()

	err := c.Round(ackSpec("FORGED"))
	var we *WrongEpochError
	if !errors.As(err, &we) {
		t.Fatalf("refused round: err = %v, want *WrongEpochError", err)
	}
	if we.Epoch != 3 {
		t.Errorf("reported epoch = %d, want 3 (negative Seq must be ignored)", we.Epoch)
	}
}

// TestReconfigureVacantSlotSkipped pins vacancy semantics: a slot the
// configuration leaves vacant is skipped instantly (no dial, no backoff
// stall) and simply counts as faulty; quorums over the remaining slots
// still complete.
func TestReconfigureVacantSlotSkipped(t *testing.T) {
	addr, _, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	dead, _, stopDead := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {})
	stopDead()
	m := NewMux([]string{addr, dead})
	defer m.Close()
	c := m.Client(types.Reader(1), 0)

	if err := m.Reconfigure(2, []string{addr, ""}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Round(ackSpec("VACANT")); err != nil {
		t.Fatalf("round with one vacant slot: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("round took %v — the vacant slot must be skipped, not dialed", d)
	}
}

// TestReconfigureStaleAndMalformed pins the guard rails: an epoch not newer
// than the mux's is a no-op (racing refetches converge on the newest
// configuration), and a slot-count mismatch is refused (S is fixed).
func TestReconfigureStaleAndMalformed(t *testing.T) {
	addr, _, _ := startRawServer(t, func(req wire.Request, enc *wire.Encoder) {
		enc.EncodeResponse(wire.Response{ID: req.ID, Msg: types.Message{Kind: types.MsgAck}})
	})
	m := NewMux([]string{addr})
	defer m.Close()

	if err := m.Reconfigure(3, []string{addr}); err != nil {
		t.Fatal(err)
	}
	if err := m.Reconfigure(2, []string{"gone:1"}); err != nil {
		t.Fatalf("stale reconfigure: %v, want nil no-op", err)
	}
	if got := m.Epoch(); got != 3 {
		t.Errorf("epoch after stale reconfigure = %d, want 3", got)
	}
	if got := m.Addrs()[0]; got != addr {
		t.Errorf("address after stale reconfigure = %q, want unchanged", got)
	}
	if err := m.Reconfigure(4, []string{addr, "extra:1"}); err == nil {
		t.Error("slot-count mismatch accepted, want error (S is fixed)")
	}
}
