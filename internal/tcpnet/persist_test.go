package tcpnet

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"robustatomic/internal/checker"
	"robustatomic/internal/core"
	"robustatomic/internal/persist"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// restartServer rebinds a daemon on its old address (the OS may hold the
// port briefly after Close).
func restartServer(t *testing.T, id int, addr string, opts ServerOptions) *Server {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s, err := NewServerWith(id, addr, opts)
		if err == nil {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// forceRedial expires a client's dial backoff for object sid and waits for
// the background redial to adopt the recovered connection.
func forceRedial(t *testing.T, c *Client, sid int) {
	t.Helper()
	m := c.mux
	m.mu.Lock()
	m.dials[sid-1].failedAt = time.Now().Add(-2 * DialBackoff)
	m.mu.Unlock()
	deadline := time.Now().Add(5 * time.Second)
	for {
		mc, err := m.connFor(sid)
		if err == nil && mc != nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("background dial never adopted the restarted daemon")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRestartRecoversStateMidBurst is the durability acceptance scenario at
// the tcpnet layer: a daemon is killed in the middle of a write burst and
// restarted on the same address with the same data dir. The test verifies
// (a) the background-redial client reconnects, (b) the daemon's recovered
// register state exactly matches its pre-crash state (no amnesia), and
// (c) the checker accepts the full history — including the phase where the
// recovered daemon is one of only two honest live objects, which a blank
// restart could not serve.
func TestRestartRecoversStateMidBurst(t *testing.T) {
	thr, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	var servers []*Server
	var addrs []string
	var opts []ServerOptions
	for i := 1; i <= 4; i++ {
		o := ServerOptions{DataDir: filepath.Join(base, fmt.Sprintf("s%d", i)), Fsync: persist.FsyncBatch}
		s, err := NewServerWith(i, "127.0.0.1:0", o)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, s)
		addrs = append(addrs, s.Addr())
		opts = append(opts, o)
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	h := &checker.History{}
	wc := NewClient(types.Writer, addrs)
	defer wc.Close()
	w := core.NewWriter(wc, thr)
	write := func(i int) {
		t.Helper()
		v := types.Value(fmt.Sprintf("v%d", i))
		id := h.Invoke(types.Writer, checker.OpWrite, v)
		if err := w.Write(v); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		h.Respond(id, types.Bottom)
	}
	rc := NewClient(types.Reader(1), addrs)
	defer rc.Close()
	rd := core.NewReader(rc, thr, 1, 2)
	read := func(want string) {
		t.Helper()
		id := h.Invoke(types.Reader(1), checker.OpRead, types.Bottom)
		v, err := rd.Read()
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		h.Respond(id, v)
		if want != "" && string(v) != want {
			t.Fatalf("read = %q, want %q", v, want)
		}
	}

	for i := 1; i <= 5; i++ {
		write(i)
	}
	read("")

	// Snapshot s4's raw state, then kill it mid-burst.
	prePW, preW, err := Probe(addrs[3], 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if preW.IsBottom() {
		t.Fatal("s4 holds no state before the kill — test is vacuous")
	}
	servers[3].Close()

	// The burst continues: 3 live objects are exactly S-t.
	for i := 6; i <= 10; i++ {
		write(i)
	}
	read("")

	// Restart on the same address with the same data dir.
	servers[3] = restartServer(t, 4, addrs[3], opts[3])

	// (b) No amnesia: the recovered state equals the pre-crash state.
	postPW, postW, err := Probe(addrs[3], 0, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if postPW != prePW || postW != preW {
		t.Fatalf("recovered state (pw %v, w %v) != pre-crash (pw %v, w %v)", postPW, postW, prePW, preW)
	}

	// (a) The PR 2 background-redial path adopts the restarted daemon.
	forceRedial(t, wc, 4)
	forceRedial(t, rc, 4)

	// s1 turns stale (frozen at the current level), then more writes catch
	// the recovered daemon up to the head of the register.
	servers[0].SetBehavior(&server.Stale{})
	for i := 11; i <= 15; i++ {
		write(i)
	}
	// One full-cluster read catches the recovered daemon's write-back
	// register up too (its write-back round precedes the next read on the
	// same ordered connection), so the degraded quorum below can certify
	// every register instance.
	read("v15")

	// (c) Force reads to depend on the recovered daemon: with s3 down and
	// s1 stale below the head, certifying the latest write needs both s2
	// and s4 — a blank (amnesiac) s4 could not have rejoined this quorum,
	// and the decision procedure would refuse to answer.
	servers[2].Close()
	read("v15")

	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
}

// TestServerPersistedAcrossManyInstances verifies the multi-register path:
// instances touched before a restart recover, instances never touched stay
// absent, and compaction mid-run loses nothing.
func TestServerPersistedAcrossManyInstances(t *testing.T) {
	dir := t.TempDir()
	o := ServerOptions{DataDir: dir, Fsync: persist.FsyncOff}
	s, err := NewServerWith(1, "127.0.0.1:0", o)
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	for reg := 0; reg < 6; reg++ {
		if err := Seed(addr, reg, types.Pair{TS: types.At(int64(reg + 1)), Val: types.Value(fmt.Sprintf("reg%d", reg))}, time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction mutations land in the fresh WAL generation.
	if err := Seed(addr, 2, types.Pair{TS: types.At(9), Val: "after-compact"}, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := s.Registers(); got != 6 {
		t.Fatalf("hosting %d instances, want 6", got)
	}
	s.Close()

	s2 := restartServer(t, 1, addr, o)
	defer s2.Close()
	if got := s2.Registers(); got != 6 {
		t.Fatalf("recovered %d instances, want 6", got)
	}
	for reg := 0; reg < 6; reg++ {
		_, w, err := Probe(addr, reg, time.Second)
		if err != nil {
			t.Fatal(err)
		}
		want := types.Pair{TS: types.At(int64(reg + 1)), Val: types.Value(fmt.Sprintf("reg%d", reg))}
		if reg == 2 {
			want = types.Pair{TS: types.At(9), Val: "after-compact"}
		}
		if w != want {
			t.Errorf("instance %d: W = %v, want %v", reg, w, want)
		}
	}
}
