package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"robustatomic/internal/types"
)

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	req := Request{
		From: types.Reader(3),
		Reg:  5,
		Msg: types.Message{
			Kind: types.MsgMux,
			Seq:  7,
			Sub: []types.SubMsg{
				{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgRead1}},
				{Reg: types.ReaderReg(1), Msg: types.Message{Kind: types.MsgWrite, Pair: types.Pair{TS: types.TS{Seq: 4, WID: 2}, Val: "x"}, Token: 99}},
			},
		},
	}
	if err := enc.Encode(req); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).DecodeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(req, got) {
		t.Fatalf("round trip:\n%+v\n%+v", req, got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	rsp := Response{
		Server: 2,
		Msg:    types.Message{Kind: types.MsgState, PW: types.Pair{TS: types.At(1), Val: "a"}, W: types.BottomPair, Seq: 3},
	}
	if err := NewEncoder(&buf).Encode(rsp); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).DecodeResponse()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rsp, got) {
		t.Fatalf("round trip:\n%+v\n%+v", rsp, got)
	}
}

// TestRegisterRoutingDefault pins backward compatibility: a request encoded
// without a register field (an old single-register client) decodes as
// addressing register instance 0.
func TestRegisterRoutingDefault(t *testing.T) {
	var buf bytes.Buffer
	if err := NewEncoder(&buf).Encode(struct {
		From types.ProcID
		Msg  types.Message
	}{From: types.Writer, Msg: types.Message{Kind: types.MsgWrite}}); err != nil {
		t.Fatal(err)
	}
	got, err := NewDecoder(&buf).DecodeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if got.Reg != 0 {
		t.Fatalf("legacy request routed to register %d, want 0", got.Reg)
	}
}

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 1; i <= 5; i++ {
		if err := enc.Encode(Request{From: types.Writer, Msg: types.Message{Kind: types.MsgWrite, Seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 1; i <= 5; i++ {
		req, err := dec.DecodeRequest()
		if err != nil {
			t.Fatal(err)
		}
		if req.Msg.Seq != i {
			t.Fatalf("seq %d, want %d", req.Msg.Seq, i)
		}
	}
	if _, err := dec.DecodeRequest(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte("this is not gob")))
	if _, err := dec.DecodeRequest(); err == nil || err == io.EOF {
		t.Fatal("garbage accepted")
	}
}

func TestPairWireProperty(t *testing.T) {
	f := func(seqNo, wid int64, val string, tok uint64, seq int) bool {
		var buf bytes.Buffer
		in := Response{Server: 1, Msg: types.Message{
			Kind: types.MsgState, W: types.Pair{TS: types.TS{Seq: seqNo, WID: wid}, Val: types.Value(val)},
			Token: types.Token(tok), Seq: seq,
		}}
		if err := NewEncoder(&buf).Encode(in); err != nil {
			return false
		}
		out, err := NewDecoder(&buf).DecodeResponse()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
