package wire

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"testing/quick"

	"robustatomic/internal/types"
)

func TestStreamOfMessages(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	for i := 1; i <= 5; i++ {
		if err := enc.EncodeRequest(Request{From: types.Writer, Msg: types.Message{Kind: types.MsgWrite, Seq: i}}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewDecoder(&buf)
	for i := 1; i <= 5; i++ {
		req, err := dec.DecodeRequest()
		if err != nil {
			t.Fatal(err)
		}
		if req.Msg.Seq != i {
			t.Fatalf("seq %d, want %d", req.Msg.Seq, i)
		}
	}
	if _, err := dec.DecodeRequest(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	dec := NewDecoder(bytes.NewReader([]byte("this is not a wire frame")))
	if _, err := dec.DecodeRequest(); err == nil || err == io.EOF {
		t.Fatal("garbage accepted")
	}
}

func TestPairWireProperty(t *testing.T) {
	f := func(seqNo, wid int64, val string, tok uint64, seq int) bool {
		var buf bytes.Buffer
		in := Response{Server: 1, Msg: types.Message{
			Kind: types.MsgState, W: types.Pair{TS: types.TS{Seq: seqNo, WID: wid}, Val: types.Value(val)},
			Token: types.Token(tok), Seq: seq,
		}}
		if err := NewEncoder(&buf).EncodeResponse(in); err != nil {
			return false
		}
		out, err := NewDecoder(&buf).DecodeResponse()
		if err != nil {
			return false
		}
		return reflect.DeepEqual(in, out)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGobCodecRoundTrip covers the persisted WAL codec, which deliberately
// stays on gob (see wire.go's versioning comment): the Engine's generations
// must keep round-tripping byte-compatibly.
func TestGobCodecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewGobEncoder(&buf)
	reqs := []Request{
		{From: types.Writer, Reg: 0, Msg: types.Message{Kind: types.MsgPreWrite, Pair: types.Pair{TS: types.TS{Seq: 1, WID: 2}, Val: "v"}}},
		{From: types.Reader(2), Reg: 3, Msg: types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
			{Reg: types.ReaderReg(1), Msg: types.Message{Kind: types.MsgWriteBack, Pair: types.Pair{TS: types.At(4), Val: "wb"}}},
		}}},
	}
	for _, r := range reqs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewGobDecoder(&buf)
	for i, want := range reqs {
		got, err := dec.DecodeRequest()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("gob round trip %d:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := dec.DecodeRequest(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
