package wire

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"

	"robustatomic/internal/types"
)

func sampleMessages() []types.Message {
	return []types.Message{
		{Kind: types.MsgRead1},
		{Kind: types.MsgAck, Seq: 42},
		{Kind: types.MsgPreWrite, Seq: 7, Pair: types.Pair{TS: types.TS{Seq: 3, WID: 2}, Val: "hello"}},
		{Kind: types.MsgWrite, Pair: types.Pair{TS: types.At(1), Val: ""}, Token: 0xdeadbeef, TokenPW: 1},
		{Kind: types.MsgState,
			PW: types.Pair{TS: types.TS{Seq: 9, WID: 1}, Val: "pw-val"},
			W:  types.Pair{TS: types.TS{Seq: 8, WID: 3}, Val: types.Value(strings.Repeat("x", 300))}},
		{Kind: types.MsgAck, PW: types.Pair{TS: types.TS{Seq: 5, WID: 4}}, W: types.Pair{TS: types.At(5)}},
		{Kind: types.MsgMux, Seq: 3, Sub: []types.SubMsg{
			{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgRead1, Seq: 3}},
			{Reg: types.ReaderReg(2), Msg: types.Message{
				Kind: types.MsgWriteBack,
				Pair: types.Pair{TS: types.At(11), Val: "wb"},
			}},
		}},
		// Negative and extreme integers must survive the signed varints.
		{Kind: types.MsgState, PW: types.Pair{TS: types.TS{Seq: 1<<62 + 3, WID: -5}, Val: "v"}},
	}
}

func TestRequestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	var want []Request
	for i, m := range sampleMessages() {
		req := Request{ID: uint64(i)*977 + 1, From: types.Reader(i + 1), Reg: i * 3, Msg: m}
		if i%2 == 0 {
			req.From = types.WriterID(i)
			// The gen-4 epoch stamp must survive, including large epochs;
			// odd-indexed requests keep the epoch-0 wildcard.
			req.Epoch = uint64(i)<<40 + 7
		}
		want = append(want, req)
		if err := enc.EncodeRequest(req); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.DecodeRequest()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("request %d round trip:\n got %#v\nwant %#v", i, got, w)
		}
	}
	if _, err := dec.DecodeRequest(); err != io.EOF {
		t.Errorf("after stream end: %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	var want []Response
	for i, m := range sampleMessages() {
		rsp := Response{ID: uint64(i) << 33, Server: i + 1, Msg: m}
		want = append(want, rsp)
		if err := enc.EncodeResponse(rsp); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i, w := range want {
		got, err := dec.DecodeResponse()
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, w) {
			t.Errorf("response %d round trip:\n got %#v\nwant %#v", i, got, w)
		}
	}
}

// sampleBatches builds batch envelopes of varied widths from the sample
// messages: sub-requests for distinct register instances sharing one frame.
func sampleBatches() [][]SubReq {
	msgs := sampleMessages()
	var batches [][]SubReq
	for width := 1; width <= len(msgs); width += 3 {
		var subs []SubReq
		for i := 0; i < width; i++ {
			subs = append(subs, SubReq{Reg: i + 1, Msg: msgs[i]})
		}
		batches = append(batches, subs)
	}
	return batches
}

func TestBatchRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	var wantReq []Request
	var wantRsp []Response
	for i, subs := range sampleBatches() {
		req := Request{ID: uint64(i + 1), From: types.WriterID(i + 1), Subs: subs}
		rsp := Response{ID: uint64(i + 1), Server: i + 1, Subs: subs}
		wantReq = append(wantReq, req)
		wantRsp = append(wantRsp, rsp)
		if err := enc.EncodeRequest(req); err != nil {
			t.Fatalf("encode request %d: %v", i, err)
		}
		if err := enc.EncodeResponse(rsp); err != nil {
			t.Fatalf("encode response %d: %v", i, err)
		}
	}
	dec := NewDecoder(&buf)
	for i := range wantReq {
		gotReq, err := dec.DecodeRequest()
		if err != nil {
			t.Fatalf("decode request %d: %v", i, err)
		}
		if !reflect.DeepEqual(gotReq, wantReq[i]) {
			t.Errorf("batch request %d round trip:\n got %#v\nwant %#v", i, gotReq, wantReq[i])
		}
		gotRsp, err := dec.DecodeResponse()
		if err != nil {
			t.Fatalf("decode response %d: %v", i, err)
		}
		if !reflect.DeepEqual(gotRsp, wantRsp[i]) {
			t.Errorf("batch response %d round trip:\n got %#v\nwant %#v", i, gotRsp, wantRsp[i])
		}
	}
}

func TestDecodedValuesDoNotAliasDecoderBuffer(t *testing.T) {
	// The decoder reuses its payload buffer across frames; decoded pair
	// values must be copies, or the next frame would corrupt retained
	// register state.
	var buf bytes.Buffer
	enc := NewEncoder(&buf)
	first := Request{From: types.Writer, Msg: types.Message{
		Kind: types.MsgWrite, Pair: types.Pair{TS: types.At(1), Val: "first-value"}}}
	second := Request{From: types.Writer, Msg: types.Message{
		Kind: types.MsgWrite, Pair: types.Pair{TS: types.At(2), Val: "SECOND-VALUE-XXXX"}}}
	if err := enc.EncodeRequest(first); err != nil {
		t.Fatal(err)
	}
	if err := enc.EncodeRequest(second); err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder(&buf)
	got1, err := dec.DecodeRequest()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.DecodeRequest(); err != nil {
		t.Fatal(err)
	}
	if got1.Msg.Pair.Val != "first-value" {
		t.Errorf("first value corrupted by later frame: %q", got1.Msg.Pair.Val)
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	// A gob stream (wire generation 1) begins with a gob length byte that
	// is not the binary generation's header — the lockstep-upgrade error
	// must surface on the first message.
	var buf bytes.Buffer
	if err := NewGobEncoder(&buf).Encode(Request{From: types.Writer, Msg: types.Message{Kind: types.MsgRead1}}); err != nil {
		t.Fatal(err)
	}
	_, err := NewDecoder(&buf).DecodeRequest()
	if err == nil {
		t.Fatal("gob frame accepted by binary decoder")
	}
	if !strings.Contains(err.Error(), "generation") {
		t.Errorf("version mismatch error unclear: %v", err)
	}
}

func TestDecodeRejectsMalformedFrames(t *testing.T) {
	// Payload prefix: [uvarint ID] [varint From.Kind] [varint From.Idx]
	// [tag]; the bytes 0, 2, 0 below are ID 0, kind 1, idx 0.
	cases := map[string][]byte{
		"empty payload":         {wireVersion, 0},
		"truncated payload":     {wireVersion, 10, 1, 2},
		"oversized frame":       {wireVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"bad version":           {0x7f, 1, 0},
		"missing frame tag":     append([]byte{wireVersion, 3}, 0, 2, 0),
		"unknown frame tag":     append([]byte{wireVersion, 4}, 0, 2, 0, 0x7f),
		"forged value length":   append([]byte{wireVersion, 10}, 0, 2, 0, tagSingle, 2, 2, 0, 1 /*mask pair*/, 2, 2), // pair claims bytes it doesn't have
		"forged sub count":      append([]byte{wireVersion, 10}, 0, 2, 0, tagSingle, 2, 22, 0, 16 /*mask sub*/, 0xff, 0x7f),
		"trailing bytes":        append([]byte{wireVersion, 10}, 0, 2, 0, tagSingle, 2, 2, 0, 0, 9, 9),
		"missing mask":          append([]byte{wireVersion, 7}, 0, 2, 0, tagSingle, 2, 2, 0),
		"zero batch count":      append([]byte{wireVersion, 5}, 0, 2, 0, tagBatch, 0),
		"forged batch count":    append([]byte{wireVersion, 7}, 0, 2, 0, tagBatch, 0xff, 0xff, 0x7f),
		"truncated batch entry": append([]byte{wireVersion, 7}, 0, 2, 0, tagBatch, 1, 2, 2),
		"truncated frame start": {wireVersion},
	}
	for name, raw := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := NewDecoder(bytes.NewReader(raw)).DecodeRequest(); err == nil {
				t.Errorf("malformed frame %q accepted", name)
			}
		})
	}
}

func TestDeepNestingRejected(t *testing.T) {
	// Hand-build a frame whose message nests Sub beyond maxSubDepth: the
	// decoder must reject it rather than recurse unboundedly.
	msg := []byte{2, 0, 0} // kind, seq, empty mask
	for i := 0; i < maxSubDepth+2; i++ {
		inner := msg
		msg = append([]byte{22, 0, 16 /*mask sub*/, 1 /*count*/, 2, 0}, inner...)
	}
	payload := append([]byte{0, 2, 0, tagSingle, 0}, msg...) // id, from kind, idx, tag, reg
	frame := append([]byte{wireVersion, byte(len(payload))}, payload...)
	if _, err := NewDecoder(bytes.NewReader(frame)).DecodeRequest(); err == nil {
		t.Fatal("over-deep nesting accepted")
	}
}

// FuzzWireRequest: the binary decoder must never panic, and every frame it
// accepts must re-encode and re-decode to the same request.
func FuzzWireRequest(f *testing.F) {
	var seedBuf bytes.Buffer
	enc := NewEncoder(&seedBuf)
	for i, m := range sampleMessages() {
		seedBuf.Reset()
		if err := enc.EncodeRequest(Request{From: types.Reader(i + 1), Reg: i, Msg: m}); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), seedBuf.Bytes()...))
	}
	f.Add([]byte{wireVersion, 0x05, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := NewDecoder(bytes.NewReader(data)).DecodeRequest()
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := NewEncoder(&buf).EncodeRequest(req); err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := NewDecoder(&buf).DecodeRequest()
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip diverged:\n got %#v\nwant %#v", again, req)
		}
	})
}

// FuzzWireBatch hammers the batch frame path: a stream of frames (so seeds
// can carry duplicate request IDs across frames), malformed sub-bundle
// counts and truncated tags must yield errors, never panics, and every
// accepted envelope must round-trip.
func FuzzWireBatch(f *testing.F) {
	var seedBuf bytes.Buffer
	enc := NewEncoder(&seedBuf)
	for i, subs := range sampleBatches() {
		seedBuf.Reset()
		if err := enc.EncodeRequest(Request{ID: uint64(i + 9), From: types.WriterID(1), Subs: subs}); err != nil {
			f.Fatal(err)
		}
		// Two copies of the frame in one stream: duplicate request IDs are a
		// demux-layer concern, the codec must decode both identically.
		f.Add(append(append([]byte(nil), seedBuf.Bytes()...), seedBuf.Bytes()...))
		seedBuf.Reset()
		if err := enc.EncodeResponse(Response{ID: uint64(i + 9), Server: 2, Subs: subs}); err != nil {
			f.Fatal(err)
		}
		f.Add(append([]byte(nil), seedBuf.Bytes()...))
	}
	// Truncated tag, forged batch count, zero count.
	f.Add([]byte{wireVersion, 3, 0, 2, 0})
	f.Add([]byte{wireVersion, 7, 0, 2, 0, tagBatch, 0xff, 0xff, 0x7f})
	f.Add([]byte{wireVersion, 5, 0, 2, 0, tagBatch, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewDecoder(bytes.NewReader(data))
		for {
			req, err := dec.DecodeRequest()
			if err != nil {
				return
			}
			var buf bytes.Buffer
			if err := NewEncoder(&buf).EncodeRequest(req); err != nil {
				t.Fatalf("accepted request does not re-encode: %v", err)
			}
			again, err := NewDecoder(&buf).DecodeRequest()
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !reflect.DeepEqual(req, again) {
				t.Fatalf("round trip diverged:\n got %#v\nwant %#v", again, req)
			}
		}
	})
}

// BenchmarkWireCodec contrasts the binary live codec against the gob
// streams it replaced, on the two message shapes that dominate the hot
// path: the small state reply of a read round and a table-carrying write.
func BenchmarkWireCodec(b *testing.B) {
	small := Response{Server: 3, Msg: types.Message{
		Kind: types.MsgState, Seq: 12,
		PW: types.Pair{TS: types.TS{Seq: 41, WID: 2}, Val: "pw"},
		W:  types.Pair{TS: types.TS{Seq: 40, WID: 2}, Val: "w"},
	}}
	large := Request{From: types.WriterID(2), Reg: 5, Msg: types.Message{
		Kind: types.MsgPreWrite, Seq: 9,
		Pair: types.Pair{TS: types.TS{Seq: 100, WID: 2}, Val: types.Value(strings.Repeat("k", 4096))},
	}}
	b.Run("binary/state-reply", func(b *testing.B) {
		benchBinary(b, func(e *Encoder) error { return e.EncodeResponse(small) },
			func(d *Decoder) error { _, err := d.DecodeResponse(); return err })
	})
	b.Run("binary/table-write", func(b *testing.B) {
		benchBinary(b, func(e *Encoder) error { return e.EncodeRequest(large) },
			func(d *Decoder) error { _, err := d.DecodeRequest(); return err })
	})
	b.Run("gob/state-reply", func(b *testing.B) {
		benchGob(b, small, func(d *GobDecoder) error { _, err := d.DecodeResponse(); return err })
	})
	b.Run("gob/table-write", func(b *testing.B) {
		benchGob(b, large, func(d *GobDecoder) error { _, err := d.DecodeRequest(); return err })
	})
}

// loopBuffer is an in-memory pipe: everything written is available to read.
type loopBuffer struct{ bytes.Buffer }

func benchBinary(b *testing.B, enc func(*Encoder) error, dec func(*Decoder) error) {
	var lb loopBuffer
	e := NewEncoder(&lb)
	d := NewDecoder(&lb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := enc(e); err != nil {
			b.Fatal(err)
		}
		if err := dec(d); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGob(b *testing.B, v any, dec func(*GobDecoder) error) {
	var lb loopBuffer
	e := NewGobEncoder(&lb)
	d := NewGobDecoder(&lb)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Encode(v); err != nil {
			b.Fatal(err)
		}
		if err := dec(d); err != nil {
			b.Fatal(err)
		}
	}
}
