// The live binary codec (wire generation 4).
//
// Every envelope is one frame:
//
//	[0x04 version byte] [uvarint payload length] [payload]
//
// Request payload:
//
//	[uvarint ID] [varint From.Kind] [varint From.Idx] [uvarint Epoch]
//	[tag byte] body
//
// Response payload:
//
//	[uvarint ID] [varint Server] [tag byte] body
//
// ID is the client-chosen request tag (echoed by the response — the demux
// key that makes pipelining possible). The tag byte selects the body shape:
//
//	tagSingle (0x01): [varint Reg] [message]            (requests)
//	                  [message]                         (responses)
//	tagBatch  (0x02): [uvarint count] then per entry
//	                  [varint Reg] [message]            (both directions)
//
// Exactly one tag bit must be set and a batch must carry at least one
// entry; anything else is rejected (the encoder emits tagSingle whenever
// Subs is empty, so there is exactly one canonical encoding per envelope).
//
// Message: [varint Kind] [varint Seq] [mask byte], then — in mask-bit
// order — the fields the mask declares present:
//
//	bit 0: Pair    (pair)
//	bit 1: PW      (pair)
//	bit 2: W       (pair)
//	bit 3: tokens  ([uvarint Token] [uvarint TokenPW])
//	bit 4: Sub     ([uvarint count] then per entry
//	                [varint Reg.Class] [varint Reg.Idx] [message])
//
// pair: [varint TS.Seq] [varint TS.WID] [uvarint len(Val)] [Val bytes]
//
// Most protocol messages (acks, read queries) carry none of the optional
// fields, so they cost ~5 bytes of payload; the mask keeps them from paying
// for the pairs they don't carry. Signed fields use zigzag varints
// (binary.AppendVarint), lengths and tokens plain uvarints. The encoder
// builds each frame in a buffer owned by the Encoder and writes it with a
// single Write call; the decoder reads each payload into a buffer owned by
// the Decoder — both are reused across messages, so a long-lived connection
// allocates only the strings that must outlive the buffer. Neither is safe
// for concurrent use (transports already serialize per connection).
//
// The decoder is paranoid: it bounds the frame size, the nesting depth and
// every count against the remaining payload, and rejects trailing bytes —
// a malformed or hostile peer yields an error, never a panic or an
// unbounded allocation.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"robustatomic/internal/types"
)

// wireVersion is the live wire generation's frame header byte.
const wireVersion = 0x04

// Frame tag bytes: a frame carries either one register message or a batch
// of per-register sub-requests — never both, never neither.
const (
	tagSingle = 0x01
	tagBatch  = 0x02
)

// maxFrame bounds a frame's declared payload size (a forged length must not
// make the decoder allocate unboundedly).
const maxFrame = 64 << 20

// maxSubDepth bounds message nesting. The protocols nest exactly once (a
// MUX bundle of plain messages); one spare level is allowed for slack.
const maxSubDepth = 2

// ErrVersion reports a frame from a different wire generation — the peer
// must be upgraded in lockstep (see the package comment).
var ErrVersion = errors.New("wire: protocol generation mismatch (upgrade clients and daemons in lockstep)")

// Encoder writes binary frames to a stream. Not safe for concurrent use.
type Encoder struct {
	w       io.Writer
	payload []byte // reused payload build buffer
	frame   []byte // reused frame build buffer (header + payload)
}

// NewEncoder returns an Encoder on w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{w: w} }

// EncodeRequest writes one request envelope as a single frame.
func (e *Encoder) EncodeRequest(req Request) error {
	b := binary.AppendUvarint(e.payload[:0], req.ID)
	b = binary.AppendVarint(b, int64(req.From.Kind))
	b = binary.AppendVarint(b, int64(req.From.Idx))
	b = binary.AppendUvarint(b, req.Epoch)
	if len(req.Subs) > 0 {
		b = append(b, tagBatch)
		b = binary.AppendUvarint(b, uint64(len(req.Subs)))
		for i := range req.Subs {
			b = binary.AppendVarint(b, int64(req.Subs[i].Reg))
			b = appendMessage(b, &req.Subs[i].Msg, 0)
		}
	} else {
		b = append(b, tagSingle)
		b = binary.AppendVarint(b, int64(req.Reg))
		b = appendMessage(b, &req.Msg, 0)
	}
	e.payload = b
	return e.writeFrame()
}

// EncodeResponse writes one response envelope as a single frame.
func (e *Encoder) EncodeResponse(rsp Response) error {
	b := binary.AppendUvarint(e.payload[:0], rsp.ID)
	b = binary.AppendVarint(b, int64(rsp.Server))
	if len(rsp.Subs) > 0 {
		b = append(b, tagBatch)
		b = binary.AppendUvarint(b, uint64(len(rsp.Subs)))
		for i := range rsp.Subs {
			b = binary.AppendVarint(b, int64(rsp.Subs[i].Reg))
			b = appendMessage(b, &rsp.Subs[i].Msg, 0)
		}
	} else {
		b = append(b, tagSingle)
		b = appendMessage(b, &rsp.Msg, 0)
	}
	e.payload = b
	return e.writeFrame()
}

// writeFrame assembles [version][uvarint length][payload] in the reused
// frame buffer and writes it with a single Write call (both buffers are
// kept across messages, so a long-lived connection stops allocating once
// they reach the connection's peak message size).
func (e *Encoder) writeFrame() error {
	n := len(e.payload)
	if n > maxFrame {
		return fmt.Errorf("wire: encode: %d-byte payload exceeds frame bound", n)
	}
	f := append(e.frame[:0], wireVersion)
	f = binary.AppendUvarint(f, uint64(n))
	f = append(f, e.payload...)
	e.frame = f
	if _, err := e.w.Write(f); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// Decoder reads binary frames from a stream. Not safe for concurrent use.
type Decoder struct {
	r   *bufio.Reader
	buf []byte // reused payload buffer
}

// NewDecoder returns a Decoder on r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: bufio.NewReader(r)} }

// DecodeRequest reads one request.
func (d *Decoder) DecodeRequest() (Request, error) {
	payload, err := d.readFrame()
	if err != nil {
		return Request{}, err
	}
	var req Request
	var kind, idx int64
	if req.ID, payload, err = cutUvarint(payload); err == nil {
		if kind, payload, err = cutVarint(payload); err == nil {
			if idx, payload, err = cutVarint(payload); err == nil {
				req.Epoch, payload, err = cutUvarint(payload)
			}
		}
	}
	if err != nil {
		return Request{}, fmt.Errorf("wire: decode request: %w", err)
	}
	req.From = types.ProcID{Kind: types.ProcKind(kind), Idx: int(idx)}
	if len(payload) == 0 {
		return Request{}, fmt.Errorf("wire: decode request: truncated frame tag")
	}
	tag := payload[0]
	payload = payload[1:]
	switch tag {
	case tagSingle:
		var reg int64
		if reg, payload, err = cutVarint(payload); err != nil {
			return Request{}, fmt.Errorf("wire: decode request: %w", err)
		}
		req.Reg = int(reg)
		if req.Msg, payload, err = decodeMessage(payload, 0); err != nil {
			return Request{}, fmt.Errorf("wire: decode request: %w", err)
		}
	case tagBatch:
		if req.Subs, payload, err = cutBatch(payload); err != nil {
			return Request{}, fmt.Errorf("wire: decode request: %w", err)
		}
	default:
		return Request{}, fmt.Errorf("wire: decode request: unknown frame tag 0x%02x", tag)
	}
	if len(payload) != 0 {
		return Request{}, fmt.Errorf("wire: decode request: %d trailing bytes", len(payload))
	}
	return req, nil
}

// DecodeResponse reads one response.
func (d *Decoder) DecodeResponse() (Response, error) {
	payload, err := d.readFrame()
	if err != nil {
		return Response{}, err
	}
	var rsp Response
	var server int64
	if rsp.ID, payload, err = cutUvarint(payload); err == nil {
		server, payload, err = cutVarint(payload)
	}
	if err != nil {
		return Response{}, fmt.Errorf("wire: decode response: %w", err)
	}
	rsp.Server = int(server)
	if len(payload) == 0 {
		return Response{}, fmt.Errorf("wire: decode response: truncated frame tag")
	}
	tag := payload[0]
	payload = payload[1:]
	switch tag {
	case tagSingle:
		if rsp.Msg, payload, err = decodeMessage(payload, 0); err != nil {
			return Response{}, fmt.Errorf("wire: decode response: %w", err)
		}
	case tagBatch:
		if rsp.Subs, payload, err = cutBatch(payload); err != nil {
			return Response{}, fmt.Errorf("wire: decode response: %w", err)
		}
	default:
		return Response{}, fmt.Errorf("wire: decode response: unknown frame tag 0x%02x", tag)
	}
	if len(payload) != 0 {
		return Response{}, fmt.Errorf("wire: decode response: %d trailing bytes", len(payload))
	}
	return rsp, nil
}

// cutBatch cuts a batch body — [uvarint count]([varint Reg][message])* —
// off the front of b, returning the rest. The count is bounded against the
// remaining payload before anything is allocated, and the slice grows as
// entries actually parse (same forged-count defense as message bundles).
func cutBatch(b []byte) ([]SubReq, []byte, error) {
	n, b, err := cutUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n == 0 {
		// Canonical form: an empty batch is encoded as tagSingle, and a
		// fully-withheld batch response is simply not sent.
		return nil, nil, fmt.Errorf("empty batch")
	}
	// Each entry costs ≥ 4 bytes (reg varint + kind + seq + mask).
	if n > uint64(len(b)/4)+1 {
		return nil, nil, fmt.Errorf("batch count %d exceeds payload", n)
	}
	subs := make([]SubReq, 0, min(n, 64))
	for i := uint64(0); i < n; i++ {
		var sub SubReq
		var reg int64
		if reg, b, err = cutVarint(b); err != nil {
			return nil, nil, err
		}
		sub.Reg = int(reg)
		if sub.Msg, b, err = decodeMessage(b, 0); err != nil {
			return nil, nil, err
		}
		subs = append(subs, sub)
	}
	return subs, b, nil
}

// readFrame reads one frame header and its payload into the reused buffer.
// io.EOF is returned verbatim on a clean frame boundary (connection
// closed), as the transports' read loops expect.
func (d *Decoder) readFrame() ([]byte, error) {
	ver, err := d.r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: decode: %w", err)
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: got frame header 0x%02x, want 0x%02x", ErrVersion, ver, wireVersion)
	}
	n, err := binary.ReadUvarint(d.r)
	if err != nil {
		return nil, fmt.Errorf("wire: decode: frame length: %w", err)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("wire: decode: %d-byte frame exceeds bound", n)
	}
	if uint64(cap(d.buf)) < n {
		d.buf = make([]byte, n)
	}
	buf := d.buf[:n]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		return nil, fmt.Errorf("wire: decode: truncated frame: %w", err)
	}
	return buf, nil
}

// Message field-presence mask bits.
const (
	maskPair = 1 << iota
	maskPW
	maskW
	maskTokens
	maskSub
)

// appendMessage appends m's encoding to b.
func appendMessage(b []byte, m *types.Message, depth int) []byte {
	b = binary.AppendVarint(b, int64(m.Kind))
	b = binary.AppendVarint(b, int64(m.Seq))
	var mask byte
	if m.Pair != (types.Pair{}) {
		mask |= maskPair
	}
	if m.PW != (types.Pair{}) {
		mask |= maskPW
	}
	if m.W != (types.Pair{}) {
		mask |= maskW
	}
	if m.Token != 0 || m.TokenPW != 0 {
		mask |= maskTokens
	}
	if len(m.Sub) > 0 {
		mask |= maskSub
	}
	b = append(b, mask)
	if mask&maskPair != 0 {
		b = appendWirePair(b, m.Pair)
	}
	if mask&maskPW != 0 {
		b = appendWirePair(b, m.PW)
	}
	if mask&maskW != 0 {
		b = appendWirePair(b, m.W)
	}
	if mask&maskTokens != 0 {
		b = binary.AppendUvarint(b, uint64(m.Token))
		b = binary.AppendUvarint(b, uint64(m.TokenPW))
	}
	if mask&maskSub != 0 {
		b = binary.AppendUvarint(b, uint64(len(m.Sub)))
		for i := range m.Sub {
			b = binary.AppendVarint(b, int64(m.Sub[i].Reg.Class))
			b = binary.AppendVarint(b, int64(m.Sub[i].Reg.Idx))
			b = appendMessage(b, &m.Sub[i].Msg, depth+1)
		}
	}
	return b
}

func appendWirePair(b []byte, p types.Pair) []byte {
	b = binary.AppendVarint(b, p.TS.Seq)
	b = binary.AppendVarint(b, p.TS.WID)
	b = binary.AppendUvarint(b, uint64(len(p.Val)))
	return append(b, p.Val...)
}

// decodeMessage decodes one message off the front of b, returning the rest.
func decodeMessage(b []byte, depth int) (types.Message, []byte, error) {
	if depth > maxSubDepth {
		return types.Message{}, nil, fmt.Errorf("message nesting exceeds depth %d", maxSubDepth)
	}
	var m types.Message
	kind, b, err := cutVarint(b)
	if err != nil {
		return m, nil, err
	}
	seq, b, err := cutVarint(b)
	if err != nil {
		return m, nil, err
	}
	m.Kind = types.MsgKind(kind)
	m.Seq = int(seq)
	if len(b) == 0 {
		return m, nil, fmt.Errorf("truncated message mask")
	}
	mask := b[0]
	b = b[1:]
	if mask&maskPair != 0 {
		if m.Pair, b, err = cutWirePair(b); err != nil {
			return m, nil, err
		}
	}
	if mask&maskPW != 0 {
		if m.PW, b, err = cutWirePair(b); err != nil {
			return m, nil, err
		}
	}
	if mask&maskW != 0 {
		if m.W, b, err = cutWirePair(b); err != nil {
			return m, nil, err
		}
	}
	if mask&maskTokens != 0 {
		var tok, tokPW uint64
		if tok, b, err = cutUvarint(b); err != nil {
			return m, nil, err
		}
		if tokPW, b, err = cutUvarint(b); err != nil {
			return m, nil, err
		}
		m.Token, m.TokenPW = types.Token(tok), types.Token(tokPW)
	}
	if mask&maskSub != 0 {
		var n uint64
		if n, b, err = cutUvarint(b); err != nil {
			return m, nil, err
		}
		// Each sub-entry costs ≥ 5 bytes (two reg varints + kind + seq +
		// mask); a cheap bound against forged counts.
		if n > uint64(len(b)/5)+1 {
			return m, nil, fmt.Errorf("sub-message count %d exceeds payload", n)
		}
		if n == 0 {
			// Canonical form: an absent bundle is a nil slice (the encoder
			// never sets the mask bit for an empty one).
			return m, b, nil
		}
		// Grow the bundle as entries actually parse (capped initial
		// capacity): a sub-entry is ~21x larger decoded than its minimal
		// wire form, so pre-allocating from the declared count would let a
		// single maximal frame demand ~21x its own size in one allocation
		// before the first entry fails to parse.
		m.Sub = make([]types.SubMsg, 0, min(n, 64))
		for i := uint64(0); i < n; i++ {
			var sub types.SubMsg
			var class, idx int64
			if class, b, err = cutVarint(b); err != nil {
				return m, nil, err
			}
			if idx, b, err = cutVarint(b); err != nil {
				return m, nil, err
			}
			sub.Reg = types.RegID{Class: types.RegClass(class), Idx: int(idx)}
			if sub.Msg, b, err = decodeMessage(b, depth+1); err != nil {
				return m, nil, err
			}
			m.Sub = append(m.Sub, sub)
		}
	}
	return m, b, nil
}

// cutWirePair cuts one pair off the front of b. The value is copied out of
// the decoder's reused buffer — pairs outlive the frame (objects retain
// them in register state).
func cutWirePair(b []byte) (types.Pair, []byte, error) {
	seq, b, err := cutVarint(b)
	if err != nil {
		return types.Pair{}, nil, err
	}
	wid, b, err := cutVarint(b)
	if err != nil {
		return types.Pair{}, nil, err
	}
	n, b, err := cutUvarint(b)
	if err != nil {
		return types.Pair{}, nil, err
	}
	if n > uint64(len(b)) {
		return types.Pair{}, nil, fmt.Errorf("truncated pair value (%d declared, %d left)", n, len(b))
	}
	return types.Pair{TS: types.TS{Seq: seq, WID: wid}, Val: types.Value(b[:n])}, b[n:], nil
}

func cutVarint(b []byte) (int64, []byte, error) {
	v, w := binary.Varint(b)
	if w <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[w:], nil
}

func cutUvarint(b []byte) (uint64, []byte, error) {
	v, w := binary.Uvarint(b)
	if w <= 0 {
		return 0, nil, fmt.Errorf("truncated uvarint")
	}
	return v, b[w:], nil
}
