// Package wire defines the TCP wire format of the storage protocol: a
// request envelope carrying the client identity, the target register and
// the message, and a response envelope carrying the object's reply. One
// request yields at most one response (objects reply to a message before
// receiving any other, per the model); responses are matched to their
// requests by the client-chosen 64-bit request ID every frame carries, so
// any number of requests may be in flight on one connection and replies may
// complete out of order.
//
// The LIVE codec (Encoder/Decoder) is a hand-rolled length-prefixed binary
// format — generation 3, header byte 0x03: each frame is tagged with the
// request ID and either a single register message or a BATCH of per-register
// (Reg, Msg) sub-requests, so one frame can carry a whole wave of register
// rounds (the cross-shard group commit of the Store layer). The codec
// encodes into a pooled per-connection buffer and writes each envelope as
// one frame. See codec.go for the format.
//
// Versioning: the LIVE wire format is not negotiated — clients and daemons
// of one deployment must run the same protocol generation, upgraded in
// lockstep (daemons first is fine: requests fail with a version/decode
// error until both sides match, without corrupting state). Generation
// history: gen 1 was the gob stream of the original deployment, whose Pair
// carried a scalar timestamp until the multi-writer refactor changed it to
// the (Seq, WID) struct (a type change gob surfaces immediately); gen 2
// replaced gob with the binary codec — lock-step request/reply, replies
// matched by Message.Seq, one in-flight request per connection; gen 3
// tagged every frame with a 64-bit request ID and added the
// batch frame, which is what turned the transport from lock-step into a
// pipelined, multiplexed protocol; gen 4 (the current format) stamps every
// request with the client's configuration epoch (uvarint after From.Idx),
// the dynamic-reconfiguration redirect key — objects refuse requests from
// a superseded epoch with MsgWrongEpoch so clients refetch the membership
// and retry, and epoch 0 is the wildcard stamp config-plane rounds and
// operator tools use. A frame from any other generation is rejected by the
// version byte, so mixed deployments fail loudly on the
// first message. PERSISTED formats, in contrast, all have explicit legacy
// paths (WAL gob mirror types, snapshot version bytes, shard-table and
// write-back codecs): old data directories and old register contents replay
// and decode unchanged, so the lockstep constraint applies only to the
// sockets. To that end the WAL keeps writing gob (GobEncoder/GobDecoder
// below — byte-identical to the gen-1 stream apart from gob's own handling
// of since-added fields, so every existing data directory remains the
// current on-disk format and batch envelopes persist without a WAL format
// bump: gob simply omits absent fields and ignores unknown ones).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustatomic/internal/types"
)

// SubReq is one register instance's share of a batch frame: the register
// instance it addresses (request direction) or answers for (response
// direction), and the protocol message.
type SubReq struct {
	Reg int
	Msg types.Message
}

// Request is a client→object message. ID is the client-chosen request tag
// the object must echo in its response; the client's demultiplexer routes
// replies by it, so IDs must be unique among a connection's in-flight
// requests (the transports use a monotone per-client counter).
//
// A request addresses either ONE register instance (Reg/Msg — Reg selects
// the instance: one physical object hosts any number of independent atomic
// registers, the shards of the keyed Store layer; instance 0 is the default
// register of the original single-register deployment) or MANY (Subs — a
// batch of per-register sub-requests sharing one frame, each processed
// against its own instance, used by the cross-shard flush coalescing). When
// Subs is non-empty, Reg and Msg are ignored.
//
// Epoch stamps the sender's configuration epoch (internal/config). Objects
// refuse requests whose epoch is older than their active configuration's
// with a MsgWrongEpoch reply carrying the newer config; epoch 0 is the
// wildcard stamp (config-plane rounds, Direct operator connections) and is
// never refused. The WAL persists requests via gob, which omits absent
// fields and ignores unknown ones, so pre-epoch data directories replay
// unchanged with Epoch 0.
type Request struct {
	ID    uint64
	From  types.ProcID
	Epoch uint64
	Reg   int
	Msg   types.Message
	Subs  []SubReq
}

// Response is an object→client message. ID echoes the request's tag. A
// response to a single request carries Msg; a response to a batch carries
// Subs — one entry per sub-request the object chose to answer (a withheld
// sub-reply is simply absent, so a flaky object can drop individual
// sub-bundles), matched to the request's subs by Reg.
type Response struct {
	ID     uint64
	Server int
	Msg    types.Message
	Subs   []SubReq
}

// GobEncoder writes envelopes to a gob stream — the PERSISTED codec: WAL
// generations are gob streams (one per generation), and recovery's legacy
// probing is built around gob's properties, so the on-disk format stays gob
// even though the live sockets moved to the binary codec.
type GobEncoder struct{ enc *gob.Encoder }

// NewGobEncoder returns a GobEncoder on w.
func NewGobEncoder(w io.Writer) *GobEncoder { return &GobEncoder{enc: gob.NewEncoder(w)} }

// Encode writes one envelope.
func (e *GobEncoder) Encode(v any) error {
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// GobDecoder reads envelopes from a gob stream (see GobEncoder).
type GobDecoder struct{ dec *gob.Decoder }

// NewGobDecoder returns a GobDecoder on r.
func NewGobDecoder(r io.Reader) *GobDecoder { return &GobDecoder{dec: gob.NewDecoder(r)} }

// DecodeRequest reads one request.
func (d *GobDecoder) DecodeRequest() (Request, error) {
	var req Request
	if err := d.dec.Decode(&req); err != nil {
		if err == io.EOF {
			return req, io.EOF
		}
		return req, fmt.Errorf("wire: decode request: %w", err)
	}
	return req, nil
}

// DecodeResponse reads one response.
func (d *GobDecoder) DecodeResponse() (Response, error) {
	var rsp Response
	if err := d.dec.Decode(&rsp); err != nil {
		if err == io.EOF {
			return rsp, io.EOF
		}
		return rsp, fmt.Errorf("wire: decode response: %w", err)
	}
	return rsp, nil
}
