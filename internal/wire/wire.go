// Package wire defines the gob-encoded TCP wire format of the storage
// protocol: a request envelope carrying the client identity, the target
// register and the message, and a response envelope carrying the object's
// reply. One request yields at most one response (objects reply to a message
// before receiving any other, per the model); responses are matched to
// rounds by Message.Seq.
//
// Versioning: the LIVE wire format is not negotiated — clients and daemons
// of one deployment must run the same protocol generation, upgraded in
// lockstep (daemons first is fine: requests fail with a gob type-mismatch
// error until both sides match, without corrupting state). The multi-writer
// refactor changed Pair's timestamp from a scalar to the (Seq, WID) struct,
// so pre-multi-writer clients cannot talk to current daemons or vice versa.
// PERSISTED formats, in contrast, all have explicit legacy paths (WAL gob
// mirror types, snapshot version bytes, shard-table and write-back codecs):
// old data directories and old register contents replay and decode
// unchanged, so the lockstep constraint applies only to the sockets.
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustatomic/internal/types"
)

// Request is a client→object message. Reg selects the register instance the
// message addresses: one physical object hosts any number of independent
// atomic registers (the shards of the keyed Store layer), each a fully
// separate protocol state machine. Reg 0 is the default register of the
// original single-register deployment, so old clients interoperate
// unchanged.
type Request struct {
	From types.ProcID
	Reg  int
	Msg  types.Message
}

// Response is an object→client message.
type Response struct {
	Server int
	Msg    types.Message
}

// Encoder writes envelopes to a stream.
type Encoder struct{ enc *gob.Encoder }

// NewEncoder returns an Encoder on w.
func NewEncoder(w io.Writer) *Encoder { return &Encoder{enc: gob.NewEncoder(w)} }

// Encode writes one envelope.
func (e *Encoder) Encode(v any) error {
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// Decoder reads envelopes from a stream.
type Decoder struct{ dec *gob.Decoder }

// NewDecoder returns a Decoder on r.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{dec: gob.NewDecoder(r)} }

// DecodeRequest reads one request.
func (d *Decoder) DecodeRequest() (Request, error) {
	var req Request
	if err := d.dec.Decode(&req); err != nil {
		if err == io.EOF {
			return req, io.EOF
		}
		return req, fmt.Errorf("wire: decode request: %w", err)
	}
	return req, nil
}

// DecodeResponse reads one response.
func (d *Decoder) DecodeResponse() (Response, error) {
	var rsp Response
	if err := d.dec.Decode(&rsp); err != nil {
		if err == io.EOF {
			return rsp, io.EOF
		}
		return rsp, fmt.Errorf("wire: decode response: %w", err)
	}
	return rsp, nil
}
