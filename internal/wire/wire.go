// Package wire defines the TCP wire format of the storage protocol: a
// request envelope carrying the client identity, the target register and
// the message, and a response envelope carrying the object's reply. One
// request yields at most one response (objects reply to a message before
// receiving any other, per the model); responses are matched to rounds by
// Message.Seq.
//
// The LIVE codec (Encoder/Decoder) is a hand-rolled length-prefixed binary
// format — generation 2, header byte 0x02 — replacing the gob streams of
// generations past: gob's reflection, per-message type bookkeeping and
// allocations dominated the live hot path's profile, while this codec
// encodes into a pooled per-connection buffer and writes each envelope as
// one frame. See codec.go for the format.
//
// Versioning: the LIVE wire format is not negotiated — clients and daemons
// of one deployment must run the same protocol generation, upgraded in
// lockstep (daemons first is fine: requests fail with a version/decode
// error until both sides match, without corrupting state). Generation
// history: gen 1 was the gob stream of the original deployment, whose Pair
// carried a scalar timestamp until the multi-writer refactor changed it to
// the (Seq, WID) struct (a type change gob surfaces immediately); gen 2 is
// the binary codec — a gen-1 client's gob preamble is rejected by the
// version byte, and a gen-2 frame is rejected by gen-1's gob decoder, so
// mixed deployments fail loudly on the first message. PERSISTED formats, in
// contrast, all have explicit legacy paths (WAL gob mirror types, snapshot
// version bytes, shard-table and write-back codecs): old data directories
// and old register contents replay and decode unchanged, so the lockstep
// constraint applies only to the sockets. To that end the WAL keeps writing
// gob (GobEncoder/GobDecoder below — byte-identical to the gen-1 stream,
// so every existing data directory remains the current on-disk format).
package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"robustatomic/internal/types"
)

// Request is a client→object message. Reg selects the register instance the
// message addresses: one physical object hosts any number of independent
// atomic registers (the shards of the keyed Store layer), each a fully
// separate protocol state machine. Reg 0 is the default register of the
// original single-register deployment.
type Request struct {
	From types.ProcID
	Reg  int
	Msg  types.Message
}

// Response is an object→client message.
type Response struct {
	Server int
	Msg    types.Message
}

// GobEncoder writes envelopes to a gob stream — the PERSISTED codec: WAL
// generations are gob streams (one per generation), and recovery's legacy
// probing is built around gob's properties, so the on-disk format stays gob
// even though the live sockets moved to the binary codec.
type GobEncoder struct{ enc *gob.Encoder }

// NewGobEncoder returns a GobEncoder on w.
func NewGobEncoder(w io.Writer) *GobEncoder { return &GobEncoder{enc: gob.NewEncoder(w)} }

// Encode writes one envelope.
func (e *GobEncoder) Encode(v any) error {
	if err := e.enc.Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}

// GobDecoder reads envelopes from a gob stream (see GobEncoder).
type GobDecoder struct{ dec *gob.Decoder }

// NewGobDecoder returns a GobDecoder on r.
func NewGobDecoder(r io.Reader) *GobDecoder { return &GobDecoder{dec: gob.NewDecoder(r)} }

// DecodeRequest reads one request.
func (d *GobDecoder) DecodeRequest() (Request, error) {
	var req Request
	if err := d.dec.Decode(&req); err != nil {
		if err == io.EOF {
			return req, io.EOF
		}
		return req, fmt.Errorf("wire: decode request: %w", err)
	}
	return req, nil
}

// DecodeResponse reads one response.
func (d *GobDecoder) DecodeResponse() (Response, error) {
	var rsp Response
	if err := d.dec.Decode(&rsp); err != nil {
		if err == io.EOF {
			return rsp, io.EOF
		}
		return rsp, fmt.Errorf("wire: decode response: %w", err)
	}
	return rsp, nil
}
