// Package config defines the cluster's versioned membership configuration:
// the epoch-numbered object set that dynamic reconfiguration (join / leave /
// move) advances one slot at a time.
//
// The configuration itself is stored in a robust atomic register — instance
// Reg, a reserved register ID no Store shard can collide with — and decided
// by the same certified multi-writer write protocol as every data register
// (shardmaster-style Join/Leave/Move/Query semantics, but quorum-decided,
// not Paxos). That makes reconfigurations linearizable for free: two
// concurrent Joins serialize through the MW decide, and the loser's
// read-modify-write re-validates its transition against the winner's config.
//
// The object count S and the fault budget t are epoch-invariant (the
// fixed-S rule): a Join fills a vacant slot, a Leave vacates one, a Move
// atomically swaps one slot's address. Slots are identified by the object
// sid (1-based, matching the paper's s_1..s_S); a vacant slot holds the
// empty address and behaves exactly like a crashed object — it consumes
// fault budget until a Join fills it, which is why Validate caps vacancies
// at t. Because each epoch changes at most one slot, any write quorum
// (S−t objects) of epoch e and any quorum of epoch e+1 intersect in at
// least S−2t−1 ≥ t common live slots — the quorum-intersection argument
// DESIGN.md's "Dynamic membership and migration" section develops.
//
// Epoch stamps: wire requests carry the client's configuration epoch
// (wire gen 0x04). Epoch 0 is the wildcard stamp — config-plane rounds,
// Direct operator connections and legacy clients use it and are never
// refused. Bootstrap clusters (a static -servers list, no config register
// state yet) are epoch 1; the first reconfiguration writes epoch 2.
package config

import (
	"encoding/binary"
	"fmt"
	"strings"

	"robustatomic/internal/types"
)

// Reg is the reserved register-instance ID holding the cluster
// configuration. It sits at the top of tcpnet's register-ID space
// (MaxRegisters−1), far above any Store shard (shard i uses instance i+1),
// and robustatomic.StoreOptions refuses shard counts that could reach it.
const Reg = 1<<16 - 1

// MaxObjects bounds the object count an encoded configuration may carry —
// the same 64-object ceiling proto.BitAcc's reply bitmask imposes on every
// round accumulator.
const MaxObjects = 64

// Vacant is the address of an empty slot.
const Vacant = ""

// codecVersion is the first byte of every encoded configuration.
const codecVersion = 0x01

// Config is one epoch of cluster membership: slot sid (1-based) is served
// by Addrs[sid-1], or vacant if that entry is empty.
type Config struct {
	Epoch uint64
	Addrs []string
}

// Bootstrap is the implicit epoch-1 configuration of a cluster that has
// never reconfigured: the static address list every client connected with.
func Bootstrap(addrs []string) Config {
	return Config{Epoch: 1, Addrs: append([]string(nil), addrs...)}
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	return Config{Epoch: c.Epoch, Addrs: append([]string(nil), c.Addrs...)}
}

// S returns the slot count (the epoch-invariant object count).
func (c Config) S() int { return len(c.Addrs) }

// Live returns the number of non-vacant slots.
func (c Config) Live() int {
	n := 0
	for _, a := range c.Addrs {
		if a != Vacant {
			n++
		}
	}
	return n
}

// Faults returns the fault budget t of the S = 3t+1 shape.
func (c Config) Faults() int { return (len(c.Addrs) - 1) / 3 }

// Slot returns the sid (1-based) serving addr, or 0 if absent.
func (c Config) Slot(addr string) int {
	if addr == Vacant {
		return 0
	}
	for i, a := range c.Addrs {
		if a == addr {
			return i + 1
		}
	}
	return 0
}

// Validate checks the structural invariants every configuration must hold:
// an S = 3t+1 slot count within [4, MaxObjects], no duplicate addresses,
// and at most t vacant slots (each vacancy is a permanently crashed object
// until a Join fills it, so more than t of them would exhaust the fault
// budget the protocol's liveness depends on).
func (c Config) Validate() error {
	s := len(c.Addrs)
	if s < 4 || s > MaxObjects {
		return fmt.Errorf("config: %d slots outside [4, %d]", s, MaxObjects)
	}
	if (s-1)%3 != 0 {
		return fmt.Errorf("config: %d slots is not of the 3t+1 form", s)
	}
	seen := make(map[string]int, s)
	vacant := 0
	for i, a := range c.Addrs {
		if a == Vacant {
			vacant++
			continue
		}
		if prev, dup := seen[a]; dup {
			return fmt.Errorf("config: address %q serves both slot %d and slot %d", a, prev, i+1)
		}
		seen[a] = i + 1
	}
	if t := c.Faults(); vacant > t {
		return fmt.Errorf("config: %d vacant slots exceed the fault budget t=%d", vacant, t)
	}
	return nil
}

// Join returns the successor configuration with addr filling the
// lowest-numbered vacant slot.
func (c Config) Join(addr string) (Config, error) {
	if addr == Vacant {
		return Config{}, fmt.Errorf("config: join needs a non-empty address")
	}
	if sid := c.Slot(addr); sid != 0 {
		return Config{}, fmt.Errorf("config: %q already serves slot %d", addr, sid)
	}
	next := c.Clone()
	next.Epoch++
	for i, a := range next.Addrs {
		if a == Vacant {
			next.Addrs[i] = addr
			return next, next.Validate()
		}
	}
	return Config{}, fmt.Errorf("config: no vacant slot to join (S is fixed at %d; leave or move first)", c.S())
}

// Leave returns the successor configuration with slot sid vacated.
func (c Config) Leave(sid int) (Config, error) {
	if sid < 1 || sid > c.S() {
		return Config{}, fmt.Errorf("config: slot %d outside [1, %d]", sid, c.S())
	}
	if c.Addrs[sid-1] == Vacant {
		return Config{}, fmt.Errorf("config: slot %d is already vacant", sid)
	}
	next := c.Clone()
	next.Epoch++
	next.Addrs[sid-1] = Vacant
	return next, next.Validate()
}

// Move returns the successor configuration with slot sid served by addr —
// the atomic replace: the old address departs and the new one takes over
// the slot in one epoch.
func (c Config) Move(sid int, addr string) (Config, error) {
	if sid < 1 || sid > c.S() {
		return Config{}, fmt.Errorf("config: slot %d outside [1, %d]", sid, c.S())
	}
	if addr == Vacant {
		return Config{}, fmt.Errorf("config: move needs a non-empty address (use leave to vacate)")
	}
	if have := c.Slot(addr); have != 0 && have != sid {
		return Config{}, fmt.Errorf("config: %q already serves slot %d", addr, have)
	}
	if c.Addrs[sid-1] == addr {
		return Config{}, fmt.Errorf("config: slot %d already served by %q", sid, addr)
	}
	next := c.Clone()
	next.Epoch++
	next.Addrs[sid-1] = addr
	return next, next.Validate()
}

// Encode renders the configuration as a register value:
// [version][uvarint epoch][uvarint S][uvarint len + addr]...
func (c Config) Encode() types.Value {
	buf := make([]byte, 0, 16+16*len(c.Addrs))
	buf = append(buf, codecVersion)
	buf = binary.AppendUvarint(buf, c.Epoch)
	buf = binary.AppendUvarint(buf, uint64(len(c.Addrs)))
	for _, a := range c.Addrs {
		buf = binary.AppendUvarint(buf, uint64(len(a)))
		buf = append(buf, a...)
	}
	return types.Value(buf)
}

// Decode parses an encoded configuration. It is hostile-input hardened —
// the bytes may come from a Byzantine object's MsgWrongEpoch hint — but a
// successful decode proves only well-formedness, never authenticity: trust
// requires quorum certification by the caller.
func Decode(v types.Value) (Config, error) {
	b := []byte(v)
	if len(b) == 0 {
		return Config{}, fmt.Errorf("config: empty value")
	}
	if b[0] != codecVersion {
		return Config{}, fmt.Errorf("config: unknown codec version 0x%02x", b[0])
	}
	b = b[1:]
	epoch, n := binary.Uvarint(b)
	if n <= 0 {
		return Config{}, fmt.Errorf("config: truncated epoch")
	}
	b = b[n:]
	s, n := binary.Uvarint(b)
	if n <= 0 {
		return Config{}, fmt.Errorf("config: truncated slot count")
	}
	if s > MaxObjects {
		return Config{}, fmt.Errorf("config: %d slots exceed the %d-object bound", s, MaxObjects)
	}
	b = b[n:]
	cfg := Config{Epoch: epoch, Addrs: make([]string, 0, s)}
	for i := uint64(0); i < s; i++ {
		alen, n := binary.Uvarint(b)
		if n <= 0 || uint64(len(b)-n) < alen {
			return Config{}, fmt.Errorf("config: truncated address %d", i+1)
		}
		b = b[n:]
		cfg.Addrs = append(cfg.Addrs, string(b[:alen]))
		b = b[alen:]
	}
	if len(b) != 0 {
		return Config{}, fmt.Errorf("config: %d trailing bytes", len(b))
	}
	return cfg, cfg.Validate()
}

// Equal reports whether the two configurations are identical.
func (c Config) Equal(o Config) bool {
	if c.Epoch != o.Epoch || len(c.Addrs) != len(o.Addrs) {
		return false
	}
	for i := range c.Addrs {
		if c.Addrs[i] != o.Addrs[i] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer.
func (c Config) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "epoch %d:", c.Epoch)
	for i, a := range c.Addrs {
		if a == Vacant {
			a = "<vacant>"
		}
		fmt.Fprintf(&b, " s%d=%s", i+1, a)
	}
	return b.String()
}
