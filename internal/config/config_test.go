package config

import (
	"robustatomic/internal/types"
	"strings"
	"testing"
)

func base() Config {
	return Bootstrap([]string{"h1:1", "h2:1", "h3:1", "h4:1"})
}

func TestBootstrapValid(t *testing.T) {
	c := base()
	if c.Epoch != 1 {
		t.Fatalf("bootstrap epoch = %d, want 1", c.Epoch)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.S() != 4 || c.Faults() != 1 || c.Live() != 4 {
		t.Fatalf("shape: S=%d t=%d live=%d", c.S(), c.Faults(), c.Live())
	}
}

func TestTransitions(t *testing.T) {
	c := base()

	// Leave vacates a slot and bumps the epoch.
	left, err := c.Leave(2)
	if err != nil {
		t.Fatal(err)
	}
	if left.Epoch != 2 || left.Addrs[1] != Vacant || left.Live() != 3 {
		t.Fatalf("leave: %v", left)
	}
	// A second leave would exceed t=1 vacancies.
	if _, err := left.Leave(3); err == nil {
		t.Fatal("second leave exceeded the fault budget but validated")
	}
	// Leaving a vacant slot is an error.
	if _, err := left.Leave(2); err == nil {
		t.Fatal("leave of a vacant slot validated")
	}

	// Join fills the vacancy.
	joined, err := left.Join("h5:1")
	if err != nil {
		t.Fatal(err)
	}
	if joined.Epoch != 3 || joined.Addrs[1] != "h5:1" || joined.Live() != 4 {
		t.Fatalf("join: %v", joined)
	}
	// No vacancy → join refused (S is fixed).
	if _, err := joined.Join("h6:1"); err == nil {
		t.Fatal("join with no vacancy validated")
	}
	// Duplicate address refused.
	if _, err := left.Join("h1:1"); err == nil {
		t.Fatal("join of an address already serving a slot validated")
	}

	// Move swaps one slot atomically.
	moved, err := c.Move(3, "h9:1")
	if err != nil {
		t.Fatal(err)
	}
	if moved.Epoch != 2 || moved.Addrs[2] != "h9:1" || moved.Live() != 4 {
		t.Fatalf("move: %v", moved)
	}
	if _, err := c.Move(3, "h1:1"); err == nil {
		t.Fatal("move to an address serving another slot validated")
	}
	if _, err := c.Move(3, "h3:1"); err == nil {
		t.Fatal("no-op move validated")
	}
	if _, err := c.Move(0, "x"); err == nil {
		t.Fatal("move of slot 0 validated")
	}

	// The original is never mutated by any transition.
	if !c.Equal(base()) {
		t.Fatalf("transitions mutated the receiver: %v", c)
	}
}

func TestValidateShapes(t *testing.T) {
	bad := []Config{
		{Epoch: 1, Addrs: []string{"a", "b", "c"}},            // S<4
		{Epoch: 1, Addrs: []string{"a", "b", "c", "d", "e"}},  // not 3t+1
		{Epoch: 1, Addrs: []string{"a", "b", "c", "a"}},       // duplicate
		{Epoch: 1, Addrs: []string{"a", "b", Vacant, Vacant}}, // 2 vacancies > t
		{Epoch: 1, Addrs: make([]string, MaxObjects+3)},       // > MaxObjects
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %v", i, c)
		}
	}
	ok := Config{Epoch: 5, Addrs: []string{"a", Vacant, "c", "d"}}
	if err := ok.Validate(); err != nil {
		t.Errorf("one-vacancy config refused: %v", err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, c := range []Config{
		base(),
		{Epoch: 7, Addrs: []string{"10.0.0.1:7101", Vacant, "10.0.0.3:7103", "[::1]:9"}},
	} {
		got, err := Decode(c.Encode())
		if err != nil {
			t.Fatalf("decode(%v): %v", c, err)
		}
		if !got.Equal(c) {
			t.Fatalf("round trip: %v != %v", got, c)
		}
	}
}

func TestDecodeHostile(t *testing.T) {
	enc := string(base().Encode())
	cases := map[string]string{
		"empty":       "",
		"bad version": "\x7f" + enc[1:],
		"truncated":   enc[:len(enc)-3],
		"trailing":    enc + "x",
		// Declared slot count far past the payload.
		"slot bomb": enc[:1] + "\x01\xff\xff\xff\xff\x0f",
	}
	for name, in := range cases {
		if _, err := Decode(types.Value(in)); err == nil {
			t.Errorf("%s: hostile input decoded", name)
		}
	}
	// Every prefix must fail cleanly, never panic.
	for i := 0; i < len(enc); i++ {
		Decode(types.Value(enc[:i]))
	}
}

func TestString(t *testing.T) {
	c, _ := base().Leave(4)
	s := c.String()
	if !strings.Contains(s, "epoch 2") || !strings.Contains(s, "s4=<vacant>") {
		t.Fatalf("String() = %q", s)
	}
}
