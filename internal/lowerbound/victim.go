// Package lowerbound makes the paper's two impossibility proofs executable.
//
// Each proof is an adversary: a family of partial runs (Figures 1 and 2)
// that drives any register implementation with a forbidden round profile —
// 2-round reads for Proposition 1, 3-round reads with k-round writes for
// Lemma 1 — into an atomicity violation. The harnesses in this package
// construct those runs inside the deterministic simulator against pluggable
// "victim" protocols, verify the proofs' indistinguishability claims
// mechanically (byte-comparing the reply streams a reader observes in
// paired runs), locate the first run whose executed history violates the
// atomicity checker, and render the runs as block diagrams in the style of
// the paper's figures.
//
// The paper's argument shows a violation must exist for every such
// implementation; the harness finds the concrete one for the victim at
// hand. Victims here do not write from the read path, which specializes the
// constructions slightly (the σʳ read-states of the proofs coincide with
// write-round states); the harness's mechanical view-equality checks
// discharge exactly the claims the proofs make for this class.
package lowerbound

import (
	"fmt"
	"sort"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// phaseReg returns the register instance used as the victim's m-th write
// phase slot (m ≥ 1). Phase 1 doubles as the PREWRITE slot.
func phaseReg(m int) types.RegID { return types.RegID{Class: types.RegWriter, Idx: m} }

// Victim is a register implementation with a fixed round profile, the class
// of protocols the lower bounds rule out. Victims must be deterministic
// functions of their observed reply streams.
type Victim interface {
	// Name identifies the victim in reports.
	Name() string
	// WriteRounds returns k, the victim's write round count.
	WriteRounds() int
	// ReadRounds returns the victim's read round count (2 for Proposition
	// 1 victims, 3 for Lemma 1 victims).
	ReadRounds() int
	// WriteOp returns the write operation body.
	WriteOp(th quorum.Thresholds, v types.Value) sim.OpFunc
	// ReadOp returns the read operation body.
	ReadOp(th quorum.Thresholds) sim.OpFunc
}

// FixedVictim implements Victim: writes flood k phase slots (one round
// each, awaiting S−t acknowledgements), reads query all slots for a fixed
// number of rounds (each terminating at S−t replies, the most any wait-free
// round can demand of potentially-faulty objects) and decide by a
// configurable rule. Gullible=false certifies values by t+1 exact matches
// across all rounds — sensible, but provably insufficient; Gullible=true
// returns the maximum pair seen anywhere, surviving state deletion longer
// but fabricatable by a single Byzantine object.
type FixedVictim struct {
	K        int // write rounds
	R        int // read rounds
	Gullible bool
}

var _ Victim = FixedVictim{}

// Name implements Victim.
func (v FixedVictim) Name() string {
	mode := "cautious"
	if v.Gullible {
		mode = "gullible"
	}
	return fmt.Sprintf("%s-%dW%dR", mode, v.K, v.R)
}

// WriteRounds implements Victim.
func (v FixedVictim) WriteRounds() int { return v.K }

// ReadRounds implements Victim.
func (v FixedVictim) ReadRounds() int { return v.R }

// WriteOp implements Victim.
func (v FixedVictim) WriteOp(th quorum.Thresholds, val types.Value) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		p := types.Pair{TS: types.At(1), Val: val}
		for m := 1; m <= v.K; m++ {
			reg := phaseReg(m)
			req := types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{
				{Reg: reg, Msg: types.Message{Kind: types.MsgWrite, Pair: p}},
			}}
			spec := proto.RoundSpec{
				Label: fmt.Sprintf("W%d", m),
				Req:   func(int) types.Message { return req },
				Acc: proto.NewCountAcc(th.Quorum(), func(_ int, m types.Message) bool {
					return m.Kind == types.MsgMux
				}),
			}
			if err := c.Round(spec); err != nil {
				return types.Bottom, err
			}
		}
		return types.Bottom, nil
	}
}

// ReadOp implements Victim.
func (v FixedVictim) ReadOp(th quorum.Thresholds) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		// reporters[pair] = set of distinct objects that reported it, in
		// any phase slot of any round.
		reporters := make(map[types.Pair]map[int]bool)
		sub := make([]types.SubMsg, v.K)
		for m := 1; m <= v.K; m++ {
			sub[m-1] = types.SubMsg{Reg: phaseReg(m), Msg: types.Message{Kind: types.MsgRead1}}
		}
		req := types.Message{Kind: types.MsgMux, Sub: sub}
		for r := 1; r <= v.R; r++ {
			acc := proto.NewCountAcc(th.Quorum(), func(sid int, m types.Message) bool {
				if m.Kind != types.MsgMux {
					return false
				}
				for _, s := range m.Sub {
					if s.Msg.Kind != types.MsgState {
						continue
					}
					for _, p := range []types.Pair{s.Msg.PW, s.Msg.W} {
						if p.TS.IsZero() {
							continue
						}
						if reporters[p] == nil {
							reporters[p] = make(map[int]bool, th.S)
						}
						reporters[p][sid] = true
					}
				}
				return true
			})
			spec := proto.RoundSpec{
				Label: fmt.Sprintf("RD%d", r),
				Req:   func(int) types.Message { return req },
				Acc:   acc,
			}
			if err := c.Round(spec); err != nil {
				return types.Bottom, err
			}
		}
		// Decision.
		var pairs []types.Pair
		for p := range reporters {
			pairs = append(pairs, p)
		}
		sort.Slice(pairs, func(i, j int) bool { return pairs[j].Less(pairs[i]) })
		for _, p := range pairs {
			if v.Gullible || len(reporters[p]) >= th.Certify() {
				return p.Val, nil
			}
		}
		return types.Bottom, nil
	}
}
