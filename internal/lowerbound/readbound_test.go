package lowerbound

import (
	"strings"
	"testing"
)

func TestPrevReader(t *testing.T) {
	cases := []struct{ j, c, want int }{
		{1, 1, 4}, {2, 1, 1}, {4, 1, 3}, {1, 2, 3}, {3, 2, 1}, {4, 2, 2},
	}
	for _, c := range cases {
		if got := prevReader(c.j, c.c); got != c.want {
			t.Errorf("prevReader(%d,%d) = %d, want %d", c.j, c.c, got, c.want)
		}
	}
}

func TestOrder(t *testing.T) {
	ord := order(2)
	if len(ord) != 7 {
		t.Fatalf("order(2) has %d runs, want 7 (= 4k−1)", len(ord))
	}
	wantN := []int{1, 2, 3, 4, 5, 6, 7}
	for i, ri := range ord {
		if ri.n() != wantN[i] {
			t.Errorf("ord[%d].n() = %d, want %d", i, ri.n(), wantN[i])
		}
	}
	if ord[3] != (runIndex{1, 4}) || ord[4] != (runIndex{1, 1}) {
		t.Errorf("iteration boundary wrong: %v", ord[:5])
	}
}

func TestReadBoundCautiousVictim(t *testing.T) {
	for _, tt := range []int{1, 2} {
		rb := &ReadBound{T: tt, Victim: FixedVictim{K: 2, R: 2}, Render: true}
		out, err := rb.Run()
		if err != nil {
			t.Fatalf("t=%d: %v", tt, err)
		}
		if out.Violation == nil {
			t.Fatalf("t=%d: no violation found", tt)
		}
		t.Logf("t=%d: violation in %s: %v (after %d indistinguishability checks)",
			tt, out.Run, out.Violation, out.IndistinguishabilityChecks)
		if out.IndistinguishabilityChecks < 1 {
			t.Error("no indistinguishability checks performed")
		}
	}
}

func TestReadBoundGullibleVictim(t *testing.T) {
	rb := &ReadBound{T: 1, Victim: FixedVictim{K: 2, R: 2, Gullible: true}}
	out, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("violation in %s: %v", out.Run, out.Violation)
}

func TestReadBoundThreeWriteRounds(t *testing.T) {
	// More write rounds mean more chain iterations to delete them.
	rb := &ReadBound{T: 1, Victim: FixedVictim{K: 3, R: 2}}
	out, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("k=3 violation in %s after %d checks", out.Run, out.IndistinguishabilityChecks)
}

func TestReadBoundSubMaximalS(t *testing.T) {
	// The proposition covers any 3t+1 ≤ S ≤ 4t; exercise S = 4t−1.
	rb := &ReadBound{T: 2, S: 7, Victim: FixedVictim{K: 2, R: 2}}
	out, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
}

func TestReadBoundRejectsBadConfigs(t *testing.T) {
	if _, err := (&ReadBound{T: 0, Victim: FixedVictim{K: 2, R: 2}}).Run(); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := (&ReadBound{T: 1, S: 5, Victim: FixedVictim{K: 2, R: 2}}).Run(); err == nil {
		t.Error("S=5 > 4t accepted (construction must not apply)")
	}
	if _, err := (&ReadBound{T: 1, Victim: FixedVictim{K: 2, R: 3}}).Run(); err == nil {
		t.Error("3-round-read victim accepted by Proposition 1 harness")
	}
	if _, err := (&ReadBound{T: 1, Victim: FixedVictim{K: 1, R: 2}}).Run(); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := (&ReadBound{T: 1}).Run(); err == nil {
		t.Error("nil victim accepted")
	}
}

func TestReadBoundDiagramsRendered(t *testing.T) {
	rb := &ReadBound{T: 1, Victim: FixedVictim{K: 2, R: 2}, Render: true}
	out, err := rb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Reports) == 0 {
		t.Fatal("no run reports")
	}
	for _, rep := range out.Reports {
		if rep.Diagram == "" {
			t.Fatalf("run %s has no diagram", rep.Name)
		}
		if !strings.Contains(rep.Diagram, "B1") {
			t.Fatalf("diagram of %s missing block rows:\n%s", rep.Name, rep.Diagram)
		}
	}
}
