package lowerbound

import (
	"strings"
	"testing"

	"robustatomic/internal/recurrence"
)

func TestWriteBoundK2(t *testing.T) {
	wb := &WriteBound{K: 2, Render: true}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("k=2 (t=%d, S=%d): violation in %s: %v (checks: %d)",
		TMin(2), 3*TMin(2)+1, out.Run, out.Violation, out.IndistinguishabilityChecks)
}

func TestWriteBoundK3(t *testing.T) {
	wb := &WriteBound{K: 3}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("k=3 (t=%d, S=%d): violation in %s: %v", TMin(3), 3*TMin(3)+1, out.Run, out.Violation)
}

func TestWriteBoundK4PaperInstance(t *testing.T) {
	// The paper's Figure 2 instance: k = 4, t_4 = 10, S = 31.
	if TMin(4) != 10 {
		t.Fatalf("t_4 = %d, want 10", TMin(4))
	}
	wb := &WriteBound{K: 4, Render: true}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("k=4: violation in %s after %d indistinguishability checks", out.Run, out.IndistinguishabilityChecks)
	if len(out.Reports) == 0 || out.Reports[0].Diagram == "" {
		t.Error("diagrams not rendered")
	}
}

func TestWriteBoundGullible(t *testing.T) {
	wb := &WriteBound{K: 2, Victim: FixedVictim{K: 2, R: 3, Gullible: true}}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found")
	}
	t.Logf("gullible: violation in %s: %v", out.Run, out.Violation)
}

func TestWriteBoundScaled(t *testing.T) {
	// Proposition 2 generalization: every block ×2 gives S = 3t + ⌊t/t_k⌋
	// with t = 2·t_k.
	wb := &WriteBound{K: 2, Scale: 2}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Violation == nil {
		t.Fatal("no violation found at scale 2")
	}
	t.Logf("scaled: violation in %s", out.Run)
}

func TestWriteBoundRejects(t *testing.T) {
	if _, err := (&WriteBound{K: 1}).Run(); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := (&WriteBound{K: 2, Victim: FixedVictim{K: 2, R: 2}}).Run(); err == nil {
		t.Error("2-round-read victim accepted by Lemma 1 harness")
	}
	if _, err := (&WriteBound{K: 2, Victim: FixedVictim{K: 3, R: 3}}).Run(); err == nil {
		t.Error("write-round mismatch accepted")
	}
}

func TestWriteBoundMatchesRecurrence(t *testing.T) {
	for k := 2; k <= 5; k++ {
		if got, want := TMin(k), recurrence.T(k); got != want {
			t.Errorf("TMin(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestWriteBoundDiagramShowsBlocks(t *testing.T) {
	wb := &WriteBound{K: 2, Render: true}
	out, err := wb.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range out.Reports {
		if rep.Diagram == "" {
			continue
		}
		if !strings.Contains(rep.Diagram, "B0") || !strings.Contains(rep.Diagram, "C2") {
			t.Fatalf("diagram of %s missing rows:\n%s", rep.Name, rep.Diagram)
		}
	}
}
