package lowerbound

import (
	"fmt"
	"reflect"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// ReadBound executes the Proposition 1 (Section 3, Figure 1) construction:
// if S ≤ 4t and R > 3, no SWMR atomic register can complete all reads in
// two rounds. The harness drives the victim through the paper's chain of
// partial runs pr_1 … pr_{4k−1} and their deletion counterparts ∆pr_n,
// mechanically verifying each indistinguishability claim, and reports the
// first executed run whose history violates atomicity.
type ReadBound struct {
	// T is the fault budget; the object count is S (default 4t).
	T int
	S int
	// Victim is the 2-round-read implementation under attack.
	Victim Victim
	// Render enables block-diagram rendering of every run.
	Render bool
}

// RunReport describes one executed partial run.
type RunReport struct {
	Name      string
	ReadValue types.Value
	Diagram   string
}

// Outcome is the result of executing a lower-bound construction.
type Outcome struct {
	// Violation is the atomicity violation found; nil only on harness error.
	Violation *checker.Violation
	// Run names the partial run exhibiting the violation.
	Run string
	// Reports lists every executed run in order.
	Reports []RunReport
	// IndistinguishabilityChecks counts verified paired-run view equalities.
	IndistinguishabilityChecks int
}

// runIndex identifies one step of the chain: iteration i (0-based; the
// paper's pr_1..pr_3 are i=0) and reader j ∈ 1..4. The run number is
// n = 4i + (j mod 4).
type runIndex struct{ i, j int }

func (ri runIndex) n() int { return 4*ri.i + ri.j%4 }

// order returns the chain pr_1 … pr_{4k−1}.
func order(k int) []runIndex {
	out := []runIndex{{0, 1}, {0, 2}, {0, 3}}
	for i := 1; i <= k-1; i++ {
		out = append(out, runIndex{i, 4}, runIndex{i, 1}, runIndex{i, 2}, runIndex{i, 3})
	}
	return out
}

// Run executes the construction and returns the violation outcome.
func (rb *ReadBound) Run() (*Outcome, error) {
	if rb.T < 1 {
		return nil, fmt.Errorf("lowerbound: Proposition 1 needs t ≥ 1")
	}
	s := rb.S
	if s == 0 {
		s = 4 * rb.T
	}
	part, err := quorum.NewProp1Partition(s, rb.T)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}
	th, err := quorum.NewThresholds(s, rb.T)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}
	if rb.Victim == nil {
		return nil, fmt.Errorf("lowerbound: no victim")
	}
	if rb.Victim.ReadRounds() != 2 {
		return nil, fmt.Errorf("lowerbound: Proposition 1 targets 2-round reads, victim has %d", rb.Victim.ReadRounds())
	}
	k := rb.Victim.WriteRounds()
	if k < 2 {
		return nil, fmt.Errorf("lowerbound: chain needs k ≥ 2 write rounds (k=1 leaves no round to delete)")
	}
	h := &rbHarness{rb: rb, th: th, part: part, k: k}
	if err := h.captureSigmas(); err != nil {
		return nil, err
	}
	out := &Outcome{}

	ord := order(k)
	for pos, ri := range ord {
		var prev *runIndex
		if pos > 0 {
			prev = &ord[pos-1]
		}
		pr, err := h.execute(fmt.Sprintf("pr%d", ri.n()), prev, &ri)
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, pr.report())
		if v := checker.CheckAtomic(pr.hist); v != nil {
			out.Violation = v.(*checker.Violation)
			out.Run = pr.name
			return out, nil
		}
		delta, err := h.execute(fmt.Sprintf("∆pr%d", ri.n()), &ri, nil)
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, delta.report())
		if !reflect.DeepEqual(pr.appendedObs, delta.appendedObs) {
			return nil, fmt.Errorf("lowerbound: construction broken: rd%d views differ between %s and %s:\n%v\n%v",
				ri.j, pr.name, delta.name, pr.appendedObs, delta.appendedObs)
		}
		out.IndistinguishabilityChecks++
		if pr.appendedVal != delta.appendedVal {
			return nil, fmt.Errorf("lowerbound: victim nondeterministic: rd%d returned %q in %s but %q in %s",
				ri.j, pr.appendedVal, pr.name, delta.appendedVal, delta.name)
		}
	}

	// Terminal: ∆pr_{4k−1} differs from a run with no write only at the
	// writer; execute that no-write run and check it.
	last := ord[len(ord)-1]
	nowrite, err := h.executeNoWrite(fmt.Sprintf("∆pr%d/no-write", last.n()), last)
	if err != nil {
		return nil, err
	}
	out.Reports = append(out.Reports, nowrite.report())
	if v := checker.CheckAtomic(nowrite.hist); v != nil {
		out.Violation = v.(*checker.Violation)
		out.Run = nowrite.name
		return out, nil
	}
	return nil, fmt.Errorf("lowerbound: victim %s survived the Proposition 1 chain — harness bug (a violation must exist)", rb.Victim.Name())
}

// rbHarness holds the construction's fixed data.
type rbHarness struct {
	rb   *ReadBound
	th   quorum.Thresholds
	part *quorum.Prop1Partition
	k    int
	// sigma[m][sid] is object sid's snapshot after write rounds 1..m.
	sigma []map[int][]byte
}

// run is one executed partial run.
type run struct {
	name         string
	sim          *sim.Sim
	trace        *sim.Trace
	hist         *checker.History
	lastComplete *sim.Op
	appendedObs  []sim.Observed
	appendedVal  types.Value
	prevObs      []sim.Observed
	diagram      string
}

func (r *run) report() RunReport {
	return RunReport{Name: r.name, ReadValue: r.appendedVal, Diagram: r.diagram}
}

// blocks returns the object ids of block j (1..4).
func (h *rbHarness) blocks(j int) []int { return h.part.Block(j) }

// objsExcept returns all object ids not in the given blocks.
func (h *rbHarness) objsExcept(skip ...int) []int {
	drop := map[int]bool{}
	for _, j := range skip {
		for _, sid := range h.blocks(j) {
			drop[sid] = true
		}
	}
	var out []int
	for sid := 1; sid <= h.part.S(); sid++ {
		if !drop[sid] {
			out = append(out, sid)
		}
	}
	return out
}

// captureSigmas executes the reference complete write wr and snapshots every
// object after each round.
func (h *rbHarness) captureSigmas() error {
	s := sim.New(sim.Config{Servers: h.part.S()})
	defer s.Close()
	h.sigma = make([]map[int][]byte, h.k+1)
	capture := func(m int) {
		h.sigma[m] = make(map[int][]byte, h.part.S())
		for sid := 1; sid <= h.part.S(); sid++ {
			h.sigma[m][sid] = s.Snapshot(sid)
		}
	}
	capture(0)
	w := s.Spawn("write(1)", types.Writer, checker.OpWrite, "1", h.rb.Victim.WriteOp(h.th, "1"))
	for r := 1; r <= h.k; r++ {
		s.Step(w, h.objsExcept(4)...)
		if _, seq, ok := w.CurrentRound(); ok && seq != r+1 {
			return fmt.Errorf("lowerbound: victim write round %d did not terminate on B1∪B2∪B3", r)
		}
		capture(r)
	}
	if !w.Done() {
		return fmt.Errorf("lowerbound: victim write did not complete in %d rounds", h.k)
	}
	return nil
}

// readerProc maps chain reader j to its process id.
func readerProc(j int) types.ProcID { return types.Reader(j) }

// prevReader returns the reader index c steps before j (cyclic in 1..4).
func prevReader(j, c int) int { return ((j-c-1)%4+4+4)%4 + 1 }

// execute runs a partial run: the ∆ prefix of `prefix` (nil for the full
// write wr) and, when append is non-nil, the appended complete read of
// pr_n with its Byzantine forging.
func (h *rbHarness) execute(name string, prefix, app *runIndex) (*run, error) {
	r := &run{name: name, trace: &sim.Trace{}, hist: &checker.History{}}
	r.sim = sim.New(sim.Config{Servers: h.part.S(), History: r.hist, Trace: r.trace})
	defer r.sim.Close()

	w := r.sim.Spawn("write(1)", types.Writer, checker.OpWrite, "1", h.rb.Victim.WriteOp(h.th, "1"))
	var appendedOp *sim.Op
	if prefix == nil {
		// Full write wr: all k rounds terminated, skipping B4.
		for rr := 1; rr <= h.k; rr++ {
			r.sim.Step(w, h.objsExcept(4)...)
		}
		if !w.Done() {
			return nil, fmt.Errorf("lowerbound: %s: write incomplete", name)
		}
	} else {
		if err := h.deltaPrefix(r, w, *prefix); err != nil {
			return nil, err
		}
		if app == nil {
			// The ∆ run itself: its complete read is the last appended one.
			appendedOp = r.lastComplete
		}
	}
	if app != nil {
		op, err := h.appendRead(r, *app, true)
		if err != nil {
			return nil, err
		}
		appendedOp = op
	}
	if appendedOp == nil {
		return nil, fmt.Errorf("lowerbound: %s: no appended read", name)
	}
	r.appendedObs = appendedOp.Observations()
	v, err := appendedOp.Result()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %s: appended read failed: %w", name, err)
	}
	r.appendedVal = v
	h.render(r)
	return r, nil
}

// executeNoWrite executes the terminal ∆ run without ever invoking the
// write.
func (h *rbHarness) executeNoWrite(name string, ri runIndex) (*run, error) {
	r := &run{name: name, trace: &sim.Trace{}, hist: &checker.History{}}
	r.sim = sim.New(sim.Config{Servers: h.part.S(), History: r.hist, Trace: r.trace})
	defer r.sim.Close()
	if err := h.deltaPrefix(r, nil, ri); err != nil {
		return nil, err
	}
	appendedOp := r.lastComplete
	r.appendedObs = appendedOp.Observations()
	v, err := appendedOp.Result()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %s: read failed: %w", name, err)
	}
	r.appendedVal = v
	h.render(r)
	return r, nil
}

func (h *rbHarness) render(r *run) {
	if !h.rb.Render {
		return
	}
	rows := []string{"B1", "B2", "B3", "B4"}
	blocks := map[string][]int{}
	for j := 1; j <= 4; j++ {
		blocks[fmt.Sprintf("B%d", j)] = h.blocks(j)
	}
	r.diagram = r.trace.BlockDiagram(rows, blocks)
}
