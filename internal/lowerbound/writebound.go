package lowerbound

import (
	"fmt"
	"reflect"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/recurrence"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// WriteBound executes the Lemma 1 (Section 4, Figure 2) construction: no
// k-reader atomic storage over 3·t_k+1 objects with t_k = t_{k−1}+2·t_{k−2}+1
// Byzantine faults can combine k-round writes with 3-round reads. The chain
// appends reads rd_1 … rd_k; for each, the harness executes the paper's run
// pr_l and its mimicry counterpart pr^C_l (in which superblock P_l is
// malicious and simulates rd_l's earlier invocation), verifies the reader's
// views are identical, and checks the executed histories for atomicity
// violations; the terminal run ∆pr_k replays pr_k without ever invoking the
// write.
//
// In closed form (Lemma 2) this yields k = Ω(log t): writes need at least
// min{R, ⌊log₂⌈(3t+1)/2⌉⌋} rounds when reads finish in three.
type WriteBound struct {
	// K is the write round count to defeat; the construction uses t_k
	// faults and S = 3·t_k + 1 objects (scaled by Scale ≥ 1 per
	// Proposition 2).
	K     int
	Scale int
	// Victim is the k-round-write / 3-round-read implementation under
	// attack; nil uses the cautious FixedVictim.
	Victim Victim
	// Render enables block-diagram rendering.
	Render bool
}

// Run executes the construction.
func (wb *WriteBound) Run() (*Outcome, error) {
	if wb.K < 2 {
		return nil, fmt.Errorf("lowerbound: Lemma 1 harness needs k ≥ 2 (k = 1 is the write bound of Abraham et al. [1])")
	}
	scale := wb.Scale
	if scale == 0 {
		scale = 1
	}
	part, err := quorum.NewScaledLemma1Partition(wb.K, scale)
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}
	victim := wb.Victim
	if victim == nil {
		victim = FixedVictim{K: wb.K, R: 3}
	}
	if victim.WriteRounds() != wb.K || victim.ReadRounds() != 3 {
		return nil, fmt.Errorf("lowerbound: Lemma 1 targets %d-round writes with 3-round reads, victim is %dW/%dR",
			wb.K, victim.WriteRounds(), victim.ReadRounds())
	}
	th, err := quorum.NewThresholds(part.S(), part.Faults())
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %w", err)
	}
	h := &wbHarness{wb: wb, th: th, part: part, k: wb.K, victim: victim}
	if err := h.captureSigmas(); err != nil {
		return nil, err
	}
	out := &Outcome{}

	var prevPR *run
	for l := 1; l <= wb.K; l++ {
		pr, err := h.executeRun(fmt.Sprintf("pr%d", l), l, variantPR)
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, pr.report())
		prc, err := h.executeRun(fmt.Sprintf("prC%d", l), l, variantPRC)
		if err != nil {
			return nil, err
		}
		out.Reports = append(out.Reports, prc.report())
		// rd_l sees identical views in pr_l and pr^C_l.
		if !reflect.DeepEqual(pr.appendedObs, prc.appendedObs) {
			return nil, fmt.Errorf("lowerbound: construction broken: rd%d views differ between %s and %s:\n%v\n%v",
				l, pr.name, prc.name, pr.appendedObs, prc.appendedObs)
		}
		out.IndistinguishabilityChecks++
		// rd_{l−1}'s view in pr^C_l matches its view in pr_{l−1} (the
		// @pr_{l−1} ~ pr_{l−1} claim).
		if l >= 2 && prevPR != nil {
			if !reflect.DeepEqual(prevPR.appendedObs, prc.prevObs) {
				return nil, fmt.Errorf("lowerbound: construction broken: rd%d views differ between %s and %s",
					l-1, prevPR.name, prc.name)
			}
			out.IndistinguishabilityChecks++
		}
		if v := checker.CheckAtomic(prc.hist); v != nil {
			out.Violation = v.(*checker.Violation)
			out.Run = prc.name
			return out, nil
		}
		prevPR = pr
	}

	// Terminal ∆pr_k: replay pr_k without ever invoking the write; the
	// malicious superblock M_{k−1} fabricates the write's traces.
	delta, err := h.executeRun(fmt.Sprintf("∆pr%d", wb.K), wb.K, variantDeltaK)
	if err != nil {
		return nil, err
	}
	out.Reports = append(out.Reports, delta.report())
	if !reflect.DeepEqual(prevPR.appendedObs, delta.appendedObs) {
		return nil, fmt.Errorf("lowerbound: construction broken: rd%d views differ between %s and %s",
			wb.K, prevPR.name, delta.name)
	}
	out.IndistinguishabilityChecks++
	if v := checker.CheckAtomic(delta.hist); v != nil {
		out.Violation = v.(*checker.Violation)
		out.Run = delta.name
		return out, nil
	}
	return nil, fmt.Errorf("lowerbound: victim %s survived the Lemma 1 chain — harness bug (a violation must exist)", victim.Name())
}

// TMin returns the fault budget t_k the construction needs for k write
// rounds — the recurrence of Lemma 1.
func TMin(k int) int64 { return recurrence.T(k) }

type wbVariant int

const (
	variantPR     wbVariant = iota + 1 // pr_l
	variantPRC                         // pr^C_l (P_l malicious mimicry)
	variantDeltaK                      // terminal ∆pr_k (no write)
)

// wbHarness holds the Lemma 1 construction's fixed data.
type wbHarness struct {
	wb     *WriteBound
	th     quorum.Thresholds
	part   *quorum.Lemma1Partition
	k      int
	victim Victim
	// sigma[m][sid]: snapshot of object sid after write rounds 1..m.
	sigma []map[int][]byte
}

// bObjects returns the object ids of every B block (the write's targets).
func (h *wbHarness) bObjects() []int {
	var blocks []quorum.BlockName
	for j := 0; j <= h.k+1; j++ {
		blocks = append(blocks, quorum.B(j))
	}
	return h.part.Union(blocks)
}

// rnd12Recipients returns the recipients of rd_l's first two rounds:
// everything but M_{l−2} ∪ P_{l+1}.
func (h *wbHarness) rnd12Recipients(l int) []int {
	skip := append(h.part.Malicious(l-2), h.part.Parity(l+1)...)
	return h.part.Complement(skip)
}

// rnd3Recipients returns the recipients of rd_l's third round: everything
// but M_{l−2} ∪ C_{l+1} for l < k; rd_k's third round keeps the rnd1/2
// pattern.
func (h *wbHarness) rnd3Recipients(l int) []int {
	if l >= h.k {
		return h.rnd12Recipients(l)
	}
	skip := append(h.part.Malicious(l-2), h.part.CorrectSB(l+1)...)
	return h.part.Complement(skip)
}

// inc3Round3Recipients returns the round-3 request targets of an inc3 read
// rd_l: everything but M_{l−2} ∪ C_{l+1} ∪ P_{l+1}.
func (h *wbHarness) inc3Round3Recipients(l int) []int {
	skip := append(h.part.Malicious(l-2), h.part.CorrectSB(l+1)...)
	skip = append(skip, h.part.Parity(l+1)...)
	return h.part.Complement(skip)
}

// partialWriteRecipients returns the targets of the unterminated write round
// of wr^{k−i}: B_0 plus the B blocks outside parity superblock P_{2−(i mod 2)}.
func (h *wbHarness) partialWriteRecipients(i int) []int {
	keep := 1 + i%2 // skip parity 2−(i mod 2); keep the other class
	out := append([]int{}, h.part.Objects(quorum.B(0))...)
	out = append(out, h.part.Union(h.part.Parity(keep))...)
	return out
}

// minus returns xs without the object ids in the given blocks.
func (h *wbHarness) minus(xs []int, blocks []quorum.BlockName) []int {
	drop := map[int]bool{}
	for _, b := range blocks {
		for _, sid := range h.part.Objects(b) {
			drop[sid] = true
		}
	}
	out := make([]int, 0, len(xs))
	for _, sid := range xs {
		if !drop[sid] {
			out = append(out, sid)
		}
	}
	return out
}

// captureSigmas runs prinit plus the complete write and snapshots every
// object after each terminated round.
func (h *wbHarness) captureSigmas() error {
	s := sim.New(sim.Config{Servers: h.part.S()})
	defer s.Close()
	h.sigma = make([]map[int][]byte, h.k+1)
	capture := func(m int) {
		h.sigma[m] = make(map[int][]byte, h.part.S())
		for sid := 1; sid <= h.part.S(); sid++ {
			h.sigma[m][sid] = s.Snapshot(sid)
		}
	}
	capture(0)
	w := s.Spawn("write(1)", types.Writer, checker.OpWrite, "1", h.victim.WriteOp(h.th, "1"))
	bObjs := h.bObjects()
	for r := 1; r <= h.k; r++ {
		s.Step(w, bObjs...)
		if !w.Done() {
			if _, seq, ok := w.CurrentRound(); !ok || seq != r+1 {
				return fmt.Errorf("lowerbound: victim write round %d did not terminate on the B blocks", r)
			}
		}
		capture(r)
	}
	if !w.Done() {
		return fmt.Errorf("lowerbound: victim write did not complete in %d rounds", h.k)
	}
	return nil
}
