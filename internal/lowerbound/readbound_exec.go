package lowerbound

import (
	"fmt"

	"robustatomic/internal/checker"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// deltaPrefix builds ∆pr_n (n = ri.n()) inside r.sim: the partial write
// wr^{k−i}_{(j mod 4)+1}, the surviving incomplete reads rd_{j−2} and
// rd_{j−1}, and the complete read rd_j against genuine states. A nil write
// op builds the terminal no-write variant.
func (h *rbHarness) deltaPrefix(r *run, w *sim.Op, ri runIndex) error {
	n := ri.n()
	if w != nil {
		termRounds := h.k - ri.i - 1
		for rr := 1; rr <= termRounds; rr++ {
			r.sim.Step(w, h.objsExcept(4)...)
		}
		if _, seq, ok := w.CurrentRound(); !ok || seq != termRounds+1 {
			return fmt.Errorf("lowerbound: ∆pr%d: write rounds out of sync", n)
		}
		// Partial round k−i: requests reach blocks B_{(j mod 4)+1}..B_3;
		// the replies stay in transit (the round is not terminated).
		var partial []int
		for b := ri.j%4 + 1; b <= 3; b++ {
			partial = append(partial, h.blocks(b)...)
		}
		if len(partial) > 0 {
			r.sim.DeliverRequests(w, partial...)
		}
	}
	// The wrap-around block is malicious in ∆pr_n for n ≥ 3 (it forges σʳ
	// states towards the incomplete reads; with query-only victims those
	// coincide with its genuine state, so no restore is needed).
	if n >= 3 {
		for _, sid := range h.blocks(ri.j%4 + 1) {
			r.sim.SetByzantine(sid, nil)
		}
	}
	// Incomplete reads, oldest first.
	if n >= 3 {
		j2 := prevReader(ri.j, 2)
		rd := r.sim.Spawn(fmt.Sprintf("rd%d", j2), readerProc(j2), checker.OpRead, types.Bottom,
			h.rb.Victim.ReadOp(h.th))
		r.sim.Step(rd, h.objsExcept(j2%4+1, ri.j%4+1)...)
		if rd.Done() {
			return fmt.Errorf("lowerbound: ∆pr%d: rd%d completed but must stay incomplete", n, j2)
		}
	}
	if n >= 2 {
		j1 := prevReader(ri.j, 1)
		rd := r.sim.Spawn(fmt.Sprintf("rd%d", j1), readerProc(j1), checker.OpRead, types.Bottom,
			h.rb.Victim.ReadOp(h.th))
		r.sim.Step(rd, h.objsExcept(j1%4+1)...) // round 1 terminates
		if _, seq, ok := rd.CurrentRound(); !ok || seq != 2 {
			return fmt.Errorf("lowerbound: ∆pr%d: rd%d round 1 did not terminate", n, j1)
		}
		r.sim.Step(rd, h.objsExcept(j1, ri.j%4+1)...) // round 2 stays open
		if rd.Done() {
			return fmt.Errorf("lowerbound: ∆pr%d: rd%d completed but must stay incomplete", n, j1)
		}
	}
	// The complete read rd_j, against genuine states.
	if _, err := h.appendRead(r, ri, false); err != nil {
		return fmt.Errorf("lowerbound: ∆pr%d: %w", n, err)
	}
	return nil
}

// appendRead spawns rd_j and delivers its two rounds per the paper's skip
// pattern (round 1 skips B_{(j mod 4)+1}, round 2 skips B_j). With forge
// set, block B_j first turns Byzantine and forges its state to σ_{k−i−1}
// (σ_0 for j = 4).
func (h *rbHarness) appendRead(r *run, ri runIndex, forge bool) (*sim.Op, error) {
	if forge {
		target := h.sigma[0]
		if ri.j != 4 {
			target = h.sigma[h.k-ri.i-1]
		}
		for _, sid := range h.blocks(ri.j) {
			r.sim.SetByzantine(sid, nil)
			r.sim.Restore(sid, target[sid])
		}
	}
	rd := r.sim.Spawn(fmt.Sprintf("rd%d", ri.j), readerProc(ri.j), checker.OpRead, types.Bottom,
		h.rb.Victim.ReadOp(h.th))
	r.sim.Step(rd, h.objsExcept(ri.j%4+1)...)
	if _, seq, ok := rd.CurrentRound(); !ok || seq != 2 {
		if rd.Done() {
			return nil, fmt.Errorf("rd%d finished before its second round", ri.j)
		}
		return nil, fmt.Errorf("rd%d round 1 did not terminate on its quorum pattern", ri.j)
	}
	r.sim.Step(rd, h.objsExcept(ri.j)...)
	if !rd.Done() {
		return nil, fmt.Errorf("rd%d did not complete in two rounds on its quorum pattern", ri.j)
	}
	r.lastComplete = rd
	return rd, nil
}
