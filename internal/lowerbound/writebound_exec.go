package lowerbound

import (
	"fmt"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// executeRun builds and executes one run of the Lemma 1 chain: pr_l, its
// mimicry pr^C_l, or the terminal ∆pr_k.
func (h *wbHarness) executeRun(name string, l int, variant wbVariant) (*run, error) {
	r := &run{name: name, trace: &sim.Trace{}, hist: &checker.History{}}
	r.sim = sim.New(sim.Config{Servers: h.part.S(), History: r.hist, Trace: r.trace})
	defer r.sim.Close()

	// prinit: every reader invokes its read; round-1 requests reach only
	// its parity superblock P_m, whose replies stay in transit. In pr^C_l,
	// rd_l is never invoked here — the malicious P_l will fake its traces.
	reads := make(map[int]*sim.Op, h.k)
	for m := 1; m <= h.k; m++ {
		if variant == variantPRC && m == l {
			continue
		}
		rd := r.sim.Spawn(fmt.Sprintf("rd%d", m), types.Reader(m), checker.OpRead, types.Bottom,
			h.victim.ReadOp(h.th))
		r.sim.DeliverRequests(rd, h.part.Union(h.part.Parity(m))...)
		reads[m] = rd
	}

	// The write: wr^{k−l} in pr_l, wr^{k−l+1} in pr^C_l, absent in ∆pr_k.
	if variant != variantDeltaK {
		w := r.sim.Spawn("write(1)", types.Writer, checker.OpWrite, "1", h.victim.WriteOp(h.th, "1"))
		termRounds, partialIdx := h.k-l, l
		if variant == variantPRC {
			termRounds, partialIdx = h.k-l+1, l-1
		}
		bObjs := h.bObjects()
		for rr := 1; rr <= termRounds; rr++ {
			r.sim.Step(w, bObjs...)
		}
		if partialIdx >= 1 {
			r.sim.DeliverRequests(w, h.partialWriteRecipients(partialIdx)...)
		}
	}

	// Byzantine superblocks (functional work happens via state restores).
	h.markByz(r, l, variant)

	// Incomplete reads rd_1 … rd_{l−2} of type inc2: round 1 terminated,
	// round-2 requests reach only C_m.
	for m := 1; m <= l-2; m++ {
		h.restoreBeforeRead(r, m, variant)
		if err := h.completeRound1(r, reads[m], m, false); err != nil {
			return nil, fmt.Errorf("lowerbound: %s: %w", name, err)
		}
		r.sim.DeliverRequests(reads[m], h.part.Objects(quorum.C(m))...)
		if reads[m].Done() {
			return nil, fmt.Errorf("lowerbound: %s: rd%d must stay incomplete", name, m)
		}
	}

	// rd_{l−1}: inc3 in pr_l and ∆pr_k (rounds 1–2 terminated, round-3
	// requests pending); complete in pr^C_l, where its value feeds the
	// atomicity forcing.
	if l >= 2 {
		m := l - 1
		h.restoreBeforeRead(r, m, variant)
		if err := h.completeRound1(r, reads[m], m, false); err != nil {
			return nil, fmt.Errorf("lowerbound: %s: %w", name, err)
		}
		r.sim.Step(reads[m], h.rnd12Recipients(m)...)
		if _, seq, ok := reads[m].CurrentRound(); !ok || seq != 3 {
			return nil, fmt.Errorf("lowerbound: %s: rd%d round 2 did not terminate", name, m)
		}
		if variant == variantPRC {
			r.sim.Step(reads[m], h.rnd3Recipients(m)...)
			if !reads[m].Done() {
				return nil, fmt.Errorf("lowerbound: %s: rd%d did not complete in three rounds", name, m)
			}
			r.prevObs = reads[m].Observations()
		} else {
			r.sim.DeliverRequests(reads[m], h.inc3Round3Recipients(m)...)
			if reads[m].Done() {
				return nil, fmt.Errorf("lowerbound: %s: rd%d must stay incomplete", name, m)
			}
		}
	}

	// The appended read rd_l.
	rdl := reads[l]
	if variant == variantPRC {
		// Spawned only now; the malicious P_l mimics the initial state σ_0
		// its stale prinit replies would have shown.
		rdl = r.sim.Spawn(fmt.Sprintf("rd%d", l), types.Reader(l), checker.OpRead, types.Bottom,
			h.victim.ReadOp(h.th))
		for _, sid := range h.part.Union(h.part.Parity(l)) {
			r.sim.Restore(sid, h.sigma[0][sid])
		}
	}
	if variant == variantDeltaK {
		// {B_{k−1}, C_{k−1}} fabricate σʳ_{k−1}: the state B_{k−1} had in
		// pr_k after the write's first (partial) round — write data that
		// was never written in this run.
		for _, sid := range h.part.Objects(quorum.B(h.k - 1)) {
			r.sim.Restore(sid, h.sigma[1][sid])
		}
	}
	if err := h.completeRound1(r, rdl, l, variant == variantPRC); err != nil {
		return nil, fmt.Errorf("lowerbound: %s: %w", name, err)
	}
	if variant == variantPRC {
		// Before round 2, P_l forges σ*_{k−l}: the state it genuinely has
		// in pr_l, one write round behind its state here.
		for _, sid := range h.part.Union(h.part.Parity(l)) {
			r.sim.Restore(sid, h.sigma[h.k-l][sid])
		}
	}
	r.sim.Step(rdl, h.rnd12Recipients(l)...)
	if _, seq, ok := rdl.CurrentRound(); !ok || seq != 3 {
		if !rdl.Done() {
			return nil, fmt.Errorf("lowerbound: %s: rd%d round 2 did not terminate", name, l)
		}
	}
	r.sim.Step(rdl, h.rnd3Recipients(l)...)
	if !rdl.Done() {
		return nil, fmt.Errorf("lowerbound: %s: rd%d did not complete in three rounds", name, l)
	}
	r.appendedObs = rdl.Observations()
	v, err := rdl.Result()
	if err != nil {
		return nil, fmt.Errorf("lowerbound: %s: rd%d failed: %w", name, l, err)
	}
	r.appendedVal = v
	h.renderWB(r)
	return r, nil
}

// completeRound1 terminates rd_m's first round: fresh requests go to the
// round's recipients (minus the parity superblock whose stale prinit
// replies are already in transit, unless freshPm), then every recipient's
// reply is delivered.
func (h *wbHarness) completeRound1(r *run, rd *sim.Op, m int, freshPm bool) error {
	recipients := h.rnd12Recipients(m)
	fresh := recipients
	if !freshPm {
		fresh = h.minus(recipients, h.part.Parity(m))
	}
	r.sim.DeliverRequests(rd, fresh...)
	r.sim.DeliverReplies(rd, recipients...)
	if _, seq, ok := rd.CurrentRound(); !ok || seq != 2 {
		return fmt.Errorf("rd%d round 1 did not terminate on its %d-object pattern", m, len(recipients))
	}
	return nil
}

// restoreBeforeRead applies the proof's forging schedule before the
// incomplete read rd_m is serviced: B_0 forges the complete-write state σ_k
// before replying to rd_1, and {B_{m−1}, C_{m−1}} forge σʳ_{m−1} (which for
// query-only victims is the write-round state σ_{k−m+1}) before replying to
// rd_m. In the terminal run these restores ARE the fabrication of a write
// that never happened.
func (h *wbHarness) restoreBeforeRead(r *run, m int, variant wbVariant) {
	if m == 1 {
		for _, sid := range h.part.Objects(quorum.B(0)) {
			r.sim.Restore(sid, h.sigma[h.k][sid])
		}
		return
	}
	for _, sid := range h.part.Objects(quorum.B(m - 1)) {
		r.sim.Restore(sid, h.sigma[h.k-m+1][sid])
	}
}

// markByz marks the run's malicious superblocks.
func (h *wbHarness) markByz(r *run, l int, variant wbVariant) {
	mal := func(idx int) []quorum.BlockName {
		if idx < -1 {
			idx = -1
		}
		return h.part.Malicious(idx)
	}
	var blocks []quorum.BlockName
	switch variant {
	case variantPR:
		blocks = mal(l - 2)
	case variantPRC:
		blocks = append(mal(l-3), h.part.Parity(l)...)
	case variantDeltaK:
		blocks = mal(h.k - 1)
	}
	for _, sid := range h.part.Union(blocks) {
		r.sim.SetByzantine(sid, nil)
	}
}

// renderWB renders the Figure 2 style block diagram.
func (h *wbHarness) renderWB(r *run) {
	if !h.wb.Render {
		return
	}
	var rows []string
	blocks := map[string][]int{}
	for _, name := range h.part.BlockNames() {
		rows = append(rows, name.String())
		blocks[name.String()] = h.part.Objects(name)
	}
	r.diagram = r.trace.BlockDiagram(rows, blocks)
}
