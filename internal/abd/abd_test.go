package abd

import (
	"fmt"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

func mustRun(t *testing.T, s *sim.Sim, op *sim.Op) types.Value {
	t.Helper()
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	v, err := op.Result()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

type harness struct {
	cfg Config
	ts  types.TS
}

func (h *harness) writeOp(v types.Value) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		w := NewWriterAt(c, h.cfg, h.ts)
		if err := w.Write(v); err != nil {
			return types.Bottom, err
		}
		h.ts = w.LastTS()
		return types.Bottom, nil
	}
}

func (h *harness) readOp() sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		return NewReader(c, h.cfg).Read()
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{S: 3, F: 1}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Config{S: 2, F: 1}).Validate(); err == nil {
		t.Error("S=2 F=1 accepted")
	}
	if err := (Config{S: 3, F: -1}).Validate(); err == nil {
		t.Error("negative F accepted")
	}
	if got := (Config{S: 5}).Majority(); got != 3 {
		t.Errorf("majority = %d", got)
	}
}

func TestWriteOneRoundReadTwoRounds(t *testing.T) {
	h := &harness{cfg: Config{S: 3, F: 1}}
	s := sim.New(sim.Config{Servers: 3})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a"))
	mustRun(t, s, w)
	if w.Rounds() != 1 {
		t.Errorf("ABD write rounds = %d, want 1", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q", v)
	}
	if rd.Rounds() != 2 {
		t.Errorf("ABD read rounds = %d, want 2", rd.Rounds())
	}
}

func TestToleratesCrashes(t *testing.T) {
	// F objects silent (crashed): everything still works.
	h := &harness{cfg: Config{S: 5, F: 2}}
	s := sim.New(sim.Config{Servers: 5})
	defer s.Close()
	s.SetByzantine(4, server.Silent{})
	s.SetByzantine(5, server.Silent{})
	mustRun(t, s, s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q", v)
	}
}

func TestWriteBackPreventsInversion(t *testing.T) {
	// Write reaches only object 1, writer crashes; r1 reads "a" (write-back
	// completes it); r2 must then also read "a".
	h := &harness{cfg: Config{S: 3, F: 1}}
	hist := &checker.History{}
	s := sim.New(sim.Config{Servers: 3, History: hist})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a"))
	s.Step(w, 1)
	s.Crash(w)
	r1 := s.Spawn("r1", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	v1 := mustRun(t, s, r1)
	r2 := s.Spawn("r2", types.Reader(2), checker.OpRead, types.Bottom, h.readOp())
	v2 := mustRun(t, s, r2)
	if v1 == "a" && v2 != "a" {
		t.Fatalf("new/old inversion: %q then %q", v1, v2)
	}
	if err := checker.CheckAtomic(hist); err != nil {
		t.Error(err)
	}
}

func TestRandomizedAtomicity(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		h := &harness{cfg: Config{S: 5, F: 2}}
		hist := &checker.History{}
		s := sim.New(sim.Config{Servers: 5, History: hist})
		if seed%3 == 1 {
			s.SetByzantine(1+int(seed)%5, server.Silent{})
		}
		readers := []*sim.Op{
			s.Spawn("r1", types.Reader(1), checker.OpRead, types.Bottom, h.readOp()),
			s.Spawn("r2", types.Reader(2), checker.OpRead, types.Bottom, h.readOp()),
		}
		for i := 1; i <= 3; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, h.writeOp(v))
			if err := s.RunConcurrent(seed*17+int64(i), w, readers[0], readers[1]); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for _, rd := range readers {
			if !rd.Done() {
				if err := s.RunOp(rd); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
		if err := checker.CheckAtomic(hist); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s.Close()
	}
}

func TestByzantineBreaksABD(t *testing.T) {
	// The E4 ablation: ABD trusts single replies, so one Byzantine object
	// can serve a fabricated value to a reader — demonstrating why the
	// Byzantine model needs certification (and costs more rounds).
	h := &harness{cfg: Config{S: 3, F: 1}}
	hist := &checker.History{}
	s := sim.New(sim.Config{Servers: 3, History: hist})
	defer s.Close()
	mustRun(t, s, s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	s.SetByzantine(1, server.Garbage{Level: 99, Val: "evil"})
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	v := mustRun(t, s, rd)
	if v != "evil" {
		t.Fatalf("expected the Byzantine object to fool ABD, read = %q", v)
	}
	if err := checker.CheckAtomic(hist); err == nil {
		t.Fatal("checker did not flag the fabricated value")
	}
}

func TestRejectsBottomWrite(t *testing.T) {
	h := &harness{cfg: Config{S: 3, F: 1}}
	s := sim.New(sim.Config{Servers: 3})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, types.Bottom, func(c *sim.Client) (types.Value, error) {
		if err := NewWriter(c, h.cfg).Write(types.Bottom); err == nil {
			return types.Bottom, fmt.Errorf("⊥ accepted")
		}
		return types.Bottom, nil
	})
	mustRun(t, s, op)
}

func TestInvalidConfigSurfacesOnOps(t *testing.T) {
	s := sim.New(sim.Config{Servers: 2})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", func(c *sim.Client) (types.Value, error) {
		if err := NewWriter(c, Config{S: 2, F: 1}).Write("a"); err == nil {
			return types.Bottom, fmt.Errorf("invalid config accepted on write")
		}
		if _, err := NewReader(c, Config{S: 2, F: 1}).Read(); err == nil {
			return types.Bottom, fmt.Errorf("invalid config accepted on read")
		}
		return types.Bottom, nil
	})
	mustRun(t, s, op)
}
