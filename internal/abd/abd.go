// Package abd implements the seminal crash-tolerant robust atomic SWMR
// register of Attiya, Bar-Noy and Dolev [3] ([ABD95]), the baseline the
// paper's related-work discussion starts from: writes complete in a single
// round, reads in two (query + write-back), assuming a majority of correct
// storage objects and NO Byzantine failures.
//
// It shares the storage-object automaton and round machinery with the
// Byzantine-tolerant protocols so the complexity comparison of experiment
// E4 is apples-to-apples: the only differences are quorum sizes (majority
// instead of 2t+1-of-3t+1) and the absence of certification — a single
// reply is trusted, which is exactly what Byzantine objects exploit (the
// E4 ablation demonstrates this by running ABD against one Byzantine
// object).
package abd

import (
	"fmt"

	"robustatomic/internal/proto"
	"robustatomic/internal/types"
)

// Config sets the cluster geometry: S objects tolerating F crashes, with
// S ≥ 2F+1.
type Config struct {
	S int
	F int
}

// Validate checks the majority-resilience requirement.
func (c Config) Validate() error {
	if c.F < 0 || c.S < 2*c.F+1 {
		return fmt.Errorf("abd: need S ≥ 2F+1, got S=%d F=%d", c.S, c.F)
	}
	return nil
}

// Majority returns the quorum size ⌊S/2⌋+1.
func (c Config) Majority() int { return c.S/2 + 1 }

// Writer is the single writer (the crash-only baseline keeps the paper's
// SWMR setting; its timestamps stay WID 0).
type Writer struct {
	rounder proto.Rounder
	cfg     Config
	ts      types.TS
}

// NewWriter returns the writer handle.
func NewWriter(r proto.Rounder, cfg Config) *Writer { return NewWriterAt(r, cfg, types.TS{}) }

// NewWriterAt resumes from a known last timestamp.
func NewWriterAt(r proto.Rounder, cfg Config, last types.TS) *Writer {
	return &Writer{rounder: r, cfg: cfg, ts: last}
}

// Write stores v in a single round: send the timestamped pair to all
// objects, await a majority of acknowledgements.
func (w *Writer) Write(v types.Value) error {
	if v.IsBottom() {
		return fmt.Errorf("abd: cannot write the reserved initial value ⊥")
	}
	if err := w.cfg.Validate(); err != nil {
		return err
	}
	p := types.Pair{TS: w.ts.Next(0), Val: v}
	spec := proto.RoundSpec{
		Label: "ABD_STORE",
		Req:   func(int) types.Message { return types.Message{Kind: types.MsgABDStore, Pair: p} },
		Acc:   proto.AckAcc(w.cfg.Majority()),
	}
	if err := w.rounder.Round(spec); err != nil {
		return fmt.Errorf("abd: store: %w", err)
	}
	w.ts = p.TS
	return nil
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() types.TS { return w.ts }

// Reader reads the register.
type Reader struct {
	rounder proto.Rounder
	cfg     Config
}

// NewReader returns a reader handle.
func NewReader(r proto.Rounder, cfg Config) *Reader {
	return &Reader{rounder: r, cfg: cfg}
}

// maxAcc collects MsgABDVal replies from a majority, tracking the maximum
// pair seen.
type maxAcc struct {
	need int
	seen map[int]bool
	best types.Pair
}

var _ proto.Accumulator = (*maxAcc)(nil)

func (a *maxAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgABDVal || a.seen[sid] {
		return
	}
	a.seen[sid] = true
	a.best = types.MaxPair(a.best, m.Pair)
}

func (a *maxAcc) Done() bool { return len(a.seen) >= a.need }

// Read returns the register value in two rounds: query a majority for their
// pairs, then write the maximum back to a majority before returning (the
// write-back is what makes ABD reads atomic rather than merely regular).
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair is Read exposing the timestamp.
func (r *Reader) ReadPair() (types.Pair, error) {
	if err := r.cfg.Validate(); err != nil {
		return types.Pair{}, err
	}
	acc := &maxAcc{need: r.cfg.Majority(), seen: make(map[int]bool, r.cfg.S)}
	query := proto.RoundSpec{
		Label: "ABD_QUERY",
		Req:   func(int) types.Message { return types.Message{Kind: types.MsgABDQuery} },
		Acc:   acc,
	}
	if err := r.rounder.Round(query); err != nil {
		return types.Pair{}, fmt.Errorf("abd: query: %w", err)
	}
	best := acc.best
	wb := proto.RoundSpec{
		Label: "ABD_WRITEBACK",
		Req:   func(int) types.Message { return types.Message{Kind: types.MsgABDStore, Pair: best} },
		Acc:   proto.AckAcc(r.cfg.Majority()),
	}
	if err := r.rounder.Round(wb); err != nil {
		return types.Pair{}, fmt.Errorf("abd: write-back: %w", err)
	}
	return best, nil
}
