package recurrence

import (
	"testing"
	"testing/quick"
)

func TestTBaseCases(t *testing.T) {
	cases := []struct {
		k    int
		want int64
	}{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 5}, {4, 10}, {5, 21}, {6, 42}, {7, 85},
	}
	for _, c := range cases {
		if got := T(c.k); got != c.want {
			t.Errorf("T(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestTMatchesRecurrenceDefinition(t *testing.T) {
	for k := 1; k <= MaxK; k++ {
		want := T(k-1) + 2*T(k-2) + 1
		if got := T(k); got != want {
			t.Fatalf("T(%d) = %d, violates recurrence (want %d)", k, got, want)
		}
	}
}

func TestClosedFormMatchesRecurrence(t *testing.T) {
	for k := -1; k <= MaxK; k++ {
		if T(k) != TClosed(k) {
			t.Errorf("k=%d: T=%d, TClosed=%d", k, T(k), TClosed(k))
		}
	}
}

func TestClosedFormProperty(t *testing.T) {
	// Property: closed form satisfies the recurrence symbolically.
	f := func(k uint8) bool {
		kk := int(k%(MaxK-2)) + 2
		return TClosed(kk) == TClosed(kk-1)+2*TClosed(kk-2)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTMonotonicAndExponential(t *testing.T) {
	for k := 1; k <= MaxK; k++ {
		if T(k) <= T(k-1) {
			t.Errorf("T not strictly increasing at k=%d", k)
		}
	}
	// Growth factor approaches 2: 2^{k}/6 < t_k < 2^{k+1} for k ≥ 2.
	for k := 2; k <= MaxK; k++ {
		lo := (int64(1) << uint(k)) / 6
		hi := int64(1) << uint(k+1)
		if tk := T(k); tk <= lo || tk >= hi {
			t.Errorf("T(%d) = %d outside (2^k/6, 2^(k+1)) = (%d, %d)", k, tk, lo, hi)
		}
	}
}

func TestLog2Floor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {1023, 9}, {1024, 10}}
	for _, c := range cases {
		if got := Log2Floor(c.n); got != c.want {
			t.Errorf("Log2Floor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestKMaxRecoversK(t *testing.T) {
	// Lemma 2: solving t ≥ (2^{k+2} − (−1)^k − 3)/6 for k yields
	// k ≤ ⌊log(⌈(3t+1)/2⌉)⌋. So with exactly t = t_k faults, the bound must
	// give back at least k (the construction defeats k rounds) for all k.
	for k := 1; k <= 40 && k <= MaxK; k++ {
		if got := KMax(T(k)); got < k {
			t.Errorf("KMax(T(%d)=%d) = %d < %d", k, T(k), got, k)
		}
	}
}

func TestKMaxTight(t *testing.T) {
	// One fewer fault than t_k must not support k rounds via KForT.
	for k := 2; k <= 20; k++ {
		if got := KForT(T(k) - 1); got != k-1 {
			t.Errorf("KForT(T(%d)-1) = %d, want %d", k, got, k-1)
		}
		if got := KForT(T(k)); got != k {
			t.Errorf("KForT(T(%d)) = %d, want %d", k, got, k)
		}
	}
}

func TestKMaxSmallValues(t *testing.T) {
	cases := []struct {
		t    int64
		want int
	}{
		{0, 0},
		{1, 1},  // ⌈4/2⌉=2, log=1
		{2, 1},  // ⌈7/2⌉=4, log=2? No: (3*2+1)=7, ⌈7/2⌉=4, log₂4=2.
		{5, 3},  // (16)/2=8 → 3
		{10, 3}, // 31→16, log=4? ⌈31/2⌉=16 → 4.
	}
	// Recompute expectations explicitly rather than by hand:
	for _, c := range cases {
		if c.t == 0 {
			if KMax(0) != 0 {
				t.Errorf("KMax(0) = %d, want 0", KMax(0))
			}
			continue
		}
		ceil := (3*c.t + 2) / 2
		want := Log2Floor(ceil)
		if got := KMax(c.t); got != want {
			t.Errorf("KMax(%d) = %d, want %d", c.t, got, want)
		}
	}
}

func TestObjects(t *testing.T) {
	for k := 1; k <= 10; k++ {
		if got, want := Objects(k), 3*T(k)+1; got != want {
			t.Errorf("Objects(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestResilience(t *testing.T) {
	// Proposition 2 scaling: multiplying blocks by c = t/t_k yields
	// S' = 3t + ⌊t/t_k⌋.
	for k := 1; k <= 8; k++ {
		tk := T(k)
		for c := int64(1); c <= 4; c++ {
			tt := c * tk
			want := 3*tt + c
			if got := Resilience(k, tt); got != want {
				t.Errorf("Resilience(k=%d, t=%d) = %d, want %d", k, tt, got, want)
			}
		}
	}
	if got := Resilience(0, 7); got != 22 {
		t.Errorf("Resilience(0, 7) = %d, want 22", got)
	}
}

func TestResiliencePanicsBelowTk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Resilience(4, T(4)-1) did not panic")
		}
	}()
	Resilience(4, T(4)-1)
}

func TestTablePaperInstance(t *testing.T) {
	// The paper's Figure 2 instance: k = 4 means t_4 = 10 faults and
	// S = 31 objects.
	rows := Table(4)
	last := rows[len(rows)-1]
	if last.T != 10 || last.S != 31 {
		t.Errorf("k=4 row = %+v, want T=10 S=31", last)
	}
	for _, r := range rows {
		if r.T != r.TClosed {
			t.Errorf("row %d: recurrence %d != closed form %d", r.K, r.T, r.TClosed)
		}
	}
}

func TestPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"T-low":     func() { T(-2) },
		"T-high":    func() { T(MaxK + 1) },
		"TC-low":    func() { TClosed(-2) },
		"Log2-zero": func() { Log2Floor(0) },
		"KMax-neg":  func() { KMax(-1) },
		"KForT-neg": func() { KForT(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
