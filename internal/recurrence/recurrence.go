// Package recurrence implements the arithmetic at the heart of the write
// lower bound (Section 4 of the paper): the Fibonacci-like recurrence
//
//	t_{-1} = t_0 = 0,   t_k = t_{k-1} + 2·t_{k-2} + 1
//
// its closed form t_k = (2^{k+2} − (−1)^k − 3) / 6 (proof of Lemma 2), and
// the resulting write-round lower bound k ≤ ⌊log₂(⌈(3t+1)/2⌉)⌋, i.e.
// k = Ω(log t) write rounds are necessary for 3-round reads.
package recurrence

import "fmt"

// MaxK is the largest supported index of the t_k sequence. t_62 already
// exceeds 2^62/6·16, the practical limit for int64 arithmetic without
// overflow; all callers in this repository use k ≤ 30.
const MaxK = 60

// T returns t_k, the number of Byzantine objects needed by the Lemma 1
// construction to defeat a k-round-write / 3-round-read implementation.
// T(-1) = T(0) = 0 by definition. It panics if k < -1 or k > MaxK; the bound
// harness validates user input before calling.
func T(k int) int64 {
	if k < -1 || k > MaxK {
		panic(fmt.Sprintf("recurrence: T(%d) out of range [-1, %d]", k, MaxK))
	}
	if k <= 0 {
		return 0
	}
	var tPrev2, tPrev1 int64 = 0, 0 // t_{-1}, t_0
	var tk int64
	for i := 1; i <= k; i++ {
		tk = tPrev1 + 2*tPrev2 + 1
		tPrev2, tPrev1 = tPrev1, tk
	}
	return tk
}

// TClosed returns t_k using the closed form (2^{k+2} − (−1)^k − 3)/6 from the
// proof of Lemma 2. Same domain as T.
func TClosed(k int) int64 {
	if k < -1 || k > MaxK {
		panic(fmt.Sprintf("recurrence: TClosed(%d) out of range [-1, %d]", k, MaxK))
	}
	if k <= 0 {
		return 0
	}
	minusMinusOneToK := int64(-1) // −(−1)^k for even k
	if k%2 == 1 {
		minusMinusOneToK = 1
	}
	return ((int64(1) << uint(k+2)) + minusMinusOneToK - 3) / 6
}

// Log2Floor returns ⌊log₂ n⌋ for n ≥ 1.
func Log2Floor(n int64) int {
	if n < 1 {
		panic(fmt.Sprintf("recurrence: Log2Floor(%d) undefined", n))
	}
	l := -1
	for n > 0 {
		n >>= 1
		l++
	}
	return l
}

// KMax returns the write lower bound of Lemma 2 for t Byzantine objects:
// ⌊log₂(⌈(3t+1)/2⌉)⌋. No implementation with S ≤ 3t+1 objects, 3-round reads
// and at least KMax(t) readers can have all writes complete in fewer than...
// precisely: writes cannot complete in min{R, KMax(t)} rounds.
func KMax(t int64) int {
	if t < 0 {
		panic(fmt.Sprintf("recurrence: KMax(%d) undefined", t))
	}
	if t == 0 {
		return 0
	}
	ceil := (3*t + 1 + 1) / 2 // ⌈(3t+1)/2⌉
	return Log2Floor(ceil)
}

// KForT returns the largest k such that T(k) ≤ t: the number of write rounds
// the Lemma 1 construction can defeat with a budget of t Byzantine objects.
func KForT(t int64) int {
	if t < 0 {
		panic(fmt.Sprintf("recurrence: KForT(%d) undefined", t))
	}
	k := 0
	for k+1 <= MaxK && T(k+1) <= t {
		k++
	}
	return k
}

// Objects returns the object count S = 3·t_k + 1 used by the Lemma 1
// construction for a given k.
func Objects(k int) int64 { return 3*T(k) + 1 }

// Resilience returns the generalized resilience bound of Proposition 2 for a
// fault budget t ≥ T(k): S ≤ 3t + ⌊t/t_k⌋. For k ≤ 1 (t_k = 0 or the
// degenerate case) it returns 3t+1, the optimal-resilience bound.
func Resilience(k int, t int64) int64 {
	tk := T(k)
	if tk == 0 {
		return 3*t + 1
	}
	if t < tk {
		panic(fmt.Sprintf("recurrence: Resilience(k=%d) needs t ≥ t_k = %d, got %d", k, tk, t))
	}
	return 3*t + t/tk
}

// Row is one line of the E3 experiment table.
type Row struct {
	K       int   // write rounds defeated
	T       int64 // t_k from the recurrence
	TClosed int64 // t_k from the closed form
	S       int64 // 3·t_k + 1 objects
	KMax    int   // ⌊log₂(⌈(3·t_k+1)/2⌉)⌋ recovered from t_k
}

// Table returns rows k = 1..kMax of the recurrence table (experiment E3).
func Table(kMax int) []Row {
	rows := make([]Row, 0, kMax)
	for k := 1; k <= kMax; k++ {
		tk := T(k)
		rows = append(rows, Row{
			K:       k,
			T:       tk,
			TClosed: TClosed(k),
			S:       Objects(k),
			KMax:    KMax(tk),
		})
	}
	return rows
}
