package shard

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRouterSpreadAndDeterminism(t *testing.T) {
	r, err := NewRouter(8)
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[int]int)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("key-%03d", i)
		s := r.Locate(key)
		if s < 0 || s >= 8 {
			t.Fatalf("Locate(%q) = %d out of range", key, s)
		}
		if again := r.Locate(key); again != s {
			t.Fatalf("Locate(%q) not deterministic: %d then %d", key, s, again)
		}
		hit[s]++
	}
	if len(hit) != 8 {
		t.Errorf("64 keys hit only %d of 8 shards: %v", len(hit), hit)
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(0); err == nil {
		t.Error("NewRouter(0) accepted")
	}
	var zero Router
	if zero.Locate("x") != 0 {
		t.Error("zero router must route to shard 0")
	}
}

func TestLazySingleBuildUnderConcurrency(t *testing.T) {
	var builds int32
	l := NewLazy(4, func(i int) (int, error) {
		atomic.AddInt32(&builds, 1)
		return i * 10, nil
	})
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				v, err := l.Get(i)
				if err != nil {
					t.Error(err)
					return
				}
				if v != i*10 {
					t.Errorf("slot %d = %d", i, v)
				}
			}
		}()
	}
	wg.Wait()
	if builds != 4 {
		t.Errorf("built %d times, want 4", builds)
	}
	if got := len(l.Built()); got != 4 {
		t.Errorf("Built() returned %d values", got)
	}
}

func TestLazyRetriesFailedBuild(t *testing.T) {
	fail := true
	l := NewLazy(1, func(i int) (string, error) {
		if fail {
			return "", errors.New("transient")
		}
		return "ok", nil
	})
	if _, err := l.Get(0); err == nil {
		t.Fatal("first build should fail")
	}
	fail = false
	v, err := l.Get(0)
	if err != nil || v != "ok" {
		t.Fatalf("retry: %q, %v", v, err)
	}
	if _, err := l.Get(5); err == nil {
		t.Error("out-of-range slot accepted")
	}
}

func TestPoolExclusiveHandles(t *testing.T) {
	p := NewPool([]int{1, 2})
	var inUse, maxInUse int32
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				h := p.Acquire()
				n := atomic.AddInt32(&inUse, 1)
				for {
					m := atomic.LoadInt32(&maxInUse)
					if n <= m || atomic.CompareAndSwapInt32(&maxInUse, m, n) {
						break
					}
				}
				atomic.AddInt32(&inUse, -1)
				p.Release(h)
			}
		}()
	}
	wg.Wait()
	if maxInUse > 2 {
		t.Errorf("%d handles in use at once from a pool of 2", maxInUse)
	}
}

func TestEmptyTableIsNotBottom(t *testing.T) {
	if EncodeTable(nil) == "" {
		t.Fatal("empty table must not encode to the reserved initial value ⊥")
	}
}

func TestTableCodecRoundTrip(t *testing.T) {
	cases := []map[string]string{
		{},
		{"a": "1"},
		{"a": "1", "b": "2", "order:42": "shipped"},
		{"k=ey": "v&al", "a&b=c": "=&=", "unicode-⊥": "värde", "empty": ""},
	}
	for _, m := range cases {
		enc := EncodeTable(m)
		dec, err := DecodeTable(enc)
		if err != nil {
			t.Fatalf("decode(%q): %v", enc, err)
		}
		if len(dec) != len(m) {
			t.Fatalf("round trip of %v lost entries: %v", m, dec)
		}
		for k, v := range m {
			if dec[k] != v {
				t.Errorf("round trip of %v: key %q = %q", m, k, dec[k])
			}
		}
	}
}

func TestTableCodecDeterministic(t *testing.T) {
	a := EncodeTable(map[string]string{"x": "1", "y": "2", "z": "3"})
	b := EncodeTable(map[string]string{"z": "3", "x": "1", "y": "2"})
	if a != b {
		t.Errorf("encoding not deterministic: %q vs %q", a, b)
	}
}

func TestTableCodecRejectsGarbage(t *testing.T) {
	for _, s := range []string{"no-separator", "a=b&broken", "%zz=x"} {
		if _, err := DecodeTable(s); err == nil {
			t.Errorf("DecodeTable(%q) accepted", s)
		}
	}
}
