package shard

import (
	"fmt"
	"sort"
	"testing"
)

// TestLegacyTablesStillDecode pins the upgrade path: tables persisted on a
// running cluster by the pre-binary text codec must decode byte-identically
// after the codec switch.
func TestLegacyTablesStillDecode(t *testing.T) {
	cases := []map[string]string{
		{},
		{"a": "1"},
		{"a": "1", "b": "2", "order:42": "shipped"},
		{"k=ey": "v&al", "a&b=c": "=&=", "unicode-⊥": "värde", "empty": ""},
		{"": "empty-key"},
	}
	for _, m := range cases {
		enc := legacyEncodeTable(m)
		if len(enc) > 0 && enc[0] == binaryMagic {
			t.Fatalf("legacy encoding %q starts with the binary magic byte", enc)
		}
		dec, err := DecodeTable(enc)
		if err != nil {
			t.Fatalf("legacy decode(%q): %v", enc, err)
		}
		if len(dec) != len(m) {
			t.Fatalf("legacy round trip of %v lost entries: %v", m, dec)
		}
		for k, v := range m {
			if dec[k] != v {
				t.Errorf("legacy round trip of %v: key %q = %q", m, k, dec[k])
			}
		}
	}
}

func TestBinaryCodecRejectsGarbage(t *testing.T) {
	cases := []string{
		"\x01",                  // truncated count
		"\x01\x05",              // count 5, no entries
		"\x01\x01\x09key",       // key length past payload
		"\x01\x01\x03key",       // missing value length
		"\x01\x01\x03key\x05va", // value length past payload
		"\x01\x00trailing",      // bytes after the last entry
		"\x01\x01\x03key\x02vvEXTRA",
		"\x01\xff\xff\xff\xff\xff\xff\xff\xff\xff\xff", // varint overflow
	}
	for _, s := range cases {
		if m, err := DecodeTable(s); err == nil {
			t.Errorf("DecodeTable(%q) accepted: %v", s, m)
		}
	}
}

func TestEncodeSortedMatchesEncodeTable(t *testing.T) {
	m := map[string]string{"z": "26", "a": "1", "m": "13", "": "empty"}
	keys := SortedKeys(m)
	if got, want := EncodeSorted(keys, m), EncodeTable(m); got != want {
		t.Errorf("EncodeSorted = %q, EncodeTable = %q", got, want)
	}
}

func TestSortedKeyMaintenance(t *testing.T) {
	var keys []string
	for _, k := range []string{"m", "a", "z", "a", "m"} { // duplicates are no-ops
		keys = InsertSorted(keys, k)
	}
	if !sort.StringsAreSorted(keys) || len(keys) != 3 {
		t.Fatalf("after inserts: %v", keys)
	}
	keys = RemoveSorted(keys, "m")
	keys = RemoveSorted(keys, "absent") // removing an absent key is a no-op
	if fmt.Sprint(keys) != "[a z]" {
		t.Fatalf("after removes: %v", keys)
	}
	keys = RemoveSorted(RemoveSorted(keys, "a"), "z")
	if len(keys) != 0 {
		t.Fatalf("not emptied: %v", keys)
	}
}

// benchTable builds a deterministic n-key table and its sorted key slice.
func benchTable(n int) (map[string]string, []string) {
	m := make(map[string]string, n)
	for i := 0; i < n; i++ {
		m[fmt.Sprintf("key-%06d", i)] = fmt.Sprintf("value-%d-of-a-realistic-size", i)
	}
	return m, SortedKeys(m)
}

// BenchmarkTableCodec compares the legacy percent-escaped text codec against
// the binary codec across table sizes (run with -benchmem: the binary
// encoder's advantage is as much allocations as time).
func BenchmarkTableCodec(b *testing.B) {
	for _, n := range []int{16, 256, 4096} {
		m, keys := benchTable(n)
		b.Run(fmt.Sprintf("text/encode/keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				legacyEncodeTable(m)
			}
		})
		b.Run(fmt.Sprintf("binary/encode/keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EncodeSorted(keys, m)
			}
		})
		b.Run(fmt.Sprintf("binary/append-pooled/keys=%d", n), func(b *testing.B) {
			// The Store committer's shape: one long-lived buffer reused
			// across flushes — the encode itself allocates nothing at
			// steady state (compare allocs/op against binary/encode; the
			// flush's only remaining allocation is the immutable register
			// value copied out of this buffer).
			var buf []byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = AppendSorted(buf[:0], keys, m)
			}
		})
		textEnc := legacyEncodeTable(m)
		binEnc := EncodeSorted(keys, m)
		b.Run(fmt.Sprintf("text/decode/keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DecodeTable(textEnc); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("binary/decode/keys=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := DecodeTable(binEnc); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
