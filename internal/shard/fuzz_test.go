package shard

import (
	"reflect"
	"testing"
)

// FuzzTableCodec exercises the shard-table codec with arbitrary input: any
// byte string must either fail to decode or decode to a table that
// re-encodes and decodes to the same table (decode is total and round-trip
// stable; the decoder must never panic or accept two readings of one
// input). The CI fuzz smoke job runs this against the corpus plus fresh
// mutations.
func FuzzTableCodec(f *testing.F) {
	f.Add("")
	f.Add(EncodeTable(map[string]string{"k": "v", "key:2": "x|y%z"}))
	f.Add(legacyEncodeTable(map[string]string{"a": "1", "b": ""}))
	f.Add("\x01\x02k1v1")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, s string) {
		table, err := DecodeTable(s)
		if err != nil {
			return
		}
		re := EncodeTable(table)
		back, err := DecodeTable(re)
		if err != nil {
			t.Fatalf("re-encoded table does not decode: %v", err)
		}
		if !reflect.DeepEqual(table, back) {
			t.Fatalf("round trip drift: %v → %v", table, back)
		}
		// The incremental sorted-key helpers agree with a fresh sort.
		keys := SortedKeys(table)
		if EncodeSorted(keys, table) != re {
			t.Fatal("EncodeSorted disagrees with EncodeTable")
		}
	})
}
