package shard

import (
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// The shard-table codec packs one shard's key→value table into a single
// register value. Two formats exist:
//
//   - Binary v1 (current): a 0x01 header byte, a varint entry count, then
//     per entry a varint-length-prefixed key and value, keys in sorted
//     order. No escaping, no per-encode sorting (writers maintain the
//     sorted key slice incrementally), one allocation per encode.
//   - Legacy text: percent-escaped "k=v&k=v" pairs, or "!" for the empty
//     table. Encoded by releases before the binary codec; DecodeTable
//     still accepts it, so tables persisted on a running cluster survive
//     a client upgrade.
//
// The header byte dispatches decoding: a legacy encoding's first byte is
// '!' or a percent-escape-safe character ('=' when the key is empty), never
// a control byte, so 0x01 is unambiguous. The register's reserved initial
// value ⊥ (the empty string) is never encoded and decodes to an empty
// table in both formats.

// binaryMagic is the header byte of binary codec version 1.
const binaryMagic = 0x01

// legacyEmptyTable is the legacy text encoding of a table with no entries.
// It must differ from ⊥ (the empty string), which the protocol refuses to
// write, and can never collide with a real entry list because '!' is
// percent-escaped in entries.
const legacyEmptyTable = "!"

// EncodeTable packs a table into one register value (binary v1). The
// encoding is deterministic (keys sorted) and injective.
func EncodeTable(m map[string]string) string {
	return EncodeSorted(SortedKeys(m), m)
}

// EncodeSorted packs a table whose sorted key slice the caller already
// maintains, skipping the per-encode sort and key-slice allocation — the
// write hot path. keys must hold exactly m's keys in ascending order.
func EncodeSorted(keys []string, m map[string]string) string {
	return string(AppendSorted(nil, keys, m))
}

// AppendSorted appends the binary v1 encoding of the table to dst and
// returns the extended slice, growing dst at most once (the exact encoded
// size is computed up front). Callers that flush repeatedly keep one
// long-lived buffer and pass dst[:0], so the encode itself allocates
// nothing at steady state — the only remaining per-flush allocation is the
// immutable register value the bytes are copied into (messages retain their
// values, so they must not alias a reused buffer). keys must hold exactly
// m's keys in ascending order.
func AppendSorted(dst []byte, keys []string, m map[string]string) []byte {
	size := 1 + varintLen(uint64(len(keys)))
	for _, k := range keys {
		v := m[k]
		size += varintLen(uint64(len(k))) + len(k) + varintLen(uint64(len(v))) + len(v)
	}
	if cap(dst)-len(dst) < size {
		grown := make([]byte, len(dst), len(dst)+size)
		copy(grown, dst)
		dst = grown
	}
	dst = append(dst, binaryMagic)
	dst = binary.AppendUvarint(dst, uint64(len(keys)))
	for _, k := range keys {
		v := m[k]
		dst = binary.AppendUvarint(dst, uint64(len(k)))
		dst = append(dst, k...)
		dst = binary.AppendUvarint(dst, uint64(len(v)))
		dst = append(dst, v...)
	}
	return dst
}

// varintLen returns the encoded size of x as a uvarint.
func varintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// DecodeTable unpacks an encoded shard table in either format. The empty
// string (the register's initial value ⊥) decodes to an empty table.
func DecodeTable(s string) (map[string]string, error) {
	if s == "" {
		return map[string]string{}, nil
	}
	if s[0] == binaryMagic {
		return decodeBinary(s)
	}
	return decodeLegacy(s)
}

func decodeBinary(s string) (map[string]string, error) {
	rest := s[1:]
	n, w := uvarint(rest)
	if w <= 0 {
		return nil, fmt.Errorf("shard: truncated table entry count")
	}
	rest = rest[w:]
	if n > uint64(len(rest)) { // each entry costs ≥ 2 bytes; cheap bound against forged counts
		return nil, fmt.Errorf("shard: table entry count %d exceeds payload", n)
	}
	m := make(map[string]string, n)
	for i := uint64(0); i < n; i++ {
		var k, v string
		var err error
		if k, rest, err = cutPrefixed(rest, "key"); err != nil {
			return nil, err
		}
		if v, rest, err = cutPrefixed(rest, "value"); err != nil {
			return nil, err
		}
		m[k] = v
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("shard: %d trailing bytes after table entries", len(rest))
	}
	return m, nil
}

// cutPrefixed cuts one varint-length-prefixed field off the front of s.
func cutPrefixed(s, what string) (field, rest string, err error) {
	n, w := uvarint(s)
	if w <= 0 || n > uint64(len(s)-w) {
		return "", "", fmt.Errorf("shard: truncated table %s", what)
	}
	return s[w : w+int(n)], s[w+int(n):], nil
}

// uvarint is binary.Uvarint over a string, avoiding a []byte conversion.
func uvarint(s string) (uint64, int) {
	var x uint64
	var shift uint
	for i := 0; i < len(s); i++ {
		b := s[i]
		if b < 0x80 {
			if i > 9 || i == 9 && b > 1 {
				return 0, -(i + 1) // overflow
			}
			return x | uint64(b)<<shift, i + 1
		}
		x |= uint64(b&0x7f) << shift
		shift += 7
	}
	return 0, 0
}

// legacyEncodeTable emits the pre-binary text format. Kept (unexported) as
// the reference encoder for compatibility tests and the codec benchmark;
// production encoding is binary-only.
func legacyEncodeTable(m map[string]string) string {
	if len(m) == 0 {
		return legacyEmptyTable
	}
	keys := SortedKeys(m)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(url.QueryEscape(k))
		b.WriteByte('=')
		b.WriteString(url.QueryEscape(m[k]))
	}
	return b.String()
}

func decodeLegacy(s string) (map[string]string, error) {
	m := make(map[string]string)
	if s == legacyEmptyTable {
		return m, nil
	}
	for _, pair := range strings.Split(s, "&") {
		eq := strings.IndexByte(pair, '=')
		if eq < 0 {
			return nil, fmt.Errorf("shard: malformed table entry %q", pair)
		}
		k, err := url.QueryUnescape(pair[:eq])
		if err != nil {
			return nil, fmt.Errorf("shard: malformed table key %q: %w", pair[:eq], err)
		}
		v, err := url.QueryUnescape(pair[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("shard: malformed table value %q: %w", pair[eq+1:], err)
		}
		m[k] = v
	}
	return m, nil
}

// SortedKeys returns m's keys in ascending order.
func SortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// InsertSorted inserts key into the ascending slice keys if absent,
// returning the updated slice. Writers maintain their shard's key slice
// with this instead of re-sorting per encode.
func InsertSorted(keys []string, key string) []string {
	i := sort.SearchStrings(keys, key)
	if i < len(keys) && keys[i] == key {
		return keys
	}
	keys = append(keys, "")
	copy(keys[i+1:], keys[i:])
	keys[i] = key
	return keys
}

// RemoveSorted removes key from the ascending slice keys if present.
func RemoveSorted(keys []string, key string) []string {
	i := sort.SearchStrings(keys, key)
	if i >= len(keys) || keys[i] != key {
		return keys
	}
	return append(keys[:i], keys[i+1:]...)
}
