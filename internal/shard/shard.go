// Package shard provides the machinery of the keyed multi-register Store
// layer: hash-based routing of keys onto N independent atomic registers, a
// lazily-instantiated per-shard table, a blocking pool of client handles,
// and the codec that packs one shard's key→value table into a single
// register value.
//
// The layering mirrors the paper's cloud key-value scenario (Section 1.1):
// each shard is one robust atomic SWMR register hosted on the same S = 3t+1
// Byzantine-prone objects; a key's reads and writes are the projection of
// that register's atomic operations, so per-key atomicity follows directly
// from per-register atomicity.
package shard

import (
	"fmt"
	"sync"
)

// Router maps keys onto shard indices 0..N-1 with FNV-1a hashing. The zero
// value routes everything to shard 0.
type Router struct {
	n int
}

// NewRouter returns a router over n shards (n ≥ 1).
func NewRouter(n int) (Router, error) {
	if n < 1 {
		return Router{}, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	return Router{n: n}, nil
}

// N returns the shard count.
func (r Router) N() int {
	if r.n == 0 {
		return 1
	}
	return r.n
}

// Locate returns key's shard index.
func (r Router) Locate(key string) int {
	// FNV-1a, inlined to avoid allocating a hash.Hash per lookup.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return int(h % uint64(r.N()))
}

// Lazy is a fixed-size table of per-shard values built on first use. Each
// slot locks independently, so building one shard (which may involve a slow
// network recovery read) never stalls operations on other shards. A slot
// whose build fails stays empty and is retried on the next Get, so a
// transient failure (e.g. an unreachable cluster during shard recovery) does
// not poison the shard forever.
type Lazy[T any] struct {
	build func(int) (T, error)
	slots []lazySlot[T]
}

type lazySlot[T any] struct {
	mu    sync.Mutex
	built bool
	val   T
}

// NewLazy returns a table of n slots built by build (called at most once per
// slot per success).
func NewLazy[T any](n int, build func(int) (T, error)) *Lazy[T] {
	return &Lazy[T]{build: build, slots: make([]lazySlot[T], n)}
}

// Get returns slot i, building it on first touch. Concurrent Gets of the
// same slot observe a single build; Gets of different slots never contend.
func (l *Lazy[T]) Get(i int) (T, error) {
	if i < 0 || i >= len(l.slots) {
		var zero T
		return zero, fmt.Errorf("shard: slot %d out of 0..%d", i, len(l.slots)-1)
	}
	s := &l.slots[i]
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.built {
		v, err := l.build(i)
		if err != nil {
			var zero T
			return zero, err
		}
		s.built, s.val = true, v
	}
	return s.val, nil
}

// Built returns the values instantiated so far, in slot order.
func (l *Lazy[T]) Built() []T {
	var out []T
	for i := range l.slots {
		s := &l.slots[i]
		s.mu.Lock()
		if s.built {
			out = append(out, s.val)
		}
		s.mu.Unlock()
	}
	return out
}

// Pool is a fixed-size blocking pool of client handles. The model's reader
// identities must each be used by at most one client at a time; the pool
// enforces that by handing a handle to exactly one acquirer until released.
type Pool[T any] struct {
	ch chan T
}

// NewPool returns a pool holding the given handles.
func NewPool[T any](items []T) *Pool[T] {
	p := &Pool[T]{ch: make(chan T, len(items))}
	for _, it := range items {
		p.ch <- it
	}
	return p
}

// Acquire takes a handle, blocking until one is free.
func (p *Pool[T]) Acquire() T { return <-p.ch }

// Release returns a handle to the pool.
func (p *Pool[T]) Release(v T) {
	select {
	case p.ch <- v:
	default:
		panic("shard: pool release without acquire")
	}
}
