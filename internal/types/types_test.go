package types

import (
	"testing"
	"testing/quick"
)

func TestValueBottom(t *testing.T) {
	if !Bottom.IsBottom() || !Value("").IsBottom() {
		t.Error("bottom detection")
	}
	if Value("x").IsBottom() {
		t.Error("non-bottom flagged")
	}
	if Bottom.String() != "⊥" || Value("x").String() != "x" {
		t.Error("value rendering")
	}
}

func TestTSOrdering(t *testing.T) {
	// Lexicographic (Seq, WID): sequence number first, writer id breaks ties.
	a, b, c := TS{Seq: 1, WID: 9}, TS{Seq: 2, WID: 0}, TS{Seq: 2, WID: 3}
	if !a.Less(b) || !b.Less(c) || !a.Less(c) || c.Less(a) || a.Less(a) {
		t.Error("lexicographic order broken")
	}
	if MaxTS(a, c) != c || MaxTS(c, a) != c || MaxTS(b, b) != b {
		t.Error("MaxTS")
	}
	if n := c.Next(7); n.Seq != 3 || n.WID != 7 {
		t.Errorf("Next = %v", n)
	}
	if !(TS{}).IsZero() || (TS{WID: 1}).IsZero() || !At(0).IsZero() {
		t.Error("IsZero")
	}
	if At(5).String() != "5" || (TS{Seq: 5, WID: 2}).String() != "5.2" {
		t.Errorf("String: %q %q", At(5), TS{Seq: 5, WID: 2})
	}
}

func TestPairOrdering(t *testing.T) {
	if !BottomPair.IsBottom() || !BottomPair.TS.IsZero() {
		t.Error("bottom pair")
	}
	a, b := Pair{TS: At(1), Val: "a"}, Pair{TS: At(2), Val: "b"}
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less")
	}
	if MaxPair(a, b) != b || MaxPair(b, a) != b || MaxPair(a, a) != a {
		t.Error("MaxPair")
	}
	if got := a.String(); got != "(1,a)" {
		t.Errorf("String = %q", got)
	}
}

func TestMaxPairProperties(t *testing.T) {
	// MaxPair is commutative up to timestamp ties and always returns one of
	// its arguments with the maximal timestamp.
	f := func(s1, s2, w1, w2 int64, v1, v2 string) bool {
		a := Pair{TS: TS{Seq: s1, WID: w1}, Val: Value(v1)}
		b := Pair{TS: TS{Seq: s2, WID: w2}, Val: Value(v2)}
		m := MaxPair(a, b)
		if m != a && m != b {
			return false
		}
		return !m.TS.Less(a.TS) && !m.TS.Less(b.TS)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcIDs(t *testing.T) {
	if Writer.String() != "w" || !Writer.IsClient() {
		t.Error("writer id")
	}
	if Reader(3).String() != "r3" || !Reader(3).IsClient() {
		t.Error("reader id")
	}
	if Server(7).String() != "s7" || Server(7).IsClient() {
		t.Error("server id")
	}
	if KindWriter.String() != "w" || KindReader.String() != "r" || KindServer.String() != "s" {
		t.Error("kind strings")
	}
	if ProcKind(99).String() != "?" {
		t.Error("unknown kind")
	}
}

func TestRegIDs(t *testing.T) {
	if WriterReg.String() != "REGw" {
		t.Errorf("writer reg = %q", WriterReg.String())
	}
	if ReaderReg(2).String() != "REGr2" {
		t.Errorf("reader reg = %q", ReaderReg(2).String())
	}
	if WriterReg == ReaderReg(0) {
		t.Error("register classes collide")
	}
}

func TestMsgKindStrings(t *testing.T) {
	kinds := []MsgKind{
		MsgPreWrite, MsgWrite, MsgRead1, MsgWriteBack, MsgAck, MsgState,
		MsgABDQuery, MsgABDStore, MsgABDVal, MsgConfirm, MsgMux,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d renders %q (dup or empty)", k, s)
		}
		seen[s] = true
	}
	if MsgKind(99).String() != "MSG(99)" {
		t.Error("unknown kind rendering")
	}
}

func TestMessageClone(t *testing.T) {
	m := Message{
		Kind: MsgMux,
		Sub: []SubMsg{
			{Reg: WriterReg, Msg: Message{Kind: MsgWrite, Pair: Pair{TS: At(1), Val: "a"}}},
		},
	}
	c := m.Clone()
	c.Sub[0].Msg.Pair.Val = "mutated"
	if m.Sub[0].Msg.Pair.Val != "a" {
		t.Error("Clone aliases Sub")
	}
}

func TestMessageString(t *testing.T) {
	if s := (Message{Kind: MsgState, PW: Pair{TS: At(1), Val: "a"}, W: BottomPair}).String(); s != "STATE{pw:(1,a) w:(0,⊥)}" {
		t.Errorf("state string = %q", s)
	}
	if s := (Message{Kind: MsgMux, Sub: make([]SubMsg, 3)}).String(); s != "MUX{3 subs}" {
		t.Errorf("mux string = %q", s)
	}
	if s := (Message{Kind: MsgWrite, Pair: Pair{TS: At(2), Val: "b"}}).String(); s != "WRITE(2,b)" {
		t.Errorf("write string = %q", s)
	}
}
