// Package types defines the shared vocabulary of the robust atomic storage
// implementation: register values, timestamp-value pairs, process identities
// and the wire message exchanged between clients and storage objects.
//
// The model follows Section 2 of "The Complexity of Robust Atomic Storage"
// (Dobre, Guerraoui, Majuntke, Suri, Vukolić; PODC 2011): a single writer w,
// readers r_1..r_R and storage objects s_1..s_S communicate over reliable
// point-to-point channels. Objects only reply to client messages; clients
// fail by crashing; up to t objects are Byzantine.
package types

import (
	"fmt"
	"strconv"
)

// Value is the register value domain. The initial register value is the
// reserved Bottom value, which is not a valid input to a write operation
// (Section 2.2 of the paper).
type Value string

// Bottom is the initial register value ⊥.
const Bottom Value = ""

// IsBottom reports whether v is the reserved initial value ⊥.
func (v Value) IsBottom() bool { return v == Bottom }

// String implements fmt.Stringer, rendering ⊥ visibly.
func (v Value) String() string {
	if v.IsBottom() {
		return "⊥"
	}
	return string(v)
}

// Pair is a timestamp-value pair. Timestamps are assigned by the single
// writer and are totally ordered; the pair with TS 0 is the initial pair
// holding ⊥. Pair is comparable (usable as a map key), which the protocols
// rely on for exact-match certification of genuinely written pairs.
type Pair struct {
	TS  int64
	Val Value
}

// BottomPair is the initial register state (timestamp 0, value ⊥).
var BottomPair = Pair{TS: 0, Val: Bottom}

// Less orders pairs by timestamp. Values never disagree for equal timestamps
// of genuine pairs because only the writer issues timestamps.
func (p Pair) Less(q Pair) bool { return p.TS < q.TS }

// IsBottom reports whether p is the initial pair.
func (p Pair) IsBottom() bool { return p.TS == 0 }

// String implements fmt.Stringer.
func (p Pair) String() string {
	return "(" + strconv.FormatInt(p.TS, 10) + "," + p.Val.String() + ")"
}

// MaxPair returns the pair with the larger timestamp.
func MaxPair(a, b Pair) Pair {
	if a.TS >= b.TS {
		return a
	}
	return b
}

// Token is a secret value attached to write phases in the stronger model of
// [DMSS09] (Section 5 of the paper). Tokens are unguessable nonces: a
// Byzantine object can replay tokens it received but cannot fabricate ones it
// has not seen. Token 0 means "no token" (unauthenticated model).
type Token uint64

// ProcKind distinguishes the three disjoint process sets of the model.
type ProcKind int

// Process kinds. Enums start at one so the zero ProcID is invalid.
const (
	KindWriter ProcKind = iota + 1
	KindReader
	KindServer
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case KindWriter:
		return "w"
	case KindReader:
		return "r"
	case KindServer:
		return "s"
	default:
		return "?"
	}
}

// ProcID identifies a process. Writers are {KindWriter, 0}; readers are
// {KindReader, i} with i ≥ 1; servers (storage objects) are {KindServer, i}
// with i ≥ 1 matching the paper's s_1..s_S.
type ProcID struct {
	Kind ProcKind
	Idx  int
}

// Writer is the identity of the single writer process.
var Writer = ProcID{Kind: KindWriter}

// Reader returns the identity of reader r_i (1-based).
func Reader(i int) ProcID { return ProcID{Kind: KindReader, Idx: i} }

// Server returns the identity of storage object s_i (1-based).
func Server(i int) ProcID { return ProcID{Kind: KindServer, Idx: i} }

// IsClient reports whether the process is a writer or reader.
func (p ProcID) IsClient() bool { return p.Kind == KindWriter || p.Kind == KindReader }

// String implements fmt.Stringer.
func (p ProcID) String() string {
	if p.Kind == KindWriter {
		return "w"
	}
	return fmt.Sprintf("%s%d", p.Kind, p.Idx)
}

// RegClass distinguishes the register instances multiplexed onto one physical
// object by the regular→atomic transformation (Section 5, footnote 6): one
// register owned by the writer plus one write-back register per reader.
type RegClass int

// Register classes.
const (
	RegWriter RegClass = iota + 1 // the writer's SWMR regular register
	RegReader                     // reader i's write-back register
)

// RegID identifies one register instance hosted on the storage objects.
type RegID struct {
	Class RegClass
	Idx   int // reader index for RegReader; 0 for RegWriter
}

// WriterReg is the RegID of the writer's register.
var WriterReg = RegID{Class: RegWriter}

// ReaderReg returns the RegID of reader i's write-back register.
func ReaderReg(i int) RegID { return RegID{Class: RegReader, Idx: i} }

// String implements fmt.Stringer.
func (r RegID) String() string {
	if r.Class == RegWriter {
		return "REGw"
	}
	return fmt.Sprintf("REGr%d", r.Idx)
}

// MsgKind enumerates protocol message types across all implemented protocols.
type MsgKind int

// Message kinds. One shared message vocabulary keeps the simulator, the live
// runtime and the TCP wire format uniform across protocols.
const (
	// Regular register protocol (internal/regular) and derivatives.
	MsgPreWrite  MsgKind = iota + 1 // writer round 1: store pair in pw
	MsgWrite                        // writer round 2: store pair in w
	MsgRead1                        // reader round 1: query (pw, w)
	MsgWriteBack                    // reader round 2: install certified pair
	MsgAck                          // generic acknowledgement
	MsgState                        // reply carrying (pw, w) state

	// ABD protocol (internal/abd).
	MsgABDQuery // read phase 1 / write phase 0: query timestamp
	MsgABDStore // store a pair
	MsgABDVal   // reply carrying a pair

	// Retry baseline (internal/retry).
	MsgConfirm // ask whether object vouches for a pair

	// Multiplexed physical round of the atomic transformation.
	MsgMux // bundle of per-register sub-messages
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case MsgPreWrite:
		return "PREWRITE"
	case MsgWrite:
		return "WRITE"
	case MsgRead1:
		return "READ1"
	case MsgWriteBack:
		return "WRITEBACK"
	case MsgAck:
		return "ACK"
	case MsgState:
		return "STATE"
	case MsgABDQuery:
		return "ABD_QUERY"
	case MsgABDStore:
		return "ABD_STORE"
	case MsgABDVal:
		return "ABD_VAL"
	case MsgConfirm:
		return "CONFIRM"
	case MsgMux:
		return "MUX"
	default:
		return "MSG(" + strconv.Itoa(int(k)) + ")"
	}
}

// SubMsg is a per-register payload inside a multiplexed physical round.
type SubMsg struct {
	Reg RegID
	Msg Message
}

// Message is the single wire message type. Fields beyond Kind are
// kind-specific; unused fields stay at their zero values. Using one concrete
// struct (rather than an interface hierarchy) keeps messages trivially
// copyable, comparable where needed, gob-encodable for the TCP transport and
// forgeable by simulated Byzantine objects.
type Message struct {
	Kind MsgKind

	// Pair carries the written / queried / written-back pair.
	Pair Pair

	// PW and W carry an object's state in MsgState replies.
	PW Pair
	W  Pair

	// Token carries the secret value of the [DMSS09] model; TokenPW is the
	// token the object received with its current pw pair, Token the one with
	// its current w pair (or the fresh token on writes).
	Token   Token
	TokenPW Token

	// Seq numbers rounds within an operation so late replies from earlier
	// rounds are never mistaken for current-round replies.
	Seq int

	// Sub carries the per-register payloads of a MsgMux bundle.
	Sub []SubMsg
}

// Clone returns a deep copy of m (the Sub slice is copied).
func (m Message) Clone() Message {
	out := m
	if m.Sub != nil {
		out.Sub = make([]SubMsg, len(m.Sub))
		for i, sm := range m.Sub {
			out.Sub[i] = SubMsg{Reg: sm.Reg, Msg: sm.Msg.Clone()}
		}
	}
	return out
}

// String implements fmt.Stringer.
func (m Message) String() string {
	switch m.Kind {
	case MsgState:
		return fmt.Sprintf("STATE{pw:%s w:%s}", m.PW, m.W)
	case MsgMux:
		return fmt.Sprintf("MUX{%d subs}", len(m.Sub))
	default:
		return fmt.Sprintf("%s%s", m.Kind, m.Pair)
	}
}
