// Package types defines the shared vocabulary of the robust atomic storage
// implementation: register values, timestamp-value pairs, process identities
// and the wire message exchanged between clients and storage objects.
//
// The model extends Section 2 of "The Complexity of Robust Atomic Storage"
// (Dobre, Guerraoui, Majuntke, Suri, Vukolić; PODC 2011) from single-writer
// to multi-writer registers: writers w_1..w_W, readers r_1..r_R and storage
// objects s_1..s_S communicate over reliable point-to-point channels. Objects
// only reply to client messages; clients fail by crashing; up to t objects
// are Byzantine.
//
// The multi-writer extension replaces the paper's scalar timestamp with the
// classical lexicographically ordered (Seq, WriterID) pair (as in multi-writer
// ABD and the multi-writer data stores of Chockler et al. and RADON): two
// writers that concurrently pick the same sequence number still issue
// distinct, totally ordered timestamps. A writer learns the sequence number
// to exceed adaptively (internal/core): the optimistic fast path certifies
// its cached successor inside the 2-round write itself — the SWMR optimum —
// and only actual interference costs the extra discovery round the PODC
// 2011 lower bounds price into giving up the single-writer assumption.
package types

import (
	"fmt"
	"strconv"
	"strings"
)

// Value is the register value domain. The initial register value is the
// reserved Bottom value, which is not a valid input to a write operation
// (Section 2.2 of the paper).
type Value string

// Bottom is the initial register value ⊥.
const Bottom Value = ""

// IsBottom reports whether v is the reserved initial value ⊥.
func (v Value) IsBottom() bool { return v == Bottom }

// String implements fmt.Stringer, rendering ⊥ visibly.
func (v Value) String() string {
	if v.IsBottom() {
		return "⊥"
	}
	return string(v)
}

// TS is a multi-writer register timestamp: a lexicographically ordered
// (Seq, WriterID) pair. Seq is the sequence number a writer picked in its
// timestamp-discovery round; WID is the writer's identity, breaking ties
// between writers that concurrently picked the same sequence number. The
// zero TS is the timestamp of the initial pair holding ⊥. TS is comparable
// (usable as a map key).
type TS struct {
	Seq int64
	WID int64
}

// At is shorthand for a single-writer timestamp (WID 0) — the form every
// pre-multi-writer timestamp of this repository takes.
func At(seq int64) TS { return TS{Seq: seq} }

// Less orders timestamps lexicographically by (Seq, WID).
func (t TS) Less(u TS) bool {
	if t.Seq != u.Seq {
		return t.Seq < u.Seq
	}
	return t.WID < u.WID
}

// IsZero reports whether t is the initial timestamp.
func (t TS) IsZero() bool { return t == TS{} }

// Next returns the successor timestamp owned by writer wid: sequence number
// one past t's, tagged with wid.
func (t TS) Next(wid int64) TS { return TS{Seq: t.Seq + 1, WID: wid} }

// MaxTS returns the lexicographically larger timestamp.
func MaxTS(a, b TS) TS {
	if a.Less(b) {
		return b
	}
	return a
}

// String implements fmt.Stringer. Single-writer timestamps (WID 0) render as
// the bare sequence number, matching the repository's pre-multi-writer
// rendering; multi-writer timestamps render as seq.wid.
func (t TS) String() string {
	if t.WID == 0 {
		return strconv.FormatInt(t.Seq, 10)
	}
	return strconv.FormatInt(t.Seq, 10) + "." + strconv.FormatInt(t.WID, 10)
}

// Pair is a timestamp-value pair. Timestamps are totally ordered by the
// lexicographic (Seq, WriterID) order; the pair with the zero TS is the
// initial pair holding ⊥. Pair is comparable (usable as a map key), which
// the protocols rely on for exact-match certification of genuinely written
// pairs.
type Pair struct {
	TS  TS
	Val Value
}

// BottomPair is the initial register state (zero timestamp, value ⊥).
var BottomPair = Pair{TS: TS{}, Val: Bottom}

// Less orders pairs by timestamp. Values never disagree for equal timestamps
// of genuine pairs because a timestamp embeds its writer's identity and each
// writer issues any given sequence number at most once.
func (p Pair) Less(q Pair) bool { return p.TS.Less(q.TS) }

// IsBottom reports whether p is the initial pair.
func (p Pair) IsBottom() bool { return p.TS.IsZero() }

// String implements fmt.Stringer.
func (p Pair) String() string {
	return "(" + p.TS.String() + "," + p.Val.String() + ")"
}

// MaxPair returns the pair with the larger timestamp.
func MaxPair(a, b Pair) Pair {
	if b.TS.Less(a.TS) || a.TS == b.TS {
		return a
	}
	return b
}

// Token is a secret value attached to write phases in the stronger model of
// [DMSS09] (Section 5 of the paper). Tokens are unguessable nonces: a
// Byzantine object can replay tokens it received but cannot fabricate ones it
// has not seen. Token 0 means "no token" (unauthenticated model).
type Token uint64

// ProcKind distinguishes the three disjoint process sets of the model.
type ProcKind int

// Process kinds. Enums start at one so the zero ProcID is invalid.
const (
	KindWriter ProcKind = iota + 1
	KindReader
	KindServer
)

// String implements fmt.Stringer.
func (k ProcKind) String() string {
	switch k {
	case KindWriter:
		return "w"
	case KindReader:
		return "r"
	case KindServer:
		return "s"
	default:
		return "?"
	}
}

// ProcID identifies a process. Writers are {KindWriter, i} with i ≥ 0 (i is
// the WriterID embedded in the timestamps the writer issues); readers are
// {KindReader, i} with i ≥ 1; servers (storage objects) are {KindServer, i}
// with i ≥ 1 matching the paper's s_1..s_S.
type ProcID struct {
	Kind ProcKind
	Idx  int
}

// Writer is the identity of writer 0 — the default writer, and the only one
// of the original single-writer deployments.
var Writer = ProcID{Kind: KindWriter}

// WriterID returns the identity of writer w_i (0-based; 0 is the default
// writer). Distinct concurrent writer processes must use distinct ids.
func WriterID(i int) ProcID { return ProcID{Kind: KindWriter, Idx: i} }

// Reader returns the identity of reader r_i (1-based).
func Reader(i int) ProcID { return ProcID{Kind: KindReader, Idx: i} }

// Server returns the identity of storage object s_i (1-based).
func Server(i int) ProcID { return ProcID{Kind: KindServer, Idx: i} }

// IsClient reports whether the process is a writer or reader.
func (p ProcID) IsClient() bool { return p.Kind == KindWriter || p.Kind == KindReader }

// String implements fmt.Stringer. The default writer renders as the paper's
// bare "w"; further writers carry their id.
func (p ProcID) String() string {
	if p.Kind == KindWriter && p.Idx == 0 {
		return "w"
	}
	return fmt.Sprintf("%s%d", p.Kind, p.Idx)
}

// RegClass distinguishes the register instances multiplexed onto one physical
// object by the regular→atomic transformation (Section 5, footnote 6): one
// register shared by all writers plus one write-back register per reader.
type RegClass int

// Register classes.
const (
	// RegWriter is the writers' MWMR regular register: every writer writes
	// here, at timestamps totally ordered by (Seq, WriterID).
	RegWriter RegClass = iota + 1
	// RegReader is reader i's write-back register, single-writer-owned by
	// that reader (its timestamps keep WID 0).
	RegReader
)

// RegID identifies one register instance hosted on the storage objects.
type RegID struct {
	Class RegClass
	Idx   int // reader index for RegReader; 0 for RegWriter
}

// WriterReg is the RegID of the writer's register.
var WriterReg = RegID{Class: RegWriter}

// ReaderReg returns the RegID of reader i's write-back register.
func ReaderReg(i int) RegID { return RegID{Class: RegReader, Idx: i} }

// String implements fmt.Stringer.
func (r RegID) String() string {
	if r.Class == RegWriter {
		return "REGw"
	}
	return fmt.Sprintf("REGr%d", r.Idx)
}

// MsgKind enumerates protocol message types across all implemented protocols.
type MsgKind int

// Message kinds. One shared message vocabulary keeps the simulator, the live
// runtime and the TCP wire format uniform across protocols.
const (
	// Regular register protocol (internal/regular) and derivatives.
	MsgPreWrite  MsgKind = iota + 1 // writer round 1: store pair in pw
	MsgWrite                        // writer round 2: store pair in w
	MsgRead1                        // reader round 1 / writer discovery: query (pw, w)
	MsgWriteBack                    // reader round 2: install certified pair
	MsgAck                          // generic acknowledgement
	MsgState                        // reply carrying (pw, w) state

	// ABD protocol (internal/abd).
	MsgABDQuery // read phase 1 / write phase 0: query timestamp
	MsgABDStore // store a pair
	MsgABDVal   // reply carrying a pair

	// Retry baseline (internal/retry).
	MsgConfirm // ask whether object vouches for a pair

	// Multiplexed physical round of the atomic transformation.
	MsgMux // bundle of per-register sub-messages

	// Dynamic reconfiguration (internal/config): an object refusing a
	// request stamped with a configuration epoch older than its active one.
	// The reply's Pair carries the refusing object's view of the new
	// configuration: Pair.TS.Seq is the active epoch and Pair.Val the
	// encoded config.Config, so redirected clients can refetch without an
	// extra round (the hint is still certified by a quorum read before it
	// is trusted — a Byzantine object can fabricate it).
	MsgWrongEpoch
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case MsgPreWrite:
		return "PREWRITE"
	case MsgWrite:
		return "WRITE"
	case MsgRead1:
		return "READ1"
	case MsgWriteBack:
		return "WRITEBACK"
	case MsgAck:
		return "ACK"
	case MsgState:
		return "STATE"
	case MsgABDQuery:
		return "ABD_QUERY"
	case MsgABDStore:
		return "ABD_STORE"
	case MsgABDVal:
		return "ABD_VAL"
	case MsgConfirm:
		return "CONFIRM"
	case MsgMux:
		return "MUX"
	case MsgWrongEpoch:
		return "WRONG_EPOCH"
	default:
		return "MSG(" + strconv.Itoa(int(k)) + ")"
	}
}

// SubMsg is a per-register payload inside a multiplexed physical round.
type SubMsg struct {
	Reg RegID
	Msg Message
}

// Message is the single wire message type. Fields beyond Kind are
// kind-specific; unused fields stay at their zero values. Using one concrete
// struct (rather than an interface hierarchy) keeps messages trivially
// copyable, comparable where needed, gob-encodable for the TCP transport and
// forgeable by simulated Byzantine objects.
type Message struct {
	Kind MsgKind

	// Pair carries the written / queried / written-back pair.
	Pair Pair

	// PW and W carry an object's state in MsgState replies.
	PW Pair
	W  Pair

	// Token carries the secret value of the [DMSS09] model; TokenPW is the
	// token the object received with its current pw pair, Token the one with
	// its current w pair (or the fresh token on writes).
	Token   Token
	TokenPW Token

	// Seq numbers rounds within an operation so late replies from earlier
	// rounds are never mistaken for current-round replies.
	Seq int

	// Sub carries the per-register payloads of a MsgMux bundle.
	Sub []SubMsg
}

// TraceNote renders a compact payload summary for per-object trace events.
// Multiplexed bundles list the register instances they actually carry —
// which is exactly what a sub-bundle-withholding fault hides from the
// accumulators — other kinds render as their name.
func (m Message) TraceNote() string {
	if m.Kind != MsgMux {
		return m.Kind.String()
	}
	var b strings.Builder
	b.WriteString("MUX[")
	for i, sm := range m.Sub {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(sm.Reg.String())
	}
	b.WriteByte(']')
	return b.String()
}

// Clone returns a deep copy of m (the Sub slice is copied).
func (m Message) Clone() Message {
	out := m
	if m.Sub != nil {
		out.Sub = make([]SubMsg, len(m.Sub))
		for i, sm := range m.Sub {
			out.Sub[i] = SubMsg{Reg: sm.Reg, Msg: sm.Msg.Clone()}
		}
	}
	return out
}

// String implements fmt.Stringer.
func (m Message) String() string {
	switch m.Kind {
	case MsgState:
		return fmt.Sprintf("STATE{pw:%s w:%s}", m.PW, m.W)
	case MsgMux:
		return fmt.Sprintf("MUX{%d subs}", len(m.Sub))
	default:
		return fmt.Sprintf("%s%s", m.Kind, m.Pair)
	}
}
