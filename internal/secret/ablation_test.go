package secret

import (
	"testing"

	"robustatomic/internal/types"
)

// TestAblationColludingForgersCannotHitFastPath is the DESIGN.md §7
// ablation: even if all t Byzantine objects collude on an identical
// fabricated (pair, token) tuple, the fast path's 2t+1 unanimity threshold
// keeps them short by t+1 — at least t+1 correct objects must hold the
// tuple, which forgers can never arrange. This is why the fast path is safe
// even though the reader cannot verify tokens itself.
func TestAblationColludingForgersCannotHitFastPath(t *testing.T) {
	for _, tt := range []int{1, 2, 3} {
		thr := th(t, 3*tt+1, tt)
		acc := NewFastAcc(thr)
		forged := types.Message{
			Kind:  types.MsgState,
			W:     types.Pair{TS: types.At(1 << 30), Val: "colluded"},
			Token: 0xdead,
		}
		for sid := 1; sid <= tt; sid++ {
			acc.Add(sid, forged)
		}
		if _, ok := acc.Fast(); ok {
			t.Fatalf("t=%d: %d colluders reached the fast path", tt, tt)
		}
		// Correct objects answering genuinely terminate the round without a
		// fast hit (slow path), never adopting the forgery.
		genuine := types.Message{Kind: types.MsgState, W: types.Pair{TS: types.At(1), Val: "a"}, Token: 7}
		for sid := tt + 1; sid <= thr.Quorum()+tt; sid++ {
			acc.Add(sid, genuine)
		}
		if !acc.Done() {
			t.Fatalf("t=%d: round not terminated at quorum", tt)
		}
		if p, ok := acc.Fast(); ok && p.Val == "colluded" {
			t.Fatalf("t=%d: forgery won the fast path", tt)
		}
	}
}

// TestAblationFastPathNeedsUnanimity shows the flip side: with 2t+1
// identical genuine tuples the fast path fires in a single round.
func TestAblationFastPathNeedsUnanimity(t *testing.T) {
	thr := th(t, 7, 2)
	acc := NewFastAcc(thr)
	genuine := types.Message{Kind: types.MsgState, W: types.Pair{TS: types.At(3), Val: "v"}, Token: 5}
	for sid := 1; sid <= 4; sid++ {
		acc.Add(sid, genuine)
	}
	if _, ok := acc.Fast(); ok {
		t.Fatal("fast path below 2t+1 matches")
	}
	acc.Add(5, genuine)
	p, ok := acc.Fast()
	if !ok || p != (types.Pair{TS: types.At(3), Val: "v"}) {
		t.Fatalf("fast path = %v, %v", p, ok)
	}
	// A mismatching token on the same pair must not count toward unanimity.
	acc2 := NewFastAcc(thr)
	for sid := 1; sid <= 4; sid++ {
		acc2.Add(sid, genuine)
	}
	other := genuine
	other.Token = 6
	acc2.Add(5, other)
	if _, ok := acc2.Fast(); ok {
		t.Fatal("mismatching token counted toward the unanimous tuple")
	}
}
