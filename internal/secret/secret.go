// Package secret implements the stronger-model register of the paper's
// Section 5 second composition: following [DMSS09] ("Efficient robust
// storage using secret tokens", cited as [8]), writes attach fresh
// unguessable tokens to each phase, and the adversary cannot simulate step
// contention — a Byzantine object can replay (pair, token) tuples it
// received but cannot fabricate a tuple that matches a token it never saw.
//
// Under that restriction reads of the base register complete in a SINGLE
// round whenever a quorum exhibits the same written (pair, token) tuple —
// in particular in every contention-free execution, Byzantine or not — and
// fall back to the unauthenticated two-round decision read otherwise.
// Composed with the regular→atomic transformation this yields the paper's
// "2-round write, 3-round read" atomic storage in the secret-value model
// (3 rounds in contention-free executions; our implementation degrades to 4
// under read/write contention, a documented approximation of [8], whose
// full protocol keeps 3 worst-case — see DESIGN.md).
package secret

import (
	"fmt"
	"math/rand"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// Writer wraps the two-phase writer with fresh tokens per write.
type Writer struct {
	inner *regular.Writer
}

// NewWriter returns the writer handle; rng generates the secret tokens
// (pass a crypto-strength source in production; tests use seeded PRNGs).
func NewWriter(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand) *Writer {
	return NewWriterAt(r, th, rng, 0, types.TS{})
}

// NewWriterAt returns the handle of writer wid resuming from a known last
// timestamp.
func NewWriterAt(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand, wid int64, last types.TS) *Writer {
	inner := regular.NewWriterAt(r, th, types.WriterReg, wid, last)
	inner.NextToken = func() types.Token {
		for {
			if tok := types.Token(rng.Uint64()); tok != 0 {
				return tok
			}
		}
	}
	return &Writer{inner: inner}
}

// Write stores v in two rounds, attaching a fresh token.
func (w *Writer) Write(v types.Value) error {
	if err := w.inner.Write(v); err != nil {
		return fmt.Errorf("secret: %w", err)
	}
	return nil
}

// WritePair stores an explicit pair (the atomic composition supplies
// multi-writer timestamps through here), attaching a fresh token.
func (w *Writer) WritePair(p types.Pair) error {
	if err := w.inner.WritePair(p); err != nil {
		return fmt.Errorf("secret: %w", err)
	}
	return nil
}

// PreWritePair runs only the (token-carrying) PREWRITE round, returning the
// quorum's prior-timestamp report — the optimistic fast path's validation
// input (see core.PairWriter).
func (w *Writer) PreWritePair(p types.Pair) (types.TS, error) {
	prior, err := w.inner.PreWritePair(p)
	if err != nil {
		return types.TS{}, fmt.Errorf("secret: %w", err)
	}
	return prior, nil
}

// CommitPair completes the write pre-written by the immediately preceding
// PreWritePair, reusing its token.
func (w *Writer) CommitPair(p types.Pair) error {
	if err := w.inner.CommitPair(p); err != nil {
		return fmt.Errorf("secret: %w", err)
	}
	return nil
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() types.TS { return w.inner.LastTS() }

// IssuedTS returns the highest timestamp ever proposed (see
// regular.Writer.IssuedTS).
func (w *Writer) IssuedTS() types.TS { return w.inner.IssuedTS() }

// FastAcc is the single-round fast-path accumulator: it terminates with a
// decision when 2t+1 distinct objects report the identical written
// (pair, token) tuple, or without one when S−t objects have replied. The
// matched tuple is genuine (at least t+1 correct reporters) and fresh (the
// 2t+1 reporters overlap any completed write's acknowledgers in a correct
// object whose w is monotone).
type FastAcc struct {
	th      quorum.Thresholds
	Replies map[int]types.Message
	counts  map[tuple]int
	hit     *types.Pair
}

type tuple struct {
	p   types.Pair
	tok types.Token
}

var _ proto.Accumulator = (*FastAcc)(nil)

// NewFastAcc returns an empty fast-path accumulator.
func NewFastAcc(th quorum.Thresholds) *FastAcc {
	return &FastAcc{
		th:      th,
		Replies: make(map[int]types.Message, th.S),
		counts:  make(map[tuple]int, 4),
	}
}

// Add implements proto.Accumulator.
func (a *FastAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgState {
		return
	}
	if _, dup := a.Replies[sid]; dup {
		return
	}
	a.Replies[sid] = m
	tu := tuple{p: m.W, tok: m.Token}
	a.counts[tu]++
	if a.hit == nil && a.counts[tu] >= a.th.Refute() {
		p := tu.p
		a.hit = &p
	}
}

// Done implements proto.Accumulator.
func (a *FastAcc) Done() bool {
	return a.hit != nil || len(a.Replies) >= a.th.Quorum()
}

// Fast returns the fast-path decision, if any.
func (a *FastAcc) Fast() (types.Pair, bool) {
	if a.hit == nil {
		return types.Pair{}, false
	}
	return *a.hit, true
}

// WSupport returns how many distinct objects' WRITE-slot reports carry a
// timestamp at or above ts — the completeness evidence behind the atomic
// read's write-back elision (see regular.DecideAcc.WSupport and
// core.Reader.ReadPair; the secret-model composition checks it over the
// fast round's replies).
func (a *FastAcc) WSupport(ts types.TS) int {
	n := 0
	for _, m := range a.Replies {
		if !m.W.TS.Less(ts) {
			n++
		}
	}
	return n
}

// Reader reads the secret-token register: one round on the fast path, two
// on the slow path.
type Reader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	// FastPath reports whether the last read decided on its first round.
	FastPath bool
}

// NewReader returns a reader handle.
func NewReader(r proto.Rounder, th quorum.Thresholds) *Reader {
	return &Reader{rounder: r, th: th}
}

// Read returns the register value.
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair runs the fast-path round and, if contention or forgery prevented
// a unanimous quorum, the unauthenticated decision round over the frozen
// first view.
func (r *Reader) ReadPair() (types.Pair, error) {
	acc := NewFastAcc(r.th)
	spec := proto.RoundSpec{
		Label: "SREAD1",
		Req:   func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
		Acc:   acc,
	}
	if err := r.rounder.Round(spec); err != nil {
		return types.Pair{}, fmt.Errorf("secret: read round 1: %w", err)
	}
	if p, ok := acc.Fast(); ok {
		r.FastPath = true
		return p, nil
	}
	r.FastPath = false
	spec2, dec := regular.Read2Spec(r.th, types.WriterReg, acc.Replies)
	if err := r.rounder.Round(spec2); err != nil {
		return types.Pair{}, fmt.Errorf("secret: read round 2: %w", err)
	}
	return dec.Choice(), nil
}
