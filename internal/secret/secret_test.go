package secret

import (
	"fmt"
	"math/rand"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

func th(t *testing.T, s, tt int) quorum.Thresholds {
	t.Helper()
	out, err := quorum.NewThresholds(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustRun(t *testing.T, s *sim.Sim, op *sim.Op) types.Value {
	t.Helper()
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	v, err := op.Result()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

type harness struct {
	thr  quorum.Thresholds
	rng  *rand.Rand
	ts   types.TS
	seqs map[int]int64
	fast bool
}

func newHarness(thr quorum.Thresholds, seed int64) *harness {
	return &harness{thr: thr, rng: rand.New(rand.NewSource(seed)), seqs: map[int]int64{}}
}

func (h *harness) writeOp(v types.Value) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		w := NewAtomicWriterAt(c, h.thr, h.rng, 0, h.ts)
		if err := w.Write(v); err != nil {
			return types.Bottom, err
		}
		h.ts = w.LastTS()
		return types.Bottom, nil
	}
}

func (h *harness) readOp(idx, readers int) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		r := NewAtomicReaderAt(c, h.thr, h.rng, idx, readers, h.seqs[idx])
		v, err := r.Read()
		if err != nil {
			return types.Bottom, err
		}
		h.seqs[idx] = r.Seq()
		h.fast = r.FastPath
		return v, nil
	}
}

func TestBaseRegisterFastRead(t *testing.T) {
	thr := th(t, 4, 1)
	rng := rand.New(rand.NewSource(1))
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", func(c *sim.Client) (types.Value, error) {
		return types.Bottom, NewWriter(c, thr, rng).Write("a")
	})
	mustRun(t, s, w)
	if w.Rounds() != 2 {
		t.Errorf("write rounds = %d", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		r := NewReader(c, thr)
		v, err := r.Read()
		if err == nil && !r.FastPath {
			return types.Bottom, fmt.Errorf("contention-free read took the slow path")
		}
		return v, err
	})
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q", v)
	}
	if rd.Rounds() != 1 {
		t.Errorf("contention-free base read rounds = %d, want 1", rd.Rounds())
	}
}

func TestBaseRegisterSlowPathUnderStaleness(t *testing.T) {
	// A stale Byzantine object plus a slow correct one deny the unanimous
	// quorum; the read falls back to the 2-round decision and stays safe.
	thr := th(t, 4, 1)
	rng := rand.New(rand.NewSource(2))
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	var wTS types.TS
	write := func(v types.Value, sids ...int) {
		w := s.Spawn("w"+string(v), types.Writer, checker.OpWrite, v, func(c *sim.Client) (types.Value, error) {
			rw := NewWriterAt(c, thr, rng, 0, wTS) // base (non-atomic) writes only
			if err := rw.Write(v); err != nil {
				return types.Bottom, err
			}
			wTS = rw.LastTS()
			return types.Bottom, nil
		})
		if len(sids) == 0 {
			mustRun(t, s, w)
			return
		}
		s.Step(w, sids...)
		s.Step(w, sids...)
		if !w.Done() {
			t.Fatal("partial write did not complete")
		}
	}
	write("a")
	snap := s.Snapshot(1)
	write("b", 1, 3, 4) // object 2 remains stale-correct
	s.SetByzantine(1, &server.Stale{Snap: snap})
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		r := NewReader(c, thr)
		v, err := r.Read()
		if err == nil && r.FastPath {
			return types.Bottom, fmt.Errorf("read took fast path on a split view")
		}
		return v, err
	})
	if v := mustRun(t, s, rd); v != "b" {
		t.Errorf("read = %q, want b", v)
	}
}

func TestAtomicThreeRoundReads(t *testing.T) {
	// The Section 5 secret-model claim, adaptive multi-writer form: 2-round
	// writes (the two token-carrying phases — the optimistic proposal
	// certifies uncontended). Reads improve on the cited [DMSS09] 3-round
	// contention-free optimum: the fast hit's 2t+1 identical tuples are, at
	// S = 3t+1, exactly the S−t elision quorum, so a stable read is a
	// SINGLE round (worst case stays 4 — see TestRandomizedAtomicity's
	// contended runs and the core package's Prop. 1 discussion).
	thr := th(t, 4, 1)
	h := newHarness(thr, 3)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a"))
	mustRun(t, s, w)
	if w.Rounds() != 2 {
		t.Errorf("atomic write rounds = %d, want 2", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp(1, 2))
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q", v)
	}
	if !h.fast {
		t.Error("contention-free atomic read took slow path")
	}
	if rd.Rounds() != 1 {
		t.Errorf("atomic read rounds = %d, want 1 (fast path + elided write-back)", rd.Rounds())
	}
}

func TestAtomicReadsWithByzantine(t *testing.T) {
	for _, tt := range []int{1, 2} {
		S := 3*tt + 1
		thr := th(t, S, tt)
		h := newHarness(thr, int64(tt))
		hist := &checker.History{}
		s := sim.New(sim.Config{Servers: S, History: hist})
		mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
		for i := 1; i <= tt; i++ {
			s.SetByzantine(i, server.Garbage{Level: 1 << 20, Val: "evil"})
		}
		mustRun(t, s, s.Spawn("w2", types.Writer, checker.OpWrite, "b", h.writeOp("b")))
		rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp(1, 2))
		if v := mustRun(t, s, rd); v != "b" {
			t.Errorf("t=%d: read = %q, want b", tt, v)
		}
		rd2 := s.Spawn("rd2", types.Reader(2), checker.OpRead, types.Bottom, h.readOp(2, 2))
		if v := mustRun(t, s, rd2); v != "b" {
			t.Errorf("t=%d: second read = %q, want b", tt, v)
		}
		if err := checker.CheckAtomic(hist); err != nil {
			t.Error(err)
		}
		s.Close()
	}
}

func TestRandomizedAtomicity(t *testing.T) {
	seeds := 120
	if testing.Short() {
		seeds = 12
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed * 2654435761))
			tt := 1 + rng.Intn(2)
			S := 3*tt + 1
			thr := th(t, S, tt)
			h := newHarness(thr, seed)
			hist := &checker.History{}
			s := sim.New(sim.Config{Servers: S, History: hist})
			defer s.Close()
			nByz := rng.Intn(tt + 1)
			perm := rng.Perm(S)
			for i := 0; i < nByz; i++ {
				sid := perm[i] + 1
				switch rng.Intn(4) {
				case 0:
					s.SetByzantine(sid, server.Silent{})
				case 1:
					s.SetByzantine(sid, server.Garbage{Level: int64(rng.Intn(9)), Val: "evil"})
				case 2:
					s.SetByzantine(sid, &server.ReplayOnly{Rand: rng})
				default:
					s.SetByzantine(sid, &server.Stale{Snap: s.Snapshot(sid)})
				}
			}
			const R = 2
			readers := make([]*sim.Op, R)
			for i := 1; i <= R; i++ {
				readers[i-1] = s.Spawn(fmt.Sprintf("r%d", i), types.Reader(i), checker.OpRead, types.Bottom, h.readOp(i, R))
			}
			for i := 1; i <= 2; i++ {
				v := types.Value(fmt.Sprintf("v%d", i))
				w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, h.writeOp(v))
				ops := append([]*sim.Op{w}, readers...)
				if err := s.RunConcurrent(seed*7+int64(i), ops...); err != nil {
					t.Fatalf("liveness: %v", err)
				}
			}
			for _, rd := range readers {
				if err := s.RunOp(rd); err != nil {
					t.Fatal(err)
				}
			}
			if err := checker.CheckAtomic(hist); err != nil {
				t.Fatal(err)
			}
		})
	}
}
