package secret

import (
	"fmt"
	"math/rand"

	"robustatomic/internal/core"
	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// AtomicWriter is the secret-model atomic register's writer: identical to
// the unauthenticated one except every write phase carries a fresh token.
// Writes are adaptive like the unauthenticated multi-writer register's
// (core/fastpath.go): 2 token-carrying rounds when the optimistic proposal
// certifies, discovery or certified fallback under interference.
type AtomicWriter struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	wid     int64
	inner   *Writer
}

// NewAtomicWriter returns writer 0's handle.
func NewAtomicWriter(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand) *AtomicWriter {
	return NewAtomicWriterAt(r, th, rng, 0, types.TS{})
}

// NewAtomicWriterAt returns the handle of writer wid resuming from a known
// last timestamp.
func NewAtomicWriterAt(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand, wid int64, last types.TS) *AtomicWriter {
	return &AtomicWriter{rounder: r, th: th, wid: wid, inner: NewWriterAt(r, th, rng, wid, last)}
}

// Write stores v: the shared adaptive multi-writer write flow
// (core.WriteAdaptive — optimistic 2-round fast path, discovery/certified
// fallback) over the token-carrying pair-writer. Distinct writers'
// timestamps never collide (the writer id breaks ties), so concurrent
// multi-writer traffic cannot forge a fast-path (pair, token) match.
func (w *AtomicWriter) Write(v types.Value) error {
	_, err := core.WriteAdaptive(w.rounder, w.th, w.wid, v, w.inner)
	return err
}

// WriteClean attempts the validate-then-write flush fast path of
// core.WriteIfClean through the token-carrying writer.
func (w *AtomicWriter) WriteClean(v types.Value) (types.Pair, bool, error) {
	return core.WriteIfClean(w.rounder, w.th, w.wid, v, w.inner)
}

// Validate runs the one-round freshness check of core.ValidateClean.
func (w *AtomicWriter) Validate() (bool, error) {
	return core.ValidateClean(w.rounder, w.th, w.inner)
}

// Modify performs the certified read-modify-write of core.Writer.Modify in
// the secret-token model: the same shared flow (certification does not
// need tokens), writing through the token-carrying pair-writer.
func (w *AtomicWriter) Modify(fn func(cur types.Pair) (types.Value, error)) (types.Pair, error) {
	return core.ModifyCertified(w.rounder, w.th, w.wid, fn, w.inner)
}

// LastTS returns the timestamp of the last completed write.
func (w *AtomicWriter) LastTS() types.TS { return w.inner.LastTS() }

// AtomicReader performs adaptive atomic reads in the secret-token model:
// one multiplexed fast-path query round over the R+1 registers, an extra
// decision round only if some register could not decide fast, then the
// 2-round write-back into the reader's own register — ELIDED, like the
// unauthenticated reader's (core.Reader.ReadPair), when the query replies
// already certify the chosen pair as completely written on the shared
// register. A stable register thus reads in a SINGLE round (at S = 3t+1
// the fast hit's 2t+1 identical tuples are exactly the S−t-quorum elision
// evidence), improving on
// the 3-round contention-free optimum the paper cites from [DMSS09];
// contended or Byzantine-disturbed reads degrade to the full 4 rounds.
type AtomicReader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	idx     int
	readers int
	seq     int64
	rng     *rand.Rand
	// FastPath reports whether the last read skipped the decision round.
	FastPath bool
	// Elided reports whether the last read skipped the write-back.
	Elided bool
}

// NewAtomicReader returns the handle of reader idx out of `readers`.
func NewAtomicReader(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand, idx, readers int) *AtomicReader {
	return NewAtomicReaderAt(r, th, rng, idx, readers, 0)
}

// NewAtomicReaderAt resumes the reader's write-back register from a known
// internal sequence number.
func NewAtomicReaderAt(r proto.Rounder, th quorum.Thresholds, rng *rand.Rand, idx, readers int, seq int64) *AtomicReader {
	if idx < 1 || idx > readers {
		panic(fmt.Sprintf("secret: reader index %d out of 1..%d", idx, readers))
	}
	return &AtomicReader{rounder: r, th: th, rng: rng, idx: idx, readers: readers, seq: seq}
}

// Seq returns the reader's current write-back sequence number.
func (r *AtomicReader) Seq() int64 { return r.seq }

// Read performs the atomic read.
func (r *AtomicReader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair performs the atomic read, returning the chosen pair.
func (r *AtomicReader) ReadPair() (types.Pair, error) {
	regs := make([]types.RegID, 0, r.readers+1)
	regs = append(regs, types.WriterReg)
	for i := 1; i <= r.readers; i++ {
		regs = append(regs, types.ReaderReg(i))
	}

	// Physical round 1: fast-path query of every register.
	fasts := make([]*FastAcc, len(regs))
	parts := make([]core.MuxPart, len(regs))
	for i, reg := range regs {
		fasts[i] = NewFastAcc(r.th)
		parts[i] = core.MuxPart{
			Reg: reg,
			Req: func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc: fasts[i],
		}
	}
	if err := r.rounder.Round(core.MuxRound("SAREAD1", parts)); err != nil {
		return types.Pair{}, fmt.Errorf("secret: read round 1: %w", err)
	}

	choices := make([]types.Pair, len(regs))
	var slowParts []core.MuxPart
	var slowAccs []*regular.DecideAcc
	var slowIdx []int
	for i := range regs {
		if p, ok := fasts[i].Fast(); ok {
			choices[i] = p
			continue
		}
		acc := regular.NewDecideAcc(r.th, fasts[i].Replies)
		// Every register runs the relaxed multi-writer decision: the shared
		// register genuinely has many writers, and write-back owners resume
		// their sequence numbers by discovery (below), which can leave a
		// crashed predecessor's number without a completed predecessor — the
		// premise the SWMR causality filter would turn against the true
		// fault set (see core.Reader.ReadPair).
		acc.MultiWriter = true
		slowAccs = append(slowAccs, acc)
		slowIdx = append(slowIdx, i)
		slowParts = append(slowParts, core.MuxPart{
			Reg: regs[i],
			Req: func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc: acc,
		})
	}
	r.FastPath = len(slowParts) == 0
	if !r.FastPath {
		// Physical round 2 (slow path only): decision round for the
		// registers that could not decide fast.
		if err := r.rounder.Round(core.MuxRound("SAREAD2", slowParts)); err != nil {
			return types.Pair{}, fmt.Errorf("secret: read round 2: %w", err)
		}
		for j, acc := range slowAccs {
			choices[slowIdx[j]] = acc.Choice()
		}
	}

	best := choices[0]
	for i := 1; i < len(regs); i++ {
		p, err := core.DecodePair(choices[i].Val)
		if err != nil {
			return types.Pair{}, fmt.Errorf("secret: write-back register %v: %w", regs[i], err)
		}
		best = types.MaxPair(best, p)
	}

	// Resume the write-back sequence number from the views just collected
	// (see core.Reader.ReadPair): a fresh handle restarting at zero would
	// re-issue sequence numbers an earlier lifetime used with a different
	// value, leaving correct objects durably disagreeing on one timestamp
	// and bleeding the read decision's fault budget.
	raw := types.TS{}
	for _, m := range fasts[r.idx].Replies {
		raw = types.MaxTS(raw, types.MaxTS(m.PW.TS, m.W.TS))
	}
	for j, i := range slowIdx {
		if i == r.idx {
			raw = types.MaxTS(raw, slowAccs[j].MaxTS())
		}
	}
	r.seq = core.ResumeSeq(r.seq, choices[r.idx].TS, raw)

	// Write-back elision (see core.Reader.ReadPair and the core package
	// documentation's safety argument): a full quorum of S−t distinct
	// objects w-reporting best's timestamp (or higher) on the SHARED
	// register proves ≥ t+1 correct objects durably hold it, which forces
	// every later read — fast path included: 2t+1 identical tuples of a
	// staler pair would need more correct reporters than remain — to return
	// a pair at least as fresh. The support spans whichever rounds register
	// 0 actually ran (DecideAcc.WSupport covers both when it went slow).
	support := fasts[0].WSupport(best.TS)
	for j, i := range slowIdx {
		if i == 0 {
			support = slowAccs[j].WSupport(best.TS)
		}
	}
	if support >= r.th.Quorum() {
		r.Elided = true
		return best, nil
	}
	r.Elided = false

	// Final two physical rounds: token-carrying write-back into the
	// reader's own register (single-writer: WID stays 0).
	if r.seq+1 <= 0 {
		return types.Pair{}, fmt.Errorf("secret: write-back register sequence space exhausted")
	}
	wb := regular.NewWriterAt(r.rounder, r.th, types.ReaderReg(r.idx), 0, types.At(r.seq))
	wb.NextToken = func() types.Token {
		for {
			if tok := types.Token(r.rng.Uint64()); tok != 0 {
				return tok
			}
		}
	}
	if err := wb.WritePair(types.Pair{TS: types.At(r.seq + 1), Val: core.EncodePair(best)}); err != nil {
		return types.Pair{}, fmt.Errorf("secret: write-back: %w", err)
	}
	r.seq++
	return best, nil
}
