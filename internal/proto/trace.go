// Per-operation trace attachment. A Traced rounder sits between a protocol
// handle (Writer, Reader, shard committer) and its transport: while an
// operation is being traced, every round the handle runs gets a RoundTrace
// stamped into its spec, which the runtime fills with per-object events.
package proto

import (
	"sync/atomic"

	"robustatomic/internal/obs"
)

// Traced wraps a Rounder with an attachable current-operation trace. The
// handle's own rounds are single-goroutine, but the op pointer is set and
// cleared by whoever owns the handle at the time (reader pool acquire /
// shard committer), so it is atomic.
type Traced struct {
	inner Rounder
	reg   int
	cur   atomic.Pointer[obs.OpTrace]
}

// Trace wraps r; reg names the register instance in the rendered trace
// (pass -1 when the handle spans instances).
func Trace(r Rounder, reg int) *Traced {
	return &Traced{inner: r, reg: reg}
}

// SetOp attaches the operation all subsequent rounds trace into (nil
// detaches).
func (t *Traced) SetOp(op *obs.OpTrace) { t.cur.Store(op) }

// Round implements Rounder.
func (t *Traced) Round(spec RoundSpec) error {
	op := t.cur.Load()
	if op == nil {
		return t.inner.Round(spec)
	}
	rt := op.StartRound(spec.Label, t.reg)
	spec.Trace = rt
	for i := range spec.Subs {
		spec.Subs[i].Trace = rt
	}
	err := t.inner.Round(spec)
	rt.Finish(err)
	return err
}

// NumServers implements Rounder.
func (t *Traced) NumServers() int { return t.inner.NumServers() }

var _ Rounder = (*Traced)(nil)
