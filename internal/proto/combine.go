// Cross-register round coalescing.
//
// The Store's group commit already merges concurrent mutations of ONE shard
// into one flush; the Combiner extends the same leader-handoff idea across
// shards: concurrent rounds for different register instances — each shard
// committer flushing its own register — merge into one batched RoundSpec,
// which the batch-capable runtimes ship as one frame per object instead of
// one frame per shard. Under fan-in load this turns N shards' worth of
// per-daemon frames into one.
package proto

import (
	"fmt"
	"sync"
	"sync/atomic"

	"robustatomic/internal/obs"
)

// mBatchSubs distributes the sub-round counts of merged rounds: how much
// cross-shard coalescing the leader-handoff actually achieves under load.
// Sampled 1-in-8 (batchSubsTick): a histogram record touches a ~15KB bucket
// array under a mutex, too much for every merged round on the pipelined
// write path.
var (
	mBatchSubs    = obs.Default.Hist("proto_combine_batch_subs")
	batchSubsTick atomic.Uint64
)

// Combiner merges concurrent single-register rounds into batched rounds on
// an inner Rounder that accepts RoundSpec.Subs (live.Client, tcpnet.Client).
// Safe for concurrent use; the inner Rounder is only ever driven by one
// goroutine at a time (the current batch leader).
type Combiner struct {
	inner Rounder

	mu      sync.Mutex
	running bool
	// pending holds batches awaiting a leader, in arrival order. A batch
	// never holds two sub-rounds for the same register instance (reply
	// bundles are routed by instance): a second round for an occupied
	// instance opens the next batch.
	pending []*combineBatch
}

// NewCombiner returns a Combiner batching rounds onto inner.
func NewCombiner(inner Rounder) *Combiner {
	return &Combiner{inner: inner}
}

// NumServers returns S of the inner rounder.
func (c *Combiner) NumServers() int { return c.inner.NumServers() }

// Rounder returns a per-register-instance view of the combiner: a Rounder
// whose rounds target instance reg and merge with concurrent rounds of
// other instances. The view is cheap; make one per handle.
func (c *Combiner) Rounder(reg int) Rounder {
	return &combinedRounder{c: c, reg: reg}
}

type combinedRounder struct {
	c   *Combiner
	reg int
}

// Round implements Rounder.
func (r *combinedRounder) Round(spec RoundSpec) error {
	return r.c.round(r.reg, spec)
}

// NumServers implements Rounder.
func (r *combinedRounder) NumServers() int { return r.c.NumServers() }

type combineBatch struct {
	subs []SubRound
	regs map[int]bool
	// done is closed by the batch's leader after the merged round returns.
	done chan struct{}
	// lead (capacity 1) receives the leadership token: whichever of the
	// batch's waiters picks it up runs the merged round for everyone.
	lead chan struct{}
	err  error
}

func newCombineBatch() *combineBatch {
	return &combineBatch{
		regs: make(map[int]bool),
		done: make(chan struct{}),
		lead: make(chan struct{}, 1),
	}
}

func (c *Combiner) round(reg int, spec RoundSpec) error {
	if len(spec.Subs) > 0 {
		return fmt.Errorf("proto: combiner: batched specs cannot be re-batched (round %s)", spec.Label)
	}
	sub := SubRound{Reg: reg, Label: spec.Label, Req: spec.Req, Acc: spec.Acc, Trace: spec.Trace}
	c.mu.Lock()
	var b *combineBatch
	for _, pb := range c.pending {
		if !pb.regs[reg] {
			b = pb
			break
		}
	}
	if b == nil {
		b = newCombineBatch()
		c.pending = append(c.pending, b)
	}
	b.subs = append(b.subs, sub)
	b.regs[reg] = true
	if c.running {
		c.mu.Unlock()
		select {
		case <-b.done:
			return finished(b, sub)
		case <-b.lead:
			c.mu.Lock()
		}
	} else {
		// No round in flight: this caller leads its (necessarily sole and
		// fresh) batch immediately.
		c.running = true
	}
	// Leader: detach the batch from the queue, run the merged round, then
	// hand leadership to the next batch (one of its waiters wakes up) or go
	// idle.
	for i, pb := range c.pending {
		if pb == b {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
	b.err = c.inner.Round(mergedSpec(b))
	close(b.done)
	c.mu.Lock()
	if len(c.pending) > 0 {
		c.pending[0].lead <- struct{}{}
	} else {
		c.running = false
	}
	c.mu.Unlock()
	return finished(b, sub)
}

// finished maps the merged round's outcome back to one waiter. The
// accumulators are monotone, so a satisfied sub-round genuinely completed
// even if the merged round as a whole errored (say, a sibling's quorum
// timed out) — only unsatisfied sub-rounds inherit the error.
func finished(b *combineBatch, sub SubRound) error {
	if b.err == nil || sub.Acc.Done() {
		return nil
	}
	return b.err
}

// mergedSpec builds the batched spec for one batch.
func mergedSpec(b *combineBatch) RoundSpec {
	if batchSubsTick.Add(1)%8 == 0 {
		mBatchSubs.Record(int64(len(b.subs)))
	}
	label := b.subs[0].Label
	if len(b.subs) > 1 {
		label = fmt.Sprintf("BATCH(%d:%s+%d)", len(b.subs), label, len(b.subs)-1)
	}
	return RoundSpec{Label: label, Subs: b.subs}
}

var _ Rounder = (*combinedRounder)(nil)
