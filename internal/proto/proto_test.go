package proto

import (
	"testing"
	"testing/quick"

	"robustatomic/internal/types"
)

func TestCountAccBasics(t *testing.T) {
	acc := NewCountAcc(2, nil)
	if acc.Done() {
		t.Fatal("empty accumulator done")
	}
	acc.Add(1, types.Message{Kind: types.MsgAck})
	acc.Add(1, types.Message{Kind: types.MsgAck}) // duplicate object
	if acc.Done() || acc.Count() != 1 {
		t.Fatalf("duplicate counted: %d", acc.Count())
	}
	acc.Add(2, types.Message{Kind: types.MsgAck})
	if !acc.Done() || acc.Count() != 2 {
		t.Fatal("not done at threshold")
	}
	// Monotone: further adds keep it done.
	acc.Add(3, types.Message{Kind: types.MsgAck})
	if !acc.Done() {
		t.Fatal("done flapped")
	}
}

func TestCountAccFilter(t *testing.T) {
	acc := NewCountAcc(1, func(_ int, m types.Message) bool { return m.Kind == types.MsgState })
	acc.Add(1, types.Message{Kind: types.MsgAck})
	if acc.Done() {
		t.Fatal("filtered message counted")
	}
	acc.Add(2, types.Message{Kind: types.MsgState})
	if !acc.Done() {
		t.Fatal("accepted message not counted")
	}
}

func TestAckAcc(t *testing.T) {
	acc := AckAcc(2)
	acc.Add(1, types.Message{Kind: types.MsgState})
	acc.Add(2, types.Message{Kind: types.MsgAck})
	acc.Add(3, types.Message{Kind: types.MsgAck})
	if !acc.Done() || acc.Count() != 2 {
		t.Fatalf("ack counting: %d", acc.Count())
	}
}

func TestCountAccMonotoneProperty(t *testing.T) {
	// Once done, any further sequence of adds keeps it done.
	f := func(sids []uint8) bool {
		acc := NewCountAcc(3, nil)
		done := false
		for _, sid := range sids {
			acc.Add(int(sid), types.Message{Kind: types.MsgAck})
			if done && !acc.Done() {
				return false
			}
			done = acc.Done()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
