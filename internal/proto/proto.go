// Package proto defines the client-side round abstraction shared by every
// protocol implementation and every runtime (deterministic simulator, live
// goroutine runtime, TCP transport).
//
// A round follows Definition 1 of the paper: the client sends a message to
// all objects, objects reply immediately, and the round terminates when the
// client has received a "sufficient" set of replies. Sufficiency is the
// adaptive predicate Accumulator.Done: a round may terminate missing an
// object's reply only if that object is faulty in some indistinguishable
// run, and conversely must terminate once every correct object has replied
// (the runtimes' liveness detectors enforce the latter).
package proto

import "robustatomic/internal/types"

// Accumulator integrates the replies of one round and decides termination.
// Implementations must be monotone: once Done returns true it must keep
// returning true as further replies are added. Monotonicity makes
// multiplexed rounds (several register instances sharing a physical round)
// sound.
type Accumulator interface {
	// Add integrates the reply of object sid (1-based). Duplicate deliveries
	// from the same object must be idempotent.
	Add(sid int, m types.Message)
	// Done reports whether the round may terminate.
	Done() bool
}

// RoundSpec describes one communication round.
type RoundSpec struct {
	// Label names the round for traces and diagrams (e.g. "PREWRITE").
	Label string
	// Req builds the request for object sid. Runtimes stamp Seq themselves.
	Req func(sid int) types.Message
	// Acc receives replies and decides termination.
	Acc Accumulator
}

// Rounder executes rounds on behalf of a client. Implementations:
// sim.Client (deterministic, adversary-scheduled), live.Client (goroutines
// and channels) and tcpnet.Client (real sockets).
type Rounder interface {
	// Round runs one communication round to completion. It returns an error
	// if the client crashed or the runtime shut down; protocols must
	// propagate it.
	Round(spec RoundSpec) error
	// NumServers returns S, the number of storage objects.
	NumServers() int
}

// CountAcc is the simplest accumulator: done after replies from n distinct
// objects, optionally filtered by a predicate.
type CountAcc struct {
	Need   int
	Filter func(sid int, m types.Message) bool // nil accepts everything
	seen   map[int]bool
}

// NewCountAcc returns a CountAcc waiting for need distinct accepted replies.
func NewCountAcc(need int, filter func(int, types.Message) bool) *CountAcc {
	return &CountAcc{Need: need, Filter: filter, seen: make(map[int]bool, need)}
}

// Add implements Accumulator.
func (a *CountAcc) Add(sid int, m types.Message) {
	if a.Filter != nil && !a.Filter(sid, m) {
		return
	}
	a.seen[sid] = true
}

// Done implements Accumulator.
func (a *CountAcc) Done() bool { return len(a.seen) >= a.Need }

// Count returns the number of accepted distinct repliers so far.
func (a *CountAcc) Count() int { return len(a.seen) }

// AckAcc waits for n MsgAck replies.
func AckAcc(need int) *CountAcc {
	return NewCountAcc(need, func(_ int, m types.Message) bool { return m.Kind == types.MsgAck })
}

var _ Accumulator = (*CountAcc)(nil)
