// Package proto defines the client-side round abstraction shared by every
// protocol implementation and every runtime (deterministic simulator, live
// goroutine runtime, TCP transport).
//
// A round follows Definition 1 of the paper: the client sends a message to
// all objects, objects reply immediately, and the round terminates when the
// client has received a "sufficient" set of replies. Sufficiency is the
// adaptive predicate Accumulator.Done: a round may terminate missing an
// object's reply only if that object is faulty in some indistinguishable
// run, and conversely must terminate once every correct object has replied
// (the runtimes' liveness detectors enforce the latter).
package proto

import (
	"math/bits"

	"robustatomic/internal/obs"
	"robustatomic/internal/types"
)

// Accumulator integrates the replies of one round and decides termination.
// Implementations must be monotone: once Done returns true it must keep
// returning true as further replies are added. Monotonicity makes
// multiplexed rounds (several register instances sharing a physical round)
// sound.
type Accumulator interface {
	// Add integrates the reply of object sid (1-based). Duplicate deliveries
	// from the same object must be idempotent.
	Add(sid int, m types.Message)
	// Done reports whether the round may terminate.
	Done() bool
}

// RoundSpec describes one communication round. A spec drives either ONE
// register instance (Req/Acc) or MANY (Subs — a batched round whose
// per-register sub-rounds share one physical message exchange per object;
// when Subs is non-empty, Req and Acc are ignored). Batched rounds exist so
// concurrent flushes of different Store shards coalesce into one frame per
// daemon; only the batch-capable runtimes (live, tcpnet) accept them.
type RoundSpec struct {
	// Label names the round for traces and diagrams (e.g. "PREWRITE").
	Label string
	// Req builds the request for object sid. Runtimes stamp Seq themselves.
	Req func(sid int) types.Message
	// Acc receives replies and decides termination.
	Acc Accumulator
	// Subs holds the per-register sub-rounds of a batched round. Register
	// instances must be distinct within one batch (a reply sub-bundle is
	// routed to its sub-round by register instance).
	Subs []SubRound
	// Trace, when non-nil, receives per-object send/reply/error events from
	// the runtime executing the round. Runtimes must tolerate nil (the
	// untraced common case costs one nil check per event site).
	Trace *obs.RoundTrace
}

// SubRound is one register instance's share of a batched round.
type SubRound struct {
	// Reg is the register instance the sub-round addresses.
	Reg int
	// Label names the merged-in round (diagnostics; the per-register
	// Observe hook above the Combiner reports the original spec's label).
	Label string
	// Req builds the sub-request for object sid.
	Req func(sid int) types.Message
	// Acc receives this sub-round's replies and decides its termination.
	Acc Accumulator
	// Trace, when non-nil, is the originating round's trace: the Combiner
	// threads it through so a traced flush still sees its per-object events
	// even when its round traveled inside another leader's merged frame.
	Trace *obs.RoundTrace
}

// Done reports whether the spec's round may terminate: the accumulator is
// satisfied, or — for a batched round — every sub-round's accumulator is.
func (s *RoundSpec) Done() bool {
	if len(s.Subs) == 0 {
		return s.Acc.Done()
	}
	for i := range s.Subs {
		if !s.Subs[i].Acc.Done() {
			return false
		}
	}
	return true
}

// AddSub feeds one sub-bundle of a batched reply — object sid's reply for
// register instance reg — to the matching sub-round's accumulator. Bundles
// for instances the batch never asked about are ignored (a Byzantine object
// cannot widen the round).
func (s *RoundSpec) AddSub(sid, reg int, m types.Message) {
	for i := range s.Subs {
		if s.Subs[i].Reg == reg {
			s.Subs[i].Acc.Add(sid, m)
		}
	}
}

// Rounder executes rounds on behalf of a client. Implementations:
// sim.Client (deterministic, adversary-scheduled), live.Client (goroutines
// and channels) and tcpnet.Client (real sockets).
type Rounder interface {
	// Round runs one communication round to completion. It returns an error
	// if the client crashed or the runtime shut down; protocols must
	// propagate it.
	Round(spec RoundSpec) error
	// NumServers returns S, the number of storage objects.
	NumServers() int
}

// Observe wraps a Rounder, invoking fn with the round's label after every
// successfully completed round. It is the instrumentation hook behind
// Options.RoundHook: round-count tests assert adaptive complexity ("2
// rounds uncontended, bounded fallback") directly instead of inferring it
// from latency. fn runs on whatever goroutine executes the operation.
func Observe(r Rounder, fn func(label string)) Rounder {
	return &observedRounder{inner: r, fn: fn}
}

type observedRounder struct {
	inner Rounder
	fn    func(label string)
}

// Round implements Rounder.
func (o *observedRounder) Round(spec RoundSpec) error {
	err := o.inner.Round(spec)
	if err == nil {
		o.fn(spec.Label)
	}
	return err
}

// NumServers implements Rounder.
func (o *observedRounder) NumServers() int { return o.inner.NumServers() }

// CountAcc is the simplest accumulator: done after replies from n distinct
// objects, optionally filtered by a predicate.
type CountAcc struct {
	Need   int
	Filter func(sid int, m types.Message) bool // nil accepts everything
	seen   map[int]bool
}

// NewCountAcc returns a CountAcc waiting for need distinct accepted replies.
func NewCountAcc(need int, filter func(int, types.Message) bool) *CountAcc {
	return &CountAcc{Need: need, Filter: filter, seen: make(map[int]bool, need)}
}

// Add implements Accumulator.
func (a *CountAcc) Add(sid int, m types.Message) {
	if a.Filter != nil && !a.Filter(sid, m) {
		return
	}
	a.seen[sid] = true
}

// Done implements Accumulator.
func (a *CountAcc) Done() bool { return len(a.seen) >= a.Need }

// Count returns the number of accepted distinct repliers so far.
func (a *CountAcc) Count() int { return len(a.seen) }

// AckAcc waits for n MsgAck replies.
func AckAcc(need int) *CountAcc {
	return NewCountAcc(need, func(_ int, m types.Message) bool { return m.Kind == types.MsgAck })
}

// BitAcc is the hot-path quorum accumulator: done after replies of the
// given kind from `need` distinct objects, tracked in a bitmask instead of
// a map — the write phases run several such rounds per operation, and the
// map accumulators' allocations showed up directly in the E9 profile.
// Alongside the count it folds the replies' piggybacked (PW, W) timestamps
// into a running maximum, which is what the optimistic write's validation
// (MsgAck piggybacks) and the flush's freshness round (MsgState replies)
// both consume; plain ack rounds simply ignore MaxTS. Objects outside
// 1..64 are ignored, which can only delay termination, never fake it (the
// repository's deployments are S = 3t+1 ≤ 62, the decide procedure's own
// bound).
type BitAcc struct {
	kind types.MsgKind
	need int
	seen uint64
	max  types.TS
}

// NewBitAcc returns a BitAcc waiting for need replies of the given kind.
func NewBitAcc(kind types.MsgKind, need int) *BitAcc {
	return &BitAcc{kind: kind, need: need}
}

// NewAckBits returns a BitAcc waiting for need acknowledgements.
func NewAckBits(need int) *BitAcc { return NewBitAcc(types.MsgAck, need) }

// Add implements Accumulator.
func (a *BitAcc) Add(sid int, m types.Message) {
	if m.Kind != a.kind || sid < 1 || sid > 64 {
		return
	}
	a.seen |= 1 << uint(sid-1)
	a.max = types.MaxTS(a.max, types.MaxTS(m.PW.TS, m.W.TS))
}

// Done implements Accumulator.
func (a *BitAcc) Done() bool { return bits.OnesCount64(a.seen) >= a.need }

// MaxTS returns the highest piggybacked (PW, W) timestamp accepted so far.
func (a *BitAcc) MaxTS() types.TS { return a.max }

var (
	_ Accumulator = (*CountAcc)(nil)
	_ Accumulator = (*BitAcc)(nil)
)
