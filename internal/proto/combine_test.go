package proto

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"robustatomic/internal/types"
)

// fakeRounder is a scriptable batch-capable inner Rounder: it records every
// spec, optionally blocks each call on a gate, and runs a per-call behavior
// (default: acknowledge every sub-round and succeed).
type fakeRounder struct {
	mu    sync.Mutex
	calls []RoundSpec
	gate  chan struct{}
	run   func(call int, spec RoundSpec) error
}

func (f *fakeRounder) Round(spec RoundSpec) error {
	f.mu.Lock()
	call := len(f.calls)
	f.calls = append(f.calls, spec)
	f.mu.Unlock()
	if f.gate != nil {
		<-f.gate
	}
	if f.run != nil {
		return f.run(call, spec)
	}
	for i := range spec.Subs {
		spec.Subs[i].Acc.Add(1, types.Message{Kind: types.MsgAck})
	}
	return nil
}

func (f *fakeRounder) NumServers() int { return 1 }

func (f *fakeRounder) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}

func ackRound(label string) RoundSpec {
	return RoundSpec{
		Label: label,
		Req:   func(sid int) types.Message { return types.Message{Kind: types.MsgWrite} },
		Acc:   AckAcc(1),
	}
}

// waitFor polls until cond holds (combiner state transitions are
// asynchronous but fast).
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// pendingSubs snapshots the register layout of the combiner's pending
// batches (white-box; same package).
func pendingSubs(c *Combiner) [][]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out [][]int
	for _, b := range c.pending {
		var regs []int
		for _, s := range b.subs {
			regs = append(regs, s.Reg)
		}
		out = append(out, regs)
	}
	return out
}

func regsOf(spec RoundSpec) map[int]bool {
	m := make(map[int]bool)
	for _, s := range spec.Subs {
		m[s.Reg] = true
	}
	return m
}

// TestCombinerPassThrough: with no concurrency a round runs immediately as
// a one-sub batch and succeeds.
func TestCombinerPassThrough(t *testing.T) {
	f := &fakeRounder{}
	c := NewCombiner(f)
	if err := c.Rounder(3).Round(ackRound("SOLO")); err != nil {
		t.Fatal(err)
	}
	if len(f.calls) != 1 || len(f.calls[0].Subs) != 1 || f.calls[0].Subs[0].Reg != 3 {
		t.Fatalf("inner saw %+v, want one 1-sub batch for reg 3", f.calls)
	}
	if got := f.calls[0].Label; got != "SOLO" {
		t.Errorf("merged label = %q, want SOLO (single-sub batches keep their label)", got)
	}
}

// TestCombinerMergesConcurrentRounds: rounds for distinct registers that
// arrive while a merged round is in flight coalesce into ONE inner round.
func TestCombinerMergesConcurrentRounds(t *testing.T) {
	f := &fakeRounder{gate: make(chan struct{})}
	c := NewCombiner(f)
	errs := make(chan error, 3)
	go func() { errs <- c.Rounder(1).Round(ackRound("LEAD")) }()
	waitFor(t, "leader to start", func() bool { return f.callCount() == 1 })

	go func() { errs <- c.Rounder(2).Round(ackRound("W2")) }()
	waitFor(t, "reg 2 to enqueue", func() bool {
		p := pendingSubs(c)
		return len(p) == 1 && len(p[0]) == 1
	})
	go func() { errs <- c.Rounder(3).Round(ackRound("W3")) }()
	waitFor(t, "reg 3 to join the batch", func() bool {
		p := pendingSubs(c)
		return len(p) == 1 && len(p[0]) == 2
	})

	f.gate <- struct{}{} // release the leader; one of the waiters leads the batch
	f.gate <- struct{}{} // release the merged batch
	for i := 0; i < 3; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if got := f.callCount(); got != 2 {
		t.Fatalf("inner ran %d rounds, want 2 (leader + one merged batch)", got)
	}
	merged := f.calls[1]
	if len(merged.Subs) != 2 || !regsOf(merged)[2] || !regsOf(merged)[3] {
		t.Fatalf("merged batch covers %+v, want regs {2,3}", regsOf(merged))
	}
	if want := fmt.Sprintf("BATCH(2:%s+1)", merged.Subs[0].Label); merged.Label != want {
		t.Errorf("merged label = %q, want %q", merged.Label, want)
	}
}

// TestCombinerDuplicateRegOpensNextBatch: a batch never holds two sub-rounds
// for the same register instance (reply bundles route by instance), so a
// second round for an occupied instance opens the next batch while other
// instances still merge into the first.
func TestCombinerDuplicateRegOpensNextBatch(t *testing.T) {
	f := &fakeRounder{gate: make(chan struct{})}
	c := NewCombiner(f)
	errs := make(chan error, 4)
	go func() { errs <- c.Rounder(5).Round(ackRound("LEAD")) }()
	waitFor(t, "leader to start", func() bool { return f.callCount() == 1 })

	go func() { errs <- c.Rounder(7).Round(ackRound("A7")) }()
	waitFor(t, "first reg 7 round", func() bool { return len(pendingSubs(c)) == 1 })
	go func() { errs <- c.Rounder(7).Round(ackRound("B7")) }()
	waitFor(t, "second reg 7 round to open batch 2", func() bool { return len(pendingSubs(c)) == 2 })
	go func() { errs <- c.Rounder(8).Round(ackRound("A8")) }()
	waitFor(t, "reg 8 to merge into batch 1", func() bool {
		p := pendingSubs(c)
		return len(p) == 2 && len(p[0]) == 2
	})

	for i := 0; i < 3; i++ {
		f.gate <- struct{}{}
	}
	for i := 0; i < 4; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if got := f.callCount(); got != 3 {
		t.Fatalf("inner ran %d rounds, want 3", got)
	}
	if r := regsOf(f.calls[1]); len(r) != 2 || !r[7] || !r[8] {
		t.Fatalf("batch 1 covers %+v, want regs {7,8}", r)
	}
	if r := regsOf(f.calls[2]); len(r) != 1 || !r[7] {
		t.Fatalf("batch 2 covers %+v, want regs {7}", r)
	}
}

// TestCombinerPerSubErrorMapping: when a merged round errors, a waiter whose
// own (monotone) accumulator was satisfied still succeeds; only unsatisfied
// waiters inherit the batch error.
func TestCombinerPerSubErrorMapping(t *testing.T) {
	errBoom := errors.New("sibling quorum timed out")
	f := &fakeRounder{gate: make(chan struct{})}
	f.run = func(call int, spec RoundSpec) error {
		if call == 0 {
			for i := range spec.Subs {
				spec.Subs[i].Acc.Add(1, types.Message{Kind: types.MsgAck})
			}
			return nil
		}
		// The merged batch: satisfy only register 1's sub-round.
		for i := range spec.Subs {
			if spec.Subs[i].Reg == 1 {
				spec.Subs[i].Acc.Add(1, types.Message{Kind: types.MsgAck})
			}
		}
		return errBoom
	}
	c := NewCombiner(f)
	lead := make(chan error, 1)
	go func() { lead <- c.Rounder(9).Round(ackRound("LEAD")) }()
	waitFor(t, "leader to start", func() bool { return f.callCount() == 1 })

	got := make(map[int]chan error)
	for _, reg := range []int{1, 2} {
		reg := reg
		ch := make(chan error, 1)
		got[reg] = ch
		go func() { ch <- c.Rounder(reg).Round(ackRound(fmt.Sprintf("W%d", reg))) }()
	}
	waitFor(t, "both rounds to enqueue", func() bool {
		p := pendingSubs(c)
		return len(p) == 1 && len(p[0]) == 2
	})
	f.gate <- struct{}{}
	f.gate <- struct{}{}
	if err := <-lead; err != nil {
		t.Fatalf("leader: %v", err)
	}
	if err := <-got[1]; err != nil {
		t.Errorf("satisfied sub-round returned %v, want nil", err)
	}
	if err := <-got[2]; !errors.Is(err, errBoom) {
		t.Errorf("unsatisfied sub-round returned %v, want the batch error", err)
	}
}

// TestCombinerRejectsBatchedSpecs: already-batched specs cannot be
// re-batched.
func TestCombinerRejectsBatchedSpecs(t *testing.T) {
	c := NewCombiner(&fakeRounder{})
	spec := RoundSpec{Label: "NESTED", Subs: []SubRound{{Reg: 1, Acc: AckAcc(1)}}}
	if err := c.Rounder(1).Round(spec); err == nil {
		t.Fatal("re-batching a batched spec succeeded")
	}
}

// TestCombinerConcurrentStress drives many goroutines per register across
// many registers and checks every round completes (run with -race).
func TestCombinerConcurrentStress(t *testing.T) {
	f := &fakeRounder{}
	c := NewCombiner(f)
	var wg sync.WaitGroup
	for reg := 1; reg <= 8; reg++ {
		reg := reg
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := c.Rounder(reg)
			for i := 0; i < 50; i++ {
				if err := r.Round(ackRound(fmt.Sprintf("R%d/%d", reg, i))); err != nil {
					t.Errorf("reg %d round %d: %v", reg, i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := f.callCount(); got > 8*50 {
		t.Errorf("inner ran %d rounds for 400 logical rounds", got)
	}
}
