package checker

import (
	"fmt"

	"robustatomic/internal/types"
)

// swContext is the preprocessed view of a single-writer history: the write
// sequence val_1..val_n (val_0 = ⊥) and the complete reads.
type swContext struct {
	writes []Op // by Seq, 1-based at writes[seq-1]
	valSeq map[types.Value]int
	reads  []Op
}

// prepareSW validates single-writer well-formedness: writes are sequential
// (each write precedes the next), and written values are pairwise distinct
// and never ⊥ — distinctness makes "read returns val_k" unambiguous, which
// the specialized checkers rely on (the linearizability checker has no such
// restriction).
func prepareSW(h *History) (*swContext, *Violation) {
	ctx := &swContext{valSeq: make(map[types.Value]int)}
	for _, op := range h.Ops() {
		switch op.Kind {
		case OpWrite:
			ctx.writes = append(ctx.writes, op)
		case OpRead:
			if op.Complete() {
				ctx.reads = append(ctx.reads, op)
			}
		}
	}
	for i, w := range ctx.writes {
		if w.Seq != i+1 {
			return nil, &Violation{Prop: "well-formed", Detail: "write sequence numbering broken", Ops: []Op{w}}
		}
		if w.Arg.IsBottom() {
			return nil, &Violation{Prop: "well-formed", Detail: "⊥ written", Ops: []Op{w}}
		}
		if prev, dup := ctx.valSeq[w.Arg]; dup {
			return nil, &Violation{
				Prop:   "well-formed",
				Detail: fmt.Sprintf("duplicate written value %q (writes %d and %d); use distinct values", w.Arg, prev, w.Seq),
				Ops:    []Op{w},
			}
		}
		ctx.valSeq[w.Arg] = w.Seq
		if i > 0 {
			prev := ctx.writes[i-1]
			if !prev.Complete() {
				if w.Invoke > prev.Invoke { // a later write after a pending one
					return nil, &Violation{Prop: "well-formed", Detail: "writer invoked a write while one is pending", Ops: []Op{prev, w}}
				}
			} else if prev.Respond > w.Invoke {
				return nil, &Violation{Prop: "well-formed", Detail: "writes overlap", Ops: []Op{prev, w}}
			}
		}
	}
	return ctx, nil
}

// retSeq resolves a read's returned value to a write sequence number:
// 0 for ⊥, the write's Seq for a written value, or −1 for a value that was
// never written.
func (ctx *swContext) retSeq(v types.Value) int {
	if v.IsBottom() {
		return 0
	}
	if k, ok := ctx.valSeq[v]; ok {
		return k
	}
	return -1
}

// lastCompleteBefore returns the largest k such that wr_k completed before
// the given operation was invoked (0 if none).
func (ctx *swContext) lastCompleteBefore(op Op) int {
	last := 0
	for _, w := range ctx.writes {
		if w.Precedes(op) && w.Seq > last {
			last = w.Seq
		}
	}
	return last
}

// CheckAtomic verifies the four atomicity properties of Section 2.2 for a
// single-writer history:
//
//	(1) if a read returns x then there is k such that val_k = x;
//	(2) if a complete read rd succeeds wr_k then rd returns val_l with l ≥ k;
//	(3) if a read returns val_k (k ≥ 1) then wr_k precedes or is concurrent
//	    with rd;
//	(4) if rd1 returns val_k and rd2 succeeds rd1 and returns val_l, then
//	    l ≥ k.
//
// It returns nil if the history is atomic, or the first *Violation found.
func CheckAtomic(h *History) error {
	ctx, v := prepareSW(h)
	if v != nil {
		return v
	}
	if v := ctx.checkValidity(); v != nil {
		return v
	}
	if v := ctx.checkReadAfterWrite(); v != nil {
		return v
	}
	if v := ctx.checkNoFuture(); v != nil {
		return v
	}
	if v := ctx.checkReadAfterRead(); v != nil {
		return v
	}
	return nil
}

// CheckRegular verifies regularity: properties (1)–(3) but not (4). A
// regular read may be new/old-inverted with respect to other reads, but must
// return the last complete write or a concurrent one.
func CheckRegular(h *History) error {
	ctx, v := prepareSW(h)
	if v != nil {
		return v
	}
	if v := ctx.checkValidity(); v != nil {
		return v
	}
	if v := ctx.checkReadAfterWrite(); v != nil {
		return v
	}
	if v := ctx.checkNoFuture(); v != nil {
		return v
	}
	return nil
}

// CheckSafe verifies safety: a complete read that is not concurrent with any
// write returns the value of the last complete write ("validity" applies
// only to such reads; concurrent reads may return anything written or ⊥ —
// we still require returned values to be ⊥ or genuinely written, matching
// the storage model where values cannot be fabricated).
func CheckSafe(h *History) error {
	ctx, v := prepareSW(h)
	if v != nil {
		return v
	}
	for _, rd := range ctx.reads {
		concurrent := false
		for _, w := range ctx.writes {
			if rd.ConcurrentWith(w) {
				concurrent = true
				break
			}
		}
		if concurrent {
			continue
		}
		want := ctx.lastCompleteBefore(rd)
		got := ctx.retSeq(rd.Ret)
		if got != want {
			wantVal := types.Bottom
			if want > 0 {
				wantVal = ctx.writes[want-1].Arg
			}
			return &Violation{
				Prop:   "safety",
				Detail: fmt.Sprintf("contention-free read returned %s, want val_%d = %s", rd.Ret, want, wantVal),
				Ops:    []Op{rd},
			}
		}
	}
	return nil
}

// checkValidity is property (1): returned values were written (or ⊥).
func (ctx *swContext) checkValidity() *Violation {
	for _, rd := range ctx.reads {
		if ctx.retSeq(rd.Ret) < 0 {
			return &Violation{
				Prop:   "atomicity(1)",
				Detail: fmt.Sprintf("read returned %q which was never written", rd.Ret),
				Ops:    []Op{rd},
			}
		}
	}
	return nil
}

// checkReadAfterWrite is property (2): a read succeeding wr_k returns l ≥ k.
func (ctx *swContext) checkReadAfterWrite() *Violation {
	for _, rd := range ctx.reads {
		k := ctx.lastCompleteBefore(rd)
		if l := ctx.retSeq(rd.Ret); l < k {
			ops := []Op{rd}
			if k >= 1 {
				ops = append(ops, ctx.writes[k-1])
			}
			return &Violation{
				Prop:   "atomicity(2)",
				Detail: fmt.Sprintf("read returned val_%d but succeeds wr_%d", l, k),
				Ops:    ops,
			}
		}
	}
	return nil
}

// checkNoFuture is property (3): a read returning val_k does not precede
// wr_k.
func (ctx *swContext) checkNoFuture() *Violation {
	for _, rd := range ctx.reads {
		k := ctx.retSeq(rd.Ret)
		if k < 1 {
			continue
		}
		wr := ctx.writes[k-1]
		if rd.Precedes(wr) {
			return &Violation{
				Prop:   "atomicity(3)",
				Detail: fmt.Sprintf("read returned val_%d but completed before wr_%d was invoked", k, k),
				Ops:    []Op{rd, wr},
			}
		}
	}
	return nil
}

// checkReadAfterRead is property (4): no new/old inversion between
// non-concurrent reads.
func (ctx *swContext) checkReadAfterRead() *Violation {
	for _, rd1 := range ctx.reads {
		for _, rd2 := range ctx.reads {
			if rd1.ID == rd2.ID || !rd1.Precedes(rd2) {
				continue
			}
			k := ctx.retSeq(rd1.Ret)
			l := ctx.retSeq(rd2.Ret)
			if l < k {
				return &Violation{
					Prop:   "atomicity(4)",
					Detail: fmt.Sprintf("rd2 succeeds rd1 but returned val_%d < val_%d (new/old inversion)", l, k),
					Ops:    []Op{rd1, rd2},
				}
			}
		}
	}
	return nil
}
