package checker

import (
	"strings"
	"testing"

	"robustatomic/internal/types"
)

// hist builds a history from a compact script. Each step is one of:
//
//	iw:v  – invoke write(v)        rw    – respond last pending write
//	ir:N  – invoke read by reader N
//	rr:N:v – respond reader N's read with value v
func hist(t *testing.T, steps ...string) *History {
	t.Helper()
	h := &History{}
	pendingWrite := -1
	pendingRead := map[string]int{}
	for _, s := range steps {
		parts := strings.Split(s, ":")
		switch parts[0] {
		case "iw":
			pendingWrite = h.Invoke(types.Writer, OpWrite, types.Value(parts[1]))
		case "rw":
			h.Respond(pendingWrite, types.Bottom)
		case "ir":
			n := parts[1]
			pendingRead[n] = h.Invoke(types.Reader(int(n[0]-'0')), OpRead, types.Bottom)
		case "rr":
			n := parts[1]
			v := types.Bottom
			if len(parts) > 2 {
				v = types.Value(parts[2])
			}
			h.Respond(pendingRead[n], v)
		default:
			t.Fatalf("bad step %q", s)
		}
	}
	return h
}

func wantViolation(t *testing.T, err error, prop string) {
	t.Helper()
	if err == nil {
		t.Fatalf("expected %s violation, got nil", prop)
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("expected *Violation, got %T: %v", err, err)
	}
	if v.Prop != prop {
		t.Fatalf("expected %s, got %s: %v", prop, v.Prop, v)
	}
}

func TestAtomicSequentialHistory(t *testing.T) {
	h := hist(t,
		"iw:a", "rw", "ir:1", "rr:1:a",
		"iw:b", "rw", "ir:2", "rr:2:b",
	)
	if err := CheckAtomic(h); err != nil {
		t.Errorf("sequential history flagged: %v", err)
	}
	if lin, _ := CheckLinearizable(h); !lin {
		t.Error("sequential history not linearizable")
	}
}

func TestAtomicEmptyAndBottomRead(t *testing.T) {
	h := hist(t, "ir:1", "rr:1")
	if err := CheckAtomic(h); err != nil {
		t.Errorf("⊥ read before any write flagged: %v", err)
	}
}

func TestValidityViolation(t *testing.T) {
	// Read returns a value never written: property (1).
	h := hist(t, "iw:a", "rw", "ir:1", "rr:1:z")
	wantViolation(t, CheckAtomic(h), "atomicity(1)")
	wantViolation(t, CheckRegular(h), "atomicity(1)")
	if lin, _ := CheckLinearizable(h); lin {
		t.Error("invalid value accepted by linearizability checker")
	}
}

func TestValidityViolationNoWrite(t *testing.T) {
	// The lower-bound constructions end here: a read returns 1 although no
	// write was ever invoked.
	h := hist(t, "ir:1", "rr:1:1")
	wantViolation(t, CheckAtomic(h), "atomicity(1)")
	wantViolation(t, CheckRegular(h), "atomicity(1)")
	wantViolation(t, CheckSafe(h), "safety")
}

func TestStaleReadViolation(t *testing.T) {
	// Read succeeds wr_2 but returns val_1: property (2).
	h := hist(t, "iw:a", "rw", "iw:b", "rw", "ir:1", "rr:1:a")
	wantViolation(t, CheckAtomic(h), "atomicity(2)")
	wantViolation(t, CheckRegular(h), "atomicity(2)")
	if lin, _ := CheckLinearizable(h); lin {
		t.Error("stale read accepted by linearizability checker")
	}
}

func TestBottomAfterWriteViolation(t *testing.T) {
	h := hist(t, "iw:a", "rw", "ir:1", "rr:1")
	wantViolation(t, CheckAtomic(h), "atomicity(2)")
}

func TestFutureReadViolation(t *testing.T) {
	// Read completes before wr_1 invoked yet returns val_1: property (3).
	h := &History{}
	r := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r, "a")
	w := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w, types.Bottom)
	wantViolation(t, CheckAtomic(h), "atomicity(3)")
	wantViolation(t, CheckRegular(h), "atomicity(3)")
	if lin, _ := CheckLinearizable(h); lin {
		t.Error("future read accepted by linearizability checker")
	}
}

func TestNewOldInversion(t *testing.T) {
	// rd1 returns val_2, rd2 succeeds rd1 and returns val_1: property (4)
	// violated, but regularity holds (write(b) concurrent with both reads).
	h := &History{}
	w1 := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w1, types.Bottom)
	w2 := h.Invoke(types.Writer, OpWrite, "b") // stays pending (concurrent)
	r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r1, "b")
	r2 := h.Invoke(types.Reader(2), OpRead, types.Bottom)
	h.Respond(r2, "a")
	_ = w2
	wantViolation(t, CheckAtomic(h), "atomicity(4)")
	if err := CheckRegular(h); err != nil {
		t.Errorf("regular history flagged: %v", err)
	}
	if lin, _ := CheckLinearizable(h); lin {
		t.Error("new/old inversion accepted by linearizability checker")
	}
}

func TestConcurrentReadsMayDiverge(t *testing.T) {
	// Two overlapping reads around a concurrent write may return old and new
	// in any combination.
	h := &History{}
	w1 := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w1, types.Bottom)
	w2 := h.Invoke(types.Writer, OpWrite, "b")
	r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	r2 := h.Invoke(types.Reader(2), OpRead, types.Bottom)
	h.Respond(r1, "b")
	h.Respond(r2, "a")
	h.Respond(w2, types.Bottom)
	if err := CheckAtomic(h); err != nil {
		t.Errorf("concurrent reads flagged: %v", err)
	}
	if lin, _ := CheckLinearizable(h); !lin {
		t.Error("valid concurrent history not linearizable")
	}
}

func TestReadConcurrentWithWriteMayReturnEither(t *testing.T) {
	for _, ret := range []types.Value{"a", "b"} {
		h := &History{}
		w1 := h.Invoke(types.Writer, OpWrite, "a")
		h.Respond(w1, types.Bottom)
		w2 := h.Invoke(types.Writer, OpWrite, "b")
		r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
		h.Respond(r1, ret)
		h.Respond(w2, types.Bottom)
		if err := CheckAtomic(h); err != nil {
			t.Errorf("ret=%s flagged: %v", ret, err)
		}
	}
}

func TestSafetyAllowsAnythingUnderConcurrency(t *testing.T) {
	// A safe register may return any written value under read/write
	// concurrency — but never an unwritten one in our model.
	h := &History{}
	w1 := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w1, types.Bottom)
	w2 := h.Invoke(types.Writer, OpWrite, "b")
	r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r1, types.Bottom) // stale ⊥ under concurrency: safe, not regular
	h.Respond(w2, types.Bottom)
	if err := CheckSafe(h); err != nil {
		t.Errorf("safe history flagged: %v", err)
	}
	wantViolation(t, CheckRegular(h), "atomicity(2)")
}

func TestWellFormedDuplicateValues(t *testing.T) {
	h := hist(t, "iw:a", "rw", "iw:a", "rw")
	wantViolation(t, CheckAtomic(h), "well-formed")
}

func TestWellFormedOverlappingWrites(t *testing.T) {
	h := &History{}
	h.Invoke(types.Writer, OpWrite, "a") // pending
	h.Invoke(types.Writer, OpWrite, "b") // invoked while pending
	wantViolation(t, CheckAtomic(h), "well-formed")
}

func TestWellFormedBottomWrite(t *testing.T) {
	h := &History{}
	w := h.Invoke(types.Writer, OpWrite, types.Bottom)
	h.Respond(w, types.Bottom)
	wantViolation(t, CheckAtomic(h), "well-formed")
}

func TestPendingWriteMayTakeEffect(t *testing.T) {
	// A crashed writer's value may legitimately be returned forever after.
	h := &History{}
	h.Invoke(types.Writer, OpWrite, "a") // never responds
	r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r1, "a")
	r2 := h.Invoke(types.Reader(2), OpRead, types.Bottom)
	h.Respond(r2, "a")
	if err := CheckAtomic(h); err != nil {
		t.Errorf("pending write effect flagged: %v", err)
	}
	if lin, _ := CheckLinearizable(h); !lin {
		t.Error("pending-write history not linearizable")
	}
}

func TestPendingWriteOnceVisibleStaysVisible(t *testing.T) {
	// Atomicity(4): after rd1 returned the pending write, rd2 cannot revert.
	h := &History{}
	h.Invoke(types.Writer, OpWrite, "a") // never responds
	r1 := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r1, "a")
	r2 := h.Invoke(types.Reader(2), OpRead, types.Bottom)
	h.Respond(r2, types.Bottom)
	wantViolation(t, CheckAtomic(h), "atomicity(4)")
	if lin, _ := CheckLinearizable(h); lin {
		t.Error("revert of pending write accepted by linearizability checker")
	}
}

func TestLinearizableHandlesDuplicateValues(t *testing.T) {
	h := &History{}
	w1 := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w1, types.Bottom)
	w2 := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(w2, types.Bottom)
	r := h.Invoke(types.Reader(1), OpRead, types.Bottom)
	h.Respond(r, "a")
	if lin, _ := CheckLinearizable(h); !lin {
		t.Error("duplicate-value history not linearizable")
	}
}

func TestLinearizableSizeLimit(t *testing.T) {
	h := &History{}
	for i := 0; i < MaxLinearizableOps+1; i++ {
		id := h.Invoke(types.Reader(1), OpRead, types.Bottom)
		h.Respond(id, types.Bottom)
	}
	if _, err := CheckLinearizable(h); err == nil {
		t.Error("oversized history accepted")
	}
}

func TestHistoryAccessors(t *testing.T) {
	h := hist(t, "iw:a", "rw", "iw:b", "rw", "ir:1", "rr:1:b")
	if h.Len() != 3 {
		t.Errorf("Len = %d", h.Len())
	}
	ws := h.Writes()
	if len(ws) != 2 || ws[0].Arg != "a" || ws[1].Arg != "b" {
		t.Errorf("Writes = %v", ws)
	}
	if !ws[0].Precedes(ws[1]) || ws[1].Precedes(ws[0]) {
		t.Error("precedence broken")
	}
	if ws[0].ConcurrentWith(ws[1]) {
		t.Error("sequential writes reported concurrent")
	}
	if s := ws[0].String(); !strings.Contains(s, "write_1(a)") {
		t.Errorf("String = %q", s)
	}
}

func TestViolationErrorFormat(t *testing.T) {
	h := hist(t, "iw:a", "rw", "ir:1", "rr:1:z")
	err := CheckAtomic(h)
	if err == nil || !strings.Contains(err.Error(), "atomicity(1)") {
		t.Errorf("error text: %v", err)
	}
}

func TestRespondPanics(t *testing.T) {
	h := &History{}
	id := h.Invoke(types.Writer, OpWrite, "a")
	h.Respond(id, types.Bottom)
	for name, f := range map[string]func(){
		"twice":   func() { h.Respond(id, types.Bottom) },
		"unknown": func() { h.Respond(99, types.Bottom) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
