package checker

import (
	"fmt"
	"sort"

	"robustatomic/internal/types"
)

// MaxLinearizableOps bounds the history size accepted by CheckLinearizable;
// the permutation search is exponential in the worst case.
const MaxLinearizableOps = 20

// CheckLinearizable performs a Wing–Gong style search for a linearization of
// the history under read/write register semantics with initial value ⊥. It
// handles duplicate written values and incomplete operations: a pending
// write may or may not take effect; a pending read is ignored (its return
// value is unknown). It returns true if a valid linearization exists.
//
// This is the generic cross-check for the specialized single-writer
// checkers; it accepts multi-writer histories too.
func CheckLinearizable(h *History) (bool, error) {
	ops := h.Ops()
	if len(ops) > MaxLinearizableOps {
		return false, fmt.Errorf("checker: history has %d ops, max %d", len(ops), MaxLinearizableOps)
	}
	// Pending reads carry no obligations: drop them.
	kept := ops[:0:0]
	for _, op := range ops {
		if op.Kind == OpRead && !op.Complete() {
			continue
		}
		kept = append(kept, op)
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].Invoke < kept[j].Invoke })
	s := &linSearch{ops: kept, memo: make(map[string]bool)}
	return s.search(0, types.Bottom), nil
}

type linSearch struct {
	ops  []Op
	done uint32 // bitmask of linearized ops
	skip uint32 // bitmask of pending writes decided to never take effect
	memo map[string]bool
}

// minimalCandidates returns indices of ops that may be linearized next: an
// op is blocked if some other unlinearized op completed before it was
// invoked.
func (s *linSearch) minimalCandidates() []int {
	var out []int
	for i, op := range s.ops {
		if s.done&(1<<uint(i)) != 0 || s.skip&(1<<uint(i)) != 0 {
			continue
		}
		blocked := false
		for j, other := range s.ops {
			if i == j || s.done&(1<<uint(j)) != 0 || s.skip&(1<<uint(j)) != 0 {
				continue
			}
			if other.Precedes(op) {
				blocked = true
				break
			}
		}
		if !blocked {
			out = append(out, i)
		}
		_ = op
	}
	return out
}

func (s *linSearch) remaining() int {
	n := 0
	for i := range s.ops {
		if s.done&(1<<uint(i)) == 0 && s.skip&(1<<uint(i)) == 0 {
			n++
		}
	}
	return n
}

func (s *linSearch) search(depth int, current types.Value) bool {
	if s.remaining() == 0 {
		return true
	}
	key := fmt.Sprintf("%d/%d/%s", s.done, s.skip, current)
	if v, ok := s.memo[key]; ok {
		return v
	}
	ok := false
	for _, i := range s.minimalCandidates() {
		op := s.ops[i]
		switch op.Kind {
		case OpWrite:
			// Option A: linearize the write now.
			s.done |= 1 << uint(i)
			if s.search(depth+1, op.Arg) {
				ok = true
			}
			s.done &^= 1 << uint(i)
			// Option B: a pending write may never take effect.
			if !ok && !op.Complete() {
				s.skip |= 1 << uint(i)
				if s.search(depth+1, current) {
					ok = true
				}
				s.skip &^= 1 << uint(i)
			}
		case OpRead:
			if op.Ret == current {
				s.done |= 1 << uint(i)
				if s.search(depth+1, current) {
					ok = true
				}
				s.done &^= 1 << uint(i)
			}
		}
		if ok {
			break
		}
	}
	s.memo[key] = ok
	return ok
}
