package checker

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"robustatomic/internal/types"
)

// Budget bounds the exhaustive linearization search of CheckAtomicMWBudget.
// The zero value means unlimited. A budget exists so that torture-scale
// histories fail loudly with a partial witness instead of hanging the
// harness: the search is polynomial in practice but adversarial histories
// (many pending writes, heavy concurrency on one key) can still blow up.
type Budget struct {
	MaxNodes int           // cap on explored search states (0 = unlimited)
	Deadline time.Duration // wall-clock cap for the search (0 = unlimited)
}

// BudgetError reports that the linearization search exhausted its budget
// before reaching a verdict. The history is NOT proven non-atomic — the
// error carries a partial witness (the deepest linearized prefix reached) so
// the caller can decide whether to re-run with a larger budget or treat the
// history as too contended to certify.
type BudgetError struct {
	Nodes      int           // states explored when the budget tripped
	Elapsed    time.Duration // wall time spent searching
	Linearized int           // deepest linearized prefix reached (partial witness)
	Total      int           // operations the search must linearize
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf(
		"mw-atomicity undecided: search budget exhausted after %d states (%v); partial witness linearizes %d/%d operations",
		e.Nodes, e.Elapsed.Round(time.Millisecond), e.Linearized, e.Total)
}

// CheckAtomicMW verifies atomicity of a MULTI-WRITER register history:
// linearizability under read/write register semantics with initial value ⊥,
// assuming no total write order — writes are tagged with their (writer)
// client and only per-client ordering plus real time constrain them. This is
// the correctness condition of the repository's MWMR registers, where the
// single-writer checker's write-sequence preprocessing does not apply.
//
// The history must be well-formed: each client's operations are sequential
// and written non-⊥ values are pairwise distinct (distinct values make "read
// returns the value of write w" unambiguous — the protocols' tests write
// writer-tagged values). A write of ⊥ models a Delete (tombstone install):
// any number of them may appear, and a read returning ⊥ then means "key
// absent at the linearization point". Pending writes may or may not take
// effect; pending reads are ignored.
//
// The search exploits that a linearization respects each client's own order,
// so any prefix of linearized operations is a vector of per-client queue
// prefixes: the state space is (per-client positions × current value), which
// memoization keeps polynomial in practice for bounded client counts —
// unlike the flat Wing–Gong bitmask search of CheckLinearizable, this scales
// to the property tests' histories. Fast paths first report the common
// violations (fabricated values, future reads, stale reads, new/old
// inversions) with precise witnesses; the exhaustive search then decides the
// remainder. When the history contains deletes, the two fast checks that
// equate "read returned ⊥" with "no write took effect yet" are unsound and
// are skipped — the exhaustive search alone decides.
func CheckAtomicMW(h *History) error {
	return CheckAtomicMWBudget(h, Budget{})
}

// CheckAtomicMWBudget is CheckAtomicMW with a bound on the exhaustive
// search. It returns nil (atomic), a *Violation (provably non-atomic), or a
// *BudgetError (undecided: budget exhausted; includes a partial witness).
func CheckAtomicMWBudget(h *History, budget Budget) error {
	ops := h.Ops()
	writeOf := make(map[types.Value]Op, len(ops))
	var reads []Op
	deletes := false
	for _, op := range ops {
		switch op.Kind {
		case OpWrite:
			if op.Arg.IsBottom() {
				deletes = true // tombstone write (Delete); decided by the search
				continue
			}
			if prev, dup := writeOf[op.Arg]; dup {
				return &Violation{
					Prop:   "well-formed",
					Detail: fmt.Sprintf("duplicate written value %q; use distinct (writer-tagged) values", op.Arg),
					Ops:    []Op{prev, op},
				}
			}
			writeOf[op.Arg] = op
		case OpRead:
			if op.Complete() {
				reads = append(reads, op)
			}
		}
	}

	// Fast property checks with precise witnesses.
	if v := checkMWValidity(reads, writeOf); v != nil {
		return v
	}
	if v := checkMWNoFuture(reads, writeOf); v != nil {
		return v
	}
	if !deletes {
		// Both checks treat a ⊥ read as "before every write", which a
		// linearized Delete invalidates; with deletes only the search decides.
		if v := checkMWStaleReads(ops, reads, writeOf); v != nil {
			return v
		}
		if v := checkMWInversions(reads, writeOf); v != nil {
			return v
		}
	}

	// Exhaustive decision: search for a linearization.
	queues, v := mwQueues(ops)
	if v != nil {
		return v
	}
	s := &mwSearch{queues: queues, memo: make(map[string]bool), budget: budget}
	if budget.Deadline > 0 {
		s.deadline = time.Now().Add(budget.Deadline)
	}
	start := time.Now()
	ok := s.search(make([]int, len(queues)), types.Bottom)
	if s.exceeded {
		total := 0
		for _, q := range queues {
			total += len(q)
		}
		return &BudgetError{
			Nodes:      s.nodes,
			Elapsed:    time.Since(start),
			Linearized: s.best,
			Total:      total,
		}
	}
	if !ok {
		return &Violation{
			Prop:   "mw-atomicity",
			Detail: fmt.Sprintf("no linearization of the %d-operation multi-writer history exists", len(ops)),
		}
	}
	return nil
}

// checkMWValidity: returned values were written (or ⊥) — property (1).
func checkMWValidity(reads []Op, writeOf map[types.Value]Op) *Violation {
	for _, rd := range reads {
		if rd.Ret.IsBottom() {
			continue
		}
		if _, ok := writeOf[rd.Ret]; !ok {
			return &Violation{
				Prop:   "mw-atomicity(1)",
				Detail: fmt.Sprintf("read returned %q which was never written", rd.Ret),
				Ops:    []Op{rd},
			}
		}
	}
	return nil
}

// checkMWNoFuture: a read does not return a value whose write it precedes —
// property (3).
func checkMWNoFuture(reads []Op, writeOf map[types.Value]Op) *Violation {
	for _, rd := range reads {
		if rd.Ret.IsBottom() {
			continue
		}
		if wr := writeOf[rd.Ret]; rd.Precedes(wr) {
			return &Violation{
				Prop:   "mw-atomicity(3)",
				Detail: fmt.Sprintf("read returned %q but completed before its write was invoked", rd.Ret),
				Ops:    []Op{rd, wr},
			}
		}
	}
	return nil
}

// checkMWStaleReads: if write(v) completed before write(v') was invoked, and
// write(v') completed before the read was invoked, the read cannot return v
// — the multi-writer form of property (2): some write seals v away before
// the read begins, regardless of how concurrent writes interleave.
func checkMWStaleReads(ops, reads []Op, writeOf map[types.Value]Op) *Violation {
	for _, rd := range reads {
		wr, sealed := writeOf[rd.Ret]
		if !rd.Ret.IsBottom() && !sealed {
			continue // fabricated; reported by validity
		}
		for _, sealer := range ops {
			if sealer.Kind != OpWrite || !sealer.Precedes(rd) {
				continue
			}
			if rd.Ret.IsBottom() {
				// ⊥ after any complete write is stale.
				return &Violation{
					Prop:   "mw-atomicity(2)",
					Detail: "read returned ⊥ but succeeds a complete write",
					Ops:    []Op{rd, sealer},
				}
			}
			if wr.Precedes(sealer) {
				return &Violation{
					Prop:   "mw-atomicity(2)",
					Detail: fmt.Sprintf("read returned %q, but a later write completed before the read began", rd.Ret),
					Ops:    []Op{rd, wr, sealer},
				}
			}
		}
	}
	return nil
}

// checkMWInversions: rd2 succeeding rd1 cannot return a value whose write
// precedes rd1's value's write — property (4) without a total write order.
func checkMWInversions(reads []Op, writeOf map[types.Value]Op) *Violation {
	for _, rd1 := range reads {
		if rd1.Ret.IsBottom() {
			continue
		}
		w1, ok := writeOf[rd1.Ret]
		if !ok {
			continue
		}
		for _, rd2 := range reads {
			if rd1.ID == rd2.ID || !rd1.Precedes(rd2) {
				continue
			}
			if rd2.Ret.IsBottom() {
				return &Violation{
					Prop:   "mw-atomicity(4)",
					Detail: fmt.Sprintf("rd2 succeeds rd1 but returned ⊥ after rd1 returned %q (new/old inversion)", rd1.Ret),
					Ops:    []Op{rd1, rd2},
				}
			}
			w2, ok := writeOf[rd2.Ret]
			if !ok {
				continue
			}
			if w2.Precedes(w1) {
				return &Violation{
					Prop:   "mw-atomicity(4)",
					Detail: fmt.Sprintf("rd2 succeeds rd1 but returned %q, written strictly before rd1's %q (new/old inversion)", rd2.Ret, rd1.Ret),
					Ops:    []Op{rd1, rd2},
				}
			}
		}
	}
	return nil
}

// mwQueues splits the history into per-client queues ordered by invocation,
// dropping pending reads, and validates that each client's operations are
// sequential (a pending operation, if any, is the client's last).
func mwQueues(ops []Op) ([][]Op, *Violation) {
	byClient := make(map[types.ProcID][]Op)
	var clients []types.ProcID
	for _, op := range ops {
		if op.Kind == OpRead && !op.Complete() {
			continue // no obligations
		}
		if _, seen := byClient[op.Client]; !seen {
			clients = append(clients, op.Client)
		}
		byClient[op.Client] = append(byClient[op.Client], op)
	}
	sort.Slice(clients, func(i, j int) bool {
		a, b := clients[i], clients[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Idx < b.Idx
	})
	queues := make([][]Op, 0, len(clients))
	for _, cl := range clients {
		q := byClient[cl]
		sort.Slice(q, func(i, j int) bool { return q[i].Invoke < q[j].Invoke })
		for i := 1; i < len(q); i++ {
			if !q[i-1].Complete() || q[i-1].Respond > q[i].Invoke {
				return nil, &Violation{
					Prop:   "well-formed",
					Detail: fmt.Sprintf("client %s operations overlap", cl),
					Ops:    []Op{q[i-1], q[i]},
				}
			}
		}
		queues = append(queues, q)
	}
	return queues, nil
}

// mwSearch finds a linearization over per-client queues.
type mwSearch struct {
	queues [][]Op
	memo   map[string]bool

	budget   Budget
	deadline time.Time // zero when no wall-clock cap
	nodes    int       // states explored
	best     int       // deepest linearized prefix seen (partial witness)
	exceeded bool      // budget tripped; unwinding
}

// key encodes the search state: per-queue positions plus the register value
// (written values are distinct, so the value identifies the last linearized
// effective write).
func (s *mwSearch) key(idx []int, current types.Value) string {
	b := make([]byte, 0, 4*len(idx)+len(current))
	for _, i := range idx {
		b = strconv.AppendInt(b, int64(i), 10)
		b = append(b, ',')
	}
	return string(append(b, current...))
}

func (s *mwSearch) search(idx []int, current types.Value) bool {
	if s.exceeded {
		return false
	}
	s.nodes++
	if s.budget.MaxNodes > 0 && s.nodes > s.budget.MaxNodes {
		s.exceeded = true
		return false
	}
	// Check the deadline sparingly: a time.Now() per state would dominate.
	if !s.deadline.IsZero() && s.nodes&1023 == 0 && time.Now().After(s.deadline) {
		s.exceeded = true
		return false
	}
	done := true
	depth := 0
	for qi, q := range s.queues {
		depth += idx[qi]
		if idx[qi] < len(q) {
			done = false
		}
	}
	if depth > s.best {
		s.best = depth
	}
	if done {
		return true
	}
	k := s.key(idx, current)
	if v, hit := s.memo[k]; hit {
		return v
	}
	ok := false
	for qi, q := range s.queues {
		if idx[qi] >= len(q) {
			continue
		}
		op := q[idx[qi]]
		// op may linearize next only if no other client's pending head
		// completed before op was invoked (heads suffice: a queue's later
		// ops complete no earlier than its head).
		blocked := false
		for qj, qo := range s.queues {
			if qi == qj || idx[qj] >= len(qo) {
				continue
			}
			if qo[idx[qj]].Precedes(op) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		idx[qi]++
		switch op.Kind {
		case OpWrite:
			if s.search(idx, op.Arg) {
				ok = true
			}
			if !ok && !op.Complete() {
				// A pending write may also never take effect.
				if s.search(idx, current) {
					ok = true
				}
			}
		case OpRead:
			if op.Ret == current && s.search(idx, current) {
				ok = true
			}
		}
		idx[qi]--
		if ok {
			break
		}
	}
	if !s.exceeded {
		// A budget-truncated subtree must not poison the memo: its false is
		// "gave up", not "proven impossible".
		s.memo[k] = ok
	}
	return ok
}
