// Package checker records operation histories and verifies the correctness
// conditions of Section 2.2 of the paper: the four atomicity properties of
// single-writer registers, plus regularity and safety [Lamport86], plus a
// general linearizability check used to cross-validate the specialized
// single-writer checkers.
package checker

import (
	"fmt"
	"sort"
	"sync"

	"robustatomic/internal/types"
)

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds.
const (
	OpWrite OpKind = iota + 1
	OpRead
)

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if k == OpWrite {
		return "write"
	}
	return "read"
}

// Op is one recorded operation. Invocation and response times come from the
// history's logical clock; Respond < 0 marks an incomplete (pending)
// operation, e.g. one whose client crashed.
type Op struct {
	ID      int
	Client  types.ProcID
	Kind    OpKind
	Arg     types.Value // written value (writes)
	Ret     types.Value // returned value (complete reads)
	Invoke  int64
	Respond int64 // -1 while pending
	Seq     int   // writes: 1-based position in the writer's order
}

// Complete reports whether the operation has responded.
func (o Op) Complete() bool { return o.Respond >= 0 }

// Precedes reports whether o completed before p was invoked (the paper's
// "op1 precedes op2").
func (o Op) Precedes(p Op) bool { return o.Complete() && o.Respond < p.Invoke }

// ConcurrentWith reports whether neither operation precedes the other.
func (o Op) ConcurrentWith(p Op) bool { return !o.Precedes(p) && !p.Precedes(o) }

// String implements fmt.Stringer.
func (o Op) String() string {
	span := fmt.Sprintf("[%d,%d]", o.Invoke, o.Respond)
	if !o.Complete() {
		span = fmt.Sprintf("[%d,…)", o.Invoke)
	}
	if o.Kind == OpWrite {
		return fmt.Sprintf("%s:write_%d(%s)%s", o.Client, o.Seq, o.Arg, span)
	}
	return fmt.Sprintf("%s:read→%s%s", o.Client, o.Ret, span)
}

// History is a concurrency-safe record of register operations under a single
// logical clock. The zero value is ready to use.
type History struct {
	mu     sync.Mutex
	clock  int64
	ops    []Op
	writes int
}

// Invoke records the invocation of an operation and returns its id.
func (h *History) Invoke(client types.ProcID, kind OpKind, arg types.Value) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock++
	op := Op{
		ID:      len(h.ops),
		Client:  client,
		Kind:    kind,
		Arg:     arg,
		Invoke:  h.clock,
		Respond: -1,
	}
	if kind == OpWrite {
		h.writes++
		op.Seq = h.writes
	}
	h.ops = append(h.ops, op)
	return op.ID
}

// Respond records the response of operation id; ret is the returned value
// for reads and ignored for writes.
func (h *History) Respond(id int, ret types.Value) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if id < 0 || id >= len(h.ops) {
		panic(fmt.Sprintf("checker: Respond(%d) unknown op", id))
	}
	if h.ops[id].Complete() {
		panic(fmt.Sprintf("checker: op %d responded twice", id))
	}
	h.clock++
	h.ops[id].Respond = h.clock
	h.ops[id].Ret = ret
}

// Ops returns a snapshot of all recorded operations, ordered by invocation.
func (h *History) Ops() []Op {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]Op, len(h.ops))
	copy(out, h.ops)
	return out
}

// Writes returns the writer's operations in sequence order.
func (h *History) Writes() []Op {
	var out []Op
	for _, op := range h.Ops() {
		if op.Kind == OpWrite {
			out = append(out, op)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Len returns the number of recorded operations.
func (h *History) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.ops)
}

// Violation describes a correctness failure found by a checker.
type Violation struct {
	Prop   string // "atomicity(1)".."atomicity(4)", "regularity", "safety", "well-formed"
	Detail string
	Ops    []Op // the witnesses
}

// Error implements the error interface.
func (v *Violation) Error() string {
	s := fmt.Sprintf("%s violated: %s", v.Prop, v.Detail)
	for _, op := range v.Ops {
		s += "\n  " + op.String()
	}
	return s
}
