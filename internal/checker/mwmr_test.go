package checker

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"robustatomic/internal/types"
)

// mwHist replays a script of (client, kind, value) events against a History.
// Events: "w1+a" = writer 1 invokes write of a; "w1-" = writer 1's pending
// op responds; "r2+"/"r2-x" = reader invoke / respond with x. Ops respond in
// the order given, building arbitrary overlap patterns.
type mwEvent struct {
	invoke bool
	client types.ProcID
	kind   OpKind
	val    types.Value // written value on invoke, returned value on respond
}

func runEvents(t *testing.T, events []mwEvent) *History {
	t.Helper()
	h := &History{}
	open := map[types.ProcID]int{}
	for i, ev := range events {
		if ev.invoke {
			if _, dup := open[ev.client]; dup {
				t.Fatalf("event %d: client %s already has a pending op", i, ev.client)
			}
			open[ev.client] = h.Invoke(ev.client, ev.kind, ev.val)
		} else {
			id, ok := open[ev.client]
			if !ok {
				t.Fatalf("event %d: client %s has no pending op", i, ev.client)
			}
			delete(open, ev.client)
			h.Respond(id, ev.val)
		}
	}
	return h
}

func inv(client types.ProcID, kind OpKind, val types.Value) mwEvent {
	return mwEvent{invoke: true, client: client, kind: kind, val: val}
}

func rsp(client types.ProcID, val types.Value) mwEvent {
	return mwEvent{client: client, val: val}
}

func TestMWSequentialWritersAtomic(t *testing.T) {
	w1, w2, r1 := types.WriterID(1), types.WriterID(2), types.Reader(1)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"), rsp(w1, ""),
		inv(w2, OpWrite, "b"), rsp(w2, ""),
		inv(r1, OpRead, ""), rsp(r1, "b"),
		inv(r1, OpRead, ""), rsp(r1, "b"),
	})
	if err := CheckAtomicMW(h); err != nil {
		t.Fatal(err)
	}
}

func TestMWConcurrentWritersEitherOrder(t *testing.T) {
	// Two overlapping writes: a subsequent read may return either value, and
	// a read chain may settle on one — both histories are atomic.
	for _, winner := range []types.Value{"a", "b"} {
		w1, w2, r1 := types.WriterID(1), types.WriterID(2), types.Reader(1)
		h := runEvents(t, []mwEvent{
			inv(w1, OpWrite, "a"),
			inv(w2, OpWrite, "b"),
			rsp(w1, ""), rsp(w2, ""),
			inv(r1, OpRead, ""), rsp(r1, winner),
			inv(r1, OpRead, ""), rsp(r1, winner),
		})
		if err := CheckAtomicMW(h); err != nil {
			t.Fatalf("winner %s: %v", winner, err)
		}
	}
}

// TestMWCatchesStaleRead is the deliberately non-atomic regression history
// the satellite task calls for: writer 2's write completes strictly after
// writer 1's and strictly before the read begins, yet the read returns
// writer 1's value — stale, though each write alone looks fine.
func TestMWCatchesStaleRead(t *testing.T) {
	w1, w2, r1 := types.WriterID(1), types.WriterID(2), types.Reader(1)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "w1-a"), rsp(w1, ""),
		inv(w2, OpWrite, "w2-b"), rsp(w2, ""),
		inv(r1, OpRead, ""), rsp(r1, "w1-a"),
	})
	err := CheckAtomicMW(h)
	if err == nil {
		t.Fatal("stale multi-writer read not caught")
	}
	if v, ok := err.(*Violation); !ok || v.Prop != "mw-atomicity(2)" {
		t.Fatalf("violation = %v, want mw-atomicity(2)", err)
	}
}

func TestMWCatchesNewOldInversion(t *testing.T) {
	// Writes by two writers complete in real-time order a then b; overlapping
	// reads by two readers return b then — after the first read completed —
	// a: a new/old inversion no write order can explain.
	w1, w2, r1, r2 := types.WriterID(1), types.WriterID(2), types.Reader(1), types.Reader(2)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"), rsp(w1, ""),
		inv(w2, OpWrite, "b"),
		inv(r1, OpRead, ""), rsp(r1, "b"),
		inv(r2, OpRead, ""), rsp(r2, "a"),
		rsp(w2, ""),
	})
	err := CheckAtomicMW(h)
	if err == nil {
		t.Fatal("new/old inversion not caught")
	}
	if v, ok := err.(*Violation); !ok || v.Prop != "mw-atomicity(4)" {
		t.Fatalf("violation = %v, want mw-atomicity(4)", err)
	}
}

func TestMWCatchesFabricationAndFuture(t *testing.T) {
	w1, r1 := types.WriterID(1), types.Reader(1)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"), rsp(w1, ""),
		inv(r1, OpRead, ""), rsp(r1, "forged"),
	})
	if v, ok := CheckAtomicMW(h).(*Violation); !ok || v.Prop != "mw-atomicity(1)" {
		t.Fatalf("fabricated value: %v", v)
	}
	h2 := runEvents(t, []mwEvent{
		inv(r1, OpRead, ""), rsp(r1, "late"),
		inv(w1, OpWrite, "late"), rsp(w1, ""),
	})
	if v, ok := CheckAtomicMW(h2).(*Violation); !ok || v.Prop != "mw-atomicity(3)" {
		t.Fatalf("future read: %v", v)
	}
}

func TestMWPendingWriteMayOrMayNotTakeEffect(t *testing.T) {
	// A crashed writer's pending write can legally surface later (r1 ⊥ then
	// r2 sees it) — and can legally never surface at all.
	w1, r1, r2 := types.WriterID(1), types.Reader(1), types.Reader(2)
	for _, second := range []types.Value{"", "x"} {
		h := runEvents(t, []mwEvent{
			inv(w1, OpWrite, "x"), // never responds: writer crashed
			inv(r1, OpRead, ""), rsp(r1, ""),
			inv(r2, OpRead, ""), rsp(r2, second),
		})
		if err := CheckAtomicMW(h); err != nil {
			t.Fatalf("second read %q: %v", second, err)
		}
	}
	// But once surfaced, it cannot un-surface.
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "x"),
		inv(r1, OpRead, ""), rsp(r1, "x"),
		inv(r2, OpRead, ""), rsp(r2, ""),
	})
	if err := CheckAtomicMW(h); err == nil {
		t.Fatal("un-surfaced pending write not caught")
	}
}

func TestMWSearchCatchesDeepViolation(t *testing.T) {
	// A violation none of the fast property checks see: every pairwise
	// real-time constraint is satisfiable, but the three reads' values force
	// a cyclic write order. Writers w1, w2 write concurrently; reader chains
	// observe a→b and b→a through non-overlapping read pairs of two readers.
	w1, w2, r1, r2 := types.WriterID(1), types.WriterID(2), types.Reader(1), types.Reader(2)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"),
		inv(w2, OpWrite, "b"),
		inv(r1, OpRead, ""), rsp(r1, "a"),
		inv(r1, OpRead, ""), rsp(r1, "b"), // r1: a before b
		inv(r2, OpRead, ""), rsp(r2, "b"),
		inv(r2, OpRead, ""), rsp(r2, "a"), // r2: b before a — contradiction
		rsp(w1, ""), rsp(w2, ""),
	})
	err := CheckAtomicMW(h)
	if err == nil {
		t.Fatal("cyclic read order not caught")
	}
	if v, ok := err.(*Violation); !ok || v.Prop != "mw-atomicity" {
		t.Fatalf("violation = %v, want the search to decide", err)
	}
}

func TestMWAgreesWithGenericLinearizabilityChecker(t *testing.T) {
	// Randomized cross-validation on small histories: the specialized MW
	// checker and the generic Wing–Gong search must agree.
	for seed := int64(0); seed < 400; seed++ {
		rng := rand.New(rand.NewSource(seed * 7919))
		h := randomMWHistory(rng)
		if h.Len() > MaxLinearizableOps {
			continue
		}
		lin, err := CheckLinearizable(h)
		if err != nil {
			t.Fatal(err)
		}
		mwErr := CheckAtomicMW(h)
		if mw, ok := mwErr.(*Violation); ok && mw.Prop == "well-formed" {
			continue // duplicate values: outside the specialized checker's domain
		}
		if lin != (mwErr == nil) {
			t.Fatalf("seed %d: generic=%v specialized=%v\nhistory: %v", seed, lin, mwErr, h.Ops())
		}
	}
}

// randomMWHistory builds a random small history over 2 writers and 2
// readers with distinct written values and random overlap, where read
// return values are drawn from written values, ⊥, or (rarely) garbage.
func randomMWHistory(rng *rand.Rand) *History {
	h := &History{}
	type pendingOp struct {
		client types.ProcID
		id     int
		kind   OpKind
	}
	clients := []types.ProcID{types.WriterID(1), types.WriterID(2), types.Reader(1), types.Reader(2)}
	pending := map[types.ProcID]*pendingOp{}
	var written []types.Value
	nextVal := 0
	steps := 4 + rng.Intn(8)
	for i := 0; i < steps; i++ {
		cl := clients[rng.Intn(len(clients))]
		if p := pending[cl]; p != nil {
			ret := types.Bottom
			if p.kind == OpRead {
				switch r := rng.Intn(6); {
				case r == 0 || len(written) == 0:
					ret = types.Bottom
				case r == 1:
					ret = "garbage"
				default:
					ret = written[rng.Intn(len(written))]
				}
			}
			h.Respond(p.id, ret)
			delete(pending, cl)
			continue
		}
		if cl.Kind == types.KindWriter {
			v := types.Value(fmt.Sprintf("v%d", nextVal))
			nextVal++
			pending[cl] = &pendingOp{client: cl, id: h.Invoke(cl, OpWrite, v), kind: OpWrite}
			written = append(written, v)
		} else {
			pending[cl] = &pendingOp{client: cl, id: h.Invoke(cl, OpRead, ""), kind: OpRead}
		}
	}
	return h
}

func TestMWDeleteHistories(t *testing.T) {
	// A write of ⊥ models Delete: a tombstone that later reads observe as
	// "key absent". Sequential install → read → delete → read is atomic.
	w1, r1 := types.WriterID(1), types.Reader(1)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"), rsp(w1, ""),
		inv(r1, OpRead, ""), rsp(r1, "a"),
		inv(w1, OpWrite, types.Bottom), rsp(w1, ""), // delete
		inv(r1, OpRead, ""), rsp(r1, types.Bottom),
	})
	if err := CheckAtomicMW(h); err != nil {
		t.Fatalf("delete then ⊥ read: %v", err)
	}

	// Multiple tombstones are legal (⊥ is exempt from the distinct-values
	// rule) and a concurrent delete lets a read return either state.
	w2, r2 := types.WriterID(2), types.Reader(2)
	for _, seen := range []types.Value{"b", types.Bottom} {
		h := runEvents(t, []mwEvent{
			inv(w1, OpWrite, types.Bottom), rsp(w1, ""), // delete of absent key
			inv(w1, OpWrite, "b"), rsp(w1, ""),
			inv(w2, OpWrite, types.Bottom), // concurrent delete
			inv(r1, OpRead, ""), rsp(r1, seen),
			rsp(w2, ""),
		})
		if err := CheckAtomicMW(h); err != nil {
			t.Fatalf("concurrent delete, read %q: %v", seen, err)
		}
	}

	// Reading the old value after a delete sealed it away is non-atomic:
	// the fast stale check is skipped for delete histories, so this must
	// come out of the exhaustive search.
	h = runEvents(t, []mwEvent{
		inv(w1, OpWrite, "c"), rsp(w1, ""),
		inv(w2, OpWrite, types.Bottom), rsp(w2, ""), // delete completes
		inv(r2, OpRead, ""), rsp(r2, "c"),
	})
	err := CheckAtomicMW(h)
	if err == nil {
		t.Fatal("read of deleted value not caught")
	}
	if v, ok := err.(*Violation); !ok || v.Prop != "mw-atomicity" {
		t.Fatalf("violation = %v, want mw-atomicity from the search", err)
	}

	// Resurrection: once ⊥ surfaced after the delete, the old value cannot
	// come back.
	h = runEvents(t, []mwEvent{
		inv(w1, OpWrite, "d"), rsp(w1, ""),
		inv(w2, OpWrite, types.Bottom), rsp(w2, ""),
		inv(r1, OpRead, ""), rsp(r1, types.Bottom),
		inv(r1, OpRead, ""), rsp(r1, "d"),
	})
	if err := CheckAtomicMW(h); err == nil {
		t.Fatal("resurrected deleted value not caught")
	}
}

func TestMWBudgetNodeCap(t *testing.T) {
	// A tiny node cap on a perfectly atomic history must come back as a
	// BudgetError (undecided) carrying a partial witness, not a Violation.
	w1, r1 := types.WriterID(1), types.Reader(1)
	h := runEvents(t, []mwEvent{
		inv(w1, OpWrite, "a"), rsp(w1, ""),
		inv(r1, OpRead, ""), rsp(r1, "a"),
		inv(w1, OpWrite, "b"), rsp(w1, ""),
		inv(r1, OpRead, ""), rsp(r1, "b"),
		inv(w1, OpWrite, "c"), rsp(w1, ""),
	})
	err := CheckAtomicMWBudget(h, Budget{MaxNodes: 3})
	be, ok := err.(*BudgetError)
	if !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Nodes > 4 {
		t.Fatalf("explored %d nodes past a cap of 3", be.Nodes)
	}
	if be.Linearized <= 0 || be.Linearized >= be.Total {
		t.Fatalf("partial witness %d/%d, want a proper nonempty prefix", be.Linearized, be.Total)
	}
	// The same history with room to breathe is decided atomic.
	if err := CheckAtomicMWBudget(h, Budget{MaxNodes: 1 << 20}); err != nil {
		t.Fatalf("with ample budget: %v", err)
	}
}

func TestMWBudgetDeadline(t *testing.T) {
	// A non-linearizable history whose refutation needs a large exploration:
	// 8 concurrent pending writes, reader 1 surfaces v1..v8 in order, then
	// reader 2 (strictly after) reads v8 and v1 — v1's write already
	// linearized, so the search must exhaust every interleaving to refute.
	// The 1ns deadline trips at the first 1024-node check.
	var events []mwEvent
	for i := 1; i <= 8; i++ {
		events = append(events, inv(types.WriterID(i), OpWrite, types.Value(fmt.Sprintf("v%d", i))))
	}
	r1, r2 := types.Reader(1), types.Reader(2)
	for i := 1; i <= 8; i++ {
		events = append(events, inv(r1, OpRead, ""), rsp(r1, types.Value(fmt.Sprintf("v%d", i))))
	}
	events = append(events,
		inv(r2, OpRead, ""), rsp(r2, "v8"),
		inv(r2, OpRead, ""), rsp(r2, "v1"),
	)
	h := runEvents(t, events)
	err := CheckAtomicMWBudget(h, Budget{Deadline: time.Nanosecond})
	be, ok := err.(*BudgetError)
	if !ok {
		t.Fatalf("err = %v, want *BudgetError", err)
	}
	if be.Nodes < 1024 {
		t.Fatalf("deadline tripped after %d nodes, before the first 1024-node check", be.Nodes)
	}
	// Unbudgeted, the search proves the violation.
	if v, ok := CheckAtomicMW(h).(*Violation); !ok || v.Prop != "mw-atomicity" {
		t.Fatalf("unbudgeted verdict = %v, want mw-atomicity violation", v)
	}
}
