package sim

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/proto"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

func pair(ts int64, v string) types.Pair { return types.Pair{TS: types.At(ts), Val: types.Value(v)} }

// queryOp is a toy one-round operation: query all objects, wait for `need`
// MsgState replies, return the max W value seen.
func queryOp(need int) OpFunc {
	return func(c *Client) (types.Value, error) {
		type maxAcc struct {
			*proto.CountAcc
			best *types.Pair
		}
		best := types.BottomPair
		acc := proto.NewCountAcc(need, func(_ int, m types.Message) bool {
			if m.Kind != types.MsgState {
				return false
			}
			best = types.MaxPair(best, m.W)
			return true
		})
		spec := proto.RoundSpec{
			Label: "QUERY",
			Req:   func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc:   acc,
		}
		if err := c.Round(spec); err != nil {
			return types.Bottom, err
		}
		_ = maxAcc{}
		return best.Val, nil
	}
}

// storeOp is a toy two-round operation: PREWRITE then WRITE a pair to all,
// waiting for `need` acks each round.
func storeOp(p types.Pair, need int) OpFunc {
	return func(c *Client) (types.Value, error) {
		for _, kind := range []types.MsgKind{types.MsgPreWrite, types.MsgWrite} {
			k := kind
			spec := proto.RoundSpec{
				Label: k.String(),
				Req:   func(int) types.Message { return types.Message{Kind: k, Pair: p} },
				Acc:   proto.AckAcc(need),
			}
			if err := c.Round(spec); err != nil {
				return types.Bottom, err
			}
		}
		return types.Bottom, nil
	}
}

func TestRoundCompletesOnQuorum(t *testing.T) {
	s := New(Config{Servers: 4})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	if op.Done() {
		t.Fatal("op done before any delivery")
	}
	s.Step(op, 1, 2, 3) // round 1 quorum
	if label, seq, ok := op.CurrentRound(); !ok || label != "WRITE" || seq != 2 {
		t.Fatalf("after round 1: %q seq=%d ok=%v", label, seq, ok)
	}
	s.Step(op, 1, 2, 4) // round 2 quorum (different set)
	if !op.Done() {
		t.Fatal("op not done after both rounds")
	}
	if op.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", op.Rounds())
	}
	// Servers 1, 2 got both rounds; 3 only prewrite; 4 only write (after
	// FIFO catch-up it also processed the prewrite).
	if got := s.Store(1).Reg(types.WriterReg); got.W != pair(1, "a") || got.PW != pair(1, "a") {
		t.Errorf("server 1 state %+v", got)
	}
	if got := s.Store(3).Reg(types.WriterReg); got.W != types.BottomPair || got.PW != pair(1, "a") {
		t.Errorf("server 3 state %+v", got)
	}
	if got := s.Store(4).Reg(types.WriterReg); got.W != pair(1, "a") || got.PW != pair(1, "a") {
		t.Errorf("server 4 did not catch up FIFO: %+v", got)
	}
}

func TestInsufficientRepliesKeepRoundOpen(t *testing.T) {
	s := New(Config{Servers: 4})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	s.Step(op, 1, 2)
	if _, seq, _ := op.CurrentRound(); seq != 1 {
		t.Fatalf("round advanced on 2 of 3 needed replies")
	}
	s.Step(op, 3)
	if _, seq, _ := op.CurrentRound(); seq != 2 {
		t.Fatalf("round did not advance on quorum")
	}
}

func TestLateRepliesIgnoredButObserved(t *testing.T) {
	s := New(Config{Servers: 4})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	// Round 1: deliver request to all 4 but replies only from 1..3.
	s.DeliverRequests(op, 1, 2, 3, 4)
	s.DeliverReplies(op, 1, 2, 3)
	// Round 2 in flight; now deliver server 4's late round-1 reply plus its
	// round-2 reply.
	s.DeliverRequests(op, 4)
	s.DeliverReplies(op, 4)
	obs := op.Observations()
	var seqs []int
	for _, o := range obs {
		if o.Server == 4 {
			seqs = append(seqs, o.Seq)
		}
	}
	if !reflect.DeepEqual(seqs, []int{1, 2}) {
		t.Errorf("server 4 reply seqs = %v, want [1 2] (FIFO, late first)", seqs)
	}
	if _, seq, _ := op.CurrentRound(); seq != 2 {
		t.Errorf("late reply advanced the round")
	}
}

func TestByzantineSilentAndLiveness(t *testing.T) {
	s := New(Config{Servers: 4})
	defer s.Close()
	s.SetByzantine(4, server.Silent{})
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	if err := s.CheckLiveness(op); err != nil {
		t.Fatalf("liveness violated with quorum available: %v", err)
	}
	if err := s.CheckLiveness(op); err != nil {
		t.Fatalf("second round: %v", err)
	}
	if !op.Done() {
		t.Fatal("op not done")
	}
}

func TestLivenessViolationDetected(t *testing.T) {
	s := New(Config{Servers: 4})
	defer s.Close()
	s.SetByzantine(4, server.Silent{})
	// A protocol that illegally waits for all S replies.
	op := s.Spawn("r", types.Reader(1), checker.OpRead, types.Bottom, queryOp(4))
	err := s.CheckLiveness(op)
	var lv *LivenessError
	if !errors.As(err, &lv) {
		t.Fatalf("expected LivenessError, got %v", err)
	}
	s.Crash(op)
}

func TestRunOpDetectsStuckProtocol(t *testing.T) {
	s := New(Config{Servers: 3})
	defer s.Close()
	s.SetByzantine(3, server.Silent{})
	op := s.Spawn("r", types.Reader(1), checker.OpRead, types.Bottom, queryOp(3))
	err := s.RunOp(op)
	var lv *LivenessError
	if !errors.As(err, &lv) {
		t.Fatalf("expected LivenessError, got %v", err)
	}
	s.Crash(op)
}

func TestCrashMidRound(t *testing.T) {
	h := &checker.History{}
	s := New(Config{Servers: 4, History: h})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	s.Step(op, 1) // not enough
	s.Crash(op)
	if !op.Done() || !op.Crashed() {
		t.Fatal("crash did not complete op")
	}
	if _, err := op.Result(); !errors.Is(err, ErrCrashed) {
		t.Errorf("result err = %v", err)
	}
	// The write stays pending in the history.
	ops := h.Ops()
	if len(ops) != 1 || ops[0].Complete() {
		t.Errorf("history ops = %v", ops)
	}
}

func TestForgeStateViaRestore(t *testing.T) {
	s := New(Config{Servers: 1})
	defer s.Close()
	w1 := s.Spawn("w1", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 1))
	s.RunOp(w1)
	snapOld := s.Snapshot(1)
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", storeOp(pair(2, "b"), 1))
	s.RunOp(w2)
	// Byzantine forging: restore σ_old, reader sees the old state.
	s.SetByzantine(1, nil) // honest-behaving but counted Byzantine
	s.Restore(1, snapOld)
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, queryOp(1))
	s.RunOp(rd)
	v, err := rd.Result()
	if err != nil || v != "a" {
		t.Errorf("read after forge = %q, %v; want a", v, err)
	}
}

func TestDeterministicObservations(t *testing.T) {
	run := func() []Observed {
		s := New(Config{Servers: 4})
		defer s.Close()
		w := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
		s.Step(w, 2, 3, 1)
		s.Step(w, 4, 1, 2)
		rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, queryOp(3))
		s.Step(rd, 3, 1, 4)
		return rd.Observations()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("identical schedules observed differently:\n%v\n%v", a, b)
	}
}

func TestRunConcurrentManySeeds(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := &checker.History{}
		s := New(Config{Servers: 4, History: h})
		w := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
		r1 := s.Spawn("r1", types.Reader(1), checker.OpRead, types.Bottom, queryOp(3))
		r2 := s.Spawn("r2", types.Reader(2), checker.OpRead, types.Bottom, queryOp(3))
		if err := s.RunConcurrent(seed, w, r1, r2); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, op := range []*Op{w, r1, r2} {
			if !op.Done() {
				t.Fatalf("seed %d: op %s pending", seed, op.Label)
			}
			if _, err := op.Result(); err != nil {
				t.Fatalf("seed %d: op %s err %v", seed, op.Label, err)
			}
		}
		s.Close()
	}
}

func TestHistoryRecording(t *testing.T) {
	h := &checker.History{}
	s := New(Config{Servers: 4, History: h})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	s.RunOp(w)
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, queryOp(3))
	s.RunOp(rd)
	ops := h.Ops()
	if len(ops) != 2 {
		t.Fatalf("history has %d ops", len(ops))
	}
	if !ops[0].Complete() || !ops[1].Complete() {
		t.Errorf("ops not complete: %v", ops)
	}
	if ops[1].Ret != "a" {
		t.Errorf("read recorded %q", ops[1].Ret)
	}
	if err := checker.CheckAtomic(h); err != nil {
		t.Errorf("toy history not atomic: %v", err)
	}
}

func TestTraceAndDiagram(t *testing.T) {
	tr := &Trace{}
	s := New(Config{Servers: 4, Trace: tr})
	defer s.Close()
	s.SetByzantine(4, server.Silent{})
	w := s.Spawn("write(1)", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 3))
	s.Step(w, 1, 2, 3)
	s.Step(w, 1, 2, 3)
	if !tr.Received("write(1)", 1, 1) || tr.Received("write(1)", 1, 4) {
		t.Error("trace receipt wrong")
	}
	if tr.OpRounds("write(1)") != 2 {
		t.Errorf("op rounds = %d", tr.OpRounds("write(1)"))
	}
	d := tr.BlockDiagram([]string{"B1", "B2"}, map[string][]int{
		"B1": {1, 2, 3},
		"B2": {4},
	})
	if !strings.Contains(d, "write(1)") || !strings.Contains(d, "████") {
		t.Errorf("diagram:\n%s", d)
	}
	// B2 (silent byz) received nothing: its cells must be empty.
	lines := strings.Split(d, "\n")
	for _, l := range lines {
		if strings.HasPrefix(l, "B2") && strings.Contains(l, "████") {
			t.Errorf("B2 drawn filled:\n%s", d)
		}
	}
}

func TestSpawnImmediateCompletion(t *testing.T) {
	s := New(Config{Servers: 2})
	defer s.Close()
	op := s.Spawn("noop", types.Reader(1), checker.OpRead, types.Bottom,
		func(c *Client) (types.Value, error) { return "x", nil })
	if !op.Done() {
		t.Fatal("no-round op not done after Spawn")
	}
	if v, err := op.Result(); v != "x" || err != nil {
		t.Errorf("result = %q, %v", v, err)
	}
}

func TestResultBeforeDone(t *testing.T) {
	s := New(Config{Servers: 2})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", storeOp(pair(1, "a"), 2))
	if _, err := op.Result(); err == nil {
		t.Error("Result before done did not error")
	}
	s.RunOp(op)
}

func TestByzantinesAccessors(t *testing.T) {
	s := New(Config{Servers: 5})
	defer s.Close()
	s.SetByzantine(2, server.Garbage{})
	s.SetByzantine(5, server.Silent{})
	if !s.IsByzantine(2) || s.IsByzantine(3) {
		t.Error("IsByzantine wrong")
	}
	if got := s.Byzantines(); !reflect.DeepEqual(got, []int{2, 5}) {
		t.Errorf("Byzantines = %v", got)
	}
}
