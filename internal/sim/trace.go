package sim

import (
	"fmt"
	"strings"
)

// TraceKind classifies trace events.
type TraceKind int

// Trace event kinds.
const (
	// TraceRequest records an object receiving a round's request (and
	// replying, per the model) — this is what the paper's block diagrams
	// draw as a rectangle.
	TraceRequest TraceKind = iota + 1
	// TraceReply records the client receiving a reply.
	TraceReply
)

// TraceEvent is one delivery event of a run.
type TraceEvent struct {
	Op     string
	Round  int
	Server int
	Kind   TraceKind
	Byz    bool // object was Byzantine at delivery time
	Late   bool // delivered after the round had terminated (the paper's
	// "late replies", not illustrated in its diagrams)
}

// Trace accumulates the delivery events of a run.
type Trace struct {
	Events []TraceEvent
}

// trace appends an event if tracing is enabled.
func (s *Sim) trace(ev TraceEvent) {
	if s.cfg.Trace != nil {
		s.cfg.Trace.Events = append(s.cfg.Trace.Events, ev)
	}
}

// Received reports whether object sid received op's round-r request
// on time (ignoring late catch-up deliveries).
func (tr *Trace) Received(op string, round, sid int) bool {
	for _, ev := range tr.Events {
		if ev.Kind == TraceRequest && ev.Op == op && ev.Round == round && ev.Server == sid && !ev.Late {
			return true
		}
	}
	return false
}

// OpRounds returns the highest round number traced for op.
func (tr *Trace) OpRounds(op string) int {
	max := 0
	for _, ev := range tr.Events {
		if ev.Op == op && ev.Round > max {
			max = ev.Round
		}
	}
	return max
}

// Ops returns the distinct op labels in first-appearance order.
func (tr *Trace) Ops() []string {
	var out []string
	seen := map[string]bool{}
	for _, ev := range tr.Events {
		if !seen[ev.Op] {
			seen[ev.Op] = true
			out = append(out, ev.Op)
		}
	}
	return out
}

// BlockDiagram renders the run in the style of the paper's Figures 1 and 2:
// one row per named block of objects, one column per (operation, round); a
// filled cell means every object of the block received that round's message
// (a rectangle in the paper), "@" marks blocks Byzantine at that point,
// partial receipt renders as "▪".
//
// blocks maps display names (e.g. "B1", "C2") to object ids; rows lists the
// display order.
func (tr *Trace) BlockDiagram(rows []string, blocks map[string][]int) string {
	type col struct {
		op    string
		round int
	}
	var cols []col
	for _, op := range tr.Ops() {
		for r := 1; r <= tr.OpRounds(op); r++ {
			cols = append(cols, col{op: op, round: r})
		}
	}
	byzAt := func(name string, c col) bool {
		for _, sid := range blocks[name] {
			for _, ev := range tr.Events {
				if ev.Kind == TraceRequest && ev.Op == c.op && ev.Round == c.round && ev.Server == sid && ev.Byz {
					return true
				}
			}
		}
		return false
	}
	var b strings.Builder
	// Header: operation names spanning their rounds.
	head := make([]string, len(cols))
	for i, c := range cols {
		if i == 0 || cols[i-1].op != c.op {
			head[i] = c.op
		}
	}
	fmt.Fprintf(&b, "%-5s", "")
	for i, h := range head {
		fmt.Fprintf(&b, "|%-8s", h)
		_ = i
	}
	b.WriteString("|\n")
	fmt.Fprintf(&b, "%-5s", "")
	for _, c := range cols {
		fmt.Fprintf(&b, "|rnd %-4d", c.round)
	}
	b.WriteString("|\n")
	for _, name := range rows {
		fmt.Fprintf(&b, "%-5s", name)
		for _, c := range cols {
			total, got := 0, 0
			for _, sid := range blocks[name] {
				total++
				if tr.Received(c.op, c.round, sid) {
					got++
				}
			}
			byz := byzAt(name, c)
			var cell string
			switch {
			case total == 0:
				cell = "   --   "
			case got == total && byz:
				cell = " @████  "
			case got == total:
				cell = "  ████  "
			case got > 0 && byz:
				cell = " @▪▪    "
			case got > 0:
				cell = "  ▪▪    "
			case byz:
				cell = " @      "
			default:
				cell = "        "
			}
			b.WriteString("|" + cell)
		}
		b.WriteString("|\n")
	}
	return b.String()
}
