// Package sim is a deterministic message-passing simulator for the paper's
// system model (Section 2): clients (one writer, R readers) exchange
// request/reply messages with S storage objects over reliable FIFO
// point-to-point channels; objects reply to each message before receiving
// any other; up to t objects are Byzantine; clients fail by crashing.
//
// Client operations run in goroutines, but every scheduling decision —
// which requests and replies are delivered, in what order, which objects
// turn Byzantine, which states get forged — is made by the single driver
// goroutine through explicit directives, so every run is fully
// deterministic and replayable. This is the substrate on which the paper's
// lower-bound constructions (Figures 1 and 2) execute, and on which the
// protocol implementations are model-checked against adversarial and
// randomized schedules.
package sim

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"robustatomic/internal/checker"
	"robustatomic/internal/proto"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// actionTimeout bounds every rendezvous with a client goroutine; exceeding
// it means a harness bug (a protocol that blocks outside Round), and the
// simulator panics with a diagnostic rather than deadlocking the test.
const actionTimeout = 30 * time.Second

// ErrCrashed is returned from Client.Round when the driver crashed the
// operation; protocols must propagate it.
var ErrCrashed = errors.New("sim: client crashed")

// Config configures a simulation instance.
type Config struct {
	// Servers is S, the number of storage objects (ids 1..S).
	Servers int
	// History, when non-nil, records operation invocations/responses for
	// the checkers.
	History *checker.History
	// Trace, when non-nil, records delivery events for diagram rendering.
	Trace *Trace
}

// Sim is one simulated execution (a partial run under construction).
type Sim struct {
	cfg   Config
	slots []*slot
	ops   []*Op
	wg    sync.WaitGroup
}

// slot is the simulator-side wrapper of one storage object.
type slot struct {
	id       int
	store    *server.Store
	byz      bool
	behavior server.Behavior
}

// New creates a simulation with cfg.Servers correct, empty storage objects.
func New(cfg Config) *Sim {
	if cfg.Servers <= 0 {
		panic(fmt.Sprintf("sim: need at least one server, got %d", cfg.Servers))
	}
	s := &Sim{cfg: cfg}
	s.slots = make([]*slot, cfg.Servers)
	for i := range s.slots {
		s.slots[i] = &slot{id: i + 1, store: server.NewStore()}
	}
	return s
}

// NumServers returns S.
func (s *Sim) NumServers() int { return len(s.slots) }

// slotFor returns the slot of object sid (1-based).
func (s *Sim) slotFor(sid int) *slot {
	if sid < 1 || sid > len(s.slots) {
		panic(fmt.Sprintf("sim: server %d out of range 1..%d", sid, len(s.slots)))
	}
	return s.slots[sid-1]
}

// SetByzantine marks object sid Byzantine with the given behavior
// (nil keeps the previous behavior, or Honest if none was set). Byzantine
// objects are excluded from liveness accounting.
func (s *Sim) SetByzantine(sid int, b server.Behavior) {
	sl := s.slotFor(sid)
	sl.byz = true
	if b != nil {
		sl.behavior = b
	}
	if sl.behavior == nil {
		sl.behavior = server.Honest{}
	}
}

// IsByzantine reports whether object sid is currently Byzantine.
func (s *Sim) IsByzantine(sid int) bool { return s.slotFor(sid).byz }

// Byzantines returns the ids of all currently Byzantine objects.
func (s *Sim) Byzantines() []int {
	var out []int
	for _, sl := range s.slots {
		if sl.byz {
			out = append(out, sl.id)
		}
	}
	return out
}

// Snapshot captures the full state of object sid. The lower-bound
// adversaries snapshot block states σ_i at chosen points of a run.
func (s *Sim) Snapshot(sid int) []byte {
	snap, err := s.slotFor(sid).store.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("sim: snapshot of s%d: %v", sid, err))
	}
	return snap
}

// Restore forges the state of object sid to a previously captured snapshot
// ("the objects forge their state to σ before replying"). The object keeps
// evolving honestly from the forged state unless a behavior overrides it.
func (s *Sim) Restore(sid int, snap []byte) {
	if err := s.slotFor(sid).store.Restore(snap); err != nil {
		panic(fmt.Sprintf("sim: restore of s%d: %v", sid, err))
	}
}

// Store exposes object sid's automaton for white-box assertions in tests.
func (s *Sim) Store(sid int) *server.Store { return s.slotFor(sid).store }

// Close crashes every live operation and waits for all client goroutines to
// exit. Always call it (usually via defer) to avoid leaking goroutines.
func (s *Sim) Close() {
	for _, op := range s.ops {
		if !op.done {
			s.Crash(op)
		}
	}
	s.wg.Wait()
}

// --- Operations and the client rendezvous ----------------------------------

// OpFunc is the body of a client operation; it issues rounds through the
// Client and returns the operation's result.
type OpFunc func(c *Client) (types.Value, error)

type actionKind int

const (
	actionRound actionKind = iota + 1
	actionDone
)

type action struct {
	kind   actionKind
	round  *pendingRound
	result types.Value
	err    error
}

// pendingRound is one in-flight communication round of an operation.
type pendingRound struct {
	spec     proto.RoundSpec
	seq      int
	reqs     map[int]types.Message
	finished bool
}

// Observed is one reply as seen by a client, in delivery order. The
// lower-bound harness compares Observed streams across paired runs to
// verify the proofs' indistinguishability claims.
type Observed struct {
	Server int
	Seq    int
	Msg    types.Message
}

// Op is a client operation under simulation.
type Op struct {
	sim    *Sim
	ID     int
	Label  string
	Client types.ProcID

	kind   checker.OpKind
	histID int

	actionCh chan action
	resumeCh chan error

	cur      *pendingRound
	seq      int
	rounds   int
	done     bool
	crashed  bool
	result   types.Value
	err      error
	observed []Observed

	pendingReq map[int][]transitMsg // per server, FIFO
	pendingRep map[int][]transitMsg // per server, FIFO
}

type transitMsg struct {
	seq int
	msg types.Message
}

// Client is the protocol-facing handle passed to OpFunc. It implements
// proto.Rounder.
type Client struct {
	op *Op
}

var _ proto.Rounder = (*Client)(nil)

// NumServers implements proto.Rounder.
func (c *Client) NumServers() int { return c.op.sim.NumServers() }

// Round implements proto.Rounder: it posts the round to the driver and
// blocks until the driver completes it (or crashes the client).
func (c *Client) Round(spec proto.RoundSpec) error {
	op := c.op
	if op.crashed {
		return ErrCrashed
	}
	if len(spec.Subs) > 0 {
		// Batched rounds belong to the Store's cross-shard coalescing; the
		// simulator drives single-register protocols only.
		return fmt.Errorf("sim: batched round %s not supported", spec.Label)
	}
	op.seq++
	pr := &pendingRound{spec: spec, seq: op.seq, reqs: make(map[int]types.Message, op.sim.NumServers())}
	for sid := 1; sid <= op.sim.NumServers(); sid++ {
		m := spec.Req(sid)
		m.Seq = pr.seq
		pr.reqs[sid] = m
	}
	op.actionCh <- action{kind: actionRound, round: pr}
	return <-op.resumeCh
}

// Spawn starts a client operation and blocks until it posts its first round
// or completes. kind/arg feed the history checker (use checker.OpRead with
// types.Bottom for reads).
func (s *Sim) Spawn(label string, client types.ProcID, kind checker.OpKind, arg types.Value, fn OpFunc) *Op {
	op := &Op{
		sim:        s,
		ID:         len(s.ops),
		Label:      label,
		Client:     client,
		kind:       kind,
		histID:     -1,
		actionCh:   make(chan action),
		resumeCh:   make(chan error),
		pendingReq: make(map[int][]transitMsg),
		pendingRep: make(map[int][]transitMsg),
	}
	if s.cfg.History != nil {
		op.histID = s.cfg.History.Invoke(client, kind, arg)
	}
	s.ops = append(s.ops, op)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		v, err := fn(&Client{op: op})
		op.actionCh <- action{kind: actionDone, result: v, err: err}
	}()
	s.waitAction(op)
	return op
}

// waitAction blocks until op's goroutine posts its next action (a new round
// or completion) and updates op state accordingly.
func (s *Sim) waitAction(op *Op) {
	select {
	case a := <-op.actionCh:
		switch a.kind {
		case actionRound:
			op.cur = a.round
			// The client "sends messages to all objects": requests enter
			// the per-server FIFO transit queues.
			for sid := 1; sid <= s.NumServers(); sid++ {
				op.pendingReq[sid] = append(op.pendingReq[sid], transitMsg{seq: a.round.seq, msg: a.round.reqs[sid]})
			}
		case actionDone:
			op.cur = nil
			op.done = true
			op.result = a.result
			op.err = a.err
			if s.cfg.History != nil && op.histID >= 0 && a.err == nil {
				s.cfg.History.Respond(op.histID, a.result)
			}
		}
	case <-time.After(actionTimeout):
		panic(fmt.Sprintf("sim: op %s (%s) stuck outside Round for %v — protocol bug", op.Label, op.Client, actionTimeout))
	}
}

// resume hands the finished round back to the client and waits for its next
// action.
func (s *Sim) resume(op *Op, err error) {
	select {
	case op.resumeCh <- err:
	case <-time.After(actionTimeout):
		panic(fmt.Sprintf("sim: op %s not waiting for resume — driver bug", op.Label))
	}
	s.waitAction(op)
}

// Done reports whether the operation completed (including by crash).
func (op *Op) Done() bool { return op.done }

// Crashed reports whether the operation was crashed by the driver.
func (op *Op) Crashed() bool { return op.crashed }

// Result returns the operation's result once done.
func (op *Op) Result() (types.Value, error) {
	if !op.done {
		return types.Bottom, fmt.Errorf("sim: op %s not done", op.Label)
	}
	return op.result, op.err
}

// Rounds returns the number of communication rounds the operation has
// completed so far.
func (op *Op) Rounds() int { return op.rounds }

// CurrentRound returns the label and sequence number of the in-flight round.
func (op *Op) CurrentRound() (label string, seq int, ok bool) {
	if op.cur == nil {
		return "", 0, false
	}
	return op.cur.spec.Label, op.cur.seq, true
}

// Observations returns the full reply stream the client has received, in
// delivery order.
func (op *Op) Observations() []Observed {
	out := make([]Observed, len(op.observed))
	copy(out, op.observed)
	return out
}
