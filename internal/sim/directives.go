package sim

import (
	"fmt"
	"math/rand"

	"robustatomic/internal/server"
)

// DeliverRequests delivers every queued (undelivered) request from op to the
// given objects, oldest first, honoring the model's FIFO rule: an object
// processes a pending earlier-round invocation before a later one. Each
// delivered request is processed immediately by the object, whose reply (if
// any — Byzantine objects may withhold) enters the reply transit queue.
func (s *Sim) DeliverRequests(op *Op, sids ...int) {
	for _, sid := range sids {
		sl := s.slotFor(sid)
		queue := op.pendingReq[sid]
		op.pendingReq[sid] = nil
		for _, tm := range queue {
			behavior := server.Behavior(server.Honest{})
			if sl.byz && sl.behavior != nil {
				behavior = sl.behavior
			}
			reply, ok := behavior.Reply(sl.store, op.Client, tm.msg)
			late := op.cur == nil || tm.seq != op.cur.seq
			s.trace(TraceEvent{Op: op.Label, Round: tm.seq, Server: sid, Kind: TraceRequest, Byz: sl.byz, Late: late})
			if ok {
				reply.Seq = tm.msg.Seq
				op.pendingRep[sid] = append(op.pendingRep[sid], transitMsg{seq: tm.seq, msg: reply})
			}
		}
	}
}

// DeliverReplies delivers every in-transit reply from the given objects to
// op, oldest first. Replies for the current round feed its accumulator;
// replies from already-terminated rounds are received and ignored (the
// model's "late replies"). If, after the directive, the current round's
// accumulator is satisfied, the round terminates and the client resumes
// (running until it posts its next round or completes).
func (s *Sim) DeliverReplies(op *Op, sids ...int) {
	for _, sid := range sids {
		queue := op.pendingRep[sid]
		op.pendingRep[sid] = nil
		for _, tm := range queue {
			op.observed = append(op.observed, Observed{Server: sid, Seq: tm.seq, Msg: tm.msg})
			late := op.cur == nil || tm.seq != op.cur.seq
			s.trace(TraceEvent{Op: op.Label, Round: tm.seq, Server: sid, Kind: TraceReply, Byz: s.slotFor(sid).byz, Late: late})
			if !late && !op.cur.finished {
				op.cur.spec.Acc.Add(sid, tm.msg)
			}
		}
	}
	s.maybeFinishRound(op)
}

// maybeFinishRound terminates the current round if its accumulator is
// satisfied, resuming the client.
func (s *Sim) maybeFinishRound(op *Op) {
	if op.cur == nil || op.cur.finished || !op.cur.spec.Acc.Done() {
		return
	}
	op.cur.finished = true
	op.rounds++
	s.resume(op, nil)
}

// Step delivers requests then replies for op at the given objects.
func (s *Sim) Step(op *Op, sids ...int) {
	s.DeliverRequests(op, sids...)
	s.DeliverReplies(op, sids...)
}

// allServers returns 1..S.
func (s *Sim) allServers() []int {
	out := make([]int, s.NumServers())
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// StepAll delivers requests and replies for op at every object.
func (s *Sim) StepAll(op *Op) { s.Step(op, s.allServers()...) }

// Crash crashes the client executing op: if a round is pending it fails with
// ErrCrashed and the operation is marked done. Its invocation stays pending
// in the history (a crashed client's operation never responds).
func (s *Sim) Crash(op *Op) {
	if op.done {
		return
	}
	op.crashed = true
	if op.cur != nil {
		op.cur.finished = true
		s.resume(op, ErrCrashed)
	}
	// The client may ignore ErrCrashed and try more rounds; drain until it
	// gives up (Round returns ErrCrashed immediately once crashed).
	for !op.done {
		s.resume(op, ErrCrashed)
	}
}

// LivenessError reports a wait-freedom violation: a round that cannot
// terminate even though every correct object's reply has been delivered.
type LivenessError struct {
	Op    string
	Round string
	Seq   int
}

// Error implements the error interface.
func (e *LivenessError) Error() string {
	return fmt.Sprintf("sim: wait-freedom violated: op %s round %q (#%d) cannot terminate on all correct replies", e.Op, e.Round, e.Seq)
}

// CheckLiveness delivers all requests and replies from every correct
// (non-Byzantine) object and fails if the current round still cannot
// terminate — the situation the paper's Definition 1 forbids: a round may
// only keep waiting for objects that are faulty in some indistinguishable
// run, and here all potentially-correct replies are in.
func (s *Sim) CheckLiveness(op *Op) error {
	if op.done || op.cur == nil {
		return nil
	}
	var correct []int
	for _, sl := range s.slots {
		if !sl.byz {
			correct = append(correct, sl.id)
		}
	}
	entry := op.cur
	s.Step(op, correct...)
	if !entry.finished {
		return &LivenessError{Op: op.Label, Round: entry.spec.Label, Seq: entry.seq}
	}
	return nil
}

// RunOp drives op to completion by repeatedly delivering everything from
// every object. It returns a LivenessError if the operation stops making
// progress (its round cannot terminate even with every object's reply).
func (s *Sim) RunOp(op *Op) error {
	for !op.done {
		before := op.seq
		s.StepAll(op)
		if op.done {
			break
		}
		if op.seq == before && op.cur != nil && !op.cur.finished {
			// No new round started and the current one cannot finish even
			// though everything deliverable was delivered.
			label, seq, _ := op.CurrentRound()
			return &LivenessError{Op: op.Label, Round: label, Seq: seq}
		}
	}
	return nil
}

// RunConcurrent drives the given operations to completion under a seeded
// uniformly random schedule: at each step one deliverable (op, object,
// request|reply) event is chosen at random and delivered. It returns a
// LivenessError if pending operations stop making progress.
func (s *Sim) RunConcurrent(seed int64, ops ...*Op) error {
	rng := rand.New(rand.NewSource(seed))
	type event struct {
		op  *Op
		sid int
		req bool
	}
	for {
		var events []event
		anyPending := false
		for _, op := range ops {
			if op.done {
				continue
			}
			anyPending = true
			for sid := 1; sid <= s.NumServers(); sid++ {
				if len(op.pendingReq[sid]) > 0 {
					events = append(events, event{op: op, sid: sid, req: true})
				}
				if len(op.pendingRep[sid]) > 0 {
					events = append(events, event{op: op, sid: sid, req: false})
				}
			}
		}
		if !anyPending {
			return nil
		}
		if len(events) == 0 {
			for _, op := range ops {
				if !op.done {
					label, seq, _ := op.CurrentRound()
					return &LivenessError{Op: op.Label, Round: label, Seq: seq}
				}
			}
			return nil
		}
		ev := events[rng.Intn(len(events))]
		if ev.req {
			q := ev.op.pendingReq[ev.sid]
			ev.op.pendingReq[ev.sid] = q[1:]
			s.deliverOneRequest(ev.op, ev.sid, q[0])
		} else {
			q := ev.op.pendingRep[ev.sid]
			ev.op.pendingRep[ev.sid] = q[1:]
			s.deliverOneReply(ev.op, ev.sid, q[0])
		}
	}
}

// deliverOneRequest delivers a single request message to an object.
func (s *Sim) deliverOneRequest(op *Op, sid int, tm transitMsg) {
	sl := s.slotFor(sid)
	behavior := server.Behavior(server.Honest{})
	if sl.byz && sl.behavior != nil {
		behavior = sl.behavior
	}
	reply, ok := behavior.Reply(sl.store, op.Client, tm.msg)
	late := op.cur == nil || tm.seq != op.cur.seq
	s.trace(TraceEvent{Op: op.Label, Round: tm.seq, Server: sid, Kind: TraceRequest, Byz: sl.byz, Late: late})
	if ok {
		reply.Seq = tm.msg.Seq
		op.pendingRep[sid] = append(op.pendingRep[sid], transitMsg{seq: tm.seq, msg: reply})
	}
}

// deliverOneReply delivers a single reply message to the client, finishing
// the round if its accumulator is now satisfied.
func (s *Sim) deliverOneReply(op *Op, sid int, tm transitMsg) {
	op.observed = append(op.observed, Observed{Server: sid, Seq: tm.seq, Msg: tm.msg})
	late := op.cur == nil || tm.seq != op.cur.seq
	s.trace(TraceEvent{Op: op.Label, Round: tm.seq, Server: sid, Kind: TraceReply, Byz: s.slotFor(sid).byz, Late: late})
	if !late && !op.cur.finished {
		op.cur.spec.Acc.Add(sid, tm.msg)
	}
	s.maybeFinishRound(op)
}
