package quorum

import (
	"testing"
	"testing/quick"

	"robustatomic/internal/recurrence"
)

func TestThresholds(t *testing.T) {
	th, err := NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if th.Quorum() != 3 || th.Certify() != 2 || th.Refute() != 3 || th.Majority() != 3 {
		t.Errorf("t=1 thresholds wrong: %+v q=%d c=%d r=%d m=%d",
			th, th.Quorum(), th.Certify(), th.Refute(), th.Majority())
	}
	th, err = NewThresholds(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if th.Quorum() != 7 || th.Certify() != 4 || th.Refute() != 7 {
		t.Errorf("t=3 thresholds wrong")
	}
}

func TestThresholdsRejectSubOptimalResilience(t *testing.T) {
	if _, err := NewThresholds(3, 1); err == nil {
		t.Error("S=3, t=1 accepted; want error (needs 3t+1=4)")
	}
	if _, err := NewThresholds(5, -1); err == nil {
		t.Error("negative t accepted")
	}
}

func TestThresholdsQuorumIntersection(t *testing.T) {
	// Core quorum property at optimal resilience: two quorums of size 2t+1
	// out of 3t+1 intersect in ≥ t+1 objects, i.e. in at least one correct
	// object.
	f := func(tRaw uint8) bool {
		tt := int(tRaw%20) + 1
		th, err := NewThresholds(OptimalObjects(tt), tt)
		if err != nil {
			return false
		}
		inter := th.Quorum() + th.Quorum() - th.S
		return inter >= tt+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProp1Partition(t *testing.T) {
	for tt := 1; tt <= 6; tt++ {
		for s := 3*tt + 1; s <= 4*tt; s++ {
			p, err := NewProp1Partition(s, tt)
			if err != nil {
				t.Fatalf("t=%d S=%d: %v", tt, s, err)
			}
			if p.S() != s {
				t.Errorf("t=%d S=%d: partition covers %d", tt, s, p.S())
			}
			for j := 1; j <= 3; j++ {
				if len(p.Block(j)) != tt {
					t.Errorf("t=%d: |B%d| = %d, want %d", tt, j, len(p.Block(j)), tt)
				}
			}
			b4 := len(p.Block(4))
			if b4 < 1 || b4 > tt {
				t.Errorf("t=%d S=%d: |B4| = %d outside [1, t]", tt, s, b4)
			}
			// Disjoint and covering 1..S.
			seen := make(map[int]bool)
			for j := 1; j <= 4; j++ {
				for _, id := range p.Block(j) {
					if seen[id] {
						t.Fatalf("object %d in two blocks", id)
					}
					seen[id] = true
				}
			}
			if len(seen) != s {
				t.Errorf("partition misses objects: %d != %d", len(seen), s)
			}
		}
	}
}

func TestProp1PartitionRejects(t *testing.T) {
	if _, err := NewProp1Partition(5, 1); err == nil {
		t.Error("S=5 > 4t=4 accepted")
	}
	if _, err := NewProp1Partition(3, 1); err == nil {
		t.Error("S=3 < 3t+1 accepted")
	}
	if _, err := NewProp1Partition(0, 0); err == nil {
		t.Error("t=0 accepted")
	}
}

func TestLemma1PartitionSizes(t *testing.T) {
	// The paper's k=4 instance: |B0|=1, |B1|=1, |B2|=2, |B3|=4, |B4|=8,
	// |B5|=5, |C1|=0, |C2|=1, |C3|=1, |C4|=8; S = 31, faults = 10.
	p, err := NewLemma1Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	want := map[BlockName]int{
		B(0): 1, B(1): 1, B(2): 2, B(3): 4, B(4): 8, B(5): 5,
		C(1): 0, C(2): 1, C(3): 1, C(4): 8,
	}
	for name, w := range want {
		if got := p.Size(name); got != w {
			t.Errorf("|%s| = %d, want %d", name, got, w)
		}
	}
	if p.S() != 31 || p.Faults() != 10 {
		t.Errorf("S=%d faults=%d, want 31/10", p.S(), p.Faults())
	}
}

func TestLemma1PartitionInvariants(t *testing.T) {
	for k := 1; k <= 10; k++ {
		p, err := NewLemma1Partition(k)
		if err != nil {
			t.Fatal(err)
		}
		tk := int(recurrence.T(k))
		// |∪B_j| = 2·t_k + 1 and |∪C_j| = t_k.
		sumB, sumC := 0, 0
		for l := 0; l <= k+1; l++ {
			sumB += p.Size(B(l))
		}
		for l := 1; l <= k; l++ {
			sumC += p.Size(C(l))
		}
		if sumB != 2*tk+1 {
			t.Errorf("k=%d: |∪B| = %d, want %d", k, sumB, 2*tk+1)
		}
		if sumC != tk {
			t.Errorf("k=%d: |∪C| = %d, want %d", k, sumC, tk)
		}
		// "C_1 is empty" (paper, Preliminaries) — the proof assumes k ≥ 2;
		// for k = 1, C_1 is C_k with size t_1 − t_{−1} = 1.
		if k >= 2 && p.Size(C(1)) != 0 {
			t.Errorf("k=%d: C1 not empty", k)
		}
		// Disjoint, covering 1..S.
		seen := make(map[int]bool)
		for _, name := range p.BlockNames() {
			for _, id := range p.Objects(name) {
				if seen[id] {
					t.Fatalf("k=%d: object %d in two blocks", k, id)
				}
				seen[id] = true
			}
		}
		if len(seen) != p.S() {
			t.Errorf("k=%d: cover %d != S %d", k, len(seen), p.S())
		}
	}
}

func TestEquation1Malicious(t *testing.T) {
	// Equation (1): |∪M_l| = t_l + 2·t_{l−1} + 1 = t_{l+1} for 0 ≤ l ≤ k−1.
	for k := 1; k <= 10; k++ {
		p, _ := NewLemma1Partition(k)
		if got := p.UnionSize(p.Malicious(-1)); got != 0 {
			t.Errorf("k=%d: |M_-1| = %d", k, got)
		}
		for l := 0; l <= k-1; l++ {
			want := int(recurrence.T(l + 1))
			if got := p.UnionSize(p.Malicious(l)); got != want {
				t.Errorf("k=%d: |∪M_%d| = %d, want t_%d = %d", k, l, got, l+1, want)
			}
		}
	}
}

func TestEquation2Parity(t *testing.T) {
	// Equation (2): |∪P_l| = t_k − t_{l−2} for 1 ≤ l ≤ k+1.
	for k := 1; k <= 10; k++ {
		p, _ := NewLemma1Partition(k)
		for l := 1; l <= k+1; l++ {
			want := int(recurrence.T(k) - recurrence.T(l-2))
			if got := p.UnionSize(p.Parity(l)); got != want {
				t.Errorf("k=%d: |∪P_%d| = %d, want %d", k, l, got, want)
			}
		}
	}
}

func TestEquation3CorrectSB(t *testing.T) {
	// Equation (3): |∪C_l| = t_k − t_{l−2} for 1 ≤ l ≤ k.
	for k := 1; k <= 10; k++ {
		p, _ := NewLemma1Partition(k)
		for l := 1; l <= k; l++ {
			want := int(recurrence.T(k) - recurrence.T(l-2))
			if got := p.UnionSize(p.CorrectSB(l)); got != want {
				t.Errorf("k=%d: |∪C_%d| = %d, want %d", k, l, got, want)
			}
		}
	}
}

func TestSuperblockExamples(t *testing.T) {
	// Paper examples: M_{−1} = ∅, M_2 = {B0, B1, C1, C2}; for k even,
	// P_1 = {B1, B3, ..., B_{k−1}, B_{k+1}} and P_2 = {B2, ..., B_k}.
	p, _ := NewLemma1Partition(4)
	m2 := p.Malicious(2)
	wantM2 := []BlockName{B(0), B(1), B(2), C(1), C(2)}
	if len(m2) != len(wantM2) {
		t.Fatalf("M_2 = %v", m2)
	}
	for i, b := range wantM2 {
		if m2[i] != b {
			t.Errorf("M_2[%d] = %v, want %v", i, m2[i], b)
		}
	}
	p1 := p.Parity(1)
	wantP1 := []BlockName{B(1), B(3), B(5)}
	if len(p1) != len(wantP1) {
		t.Fatalf("P_1 = %v", p1)
	}
	for i, b := range wantP1 {
		if p1[i] != b {
			t.Errorf("P_1[%d] = %v, want %v", i, p1[i], b)
		}
	}
	p2 := p.Parity(2)
	wantP2 := []BlockName{B(2), B(4)}
	for i, b := range wantP2 {
		if p2[i] != b {
			t.Errorf("P_2[%d] = %v, want %v", i, p2[i], b)
		}
	}
}

func TestScaledPartition(t *testing.T) {
	// Proposition 2: multiplying each block by c yields S' = 3·c·t_k + c
	// objects and c·t_k faults.
	for k := 1; k <= 6; k++ {
		for c := 1; c <= 4; c++ {
			p, err := NewScaledLemma1Partition(k, c)
			if err != nil {
				t.Fatal(err)
			}
			tk := int(recurrence.T(k))
			if p.Faults() != c*tk {
				t.Errorf("k=%d c=%d: faults %d, want %d", k, c, p.Faults(), c*tk)
			}
			if p.S() != 3*c*tk+c {
				t.Errorf("k=%d c=%d: S %d, want %d", k, c, p.S(), 3*c*tk+c)
			}
			if got := int64(p.S()); got != recurrence.Resilience(k, int64(c*tk)) {
				t.Errorf("k=%d c=%d: S %d disagrees with recurrence.Resilience", k, c, got)
			}
			// Scaled malicious superblock still within fault budget:
			// |∪M_{k−1}| = c·t_k.
			if got := p.UnionSize(p.Malicious(k - 1)); got != c*tk {
				t.Errorf("k=%d c=%d: |∪M_{k−1}| = %d, want %d", k, c, got, c*tk)
			}
		}
	}
}

func TestComplement(t *testing.T) {
	p, _ := NewLemma1Partition(3)
	comp := p.Complement(p.Malicious(2))
	if len(comp) != p.S()-p.UnionSize(p.Malicious(2)) {
		t.Errorf("complement size %d", len(comp))
	}
	in := make(map[int]bool)
	for _, id := range p.Union(p.Malicious(2)) {
		in[id] = true
	}
	for _, id := range comp {
		if in[id] {
			t.Errorf("object %d both in set and complement", id)
		}
	}
}

func TestLemma1Rejects(t *testing.T) {
	if _, err := NewLemma1Partition(0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewLemma1Partition(17); err == nil {
		t.Error("k=17 accepted")
	}
	if _, err := NewScaledLemma1Partition(3, 0); err == nil {
		t.Error("scale 0 accepted")
	}
}

func TestPanicsOnBadBlockAccess(t *testing.T) {
	p, _ := NewLemma1Partition(3)
	for name, f := range map[string]func(){
		"size":    func() { p.Size(B(99)) },
		"objects": func() { p.Objects(C(99)) },
		"mal":     func() { p.Malicious(p.K) },
		"parity":  func() { p.Parity(0) },
		"csb":     func() { p.CorrectSB(0) },
		"prop1":   func() { pp, _ := NewProp1Partition(4, 1); pp.Block(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
