// Package quorum provides the threshold arithmetic of optimally resilient
// Byzantine storage (S = 3t+1, quorums of size 2t+1, certification threshold
// t+1) and the object-set partitions used by the paper's two lower-bound
// constructions:
//
//   - the four-block partition B1..B4 of the read lower bound (Section 3,
//     Proposition 1), and
//   - the 2k+2-block partition B0..B_{k+1}, C1..Ck with superblocks M_l, P_l
//     and C_l of the write lower bound (Section 4, Lemma 1), together with
//     the cardinality equations (1)–(3).
package quorum

import (
	"fmt"

	"robustatomic/internal/recurrence"
)

// Thresholds collects the reply-count thresholds of an optimally resilient
// configuration.
type Thresholds struct {
	S int // number of storage objects
	T int // tolerated Byzantine objects
}

// NewThresholds validates and returns the thresholds for S objects and t
// faults. It returns an error when S < 3t+1 (below optimal resilience no
// robust implementation exists, by [MAD02]).
func NewThresholds(s, t int) (Thresholds, error) {
	if t < 0 {
		return Thresholds{}, fmt.Errorf("quorum: negative fault budget t=%d", t)
	}
	if s < 3*t+1 {
		return Thresholds{}, fmt.Errorf("quorum: S=%d below optimal resilience 3t+1=%d", s, 3*t+1)
	}
	return Thresholds{S: s, T: t}, nil
}

// Quorum is the number of replies a round can always wait for: S − t.
func (th Thresholds) Quorum() int { return th.S - th.T }

// Certify is the exact-match certification threshold t+1: any set of t+1
// distinct objects reporting the same pair contains a correct one, so the
// pair genuinely originates from a client.
func (th Thresholds) Certify() int { return th.T + 1 }

// Refute is the refutation threshold 2t+1: if 2t+1 distinct objects report
// w.ts below some level, at least t+1 of them are correct, so no write at
// that level has completed on t+1 correct objects.
func (th Thresholds) Refute() int { return 2*th.T + 1 }

// Majority is the crash-model majority ⌊S/2⌋+1 used by the ABD baseline.
func (th Thresholds) Majority() int { return th.S/2 + 1 }

// OptimalObjects returns the optimal-resilience object count 3t+1.
func OptimalObjects(t int) int { return 3*t + 1 }

// --- Proposition 1 partition (read lower bound) ---------------------------

// Prop1Partition is the partition of the object set into four blocks used by
// the read lower bound: |B1| = |B2| = |B3| = t and 1 ≤ |B4| ≤ t, S ≤ 4t.
type Prop1Partition struct {
	T      int
	Blocks [4][]int // object indices (1-based), Blocks[j] is B_{j+1}
}

// NewProp1Partition partitions objects 1..S for a fault budget t. It returns
// an error unless 3t+1 ≤ S ≤ 4t and t ≥ 1 (the proposition's premises).
func NewProp1Partition(s, t int) (*Prop1Partition, error) {
	if t < 1 {
		return nil, fmt.Errorf("quorum: Proposition 1 needs t ≥ 1, got %d", t)
	}
	if s > 4*t {
		return nil, fmt.Errorf("quorum: Proposition 1 needs S ≤ 4t (S=%d, 4t=%d)", s, 4*t)
	}
	if s < 3*t+1 {
		return nil, fmt.Errorf("quorum: S=%d below optimal resilience %d", s, 3*t+1)
	}
	p := &Prop1Partition{T: t}
	next := 1
	take := func(n int) []int {
		ids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, next)
			next++
		}
		return ids
	}
	p.Blocks[0] = take(t)
	p.Blocks[1] = take(t)
	p.Blocks[2] = take(t)
	p.Blocks[3] = take(s - 3*t) // 1 ≤ |B4| ≤ t
	return p, nil
}

// Block returns B_j (1-based, j ∈ 1..4).
func (p *Prop1Partition) Block(j int) []int {
	if j < 1 || j > 4 {
		panic(fmt.Sprintf("quorum: Prop1 block %d out of range", j))
	}
	return p.Blocks[j-1]
}

// S returns the partitioned object count.
func (p *Prop1Partition) S() int {
	return len(p.Blocks[0]) + len(p.Blocks[1]) + len(p.Blocks[2]) + len(p.Blocks[3])
}

// --- Lemma 1 partition (write lower bound) ---------------------------------

// BlockName identifies a block of the Lemma 1 partition: {B, 0..k+1} or
// {C, 1..k}.
type BlockName struct {
	Family byte // 'B' or 'C'
	Index  int
}

// String implements fmt.Stringer.
func (b BlockName) String() string { return fmt.Sprintf("%c%d", b.Family, b.Index) }

// B returns the name of block B_i.
func B(i int) BlockName { return BlockName{Family: 'B', Index: i} }

// C returns the name of block C_i.
func C(i int) BlockName { return BlockName{Family: 'C', Index: i} }

// Lemma1Partition is the 2k+2-block partition of Section 4: blocks
// B_0..B_{k+1} with |∪B_j| = 2·t_k + 1 and C_1..C_k with |∪C_j| = t_k,
// hence S = 3·t_k + 1. Block sizes follow the paper:
//
//	|B_0| = 1, |B_l| = t_l − t_{l−2} (1 ≤ l ≤ k), |B_{k+1}| = t_k − t_{k−1},
//	|C_l| = t_{l−1} − t_{l−2} (1 ≤ l ≤ k−1), |C_k| = t_k − t_{k−2}.
//
// C_1 is always empty. The scale factor c ≥ 1 multiplies every block size,
// giving the generalized resilience S' = 3·c·t_k + c of Proposition 2.
type Lemma1Partition struct {
	K     int
	Scale int
	tk    int64
	sizes map[BlockName]int
	objs  map[BlockName][]int
	order []BlockName
}

// NewLemma1Partition builds the partition for k ≥ 1 write rounds at scale 1.
func NewLemma1Partition(k int) (*Lemma1Partition, error) {
	return NewScaledLemma1Partition(k, 1)
}

// NewScaledLemma1Partition builds the partition with every block multiplied
// by c (the Proposition 2 generalization). It returns an error for k < 1,
// k > 16 (object counts explode as 2^k) or c < 1.
func NewScaledLemma1Partition(k, c int) (*Lemma1Partition, error) {
	if k < 1 {
		return nil, fmt.Errorf("quorum: Lemma 1 needs k ≥ 1, got %d", k)
	}
	if k > 16 {
		return nil, fmt.Errorf("quorum: k=%d too large to materialize (S = 3·t_k+1 ≈ 2^%d)", k, k+2)
	}
	if c < 1 {
		return nil, fmt.Errorf("quorum: scale must be ≥ 1, got %d", c)
	}
	t := func(i int) int { return int(recurrence.T(i)) }
	p := &Lemma1Partition{
		K:     k,
		Scale: c,
		tk:    recurrence.T(k),
		sizes: make(map[BlockName]int, 2*k+2),
		objs:  make(map[BlockName][]int, 2*k+2),
	}
	p.sizes[B(0)] = 1
	for l := 1; l <= k; l++ {
		p.sizes[B(l)] = t(l) - t(l-2)
	}
	p.sizes[B(k+1)] = t(k) - t(k-1)
	for l := 1; l <= k-1; l++ {
		p.sizes[C(l)] = t(l-1) - t(l-2)
	}
	p.sizes[C(k)] = t(k) - t(k-2)

	// Assign concrete object ids in a fixed, documented order: B_0..B_{k+1}
	// then C_1..C_k, each scaled by c.
	next := 1
	for l := 0; l <= k+1; l++ {
		p.order = append(p.order, B(l))
	}
	for l := 1; l <= k; l++ {
		p.order = append(p.order, C(l))
	}
	for _, name := range p.order {
		n := p.sizes[name] * c
		ids := make([]int, 0, n)
		for i := 0; i < n; i++ {
			ids = append(ids, next)
			next++
		}
		p.objs[name] = ids
	}
	return p, nil
}

// TK returns t_k for this partition's k.
func (p *Lemma1Partition) TK() int64 { return p.tk }

// Faults returns the construction's Byzantine budget c·t_k.
func (p *Lemma1Partition) Faults() int { return p.Scale * int(p.tk) }

// S returns the total object count 3·c·t_k + c.
func (p *Lemma1Partition) S() int { return 3*p.Faults() + p.Scale }

// Size returns |BL| at scale 1 (the paper's block size).
func (p *Lemma1Partition) Size(name BlockName) int {
	n, ok := p.sizes[name]
	if !ok {
		panic(fmt.Sprintf("quorum: unknown block %s for k=%d", name, p.K))
	}
	return n
}

// Objects returns the (scaled) object ids of a block. The returned slice is
// shared; callers must not mutate it.
func (p *Lemma1Partition) Objects(name BlockName) []int {
	ids, ok := p.objs[name]
	if !ok {
		panic(fmt.Sprintf("quorum: unknown block %s for k=%d", name, p.K))
	}
	return ids
}

// BlockNames returns all block names in their canonical order.
func (p *Lemma1Partition) BlockNames() []BlockName {
	out := make([]BlockName, len(p.order))
	copy(out, p.order)
	return out
}

// --- Superblocks -----------------------------------------------------------

// Malicious returns superblock M_l = {B_j | 0 ≤ j ≤ l} ∪ {C_j | 1 ≤ j ≤ l}
// for −1 ≤ l ≤ k−1. M_{−1} is empty. Equation (1): |∪M_l| = t_{l+1}.
func (p *Lemma1Partition) Malicious(l int) []BlockName {
	if l < -1 || l > p.K-1 {
		panic(fmt.Sprintf("quorum: M_%d out of range [-1, %d]", l, p.K-1))
	}
	var out []BlockName
	for j := 0; j <= l; j++ {
		out = append(out, B(j))
	}
	for j := 1; j <= l; j++ {
		out = append(out, C(j))
	}
	return out
}

// Parity returns superblock P_l = {B_j | l ≤ j ≤ k+1 ∧ j ≡ l (mod 2)} for
// 1 ≤ l ≤ k+1. Equation (2): |∪P_l| = t_k − t_{l−2}.
func (p *Lemma1Partition) Parity(l int) []BlockName {
	if l < 1 || l > p.K+1 {
		panic(fmt.Sprintf("quorum: P_%d out of range [1, %d]", l, p.K+1))
	}
	var out []BlockName
	for j := l; j <= p.K+1; j++ {
		if j%2 == l%2 {
			out = append(out, B(j))
		}
	}
	return out
}

// CorrectSB returns superblock C_l = {C_j | l ≤ j ≤ k} for 1 ≤ l ≤ k.
// Equation (3): |∪C_l| = t_k − t_{l−2}.
func (p *Lemma1Partition) CorrectSB(l int) []BlockName {
	if l < 1 || l > p.K {
		panic(fmt.Sprintf("quorum: superblock C_%d out of range [1, %d]", l, p.K))
	}
	var out []BlockName
	for j := l; j <= p.K; j++ {
		out = append(out, C(j))
	}
	return out
}

// Union returns the object ids of a set of blocks, in canonical order.
func (p *Lemma1Partition) Union(blocks []BlockName) []int {
	n := 0
	for _, b := range blocks {
		n += len(p.Objects(b))
	}
	out := make([]int, 0, n)
	for _, b := range blocks {
		out = append(out, p.Objects(b)...)
	}
	return out
}

// UnionSize returns |∪blocks| at the partition's scale.
func (p *Lemma1Partition) UnionSize(blocks []BlockName) int {
	n := 0
	for _, b := range blocks {
		n += len(p.Objects(b))
	}
	return n
}

// Complement returns all object ids not contained in the given blocks.
func (p *Lemma1Partition) Complement(blocks []BlockName) []int {
	in := make(map[int]bool, p.S())
	for _, b := range blocks {
		for _, id := range p.Objects(b) {
			in[id] = true
		}
	}
	out := make([]int, 0, p.S()-len(in))
	for id := 1; id <= p.S(); id++ {
		if !in[id] {
			out = append(out, id)
		}
	}
	return out
}
