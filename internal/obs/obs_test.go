package obs

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentRecordSnapshot hammers every metric kind from many
// goroutines while snapshots run concurrently — the -race proof that the
// hot path (atomic adds, striped histogram records, sync.Map lookups) and
// the snapshot path are safe together.
func TestConcurrentRecordSnapshot(t *testing.T) {
	r := &Registry{}
	const goroutines = 8
	const per = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total")
			ga := r.Gauge("g")
			h := r.Hist("h_us")
			for i := 0; i < per; i++ {
				c.Inc()
				ga.Add(1)
				ga.Dec()
				h.Record(int64(i % 500))
			}
		}(g)
	}
	// Concurrent snapshots and a churning callback gauge.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			r.GaugeFunc("gf", func() int64 { return 7 })
			_ = r.Snapshot()
			r.Unregister("gf")
		}
	}()
	wg.Wait()
	snap := r.Snapshot()
	if got := snap.Counters["c_total"]; got != goroutines*per {
		t.Fatalf("counter: got %d, want %d", got, goroutines*per)
	}
	if got := snap.Gauges["g"]; got != 0 {
		t.Fatalf("gauge: got %d, want 0", got)
	}
	if got := snap.Hists["h_us"].Count; got != goroutines*per {
		t.Fatalf("hist count: got %d, want %d", got, goroutines*per)
	}
}

// TestRegistryKinds checks get-or-create identity: the same name returns the
// same metric, distinct names distinct metrics.
func TestRegistryKinds(t *testing.T) {
	r := &Registry{}
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter identity lost across lookups")
	}
	if r.Hist("h") != r.Hist("h") {
		t.Fatal("hist identity lost across lookups")
	}
	r.Counter("a").Add(3)
	if got := r.Snapshot().Counters["a"]; got != 3 {
		t.Fatalf("counter value: got %d, want 3", got)
	}
}

// TestRoundStats checks the per-label round bundle: every round counts, only
// errors hit the error counter, and sampled rounds fill the latency hist.
func TestRoundStats(t *testing.T) {
	r := &Registry{}
	rs := NewRoundStats(r, "test", "WVAL")
	boom := errors.New("boom")
	for i := 0; i < 64; i++ {
		start := rs.Begin()
		var err error
		if i%4 == 0 {
			err = boom
		}
		rs.Done(start, err)
	}
	snap := r.Snapshot()
	if got := snap.Counters[`proto_rounds_total{transport="test",label="WVAL"}`]; got != 64 {
		t.Fatalf("rounds: got %d, want 64", got)
	}
	if got := snap.Counters[`proto_round_errors_total{transport="test",label="WVAL"}`]; got != 16 {
		t.Fatalf("errors: got %d, want 16", got)
	}
	// 1-in-latSample rounds are timed; of 64 rounds, 8 sampled, some may
	// coincide with error rounds (not recorded). At least one must land.
	if got := snap.Hists[`proto_round_latency_us{transport="test",label="WVAL"}`].Count; got == 0 {
		t.Fatal("no sampled latencies recorded")
	}
}

// TestTracerSampling checks the sampling contract: rate 0 never traces,
// rate 1 always traces, rate n traces one in n, and failed ops are retained
// beyond the ring.
func TestTracerSampling(t *testing.T) {
	off := NewTracer(8, 0)
	if op := off.StartOp("GET", "k"); op != nil {
		t.Fatal("disabled tracer produced an op")
	}
	every := NewTracer(4, 1)
	for i := 0; i < 10; i++ {
		op := every.StartOp("GET", "k")
		if op == nil {
			t.Fatal("rate-1 tracer skipped an op")
		}
		var err error
		if i < 2 {
			err = errors.New("early failure")
		}
		every.EndOp(op, err)
	}
	if got := len(every.Recent()); got != 4 {
		t.Fatalf("ring: got %d ops, want 4 (ring size)", got)
	}
	// The 2 early failures fell off the ring but stay in the failed list.
	if got := len(every.Failed()); got != 2 {
		t.Fatalf("failed: got %d, want 2", got)
	}
	sampled := NewTracer(64, 8)
	n := 0
	for i := 0; i < 64; i++ {
		if op := sampled.StartOp("GET", "k"); op != nil {
			n++
			sampled.EndOp(op, nil)
		}
	}
	if n != 8 {
		t.Fatalf("rate-8 tracer sampled %d of 64 ops, want 8", n)
	}
}

// TestOpTraceFormat checks the dump rendering: op header, rounds, per-object
// events with notes — the text a chaos failure prints.
func TestOpTraceFormat(t *testing.T) {
	tr := NewTracer(4, 1)
	op := tr.StartOp("FLUSH", "3 ops")
	rt := op.StartRound("AREAD2", 2)
	rt.Event(1, "send", "")
	rt.Event(1, "reply", "MUX[REGw,REGr1]")
	rt.Event(3, "lost", "connection reset")
	rt.Finish(errors.New("AREAD2: all replies in, accumulator unsatisfied"))
	tr.EndOp(op, errors.New("round failed"))

	out := tr.FormatFailed()
	for _, want := range []string{
		"FLUSH", "AREAD2", "reg=2",
		"MUX[REGw,REGr1]", "lost", "connection reset",
		"accumulator unsatisfied",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

// TestTracerConcurrent drives StartOp/EndOp and RoundTrace.Event from many
// goroutines (the mux read loop appends events concurrently with the op
// goroutine) — a -race check.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(16, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				op := tr.StartOp("PUT", "k")
				rt := op.StartRound("WVAL", 0)
				var inner sync.WaitGroup
				for sid := 1; sid <= 4; sid++ {
					inner.Add(1)
					go func(sid int) {
						defer inner.Done()
						rt.Event(sid, "reply", "ACK")
					}(sid)
				}
				inner.Wait()
				rt.Finish(nil)
				tr.EndOp(op, nil)
				_ = tr.Recent()
			}
		}()
	}
	wg.Wait()
}

// TestHistRecordSince sanity-checks the microsecond recording path.
func TestHistRecordSince(t *testing.T) {
	var h Hist
	h.RecordSince(time.Now().Add(-3 * time.Millisecond))
	m := h.Merged()
	if m.Count() != 1 || m.Max() < 2000 || m.Max() > 100000 {
		t.Fatalf("RecordSince: %s", m.String())
	}
}
