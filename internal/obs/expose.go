// Prometheus-text and JSON exposition of a Registry, and the /debug HTTP
// handler storaged mounts behind -debug-addr.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strings"
)

// family splits a metric name into its family (the part before any label
// braces) and the label block (`{...}` or empty).
func family(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], name[i:]
	}
	return name, ""
}

// withLabel returns the metric name with one extra label folded into its
// label block: withLabel(`h{op="put"}`, "quantile", "0.5") is
// `h{op="put",quantile="0.5"}`.
func withLabel(name, k, v string) string {
	fam, labels := family(name)
	if labels == "" {
		return fam + `{` + k + `="` + v + `"}`
	}
	return fam + `{` + strings.TrimSuffix(labels[1:], "}") + `,` + k + `="` + v + `"}`
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Counters and gauges are scalars; histograms render as summaries
// (quantile-labeled series plus _count and _sum-approximating _mean).
// Output is sorted by name, so it is stable for golden tests.
func (s Snapshot) WritePrometheus(w io.Writer) {
	typed := map[string]bool{}
	typeLine := func(name, kind string) {
		fam, _ := family(name)
		if !typed[fam] {
			typed[fam] = true
			fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind)
		}
	}
	for _, name := range s.Names() {
		if v, ok := s.Counters[name]; ok {
			typeLine(name, "counter")
			fmt.Fprintf(w, "%s %d\n", name, v)
			continue
		}
		if v, ok := s.Gauges[name]; ok {
			typeLine(name, "gauge")
			fmt.Fprintf(w, "%s %d\n", name, v)
			continue
		}
		h := s.Hists[name]
		typeLine(name, "summary")
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "quantile", "0.5"), h.P50)
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "quantile", "0.9"), h.P90)
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "quantile", "0.99"), h.P99)
		fmt.Fprintf(w, "%s %d\n", withLabel(name, "quantile", "1"), h.Max)
		fam, labels := family(name)
		fmt.Fprintf(w, "%s%s %d\n", fam+"_count", labels, h.Count)
		fmt.Fprintf(w, "%s%s %g\n", fam+"_mean", labels, h.Mean)
	}
}

// WriteJSON renders the snapshot as one JSON object (the /debug/vars
// payload), keys sorted within each section by encoding/json's map
// rendering.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Handler returns the debug mux for a registry (plus optional tracer):
//
//	/metrics      Prometheus text exposition
//	/debug/vars   JSON snapshot
//	/debug/traces recent + failed op traces, text (when a tracer is given)
//	/debug/pprof  the standard pprof family
func Handler(r *Registry, t *Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		r.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.Snapshot().WriteJSON(w)
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if t == nil {
			fmt.Fprintln(w, "tracing disabled")
			return
		}
		if failed := t.Failed(); len(failed) > 0 {
			fmt.Fprintln(w, "== failed ops")
			for _, op := range failed {
				fmt.Fprint(w, op.Format())
			}
		}
		fmt.Fprintln(w, "== recent ops")
		for _, op := range t.Recent() {
			fmt.Fprint(w, op.Format())
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Format renders a snapshot as an aligned text table (the storbench -obs
// and storctl stats rendering).
func (s Snapshot) Format() string {
	var b strings.Builder
	names := s.Names()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			fmt.Fprintf(&b, "%-*s %12d\n", width, n, v)
		} else if v, ok := s.Gauges[n]; ok {
			fmt.Fprintf(&b, "%-*s %12d\n", width, n, v)
		} else {
			h := s.Hists[n]
			fmt.Fprintf(&b, "%-*s %12d  mean=%.1f p50=%d p99=%d max=%d\n",
				width, n, h.Count, h.Mean, h.P50, h.P99, h.Max)
		}
	}
	return b.String()
}
