package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte for byte on a private
// registry: TYPE lines once per family, label-carrying names rendered
// verbatim, histograms as quantile summaries with _count and _mean, output
// sorted by name.
func TestPrometheusGolden(t *testing.T) {
	r := &Registry{}
	r.Counter(`proto_rounds_total{transport="mux",label="AREAD2"}`).Add(41)
	r.Counter(`proto_rounds_total{transport="mux",label="WVAL"}`).Add(7)
	r.Gauge("tcpnet_inflight_waiters").Set(3)
	h := r.Hist(`store_op_latency_us{op="put"}`)
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	r.GaugeFunc(`tcpnet_server_registers{id="2"}`, func() int64 { return 9 })

	var b strings.Builder
	r.Snapshot().WritePrometheus(&b)
	got := b.String()
	// Quantiles are hdr cell tops (upper bounds), hence p90 = 91 for the
	// uniform 1..100 recording: 90 shares a 2-wide cell with 91.
	want := `# TYPE proto_rounds_total counter
proto_rounds_total{transport="mux",label="AREAD2"} 41
proto_rounds_total{transport="mux",label="WVAL"} 7
# TYPE store_op_latency_us summary
store_op_latency_us{op="put",quantile="0.5"} 50
store_op_latency_us{op="put",quantile="0.9"} 91
store_op_latency_us{op="put",quantile="0.99"} 99
store_op_latency_us{op="put",quantile="1"} 100
store_op_latency_us_count{op="put"} 100
store_op_latency_us_mean{op="put"} 50.5
# TYPE tcpnet_inflight_waiters gauge
tcpnet_inflight_waiters 3
# TYPE tcpnet_server_registers gauge
tcpnet_server_registers{id="2"} 9
`
	if got != want {
		t.Fatalf("prometheus exposition drifted:\n--- got\n%s--- want\n%s", got, want)
	}
}

// TestJSONRoundTrip checks that the /debug/vars payload decodes back into a
// Snapshot — the contract storctl stats scrapes through.
func TestJSONRoundTrip(t *testing.T) {
	r := &Registry{}
	r.Counter("c_total").Add(5)
	r.Gauge("g").Set(-2)
	r.Hist("h_us").Record(10)

	var b strings.Builder
	if err := r.Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 5 || back.Gauges["g"] != -2 || back.Hists["h_us"].Count != 1 {
		t.Fatalf("round trip lost values: %+v", back)
	}
	if got := back.Names(); len(got) != 3 {
		t.Fatalf("names: %v", got)
	}
}

// TestWithLabel checks quantile-label folding into existing label blocks.
func TestWithLabel(t *testing.T) {
	for _, tc := range []struct{ in, k, v, want string }{
		{"plain", "quantile", "0.5", `plain{quantile="0.5"}`},
		{`h{op="put"}`, "quantile", "0.99", `h{op="put",quantile="0.99"}`},
	} {
		if got := withLabel(tc.in, tc.k, tc.v); got != tc.want {
			t.Fatalf("withLabel(%q): got %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestSnapshotFormat smoke-checks the aligned table rendering used by
// storbench -obs.
func TestSnapshotFormat(t *testing.T) {
	r := &Registry{}
	r.Counter("a_total").Add(2)
	r.Hist("lat_us").Record(7)
	out := r.Snapshot().Format()
	if !strings.Contains(out, "a_total") || !strings.Contains(out, "p50=7") {
		t.Fatalf("table rendering: %q", out)
	}
}
