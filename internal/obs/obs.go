// Package obs is the runtime observability core: allocation-free counters,
// gauges and latency histograms behind a process-global registry with a
// cheap Snapshot, plus sampled per-operation round traces (trace.go) and
// Prometheus/JSON exposition (expose.go).
//
// Design constraints, in order:
//
//  1. The instrumented hot path must stay allocation-free and cheap enough
//     that the E9/E13 benchdiff gate (≤10% regression) passes with
//     instrumentation compiled in. Counters and gauges are single atomic
//     adds; histograms are striped mutexes around internal/hdr (whose
//     Record is allocation-free); round latency is sampled 1-in-8 so the
//     two time.Now calls amortize to a few ns per round.
//  2. Metric names ARE the Prometheus exposition keys, label syntax
//     included: a per-label round counter is registered under
//     `proto_rounds_total{transport="mux",label="AREAD2"}` and rendered
//     verbatim. The registry stays a flat name→metric map, the renderers
//     stay trivial, and name construction (the only allocating step)
//     happens once per (metric, label) at first use, never per event.
//  3. One process-global Default registry. Tests that need isolation (the
//     golden exposition test) build private registries; everything else —
//     daemons, clients, benchmarks — shares Default so `storaged
//     -debug-addr` and `storbench -obs` see the whole process.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"robustatomic/internal/hdr"
)

// Counter is a monotonically increasing event count.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n ≥ 0 for honest counters; not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous level that moves both ways (in-flight waiters,
// open connections).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Set overwrites the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// gaugeFunc is a callback gauge: sampled at snapshot time, registered by
// components that already track the level themselves (a server's register
// count). Callbacks must be safe to call at any time, including after the
// owning component closed (they are unregistered on Close, but a snapshot
// may race the close).
type gaugeFunc struct{ fn func() int64 }

// histStripes spreads concurrent Record calls over independent mutexes so a
// few hundred client goroutines recording op latency don't serialize on one
// lock. hdr.Histogram is ~15KB, so 4 stripes keep a Hist around 60KB.
const histStripes = 4

// Hist is a concurrency-safe latency histogram: striped mutexes around
// internal/hdr histograms, merged at snapshot time. Values are unitless;
// this repository records microseconds.
type Hist struct {
	stripes [histStripes]histStripe
}

type histStripe struct {
	mu sync.Mutex
	h  hdr.Histogram
}

// Record adds one observation. The stripe is picked from the address of the
// caller's stack slot: goroutine stacks are disjoint, so concurrent
// recorders spread across stripes without sharing a round-robin counter (a
// cross-goroutine cacheline RMW that showed up in the E12 flush profile).
// The conversion to uintptr keeps v on the stack — Record stays
// allocation-free.
func (h *Hist) Record(v int64) {
	s := &h.stripes[(uintptr(unsafe.Pointer(&v))>>10)%histStripes]
	s.mu.Lock()
	s.h.Record(v)
	s.mu.Unlock()
}

// RecordSince records the elapsed time since start, in microseconds.
func (h *Hist) RecordSince(start time.Time) {
	h.Record(time.Since(start).Microseconds())
}

// Merged returns a fresh merge of all stripes (snapshot-time only; it
// allocates a full histogram).
func (h *Hist) Merged() *hdr.Histogram {
	out := &hdr.Histogram{}
	for i := range h.stripes {
		s := &h.stripes[i]
		s.mu.Lock()
		cp := s.h // histograms are flat arrays: a struct copy is a snapshot
		s.mu.Unlock()
		out.Merge(&cp)
	}
	return out
}

// Registry holds named metrics. Get-or-create is lock-free after first use
// (sync.Map fast path); creation and unregistration serialize on a mutex.
type Registry struct {
	mu      sync.Mutex
	metrics sync.Map // string → *Counter | *Gauge | *Hist | gaugeFunc
}

// Default is the process-global registry.
var Default = &Registry{}

// Counter returns the named counter, creating it on first use. Panics if the
// name is already registered as a different kind (a naming bug, not a
// runtime condition).
func (r *Registry) Counter(name string) *Counter {
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Counter)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Counter)
	}
	c := &Counter{}
	r.metrics.Store(name, c)
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Gauge)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Gauge)
	}
	g := &Gauge{}
	r.metrics.Store(name, g)
	return g
}

// Hist returns the named histogram, creating it on first use.
func (r *Registry) Hist(name string) *Hist {
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Hist)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics.Load(name); ok {
		return m.(*Hist)
	}
	h := &Hist{}
	r.metrics.Store(name, h)
	return h
}

// GaugeFunc registers (or replaces) a callback gauge. Components with a
// bounded lifetime must Unregister on close.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics.Store(name, gaugeFunc{fn})
}

// Unregister removes a metric (callback gauges of closed components).
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics.Delete(name)
}

// HistView is the snapshot of one histogram.
type HistView struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
	Max   int64   `json:"max"`
}

// Snapshot is a point-in-time copy of a registry. Maps are fresh; mutating
// them does not touch the registry.
type Snapshot struct {
	Counters map[string]int64    `json:"counters"`
	Gauges   map[string]int64    `json:"gauges"`
	Hists    map[string]HistView `json:"hists"`
}

// Snapshot copies every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters: map[string]int64{},
		Gauges:   map[string]int64{},
		Hists:    map[string]HistView{},
	}
	r.metrics.Range(func(k, v any) bool {
		name := k.(string)
		switch m := v.(type) {
		case *Counter:
			snap.Counters[name] = m.Value()
		case *Gauge:
			snap.Gauges[name] = m.Value()
		case gaugeFunc:
			snap.Gauges[name] = m.fn()
		case *Hist:
			h := m.Merged()
			snap.Hists[name] = HistView{
				Count: h.Count(),
				Mean:  h.Mean(),
				P50:   h.Quantile(0.50),
				P90:   h.Quantile(0.90),
				P99:   h.Quantile(0.99),
				Max:   h.Max(),
			}
		}
		return true
	})
	return snap
}

// Names returns the sorted metric names of a snapshot section union.
func (s Snapshot) Names() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Hists))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// latSample is the round-latency sampling rate: 1-in-8 rounds pay the two
// time.Now calls, keeping the amortized cost a few ns per round while still
// filling latency histograms quickly at benchmark rates.
const latSample = 8

// RoundStats bundles the per-(transport, label) round metrics. Runtimes
// cache these per client handle (plain map, single-goroutine) so the
// per-round cost is one map hit plus atomic adds — no name construction,
// no registry lookup, no allocation.
type RoundStats struct {
	Rounds *Counter // rounds completed (ok or not)
	Errs   *Counter // rounds that returned an error
	Lat    *Hist    // sampled latency of successful rounds, µs
	tick   atomic.Uint64
}

// NewRoundStats builds (once per transport+label) the round metric family
//
//	proto_rounds_total{transport="T",label="L"}
//	proto_round_errors_total{transport="T",label="L"}
//	proto_round_latency_us{transport="T",label="L"}
func NewRoundStats(r *Registry, transport, label string) *RoundStats {
	tag := `{transport="` + transport + `",label="` + label + `"}`
	return &RoundStats{
		Rounds: r.Counter("proto_rounds_total" + tag),
		Errs:   r.Counter("proto_round_errors_total" + tag),
		Lat:    r.Hist("proto_round_latency_us" + tag),
	}
}

// Begin starts a round observation: the zero time when this round is not
// latency-sampled (the common case).
func (s *RoundStats) Begin() time.Time {
	if s.tick.Add(1)%latSample != 0 {
		return time.Time{}
	}
	return time.Now()
}

// Done completes a round observation.
func (s *RoundStats) Done(start time.Time, err error) {
	s.Rounds.Inc()
	if err != nil {
		s.Errs.Inc()
		return
	}
	if !start.IsZero() {
		s.Lat.RecordSince(start)
	}
}

// StatsCache resolves a round label to its RoundStats for a single-goroutine
// round executor. A linear scan over a tiny slice beats a map here: a client
// sees at most a handful of distinct labels, the label strings are compiler
// constants shared across calls (so == short-circuits on pointer equality),
// and the per-round registry lookup with its name construction never runs
// after first use.
type StatsCache struct {
	entries []statsEntry
}

type statsEntry struct {
	label string
	st    *RoundStats
}

// Get returns the RoundStats for label, creating and caching it on first
// use. Not safe for concurrent use — one cache per client goroutine.
func (c *StatsCache) Get(r *Registry, transport, label string) *RoundStats {
	for i := range c.entries {
		if c.entries[i].label == label {
			return c.entries[i].st
		}
	}
	st := NewRoundStats(r, transport, label)
	c.entries = append(c.entries, statsEntry{label: label, st: st})
	return st
}
