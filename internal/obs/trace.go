// Sampled per-operation round traces: op id → rounds → per-object
// send/reply/error timestamps, kept in a ring buffer with failed ops
// retained separately so a chaos-test failure can dump the trace of the op
// that died next to the seed-replay command.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ObjEvent is one per-object event inside a round: a request sent to object
// sid, a reply (or error) received from it, or a skip (object known
// unreachable). Note carries a compact payload summary — for multiplexed
// replies, which register sub-bundles the reply actually contained, which is
// exactly the information the AREAD2 flake hid.
type ObjEvent struct {
	SID  int
	Kind string // "send", "reply", "lost", "skip"
	At   time.Time
	Note string
}

// RoundTrace records one protocol round of a traced op. Events are appended
// from transport goroutines concurrently (the mux read loop) under mu.
type RoundTrace struct {
	Label string
	Reg   int // register instance index, -1 when unknown
	Start time.Time
	End   time.Time
	Err   string

	mu     sync.Mutex
	Events []ObjEvent
}

// Event appends a per-object event. Safe for concurrent use.
func (rt *RoundTrace) Event(sid int, kind, note string) {
	// The nil check is split from the append so Event inlines at every
	// call site: the untraced hot path (rt == nil, the overwhelmingly
	// common case) costs one branch instead of a function call per object
	// per round.
	if rt == nil {
		return
	}
	rt.record(sid, kind, note)
}

func (rt *RoundTrace) record(sid int, kind, note string) {
	rt.mu.Lock()
	rt.Events = append(rt.Events, ObjEvent{SID: sid, Kind: kind, At: time.Now(), Note: note})
	rt.mu.Unlock()
}

// Finish stamps the round's end and error.
func (rt *RoundTrace) Finish(err error) {
	if rt == nil {
		return
	}
	rt.finish(err)
}

func (rt *RoundTrace) finish(err error) {
	rt.End = time.Now()
	if err != nil {
		rt.Err = err.Error()
	}
}

// OpTrace records one traced client operation and the rounds it ran.
type OpTrace struct {
	ID    uint64
	Name  string // "PUT", "GET", "FLUSH", ...
	Key   string
	Start time.Time
	End   time.Time
	Err   string

	mu     sync.Mutex
	Rounds []*RoundTrace
}

// StartRound opens a new round trace under this op.
func (op *OpTrace) StartRound(label string, reg int) *RoundTrace {
	rt := &RoundTrace{Label: label, Reg: reg, Start: time.Now()}
	op.mu.Lock()
	op.Rounds = append(op.Rounds, rt)
	op.mu.Unlock()
	return rt
}

// Format renders the op as an indented multi-line text block, timestamps
// relative to the op's start.
func (op *OpTrace) Format() string {
	var b strings.Builder
	rel := func(t time.Time) string {
		if t.IsZero() {
			return "?"
		}
		return fmt.Sprintf("+%dµs", t.Sub(op.Start).Microseconds())
	}
	status := "ok"
	if op.Err != "" {
		status = "ERR " + op.Err
	}
	fmt.Fprintf(&b, "op %d %s %q start=%s end=%s %s\n",
		op.ID, op.Name, op.Key, op.Start.Format("15:04:05.000000"), rel(op.End), status)
	op.mu.Lock()
	rounds := append([]*RoundTrace(nil), op.Rounds...)
	op.mu.Unlock()
	for i, rt := range rounds {
		rstatus := "ok"
		if rt.Err != "" {
			rstatus = "ERR " + rt.Err
		}
		reg := ""
		if rt.Reg >= 0 {
			reg = fmt.Sprintf(" reg=%d", rt.Reg)
		}
		fmt.Fprintf(&b, "  round %d %s%s start=%s end=%s %s\n",
			i+1, rt.Label, reg, rel(rt.Start), rel(rt.End), rstatus)
		rt.mu.Lock()
		events := append([]ObjEvent(nil), rt.Events...)
		rt.mu.Unlock()
		for _, ev := range events {
			note := ""
			if ev.Note != "" {
				note = " " + ev.Note
			}
			fmt.Fprintf(&b, "    s%-2d %-5s %s%s\n", ev.SID, ev.Kind, rel(ev.At), note)
		}
	}
	return b.String()
}

// failedKeep bounds the retained failed-op list (newest kept).
const failedKeep = 32

// Tracer samples client operations into a ring buffer of completed op
// traces, retaining failed ops separately. The zero sampling rate disables
// tracing entirely: StartOp returns nil and callers pay one atomic load.
type Tracer struct {
	sample atomic.Int64 // 0 = off, 1 = every op, N = one in N
	ctr    atomic.Uint64

	mu     sync.Mutex
	ring   []*OpTrace // completed ops, ring[next] is the oldest
	next   int
	failed []*OpTrace
}

// NewTracer builds a tracer retaining the last ringSize completed ops,
// sampling one op in sample (1 traces every op; 0 starts disabled).
func NewTracer(ringSize, sample int) *Tracer {
	if ringSize < 1 {
		ringSize = 1
	}
	t := &Tracer{ring: make([]*OpTrace, 0, ringSize)}
	t.sample.Store(int64(sample))
	return t
}

// SetSample changes the sampling rate (0 disables).
func (t *Tracer) SetSample(n int) { t.sample.Store(int64(n)) }

// StartOp begins tracing an operation, or returns nil when the op is
// sampled out (callers must tolerate nil).
func (t *Tracer) StartOp(name, key string) *OpTrace {
	n := t.sample.Load()
	if n <= 0 {
		return nil
	}
	id := t.ctr.Add(1)
	if n > 1 && id%uint64(n) != 0 {
		return nil
	}
	return &OpTrace{ID: id, Name: name, Key: key, Start: time.Now()}
}

// EndOp completes a traced op and files it into the ring (and the failed
// list when err is non-nil). nil op is a no-op.
func (t *Tracer) EndOp(op *OpTrace, err error) {
	if op == nil {
		return
	}
	op.End = time.Now()
	if err != nil {
		op.Err = err.Error()
	}
	t.mu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, op)
	} else {
		t.ring[t.next] = op
		t.next = (t.next + 1) % cap(t.ring)
	}
	if err != nil {
		t.failed = append(t.failed, op)
		if len(t.failed) > failedKeep {
			t.failed = t.failed[len(t.failed)-failedKeep:]
		}
	}
	t.mu.Unlock()
}

// Recent returns the completed ops, oldest first.
func (t *Tracer) Recent() []*OpTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*OpTrace, 0, len(t.ring))
	for i := 0; i < len(t.ring); i++ {
		out = append(out, t.ring[(t.next+i)%len(t.ring)])
	}
	return out
}

// Failed returns the retained failed ops, oldest first.
func (t *Tracer) Failed() []*OpTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*OpTrace(nil), t.failed...)
}

// FormatFailed renders every retained failed op — the dump-on-failure
// payload the torture harness and chaos tests print next to the
// seed-replay command.
func (t *Tracer) FormatFailed() string {
	failed := t.Failed()
	if len(failed) == 0 {
		return "(no failed-op traces captured)\n"
	}
	var b strings.Builder
	for _, op := range failed {
		b.WriteString(op.Format())
	}
	return b.String()
}
