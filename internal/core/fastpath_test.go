package core

import (
	"fmt"
	"math"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// TestUncontendedWritesAreTwoRounds pins the adaptive fast path's headline:
// EVERY write of an uncontended writer — not just the first — runs in
// exactly 2 rounds, the paper's SWMR optimum.
func TestUncontendedWritesAreTwoRounds(t *testing.T) {
	for _, tt := range []int{1, 2} {
		t.Run(fmt.Sprintf("t=%d", tt), func(t *testing.T) {
			S := 3*tt + 1
			thr := th(t, S, tt)
			cl := newCluster(thr, 2)
			s := sim.New(sim.Config{Servers: S})
			defer s.Close()
			for i := 1; i <= 5; i++ {
				v := types.Value(fmt.Sprintf("v%d", i))
				w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, cl.writeOp(v))
				mustRun(t, s, w)
				if w.Rounds() != 2 {
					t.Fatalf("uncontended write %d took %d rounds, want 2", i, w.Rounds())
				}
			}
		})
	}
}

// TestForeignWriterForcesBoundedFallback exercises the fast-path/fallback
// boundary under genuine write contention. Two properties are pinned:
//
//  1. Sequential ALTERNATION stays on the 2-round fast path: each writer's
//     proposal (one past its own last sequence number) lexicographically
//     dominates the single foreign write it observes in the validation
//     reports, so the optimistic write certifies even though a foreign
//     head moved — interference costs extra rounds only when the proposal
//     cannot dominate it.
//  2. A writer that fell ≥ 2 foreign writes behind genuinely conflicts
//     (its proposal's sequence number no longer dominates the head); the
//     fallback costs exactly 3 rounds — the failed-validation prewrite
//     doubles as the discovery round, the pre-adaptive constant — and one
//     fallback heals the cache: the next write is 2 rounds again.
//
// The multi-writer checker verifies the full history.
func TestForeignWriterForcesBoundedFallback(t *testing.T) {
	thr := th(t, 4, 1)
	h := &checker.History{}
	s := sim.New(sim.Config{Servers: 4, History: h})
	defer s.Close()
	tss := map[int64]types.TS{}
	writeAs := func(wid int64, v types.Value) *sim.Op {
		return s.Spawn(fmt.Sprintf("w%d-%s", wid, v), types.WriterID(int(wid)), checker.OpWrite, v,
			func(c *sim.Client) (types.Value, error) {
				w := NewWriterAt(c, thr, wid, tss[wid])
				if err := w.Write(v); err != nil {
					return types.Bottom, err
				}
				tss[wid] = w.LastTS()
				return types.Bottom, nil
			})
	}
	mustRounds := func(op *sim.Op, want int, what string) {
		t.Helper()
		mustRun(t, s, op)
		if op.Rounds() != want {
			t.Fatalf("%s took %d rounds, want %d", what, op.Rounds(), want)
		}
	}
	// Property 1: strict alternation, every write 2 rounds.
	mustRounds(writeAs(1, "a"), 2, "opening write")
	mustRounds(writeAs(2, "b"), 2, "alternating write b (foreign head, dominated)")
	mustRounds(writeAs(1, "c"), 2, "alternating write c")
	mustRounds(writeAs(2, "d"), 2, "alternating write d")
	// Property 2: writer 2 runs ahead by two writes; writer 1's proposal
	// can no longer dominate the head → 3-round fallback, then healed.
	mustRounds(writeAs(2, "e"), 2, "run-ahead write e")
	mustRounds(writeAs(1, "f"), 3, "lagging write f (validation conflict → discovery fallback)")
	mustRounds(writeAs(1, "g"), 2, "post-fallback write g (cache healed)")
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		return NewReader(c, thr, 1, 1).Read()
	})
	if v := mustRun(t, s, rd); v != "g" {
		t.Fatalf("read = %q, want g", v)
	}
	if err := checker.CheckAtomicMW(h); err != nil {
		t.Fatal(err)
	}
}

// TestChaosObjectForcesCertifiedFallbackBounded reuses the behavior.go
// fault injectors: a Garbage object poisons every validation piggyback with
// a near-MaxInt64 timestamp, forcing the certified fallback on every write.
// The cost is bounded — 5 rounds: failed prewrite, the 2-round certified
// read, then the 2 write phases — and atomicity is untouched.
func TestChaosObjectForcesCertifiedFallbackBounded(t *testing.T) {
	thr := th(t, 4, 1)
	h := &checker.History{}
	s := sim.New(sim.Config{Servers: 4, History: h})
	defer s.Close()
	cl := newCluster(thr, 2)
	mustRun(t, s, s.Spawn("w0", types.Writer, checker.OpWrite, "a", cl.writeOp("a")))
	s.SetByzantine(1, server.Garbage{Level: math.MaxInt64 - 7, Val: "forged"})
	for i := 1; i <= 3; i++ {
		v := types.Value(fmt.Sprintf("v%d", i))
		w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, cl.writeOp(v))
		mustRun(t, s, w)
		if w.Rounds() > 5 {
			t.Fatalf("write %d under seq-inflation chaos took %d rounds, want ≤ 5", i, w.Rounds())
		}
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	if v := mustRun(t, s, rd); v != "v3" {
		t.Fatalf("read = %q, want v3", v)
	}
	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
}

// TestEquivocatorCannotBreakFastPath: an equivocating object (honest to the
// writer, stale to readers) leaves the fast path intact — the writer's own
// quorum certifies — while reads stay atomic through the decision
// procedure.
func TestEquivocatorCannotBreakFastPath(t *testing.T) {
	thr := th(t, 4, 1)
	h := &checker.History{}
	s := sim.New(sim.Config{Servers: 4, History: h})
	defer s.Close()
	cl := newCluster(thr, 2)
	mustRun(t, s, s.Spawn("w0", types.Writer, checker.OpWrite, "a", cl.writeOp("a")))
	s.SetByzantine(1, server.Equivocate{Readers: &server.Stale{Snap: s.Snapshot(1)}})
	w := s.Spawn("w1", types.Writer, checker.OpWrite, "b", cl.writeOp("b"))
	mustRun(t, s, w)
	if w.Rounds() != 2 {
		t.Fatalf("write under reader-side equivocation took %d rounds, want 2", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	if v := mustRun(t, s, rd); v != "b" {
		t.Fatalf("read = %q, want b", v)
	}
	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
}
