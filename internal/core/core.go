// Package core implements the paper's upper bound (Section 5) promoted to
// multi-writer: a robust multi-writer multi-reader ATOMIC register with
// 3-round writes and 4-round reads, built from one MWMR regular register
// shared by all writers plus one write-back register per reader, hosted on
// the same S = 3t+1 Byzantine-prone storage objects — the classical
// regular → atomic transformation of [4, 20] referenced in the paper's
// footnote 6, with multi-writer ABD-style (Seq, WriterID) timestamps.
//
// Writes are ADAPTIVE (see fastpath.go): the writer optimistically proposes
// the successor of its own cached timestamp directly in the PREWRITE round,
// whose acknowledgements piggyback each object's prior timestamps; a quorum
// reporting nothing at or above the proposal certifies it, and the WRITE
// round completes the operation — 2 rounds, the paper's SWMR optimum,
// whenever no foreign writer interfered. Interference falls back to
// discovery (the failed prewrite's reports double as the discovery result:
// 3 rounds, the unconditional cost before the fast path) or, against
// Byzantine-inflated reports, to the certified read (5 rounds worst case).
// The lexicographic (Seq, WriterID) order totally orders even timestamps
// picked concurrently.
//
// Reads are ADAPTIVE too: the two query rounds — the regular reads of all
// registers multiplexed onto two physical rounds (a physical round carries
// one sub-request per register instance to every object) — always run, but
// the write-back into the reader's own register (two more rounds: PREWRITE,
// WRITE) is ELIDED whenever the query rounds themselves certify the chosen
// pair as completely written: a full quorum of S−t distinct objects
// w-reported the chosen timestamp (or higher) on the SHARED register. So a
// stable register reads in 2 rounds; only reads concurrent with a write, or
// reads whose evidence a Byzantine minority withheld, pay the full 4 rounds
// the paper's Prop. 1 proves necessary in the worst case — the lower bound
// binds exactly the executions that still take 4.
//
// Elision safety: the condition exhibits ≥ S−t distinct w-reporters at or
// above the chosen timestamp ts on the shared register, of which at most t
// lie, so at least S−2t ≥ t+1 CORRECT objects durably hold w ≥ ts (w slots
// are monotone at correct objects). Any later read's decision then returns
// a pair ≥ ts without our help: under the true fault set F*, the level
// ℓ* = min over those t+1 holders of their smallest w-report satisfies
// ℓ* ≥ ts and counts |F*| + (t+1) ≥ 2t+1 supporters, so λ(F*) ≥ ts and the
// decision's choice dominates it. The check runs against the shared
// register only — write-back registers hold ENCODED inner pairs whose inner
// timestamps are not monotone along the outer sequence across reader
// lifetimes, so quorum w-support there certifies nothing about ts.
//
// Atomicity argument (Section 2.2 properties, multi-writer form): (1) values
// travel only from writers through correct objects or genuinely-certified
// write-backs, so reads return written values; (2) a read succeeding a
// complete write at timestamp ts reads the shared register regularly and
// obtains a pair ≥ ts (the regular read's decision dominates every complete
// write); (3) pairs cannot be observed before some writer issues them;
// (4) a read rd2 succeeding rd1 sees a pair at least rd1's result: either
// rd1 completed its write-back before returning and rd2 reads that register
// regularly, or rd1 elided — in which case the elision evidence above
// already forces rd2's shared-register decision to dominate rd1's result —
// so there is no new/old inversion either way. Writes are ordered by their
// timestamps, which respect real time: a write's discovery round intersects
// every earlier complete write's WRITE quorum in a correct object, so its
// timestamp strictly dominates.
package core

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// Writer is one of the atomic register's writers, identified by its
// WriterID. Concurrent writers must use distinct ids; one writer handle is
// single-goroutine like every client of the model.
type Writer struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	wid     int64
	pw      PairWriter

	// FastWrites and FallbackWrites count Write calls that certified on the
	// optimistic 2-round path vs. fell back (instrumentation; the round
	// hook gives finer grain).
	FastWrites     int
	FallbackWrites int
}

// NewWriter returns writer 0's handle (the deployment's default writer).
func NewWriter(r proto.Rounder, th quorum.Thresholds) *Writer {
	return NewWriterAt(r, th, 0, types.TS{})
}

// NewWriterAt returns the handle of writer wid resuming from a known last
// timestamp (its own, or the highest foreign timestamp it observed).
func NewWriterAt(r proto.Rounder, th quorum.Thresholds, wid int64, last types.TS) *Writer {
	return &Writer{rounder: r, th: th, wid: wid, pw: regular.NewWriterAt(r, th, types.WriterReg, wid, last)}
}

// maxDiscoveryLead bounds how far past the writer's own knowledge an
// UNCERTIFIED discovery result may jump before the writer insists on
// certifying it. Honest sequence numbers advance by one per write, so any
// genuine lead above this bound (~4 billion intervening writes) is
// astronomically unlikely between two operations of one process — while a
// Byzantine object forging near-MaxInt64 reports exceeds it on the first
// try and gets routed to the certified read, which it cannot inflate. The
// bound also rate-limits slow-burn inflation: installed sequence numbers
// can grow by at most this much per (genuine) write, pushing ceiling
// exhaustion beyond 2^31 writes even under a sustained attack.
const maxDiscoveryLead = 1 << 32

// DiscoverNext runs one timestamp-discovery round and returns the successor
// timestamp writer wid should write at: one past the highest timestamp a
// quorum exhibits (or past own, whichever is larger). Any complete write's
// WRITE phase reached 2t+1 objects, of which at least one correct one is in
// this quorum of 2t+1 (out of 3t+1), so the successor strictly dominates
// every write that completed before the discovery began — which is what
// atomicity property (2) needs from write ordering.
//
// Since the adaptive fast path (fastpath.go) the hot write flow no longer
// runs a separate discovery round — a failed optimistic prewrite's
// validation reports carry the same information. DiscoverNext remains the
// reference implementation of the unconditional PR 4 flow (and the E12
// benchmark's always-discover baseline).
//
// The replies are uncertified, so a Byzantine object can inflate the
// discovered sequence number. Unchecked, one forged near-MaxInt64 reply
// would make the writer install a pair at the ceiling and wedge every
// writer forever; so whenever the raw result leads the writer's own
// timestamp implausibly (maxDiscoveryLead) or its successor would
// overflow, DiscoverNext falls back to CertifiedNext — the certified read
// decision only yields genuine timestamps, so the forgery costs two extra
// rounds instead of liveness. (A fresh writer attaching to a legitimately
// far-ahead register pays the certified path once; its own timestamp then
// catches up.) The label names the round for traces (e.g. "WDISC").
func DiscoverNext(r proto.Rounder, th quorum.Thresholds, wid int64, own types.TS, label string) (types.TS, error) {
	acc := regular.NewStateAcc(th)
	spec := proto.RoundSpec{
		Label: label,
		Req:   func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
		Acc:   acc,
	}
	if err := r.Round(spec); err != nil {
		return types.TS{}, fmt.Errorf("core: discovery: %w", err)
	}
	raw := types.MaxTS(acc.MaxTS(), own)
	next := raw.Next(wid)
	if next.Seq <= 0 || raw.Seq-own.Seq > maxDiscoveryLead {
		_, next, err := CertifiedNext(r, th, wid, own)
		if err != nil {
			return types.TS{}, err
		}
		if next.Seq <= 0 {
			return types.TS{}, fmt.Errorf("core: register sequence space exhausted")
		}
		return next, nil
	}
	return next, nil
}

// CertifiedNext runs a certified regular read of the shared register
// (2 rounds, the full decision procedure) and returns the current pair plus
// the successor timestamp for writer wid. Unlike DiscoverNext's raw quorum
// maximum, the decision only returns genuine pairs, so not even the
// timestamp can be Byzantine-inflated.
func CertifiedNext(r proto.Rounder, th quorum.Thresholds, wid int64, own types.TS) (types.Pair, types.TS, error) {
	rd := regular.NewReader(r, th, types.WriterReg)
	rd.MultiWriter = true
	cur, err := rd.ReadPair()
	if err != nil {
		return types.Pair{}, types.TS{}, fmt.Errorf("core: certified discovery: %w", err)
	}
	return cur, types.MaxTS(cur.TS, own).Next(wid), nil
}

// ModifyCertified runs the certified read-modify-write flow over any
// pair-writer: certified discovery, fn mapping the current pair to the
// value to install, write at the successor. A fn returning SkipWrite elides
// the write phases and yields the (certified) current pair unchanged. The
// successor is based on the writer's IssuedTS, so a pair abandoned by an
// earlier failed attempt is never re-issued with a different value.
func ModifyCertified(r proto.Rounder, th quorum.Thresholds, wid int64, fn func(cur types.Pair) (types.Value, error), pw PairWriter) (types.Pair, error) {
	cur, next, err := CertifiedNext(r, th, wid, pw.IssuedTS())
	if err != nil {
		return types.Pair{}, err
	}
	v, err := fn(cur)
	if errors.Is(err, SkipWrite) {
		return cur, nil
	}
	if err != nil {
		return types.Pair{}, err
	}
	if next.Seq <= 0 {
		return types.Pair{}, fmt.Errorf("core: register sequence space exhausted")
	}
	p := types.Pair{TS: next, Val: v}
	if err := pw.WritePair(p); err != nil {
		return types.Pair{}, err
	}
	return p, nil
}

// Write stores v adaptively (see fastpath.go): 2 rounds when the optimistic
// proposal certifies — the uncontended case, and the paper's SWMR optimum —
// falling back to discovery or the certified read under interference.
func (w *Writer) Write(v types.Value) error {
	fast, err := WriteAdaptive(w.rounder, w.th, w.wid, v, w.pw)
	if err == nil {
		if fast {
			w.FastWrites++
		} else {
			w.FallbackWrites++
		}
	}
	return err
}

// WriteClean attempts the validate-then-write flush fast path of
// WriteIfClean: one freshness round, then install v at the cached successor
// — 3 rounds, no decision procedure. The keyed Store's flush runs on it.
func (w *Writer) WriteClean(v types.Value) (types.Pair, bool, error) {
	return WriteIfClean(w.rounder, w.th, w.wid, v, w.pw)
}

// Validate runs the one-round freshness check of ValidateClean: true means
// a quorum confirmed the writer's LastTS is still the register's current
// timestamp (the no-write flush).
func (w *Writer) Validate() (bool, error) {
	return ValidateClean(w.rounder, w.th, w.pw)
}

// Modify performs a certified read-modify-write: a regular read of the
// shared register (2 rounds, certified by the decision procedure, so unlike
// the optimistic validation not even the timestamp can be
// Byzantine-inflated), then fn maps the current pair to the value to
// install, which the regular write's two rounds store at the successor
// timestamp. 4 rounds total; the keyed Store layer rebases onto foreign
// tables through Modify when the flush fast path detects interference.
//
// Modify is NOT an atomic read-modify-write across writers — registers
// cannot solve consensus, so two concurrent Modifys may read the same pair
// and the lexicographically larger writer's result prevails. It guarantees
// that the installed value derives from a genuine pair at least as fresh as
// the last complete write, which gives last-writer-wins semantics with no
// lost update unless the writes genuinely race.
func (w *Writer) Modify(fn func(cur types.Pair) (types.Value, error)) (types.Pair, error) {
	return ModifyCertified(w.rounder, w.th, w.wid, fn, w.pw)
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() types.TS { return w.pw.LastTS() }

// Reader is one of the R readers of the atomic register.
type Reader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	idx     int // this reader's index, 1-based
	readers int // R
	seq     int64

	// Reusable round state, built on the first read and recycled after:
	// one two-round accumulator per register, the multiplexed parts
	// referencing them, and the sid-independent request bundle shared by
	// both query rounds. Steady-state reads allocate nothing here.
	regs  []types.RegID
	accs  []*regular.ReadAcc
	parts []MuxPart
	req   types.Message

	// Elided reports whether the last ReadPair skipped the write-back (the
	// query rounds certified the chosen pair as completely written).
	Elided bool
	// FastReads and FallbackReads count reads that elided the write-back
	// vs. paid the full 4 rounds (instrumentation; the round hook gives
	// finer grain).
	FastReads     int
	FallbackReads int
}

// NewReader returns the handle of reader idx out of `readers` total readers.
// A fresh handle discovers the sequence number its write-back register is at
// during its first read (every read queries its own register anyway), so a
// new process reattaching with an identity earlier lifetimes used is safe;
// CONCURRENT use of one reader identity remains forbidden.
func NewReader(r proto.Rounder, th quorum.Thresholds, idx, readers int) *Reader {
	return NewReaderAt(r, th, idx, readers, 0)
}

// NewReaderAt returns a reader resuming its write-back register from a known
// internal sequence number.
func NewReaderAt(r proto.Rounder, th quorum.Thresholds, idx, readers int, seq int64) *Reader {
	if idx < 1 || idx > readers {
		panic(fmt.Sprintf("core: reader index %d out of 1..%d", idx, readers))
	}
	return &Reader{rounder: r, th: th, idx: idx, readers: readers, seq: seq}
}

// Seq returns the reader's current write-back sequence number.
func (r *Reader) Seq() int64 { return r.seq }

// ResumeSeq returns the write-back sequence number a reader handle should
// resume from after reading its own register: prev (the handle's count so
// far), advanced to the raw maximum sequence number the query rounds
// reported. The raw maximum — not the certified choice — is what must never
// be re-issued: a crashed predecessor's prewrite may sit on a single object,
// invisible to certification, and re-issuing its sequence number with a
// different value would leave correct objects permanently disagreeing on one
// timestamp's value (equal timestamps never overwrite), each such pair
// spending a unit of the read decision's fault budget. But raw reports are
// Byzantine-inflatable, so — exactly like the writer's discovery
// (maxDiscoveryLead) — a raw lead past the certified anchor too large to be
// honest history is ignored rather than allowed to burn the sequence space.
func ResumeSeq(prev int64, cert, raw types.TS) int64 {
	seq := prev
	if cert.Seq > seq {
		seq = cert.Seq
	}
	if raw.Seq > seq && raw.Seq-cert.Seq <= maxDiscoveryLead {
		seq = raw.Seq
	}
	return seq
}

// Read performs the adaptive atomic read: 2 rounds when the query rounds
// certify the result as completely written, 4 otherwise.
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// init builds the reader's reusable round state: accumulators, multiplexed
// parts, and the shared request bundle (read requests are sid-independent,
// and runtimes treat request messages as immutable, so one bundle serves
// every object in both query rounds).
func (r *Reader) init() {
	if r.accs != nil {
		return
	}
	r.regs = r.allRegs()
	r.accs = make([]*regular.ReadAcc, len(r.regs))
	r.parts = make([]MuxPart, len(r.regs))
	sub := make([]types.SubMsg, len(r.regs))
	for i, reg := range r.regs {
		// Every register runs the relaxed multi-writer decision: the shared
		// register (index 0) genuinely has many writers, and a write-back
		// register's owner resumes its sequence number by discovery (see
		// ReadPair), so its write at ℓ may follow a crashed predecessor's
		// ℓ−1 that never completed — the exact premise under which the
		// stricter SWMR causality filter would wrongly reject the true
		// fault set (see regular.DecideAcc.MultiWriter).
		r.accs[i] = regular.NewReadAcc(r.th)
		r.accs[i].MultiWriter = true
		r.parts[i] = MuxPart{
			Reg: reg,
			Req: func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc: r.accs[i],
		}
		sub[i] = types.SubMsg{Reg: reg, Msg: types.Message{Kind: types.MsgRead1}}
	}
	r.req = types.Message{Kind: types.MsgMux, Sub: sub}
}

// muxSpec builds the query-round spec over the reader's prebuilt parts and
// shared request bundle (MuxRound minus the per-object bundle allocation).
func (r *Reader) muxSpec(label string) proto.RoundSpec {
	req := r.req
	return proto.RoundSpec{
		Label: label,
		Req:   func(int) types.Message { return req },
		Acc:   &muxAcc{parts: r.parts},
	}
}

// ReadPair performs the adaptive atomic read, returning the chosen
// timestamp-value pair.
func (r *Reader) ReadPair() (types.Pair, error) {
	r.init()
	for _, a := range r.accs {
		a.Reset()
	}

	// Physical round 1: round 1 of every register's regular read.
	if err := r.rounder.Round(r.muxSpec("AREAD1")); err != nil {
		return types.Pair{}, fmt.Errorf("core: read round 1: %w", err)
	}

	// Physical round 2: round 2 of every register's regular read, over the
	// frozen round-1 views.
	for _, a := range r.accs {
		a.BeginDecide()
	}
	if err := r.rounder.Round(r.muxSpec("AREAD2")); err != nil {
		return types.Pair{}, fmt.Errorf("core: read round 2: %w", err)
	}

	// Resume the write-back sequence number from the views just collected:
	// regs[r.idx] is this reader's own register, so the read's two query
	// rounds double as the discovery round a fresh handle needs. A handle
	// that restarted its count at zero would re-issue sequence numbers an
	// earlier lifetime of this identity already used, carrying this era's
	// (different) value; objects keep whichever write they saw first (equal
	// timestamps never overwrite), so correct objects end up durably
	// disagreeing on one timestamp's value — each such pair burns a unit of
	// the read decision's fault budget, and enough of them starve every
	// later read of this register ("all replies in, accumulator
	// unsatisfied"). Resuming must happen on BOTH the elided and the
	// fallback path: an elided read still observed the register, and the
	// next fallback write-back must not re-issue what it saw.
	r.seq = ResumeSeq(r.seq, r.accs[r.idx].Choice().TS, r.accs[r.idx].MaxTS())

	// The read's result is the maximum pair across the writer's register
	// and every reader's write-back register.
	best := r.accs[0].Choice() // writer's register holds pairs directly
	for i := 1; i < len(r.regs); i++ {
		p, err := DecodePair(r.accs[i].Choice().Val)
		if err != nil {
			return types.Pair{}, fmt.Errorf("core: write-back register %v: %w", r.regs[i], err)
		}
		best = types.MaxPair(best, p)
	}

	// Write-back elision: when a full quorum of S−t distinct objects
	// w-reported the chosen timestamp (or higher) on the SHARED register,
	// the chosen pair is already completely written — at least t+1 correct
	// objects durably hold it, which forces every later read's decision to
	// dominate it (see the package documentation's safety argument) — so
	// the 2-round write-back re-asserting it is pure cost. The check runs
	// against the shared register only: whatever register `best` surfaced
	// from, its value originates in shared-register pairs (write-back
	// registers hold encoded copies), and only the shared register's
	// w slots are monotone in best's timestamp order. Byzantine objects
	// cannot fake the condition (t forged reports < S−t) and can at worst
	// withhold it, costing rounds, never safety.
	if r.accs[0].WSupport(best.TS) >= r.th.Quorum() {
		r.Elided = true
		r.FastReads++
		return best, nil
	}
	r.Elided = false
	r.FallbackReads++

	// Physical rounds 3 and 4: write the result back into this reader's own
	// register before returning. Write-back registers are single-writer
	// (the reader owns its own), so their timestamps keep WID 0.
	if r.seq+1 <= 0 {
		return types.Pair{}, fmt.Errorf("core: write-back register sequence space exhausted")
	}
	wb := regular.NewWriterAt(r.rounder, r.th, types.ReaderReg(r.idx), 0, types.At(r.seq))
	if err := wb.WritePair(types.Pair{TS: types.At(r.seq + 1), Val: EncodePair(best)}); err != nil {
		return types.Pair{}, fmt.Errorf("core: write-back: %w", err)
	}
	r.seq++
	return best, nil
}

// allRegs returns the writer's register followed by every reader's
// write-back register.
func (r *Reader) allRegs() []types.RegID {
	regs := make([]types.RegID, 0, r.readers+1)
	regs = append(regs, types.WriterReg)
	for i := 1; i <= r.readers; i++ {
		regs = append(regs, types.ReaderReg(i))
	}
	return regs
}

// EncodePair encodes a pair as a register value for write-back registers:
// "seq|value" for single-writer timestamps (the exact pre-multi-writer
// encoding, so PR 3-era persisted write-back values keep round-tripping) and
// "seq.wid|value" for timestamps carrying a writer id.
func EncodePair(p types.Pair) types.Value {
	if p.IsBottom() {
		return types.Bottom
	}
	return types.Value(p.TS.String() + "|" + string(p.Val))
}

// DecodePair decodes a write-back register value, accepting both the legacy
// scalar "seq|value" form and the multi-writer "seq.wid|value" form. The
// empty value decodes to the initial pair.
func DecodePair(v types.Value) (types.Pair, error) {
	if v.IsBottom() {
		return types.BottomPair, nil
	}
	i := strings.IndexByte(string(v), '|')
	if i < 0 {
		return types.Pair{}, fmt.Errorf("core: malformed write-back payload %q", v)
	}
	head, rest := string(v)[:i], string(v)[i+1:]
	seqStr, widStr, hasWID := strings.Cut(head, ".")
	seq, err := strconv.ParseInt(seqStr, 10, 64)
	if err != nil || seq <= 0 {
		return types.Pair{}, fmt.Errorf("core: malformed write-back timestamp in %q", v)
	}
	var wid int64
	if hasWID {
		if wid, err = strconv.ParseInt(widStr, 10, 64); err != nil || wid == 0 {
			return types.Pair{}, fmt.Errorf("core: malformed write-back writer id in %q", v)
		}
	}
	return types.Pair{TS: types.TS{Seq: seq, WID: wid}, Val: types.Value(rest)}, nil
}

// MuxPart is one register's contribution to a multiplexed physical round.
type MuxPart struct {
	Reg types.RegID
	Req func(sid int) types.Message
	Acc proto.Accumulator
}

// muxAcc fans multiplexed replies out to the per-register accumulators; the
// physical round terminates when every register's round would. Sub-round
// accumulators are monotone, so the conjunction is monotone.
type muxAcc struct {
	parts []MuxPart
}

// Add implements proto.Accumulator.
func (a *muxAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgMux {
		return
	}
	for _, sub := range m.Sub {
		for i := range a.parts {
			if a.parts[i].Reg == sub.Reg {
				a.parts[i].Acc.Add(sid, sub.Msg)
			}
		}
	}
}

// Done implements proto.Accumulator.
func (a *muxAcc) Done() bool {
	for i := range a.parts {
		if !a.parts[i].Acc.Done() {
			return false
		}
	}
	return true
}

// MuxRound builds the physical round bundling the given register rounds:
// every object receives one sub-request per register and replies with one
// sub-reply per register, so the bundled rounds advance in lockstep and
// cost a single physical round-trip.
func MuxRound(label string, parts []MuxPart) proto.RoundSpec {
	return proto.RoundSpec{
		Label: label,
		Req: func(sid int) types.Message {
			sub := make([]types.SubMsg, len(parts))
			for i, p := range parts {
				sub[i] = types.SubMsg{Reg: p.Reg, Msg: p.Req(sid)}
			}
			return types.Message{Kind: types.MsgMux, Sub: sub}
		},
		Acc: &muxAcc{parts: parts},
	}
}
