// Package core implements the paper's matching upper bound (Section 5): a
// robust single-writer multi-reader ATOMIC register with 2-round writes and
// 4-round reads, built from R+1 robust regular registers (one owned by the
// writer, one write-back register per reader) hosted on the same S = 3t+1
// Byzantine-prone storage objects — the classical SWMR-regular → SWMR-atomic
// transformation of [4, 20] referenced in the paper's footnote 6.
//
// Reads execute the regular reads of all R+1 registers in parallel by
// multiplexing their two query rounds onto two physical rounds (a physical
// round carries one sub-request per register instance to every object), then
// write the maximum pair back into the reader's own register (two more
// rounds: PREWRITE, WRITE) before returning — 4 rounds total, matching the
// optimum established by the paper's two lower bounds: no scalable robust
// atomic storage can read in fewer than 4 rounds while keeping constant
// write latency. Writes touch only the writer's register: 2 rounds, the
// optimum of [1].
//
// Atomicity argument (Section 2.2 properties): (1) values travel only from
// the writer through correct objects or genuinely-certified write-backs, so
// reads return written values; (2) a read succeeding write k reads the
// writer's register regularly and obtains a pair ≥ k; (3) pairs cannot be
// observed before the writer issues them; (4) a read rd2 succeeding rd1
// reads rd1's write-back register regularly, and rd1 completed its
// write-back before returning, so rd2's maximum is at least rd1's result —
// no new/old inversion. Concurrent reads may still disagree transiently,
// which atomicity permits.
package core

import (
	"fmt"
	"strconv"
	"strings"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// Writer is the atomic register's single writer.
type Writer struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	ts      int64
}

// NewWriter returns the writer handle.
func NewWriter(r proto.Rounder, th quorum.Thresholds) *Writer {
	return NewWriterAt(r, th, 0)
}

// NewWriterAt returns a writer resuming from a known last timestamp.
func NewWriterAt(r proto.Rounder, th quorum.Thresholds, lastTS int64) *Writer {
	return &Writer{rounder: r, th: th, ts: lastTS}
}

// Write stores v: two rounds on the writer's register.
func (w *Writer) Write(v types.Value) error {
	rw := regular.NewWriterAt(w.rounder, w.th, types.WriterReg, w.ts)
	if err := rw.Write(v); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	w.ts = rw.LastTS()
	return nil
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() int64 { return w.ts }

// Reader is one of the R readers of the atomic register.
type Reader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	idx     int // this reader's index, 1-based
	readers int // R
	seq     int64
}

// NewReader returns the handle of reader idx out of `readers` total readers.
func NewReader(r proto.Rounder, th quorum.Thresholds, idx, readers int) *Reader {
	return NewReaderAt(r, th, idx, readers, 0)
}

// NewReaderAt returns a reader resuming its write-back register from a known
// internal sequence number.
func NewReaderAt(r proto.Rounder, th quorum.Thresholds, idx, readers int, seq int64) *Reader {
	if idx < 1 || idx > readers {
		panic(fmt.Sprintf("core: reader index %d out of 1..%d", idx, readers))
	}
	return &Reader{rounder: r, th: th, idx: idx, readers: readers, seq: seq}
}

// Seq returns the reader's current write-back sequence number.
func (r *Reader) Seq() int64 { return r.seq }

// Read performs the 4-round atomic read.
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair performs the 4-round atomic read, returning the chosen
// timestamp-value pair.
func (r *Reader) ReadPair() (types.Pair, error) {
	regs := r.allRegs()

	// Physical round 1: round 1 of every register's regular read.
	accs1 := make([]*regular.StateAcc, len(regs))
	parts1 := make([]MuxPart, len(regs))
	for i, reg := range regs {
		accs1[i] = regular.NewStateAcc(r.th)
		parts1[i] = MuxPart{
			Reg: reg,
			Req: func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc: accs1[i],
		}
	}
	if err := r.rounder.Round(MuxRound("AREAD1", parts1)); err != nil {
		return types.Pair{}, fmt.Errorf("core: read round 1: %w", err)
	}

	// Physical round 2: round 2 of every register's regular read, over the
	// frozen round-1 views.
	accs2 := make([]*regular.DecideAcc, len(regs))
	parts2 := make([]MuxPart, len(regs))
	for i, reg := range regs {
		accs2[i] = regular.NewDecideAcc(r.th, accs1[i].Replies)
		parts2[i] = MuxPart{
			Reg: reg,
			Req: func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc: accs2[i],
		}
	}
	if err := r.rounder.Round(MuxRound("AREAD2", parts2)); err != nil {
		return types.Pair{}, fmt.Errorf("core: read round 2: %w", err)
	}

	// The read's result is the maximum pair across the writer's register
	// and every reader's write-back register.
	best := accs2[0].Choice() // writer's register holds pairs directly
	for i := 1; i < len(regs); i++ {
		p, err := DecodePair(accs2[i].Choice().Val)
		if err != nil {
			return types.Pair{}, fmt.Errorf("core: write-back register %v: %w", regs[i], err)
		}
		best = types.MaxPair(best, p)
	}

	// Physical rounds 3 and 4: write the result back into this reader's own
	// register before returning.
	wb := regular.NewWriterAt(r.rounder, r.th, types.ReaderReg(r.idx), r.seq)
	if err := wb.WritePair(types.Pair{TS: r.seq + 1, Val: EncodePair(best)}); err != nil {
		return types.Pair{}, fmt.Errorf("core: write-back: %w", err)
	}
	r.seq++
	return best, nil
}

// allRegs returns the writer's register followed by every reader's
// write-back register.
func (r *Reader) allRegs() []types.RegID {
	regs := make([]types.RegID, 0, r.readers+1)
	regs = append(regs, types.WriterReg)
	for i := 1; i <= r.readers; i++ {
		regs = append(regs, types.ReaderReg(i))
	}
	return regs
}

// EncodePair encodes a pair as a register value for write-back registers.
func EncodePair(p types.Pair) types.Value {
	if p.IsBottom() {
		return types.Bottom
	}
	return types.Value(strconv.FormatInt(p.TS, 10) + "|" + string(p.Val))
}

// DecodePair decodes a write-back register value. The empty value decodes to
// the initial pair.
func DecodePair(v types.Value) (types.Pair, error) {
	if v.IsBottom() {
		return types.BottomPair, nil
	}
	i := strings.IndexByte(string(v), '|')
	if i < 0 {
		return types.Pair{}, fmt.Errorf("core: malformed write-back payload %q", v)
	}
	ts, err := strconv.ParseInt(string(v)[:i], 10, 64)
	if err != nil || ts <= 0 {
		return types.Pair{}, fmt.Errorf("core: malformed write-back timestamp in %q", v)
	}
	return types.Pair{TS: ts, Val: types.Value(string(v)[i+1:])}, nil
}

// MuxPart is one register's contribution to a multiplexed physical round.
type MuxPart struct {
	Reg types.RegID
	Req func(sid int) types.Message
	Acc proto.Accumulator
}

// muxAcc fans multiplexed replies out to the per-register accumulators; the
// physical round terminates when every register's round would. Sub-round
// accumulators are monotone, so the conjunction is monotone.
type muxAcc struct {
	parts []MuxPart
}

// Add implements proto.Accumulator.
func (a *muxAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgMux {
		return
	}
	for _, sub := range m.Sub {
		for i := range a.parts {
			if a.parts[i].Reg == sub.Reg {
				a.parts[i].Acc.Add(sid, sub.Msg)
			}
		}
	}
}

// Done implements proto.Accumulator.
func (a *muxAcc) Done() bool {
	for i := range a.parts {
		if !a.parts[i].Acc.Done() {
			return false
		}
	}
	return true
}

// MuxRound builds the physical round bundling the given register rounds:
// every object receives one sub-request per register and replies with one
// sub-reply per register, so the bundled rounds advance in lockstep and
// cost a single physical round-trip.
func MuxRound(label string, parts []MuxPart) proto.RoundSpec {
	return proto.RoundSpec{
		Label: label,
		Req: func(sid int) types.Message {
			sub := make([]types.SubMsg, len(parts))
			for i, p := range parts {
				sub[i] = types.SubMsg{Reg: p.Reg, Msg: p.Req(sid)}
			}
			return types.Message{Kind: types.MsgMux, Sub: sub}
		},
		Acc: &muxAcc{parts: parts},
	}
}
