package core

import (
	"testing"

	"robustatomic/internal/types"
)

// FuzzDecodePair exercises the write-back pair codec with arbitrary input:
// decoding must never panic, and anything that decodes must re-encode to a
// value that decodes to the same pair — across both the legacy scalar
// "seq|value" form and the multi-writer "seq.wid|value" form.
func FuzzDecodePair(f *testing.F) {
	f.Add("")
	f.Add("1|a")
	f.Add("42|hello|world")
	f.Add("3.5|multi-writer")
	f.Add("9.-2|negative-wid")
	f.Add("junk")
	f.Add("0|v")
	f.Add("3.|v")
	f.Fuzz(func(t *testing.T, s string) {
		p, err := DecodePair(types.Value(s))
		if err != nil {
			return
		}
		back, err := DecodePair(EncodePair(p))
		if err != nil {
			t.Fatalf("re-encoded pair %v does not decode: %v", p, err)
		}
		if back != p {
			t.Fatalf("round trip drift: %v → %v", p, back)
		}
	})
}
