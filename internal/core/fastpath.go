// Adaptive round complexity: the multi-writer write flows shared by the
// plain (unauthenticated) and secret-token models.
//
// PR 4's multi-writer promotion paid for timestamp discovery on EVERY
// write: a lone writer knows the highest timestamp (its own), concurrent
// writers must discover it, so writes grew from the SWMR-optimal 2 rounds
// to 3. But the paper's lower bounds price rounds against *actual*
// adversarial behavior, and its optimal read is the template: a fast path
// for contention-free executions, a fallback when interference shows. The
// flows here apply that shape to writes:
//
//   - WriteAdaptive (the plain Write): the writer optimistically proposes
//     the successor of its own cached timestamp directly in the PREWRITE
//     round; each object's acknowledgement piggybacks the highest timestamp
//     it held before applying the prewrite. A quorum reporting nothing at
//     or above the proposal certifies it — every write that completed
//     before this one began reached a correct member of the quorum, whose
//     report would have exposed it — and the WRITE round finishes the
//     operation: 2 rounds, the SWMR optimum, whenever no foreign writer
//     (or forger) interfered. On a reported-higher reply the failed
//     prewrite itself doubles as the discovery round (its reports are
//     exactly what DiscoverNext would have collected), so a genuinely
//     contended write costs 3 rounds — the PR 4 constant — and only a
//     Byzantine-inflated report escalates to the certified read (5 rounds,
//     the PR 4 worst case; the maxDiscoveryLead bound keeps sequence
//     numbers sane either way).
//
//   - WriteIfClean (the Store flush fast path): validate-then-write. The
//     flush's value DERIVES from the table cached at the writer's base
//     timestamp, so it must not enter circulation — not even as a
//     prewrite — until the base is known current: a prewritten pair is
//     readable as a concurrent write, and a stale-derived table at a
//     dominating timestamp would let a reader resurrect a key value that a
//     foreign writer's already-completed Put replaced. WriteIfClean
//     therefore runs one read round FIRST (no timestamp beyond the base in
//     circulation — any write completed before the flush began reached a
//     correct quorum member, whose report exposes it) and only then the
//     two blind write phases at the cached successor: 3 rounds, down from
//     the certified read-modify-write's 4, and — unlike the certified
//     read — without the decision procedure's fault-set enumeration on the
//     hot path. On a reported-higher conflict nothing is written and the
//     caller rebases through the certified path. Foreign writes that land
//     AFTER the validation round are concurrent with the flush — the
//     documented last-writer-wins shard race, exactly as with the
//     certified path's read→write gap.
//
//   - ValidateClean: the degenerate flush — a batch whose mutations all
//     turned out to be no-ops needs no register write at all, just one
//     read round confirming the cached base is still current (Byzantine
//     objects can force the fallback by over-reporting, but can never fake
//     freshness: hiding a completed foreign write would require every
//     correct quorum member to miss it, and quorum intersection forbids
//     that).
//
// Abandoned prewrites (a fast path that lost its validation) are safe: the
// protocol already tolerates a writer crashing between PREWRITE and WRITE,
// and the writer records every proposed timestamp as issued, so a later
// write can never re-issue an abandoned timestamp with a different value
// (which would break the decide procedure's value-agreement invariant).
package core

import (
	"errors"
	"fmt"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// PairWriter is the two-phase pair writer the adaptive flows drive: the
// plain regular.Writer, or the secret model's token-carrying one. LastTS is
// the last COMPLETED write's timestamp; IssuedTS additionally covers
// proposals that never completed and is what successor timestamps must
// exceed.
type PairWriter interface {
	PreWritePair(p types.Pair) (types.TS, error)
	CommitPair(p types.Pair) error
	WritePair(p types.Pair) error
	LastTS() types.TS
	IssuedTS() types.TS
}

var (
	_ PairWriter = (*regular.Writer)(nil)
)

// SkipWrite is the sentinel a ModifyCertified callback returns to elide the
// write phases: the certified read still ran (so the caller's view is
// genuinely current), but nothing is installed and the current pair is
// returned unchanged.
var SkipWrite = errors.New("core: modify produced no change, write elided")

// WriteAdaptive stores v through pw with the optimistic fast path described
// in the package comment: 2 rounds uncontended, 3 under genuine write
// contention, 5 when a Byzantine report forces the certified fallback. It
// reports whether the fast path certified.
func WriteAdaptive(r proto.Rounder, th quorum.Thresholds, wid int64, v types.Value, pw PairWriter) (bool, error) {
	if v.IsBottom() {
		return false, fmt.Errorf("core: cannot write the reserved initial value ⊥")
	}
	base := pw.IssuedTS()
	proposed := base.Next(wid)
	if proposed.Seq <= 0 {
		// Sequence ceiling: only the certified read yields a trustworthy
		// current timestamp to judge exhaustion by.
		return false, writeAtCertified(r, th, wid, base, v, pw)
	}
	p := types.Pair{TS: proposed, Val: v}
	prior, err := pw.PreWritePair(p)
	if err != nil {
		return false, err
	}
	if prior.Less(proposed) {
		// Certified: nothing at or above the proposal was in circulation
		// when the quorum acknowledged, so the proposal dominates every
		// complete write and the WRITE round can finish the operation.
		return true, pw.CommitPair(p)
	}
	// Interference. The validation reports are exactly a discovery round's
	// input (uncertified quorum maximum), so reuse them: write at their
	// successor unless the lead is implausible (Byzantine inflation) or
	// overflowing — then only the certified read's genuine timestamp will
	// do. See maxDiscoveryLead for the bound's rationale.
	// The floor passed down is base, not proposed: re-issuing the abandoned
	// proposal's timestamp is safe HERE because it would carry the same
	// value v (value agreement is per (timestamp, value)); only later
	// operations, which carry other values, must stay above IssuedTS.
	next := prior.Next(wid)
	if next.Seq <= 0 || prior.Seq-base.Seq > maxDiscoveryLead {
		return false, writeAtCertified(r, th, wid, base, v, pw)
	}
	return false, pw.WritePair(types.Pair{TS: next, Val: v})
}

// writeAtCertified installs v at the successor of the certified current
// timestamp (own is the floor the successor must additionally exceed).
func writeAtCertified(r proto.Rounder, th quorum.Thresholds, wid int64, own types.TS, v types.Value, pw PairWriter) error {
	_, next, err := CertifiedNext(r, th, wid, own)
	if err != nil {
		return err
	}
	if next.Seq <= 0 {
		return fmt.Errorf("core: register sequence space exhausted")
	}
	return pw.WritePair(types.Pair{TS: next, Val: v})
}

// WriteIfClean attempts the flush fast path (see the package comment's
// validate-then-write discussion): one read round confirms no timestamp
// beyond the caller's cached base (pw.LastTS()) is in circulation — the
// cached view the value v derives from is still current, so no rebase is
// needed and nothing stale-derived ever enters circulation — then the two
// write phases install v at the cached successor, which the validation
// guarantees dominates every previously-completed write. Returns
// (pair, true, nil) on success and (Pair{}, false, nil) on a validation
// conflict (nothing written; the caller rebases through the certified
// read-modify-write). A failed earlier proposal (IssuedTS beyond LastTS)
// also routes to the certified path, which alone may pick timestamps then.
func WriteIfClean(r proto.Rounder, th quorum.Thresholds, wid int64, v types.Value, pw PairWriter) (types.Pair, bool, error) {
	if v.IsBottom() {
		return types.Pair{}, false, fmt.Errorf("core: cannot write the reserved initial value ⊥")
	}
	ok, err := ValidateClean(r, th, pw)
	if err != nil || !ok {
		return types.Pair{}, false, err
	}
	proposed := pw.LastTS().Next(wid)
	if proposed.Seq <= 0 {
		return types.Pair{}, false, nil
	}
	p := types.Pair{TS: proposed, Val: v}
	if err := pw.WritePair(p); err != nil {
		return types.Pair{}, false, err
	}
	return p, true, nil
}

// validateReq is the WVAL round's (static) request builder.
func validateReq(int) types.Message { return types.Message{Kind: types.MsgRead1} }

// ValidateClean runs one read round and reports whether a quorum confirms
// no timestamp beyond the caller's cached base (pw.LastTS()) — the no-write
// flush: a batch of no-op mutations is correct to elide exactly when the
// cached table is still the register's current value, which this round
// witnesses. Byzantine objects can only force a false negative (the caller
// then pays the certified path); a false positive would need every correct
// quorum member to miss a completed foreign write, which quorum
// intersection rules out.
func ValidateClean(r proto.Rounder, th quorum.Thresholds, pw PairWriter) (bool, error) {
	base := pw.LastTS()
	if base.Less(pw.IssuedTS()) {
		return false, nil
	}
	acc := proto.NewBitAcc(types.MsgState, th.Quorum())
	spec := proto.RoundSpec{Label: "WVAL", Req: validateReq, Acc: acc}
	if err := r.Round(spec); err != nil {
		return false, fmt.Errorf("core: validate: %w", err)
	}
	return !base.Less(acc.MaxTS()), nil
}
