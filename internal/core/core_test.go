package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

func th(t *testing.T, s, tt int) quorum.Thresholds {
	t.Helper()
	out, err := quorum.NewThresholds(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// cluster tracks per-client protocol state across simulated operations.
type cluster struct {
	thr     quorum.Thresholds
	readers int
	writeTS types.TS
	seqs    map[int]int64 // reader idx → write-back seq
}

func newCluster(thr quorum.Thresholds, readers int) *cluster {
	return &cluster{thr: thr, readers: readers, seqs: make(map[int]int64, readers)}
}

func (cl *cluster) writeOp(v types.Value) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		w := NewWriterAt(c, cl.thr, 0, cl.writeTS)
		if err := w.Write(v); err != nil {
			return types.Bottom, err
		}
		cl.writeTS = w.LastTS()
		return types.Bottom, nil
	}
}

func (cl *cluster) readOp(idx int) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		r := NewReaderAt(c, cl.thr, idx, cl.readers, cl.seqs[idx])
		v, err := r.Read()
		if err != nil {
			return types.Bottom, err
		}
		cl.seqs[idx] = r.Seq()
		return v, nil
	}
}

func mustRun(t *testing.T, s *sim.Sim, op *sim.Op) types.Value {
	t.Helper()
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	v, err := op.Result()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestRoundComplexity(t *testing.T) {
	// The headline numbers of the adaptive multi-writer register: 2-round
	// writes when the optimistic proposal certifies (the uncontended case —
	// the paper's SWMR optimum, recovered), and — since the adaptive read —
	// 2-round reads on a STABLE register: the query rounds exhibit a full
	// quorum of w-reports at the chosen timestamp, certifying it as
	// completely written, so the write-back is elided. Prop. 1's 4-round
	// worst case survives in executions where the evidence falls short —
	// see TestReadFallbackOnIncompleteWrite.
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", cl.writeOp("a"))
	mustRun(t, s, w)
	if w.Rounds() != 2 {
		t.Errorf("write rounds = %d, want 2", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q, want a", v)
	}
	if rd.Rounds() != 2 {
		t.Errorf("stable read rounds = %d, want 2 (write-back elided)", rd.Rounds())
	}
}

func TestReadFallbackOnIncompleteWrite(t *testing.T) {
	// The executions behind Prop. 1's lower bound still pay 4 rounds: the
	// write completed on objects {1,2,3} only, and the read's query quorum
	// is {1,2,4} — object 4 contributes no w-report at the chosen
	// timestamp, so w-support is 2 < S−t and the read must re-assert the
	// pair through the full 2-round write-back before returning.
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", cl.writeOp("a"))
	s.Step(w, 1, 2, 3) // PREWRITE reaches {1,2,3}
	s.Step(w, 1, 2, 3) // WRITE reaches {1,2,3}
	if !w.Done() {
		t.Fatal("write did not complete on {1,2,3}")
	}
	var rdr *Reader
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		rdr = NewReaderAt(c, cl.thr, 1, cl.readers, 0)
		return rdr.Read()
	})
	s.Step(rd, 1, 2, 4) // AREAD1: object 4 never saw the write
	s.Step(rd, 1, 2, 4) // AREAD2: w-support for "a" is {1,2} < S−t
	s.Step(rd, 1, 2, 3) // write-back PREWRITE
	s.Step(rd, 1, 2, 3) // write-back WRITE
	if !rd.Done() {
		t.Fatal("read did not complete")
	}
	if v, err := rd.Result(); err != nil || v != "a" {
		t.Fatalf("read = %q, %v; want a", v, err)
	}
	if rd.Rounds() != 4 {
		t.Errorf("uncertain read rounds = %d, want 4 (full write-back)", rd.Rounds())
	}
	if rdr.Elided {
		t.Error("read of an incompletely-written pair must not elide the write-back")
	}
}

func TestInitialReadBottom(t *testing.T) {
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	if v := mustRun(t, s, rd); !v.IsBottom() {
		t.Errorf("initial read = %q", v)
	}
}

func TestSequentialReadsSeeWrites(t *testing.T) {
	thr := th(t, 7, 2)
	cl := newCluster(thr, 3)
	s := sim.New(sim.Config{Servers: 7})
	defer s.Close()
	for i := 1; i <= 4; i++ {
		v := types.Value(fmt.Sprintf("v%d", i))
		mustRun(t, s, s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, cl.writeOp(v)))
		for r := 1; r <= 3; r++ {
			rd := s.Spawn(fmt.Sprintf("rd%d-%d", i, r), types.Reader(r), checker.OpRead, types.Bottom, cl.readOp(r))
			if got := mustRun(t, s, rd); got != v {
				t.Errorf("reader %d after write %d: %q", r, i, got)
			}
		}
	}
}

func TestReadersSeeOtherReadersWriteBacks(t *testing.T) {
	// The mechanism behind atomicity property (4): reader 1 reads "a" while
	// the write is in flight; after r1 completes, reader 2 must also see
	// "a" even though the writer's own register still lacks a full quorum.
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	// Complete the PREWRITE quorum (which with the adaptive fast path is
	// the write's first round) and leave WRITE entirely undelivered, then
	// crash: only pw carries (1,a).
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", cl.writeOp("a"))
	s.Step(w, 1, 2, 3) // PREWRITE
	s.Crash(w)
	r1 := s.Spawn("r1", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	v1 := mustRun(t, s, r1)
	r2 := s.Spawn("r2", types.Reader(2), checker.OpRead, types.Bottom, cl.readOp(2))
	v2 := mustRun(t, s, r2)
	if v1 == "a" && v2 != "a" {
		t.Fatalf("new/old inversion: r1=%q then r2=%q", v1, v2)
	}
}

func TestAtomicDespiteByzantine(t *testing.T) {
	for _, tt := range []int{1, 2} {
		S := 3*tt + 1
		thr := th(t, S, tt)
		for _, name := range []string{"silent", "garbage", "stale", "equivocate"} {
			t.Run(fmt.Sprintf("t=%d/%s", tt, name), func(t *testing.T) {
				cl := newCluster(thr, 2)
				h := &checker.History{}
				s := sim.New(sim.Config{Servers: S, History: h})
				defer s.Close()
				mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", cl.writeOp("a")))
				for i := 1; i <= tt; i++ {
					switch name {
					case "silent":
						s.SetByzantine(i, server.Silent{})
					case "garbage":
						s.SetByzantine(i, server.Garbage{})
					case "stale":
						s.SetByzantine(i, &server.Stale{Snap: s.Snapshot(i)})
					case "equivocate":
						s.SetByzantine(i, server.Equivocate{Readers: &server.Stale{Snap: s.Snapshot(i)}})
					}
				}
				mustRun(t, s, s.Spawn("w2", types.Writer, checker.OpWrite, "b", cl.writeOp("b")))
				rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
				for !rd.Done() {
					if err := s.CheckLiveness(rd); err != nil {
						t.Fatalf("liveness: %v", err)
					}
				}
				if v, _ := rd.Result(); v != "b" {
					t.Errorf("read = %q, want b", v)
				}
				rd2 := s.Spawn("rd2", types.Reader(2), checker.OpRead, types.Bottom, cl.readOp(2))
				if v := mustRun(t, s, rd2); v != "b" {
					t.Errorf("second read = %q, want b", v)
				}
				if err := checker.CheckAtomic(h); err != nil {
					t.Error(err)
				}
			})
		}
	}
}

func TestRandomizedModelCheckAtomicity(t *testing.T) {
	// The core validation: seeded random schedules, random Byzantine
	// subsets/behaviors, sequential writes concurrent with overlapping
	// reads by multiple readers; the complete history must be atomic
	// (properties (1)-(4)), and small histories are cross-checked with the
	// generic linearizability checker.
	seeds := 300
	if testing.Short() {
		seeds = 20
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAtomicSchedule(t, seed)
		})
	}
}

func runAtomicSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed * 104729))
	tt := 1 + rng.Intn(2)
	S := 3*tt + 1
	thr := th(t, S, tt)
	const R = 3
	cl := newCluster(thr, R)
	h := &checker.History{}
	s := sim.New(sim.Config{Servers: S, History: h})
	defer s.Close()
	nByz := rng.Intn(tt + 1)
	perm := rng.Perm(S)
	for i := 0; i < nByz; i++ {
		sid := perm[i] + 1
		switch rng.Intn(5) {
		case 0:
			s.SetByzantine(sid, server.Silent{})
		case 1:
			s.SetByzantine(sid, server.Garbage{Level: int64(rng.Intn(8)), Val: "evil"})
		case 2:
			s.SetByzantine(sid, &server.ReplayOnly{Rand: rng})
		case 3:
			s.SetByzantine(sid, &server.Stale{Snap: s.Snapshot(sid)})
		default:
			s.SetByzantine(sid, server.Flaky{Rand: rng, DropProb: 0.3})
		}
	}
	readers := make([]*sim.Op, R)
	for i := 1; i <= R; i++ {
		readers[i-1] = s.Spawn(fmt.Sprintf("r%d", i), types.Reader(i), checker.OpRead, types.Bottom, cl.readOp(i))
	}
	writes := 2 + rng.Intn(2)
	for i := 1; i <= writes; i++ {
		v := types.Value(fmt.Sprintf("v%d", i))
		w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, cl.writeOp(v))
		ops := append([]*sim.Op{w}, readers...)
		if err := s.RunConcurrent(seed*31+int64(i), ops...); err != nil {
			t.Fatalf("liveness: %v", err)
		}
		// Replace finished readers with fresh reads to keep contention up.
		for j, rd := range readers {
			if rd.Done() {
				readers[j] = s.Spawn(fmt.Sprintf("r%d.%d", j+1, i), types.Reader(j+1), checker.OpRead, types.Bottom, cl.readOp(j+1))
			}
		}
	}
	for _, rd := range readers {
		if err := s.RunOp(rd); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if err := checker.CheckAtomic(h); err != nil {
		t.Fatal(err)
	}
	if h.Len() <= checker.MaxLinearizableOps {
		lin, err := checker.CheckLinearizable(h)
		if err != nil {
			t.Fatal(err)
		}
		if !lin {
			t.Fatal("history not linearizable despite passing atomicity properties")
		}
	}
}

func TestDiscoveryOverflowFallsBackToCertified(t *testing.T) {
	// A Byzantine object forging Seq=MaxInt64 — now in the optimistic
	// prewrite's validation piggyback (Garbage poisons those acks too) —
	// must not wedge the register's writers: the implausible lead routes
	// the fallback past the forged reports to the certified read, whose
	// decision only yields genuine timestamps. Writes keep succeeding at
	// sane sequence numbers for the whole run.
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w0", types.Writer, checker.OpWrite, "a", cl.writeOp("a")))
	s.SetByzantine(1, server.Garbage{Level: math.MaxInt64, Val: "evil"})
	for i := 2; i <= 4; i++ {
		v := types.Value(fmt.Sprintf("v%d", i))
		mustRun(t, s, s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, cl.writeOp(v)))
	}
	// Sequence numbers stay sane: an attacked write may consume at most two
	// (the certified read can re-certify the write's own abandoned
	// optimistic proposal, whose successor is then installed) — never the
	// forged near-MaxInt64 lead.
	if cl.writeTS.Seq <= 0 || cl.writeTS.Seq > 7 {
		t.Fatalf("writer timestamp after inflation attack = %v, want 0 < seq ≤ 7", cl.writeTS)
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, cl.readOp(1))
	if v := mustRun(t, s, rd); v != "v4" {
		t.Fatalf("read after inflation attack = %q, want v4", v)
	}
}

func TestEncodeDecodePair(t *testing.T) {
	cases := []types.Pair{
		types.BottomPair,
		{TS: types.At(1), Val: "a"},
		{TS: types.At(42), Val: "hello|world"}, // payload containing the separator
		{TS: types.TS{Seq: 3, WID: 5}, Val: "multi-writer"},
		{TS: types.TS{Seq: 9, WID: 2}, Val: "a|b|c"},
		{TS: types.At(7), Val: ""},
	}
	for _, p := range cases {
		got, err := DecodePair(EncodePair(p))
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if p.TS == types.At(7) && p.Val == "" {
			// (7, "") encodes as "7|" and round-trips exactly.
			if got.TS != types.At(7) || got.Val != "" {
				t.Errorf("round trip %v → %v", p, got)
			}
			continue
		}
		if got != p {
			t.Errorf("round trip %v → %v", p, got)
		}
	}
	for _, bad := range []types.Value{"junk", "x|y", "-3|v", "0|v", "3.|v", "3.0|v", "3.x|v"} {
		if _, err := DecodePair(bad); err == nil {
			t.Errorf("DecodePair(%q) accepted", bad)
		}
	}
}

func TestNewReaderPanicsOnBadIndex(t *testing.T) {
	thr := th(t, 4, 1)
	defer func() {
		if recover() == nil {
			t.Error("bad index accepted")
		}
	}()
	NewReader(nil, thr, 3, 2)
}

func TestReaderLifetimeChurnDiscoversSeq(t *testing.T) {
	// The captured integration flake: a reader identity restarted with a
	// fresh handle used to restart its write-back sequence count at zero,
	// re-issuing timestamps an earlier lifetime already used with a
	// DIFFERENT value. Objects keep whichever write they saw first (equal
	// timestamps never overwrite), so correct objects end up durably
	// disagreeing on one timestamp — each such pair burns a unit of every
	// later read decision's fault budget, and enough of them starve reads
	// of the register outright (see regular.TestDecideDisjointConflictsStarve
	// for the decision-level mechanism). The fix: a read resumes its
	// sequence number from the views its own query rounds just collected.
	// Every write completes on {1,2,3} only and every read queries quorum
	// {1,2,4}, so the reads' w-support stays below S−t and the adaptive
	// write-back elision never fires — the scenario under test is precisely
	// the fallback path that still issues write-backs.
	thr := th(t, 4, 1)
	cl := newCluster(thr, 2)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()

	wa := s.Spawn("w-a", types.Writer, checker.OpWrite, "a", cl.writeOp("a"))
	s.Step(wa, 1, 2, 3) // PREWRITE
	s.Step(wa, 1, 2, 3) // WRITE
	if !wa.Done() {
		t.Fatal("write a did not complete on {1,2,3}")
	}

	// Lifetime A of reader identity 1: a fresh handle (seq 0) whose
	// write-back reaches only objects {1,2,3} — object 4 never learns that
	// sequence number 1 of ReaderReg(1) carries enc(1,"a").
	freshRead := func(out **Reader) sim.OpFunc {
		return func(c *sim.Client) (types.Value, error) {
			r := NewReaderAt(c, cl.thr, 1, cl.readers, 0)
			*out = r
			v, err := r.Read()
			return v, err
		}
	}
	var rdA *Reader
	opA := s.Spawn("rd-lifeA", types.Reader(1), checker.OpRead, types.Bottom, freshRead(&rdA))
	s.Step(opA, 1, 2, 4) // AREAD1 (object 4 missed the write: no elision)
	s.Step(opA, 1, 2, 4) // AREAD2
	s.Step(opA, 1, 2, 3) // write-back PREWRITE
	s.Step(opA, 1, 2, 3) // write-back WRITE
	if !opA.Done() {
		t.Fatal("lifetime A read did not complete on a quorum")
	}
	if v, err := opA.Result(); err != nil || v != "a" {
		t.Fatalf("lifetime A read = %q, %v", v, err)
	}

	wb := s.Spawn("w-b", types.Writer, checker.OpWrite, "b", cl.writeOp("b"))
	s.Step(wb, 1, 2, 3) // PREWRITE
	s.Step(wb, 1, 2, 3) // WRITE
	if !wb.Done() {
		t.Fatal("write b did not complete on {1,2,3}")
	}

	// Lifetime B: the same identity restarts from zero again. Its read must
	// discover sequence number 1 from the query rounds and write back at 2
	// rather than re-issuing 1 with this era's value.
	var rdB *Reader
	opB := s.Spawn("rd-lifeB", types.Reader(1), checker.OpRead, types.Bottom, freshRead(&rdB))
	s.Step(opB, 1, 2, 4) // AREAD1
	s.Step(opB, 1, 2, 4) // AREAD2
	s.Step(opB, 1, 2, 3) // write-back PREWRITE
	s.Step(opB, 1, 2, 3) // write-back WRITE
	if !opB.Done() {
		t.Fatal("lifetime B read did not complete on a quorum")
	}
	if v, err := opB.Result(); err != nil || v != "b" {
		t.Fatalf("lifetime B read = %q, %v; want b", v, err)
	}
	if got := rdB.Seq(); got != 2 {
		t.Fatalf("lifetime B resumed write-back seq = %d, want 2 (discovered 1, wrote 2)", got)
	}

	// White-box invariant behind the whole incident: no two objects may
	// hold different values at the same timestamp of ReaderReg(1).
	for _, field := range []string{"pw", "w"} {
		byTS := make(map[types.TS]types.Value)
		for sid := 1; sid <= 4; sid++ {
			st := s.Store(sid).Reg(types.ReaderReg(1))
			pair := st.PW
			if field == "w" {
				pair = st.W
			}
			if pair.IsBottom() {
				continue
			}
			if prev, seen := byTS[pair.TS]; seen && prev != pair.Val {
				t.Fatalf("%s divergence at ts %v: %q vs %q", field, pair.TS, prev, pair.Val)
			}
			byTS[pair.TS] = pair.Val
		}
	}
}
