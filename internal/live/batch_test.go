package live

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"robustatomic/internal/proto"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// batchWriteSpec builds a batched round installing pair p into each of the
// given register instances (one PREWRITE or WRITEBACK sub-round per reg),
// each sub-round waiting for need acks.
func batchWriteSpec(kind types.MsgKind, regs []int, p func(reg int) types.Pair, need int) proto.RoundSpec {
	spec := proto.RoundSpec{Label: fmt.Sprintf("BATCH-%v", kind)}
	for _, reg := range regs {
		reg := reg
		spec.Subs = append(spec.Subs, proto.SubRound{
			Reg:   reg,
			Label: kind.String(),
			Req:   func(sid int) types.Message { return types.Message{Kind: kind, Pair: p(reg)} },
			Acc:   proto.NewAckBits(need),
		})
	}
	return spec
}

// readBack asserts register instance reg converged to want on a quorum.
func readBack(t *testing.T, c *Cluster, reg int, need int, want types.Pair) {
	t.Helper()
	var (
		mu  sync.Mutex
		got = make(map[int]types.Pair)
	)
	spec := proto.RoundSpec{
		Label: "READ1",
		Req:   func(sid int) types.Message { return types.Message{Kind: types.MsgRead1} },
		Acc: proto.NewCountAcc(need, func(sid int, m types.Message) bool {
			if m.Kind != types.MsgState {
				return false
			}
			mu.Lock()
			got[sid] = m.W
			mu.Unlock()
			return true
		}),
	}
	cl := c.NewClientReg(types.Reader(1), reg)
	if err := cl.Round(spec); err != nil {
		t.Fatalf("read back reg %d: %v", reg, err)
	}
	matches := 0
	mu.Lock()
	defer mu.Unlock()
	for _, w := range got {
		if w == want {
			matches++
		}
	}
	if matches < need {
		t.Fatalf("reg %d: %d of %d repliers hold %v (saw %v)", reg, matches, need, want, got)
	}
}

// testLiveBatchedRound drives a two-phase batched write (PREWRITE then
// WRITEBACK across several register instances in one physical round each)
// and verifies every instance independently converged — on the inline
// (MaxDelay == 0) or the delay-injection path, per cfg.
func testLiveBatchedRound(t *testing.T, cfg Config) {
	c := New(cfg)
	defer c.Close()
	regs := []int{1, 3, 7}
	pair := func(reg int) types.Pair {
		return types.Pair{TS: types.At(int64(10 + reg)), Val: types.Value(fmt.Sprintf("batched-%d", reg))}
	}
	cl := c.NewClient(types.Writer)
	for _, kind := range []types.MsgKind{types.MsgPreWrite, types.MsgWriteBack} {
		if err := cl.Round(batchWriteSpec(kind, regs, pair, cfg.Servers)); err != nil {
			t.Fatalf("batched %v: %v", kind, err)
		}
	}
	if cl.Rounds != 2 {
		t.Errorf("batched write cost %d rounds, want 2", cl.Rounds)
	}
	for _, reg := range regs {
		readBack(t, c, reg, cfg.Servers, pair(reg))
	}
	// Instances the batch never addressed stay untouched.
	readBack(t, c, 2, cfg.Servers, types.Pair{})
}

func TestLiveBatchedRoundInline(t *testing.T) {
	testLiveBatchedRound(t, Config{Servers: 4, Seed: 11})
}

func TestLiveBatchedRoundAsync(t *testing.T) {
	testLiveBatchedRound(t, Config{Servers: 4, Seed: 12, MaxDelay: 200 * time.Microsecond})
}

// TestLiveBatchedRoundPerSubDrops pins per-sub-bundle flakiness: a flaky
// object drops individual sub-replies out of a batch, and the round still
// terminates once each sub-round independently gathers its quorum from the
// remaining objects.
func TestLiveBatchedRoundPerSubDrops(t *testing.T) {
	c := New(Config{Servers: 4, Seed: 13, MaxDelay: 100 * time.Microsecond, RoundTimeout: 5 * time.Second})
	defer c.Close()
	c.SetByzantine(1, server.Flaky{Rand: rand.New(rand.NewSource(99)), DropProb: 0.7})
	regs := []int{1, 2, 3, 4, 5}
	pair := func(reg int) types.Pair {
		return types.Pair{TS: types.At(int64(reg)), Val: types.Value(fmt.Sprintf("flaky-%d", reg))}
	}
	cl := c.NewClient(types.Writer)
	for i := 0; i < 10; i++ {
		for _, kind := range []types.MsgKind{types.MsgPreWrite, types.MsgWriteBack} {
			if err := cl.Round(batchWriteSpec(kind, regs, pair, 3)); err != nil {
				t.Fatalf("iteration %d, batched %v: %v", i, kind, err)
			}
		}
	}
	for _, reg := range regs {
		readBack(t, c, reg, 3, pair(reg))
	}
}

// TestLiveBatchedViaCombiner runs concurrent per-register writers through a
// Combiner over one live client path, checking the merged batches produce
// the same per-register end state as independent rounds would.
func TestLiveBatchedViaCombiner(t *testing.T) {
	c := New(Config{Servers: 4, Seed: 14, MaxDelay: 50 * time.Microsecond})
	defer c.Close()
	// The Combiner serializes merged rounds onto one inner client.
	comb := proto.NewCombiner(c.NewClient(types.Writer))
	var wg sync.WaitGroup
	for reg := 1; reg <= 6; reg++ {
		reg := reg
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := comb.Rounder(reg)
			p := types.Pair{TS: types.At(int64(100 + reg)), Val: types.Value(fmt.Sprintf("comb-%d", reg))}
			for _, kind := range []types.MsgKind{types.MsgPreWrite, types.MsgWriteBack} {
				spec := proto.RoundSpec{
					Label: kind.String(),
					Req:   func(sid int) types.Message { return types.Message{Kind: kind, Pair: p} },
					Acc:   proto.NewAckBits(4),
				}
				if err := r.Round(spec); err != nil {
					t.Errorf("reg %d %v: %v", reg, kind, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for reg := 1; reg <= 6; reg++ {
		readBack(t, c, reg, 4, types.Pair{TS: types.At(int64(100 + reg)), Val: types.Value(fmt.Sprintf("comb-%d", reg))})
	}
}
