// Package live is the concurrent runtime: storage objects run as goroutines
// behind channels, messages suffer seeded random delays (asynchrony), and
// clients execute protocol rounds against the same proto.Rounder interface
// the deterministic simulator implements — so every register implementation
// in this repository runs unchanged under real concurrency, with Byzantine
// behavior injection, for the stress tests, the examples and the throughput
// experiments (E7).
package live

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"robustatomic/internal/obs"
	"robustatomic/internal/proto"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

// Runtime-wide observability counters. Per-label round counts and latency
// live in per-client RoundStats caches (see Client.statsFor); these tally
// the round-path mix and fault activity of the whole process.
var (
	mInlineRounds = obs.Default.Counter("live_rounds_inline_total")
	mAsyncRounds  = obs.Default.Counter("live_rounds_async_total")
	mRoundUnsat   = obs.Default.Counter("live_round_unsat_total")
	mRoundStuck   = obs.Default.Counter("live_round_stuck_total")
	mChaos        = obs.Default.Counter("live_chaos_injections_total")
)

// ErrClosed is returned by rounds after the cluster shut down.
var ErrClosed = errors.New("live: cluster closed")

// ErrRoundStuck is returned when a round cannot terminate within the
// configured timeout — with a correct protocol this indicates more than t
// faulty objects (or a wait-freedom bug, which is what the tests assert
// against).
var ErrRoundStuck = errors.New("live: round did not terminate")

// Config configures a cluster.
type Config struct {
	// Servers is the object count S.
	Servers int
	// Seed drives all randomized delays.
	Seed int64
	// MaxDelay bounds the random per-message delay (0 = no delays).
	MaxDelay time.Duration
	// RoundTimeout bounds one communication round (default 10s).
	RoundTimeout time.Duration
}

// Cluster is a set of storage-object goroutines.
type Cluster struct {
	cfg     Config
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	servers []*serverProc

	mu  sync.Mutex
	rng *rand.Rand
}

type request struct {
	from    types.ProcID
	reg     int // register instance addressed (0 = default register)
	msg     types.Message
	subs    []subExchange // batched round: per-instance sub-requests (nil = single)
	replyTo chan<- reply
}

// reply tags a message with the responding object's id. A batched round's
// reply carries subs (per-instance sub-replies) and msg holds only the Seq
// used to match the reply to its round.
type reply struct {
	sid  int
	msg  types.Message
	subs []subExchange
}

// subExchange is one register instance's share of a batched exchange, in
// either direction (the in-process twin of wire.SubReq).
type subExchange struct {
	reg int
	msg types.Message
}

type serverProc struct {
	id    int
	reqCh chan request

	mu          sync.Mutex
	stores      map[int]*server.Store // lazily instantiated register instances
	byz         bool
	behavior    server.Behavior
	partitioned bool
	netemRng    *rand.Rand // nil = no link faults
	netemDrop   float64
	netemDup    float64
}

// faultVerdict samples the partition/netem state for one inbound request.
// Callers must hold sp.mu. A dropped request is never processed — unlike
// server.Silent, which processes the message and withholds the reply — so
// the automaton truly never received it: these are network faults, not
// Byzantine ones, and they compose with whatever behavior is installed.
func (sp *serverProc) faultVerdict() (drop, dup bool) {
	if sp.partitioned {
		return true, false
	}
	if sp.netemRng == nil {
		return false, false
	}
	if sp.netemDrop > 0 && sp.netemRng.Float64() < sp.netemDrop {
		return true, false
	}
	dup = sp.netemDup > 0 && sp.netemRng.Float64() < sp.netemDup
	return false, dup
}

// storeFor returns register instance reg's automaton, creating it on first
// touch (instances are client-addressed; negative instances panic, as only
// in-process code we control reaches here). Callers must hold sp.mu.
func (sp *serverProc) storeFor(reg int) *server.Store {
	if reg < 0 {
		panic(fmt.Sprintf("live: negative register instance %d", reg))
	}
	st, ok := sp.stores[reg]
	if !ok {
		st = server.NewStore()
		sp.stores[reg] = st
	}
	return st
}

// process runs one request against the object under its mutex — the
// object's "receive one message, reply before receiving any other" step,
// shared by the event loop (delay-injection path) and the inline fast path.
// The extra dup result asks the caller to deliver the reply twice (netem
// duplication) — accumulators dedupe by object id, so a dup must be
// harmless, and this path proves it under torture.
func (sp *serverProc) process(from types.ProcID, reg int, msg types.Message) (types.Message, bool, bool) {
	sp.mu.Lock()
	drop, dup := sp.faultVerdict()
	if drop {
		sp.mu.Unlock()
		return types.Message{}, false, false
	}
	behavior := server.Behavior(server.Honest{})
	if sp.byz && sp.behavior != nil {
		behavior = sp.behavior
	}
	rep, ok := behavior.Reply(sp.storeFor(reg), from, msg)
	sp.mu.Unlock()
	return rep, ok, dup
}

// processBatch runs every sub-request of a batched round against its own
// register instance in one pass under the object's mutex — the whole batch
// is one received message, answered before any other is received. Withheld
// sub-replies are simply absent from the result (a flaky object drops
// individual sub-bundles); a fully-withheld batch reports !ok (silence).
func (sp *serverProc) processBatch(from types.ProcID, subs []subExchange) ([]subExchange, bool, bool) {
	sp.mu.Lock()
	drop, dup := sp.faultVerdict()
	if drop {
		sp.mu.Unlock()
		return nil, false, false
	}
	behavior := server.Behavior(server.Honest{})
	if sp.byz && sp.behavior != nil {
		behavior = sp.behavior
	}
	out := make([]subExchange, 0, len(subs))
	for _, sub := range subs {
		rep, ok := behavior.Reply(sp.storeFor(sub.reg), from, sub.msg)
		if !ok {
			continue
		}
		rep.Seq = sub.msg.Seq
		out = append(out, subExchange{reg: sub.reg, msg: rep})
	}
	sp.mu.Unlock()
	if len(out) == 0 {
		return nil, false, false
	}
	return out, true, dup
}

// New starts a cluster of correct, empty storage objects.
func New(cfg Config) *Cluster {
	if cfg.Servers <= 0 {
		panic(fmt.Sprintf("live: need at least one server, got %d", cfg.Servers))
	}
	if cfg.RoundTimeout == 0 {
		cfg.RoundTimeout = 10 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{cfg: cfg, ctx: ctx, cancel: cancel, rng: rand.New(rand.NewSource(cfg.Seed))}
	for i := 1; i <= cfg.Servers; i++ {
		sp := &serverProc{id: i, reqCh: make(chan request, 64), stores: make(map[int]*server.Store)}
		c.servers = append(c.servers, sp)
		c.wg.Add(1)
		go c.serve(sp)
	}
	return c
}

// NumServers returns S.
func (c *Cluster) NumServers() int { return c.cfg.Servers }

// Close shuts the cluster down and waits for every goroutine to exit.
func (c *Cluster) Close() {
	c.cancel()
	c.wg.Wait()
}

// SetByzantine makes object sid Byzantine with the given behavior (nil for
// honest-but-flagged).
func (c *Cluster) SetByzantine(sid int, b server.Behavior) {
	mChaos.Inc()
	sp := c.server(sid)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.byz = true
	if b != nil {
		sp.behavior = b
	}
}

// ClearByzantine restores object sid to honest behavior, counting it back
// out of the fault budget (the torture harness's chaos windows end this way).
func (c *Cluster) ClearByzantine(sid int) {
	sp := c.server(sid)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.byz = false
	sp.behavior = nil
}

// SetPartitioned cuts object sid off the network (or heals it): inbound
// requests are dropped before processing, so — unlike server.Silent — the
// object's state does not advance while partitioned, exactly as if the
// messages were lost in transit. At most t objects may be partitioned at a
// time for rounds to stay live.
func (c *Cluster) SetPartitioned(sid int, partitioned bool) {
	if partitioned {
		mChaos.Inc()
	}
	sp := c.server(sid)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.partitioned = partitioned
}

// SetNetem injects seeded link faults on object sid's inbound edge: each
// request is dropped with probability drop (never processed), and a
// surviving request's reply is duplicated with probability dup (independent
// delays, so the copies can reorder). A nil rng clears. Faults compose with
// any installed Byzantine behavior — netem is the network, not the object.
func (c *Cluster) SetNetem(sid int, rng *rand.Rand, drop, dup float64) {
	if rng != nil {
		mChaos.Inc()
	}
	sp := c.server(sid)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	sp.netemRng = rng
	sp.netemDrop = drop
	sp.netemDup = dup
}

// Snapshot captures object sid's default-register state (for explicit
// staleness/forging attacks in tests; multi-register staleness freezes per
// instance inside server.Stale instead).
func (c *Cluster) Snapshot(sid int) []byte {
	sp := c.server(sid)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	snap, err := sp.storeFor(0).Snapshot()
	if err != nil {
		panic(fmt.Sprintf("live: snapshot s%d: %v", sid, err))
	}
	return snap
}

func (c *Cluster) server(sid int) *serverProc {
	if sid < 1 || sid > len(c.servers) {
		panic(fmt.Sprintf("live: server %d out of range", sid))
	}
	return c.servers[sid-1]
}

// delay returns a random message delay.
func (c *Cluster) delay() time.Duration {
	if c.cfg.MaxDelay <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(c.cfg.MaxDelay)))
}

// sleep waits for d or cluster shutdown.
func (c *Cluster) sleep(d time.Duration) bool {
	if d <= 0 {
		return c.ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.ctx.Done():
		return false
	}
}

// serve is one object's event loop — the DELAY-INJECTION path only: with
// MaxDelay == 0 rounds run inline on the client's goroutine (see
// Client.roundInline) and nothing ever enqueues here. Each request is
// processed in receipt order (objects reply to a message before receiving
// any other) and its reply sent after a random delay from a goroutine, so
// injected asynchrony can reorder replies.
func (c *Cluster) serve(sp *serverProc) {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case req := <-sp.reqCh:
			if len(req.subs) > 0 {
				subs, ok, dup := sp.processBatch(req.from, req.subs)
				if !ok {
					continue
				}
				seq := req.subs[0].msg.Seq
				c.deliver(reply{sid: sp.id, msg: types.Message{Seq: seq}, subs: subs}, req.replyTo, c.delay())
				if dup {
					c.deliver(reply{sid: sp.id, msg: types.Message{Seq: seq}, subs: subs}, req.replyTo, c.delay())
				}
				continue
			}
			rep, ok, dup := sp.process(req.from, req.reg, req.msg)
			if !ok {
				continue
			}
			rep.Seq = req.msg.Seq
			c.deliver(reply{sid: sp.id, msg: rep}, req.replyTo, c.delay())
			if dup {
				// Duplicated reply with its own independent delay, so the
				// copies can arrive out of order.
				c.deliver(reply{sid: sp.id, msg: rep}, req.replyTo, c.delay())
			}
		}
	}
}

// deliver sends a reply from a goroutine after d, respecting shutdown.
func (c *Cluster) deliver(r reply, to chan<- reply, d time.Duration) {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		if !c.sleep(d) {
			return
		}
		select {
		case to <- r:
		case <-c.ctx.Done():
		}
	}()
}

// Client executes protocol rounds for one process against one register
// instance. Safe for use by a single goroutine (the model's clients issue
// one operation at a time).
type Client struct {
	c    *Cluster
	proc types.ProcID
	reg  int
	seq  int
	// replyCh is the client's persistent reply channel, reused across
	// rounds instead of allocating one per Round; replies are matched to
	// the current round by Seq and stale deposits are drained at round
	// start.
	replyCh chan reply
	// timer is the round deadline timer. It free-runs: armed once, never
	// stopped between rounds, re-armed only when it fires — a fire checks
	// the CURRENT round's elapsed time and either reports the stuck round
	// or re-arms for the remainder. Steady-state rounds therefore never
	// touch the timer heap (per-round Reset/Stop showed up in the E9
	// profile on par with real protocol work).
	timer *time.Timer
	// Rounds counts completed communication rounds (instrumentation).
	Rounds int
	// stats caches the per-label round metrics. The client is
	// single-goroutine, so an unsynchronized linear-scan cache keeps the
	// per-round cost to a few pointer-equality string compares — no name
	// building, no registry lookup, no allocation.
	stats obs.StatsCache
}

// statsFor returns the cached round metrics for the spec's label. Merged
// batch rounds share one "BATCH" family: the Combiner's size-embedding
// labels would otherwise explode metric cardinality (their size
// distribution is proto_combine_batch_subs).
func (cl *Client) statsFor(spec *proto.RoundSpec) *obs.RoundStats {
	label := spec.Label
	if len(spec.Subs) > 0 {
		label = "BATCH"
	}
	return cl.stats.Get(obs.Default, "live", label)
}

var _ proto.Rounder = (*Client)(nil)

// NewClient returns a round executor for the given process identity against
// the default register (instance 0).
func (c *Cluster) NewClient(proc types.ProcID) *Client {
	return c.NewClientReg(proc, 0)
}

// NewClientReg returns a round executor for proc against register instance
// reg; distinct instances are fully independent registers hosted on the same
// S objects.
func (c *Cluster) NewClientReg(proc types.ProcID, reg int) *Client {
	return &Client{c: c, proc: proc, reg: reg, replyCh: make(chan reply, 4*c.cfg.Servers+16)}
}

// NumServers implements proto.Rounder.
func (cl *Client) NumServers() int { return cl.c.NumServers() }

// Round implements proto.Rounder: send to all objects, integrate replies
// until the accumulator is satisfied. With no asynchrony injection
// (MaxDelay == 0, the production and benchmark configuration) the whole
// round runs INLINE on the caller's goroutine: each object's automaton is
// invoked directly under its mutex and the reply feeds the accumulator on
// the spot — no goroutines, no channel hops, no timer (the per-message
// channel machinery dominated the E9 hot-path profile). With MaxDelay > 0
// each send goes through a goroutine that sleeps the injected delay first
// and replies flow back through the client's reply channel.
func (cl *Client) Round(spec proto.RoundSpec) error {
	cl.seq++
	seq := cl.seq
	st := cl.statsFor(&spec)
	begun := st.Begin()
	if cl.c.cfg.MaxDelay <= 0 {
		mInlineRounds.Inc()
		err := cl.roundInline(spec, seq)
		st.Done(begun, err)
		return err
	}
	mAsyncRounds.Inc()
	// Anything buffered now is a stale reply to an earlier round: drain it
	// so the channel has room for this round's replies.
	for {
		select {
		case <-cl.replyCh:
			continue
		default:
		}
		break
	}
	for sid := 1; sid <= cl.c.NumServers(); sid++ {
		req := request{from: cl.proc, reg: cl.reg, replyTo: cl.replyCh}
		if len(spec.Subs) > 0 {
			req.subs = make([]subExchange, len(spec.Subs))
			for i := range spec.Subs {
				msg := spec.Subs[i].Req(sid)
				msg.Seq = seq
				req.subs[i] = subExchange{reg: spec.Subs[i].Reg, msg: msg}
			}
		} else {
			req.msg = spec.Req(sid)
			req.msg.Seq = seq
		}
		spec.Trace.Event(sid, "send", "")
		d := cl.c.delay()
		cl.c.wg.Add(1)
		go func(sid int, req request) {
			defer cl.c.wg.Done()
			if !cl.c.sleep(d) {
				return
			}
			select {
			case cl.c.server(sid).reqCh <- req:
			case <-cl.c.ctx.Done():
			}
		}(sid, req)
	}
	err := cl.roundAsync(spec, seq)
	st.Done(begun, err)
	return err
}

// roundInline is the MaxDelay == 0 round: deliver the request to every
// object inline (objects still process one message at a time — the mutex —
// and EVERY object receives the request, so state evolves exactly as with
// asynchronous full delivery), integrating each reply immediately. If the
// accumulator is unsatisfied once every reply is in, no later delivery can
// ever satisfy it — the wait-freedom violation surfaces at once instead of
// burning the round timeout.
func (cl *Client) roundInline(spec proto.RoundSpec, seq int) error {
	if cl.c.ctx.Err() != nil {
		return ErrClosed
	}
	for sid := 1; sid <= cl.c.NumServers(); sid++ {
		if len(spec.Subs) > 0 {
			subs := make([]subExchange, len(spec.Subs))
			for i := range spec.Subs {
				msg := spec.Subs[i].Req(sid)
				msg.Seq = seq
				subs[i] = subExchange{reg: spec.Subs[i].Reg, msg: msg}
			}
			out, ok, dup := cl.c.server(sid).processBatch(cl.proc, subs)
			if !ok {
				spec.Trace.Event(sid, "lost", "")
				continue
			}
			if spec.Trace != nil {
				spec.Trace.Event(sid, "reply", subsNote(out))
			}
			for _, rep := range out {
				spec.AddSub(sid, rep.reg, rep.msg)
			}
			if dup {
				for _, rep := range out {
					spec.AddSub(sid, rep.reg, rep.msg)
				}
			}
			continue
		}
		msg := spec.Req(sid)
		msg.Seq = seq
		rep, ok, dup := cl.c.server(sid).process(cl.proc, cl.reg, msg)
		if !ok {
			spec.Trace.Event(sid, "lost", "")
			continue // withheld reply: the client sees silence
		}
		if spec.Trace != nil {
			spec.Trace.Event(sid, "reply", rep.TraceNote())
		}
		rep.Seq = seq
		spec.Acc.Add(sid, rep)
		if dup {
			// Inline twin of a duplicated reply: accumulators must dedupe.
			spec.Acc.Add(sid, rep)
		}
	}
	if !spec.Done() {
		mRoundUnsat.Inc()
		return fmt.Errorf("%w: %s (all correct replies delivered inline)", ErrRoundStuck, spec.Label)
	}
	cl.Rounds++
	return nil
}

// subsNote renders the register instances present in a batched reply — the
// trace payload that shows which sub-bundles a flaky object dropped.
func subsNote(out []subExchange) string {
	note := "subs["
	for i, sub := range out {
		if i > 0 {
			note += ","
		}
		note += fmt.Sprint(sub.reg)
	}
	return note + "]"
}

// integrate feeds one matched reply into the spec: a batched reply's
// sub-bundles route to their sub-rounds by register instance, a single
// reply feeds the accumulator directly.
func integrate(spec *proto.RoundSpec, rep reply) {
	if len(rep.subs) > 0 {
		if spec.Trace != nil {
			spec.Trace.Event(rep.sid, "reply", subsNote(rep.subs))
		}
		for _, sub := range rep.subs {
			spec.AddSub(rep.sid, sub.reg, sub.msg)
		}
		return
	}
	if spec.Trace != nil {
		spec.Trace.Event(rep.sid, "reply", rep.msg.TraceNote())
	}
	spec.Acc.Add(rep.sid, rep.msg)
}

// roundAsync integrates replies arriving through the reply channel (the
// delay-injection path).
func (cl *Client) roundAsync(spec proto.RoundSpec, seq int) error {
	received := 0
	var start time.Time // zero until the round first blocks
	for {
		// Greedy drain: replies already buffered (inline fast-path servers
		// answer ahead of the client's select) are integrated without the
		// 3-way select.
		for {
			var rep reply
			select {
			case rep = <-cl.replyCh:
			default:
				goto blocked
			}
			if rep.msg.Seq != seq {
				continue // late reply from an earlier round: received, ignored
			}
			received++
			integrate(&spec, rep)
			if spec.Done() {
				cl.Rounds++
				return nil
			}
		}
	blocked:
		if start.IsZero() {
			start = time.Now()
			if cl.timer == nil {
				cl.timer = time.NewTimer(cl.c.cfg.RoundTimeout)
			}
			// Otherwise the free-running timer from an earlier round keeps
			// ticking; a spurious fire below re-arms it against this
			// round's own deadline.
		}
		select {
		case rep := <-cl.replyCh:
			if rep.msg.Seq != seq {
				continue // late reply from an earlier round: received, ignored
			}
			received++
			integrate(&spec, rep)
			if spec.Done() {
				cl.Rounds++
				return nil
			}
		case <-cl.c.ctx.Done():
			return ErrClosed
		case <-cl.timer.C:
			// The timer free-runs across rounds, so a fire may belong to a
			// deadline armed long ago: judge the CURRENT round by its own
			// elapsed time, and re-arm for the remainder if it has some.
			if left := cl.c.cfg.RoundTimeout - time.Since(start); left > 0 {
				cl.timer.Reset(left)
				continue
			}
			cl.timer.Reset(cl.c.cfg.RoundTimeout)
			mRoundStuck.Inc()
			return fmt.Errorf("%w: %s after %v (%d replies)", ErrRoundStuck, spec.Label, cl.c.cfg.RoundTimeout, received)
		}
	}
}
