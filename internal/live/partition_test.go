package live

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"robustatomic/internal/core"
	"robustatomic/internal/types"
)

// TestPartitionDropsWithoutProcessing: a partitioned object is cut off
// before processing — its automaton state must not advance (unlike
// server.Silent) — and the quorum of S-t live objects absorbs the loss.
func TestPartitionDropsWithoutProcessing(t *testing.T) {
	c := New(Config{Servers: 4})
	defer c.Close()
	thr := th(t, 4, 1)

	c.SetPartitioned(1, true)
	w := core.NewWriter(c.NewClient(types.Writer), thr)
	if err := w.Write("v1"); err != nil {
		t.Fatalf("write with one partitioned object: %v", err)
	}
	sp := c.server(1)
	sp.mu.Lock()
	instances := len(sp.stores)
	sp.mu.Unlock()
	if instances != 0 {
		t.Fatalf("partitioned object instantiated %d registers — it processed dropped messages", instances)
	}

	// Healed, the object catches up on the very next round.
	c.SetPartitioned(1, false)
	if err := w.Write("v2"); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	sp.mu.Lock()
	instances = len(sp.stores)
	sp.mu.Unlock()
	if instances == 0 {
		t.Fatal("healed object still not receiving messages")
	}

	rd := core.NewReader(c.NewClient(types.Reader(1)), thr, 1, 2)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v2" {
		t.Fatalf("read = %q, want v2", v)
	}
}

// TestPartitionBeyondBudgetFailsFast: with MaxDelay == 0 rounds run inline,
// so a quorum-killing partition surfaces as an immediate ErrRoundStuck
// instead of burning a timeout.
func TestPartitionBeyondBudgetFailsFast(t *testing.T) {
	c := New(Config{Servers: 4})
	defer c.Close()
	thr := th(t, 4, 1)
	c.SetPartitioned(2, true)
	c.SetPartitioned(3, true)
	w := core.NewWriter(c.NewClient(types.Writer), thr)
	start := time.Now()
	err := w.Write("v1")
	if !errors.Is(err, ErrRoundStuck) {
		t.Fatalf("write with 2 > t partitioned objects: err = %v, want ErrRoundStuck", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("inline round took %v to fail — it burned a timeout", elapsed)
	}
	c.SetPartitioned(2, false)
	c.SetPartitioned(3, false)
	if err := w.Write("v2"); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}

// TestNetemDropAndDup: message loss within the fault budget and duplicated
// replies (which accumulators must dedupe by object id) leave every
// operation correct, on both the inline and the delay-injection paths.
func TestNetemDropAndDup(t *testing.T) {
	for _, maxDelay := range []time.Duration{0, 200 * time.Microsecond} {
		c := New(Config{Servers: 4, Seed: 11, MaxDelay: maxDelay})
		thr := th(t, 4, 1)
		c.SetNetem(2, rand.New(rand.NewSource(7)), 0.5, 0)
		c.SetNetem(3, rand.New(rand.NewSource(8)), 0, 1.0) // every reply doubled
		w := core.NewWriter(c.NewClient(types.Writer), thr)
		rd := core.NewReader(c.NewClient(types.Reader(1)), thr, 1, 2)
		for i := 0; i < 8; i++ {
			val := types.Value(fmt.Sprintf("d%v-%d", maxDelay, i))
			if err := w.Write(val); err != nil {
				t.Fatalf("maxDelay=%v write %d: %v", maxDelay, i, err)
			}
			v, err := rd.Read()
			if err != nil {
				t.Fatalf("maxDelay=%v read %d: %v", maxDelay, i, err)
			}
			if v != val {
				t.Fatalf("maxDelay=%v read %d = %q, want %q", maxDelay, i, v, val)
			}
		}
		c.Close()
	}
}
