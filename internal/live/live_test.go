package live

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"robustatomic/internal/abd"
	"robustatomic/internal/checker"
	"robustatomic/internal/core"
	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/secret"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
)

func th(t *testing.T, s, tt int) quorum.Thresholds {
	t.Helper()
	out, err := quorum.NewThresholds(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestLiveRegularRegister(t *testing.T) {
	thr := th(t, 4, 1)
	c := New(Config{Servers: 4, Seed: 1, MaxDelay: 200 * time.Microsecond})
	defer c.Close()
	w := regular.NewWriter(c.NewClient(types.Writer), thr, types.WriterReg)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	rd := regular.NewReader(c.NewClient(types.Reader(1)), thr, types.WriterReg)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "a" {
		t.Errorf("read = %q", v)
	}
}

func TestLiveAtomicConcurrentClients(t *testing.T) {
	// One writer goroutine and three reader goroutines hammer the atomic
	// register under random delays with t Byzantine objects; the full
	// history must satisfy atomicity. Run with -race.
	for _, tt := range []int{1, 2} {
		tt := tt
		t.Run(fmt.Sprintf("t=%d", tt), func(t *testing.T) {
			S := 3*tt + 1
			thr := th(t, S, tt)
			c := New(Config{Servers: S, Seed: int64(tt), MaxDelay: 300 * time.Microsecond})
			defer c.Close()
			for i := 1; i <= tt; i++ {
				switch i % 3 {
				case 0:
					c.SetByzantine(i, server.Silent{})
				case 1:
					c.SetByzantine(i, server.Garbage{Level: 999, Val: "evil"})
				case 2:
					c.SetByzantine(i, &server.ReplayOnly{Rand: rand.New(rand.NewSource(7))})
				}
			}
			h := &checker.History{}
			const writes, readers = 6, 3
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := core.NewWriter(c.NewClient(types.Writer), thr)
				for i := 1; i <= writes; i++ {
					v := types.Value(fmt.Sprintf("v%d", i))
					id := h.Invoke(types.Writer, checker.OpWrite, v)
					if err := w.Write(v); err != nil {
						t.Errorf("write: %v", err)
						return
					}
					h.Respond(id, types.Bottom)
				}
			}()
			for r := 1; r <= readers; r++ {
				r := r
				wg.Add(1)
				go func() {
					defer wg.Done()
					rd := core.NewReader(c.NewClient(types.Reader(r)), thr, r, readers)
					for i := 0; i < 4; i++ {
						id := h.Invoke(types.Reader(r), checker.OpRead, types.Bottom)
						v, err := rd.Read()
						if err != nil {
							t.Errorf("read: %v", err)
							return
						}
						h.Respond(id, v)
					}
				}()
			}
			wg.Wait()
			if err := checker.CheckAtomic(h); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLiveSecretAtomicFastPath(t *testing.T) {
	thr := th(t, 4, 1)
	c := New(Config{Servers: 4, Seed: 3})
	defer c.Close()
	rng := rand.New(rand.NewSource(9))
	w := secret.NewAtomicWriter(c.NewClient(types.Writer), thr, rng)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	cl := c.NewClient(types.Reader(1))
	rd := secret.NewAtomicReader(cl, thr, rng, 1, 2)
	// The write returns after 2t+1 acknowledgements; the last object's
	// request may still be in flight, so the very first read can
	// legitimately see a split view and take the slow path. Quiescence must
	// make the fast path happen within a few reads — and at S = 3t+1 a fast
	// hit's 2t+1 identical tuples are exactly the S−t quorum that certifies
	// the write as complete, so the write-back is elided too: a single
	// physical round.
	fast := false
	for i := 0; i < 5 && !fast; i++ {
		before := cl.Rounds
		v, err := rd.Read()
		if err != nil {
			t.Fatal(err)
		}
		if v != "a" {
			t.Fatalf("read = %q", v)
		}
		if rd.FastPath {
			fast = true
			if got := cl.Rounds - before; got != 1 {
				t.Errorf("fast-path read rounds = %d, want 1 (write-back elided)", got)
			}
		}
	}
	if !fast {
		t.Error("no contention-free read took the fast path in 5 attempts")
	}
}

func TestLiveABD(t *testing.T) {
	cfg := abd.Config{S: 3, F: 1}
	c := New(Config{Servers: 3, Seed: 4, MaxDelay: 100 * time.Microsecond})
	defer c.Close()
	w := abd.NewWriter(c.NewClient(types.Writer), cfg)
	for i := 1; i <= 3; i++ {
		if err := w.Write(types.Value(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rd := abd.NewReader(c.NewClient(types.Reader(1)), cfg)
	v, err := rd.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v != "v3" {
		t.Errorf("read = %q", v)
	}
}

func TestLiveRoundCounting(t *testing.T) {
	thr := th(t, 4, 1)
	c := New(Config{Servers: 4, Seed: 5})
	defer c.Close()
	wcl := c.NewClient(types.Writer)
	w := core.NewWriter(wcl, thr)
	if err := w.Write("a"); err != nil {
		t.Fatal(err)
	}
	if wcl.Rounds != 2 {
		t.Errorf("atomic write rounds = %d, want 2 (uncontended adaptive fast path)", wcl.Rounds)
	}
	rcl := c.NewClient(types.Reader(1))
	rd := core.NewReader(rcl, thr, 1, 2)
	if _, err := rd.Read(); err != nil {
		t.Fatal(err)
	}
	// The read's two query rounds certify the completed write, so the
	// write-back is elided (4 rounds remain the Prop. 1 worst case, pinned
	// by internal/core's fallback tests).
	if rcl.Rounds != 2 {
		t.Errorf("atomic read rounds = %d, want 2 (write-back elided)", rcl.Rounds)
	}
}

// TestFastPathSpawnsNoGoroutines pins the MaxDelay == 0 fast path: rounds
// deliver requests and replies inline, so the goroutine count after many
// rounds equals the count before (with asynchrony injection every message
// costs a goroutine; that path is exercised by the MaxDelay > 0 tests).
func TestFastPathSpawnsNoGoroutines(t *testing.T) {
	c := New(Config{Servers: 4, Seed: 8})
	defer c.Close()
	cl := c.NewClient(types.Writer)
	round := func() {
		// Need all S replies so the round consumes every deposit before
		// returning and no overflow fallback can fire.
		spec := proto.RoundSpec{
			Label: "PROBE",
			Req:   func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc:   proto.NewCountAcc(4, nil),
		}
		if err := cl.Round(spec); err != nil {
			t.Fatal(err)
		}
	}
	round() // warm up (lazily allocates the round timer)
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		round()
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines grew %d → %d across 200 fast-path rounds", before, after)
	}
}

func TestLiveRoundStuckSurfaces(t *testing.T) {
	// With 2 > t silent objects the quorum never forms; the round times out
	// rather than hanging.
	thr := th(t, 4, 1)
	c := New(Config{Servers: 4, Seed: 6, RoundTimeout: 50 * time.Millisecond})
	defer c.Close()
	c.SetByzantine(1, server.Silent{})
	c.SetByzantine(2, server.Silent{})
	w := regular.NewWriter(c.NewClient(types.Writer), thr, types.WriterReg)
	if err := w.Write("a"); err == nil {
		t.Fatal("write succeeded with 2 silent objects out of 4")
	}
}

func TestLiveCloseInterruptsRounds(t *testing.T) {
	thr := th(t, 4, 1)
	c := New(Config{Servers: 4, Seed: 7, RoundTimeout: time.Minute})
	c.SetByzantine(1, server.Silent{})
	c.SetByzantine(2, server.Silent{})
	errCh := make(chan error, 1)
	go func() {
		w := regular.NewWriter(c.NewClient(types.Writer), thr, types.WriterReg)
		errCh <- w.Write("a")
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("round survived cluster shutdown")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("round did not observe shutdown")
	}
}
