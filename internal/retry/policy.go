package retry

import (
	"errors"
	"math/rand"
	"time"

	"robustatomic/internal/live"
	"robustatomic/internal/tcpnet"
)

// Class partitions round failures by the right retry reaction. The wire and
// runtime layers surface two very different transients: a lost connection
// (peer crashed, was kill -9'd, or sits behind a partition that reset the
// TCP stream) fails fast and is already throttled by the mux's redial
// backoff, while a round timeout (quorum unreachable or slow) burned a full
// timeout budget and signals the cluster is degraded — hammering it again
// immediately is a retry storm.
type Class int

// Failure classes.
const (
	// Transient: the operation failed fast (connection loss, in-flight
	// rounds aborted). Retry after a short fixed pause; the mux's DialBackoff
	// already rate-limits reconnection attempts underneath.
	Transient Class = iota + 1
	// Degraded: the operation waited out a round timeout — a quorum is slow
	// or unreachable. Retry under exponential backoff so a partitioned
	// cluster is not hammered, and so the moment it heals the first success
	// resets the pacing.
	Degraded
	// Reconfig: the objects refused the round because the cluster's
	// membership moved on (wrong-epoch redirect). Waiting cannot help — the
	// old configuration never comes back — and is not needed: the refusal
	// carries the newer config. The right reaction is a configuration
	// refetch (adopt the certified new membership, re-aim the transport) and
	// an immediate retry under the new epoch, so Next charges no delay.
	Reconfig
	// Fatal: not a known transient (protocol violation, closed client,
	// malformed state). Retrying cannot help.
	Fatal
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Degraded:
		return "degraded"
	case Reconfig:
		return "reconfig"
	case Fatal:
		return "fatal"
	}
	return "unknown"
}

// Classify maps a round error to its failure class. It unwraps, so the
// layered "retry: read round 3: %w"-style wrapping of the protocol stacks
// classifies the same as the bare sentinel.
func Classify(err error) Class {
	switch {
	case err == nil:
		return Fatal // misuse; never retry a nil error
	case errors.Is(err, tcpnet.ErrConnLost):
		return Transient
	case errors.Is(err, tcpnet.ErrRoundTimeout), errors.Is(err, live.ErrRoundStuck):
		return Degraded
	case errors.Is(err, tcpnet.ErrWrongEpoch):
		return Reconfig
	default:
		return Fatal
	}
}

// Backoff paces retries according to Classify. It is single-goroutine state
// (each client loop owns one). Degraded failures grow the delay
// exponentially from Base to Cap with seeded jitter; Transient failures pay
// a flat Base so a healed peer is reintegrated quickly; any success must
// Reset the streak.
type Backoff struct {
	Base time.Duration // first delay (default 2ms)
	Cap  time.Duration // ceiling for the exponential (default 250ms)
	Rng  *rand.Rand    // jitter source; nil = no jitter (deterministic)

	streak int // consecutive Degraded failures
}

// Next returns how long to wait before retrying after err. Fatal errors get
// no delay (the caller should stop retrying; Next returning 0 keeps misuse
// harmless).
func (b *Backoff) Next(err error) time.Duration {
	base, cap := b.Base, b.Cap
	if base <= 0 {
		base = 2 * time.Millisecond
	}
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	switch Classify(err) {
	case Transient:
		return base
	case Degraded:
		d := base << b.streak
		if d <= 0 || d > cap { // <<= overflow guards the shift too
			d = cap
		} else {
			b.streak++
		}
		if b.Rng != nil {
			// Full jitter on the top half: d/2 + uniform(0, d/2]. Decorrelates
			// the hundreds of torture clients that all saw the same timeout.
			d = d/2 + time.Duration(b.Rng.Int63n(int64(d)/2+1))
		}
		return d
	default:
		// Reconfig and Fatal charge no delay: a Reconfig caller refetches
		// the configuration and retries immediately (backing off would only
		// stall the handoff), a Fatal caller stops retrying.
		return 0
	}
}

// Reset clears the degraded streak; call after any successful operation.
func (b *Backoff) Reset() { b.streak = 0 }
