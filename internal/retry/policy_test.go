package retry

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"robustatomic/internal/live"
	"robustatomic/internal/tcpnet"
)

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		// The sentinels, bare and wrapped the way the protocol stacks wrap
		// them (mux → register → store adds layers of %w).
		{tcpnet.ErrConnLost, Transient},
		{fmt.Errorf("mw: write: %w", tcpnet.ErrConnLost), Transient},
		{fmt.Errorf("store: put k: %w: s2 died", tcpnet.ErrConnLost), Transient},
		{tcpnet.ErrRoundTimeout, Degraded},
		{fmt.Errorf("retry: read round 3: %w", tcpnet.ErrRoundTimeout), Degraded},
		{live.ErrRoundStuck, Degraded},
		{fmt.Errorf("mw: read: %w (quorum unreachable)", live.ErrRoundStuck), Degraded},
		// Wrong-epoch redirects: the typed error the mux returns unwraps to
		// the sentinel, so the classifier sees it through any wrapping.
		{tcpnet.ErrWrongEpoch, Reconfig},
		{&tcpnet.WrongEpochError{Label: "mw write", Epoch: 3}, Reconfig},
		{fmt.Errorf("store: flush: %w", &tcpnet.WrongEpochError{Epoch: 5}), Reconfig},
		// Everything else must not be retried.
		{errors.New("wire: protocol generation mismatch"), Fatal},
		{live.ErrClosed, Fatal},
		{nil, Fatal},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBackoffDegradedGrowsToCap(t *testing.T) {
	b := &Backoff{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond}
	timeout := fmt.Errorf("round: %w", tcpnet.ErrRoundTimeout)
	want := []time.Duration{2, 4, 8, 16, 32, 64, 64, 64}
	for i, w := range want {
		if got := b.Next(timeout); got != w*time.Millisecond {
			t.Fatalf("degraded delay %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffTransientStaysFlat(t *testing.T) {
	// Connection loss fails fast and the mux's DialBackoff already throttles
	// redials — the client-side pause must stay flat, or a kill -9'd daemon
	// would take seconds of accumulated backoff to be reintegrated.
	b := &Backoff{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond}
	lost := fmt.Errorf("burst: %w", tcpnet.ErrConnLost)
	for i := 0; i < 20; i++ {
		if got := b.Next(lost); got != 2*time.Millisecond {
			t.Fatalf("transient delay %d = %v, want flat 2ms", i, got)
		}
	}
}

func TestBackoffNoStormAfterHealedPartition(t *testing.T) {
	// Partition window: every op times out. The pacing must (a) grow — the
	// total client-side wait over k failures is exponential in k, not k×Base,
	// so a partitioned quorum is not hammered — and (b) stay capped and reset
	// on the first post-heal success, so recovery is immediate.
	b := &Backoff{Base: time.Millisecond, Cap: 32 * time.Millisecond}
	timeout := tcpnet.ErrRoundTimeout
	var total time.Duration
	for i := 0; i < 10; i++ {
		d := b.Next(timeout)
		if d > 32*time.Millisecond {
			t.Fatalf("delay %v exceeds cap", d)
		}
		total += d
	}
	if linear := 10 * time.Millisecond; total <= linear {
		t.Fatalf("10 timeouts waited only %v — linear pacing (%v) is a retry storm", total, linear)
	}
	// Heal: one success resets the streak; the next failure pays Base again.
	b.Reset()
	if got := b.Next(timeout); got != time.Millisecond {
		t.Fatalf("post-heal delay = %v, want Base", got)
	}
}

func TestBackoffReconfigRefetchesNotWaits(t *testing.T) {
	// A wrong-epoch refusal means the membership moved on; the old config
	// never comes back, so pausing is pure stall. The caller's reaction is a
	// config refetch + immediate retry — Next must charge no delay, and the
	// refusal must not poison the degraded streak (the cluster is healthy,
	// just renumbered).
	b := &Backoff{Base: 2 * time.Millisecond, Cap: 64 * time.Millisecond}
	if got := b.Next(fmt.Errorf("mw: write: %w", &tcpnet.WrongEpochError{Epoch: 4})); got != 0 {
		t.Fatalf("reconfig delay = %v, want 0 (refetch, don't wait)", got)
	}
	if got := b.Next(tcpnet.ErrRoundTimeout); got != 2*time.Millisecond {
		t.Fatalf("post-reconfig degraded delay = %v, want Base (streak untouched)", got)
	}
}

func TestBackoffFatalGetsNoDelay(t *testing.T) {
	b := &Backoff{}
	if got := b.Next(errors.New("corrupt frame")); got != 0 {
		t.Fatalf("fatal delay = %v, want 0 (caller stops retrying)", got)
	}
}

func TestBackoffJitterSeededAndBounded(t *testing.T) {
	mk := func(seed int64) []time.Duration {
		b := &Backoff{Base: 4 * time.Millisecond, Cap: 64 * time.Millisecond, Rng: rand.New(rand.NewSource(seed))}
		var out []time.Duration
		for i := 0; i < 8; i++ {
			out = append(out, b.Next(tcpnet.ErrRoundTimeout))
		}
		return out
	}
	a, c := mk(7), mk(7)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], c[i])
		}
	}
	// Jitter keeps each delay within (d/2, d] of the unjittered schedule.
	plain := &Backoff{Base: 4 * time.Millisecond, Cap: 64 * time.Millisecond}
	for i, got := range a {
		d := plain.Next(tcpnet.ErrRoundTimeout)
		if got < d/2 || got > d {
			t.Fatalf("jittered delay %d = %v outside (%v, %v]", i, got, d/2, d)
		}
	}
}
