package retry

import (
	"fmt"
	"strings"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

func th(t *testing.T, s, tt int) quorum.Thresholds {
	t.Helper()
	out, err := quorum.NewThresholds(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func mustRun(t *testing.T, s *sim.Sim, op *sim.Op) types.Value {
	t.Helper()
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	v, err := op.Result()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

type harness struct {
	thr quorum.Thresholds
	ts  types.TS
	// lastRounds records the query-round count of the last read.
	lastRounds int
}

func (h *harness) writeOp(v types.Value) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		w := NewWriterAt(c, h.thr, h.ts)
		if err := w.Write(v); err != nil {
			return types.Bottom, err
		}
		h.ts = w.LastTS()
		return types.Bottom, nil
	}
}

func (h *harness) readOp() sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		r := NewReader(c, h.thr)
		v, err := r.Read()
		h.lastRounds = r.Rounds
		return v, err
	}
}

func TestQuietReadsAreTwoRounds(t *testing.T) {
	h := &harness{thr: th(t, 4, 1)}
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q", v)
	}
	if rd.Rounds() != 2 { // 1 unanimous query + 1 write-back
		t.Errorf("quiet read rounds = %d, want 2", rd.Rounds())
	}
}

func TestInitialBottomRead(t *testing.T) {
	h := &harness{thr: th(t, 4, 1)}
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	if v := mustRun(t, s, rd); !v.IsBottom() {
		t.Errorf("read = %q", v)
	}
}

func TestStaleByzantineForcesRetries(t *testing.T) {
	// A stale Byzantine object plus a slow correct object deny unanimity in
	// the first query round when their replies land first; the read needs
	// extra rounds — the Ω(t)-ish degradation of experiment E6.
	h := &harness{thr: th(t, 4, 1)}
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	snap := s.Snapshot(1)
	// Write "b" on a quorum excluding object 2 (slow, still "a").
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", h.writeOp("b"))
	s.Step(w2, 1, 3, 4)
	s.Step(w2, 1, 3, 4)
	if !w2.Done() {
		t.Fatal("write b incomplete")
	}
	s.SetByzantine(1, &server.Stale{Snap: snap})
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	// Round 1 query: deliver the split view (1:"a"-stale, 2:"a"-slow,
	// 3,4:"b") — no pair reaches 2t+1=3 matches, so the read must retry.
	s.Step(rd, 1, 2, 3, 4)
	if _, seq, _ := rd.CurrentRound(); seq != 2 {
		t.Fatalf("expected retry round, at seq %d", seq)
	}
	// Now object 2 catches up: the completed write's queued PREWRITE/WRITE
	// messages finally arrive, and the retry round sees unanimity.
	s.DeliverRequests(w2, 2)
	if v := mustRun(t, s, rd); v != "b" {
		t.Errorf("read = %q, want b", v)
	}
	if h.lastRounds < 2 {
		t.Errorf("read query rounds = %d, want ≥ 2", h.lastRounds)
	}
}

func TestReadsSafeDespiteGarbage(t *testing.T) {
	h := &harness{thr: th(t, 7, 2)}
	hist := &checker.History{}
	s := sim.New(sim.Config{Servers: 7, History: hist})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	s.SetByzantine(1, server.Garbage{Level: 50, Val: "evil"})
	s.SetByzantine(2, server.Garbage{Level: 50, Val: "evil"})
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q, want a", v)
	}
	if err := checker.CheckAtomic(hist); err != nil {
		t.Error(err)
	}
}

func TestUnboundedUnderPerpetualStaleness(t *testing.T) {
	// With t objects frozen in the past and one correct object slow, the
	// adversary can deny unanimity forever: the read gives up after
	// MaxReadRounds — the unbounded worst case the paper cites.
	h := &harness{thr: th(t, 4, 1)}
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", h.writeOp("a")))
	snap := s.Snapshot(1)
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", h.writeOp("b"))
	s.Step(w2, 1, 3, 4)
	s.Step(w2, 1, 3, 4)
	s.SetByzantine(1, &server.Stale{Snap: snap})
	// Object 2 never receives the write: its state remains "a"; the stale
	// Byzantine object also answers "a"; 3 and 4 answer "b". 2-2 split
	// forever.
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		r := NewReader(c, h.thr)
		_, err := r.Read()
		return types.Bottom, err
	})
	var opErr error
	for !rd.Done() {
		// Deliver only the split view each round; object 2's pending write
		// is withheld by never letting the writer's round 2 reach it.
		s.Step(rd, 1, 2, 3, 4)
	}
	_, opErr = rd.Result()
	if opErr == nil || !strings.Contains(opErr.Error(), "did not converge") {
		t.Fatalf("expected non-convergence, got %v", opErr)
	}
}

func TestRandomizedAtomicityQuietReaders(t *testing.T) {
	// Reads separated from writes (no contention) must be atomic and fast.
	for seed := int64(0); seed < 30; seed++ {
		h := &harness{thr: th(t, 4, 1)}
		hist := &checker.History{}
		s := sim.New(sim.Config{Servers: 4, History: hist})
		for i := 1; i <= 3; i++ {
			v := types.Value(fmt.Sprintf("v%d", i))
			mustRun(t, s, s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, v, h.writeOp(v)))
			rd := s.Spawn(fmt.Sprintf("r%d", i), types.Reader(1), checker.OpRead, types.Bottom, h.readOp())
			if got := mustRun(t, s, rd); got != v {
				t.Fatalf("seed %d: read %q want %q", seed, got, v)
			}
		}
		if err := checker.CheckAtomic(hist); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}
