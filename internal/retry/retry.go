// Package retry implements the pre-2011 state of the art the paper's
// related-work section contrasts with (Section 1.2): a robust Byzantine
// atomic SWMR register whose reads are correct but take an UNBOUNDED number
// of rounds under write concurrency or Byzantine staleness — "the worst-case
// read latency in existing implementations is either unbounded or Ω(t)
// rounds at best [2]".
//
// The write protocol is the same two-phase PREWRITE/WRITE as the regular
// register. The read repeats query rounds until some single round contains
// 2t+1 identical written pairs — an unmistakably safe configuration (at
// least t+1 correct objects hold exactly that pair, and no newer write can
// have completed unseen because its 2t+1 acknowledgers would overlap) — and
// then writes the pair back for atomicity. Each concurrent write or
// equivocating Byzantine object can spoil a round, so the round count is
// unbounded under contention and grows with t under staleness attacks;
// experiment E6 measures this against the 4-round-optimal implementation,
// reproducing the paper's motivation.
package retry

import (
	"fmt"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/regular"
	"robustatomic/internal/types"
)

// MaxReadRounds bounds read retries so wait-freedom violations surface as
// errors rather than infinite loops; the paper's point is exactly that such
// protocols are not boundedly wait-free.
const MaxReadRounds = 64

// Writer is the single writer; its protocol matches the regular register's
// two-phase write.
type Writer struct {
	inner *regular.Writer
}

// NewWriter returns the writer handle.
func NewWriter(r proto.Rounder, th quorum.Thresholds) *Writer {
	return NewWriterAt(r, th, types.TS{})
}

// NewWriterAt resumes from a known last timestamp.
func NewWriterAt(r proto.Rounder, th quorum.Thresholds, last types.TS) *Writer {
	return &Writer{inner: regular.NewWriterAt(r, th, types.WriterReg, 0, last)}
}

// Write stores v (two rounds).
func (w *Writer) Write(v types.Value) error {
	if err := w.inner.Write(v); err != nil {
		return fmt.Errorf("retry: %w", err)
	}
	return nil
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() types.TS { return w.inner.LastTS() }

// Reader reads by retrying query rounds until a unanimous-quorum
// configuration appears.
type Reader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	// Rounds reports how many query rounds the last read used (excluding
	// the final write-back round).
	Rounds int
}

// NewReader returns a reader handle.
func NewReader(r proto.Rounder, th quorum.Thresholds) *Reader {
	return &Reader{rounder: r, th: th}
}

// unanimousAcc waits for 2t+1 replies carrying the exact same written pair
// within one round.
type unanimousAcc struct {
	th      quorum.Thresholds
	replies map[int]types.Pair
	counts  map[types.Pair]int
	hit     *types.Pair
}

var _ proto.Accumulator = (*unanimousAcc)(nil)

func newUnanimousAcc(th quorum.Thresholds) *unanimousAcc {
	return &unanimousAcc{
		th:      th,
		replies: make(map[int]types.Pair, th.S),
		counts:  make(map[types.Pair]int, 4),
	}
}

func (a *unanimousAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgState {
		return
	}
	if _, dup := a.replies[sid]; dup {
		return
	}
	a.replies[sid] = m.W
	a.counts[m.W]++
	if a.hit == nil && a.counts[m.W] >= a.th.Refute() {
		p := m.W
		a.hit = &p
	}
}

// Done terminates on a unanimous 2t+1 pair, or — to preserve round
// liveness — once every object replied without one (the read then retries).
func (a *unanimousAcc) Done() bool {
	return a.hit != nil || len(a.replies) >= a.th.S-a.missingBudget()
}

// missingBudget is how many objects the round may never hear from.
func (a *unanimousAcc) missingBudget() int { return a.th.T }

// Read returns the register value, retrying rounds as needed.
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair implements the retrying read.
func (r *Reader) ReadPair() (types.Pair, error) {
	r.Rounds = 0
	for attempt := 1; attempt <= MaxReadRounds; attempt++ {
		acc := newUnanimousAcc(r.th)
		spec := proto.RoundSpec{
			Label: fmt.Sprintf("RETRY_READ#%d", attempt),
			Req:   func(int) types.Message { return types.Message{Kind: types.MsgRead1} },
			Acc:   acc,
		}
		if err := r.rounder.Round(spec); err != nil {
			return types.Pair{}, fmt.Errorf("retry: read round %d: %w", attempt, err)
		}
		r.Rounds = attempt
		if acc.hit == nil {
			continue
		}
		best := *acc.hit
		wb := proto.RoundSpec{
			Label: "RETRY_WRITEBACK",
			Req:   func(int) types.Message { return types.Message{Kind: types.MsgWriteBack, Pair: best} },
			Acc:   proto.AckAcc(r.th.Refute()),
		}
		if err := r.rounder.Round(wb); err != nil {
			return types.Pair{}, fmt.Errorf("retry: write-back: %w", err)
		}
		return best, nil
	}
	return types.Pair{}, fmt.Errorf("retry: read did not converge within %d rounds (unbounded under contention — the paper's point)", MaxReadRounds)
}
