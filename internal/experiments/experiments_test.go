package experiments

import (
	"strings"
	"testing"
)

func TestRecurrenceTable(t *testing.T) {
	out := RecurrenceTable(6)
	if !strings.Contains(out, "t_k") {
		t.Fatalf("table header missing:\n%s", out)
	}
	// k=4 row: t_4 = 10, S = 31 (the paper's Figure 2 instance).
	if !strings.Contains(out, "   4             10             10             31") {
		t.Errorf("k=4 row wrong:\n%s", out)
	}
}

func TestMeasureComplexityMatchesPaper(t *testing.T) {
	// The E4 table must reproduce the paper's claimed round counts, except
	// where the adaptive paths BEAT them in these stable scenarios. The
	// repository's atomic registers are multi-writer, but the adaptive
	// write path recovers the SWMR-optimal 2 rounds whenever the optimistic
	// proposal certifies — which it does in every scenario measured here,
	// since E4's writes run before the Byzantine injection. Likewise the
	// adaptive read elides its write-back when the query rounds certify the
	// chosen pair as completely written: E4's reads follow completed writes,
	// and even with t faulty objects the 2t+1 correct holders are exactly
	// the S−t elision quorum at S = 3t+1 — so the atomic read lands at 2
	// rounds and the secret-model read at 1 (fast path + elision). The
	// paper's 4- and 3-round figures remain the WORST case, pinned by the
	// fallback round-count tests in internal/core and internal/live.
	for _, tt := range []int{1, 2} {
		rows, err := MeasureComplexity(tt)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string][2]int{
			"ABD [3]":                   {1, 2},
			"regular (GV06-style [15])": {2, 2},
			"atomic = regular + transformation (this paper §5)": {2, 2},
			"atomic, secret tokens ([8] model)":                 {2, 1},
		}
		for _, r := range rows {
			w, ok := want[r.Name]
			if !ok {
				continue
			}
			if r.WriteRounds != w[0] || r.ReadRounds != w[1] {
				t.Errorf("t=%d %s: measured %dW/%dR, paper %dW/%dR",
					tt, r.Name, r.WriteRounds, r.ReadRounds, w[0], w[1])
			}
		}
		// The retry baseline must be strictly worse than 4-round reads.
		for _, r := range rows {
			if strings.HasPrefix(r.Name, "retry") && r.ReadRounds <= 4 {
				t.Errorf("t=%d retry baseline reads in %d rounds — adversary too weak", tt, r.ReadRounds)
			}
		}
	}
}

func TestComplexityTableRenders(t *testing.T) {
	out, err := ComplexityTable(1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "atomic = regular + transformation") {
		t.Errorf("table missing rows:\n%s", out)
	}
}

func TestRetryContrast(t *testing.T) {
	for tt := 1; tt <= 3; tt++ {
		rr, opt, converged, err := RetryContrast(tt)
		if err != nil {
			t.Fatal(err)
		}
		if opt != 4 {
			t.Errorf("t=%d: optimal read rounds = %d, want 4", tt, opt)
		}
		if converged {
			t.Errorf("t=%d: retry baseline converged under perpetual staleness (rounds=%d)", tt, rr)
		}
		if rr <= 4 {
			t.Errorf("t=%d: retry rounds = %d, want > 4", tt, rr)
		}
	}
}

func TestRetryContrastTable(t *testing.T) {
	out, err := RetryContrastTable(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "gave up") {
		t.Errorf("table should show non-convergence:\n%s", out)
	}
}
