// Package experiments implements the paper-reproduction experiment suite
// (DESIGN.md, Section 4): each experiment regenerates one of the paper's
// artifacts — the lower-bound figures, the recurrence table, the Section 5
// round-complexity table, the resilience boundaries and the Ω(t)-vs-O(1)
// read-latency contrast. cmd/roundtable and cmd/lbproof print them;
// bench_test.go measures them.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"robustatomic/internal/abd"
	"robustatomic/internal/checker"
	"robustatomic/internal/core"
	"robustatomic/internal/quorum"
	"robustatomic/internal/recurrence"
	"robustatomic/internal/regular"
	"robustatomic/internal/retry"
	"robustatomic/internal/secret"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// RecurrenceTable renders experiment E3: the t_k recurrence of Lemma 1, its
// closed form, and the log write-round bound of Lemma 2, for k = 1..kMax.
func RecurrenceTable(kMax int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E3 — Lemma 1 recurrence t_k = t_{k-1} + 2·t_{k-2} + 1 and Lemma 2 closed form\n")
	fmt.Fprintf(&b, "%4s %14s %14s %14s %18s\n", "k", "t_k (recur.)", "t_k (closed)", "S = 3t_k+1", "⌊log₂⌈(3t+1)/2⌉⌋")
	for _, row := range recurrence.Table(kMax) {
		fmt.Fprintf(&b, "%4d %14d %14d %14d %18d\n", row.K, row.T, row.TClosed, row.S, row.KMax)
	}
	return b.String()
}

// ComplexityRow is one line of the E4 round-complexity table.
type ComplexityRow struct {
	Name        string
	Model       string
	WriteRounds int
	ReadRounds  int
	Notes       string
}

// protocolHarness adapts one register implementation to the measurement
// loop.
type protocolHarness struct {
	name  string
	model string
	notes string
	// write returns an OpFunc writing pair i (timestamps thread through ts).
	write func(th quorum.Thresholds, i int) sim.OpFunc
	read  func(th quorum.Thresholds) sim.OpFunc
}

func harnesses(rng *rand.Rand) []protocolHarness {
	readerSeqs := map[int]int64{}
	secretSeqs := map[int]int64{}
	return []protocolHarness{
		{
			name: "ABD [3]", model: "crash-only, S=2F+1",
			notes: "1985 baseline; Byzantine objects break it (see TestByzantineBreaksABD)",
			write: func(th quorum.Thresholds, i int) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					cfg := abd.Config{S: th.S, F: th.T}
					w := abd.NewWriterAt(c, cfg, types.At(int64(i-1)))
					return types.Bottom, w.Write(types.Value(fmt.Sprintf("v%d", i)))
				}
			},
			read: func(th quorum.Thresholds) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					return abd.NewReader(c, abd.Config{S: th.S, F: th.T}).Read()
				}
			},
		},
		{
			name: "regular (GV06-style [15])", model: "Byzantine, unauthenticated, S=3t+1",
			notes: "the Section 5 building block; regular, not atomic",
			write: func(th quorum.Thresholds, i int) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					w := regular.NewWriterAt(c, th, types.WriterReg, 0, types.At(int64(i-1)))
					return types.Bottom, w.Write(types.Value(fmt.Sprintf("v%d", i)))
				}
			},
			read: func(th quorum.Thresholds) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					return regular.NewReader(c, th, types.WriterReg).Read()
				}
			},
		},
		{
			name: "atomic = regular + transformation (this paper §5)", model: "Byzantine, unauthenticated, S=3t+1",
			notes: "adaptive: 2-round stable reads (write-back elided); 4 worst-case per Prop. 1",
			write: func(th quorum.Thresholds, i int) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					w := core.NewWriterAt(c, th, 0, types.At(int64(i-1)))
					return types.Bottom, w.Write(types.Value(fmt.Sprintf("v%d", i)))
				}
			},
			read: func(th quorum.Thresholds) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					r := core.NewReaderAt(c, th, 1, 2, readerSeqs[th.T])
					v, err := r.Read()
					readerSeqs[th.T] = r.Seq()
					return v, err
				}
			},
		},
		{
			name: "atomic, secret tokens ([8] model)", model: "Byzantine, secret values, S=3t+1",
			notes: "1-round stable reads (fast path + elision); 4 under contention (approximation of [8])",
			write: func(th quorum.Thresholds, i int) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					w := secret.NewAtomicWriterAt(c, th, rng, 0, types.At(int64(i-1)))
					return types.Bottom, w.Write(types.Value(fmt.Sprintf("v%d", i)))
				}
			},
			read: func(th quorum.Thresholds) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					r := secret.NewAtomicReaderAt(c, th, rng, 1, 2, secretSeqs[th.T])
					v, err := r.Read()
					secretSeqs[th.T] = r.Seq()
					return v, err
				}
			},
		},
		{
			name: "retry baseline (pre-2011, e.g. [2])", model: "Byzantine, unauthenticated, S=3t+1",
			notes: "reads unbounded under contention/staleness (E6)",
			write: func(th quorum.Thresholds, i int) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					w := retry.NewWriterAt(c, th, types.At(int64(i-1)))
					return types.Bottom, w.Write(types.Value(fmt.Sprintf("v%d", i)))
				}
			},
			read: func(th quorum.Thresholds) sim.OpFunc {
				return func(c *sim.Client) (types.Value, error) {
					return retry.NewReader(c, th).Read()
				}
			},
		},
	}
}

// MeasureComplexity runs experiment E4: the worst-case rounds per operation
// of every implementation, measured in the deterministic simulator across
// fault-free and t-Byzantine (silent, garbage, stale) scenarios.
func MeasureComplexity(t int) ([]ComplexityRow, error) {
	rng := rand.New(rand.NewSource(42))
	var rows []ComplexityRow
	for _, hn := range harnesses(rng) {
		s := quorum.OptimalObjects(t)
		th, err := quorum.NewThresholds(s, t)
		if err != nil {
			return nil, err
		}
		if strings.HasPrefix(hn.name, "ABD") {
			// ABD is measured in its own crash model (t crash faults).
			th = quorum.Thresholds{S: 2*t + 1, T: t}
		}
		maxW, maxR := 0, 0
		for scenario := 0; scenario < 4; scenario++ {
			sm := sim.New(sim.Config{Servers: th.S})
			for i := 1; i <= 2; i++ {
				w := sm.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, types.Bottom, hn.write(th, i))
				if err := sm.RunOp(w); err != nil {
					sm.Close()
					return nil, fmt.Errorf("%s write: %w", hn.name, err)
				}
				if w.Rounds() > maxW {
					maxW = w.Rounds()
				}
			}
			switch scenario {
			case 1:
				for i := 1; i <= th.T; i++ {
					sm.SetByzantine(i, server.Silent{})
				}
			case 2:
				if !strings.HasPrefix(hn.name, "ABD") { // crash model has no liars
					for i := 1; i <= th.T; i++ {
						sm.SetByzantine(i, server.Garbage{Level: 500, Val: "evil"})
					}
				}
			case 3:
				if !strings.HasPrefix(hn.name, "ABD") {
					for i := 1; i <= th.T; i++ {
						sm.SetByzantine(i, &server.Stale{Snap: sm.Snapshot(i)})
					}
				}
			}
			rd := sm.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, hn.read(th))
			if err := sm.RunOp(rd); err != nil {
				sm.Close()
				return nil, fmt.Errorf("%s read: %w", hn.name, err)
			}
			if rd.Rounds() > maxR {
				maxR = rd.Rounds()
			}
			sm.Close()
		}
		if strings.HasPrefix(hn.name, "retry") {
			// The retry baseline's worst case needs the split-view
			// staleness adversary of E6 (plain staleness scenarios above
			// are resolved in one querying round).
			rr, _, err := retryUnderStaleness(th)
			if err != nil {
				return nil, err
			}
			if rr+1 > maxR { // +1 for the write-back round it never reached
				maxR = rr + 1
			}
		}
		rows = append(rows, ComplexityRow{
			Name: hn.name, Model: hn.model, WriteRounds: maxW, ReadRounds: maxR, Notes: hn.notes,
		})
	}
	return rows, nil
}

// ComplexityTable renders E4.
func ComplexityTable(t int) (string, error) {
	rows, err := MeasureComplexity(t)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "E4 — Section 5 complexity table, measured (t=%d; worst case over fault-free,\n", t)
	fmt.Fprintf(&b, "     t-silent, t-garbage and t-stale Byzantine scenarios)\n")
	fmt.Fprintf(&b, "%-52s %-38s %6s %6s\n", "implementation", "model", "write", "read")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-52s %-38s %6d %6d\n", r.Name, r.Model, r.WriteRounds, r.ReadRounds)
	}
	b.WriteString("\npaper (SWMR): ABD 1W/2R (crash) · regular 2W/2R · atomic 2W/4R (optimal) ·\n")
	b.WriteString("       secret-token atomic 2W/3R (contention-free) · prior art unbounded/Ω(t)\n")
	b.WriteString("this repo (MWMR, adaptive): 2W uncontended (optimistic proposal certifies),\n")
	b.WriteString("       3W under write contention, ≤5W vs. Byzantine-inflated reports;\n")
	b.WriteString("       reads elide the write-back when the queries certify completeness —\n")
	b.WriteString("       2R (1R secret) on stable registers, 4R worst case per Prop. 1\n")
	return b.String(), nil
}

// RetryContrast runs experiment E6: read rounds of the retry baseline vs the
// 4-round-optimal atomic register under a staleness adversary (one slow
// correct object plus t stale Byzantine objects, the split-view schedule of
// the retry tests). It returns (retryRounds, optimalRounds, converged).
func RetryContrast(t int) (int, int, bool, error) {
	th, err := quorum.NewThresholds(quorum.OptimalObjects(t), t)
	if err != nil {
		return 0, 0, false, err
	}
	// Retry register under the adversary.
	retryRounds, converged, err := retryUnderStaleness(th)
	if err != nil {
		return 0, 0, false, err
	}
	// The optimal register under the same adversary always reads in 4.
	optRounds, err := optimalUnderStaleness(th)
	if err != nil {
		return 0, 0, false, err
	}
	return retryRounds, optRounds, converged, nil
}

func retryUnderStaleness(th quorum.Thresholds) (rounds int, converged bool, err error) {
	sm := sim.New(sim.Config{Servers: th.S})
	defer sm.Close()
	w1 := sm.Spawn("w1", types.Writer, checker.OpWrite, "a", func(c *sim.Client) (types.Value, error) {
		return types.Bottom, retry.NewWriter(c, th).Write("a")
	})
	if err := sm.RunOp(w1); err != nil {
		return 0, false, err
	}
	snaps := make([][]byte, th.T+1)
	for i := 1; i <= th.T; i++ {
		snaps[i] = sm.Snapshot(i)
	}
	// Write "b" on a quorum that excludes object t+1 (slow correct).
	var quorumObjs []int
	for sid := 1; sid <= th.S; sid++ {
		if sid != th.T+1 {
			quorumObjs = append(quorumObjs, sid)
		}
	}
	w2 := sm.Spawn("w2", types.Writer, checker.OpWrite, "b", func(c *sim.Client) (types.Value, error) {
		w := retry.NewWriterAt(c, th, types.At(1))
		return types.Bottom, w.Write("b")
	})
	sm.Step(w2, quorumObjs...)
	sm.Step(w2, quorumObjs...)
	if !w2.Done() {
		return 0, false, fmt.Errorf("experiments: write b incomplete")
	}
	for i := 1; i <= th.T; i++ {
		sm.SetByzantine(i, &server.Stale{Snap: snaps[i]})
	}
	var r *retry.Reader
	rd := sm.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		r = retry.NewReader(c, th)
		return r.Read()
	})
	// The adversary keeps object t+1's pending write undelivered: every
	// query round sees the split view.
	for !rd.Done() {
		sm.StepAll(rd)
	}
	_, opErr := rd.Result()
	return r.Rounds, opErr == nil, nil
}

func optimalUnderStaleness(th quorum.Thresholds) (int, error) {
	sm := sim.New(sim.Config{Servers: th.S})
	defer sm.Close()
	w1 := sm.Spawn("w1", types.Writer, checker.OpWrite, "a", func(c *sim.Client) (types.Value, error) {
		return types.Bottom, core.NewWriter(c, th).Write("a")
	})
	if err := sm.RunOp(w1); err != nil {
		return 0, err
	}
	snaps := make([][]byte, th.T+1)
	for i := 1; i <= th.T; i++ {
		snaps[i] = sm.Snapshot(i)
	}
	var quorumObjs []int
	for sid := 1; sid <= th.S; sid++ {
		if sid != th.T+1 {
			quorumObjs = append(quorumObjs, sid)
		}
	}
	w2 := sm.Spawn("w2", types.Writer, checker.OpWrite, "b", func(c *sim.Client) (types.Value, error) {
		return types.Bottom, core.NewWriterAt(c, th, 0, types.At(1)).Write("b")
	})
	sm.Step(w2, quorumObjs...) // PREWRITE (optimistic proposal, certifies)
	sm.Step(w2, quorumObjs...) // WRITE
	if !w2.Done() {
		return 0, fmt.Errorf("experiments: write b incomplete")
	}
	for i := 1; i <= th.T; i++ {
		sm.SetByzantine(i, &server.Stale{Snap: snaps[i]})
	}
	rd := sm.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		return core.NewReader(c, th, 1, 2).Read()
	})
	if err := sm.RunOp(rd); err != nil {
		return 0, err
	}
	v, err := rd.Result()
	if err != nil {
		return 0, err
	}
	if v != "b" {
		return 0, fmt.Errorf("experiments: optimal read returned %q under staleness", v)
	}
	return rd.Rounds(), nil
}

// RetryContrastTable renders E6 across fault budgets.
func RetryContrastTable(tMax int) (string, error) {
	var b strings.Builder
	b.WriteString("E6 — read rounds under a staleness adversary: pre-2011 retry baseline vs\n")
	b.WriteString("     the paper's 4-round-optimal atomic register\n")
	fmt.Fprintf(&b, "%4s %6s %16s %16s\n", "t", "S", "retry reads", "optimal reads")
	for t := 1; t <= tMax; t++ {
		rr, opt, conv, err := RetryContrast(t)
		if err != nil {
			return "", err
		}
		status := fmt.Sprintf("%d (gave up)", rr)
		if conv {
			status = fmt.Sprintf("%d", rr)
		}
		fmt.Fprintf(&b, "%4d %6d %16s %16d\n", t, quorum.OptimalObjects(t), status, opt)
	}
	b.WriteString("\npaper §1.2: prior robust atomic reads are unbounded or Ω(t); §5: 4 rounds suffice\n")
	return b.String(), nil
}
