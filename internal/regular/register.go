package regular

import (
	"fmt"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// PreWriteSpec builds the writer's first round: store the pair in pw at
// every object, await S−t acknowledgements.
func PreWriteSpec(th quorum.Thresholds, reg types.RegID, p types.Pair, tok types.Token) proto.RoundSpec {
	return writeSpec(th, "PREWRITE", types.MsgPreWrite, reg, p, tok)
}

// PreWriteValidatedSpec builds the PREWRITE round with the validation
// accumulator (a proto.BitAcc over the acks): same request as PreWriteSpec,
// but the replies' prior-state piggybacks — each object's pre-prewrite
// (pw, w) timestamps, values stripped — are folded into the accumulator's
// MaxTS, the optimistic write's certification input. The reports are
// uncertified: a Byzantine acknowledger can inflate the maximum (forcing
// the caller's fallback, bounded like discovery inflation) or underreport
// it (harmless — any write that COMPLETED before this round began reached
// a correct member of this quorum, whose honest report carries it).
func PreWriteValidatedSpec(th quorum.Thresholds, reg types.RegID, p types.Pair, tok types.Token) (proto.RoundSpec, *proto.BitAcc) {
	acc := proto.NewAckBits(th.Quorum())
	msg := types.Message{Kind: types.MsgPreWrite, Pair: p, Token: tok}
	spec := proto.RoundSpec{
		Label: "PREWRITE",
		Req:   func(int) types.Message { return msg },
		Acc:   proto.Accumulator(acc),
	}
	if reg != types.WriterReg {
		spec.Req = muxWrap(reg, msg)
		spec.Acc = &muxUnwrapAcc{reg: reg, inner: acc}
	}
	return spec, acc
}

// WriteSpec builds the writer's second round: store the pair in w.
func WriteSpec(th quorum.Thresholds, reg types.RegID, p types.Pair, tok types.Token) proto.RoundSpec {
	return writeSpec(th, "WRITE", types.MsgWrite, reg, p, tok)
}

func writeSpec(th quorum.Thresholds, label string, kind types.MsgKind, reg types.RegID, p types.Pair, tok types.Token) proto.RoundSpec {
	msg := types.Message{Kind: kind, Pair: p, Token: tok}
	spec := proto.RoundSpec{
		Label: label,
		Req:   func(int) types.Message { return msg },
		Acc:   proto.NewAckBits(th.Quorum()),
	}
	if reg != types.WriterReg {
		spec.Req = muxWrap(reg, msg)
		spec.Acc = muxAckAcc(reg, th.Quorum())
	}
	return spec
}

// Read1Spec builds the first read query round: collect states from a quorum.
func Read1Spec(th quorum.Thresholds, reg types.RegID) (proto.RoundSpec, *StateAcc) {
	acc := NewStateAcc(th)
	msg := types.Message{Kind: types.MsgRead1}
	spec := proto.RoundSpec{
		Label: "READ1",
		Req:   func(int) types.Message { return msg },
		Acc:   proto.Accumulator(acc),
	}
	if reg != types.WriterReg {
		spec.Req = muxWrap(reg, msg)
		spec.Acc = &muxUnwrapAcc{reg: reg, inner: acc}
	}
	return spec, acc
}

// Read2Spec builds the second read query round over the frozen round-1 view;
// the returned accumulator yields the read's decision once done.
func Read2Spec(th quorum.Thresholds, reg types.RegID, round1 map[int]types.Message) (proto.RoundSpec, *DecideAcc) {
	acc := NewDecideAcc(th, round1)
	msg := types.Message{Kind: types.MsgRead1}
	spec := proto.RoundSpec{
		Label: "READ2",
		Req:   func(int) types.Message { return msg },
		Acc:   proto.Accumulator(acc),
	}
	if reg != types.WriterReg {
		spec.Req = muxWrap(reg, msg)
		spec.Acc = &muxUnwrapAcc{reg: reg, inner: acc}
	}
	return spec, acc
}

// muxWrap addresses a message to a non-default register instance by
// wrapping it in a single-entry mux bundle.
func muxWrap(reg types.RegID, msg types.Message) func(int) types.Message {
	bundle := types.Message{Kind: types.MsgMux, Sub: []types.SubMsg{{Reg: reg, Msg: msg}}}
	return func(int) types.Message { return bundle }
}

// muxUnwrapAcc unwraps single-register mux replies for an inner accumulator.
type muxUnwrapAcc struct {
	reg   types.RegID
	inner proto.Accumulator
}

// Add implements proto.Accumulator.
func (a *muxUnwrapAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgMux {
		return
	}
	for _, sub := range m.Sub {
		if sub.Reg == a.reg {
			a.inner.Add(sid, sub.Msg)
		}
	}
}

// Done implements proto.Accumulator.
func (a *muxUnwrapAcc) Done() bool { return a.inner.Done() }

// muxAckAcc counts acks inside single-register mux replies.
func muxAckAcc(reg types.RegID, need int) proto.Accumulator {
	return &muxUnwrapAcc{reg: reg, inner: proto.NewAckBits(need)}
}

// Writer is one writer of a regular register instance. A register owned by a
// single writer issues consecutive sequence numbers (the SWMR discipline the
// read decision's causality analysis exploits); a multi-writer register's
// writers jump to whatever sequence number their timestamp-discovery round
// dictates, which the relaxed monotonicity check below permits.
type Writer struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	reg     types.RegID
	wid     int64
	// NextToken, when set, attaches a fresh secret token to each phase
	// ([DMSS09] model); nil leaves tokens zero (unauthenticated model).
	NextToken func() types.Token
	ts        types.TS
	// issued is the highest timestamp this writer ever proposed in a
	// PREWRITE round, completed or not. A failed write may have installed
	// its pair at some objects, so later proposals must exceed issued —
	// re-proposing an issued timestamp with a DIFFERENT value would let two
	// correct objects hold different values for one timestamp, breaking the
	// value-agreement invariant the read decision relies on.
	issued types.TS
	// pending is the token attached to the in-flight prewrite, reused by
	// the matching WRITE phase (both phases of one write carry one token).
	pending types.Token
}

// NewWriter returns writer 0's handle for the register instance reg (use
// types.WriterReg for the writers' shared register).
func NewWriter(r proto.Rounder, th quorum.Thresholds, reg types.RegID) *Writer {
	return &Writer{rounder: r, th: th, reg: reg}
}

// NewWriterAt returns the handle of writer wid resuming from a known last
// timestamp (the last timestamp this process completed — or observed, for a
// multi-writer register); callers that construct a fresh Writer per
// operation thread the timestamp through here.
func NewWriterAt(r proto.Rounder, th quorum.Thresholds, reg types.RegID, wid int64, last types.TS) *Writer {
	return &Writer{rounder: r, th: th, reg: reg, wid: wid, ts: last}
}

// Write stores v under this writer's next timestamp. Two rounds: PREWRITE,
// WRITE. On a multi-writer register the caller must have discovered the
// sequence number to exceed first (core.Writer does); Write alone only
// dominates this writer's own history.
func (w *Writer) Write(v types.Value) error {
	if v.IsBottom() {
		return fmt.Errorf("regular: cannot write the reserved initial value ⊥")
	}
	return w.WritePair(types.Pair{TS: w.ts.Next(w.wid), Val: v})
}

// WritePair stores an explicit pair. The timestamp must carry this writer's
// id — in the idempotent re-write branch too, so a writer resuming from an
// OBSERVED foreign timestamp can never re-issue that timestamp with its own
// value (two correct objects holding different values for one timestamp
// would break the value-agreement invariant the read decision relies on) —
// and must equal or exceed the writer's last timestamp (equality is an
// idempotent re-write of the writer's own pair; it still runs both rounds).
// Single-writer callers keep issuing consecutive sequence numbers (their
// read decision's causality filter assumes it); multi-writer callers jump
// ahead to dominate foreign timestamps their discovery round observed.
func (w *Writer) WritePair(p types.Pair) error {
	if _, err := w.PreWritePair(p); err != nil {
		return err
	}
	return w.CommitPair(p)
}

// PreWritePair runs only the PREWRITE round for p (same timestamp
// discipline as WritePair) and returns the highest pre-prewrite timestamp
// the acknowledging quorum reported — the optimistic fast path's validation
// input. The caller finishes the write with CommitPair(p), or abandons it
// (an abandoned prewrite is indistinguishable from a writer that crashed
// between phases, which the protocol already tolerates; the timestamp is
// recorded as issued and never reused with another value).
func (w *Writer) PreWritePair(p types.Pair) (types.TS, error) {
	if p.TS.WID != w.wid || (p.TS != w.ts && !w.ts.Less(p.TS)) {
		return types.TS{}, fmt.Errorf("regular: writer %d cannot write at timestamp %s after %s", w.wid, p.TS, w.ts)
	}
	w.pending = 0
	if w.NextToken != nil {
		w.pending = w.NextToken()
	}
	w.issued = types.MaxTS(w.issued, p.TS)
	spec, acc := PreWriteValidatedSpec(w.th, w.reg, p, w.pending)
	if err := w.rounder.Round(spec); err != nil {
		return types.TS{}, fmt.Errorf("regular: prewrite: %w", err)
	}
	return acc.MaxTS(), nil
}

// CommitPair runs the WRITE round for the pair passed to the immediately
// preceding PreWritePair, completing the write (it reuses that prewrite's
// token, so the phases of one write stay tied together in the secret-token
// model).
func (w *Writer) CommitPair(p types.Pair) error {
	if err := w.rounder.Round(WriteSpec(w.th, w.reg, p, w.pending)); err != nil {
		return fmt.Errorf("regular: write: %w", err)
	}
	w.ts = p.TS
	return nil
}

// LastTS returns the timestamp of the last completed write.
func (w *Writer) LastTS() types.TS { return w.ts }

// IssuedTS returns the highest timestamp this writer ever proposed in a
// PREWRITE round (≥ LastTS once anything was written). Multi-writer flows
// base successor timestamps on it so a pair abandoned by a failed or
// superseded write attempt is never re-issued carrying a different value.
func (w *Writer) IssuedTS() types.TS { return types.MaxTS(w.issued, w.ts) }

// Reader reads one regular register instance.
type Reader struct {
	rounder proto.Rounder
	th      quorum.Thresholds
	reg     types.RegID
	// MultiWriter marks the register as written by more than one writer,
	// relaxing the decision procedure accordingly (see DecideAcc).
	MultiWriter bool
}

// NewReader returns a reader for the register instance reg.
func NewReader(r proto.Rounder, th quorum.Thresholds, reg types.RegID) *Reader {
	return &Reader{rounder: r, th: th, reg: reg}
}

// Read returns the register's value: the value of the last complete write,
// or of a concurrent one.
func (r *Reader) Read() (types.Value, error) {
	p, err := r.ReadPair()
	return p.Val, err
}

// ReadPair runs the two query rounds and returns the decision.
func (r *Reader) ReadPair() (types.Pair, error) {
	spec1, acc1 := Read1Spec(r.th, r.reg)
	if err := r.rounder.Round(spec1); err != nil {
		return types.Pair{}, fmt.Errorf("regular: read round 1: %w", err)
	}
	spec2, acc2 := Read2Spec(r.th, r.reg, acc1.Replies)
	acc2.MultiWriter = r.MultiWriter
	if err := r.rounder.Round(spec2); err != nil {
		return types.Pair{}, fmt.Errorf("regular: read round 2: %w", err)
	}
	return acc2.Choice(), nil
}
