// Package regular implements a robust (wait-free, optimally resilient)
// REGULAR register over S = 3t+1 Byzantine-prone storage objects without
// data authentication, with 2-round write phases and 2-round reads — the
// complexity profile of the regular register of Guerraoui & Vukolić [15]
// that Section 5 of the paper composes into time-optimal atomic storage.
// The protocol here is our own reconstruction with the same interface,
// model and round complexity (see DESIGN.md for the faithfulness note); it
// is validated by scripted adversarial schedules and large-scale seeded
// randomized model checking against the regularity checker.
//
// The register serves both disciplines of the multi-writer stack: a
// SINGLE-WRITER register (one owner issuing consecutive sequence numbers —
// the per-reader write-back registers), and the writers' shared
// MULTI-WRITER register, whose writers jump to discovered sequence numbers
// and whose read decision runs in the relaxed MultiWriter mode (see
// DecideAcc.MultiWriter and decide.go's prewrite-support analysis).
//
// # Protocol
//
// Objects keep, per register instance, a pre-written pair pw and a written
// pair w, both monotone in the lexicographic (Seq, WriterID) timestamp
// order. A single-writer register's timestamps are consecutive (1, 2, 3, …)
// — its read decision's causality analysis depends on it; a multi-writer
// register's writers discover their sequence numbers, and the decision
// relies on prewrite support instead.
//
// Write(v): the writer picks the next timestamp ts and runs two rounds,
// each awaiting S−t ≥ 2t+1 acknowledgements:
//
//	PREWRITE(ts,v): object sets pw := (ts,v) if ts > pw.ts
//	WRITE(ts,v):    object sets w  := (ts,v) if ts > w.ts
//
// A write is complete only after its WRITE round. Key invariants: (i) a
// complete write at level ts leaves w.ts ≥ ts at t+1 correct objects
// forever; (ii) the writer is sequential, so write ts+1 is invoked only
// after write ts completed; (iii) correct objects only ever hold pairs the
// register's writer issued.
//
// Read(): two query rounds. Round 1 (READ1) collects (pw, w) states from
// S−t objects. Round 2 (READ2) re-queries all objects — crucially, its
// requests are sent after round 1's replies were received, which creates
// the causal ordering the decision exploits — and terminates, per the
// adaptive round rule of Definition 1, as soon as the decision procedure
// below yields a pair on the pair of views (and at the latest when every
// correct object has replied).
//
// # The decision procedure
//
// The reader cannot trust any single reply, so it reasons over fault
// assignments. For every set F of at most t objects that is CONSISTENT with
// the two views, it computes λ(F), the highest level that could be the last
// write completed before the read began; it then returns the largest
// reported pair (or ⊥) that, under every consistent F, is genuine and
// dominates λ(F).
//
// Consistency of F — the checks may never reject the true fault set:
//
//   - monotonicity: objects outside F must not report decreasing pw/w
//     timestamps across rounds;
//   - value agreement: objects outside F reporting the same timestamp must
//     report the same value (the sequential writer issues one pair per
//     level);
//   - causality: if an object outside F reported level ℓ in round 1, then
//     write ℓ−1 completed before that reply, hence before round 2 was sent,
//     so 2t+1 objects acknowledged WRITE(ℓ−1) by then; each acknowledger is
//     in F, or unheard from in round 2, or must show w ≥ ℓ−1 in round 2.
//
// λ(F) is the highest reported level ℓ such that |F| plus the number of
// objects outside F whose every known reply shows w.ts ≥ ℓ (vacuously, the
// unheard-from objects) reaches 2t+1: an object that acknowledged WRITE(ℓ)
// before the read began shows w.ts ≥ ℓ in every reply it gives the read, so
// a write completed before the read keeps its level "possible" under the
// true F.
//
// A pair c is genuine under F if c = ⊥ or some object outside F reported
// exactly c: correct objects only hold genuinely written pairs.
//
// Safety: the true fault set F* is consistent, c is genuine under F*, and
// c.ts ≥ λ(F*) ≥ ts_last (the last complete write's t+1 correct
// acknowledgers keep its level possible), so the read returns the last
// complete write's pair or a genuinely written newer one — regularity.
//
// Termination: enumeration of F is exhaustive, so the decision exists
// whenever the views pin the adversary down; the seeded model checker
// (TestStressModelCheck and the randomized suites) validates that the
// decision always exists once every correct object has replied to round 2,
// across fault counts 0..t, Byzantine behavior mixes, and adversarial
// schedules. Enumeration costs O(S^t) — fine for the fault budgets of the
// paper's constructions (t ≤ 5); see DESIGN.md for the engineering note.
package regular
