package regular

import (
	"fmt"
	"math/rand"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

// TestStressModelCheck is the heavyweight randomized model check of the
// regular register: seeded random schedules, random Byzantine subsets and
// behaviors (including adaptive mid-run behavior swaps), sequential writes
// concurrent with reads, full-history regularity checking, and wait-freedom
// checking on every schedule.
func TestStressModelCheck(t *testing.T) {
	seeds := 400
	if testing.Short() {
		seeds = 25
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runStressSchedule(t, seed)
		})
	}
}

func runStressSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed * 7919))
	tt := 1 + rng.Intn(3) // t ∈ {1,2,3}
	S := 3*tt + 1
	thr := th(t, S, tt)
	h := &checker.History{}
	s := sim.New(sim.Config{Servers: S, History: h})
	defer s.Close()

	mkBehavior := func(sid int) server.Behavior {
		switch rng.Intn(6) {
		case 0:
			return server.Silent{}
		case 1:
			return server.Garbage{Level: int64(rng.Intn(12)), Val: "evil"}
		case 2:
			return server.Garbage{Level: 1 << 30, Val: "huge"}
		case 3:
			return &server.ReplayOnly{Rand: rng}
		case 4:
			return &server.Stale{Snap: s.Snapshot(sid)}
		default:
			return server.Flaky{Rand: rng, Inner: server.Honest{}, DropProb: 0.4}
		}
	}
	nByz := rng.Intn(tt + 1)
	perm := rng.Perm(S)
	byzIDs := make([]int, 0, nByz)
	for i := 0; i < nByz; i++ {
		byzIDs = append(byzIDs, perm[i]+1)
	}
	// Half the time Byzantine from the start, half mid-run.
	immediate := rng.Intn(2) == 0
	if immediate {
		for _, sid := range byzIDs {
			s.SetByzantine(sid, mkBehavior(sid))
		}
	}

	readers := make([]*sim.Op, 0, 3)
	for i := 1; i <= 3; i++ {
		readers = append(readers, s.Spawn(fmt.Sprintf("r%d", i), types.Reader(i), checker.OpRead, types.Bottom, readOp(thr)))
	}
	writes := 2 + rng.Intn(3)
	for i := 1; i <= writes; i++ {
		if !immediate && i == writes/2+1 {
			for _, sid := range byzIDs {
				s.SetByzantine(sid, mkBehavior(sid))
			}
		}
		p := pair(int64(i), fmt.Sprintf("v%d", i))
		w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, p.Val,
			func(c *sim.Client) (types.Value, error) {
				return types.Bottom, NewWriterAt(c, thr, types.WriterReg, 0, types.At(p.TS.Seq-1)).WritePair(p)
			})
		ops := append([]*sim.Op{w}, readers...)
		if err := s.RunConcurrent(seed+int64(i)*13, ops...); err != nil {
			t.Fatalf("liveness: %v", err)
		}
	}
	// Fresh post-quiescence readers must see the final value.
	rd := s.Spawn("rfinal", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if err := s.RunOp(rd); err != nil {
		t.Fatalf("final read liveness: %v", err)
	}
	v, err := rd.Result()
	if err != nil {
		t.Fatal(err)
	}
	if want := types.Value(fmt.Sprintf("v%d", writes)); v != want {
		t.Fatalf("final read = %q, want %q", v, want)
	}
	if err := checker.CheckRegular(h); err != nil {
		t.Fatalf("regularity: %v", err)
	}
}
