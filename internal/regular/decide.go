package regular

import (
	"math/bits"
	"sort"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// StateAcc is the round-1 accumulator: collect (pw, w) state replies from a
// quorum of S−t distinct objects.
type StateAcc struct {
	th      quorum.Thresholds
	Replies map[int]types.Message
}

var _ proto.Accumulator = (*StateAcc)(nil)

// NewStateAcc returns an empty round-1 accumulator.
func NewStateAcc(th quorum.Thresholds) *StateAcc {
	return &StateAcc{th: th, Replies: make(map[int]types.Message, th.S)}
}

// Add implements proto.Accumulator.
func (a *StateAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgState {
		return
	}
	if _, dup := a.Replies[sid]; dup {
		return
	}
	a.Replies[sid] = m
}

// Done implements proto.Accumulator.
func (a *StateAcc) Done() bool { return len(a.Replies) >= a.th.Quorum() }

// MaxTS returns the largest timestamp among the collected pw/w states — the
// timestamp-discovery result of a multi-writer write's first round. Byzantine
// objects can inflate it (burning sequence-number space, never safety); the
// keyed Store's read-modify-write path avoids even that by discovering
// through the certified read decision instead.
func (a *StateAcc) MaxTS() types.TS {
	var best types.TS
	for _, m := range a.Replies {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	return best
}

// DecideAcc is the round-2 accumulator: given the frozen round-1 view, it
// collects fresh state replies until the fault-set-enumeration decision
// procedure (see package documentation) yields a pair. The choice latches.
type DecideAcc struct {
	th quorum.Thresholds
	// MultiWriter relaxes the decision's consistency checks to the
	// multi-writer discipline: writers of an MWMR register discover their
	// sequence number from a quorum and may issue timestamp ℓ while write
	// ℓ−1 never completed, so the SWMR causality filter ("a correct object
	// reporting level ℓ implies write ℓ−1 completed") would wrongly reject
	// the true fault set. Set it before the round runs on registers written
	// by more than one writer; leave it false on single-writer registers,
	// where the stricter filter prunes more Byzantine fault assignments.
	MultiWriter bool
	r1          map[int]types.Message
	r2          map[int]types.Message
	done        bool
	choice      types.Pair
}

var _ proto.Accumulator = (*DecideAcc)(nil)

// NewDecideAcc returns a round-2 accumulator over the frozen round-1 view.
func NewDecideAcc(th quorum.Thresholds, round1 map[int]types.Message) *DecideAcc {
	return &DecideAcc{th: th, r1: round1, r2: make(map[int]types.Message, th.S)}
}

// Add implements proto.Accumulator.
func (a *DecideAcc) Add(sid int, m types.Message) {
	if a.done || m.Kind != types.MsgState {
		return
	}
	if _, dup := a.r2[sid]; dup {
		return
	}
	a.r2[sid] = m
	if len(a.r2) < a.th.Refute() {
		return
	}
	if c, ok := decide(a.th, a.r1, a.r2, a.MultiWriter); ok {
		a.done = true
		a.choice = c
	}
}

// Done implements proto.Accumulator.
func (a *DecideAcc) Done() bool { return a.done }

// Choice returns the decision; valid only once Done.
func (a *DecideAcc) Choice() types.Pair { return a.choice }

// MaxTS returns the largest timestamp among the pw/w states of both query
// rounds' replies. Like StateAcc.MaxTS the reports are uncertified — a
// Byzantine object can inflate the result — so callers resuming a sequence
// number from it must bound the lead against a certified anchor (see
// core.ResumeSeq).
func (a *DecideAcc) MaxTS() types.TS {
	var best types.TS
	for _, m := range a.r1 {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	for _, m := range a.r2 {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	return best
}

// srvView is one object's replies across the two query rounds.
type srvView struct {
	has1, has2 bool
	pw1, w1    types.Pair
	pw2, w2    types.Pair
}

// decide implements the decision procedure. For every fault assignment F
// (|F| ≤ t) consistent with the two views it computes the highest timestamp
// λ(F) that could be the last write completed before the read began, and it
// returns the maximum reported pair that is genuine under — and dominates
// λ(F) of — every consistent F. Soundness rests on the true fault set never
// being rejected by the consistency checks, so the returned pair is genuine
// and at least as fresh as the last complete write in the actual run.
func decide(th quorum.Thresholds, r1, r2 map[int]types.Message, mw bool) (types.Pair, bool) {
	s, t := th.S, th.T
	views := make([]srvView, s+1)
	for sid, m := range r1 {
		views[sid].has1 = true
		views[sid].pw1, views[sid].w1 = m.PW, m.W
	}
	for sid, m := range r2 {
		views[sid].has2 = true
		views[sid].pw2, views[sid].w2 = m.PW, m.W
	}

	// Reported pairs and their reporter bitmasks.
	reporters := make(map[types.Pair]uint64)
	report := func(sid int, p types.Pair) {
		if !p.TS.IsZero() {
			reporters[p] |= 1 << uint(sid)
		}
	}
	for sid := 1; sid <= s; sid++ {
		v := &views[sid]
		if v.has1 {
			report(sid, v.pw1)
			report(sid, v.w1)
		}
		if v.has2 {
			report(sid, v.pw2)
			report(sid, v.w2)
		}
	}
	// Distinct reported timestamps, descending lexicographic order.
	levelSet := make(map[types.TS]bool, len(reporters))
	for p := range reporters {
		levelSet[p.TS] = true
	}
	levels := make([]types.TS, 0, len(levelSet))
	for l := range levelSet {
		levels = append(levels, l)
	}
	sort.Slice(levels, func(i, j int) bool { return levels[j].Less(levels[i]) })

	// allReportsAtLeast(sid, ℓ): every reply sid gave shows w.ts ≥ ℓ
	// (vacuously true for fully silent objects) — the signature of an
	// object that acknowledged the WRITE phase of timestamp ℓ before the
	// read began.
	allReportsAtLeast := func(sid int, l types.TS) bool {
		v := &views[sid]
		if v.has1 && v.w1.TS.Less(l) {
			return false
		}
		if v.has2 && v.w2.TS.Less(l) {
			return false
		}
		return true
	}

	// Enumerate fault assignments F as bitmasks, |F| ≤ t.
	var lambdas []types.TS
	var fmasks []uint64
	forEachSubset(s, t, func(f uint64) {
		if !consistentF(th, views[:], f, mw) {
			return
		}
		// λ(F): the highest reported timestamp whose WRITE phase could have
		// gathered 2t+1 acknowledgements before the read began.
		var lam types.TS
		for _, l := range levels {
			cnt := bits.OnesCount64(f)
			for sid := 1; sid <= s; sid++ {
				if f&(1<<uint(sid)) == 0 && allReportsAtLeast(sid, l) {
					cnt++
				}
			}
			if cnt >= th.Refute() {
				lam = l
				break
			}
		}
		fmasks = append(fmasks, f)
		lambdas = append(lambdas, lam)
	})
	if len(fmasks) == 0 {
		// The true fault set is always consistent; an empty set means the
		// views are still too sparse. Keep waiting.
		return types.Pair{}, false
	}

	// Candidates: reported pairs plus ⊥, by descending timestamp.
	cands := make([]types.Pair, 0, len(reporters)+1)
	for p := range reporters {
		cands = append(cands, p)
	}
	cands = append(cands, types.BottomPair)
	sort.Slice(cands, func(i, j int) bool { return cands[j].Less(cands[i]) })
	for _, c := range cands {
		ok := true
		for i, f := range fmasks {
			if c.TS.Less(lambdas[i]) {
				ok = false
				break
			}
			if !c.TS.IsZero() && reporters[c]&^f == 0 {
				// Every reporter of c could be Byzantine under F.
				ok = false
				break
			}
		}
		if ok {
			return c, true
		}
	}
	return types.Pair{}, false
}

// consistentF reports whether fault assignment f (bitmask of object ids) is
// consistent with the observed views, i.e. whether some run with exactly
// that Byzantine set could have produced them. The checks must never reject
// the true fault set:
//
//   - monotonicity: correct objects' pw/w timestamps never decrease between
//     rounds;
//   - value agreement: two correct objects reporting the same timestamp
//     report the same pair (a timestamp embeds its writer's identity, and
//     each writer issues one pair per sequence number);
//   - causality (single-writer registers): if a correct object reported
//     sequence number ℓ in round 1, write ℓ−1 completed before its reply,
//     hence before round 2 was sent, so its 2t+1 WRITE acknowledgers — minus
//     those Byzantine under F or not heard from in round 2 — must show
//     w ≥ ℓ−1 in round 2. A multi-writer register's writers discover their
//     sequence number from a quorum that may only have PRE-written ℓ−1, so
//     that inference is unsound there;
//   - prewrite support (multi-writer registers, replacing causality): every
//     pair a correct object reports in w completed its PREWRITE phase
//     (2t+1 acknowledgements) before the object could receive its WRITE —
//     the writer protocol orders the phases — and pw slots are monotone, so
//     for a round-1 w-report of an object correct under F, 2t+1 objects —
//     minus those Byzantine under F or not heard from in round 2 — must
//     show pw (or w) at or above it in round 2. This is what localizes a
//     fabricated high timestamp to its fabricator: no fault set exonerating
//     the liar survives, so λ(F) cannot be inflated beyond what genuine
//     certified pairs can dominate, which the read's termination relies on.
func consistentF(th quorum.Thresholds, views []srvView, f uint64, mw bool) bool {
	s := th.S
	vals := make(map[types.TS]types.Value, 8)
	checkPair := func(p types.Pair) bool {
		if p.TS.IsZero() {
			return true
		}
		if v, seen := vals[p.TS]; seen {
			return v == p.Val
		}
		vals[p.TS] = p.Val
		return true
	}
	maxR1 := int64(0)  // highest round-1 sequence number (SWMR causality)
	var maxW1 types.TS // highest round-1 w-report (MWMR prewrite support)
	for sid := 1; sid <= s; sid++ {
		if f&(1<<uint(sid)) != 0 {
			continue
		}
		v := &views[sid]
		if v.has1 && v.has2 {
			if v.w2.TS.Less(v.w1.TS) || v.pw2.TS.Less(v.pw1.TS) {
				return false
			}
		}
		if v.has1 {
			if !checkPair(v.pw1) || !checkPair(v.w1) {
				return false
			}
			if l := max64(v.pw1.TS.Seq, v.w1.TS.Seq); l > maxR1 {
				maxR1 = l
			}
			maxW1 = types.MaxTS(maxW1, v.w1.TS)
		}
		if v.has2 {
			if !checkPair(v.pw2) || !checkPair(v.w2) {
				return false
			}
		}
	}
	if mw {
		// Prewrite support (see above): the highest round-1 w-report among
		// objects correct under F must show 2t+1 objects at pw ≥ it in
		// round 2 (checking the maximum covers every smaller report, since
		// pw slots are monotone in the lexicographic order).
		if !maxW1.IsZero() {
			need := th.Refute()
			cnt := bits.OnesCount64(f)
			for sid := 1; sid <= s; sid++ {
				if f&(1<<uint(sid)) != 0 {
					continue
				}
				v := &views[sid]
				if !v.has2 || !v.pw2.TS.Less(maxW1) || !v.w2.TS.Less(maxW1) {
					cnt++
				}
			}
			if cnt < need {
				return false
			}
		}
		return true
	}
	// Causality: the strongest constraint comes from the highest round-1
	// sequence number ℓ among correct objects; its predecessor ℓ−1 must look
	// complete in round 2. Single-writer registers only (see above).
	if maxR1 >= 2 {
		need := th.Refute()
		cnt := bits.OnesCount64(f)
		for sid := 1; sid <= s; sid++ {
			if f&(1<<uint(sid)) != 0 {
				continue
			}
			v := &views[sid]
			if !v.has2 || v.w2.TS.Seq >= maxR1-1 {
				cnt++
			}
		}
		if cnt < need {
			return false
		}
	}
	return true
}

// forEachSubset invokes fn for every subset of {1..n} of size ≤ k, encoded
// as a bitmask with bit i set for element i.
func forEachSubset(n, k int, fn func(mask uint64)) {
	if n > 62 {
		panic("regular: object count too large for subset enumeration")
	}
	var rec func(start int, mask uint64, left int)
	rec = func(start int, mask uint64, left int) {
		fn(mask)
		if left == 0 {
			return
		}
		for i := start; i <= n; i++ {
			rec(i+1, mask|1<<uint(i), left-1)
		}
	}
	rec(1, 0, k)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
