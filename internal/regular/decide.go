package regular

import (
	"math/bits"

	"robustatomic/internal/proto"
	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// StateAcc is the round-1 accumulator: collect (pw, w) state replies from a
// quorum of S−t distinct objects.
type StateAcc struct {
	th      quorum.Thresholds
	Replies map[int]types.Message
}

var _ proto.Accumulator = (*StateAcc)(nil)

// NewStateAcc returns an empty round-1 accumulator.
func NewStateAcc(th quorum.Thresholds) *StateAcc {
	return &StateAcc{th: th, Replies: make(map[int]types.Message, th.S)}
}

// Add implements proto.Accumulator.
func (a *StateAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgState {
		return
	}
	if _, dup := a.Replies[sid]; dup {
		return
	}
	a.Replies[sid] = m
}

// Done implements proto.Accumulator.
func (a *StateAcc) Done() bool { return len(a.Replies) >= a.th.Quorum() }

// MaxTS returns the largest timestamp among the collected pw/w states — the
// timestamp-discovery result of a multi-writer write's first round. Byzantine
// objects can inflate it (burning sequence-number space, never safety); the
// keyed Store's read-modify-write path avoids even that by discovering
// through the certified read decision instead.
func (a *StateAcc) MaxTS() types.TS {
	var best types.TS
	for _, m := range a.Replies {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	return best
}

// DecideAcc is the round-2 accumulator: given the frozen round-1 view, it
// collects fresh state replies until the fault-set-enumeration decision
// procedure (see package documentation) yields a pair. The choice latches.
type DecideAcc struct {
	th quorum.Thresholds
	// MultiWriter relaxes the decision's consistency checks to the
	// multi-writer discipline: writers of an MWMR register discover their
	// sequence number from a quorum and may issue timestamp ℓ while write
	// ℓ−1 never completed, so the SWMR causality filter ("a correct object
	// reporting level ℓ implies write ℓ−1 completed") would wrongly reject
	// the true fault set. Set it before the round runs on registers written
	// by more than one writer; leave it false on single-writer registers,
	// where the stricter filter prunes more Byzantine fault assignments.
	MultiWriter bool
	r1          map[int]types.Message
	r2          map[int]types.Message
	done        bool
	choice      types.Pair
	views       []srvView // scratch rebuilt from the maps per decision attempt
	d           decider
}

var _ proto.Accumulator = (*DecideAcc)(nil)

// NewDecideAcc returns a round-2 accumulator over the frozen round-1 view.
func NewDecideAcc(th quorum.Thresholds, round1 map[int]types.Message) *DecideAcc {
	return &DecideAcc{th: th, r1: round1, r2: make(map[int]types.Message, th.S)}
}

// Add implements proto.Accumulator.
func (a *DecideAcc) Add(sid int, m types.Message) {
	if a.done || m.Kind != types.MsgState {
		return
	}
	if _, dup := a.r2[sid]; dup {
		return
	}
	a.r2[sid] = m
	if len(a.r2) < a.th.Refute() {
		return
	}
	if a.views == nil {
		a.views = make([]srvView, a.th.S+1)
	}
	fillViews(a.views, a.th.S, a.r1, a.r2)
	if c, ok := a.d.decide(a.th, a.views, a.MultiWriter); ok {
		a.done = true
		a.choice = c
	}
}

// Done implements proto.Accumulator.
func (a *DecideAcc) Done() bool { return a.done }

// Choice returns the decision; valid only once Done.
func (a *DecideAcc) Choice() types.Pair { return a.choice }

// MaxTS returns the largest timestamp among the pw/w states of both query
// rounds' replies. Like StateAcc.MaxTS the reports are uncertified — a
// Byzantine object can inflate the result — so callers resuming a sequence
// number from it must bound the lead against a certified anchor (see
// core.ResumeSeq).
func (a *DecideAcc) MaxTS() types.TS {
	var best types.TS
	for _, m := range a.r1 {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	for _, m := range a.r2 {
		best = types.MaxTS(best, types.MaxTS(m.PW.TS, m.W.TS))
	}
	return best
}

// WSupport returns how many distinct objects' WRITE-slot reports, in either
// query round, carry a timestamp at or above ts — the completeness evidence
// behind the adaptive read's write-back elision (see core.Reader.ReadPair):
// a quorum of S−t such reports proves at least S−2t ≥ t+1 correct objects
// durably hold w ≥ ts, which forces every later read's decision to dominate
// ts without this read re-asserting it.
func (a *DecideAcc) WSupport(ts types.TS) int {
	n := 0
	for sid := 1; sid <= a.th.S; sid++ {
		m1, ok1 := a.r1[sid]
		m2, ok2 := a.r2[sid]
		if (ok1 && !m1.W.TS.Less(ts)) || (ok2 && !m2.W.TS.Less(ts)) {
			n++
		}
	}
	return n
}

// srvView is one object's replies across the two query rounds.
type srvView struct {
	has1, has2 bool
	pw1, w1    types.Pair
	pw2, w2    types.Pair
}

// fillViews rebuilds the per-object view table from the two reply maps.
// Replies from object ids outside 1..s are dropped (they could only come
// from a broken transport; the decision must not index past its table).
func fillViews(views []srvView, s int, r1, r2 map[int]types.Message) {
	for i := range views {
		views[i] = srvView{}
	}
	for sid, m := range r1 {
		if sid < 1 || sid > s {
			continue
		}
		views[sid].has1 = true
		views[sid].pw1, views[sid].w1 = m.PW, m.W
	}
	for sid, m := range r2 {
		if sid < 1 || sid > s {
			continue
		}
		views[sid].has2 = true
		views[sid].pw2, views[sid].w2 = m.PW, m.W
	}
}

// decide implements the decision procedure over map-shaped views (the
// DecideAcc representation and the unit tests' natural input); the logic
// lives in decider.decide, which works on the flat view table and reusable
// scratch so the hot read path can run it allocation-free.
func decide(th quorum.Thresholds, r1, r2 map[int]types.Message, mw bool) (types.Pair, bool) {
	views := make([]srvView, th.S+1)
	fillViews(views, th.S, r1, r2)
	var d decider
	return d.decide(th, views, mw)
}

// decider holds the decision procedure's scratch state: every slice the
// procedure needs, grown once and recycled across invocations (same
// discipline as proto.BitAcc replacing the map accumulators on the write
// path). A zero decider is ready to use; it is not safe for concurrent use,
// matching the accumulators that embed it.
type decider struct {
	subsS, subsT int      // thresholds the subset table was built for
	subs         []uint64 // every fault bitmask |F| ≤ t over {1..s}

	pairs   []types.Pair // distinct reported non-⊥ pairs
	masks   []uint64     // reporter bitmask, parallel to pairs
	levels  []types.TS   // distinct reported timestamps, descending
	fmasks  []uint64     // consistent fault assignments
	lambdas []types.TS   // λ(F), parallel to fmasks
	cands   []types.Pair // candidate pairs, descending, ⊥ last

	valTS []types.TS // value-agreement scratch: timestamp → first value
	valV  []types.Value
}

// report records one reported pair, OR-ing the reporter into its bitmask.
// The pair population per decision is at most 4s, so linear probing beats a
// map both in allocations and in constants.
func (d *decider) report(sid int, p types.Pair) {
	if p.TS.IsZero() {
		return
	}
	for i, q := range d.pairs {
		if q == p {
			d.masks[i] |= 1 << uint(sid)
			return
		}
	}
	d.pairs = append(d.pairs, p)
	d.masks = append(d.masks, 1<<uint(sid))
}

// reporterMask returns the reporter bitmask of pair p (0 if unreported).
func (d *decider) reporterMask(p types.Pair) uint64 {
	for i, q := range d.pairs {
		if q == p {
			return d.masks[i]
		}
	}
	return 0
}

// addLevel inserts a distinct timestamp keeping levels descending.
func (d *decider) addLevel(l types.TS) {
	for _, x := range d.levels {
		if x == l {
			return
		}
	}
	d.levels = append(d.levels, l)
	for i := len(d.levels) - 1; i > 0 && d.levels[i-1].Less(d.levels[i]); i-- {
		d.levels[i-1], d.levels[i] = d.levels[i], d.levels[i-1]
	}
}

// addCand inserts a candidate pair keeping cands descending.
func (d *decider) addCand(p types.Pair) {
	d.cands = append(d.cands, p)
	for i := len(d.cands) - 1; i > 0 && d.cands[i-1].Less(d.cands[i]); i-- {
		d.cands[i-1], d.cands[i] = d.cands[i], d.cands[i-1]
	}
}

// allReportsAtLeast reports whether every reply sid gave shows w.ts ≥ ℓ
// (vacuously true for fully silent objects) — the signature of an object
// that acknowledged the WRITE phase of timestamp ℓ before the read began.
func allReportsAtLeast(views []srvView, sid int, l types.TS) bool {
	v := &views[sid]
	if v.has1 && v.w1.TS.Less(l) {
		return false
	}
	if v.has2 && v.w2.TS.Less(l) {
		return false
	}
	return true
}

// decide implements the decision procedure. For every fault assignment F
// (|F| ≤ t) consistent with the two views it computes the highest timestamp
// λ(F) that could be the last write completed before the read began, and it
// returns the maximum reported pair that is genuine under — and dominates
// λ(F) of — every consistent F. Soundness rests on the true fault set never
// being rejected by the consistency checks, so the returned pair is genuine
// and at least as fresh as the last complete write in the actual run.
func (d *decider) decide(th quorum.Thresholds, views []srvView, mw bool) (types.Pair, bool) {
	s, t := th.S, th.T
	if d.subs == nil || d.subsS != s || d.subsT != t {
		d.subsS, d.subsT = s, t
		d.subs = d.subs[:0]
		forEachSubset(s, t, func(f uint64) { d.subs = append(d.subs, f) })
	}

	// Reported pairs, their reporter bitmasks, and the distinct reported
	// timestamps in descending lexicographic order.
	d.pairs, d.masks, d.levels = d.pairs[:0], d.masks[:0], d.levels[:0]
	for sid := 1; sid <= s; sid++ {
		v := &views[sid]
		if v.has1 {
			d.report(sid, v.pw1)
			d.report(sid, v.w1)
		}
		if v.has2 {
			d.report(sid, v.pw2)
			d.report(sid, v.w2)
		}
	}
	for _, p := range d.pairs {
		d.addLevel(p.TS)
	}

	// Enumerate fault assignments F as bitmasks, |F| ≤ t.
	d.fmasks, d.lambdas = d.fmasks[:0], d.lambdas[:0]
	for _, f := range d.subs {
		if !d.consistentF(th, views, f, mw) {
			continue
		}
		// λ(F): the highest reported timestamp whose WRITE phase could have
		// gathered 2t+1 acknowledgements before the read began.
		var lam types.TS
		for _, l := range d.levels {
			cnt := bits.OnesCount64(f)
			for sid := 1; sid <= s; sid++ {
				if f&(1<<uint(sid)) == 0 && allReportsAtLeast(views, sid, l) {
					cnt++
				}
			}
			if cnt >= th.Refute() {
				lam = l
				break
			}
		}
		d.fmasks = append(d.fmasks, f)
		d.lambdas = append(d.lambdas, lam)
	}
	if len(d.fmasks) == 0 {
		// The true fault set is always consistent; an empty set means the
		// views are still too sparse. Keep waiting.
		return types.Pair{}, false
	}

	// Candidates: reported pairs plus ⊥, by descending timestamp (reported
	// pairs are all non-⊥, so ⊥ sorts last unconditionally).
	d.cands = d.cands[:0]
	for _, p := range d.pairs {
		d.addCand(p)
	}
	d.cands = append(d.cands, types.BottomPair)
	for _, c := range d.cands {
		ok := true
		for i, f := range d.fmasks {
			if c.TS.Less(d.lambdas[i]) {
				ok = false
				break
			}
			if !c.TS.IsZero() && d.reporterMask(c)&^f == 0 {
				// Every reporter of c could be Byzantine under F.
				ok = false
				break
			}
		}
		if ok {
			return c, true
		}
	}
	return types.Pair{}, false
}

// checkPair enforces value agreement across one fault assignment's correct
// reports: two correct objects reporting the same timestamp must report the
// same pair. Scratch-backed equivalent of the old per-call map.
func (d *decider) checkPair(p types.Pair) bool {
	if p.TS.IsZero() {
		return true
	}
	for i, ts := range d.valTS {
		if ts == p.TS {
			return d.valV[i] == p.Val
		}
	}
	d.valTS = append(d.valTS, p.TS)
	d.valV = append(d.valV, p.Val)
	return true
}

// consistentF reports whether fault assignment f (bitmask of object ids) is
// consistent with the observed views, i.e. whether some run with exactly
// that Byzantine set could have produced them. The checks must never reject
// the true fault set:
//
//   - monotonicity: correct objects' pw/w timestamps never decrease between
//     rounds;
//   - value agreement: two correct objects reporting the same timestamp
//     report the same pair (a timestamp embeds its writer's identity, and
//     each writer issues one pair per sequence number);
//   - causality (single-writer registers): if a correct object reported
//     sequence number ℓ in round 1, write ℓ−1 completed before its reply,
//     hence before round 2 was sent, so its 2t+1 WRITE acknowledgers — minus
//     those Byzantine under F or not heard from in round 2 — must show
//     w ≥ ℓ−1 in round 2. A multi-writer register's writers discover their
//     sequence number from a quorum that may only have PRE-written ℓ−1, so
//     that inference is unsound there;
//   - prewrite support (multi-writer registers, replacing causality): every
//     pair a correct object reports in w completed its PREWRITE phase
//     (2t+1 acknowledgements) before the object could receive its WRITE —
//     the writer protocol orders the phases — and pw slots are monotone, so
//     for a round-1 w-report of an object correct under F, 2t+1 objects —
//     minus those Byzantine under F or not heard from in round 2 — must
//     show pw (or w) at or above it in round 2. This is what localizes a
//     fabricated high timestamp to its fabricator: no fault set exonerating
//     the liar survives, so λ(F) cannot be inflated beyond what genuine
//     certified pairs can dominate, which the read's termination relies on.
func (d *decider) consistentF(th quorum.Thresholds, views []srvView, f uint64, mw bool) bool {
	s := th.S
	d.valTS, d.valV = d.valTS[:0], d.valV[:0]
	maxR1 := int64(0)  // highest round-1 sequence number (SWMR causality)
	var maxW1 types.TS // highest round-1 w-report (MWMR prewrite support)
	for sid := 1; sid <= s; sid++ {
		if f&(1<<uint(sid)) != 0 {
			continue
		}
		v := &views[sid]
		if v.has1 && v.has2 {
			if v.w2.TS.Less(v.w1.TS) || v.pw2.TS.Less(v.pw1.TS) {
				return false
			}
		}
		if v.has1 {
			if !d.checkPair(v.pw1) || !d.checkPair(v.w1) {
				return false
			}
			if l := max64(v.pw1.TS.Seq, v.w1.TS.Seq); l > maxR1 {
				maxR1 = l
			}
			maxW1 = types.MaxTS(maxW1, v.w1.TS)
		}
		if v.has2 {
			if !d.checkPair(v.pw2) || !d.checkPair(v.w2) {
				return false
			}
		}
	}
	if mw {
		// Prewrite support (see above): the highest round-1 w-report among
		// objects correct under F must show 2t+1 objects at pw ≥ it in
		// round 2 (checking the maximum covers every smaller report, since
		// pw slots are monotone in the lexicographic order).
		if !maxW1.IsZero() {
			need := th.Refute()
			cnt := bits.OnesCount64(f)
			for sid := 1; sid <= s; sid++ {
				if f&(1<<uint(sid)) != 0 {
					continue
				}
				v := &views[sid]
				if !v.has2 || !v.pw2.TS.Less(maxW1) || !v.w2.TS.Less(maxW1) {
					cnt++
				}
			}
			if cnt < need {
				return false
			}
		}
		return true
	}
	// Causality: the strongest constraint comes from the highest round-1
	// sequence number ℓ among correct objects; its predecessor ℓ−1 must look
	// complete in round 2. Single-writer registers only (see above).
	if maxR1 >= 2 {
		need := th.Refute()
		cnt := bits.OnesCount64(f)
		for sid := 1; sid <= s; sid++ {
			if f&(1<<uint(sid)) != 0 {
				continue
			}
			v := &views[sid]
			if !v.has2 || v.w2.TS.Seq >= maxR1-1 {
				cnt++
			}
		}
		if cnt < need {
			return false
		}
	}
	return true
}

// ReadAcc is the allocation-free read accumulator: ONE accumulator drives
// BOTH query rounds of one register's regular read, folding (pw, w) state
// replies into a fixed per-object view table — proto.BitAcc's discipline
// applied to the decision procedure. Phase 1 collects the frozen round-1
// view (done at a quorum of S−t); BeginDecide switches to phase 2, whose
// replies feed the fault-set enumeration exactly as DecideAcc does. Reset
// recycles the accumulator and its decision scratch across reads, so a
// long-lived reader's steady state allocates nothing per read: the map
// accumulators put the 4-round read at 105 allocs/op against the adaptive
// write's 7, and the per-reply map traffic was most of the difference.
type ReadAcc struct {
	th quorum.Thresholds
	// MultiWriter selects the decision's consistency discipline, as on
	// DecideAcc. Set it before the decision round runs.
	MultiWriter bool
	views       []srvView
	m1, m2      uint64 // reply bitmasks per phase
	deciding    bool   // phase 2 (decision round) in progress
	done        bool
	choice      types.Pair
	d           decider
}

var _ proto.Accumulator = (*ReadAcc)(nil)

// NewReadAcc returns a reusable two-round read accumulator.
func NewReadAcc(th quorum.Thresholds) *ReadAcc {
	return &ReadAcc{th: th, views: make([]srvView, th.S+1)}
}

// Reset clears the accumulator for the next read, keeping the scratch.
func (a *ReadAcc) Reset() {
	for i := range a.views {
		a.views[i] = srvView{}
	}
	a.m1, a.m2 = 0, 0
	a.deciding, a.done = false, false
	a.choice = types.Pair{}
}

// BeginDecide freezes the round-1 view and switches the accumulator to the
// decision round. Call it between the two physical rounds.
func (a *ReadAcc) BeginDecide() { a.deciding = true }

// Add implements proto.Accumulator.
func (a *ReadAcc) Add(sid int, m types.Message) {
	if m.Kind != types.MsgState || sid < 1 || sid > a.th.S {
		return
	}
	bit := uint64(1) << uint(sid)
	v := &a.views[sid]
	if !a.deciding {
		if a.m1&bit != 0 {
			return
		}
		a.m1 |= bit
		v.has1, v.pw1, v.w1 = true, m.PW, m.W
		return
	}
	if a.done || a.m2&bit != 0 {
		return
	}
	a.m2 |= bit
	v.has2, v.pw2, v.w2 = true, m.PW, m.W
	if bits.OnesCount64(a.m2) < a.th.Refute() {
		return
	}
	if c, ok := a.d.decide(a.th, a.views, a.MultiWriter); ok {
		a.done = true
		a.choice = c
	}
}

// Done implements proto.Accumulator: a quorum in phase 1, a decision in
// phase 2.
func (a *ReadAcc) Done() bool {
	if !a.deciding {
		return bits.OnesCount64(a.m1) >= a.th.Quorum()
	}
	return a.done
}

// Choice returns the decision; valid only once the decision round is Done.
func (a *ReadAcc) Choice() types.Pair { return a.choice }

// MaxTS returns the largest timestamp among the pw/w states of both query
// rounds' replies — uncertified, see DecideAcc.MaxTS.
func (a *ReadAcc) MaxTS() types.TS {
	var best types.TS
	for sid := 1; sid <= a.th.S; sid++ {
		v := &a.views[sid]
		if v.has1 {
			best = types.MaxTS(best, types.MaxTS(v.pw1.TS, v.w1.TS))
		}
		if v.has2 {
			best = types.MaxTS(best, types.MaxTS(v.pw2.TS, v.w2.TS))
		}
	}
	return best
}

// WSupport returns how many distinct objects' WRITE-slot reports, in either
// query round, carry a timestamp at or above ts — the completeness evidence
// behind the adaptive read's write-back elision (see core.Reader.ReadPair
// and DecideAcc.WSupport).
func (a *ReadAcc) WSupport(ts types.TS) int {
	n := 0
	for sid := 1; sid <= a.th.S; sid++ {
		v := &a.views[sid]
		if (v.has1 && !v.w1.TS.Less(ts)) || (v.has2 && !v.w2.TS.Less(ts)) {
			n++
		}
	}
	return n
}

// forEachSubset invokes fn for every subset of {1..n} of size ≤ k, encoded
// as a bitmask with bit i set for element i.
func forEachSubset(n, k int, fn func(mask uint64)) {
	if n > 62 {
		panic("regular: object count too large for subset enumeration")
	}
	var rec func(start int, mask uint64, left int)
	rec = func(start int, mask uint64, left int) {
		fn(mask)
		if left == 0 {
			return
		}
		for i := start; i <= n; i++ {
			rec(i+1, mask|1<<uint(i), left-1)
		}
	}
	rec(1, 0, k)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
