package regular

import (
	"fmt"
	"math/rand"
	"testing"

	"robustatomic/internal/checker"
	"robustatomic/internal/quorum"
	"robustatomic/internal/server"
	"robustatomic/internal/sim"
	"robustatomic/internal/types"
)

func pair(ts int64, v string) types.Pair { return types.Pair{TS: types.At(ts), Val: types.Value(v)} }

func th(t *testing.T, s, tt int) quorum.Thresholds {
	t.Helper()
	out, err := quorum.NewThresholds(s, tt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// writeOp returns an OpFunc performing WritePair on the writer register.
func writeOp(thr quorum.Thresholds, p types.Pair) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		w := NewWriterAt(c, thr, types.WriterReg, 0, types.At(p.TS.Seq-1))
		if err := w.WritePair(p); err != nil {
			return types.Bottom, err
		}
		return types.Bottom, nil
	}
}

// readOp returns an OpFunc performing a full read.
func readOp(thr quorum.Thresholds) sim.OpFunc {
	return func(c *sim.Client) (types.Value, error) {
		return NewReader(c, thr, types.WriterReg).Read()
	}
}

func mustRun(t *testing.T, s *sim.Sim, op *sim.Op) types.Value {
	t.Helper()
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	v, err := op.Result()
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestReadInitialBottom(t *testing.T) {
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if v := mustRun(t, s, rd); !v.IsBottom() {
		t.Errorf("initial read = %q, want ⊥", v)
	}
	if rd.Rounds() != 2 {
		t.Errorf("read rounds = %d, want 2", rd.Rounds())
	}
}

func TestWriteThenRead(t *testing.T) {
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	w := s.Spawn("w", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a")))
	mustRun(t, s, w)
	if w.Rounds() != 2 {
		t.Errorf("write rounds = %d, want 2", w.Rounds())
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q, want a", v)
	}
}

func TestReadSeesLatestOfMany(t *testing.T) {
	thr := th(t, 7, 2)
	s := sim.New(sim.Config{Servers: 7})
	defer s.Close()
	for i := 1; i <= 5; i++ {
		w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, types.Value(fmt.Sprintf("v%d", i)),
			writeOp(thr, pair(int64(i), fmt.Sprintf("v%d", i))))
		mustRun(t, s, w)
	}
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if v := mustRun(t, s, rd); v != "v5" {
		t.Errorf("read = %q, want v5", v)
	}
}

// byzBehaviors enumerates the Byzantine behaviors exercised against reads.
func byzBehaviors(s *sim.Sim, seed int64) map[string]func(sid int) server.Behavior {
	return map[string]func(int) server.Behavior{
		"silent":  func(int) server.Behavior { return server.Silent{} },
		"garbage": func(int) server.Behavior { return server.Garbage{} },
		"garbage-low": func(int) server.Behavior {
			return server.Garbage{Level: 1, Val: "low"}
		},
		"stale": func(sid int) server.Behavior {
			return &server.Stale{Snap: s.Snapshot(sid)}
		},
		"equivocate": func(sid int) server.Behavior {
			return server.Equivocate{Readers: &server.Stale{Snap: s.Snapshot(sid)}}
		},
		"replay": func(int) server.Behavior {
			return &server.ReplayOnly{Rand: rand.New(rand.NewSource(seed))}
		},
	}
}

func TestReadDespiteByzantine(t *testing.T) {
	// After a complete write, any t Byzantine objects with any behavior must
	// not prevent the read from returning the written value, and every read
	// round must stay live.
	for _, tt := range []int{1, 2, 3} {
		S := 3*tt + 1
		thr := th(t, S, tt)
		for name := range byzBehaviors(nil, 0) {
			t.Run(fmt.Sprintf("t=%d/%s", tt, name), func(t *testing.T) {
				s := sim.New(sim.Config{Servers: S})
				defer s.Close()
				mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a"))))
				// Snapshot-based behaviors freeze the state holding "a";
				// then write "b" and make the read fight the adversary.
				behaviors := byzBehaviors(s, 42)
				mk := behaviors[name]
				byz := make([]server.Behavior, 0, tt)
				for i := 1; i <= tt; i++ {
					byz = append(byz, mk(i))
				}
				mustRun(t, s, s.Spawn("w2", types.Writer, checker.OpWrite, "b", writeOp(thr, pair(2, "b"))))
				for i := 1; i <= tt; i++ {
					s.SetByzantine(i, byz[i-1])
				}
				rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
				for !rd.Done() {
					if err := s.CheckLiveness(rd); err != nil {
						t.Fatalf("liveness: %v", err)
					}
				}
				v, err := rd.Result()
				if err != nil {
					t.Fatal(err)
				}
				if v != "b" {
					t.Errorf("read = %q, want b", v)
				}
			})
		}
	}
}

func TestReadConcurrentWithCrashedPreWrite(t *testing.T) {
	// Writer crashes mid-PREWRITE of ts=2 (reaching y < t+1 correct
	// objects); reads must return "a" (ts=1): ts=2 was never completable.
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a"))))
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", writeOp(thr, pair(2, "b")))
	s.Step(w2, 1) // PREWRITE reaches only object 1
	s.Crash(w2)
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if v := mustRun(t, s, rd); v != "a" {
		t.Errorf("read = %q, want a (ts=2 incomplete, not completable)", v)
	}
}

func TestReadConcurrentWithCrashedCompletePreWrite(t *testing.T) {
	// Writer completes PREWRITE(2) on a full quorum then crashes before any
	// WRITE: t+1 correct objects hold pw=(2,b) exactly, so (2,b) is
	// certified and the read may return it (the write is concurrent —
	// regularity allows either; our rule picks the certified maximum).
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a"))))
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", writeOp(thr, pair(2, "b")))
	s.Step(w2, 1, 2, 3) // PREWRITE quorum; WRITE round starts
	s.Crash(w2)
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	if v := mustRun(t, s, rd); v != "b" {
		t.Errorf("read = %q, want b (pw-certified)", v)
	}
}

func TestByzantineCannotFabricateValue(t *testing.T) {
	// t Byzantine objects agree on a fabricated pair; with only t exact
	// reporters it is never certified, and the fabricated level is not
	// completable, so reads return the genuine value.
	for _, tt := range []int{1, 2, 3} {
		S := 3*tt + 1
		thr := th(t, S, tt)
		s := sim.New(sim.Config{Servers: S})
		mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a"))))
		for i := 1; i <= tt; i++ {
			s.SetByzantine(i, server.Garbage{Level: 99, Val: "evil"})
		}
		rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
		if v := mustRun(t, s, rd); v != "a" {
			t.Errorf("t=%d: read = %q, want a", tt, v)
		}
		s.Close()
	}
}

func TestStaleQuorumDoesNotFoolReader(t *testing.T) {
	// The adversarial schedule from the safety analysis: deliver only t
	// Byzantine (stale) + t slow correct replies first; the reader must
	// keep waiting, then decide correctly.
	tt := 2
	S := 3*tt + 1
	thr := th(t, S, tt)
	s := sim.New(sim.Config{Servers: S})
	defer s.Close()
	mustRun(t, s, s.Spawn("w1", types.Writer, checker.OpWrite, "a", writeOp(thr, pair(1, "a"))))
	snaps := make([][]byte, S+1)
	for i := 1; i <= S; i++ {
		snaps[i] = s.Snapshot(i)
	}
	// Write "b" on a quorum excluding objects 3, 4 (slow correct).
	w2 := s.Spawn("w2", types.Writer, checker.OpWrite, "b", writeOp(thr, pair(2, "b")))
	s.Step(w2, 1, 2, 5, 6, 7)
	s.Step(w2, 1, 2, 5, 6, 7)
	if !w2.Done() {
		t.Fatal("write(b) not complete")
	}
	// Objects 1, 2 turn Byzantine and pretend to still hold "a".
	s.SetByzantine(1, &server.Stale{Snap: snaps[1]})
	s.SetByzantine(2, &server.Stale{Snap: snaps[2]})
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr))
	// Round 1: deliver the misleading prefix first — byz 1,2 (stale "a") +
	// slow correct 3,4 (genuinely holding only "a") — then one fresh reply
	// to complete the quorum of 5.
	s.Step(rd, 1, 2, 3, 4)
	if _, seq, _ := rd.CurrentRound(); seq != 1 {
		t.Fatal("round 1 terminated below quorum")
	}
	s.Step(rd, 5)
	if _, seq, _ := rd.CurrentRound(); seq != 2 {
		t.Fatal("round 1 did not terminate at quorum")
	}
	// Round 2, same misleading order: with replies {1,2,3,4,5} the fault
	// assignment F={1,2} keeps level 2 possibly-complete (|F| + s5 + two
	// silent = 5) while (2,b) has a single reporter, so the reader must not
	// decide "a"; with {…,6} the pair (2,b) still has only 2 ≤ t reporters,
	// so it cannot be proven genuine either. No decision before s7.
	s.Step(rd, 1, 2, 3, 4, 5)
	if _, seq, _ := rd.CurrentRound(); seq != 2 {
		t.Fatal("reader decided on the misleading round-2 prefix")
	}
	s.Step(rd, 6)
	if _, seq, _ := rd.CurrentRound(); seq != 2 {
		t.Fatal("reader decided while (2,b) was unprovable")
	}
	// The last correct reply makes (2,b) genuine under every fault set.
	if v := mustRun(t, s, rd); v != "b" {
		t.Errorf("read = %q, want b", v)
	}
}

func TestWritePairValidation(t *testing.T) {
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	op := s.Spawn("w", types.Writer, checker.OpWrite, "a", func(c *sim.Client) (types.Value, error) {
		w := NewWriterAt(c, thr, types.WriterReg, 0, types.At(5))
		if err := w.WritePair(pair(3, "old")); err == nil {
			return types.Bottom, fmt.Errorf("non-monotone WritePair accepted")
		}
		if err := w.Write("x"); err != nil {
			return types.Bottom, err
		}
		if w.LastTS() != types.At(6) {
			return types.Bottom, fmt.Errorf("LastTS = %v, want 6", w.LastTS())
		}
		if err := NewWriter(c, thr, types.WriterReg).Write(types.Bottom); err == nil {
			return types.Bottom, fmt.Errorf("⊥ write accepted")
		}
		return types.Bottom, nil
	})
	if err := s.RunOp(op); err != nil {
		t.Fatal(err)
	}
	if _, err := op.Result(); err != nil {
		t.Error(err)
	}
}

func TestNonDefaultRegisterIsolation(t *testing.T) {
	// Writes to a per-reader register instance must not disturb the
	// writer's register, and are readable back through the same instance.
	thr := th(t, 4, 1)
	s := sim.New(sim.Config{Servers: 4})
	defer s.Close()
	reg := types.ReaderReg(2)
	op := s.Spawn("wb", types.Reader(2), checker.OpWrite, "x", func(c *sim.Client) (types.Value, error) {
		return types.Bottom, NewWriterAt(c, thr, reg, 0, types.At(6)).WritePair(pair(7, "x"))
	})
	mustRun(t, s, op)
	rd := s.Spawn("rd", types.Reader(1), checker.OpRead, types.Bottom, func(c *sim.Client) (types.Value, error) {
		p, err := NewReader(c, thr, reg).ReadPair()
		if err != nil {
			return types.Bottom, err
		}
		if p != pair(7, "x") {
			return types.Bottom, fmt.Errorf("reader reg pair = %v", p)
		}
		return NewReader(c, thr, types.WriterReg).Read()
	})
	if v := mustRun(t, s, rd); !v.IsBottom() {
		t.Errorf("writer register polluted: %q", v)
	}
}

// TestRandomizedSequentialWritesConcurrentReads model-checks regularity
// under seeded random schedules: sequential writes (single-writer
// discipline), concurrent reads, random Byzantine subsets and behaviors.
func TestRandomizedSequentialWritesConcurrentReads(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		rng := rand.New(rand.NewSource(seed ^ 0x5eed))
		tt := 1 + rng.Intn(2)
		S := 3*tt + 1
		thr := th(t, S, tt)
		h := &checker.History{}
		s := sim.New(sim.Config{Servers: S, History: h})
		nByz := rng.Intn(tt + 1)
		perm := rng.Perm(S)
		for i := 0; i < nByz; i++ {
			sid := perm[i] + 1
			switch rng.Intn(3) {
			case 0:
				s.SetByzantine(sid, server.Silent{})
			case 1:
				s.SetByzantine(sid, server.Garbage{Level: int64(rng.Intn(10)), Val: "evil"})
			case 2:
				s.SetByzantine(sid, &server.ReplayOnly{Rand: rng})
			}
		}
		readers := []*sim.Op{
			s.Spawn("r1", types.Reader(1), checker.OpRead, types.Bottom, readOp(thr)),
			s.Spawn("r2", types.Reader(2), checker.OpRead, types.Bottom, readOp(thr)),
		}
		// Interleave: writes run to completion one at a time, with random
		// reader progress in between.
		for i := 1; i <= 3; i++ {
			p := pair(int64(i), fmt.Sprintf("v%d", i))
			w := s.Spawn(fmt.Sprintf("w%d", i), types.Writer, checker.OpWrite, p.Val,
				func(c *sim.Client) (types.Value, error) {
					return types.Bottom, NewWriterAt(c, thr, types.WriterReg, 0, types.At(p.TS.Seq-1)).WritePair(p)
				})
			if err := s.RunConcurrent(seed+int64(i), w, readers[0], readers[1]); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for _, rd := range readers {
			if !rd.Done() {
				if err := s.RunOp(rd); err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
			}
		}
		if err := checker.CheckRegular(h); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s.Close()
	}
}
