package regular

import (
	"testing"

	"robustatomic/internal/quorum"
	"robustatomic/internal/types"
)

// view builds a per-object round view from (sid, pw, w) triples.
func view(entries ...[3]interface{}) map[int]types.Message {
	out := make(map[int]types.Message, len(entries))
	for _, e := range entries {
		out[e[0].(int)] = types.Message{Kind: types.MsgState, PW: e[1].(types.Pair), W: e[2].(types.Pair)}
	}
	return out
}

func p(ts int64, v string) types.Pair { return types.Pair{TS: types.At(ts), Val: types.Value(v)} }

var bot = types.BottomPair

func thr4(t *testing.T) quorum.Thresholds {
	t.Helper()
	th, err := quorum.NewThresholds(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	return th
}

func TestDecideAllBottom(t *testing.T) {
	th := thr4(t)
	r := view([3]interface{}{1, bot, bot}, [3]interface{}{2, bot, bot}, [3]interface{}{3, bot, bot})
	c, ok := decide(th, r, r, false)
	if !ok || !c.IsBottom() {
		t.Fatalf("decide = %v, %v", c, ok)
	}
}

func TestDecideCompleteWriteVisible(t *testing.T) {
	th := thr4(t)
	// Write (1,a) completed on a full quorum; one object lags.
	r := view(
		[3]interface{}{1, p(1, "a"), p(1, "a")},
		[3]interface{}{2, p(1, "a"), p(1, "a")},
		[3]interface{}{3, p(1, "a"), p(1, "a")},
		[3]interface{}{4, bot, bot},
	)
	c, ok := decide(th, r, r, false)
	if !ok || c != p(1, "a") {
		t.Fatalf("decide = %v, %v", c, ok)
	}
}

func TestDecideGarbageNeverReturned(t *testing.T) {
	th := thr4(t)
	// One Byzantine object reports a fabricated huge pair; it can never be
	// genuine under the fault set containing its sole reporter.
	r := view(
		[3]interface{}{1, p(99, "evil"), p(99, "evil")},
		[3]interface{}{2, p(1, "a"), p(1, "a")},
		[3]interface{}{3, p(1, "a"), p(1, "a")},
		[3]interface{}{4, p(1, "a"), p(1, "a")},
	)
	c, ok := decide(th, r, r, false)
	if !ok || c != p(1, "a") {
		t.Fatalf("decide = %v, %v (garbage must lose)", c, ok)
	}
}

func TestDecideUndecidableSplitView(t *testing.T) {
	// The seed-7 stuck view from the model checker (t=1): level 1 carried
	// by a single reporter while a fabricated level sits above — under
	// F={s4} the pair (1,v1) is not genuine, and under F={s1} nothing
	// above ⊥ is required... but with s1 claiming (3,evil) in ROUND 1 the
	// causality constraint needs 2t+1 round-2 objects at w ≥ 2 for any F
	// excluding s1, which fails — so F∌s1 is inconsistent and ⊥ decides.
	th := thr4(t)
	r1 := view(
		[3]interface{}{1, p(3, "evil"), p(3, "evil")},
		[3]interface{}{2, bot, bot},
		[3]interface{}{3, bot, bot},
		[3]interface{}{4, p(1, "v1"), p(1, "v1")},
	)
	c, ok := decide(th, r1, r1, false)
	if !ok {
		t.Fatal("full split view undecided")
	}
	// Consistency analysis: any F excluding s1 makes its round-1 level-3
	// report genuine, implying write 2 completed before round 2 — but at
	// most s1 itself shows w ≥ 2 in round 2, so only F = {s1} (and
	// subsets... F=∅ is inconsistent too) survives; under F = {s1},
	// (1,v1) is genuine via s4 and λ = 1 — (1,v1) is the sound choice.
	if c != p(1, "v1") {
		t.Fatalf("decide = %v, want (1,v1)", c)
	}
}

func TestDecideCausalityExcludesLateFabrication(t *testing.T) {
	// Same split view, but the level-3 evidence appears only in ROUND 2:
	// now the run where s4 fabricated (1,v1) and the writer advanced late
	// is consistent (F={s4}), so (1,v1) must NOT be returned; and under
	// F={s2} or F={s3} the write(1) could never have completed before the
	// read (its acknowledgers would show w ≥ 1 in both rounds) — ⊥ is the
	// only safe and correct decision.
	th := thr4(t)
	r1 := view(
		[3]interface{}{1, bot, bot},
		[3]interface{}{2, bot, bot},
		[3]interface{}{3, bot, bot},
		[3]interface{}{4, p(1, "v1"), p(1, "v1")},
	)
	r2 := view(
		[3]interface{}{1, p(3, "evil"), p(3, "evil")},
		[3]interface{}{2, bot, bot},
		[3]interface{}{3, bot, bot},
		[3]interface{}{4, p(1, "v1"), p(1, "v1")},
	)
	c, ok := decide(th, r1, r2, false)
	if !ok {
		t.Fatal("undecided")
	}
	if c != bot {
		t.Fatalf("decide = %v, want ⊥ (neither (1,v1) nor (3,evil) is provably genuine)", c)
	}
}

func TestDecideInsufficientReplies(t *testing.T) {
	th := thr4(t)
	r := view([3]interface{}{1, bot, bot}, [3]interface{}{2, bot, bot})
	// Fewer than 2t+1 round-2 replies never decide (DecideAcc gates on it,
	// but decide itself must also stay conservative: silent=2 keeps every
	// level possible).
	acc := NewDecideAcc(th, r)
	acc.Add(1, types.Message{Kind: types.MsgState, PW: bot, W: bot})
	acc.Add(2, types.Message{Kind: types.MsgState, PW: bot, W: bot})
	if acc.Done() {
		t.Fatal("decided below 2t+1 round-2 replies")
	}
}

func TestDecideMonotoneNonReporterRejected(t *testing.T) {
	// An object whose round-2 state regressed below round 1 incriminates
	// itself: every consistent F contains it, so its lone report cannot
	// certify anything.
	th := thr4(t)
	r1 := view(
		[3]interface{}{1, p(2, "x"), p(2, "x")},
		[3]interface{}{2, p(1, "a"), p(1, "a")},
		[3]interface{}{3, p(1, "a"), p(1, "a")},
		[3]interface{}{4, p(1, "a"), p(1, "a")},
	)
	r2 := view(
		[3]interface{}{1, bot, bot}, // regression: Byzantine for sure
		[3]interface{}{2, p(1, "a"), p(1, "a")},
		[3]interface{}{3, p(1, "a"), p(1, "a")},
		[3]interface{}{4, p(1, "a"), p(1, "a")},
	)
	c, ok := decide(th, r1, r2, false)
	if !ok || c != p(1, "a") {
		t.Fatalf("decide = %v, %v", c, ok)
	}
}

func TestDecideValueConflictIncriminates(t *testing.T) {
	// Two objects reporting different values at the same timestamp cannot
	// both be correct; fault sets excluding both are inconsistent and the
	// decision still goes through via the certified majority.
	th, err := quorum.NewThresholds(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	r := view(
		[3]interface{}{1, p(1, "fake"), p(1, "fake")},
		[3]interface{}{2, p(1, "real"), p(1, "real")},
		[3]interface{}{3, p(1, "real"), p(1, "real")},
		[3]interface{}{4, p(1, "real"), p(1, "real")},
		[3]interface{}{5, p(1, "real"), p(1, "real")},
		[3]interface{}{6, p(1, "real"), p(1, "real")},
		[3]interface{}{7, p(1, "fake"), p(1, "fake")},
	)
	c, ok := decide(th, r, r, false)
	if !ok || c != p(1, "real") {
		t.Fatalf("decide = %v, %v", c, ok)
	}
}

func TestDecideDisjointConflictsStarve(t *testing.T) {
	// The captured AREAD2 flake, reduced to its decision-procedure core: a
	// reader identity that restarts its write-back sequence count re-issues
	// timestamps with a different value, and objects keep whichever write
	// they saw first — so correct objects end up durably disagreeing on a
	// timestamp. One such conflict pair spends one unit of the fault budget;
	// TWO DISJOINT pairs on the same register exceed t=1, every |F| ≤ t is
	// inconsistent, and the accumulator never fires even with all S replies
	// in ("all replies in, accumulator unsatisfied").
	th := thr4(t)
	r := view(
		[3]interface{}{1, p(1, "a"), p(1, "a")},
		[3]interface{}{2, p(1, "b"), p(1, "b")},
		[3]interface{}{3, p(2, "c"), p(2, "c")},
		[3]interface{}{4, p(2, "d"), p(2, "d")},
	)
	for _, mw := range []bool{false, true} {
		if _, ok := decide(th, r, r, mw); ok {
			t.Fatalf("mw=%v: decided over two disjoint equal-TS value conflicts", mw)
		}
		acc := NewDecideAcc(th, r)
		acc.MultiWriter = mw
		for sid, m := range r {
			acc.Add(sid, m)
		}
		if acc.Done() {
			t.Fatalf("mw=%v: accumulator satisfied despite starved decision", mw)
		}
	}

	// Contrast: a SINGLE conflict pair stays within the budget — the fault
	// set containing one conflicting object is consistent and the certified
	// majority still decides.
	single := view(
		[3]interface{}{1, p(1, "a"), p(1, "a")},
		[3]interface{}{2, p(1, "b"), p(1, "b")},
		[3]interface{}{3, p(1, "a"), p(1, "a")},
		[3]interface{}{4, p(1, "a"), p(1, "a")},
	)
	c, ok := decide(th, single, single, false)
	if !ok || c != p(1, "a") {
		t.Fatalf("single conflict: decide = %v, %v, want (1,a)", c, ok)
	}
}

func TestDecideAccMaxTS(t *testing.T) {
	// MaxTS spans the pw/w states of BOTH rounds: a crashed predecessor's
	// prewrite may be visible on one object in one round only, and resuming
	// below it would re-issue its sequence number.
	th := thr4(t)
	r1 := view(
		[3]interface{}{1, p(5, "x"), p(3, "x")},
		[3]interface{}{2, p(1, "a"), p(1, "a")},
	)
	acc := NewDecideAcc(th, r1)
	acc.Add(3, types.Message{Kind: types.MsgState, PW: p(7, "y"), W: p(2, "y")})
	if got := acc.MaxTS(); got != types.At(7) {
		t.Fatalf("MaxTS = %v, want %v", got, types.At(7))
	}
}

func TestForEachSubsetCounts(t *testing.T) {
	count := 0
	forEachSubset(4, 2, func(uint64) { count++ })
	// C(4,0)+C(4,1)+C(4,2) = 1+4+6 = 11.
	if count != 11 {
		t.Fatalf("subsets = %d, want 11", count)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized enumeration accepted")
		}
	}()
	forEachSubset(63, 1, func(uint64) {})
}
