package persist

import (
	"fmt"
	"sync/atomic"
	"testing"

	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// BenchmarkWALAppend measures the raw per-record append cost at each fsync
// mode, sequentially and with concurrent appenders (where FsyncAlways's
// group commit amortizes the fsync across the batch).
func BenchmarkWALAppend(b *testing.B) {
	req := wire.Request{
		From: types.Writer,
		Msg:  types.Message{Kind: types.MsgWrite, Pair: types.Pair{TS: types.At(1), Val: "benchmark-payload-benchmark-payload"}},
	}
	for _, mode := range []FsyncMode{FsyncOff, FsyncBatch, FsyncAlways} {
		b.Run(fmt.Sprintf("fsync=%s/seq", mode), func(b *testing.B) {
			e, err := Open(b.TempDir(), Options{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := e.Recover(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r := req
				r.Msg.Pair.TS = types.At(int64(i + 1))
				if err := e.Append(r); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("fsync=%s/par", mode), func(b *testing.B) {
			e, err := Open(b.TempDir(), Options{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			if _, err := e.Recover(); err != nil {
				b.Fatal(err)
			}
			var ctr int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					r := req
					r.Msg.Pair.TS = types.At(atomic.AddInt64(&ctr, 1))
					if err := e.Append(r); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
