package persist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"os"
	"reflect"
	"testing"

	"robustatomic/internal/server"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// writeLegacyWAL fabricates a PR 3-era WAL generation file: one gob stream
// of legacyRequest envelopes (scalar timestamps), framed exactly as wal.go
// frames records.
func writeLegacyWAL(t *testing.T, path string, reqs []legacyRequest) {
	t.Helper()
	var stream bytes.Buffer
	enc := gob.NewEncoder(&stream)
	var file []byte
	off := 0
	for _, req := range reqs {
		if err := enc.Encode(req); err != nil {
			t.Fatal(err)
		}
		payload := stream.Bytes()[off:]
		off = stream.Len()
		file = appendFrame(file, payload)
	}
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}
}

// legacyServerSnapshot hand-rolls a version-0x02 (scalar-timestamp)
// server.Store snapshot: the exact byte layout PR 3 daemons persisted.
func legacyServerSnapshot(regs []struct {
	id     types.RegID
	pw, w  legacyPair
	tokens [2]types.Token
}) []byte {
	b := []byte{0x02}
	b = binary.AppendUvarint(b, uint64(len(regs)))
	appendLegacyPair := func(b []byte, p legacyPair) []byte {
		b = binary.AppendUvarint(b, uint64(p.TS))
		b = binary.AppendUvarint(b, uint64(len(p.Val)))
		return append(b, string(p.Val)...)
	}
	for _, r := range regs {
		b = binary.AppendUvarint(b, uint64(r.id.Class))
		b = binary.AppendUvarint(b, uint64(r.id.Idx))
		b = appendLegacyPair(b, r.pw)
		b = appendLegacyPair(b, r.w)
		b = binary.AppendUvarint(b, uint64(r.tokens[0]))
		b = binary.AppendUvarint(b, uint64(r.tokens[1]))
	}
	return b
}

func legacyWrite(reg int, ts int64, v string) legacyRequest {
	return legacyRequest{
		From: types.Writer,
		Reg:  reg,
		Msg:  legacyMessage{Kind: types.MsgWrite, Pair: legacyPair{TS: ts, Val: types.Value(v)}},
	}
}

// TestLegacyWALReplay boots an engine over a data dir whose only WAL
// generation was written by pre-multi-writer software and verifies every
// record replays, decoding scalar timestamps as (Seq, WID 0).
func TestLegacyWALReplay(t *testing.T) {
	dir := t.TempDir()
	writeLegacyWAL(t, walPath(dir, 1), []legacyRequest{
		{From: types.Writer, Reg: 0, Msg: legacyMessage{Kind: types.MsgPreWrite, Pair: legacyPair{TS: 1, Val: "a"}}},
		legacyWrite(0, 1, "a"),
		legacyWrite(0, 2, "b"),
		legacyWrite(3, 7, "shard-three"),
		// A multiplexed bundle, the shape write-backs arrive in.
		{From: types.Reader(1), Reg: 0, Msg: legacyMessage{
			Kind: types.MsgMux,
			Sub: []legacySubMsg{{
				Reg: types.ReaderReg(1),
				Msg: legacyMessage{Kind: types.MsgWriteBack, Pair: legacyPair{TS: 1, Val: "2|b"}, Token: 9},
			}},
		}},
	})
	e, stores := open(t, dir, Options{Mode: FsyncOff})
	defer e.Close()
	if got := stores[0].Reg(types.WriterReg).W; got != pair(2, "b") {
		t.Errorf("reg 0 w = %v, want %v", got, pair(2, "b"))
	}
	if got := stores[3].Reg(types.WriterReg).W; got != pair(7, "shard-three") {
		t.Errorf("reg 3 w = %v, want %v", got, pair(7, "shard-three"))
	}
	wb := stores[0].Reg(types.ReaderReg(1))
	if wb.W != pair(1, "2|b") || wb.TokenW != 9 {
		t.Errorf("write-back register = %+v", wb)
	}
	if e.Records() != 5 {
		t.Errorf("replayed %d records, want 5", e.Records())
	}
}

// TestLegacyDataDirThenNewWrites is the full PR 3 upgrade drill: a legacy
// snapshot plus a legacy WAL generation replay cleanly, new multi-writer
// records append on top in the current format, and a further recovery
// replays the mixed-format directory — each generation probed and decoded
// independently.
func TestLegacyDataDirThenNewWrites(t *testing.T) {
	dir := t.TempDir()
	snap := legacyServerSnapshot([]struct {
		id     types.RegID
		pw, w  legacyPair
		tokens [2]types.Token
	}{
		{id: types.WriterReg, pw: legacyPair{TS: 3, Val: "snap"}, w: legacyPair{TS: 3, Val: "snap"}},
		{id: types.ReaderReg(2), pw: legacyPair{TS: 1, Val: "3|snap"}, w: legacyPair{TS: 1, Val: "3|snap"}},
	})
	container := []byte{storesVersion}
	container = binary.AppendUvarint(container, 1)
	container = binary.AppendUvarint(container, 0) // instance 0
	container = binary.AppendUvarint(container, uint64(len(snap)))
	container = append(container, snap...)
	if err := writeSnapshotFile(snapPath(dir, 1), container); err != nil {
		t.Fatal(err)
	}
	writeLegacyWAL(t, walPath(dir, 1), []legacyRequest{legacyWrite(0, 4, "post-snap")})

	// First boot: legacy snapshot + legacy WAL replay.
	e1, stores := open(t, dir, Options{Mode: FsyncOff})
	if got := stores[0].Reg(types.WriterReg).W; got != pair(4, "post-snap") {
		t.Fatalf("recovered w = %v, want %v", got, pair(4, "post-snap"))
	}
	if got := stores[0].Reg(types.ReaderReg(2)).W; got != pair(1, "3|snap") {
		t.Fatalf("recovered write-back = %v", got)
	}
	// New software appends multi-writer records in the current format.
	mwPair := types.Pair{TS: types.TS{Seq: 5, WID: 3}, Val: "from-w3"}
	if err := e1.Append(wire.Request{
		From: types.WriterID(3),
		Reg:  0,
		Msg:  types.Message{Kind: types.MsgWrite, Pair: mwPair},
	}); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second boot: legacy snapshot + legacy generation + new generation.
	e2, stores := open(t, dir, Options{Mode: FsyncOff})
	defer e2.Close()
	if got := stores[0].Reg(types.WriterReg).W; got != mwPair {
		t.Errorf("mixed-generation recovery w = %v, want %v", got, mwPair)
	}
}

// TestLegacyRequestRoundTrip pins the mirror conversion: a legacy envelope
// decodes to exactly the request current software would build for the same
// operation, with every scalar timestamp mapped to (Seq, WID 0).
func TestLegacyRequestRoundTrip(t *testing.T) {
	lr := legacyRequest{
		From: types.Reader(2),
		Reg:  5,
		Msg: legacyMessage{
			Kind:    types.MsgMux,
			Seq:     11,
			Token:   7,
			TokenPW: 8,
			Pair:    legacyPair{TS: 9, Val: "v"},
			PW:      legacyPair{TS: 8, Val: "p"},
			W:       legacyPair{TS: 9, Val: "v"},
			Sub: []legacySubMsg{
				{Reg: types.WriterReg, Msg: legacyMessage{Kind: types.MsgWrite, Pair: legacyPair{TS: 2, Val: "x"}}},
			},
		},
	}
	got := lr.request()
	want := wire.Request{
		From: types.Reader(2),
		Reg:  5,
		Msg: types.Message{
			Kind:    types.MsgMux,
			Seq:     11,
			Token:   7,
			TokenPW: 8,
			Pair:    pair(9, "v"),
			PW:      pair(8, "p"),
			W:       pair(9, "v"),
			Sub: []types.SubMsg{
				{Reg: types.WriterReg, Msg: types.Message{Kind: types.MsgWrite, Pair: pair(2, "x")}},
			},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("conversion mismatch:\n%+v\n%+v", got, want)
	}
}

// TestServerSnapshotVersionCompat pins both directions of the store codec:
// current snapshots round-trip multi-writer timestamps, and version-0x02
// bytes restore with WID 0.
func TestServerSnapshotVersionCompat(t *testing.T) {
	st := server.NewStore()
	st.Handle(types.WriterID(4), types.Message{Kind: types.MsgPreWrite, Pair: types.Pair{TS: types.TS{Seq: 6, WID: 4}, Val: "mw"}})
	st.Handle(types.WriterID(4), types.Message{Kind: types.MsgWrite, Pair: types.Pair{TS: types.TS{Seq: 6, WID: 4}, Val: "mw"}})
	snap, err := st.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rt := server.NewStore()
	if err := rt.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := rt.Reg(types.WriterReg).W; got != (types.Pair{TS: types.TS{Seq: 6, WID: 4}, Val: "mw"}) {
		t.Errorf("multi-writer round trip = %v", got)
	}

	legacy := legacyServerSnapshot([]struct {
		id     types.RegID
		pw, w  legacyPair
		tokens [2]types.Token
	}{{id: types.WriterReg, pw: legacyPair{TS: 2, Val: "old"}, w: legacyPair{TS: 2, Val: "old"}, tokens: [2]types.Token{1, 2}}})
	lt := server.NewStore()
	if err := lt.Restore(legacy); err != nil {
		t.Fatal(err)
	}
	got := lt.Reg(types.WriterReg)
	if got.W != pair(2, "old") || got.PW != pair(2, "old") || got.TokenPW != 1 || got.TokenW != 2 {
		t.Errorf("legacy restore = %+v", got)
	}
}
