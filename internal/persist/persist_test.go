package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"robustatomic/internal/server"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

func pair(ts int64, v string) types.Pair { return types.Pair{TS: types.At(ts), Val: types.Value(v)} }

func writeReq(reg int, ts int64, v string) wire.Request {
	return wire.Request{
		From: types.Writer,
		Reg:  reg,
		Msg:  types.Message{Kind: types.MsgWrite, Pair: pair(ts, v)},
	}
}

// open opens an engine and recovers it, failing the test on error.
func open(t *testing.T, dir string, o Options) (*Engine, map[int]*server.Store) {
	t.Helper()
	e, err := Open(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	stores, err := e.Recover()
	if err != nil {
		t.Fatal(err)
	}
	return e, stores
}

// newestWAL returns the path of the highest-generation WAL file.
func newestWAL(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*"+walSuffix))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no wal files in %s (%v)", dir, err)
	}
	sort.Strings(paths)
	return paths[len(paths)-1]
}

func TestParseFsyncMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncMode
	}{{"always", FsyncAlways}, {"batch", FsyncBatch}, {"", FsyncBatch}, {"off", FsyncOff}} {
		got, err := ParseFsyncMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseFsyncMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got, tc.in)
		}
	}
	if _, err := ParseFsyncMode("sometimes"); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestRecoverEmptyDir(t *testing.T) {
	e, stores := open(t, t.TempDir(), Options{})
	defer e.Close()
	if len(stores) != 0 {
		t.Errorf("fresh dir recovered %d instances", len(stores))
	}
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	for _, mode := range []FsyncMode{FsyncAlways, FsyncBatch, FsyncOff} {
		t.Run(mode.String(), func(t *testing.T) {
			dir := t.TempDir()
			e, _ := open(t, dir, Options{Mode: mode})
			for reg := 0; reg < 3; reg++ {
				for ts := int64(1); ts <= 5; ts++ {
					if err := e.Append(writeReq(reg, ts, fmt.Sprintf("r%d-v%d", reg, ts))); err != nil {
						t.Fatal(err)
					}
				}
			}
			// A mux record exercises the nested-message path.
			if err := e.Append(wire.Request{From: types.Reader(2), Reg: 1, Msg: types.Message{
				Kind: types.MsgMux,
				Sub: []types.SubMsg{{Reg: types.ReaderReg(2), Msg: types.Message{
					Kind: types.MsgWriteBack, Pair: pair(9, "wb"),
				}}},
			}}); err != nil {
				t.Fatal(err)
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}

			e2, stores := open(t, dir, Options{Mode: mode})
			defer e2.Close()
			if len(stores) != 3 {
				t.Fatalf("recovered %d instances, want 3", len(stores))
			}
			for reg := 0; reg < 3; reg++ {
				got := stores[reg].Reg(types.WriterReg).W
				if want := pair(5, fmt.Sprintf("r%d-v5", reg)); got != want {
					t.Errorf("instance %d: W = %v, want %v", reg, got, want)
				}
			}
			if got := stores[1].Reg(types.ReaderReg(2)).W; got != pair(9, "wb") {
				t.Errorf("mux record not replayed: %v", got)
			}
			if e2.Records() != 16 {
				t.Errorf("Records() = %d, want 16", e2.Records())
			}
		})
	}
}

// TestCrashWithoutCloseRecovers abandons the engine (no Close, no final
// fsync) the way a killed process would: every acknowledged append must
// still replay, because records are written to the OS before Append
// returns in every mode.
func TestCrashWithoutCloseRecovers(t *testing.T) {
	dir := t.TempDir()
	e, _ := open(t, dir, Options{Mode: FsyncOff})
	for ts := int64(1); ts <= 20; ts++ {
		if err := e.Append(writeReq(0, ts, "v")); err != nil {
			t.Fatal(err)
		}
	}
	// No Close: the process "dies" here.
	e2, stores := open(t, dir, Options{})
	defer e2.Close()
	if got := stores[0].Reg(types.WriterReg).W; got != pair(20, "v") {
		t.Errorf("recovered W = %v, want %v", got, pair(20, "v"))
	}
}

// TestTornTailTruncated damages the newest generation's tail the way a
// crash mid-write(2) would, and verifies replay keeps every intact record
// and drops the torn one.
func TestTornTailTruncated(t *testing.T) {
	for _, damage := range []struct {
		name string
		op   func(data []byte) []byte
	}{
		{"truncated-frame", func(d []byte) []byte { return d[:len(d)-3] }},
		{"flipped-crc", func(d []byte) []byte { d[len(d)-1] ^= 0xff; return d }},
		{"garbage-tail", func(d []byte) []byte { return append(d, 0xde, 0xad) }},
	} {
		t.Run(damage.name, func(t *testing.T) {
			dir := t.TempDir()
			e, _ := open(t, dir, Options{Mode: FsyncOff})
			for ts := int64(1); ts <= 8; ts++ {
				if err := e.Append(writeReq(0, ts, "v")); err != nil {
					t.Fatal(err)
				}
			}
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			path := newestWAL(t, dir)
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage.op(data), 0o644); err != nil {
				t.Fatal(err)
			}
			e2, stores := open(t, dir, Options{})
			defer e2.Close()
			got := stores[0].Reg(types.WriterReg).W
			switch damage.name {
			case "garbage-tail":
				if got != pair(8, "v") {
					t.Errorf("W = %v, want all 8 records", got)
				}
			default:
				if got != pair(7, "v") {
					t.Errorf("W = %v, want the 7 intact records", got)
				}
			}
		})
	}
}

// TestTornTailTruncatedOnDisk pins the follow-up restart: tolerating a
// torn tail must also repair the file on disk, because after the next
// lifetime appends a newer generation, the torn one is no longer newest
// and un-truncated damage would read as fatal corruption — one crash plus
// two restarts must not brick the daemon.
func TestTornTailTruncatedOnDisk(t *testing.T) {
	dir := t.TempDir()
	e, _ := open(t, dir, Options{Mode: FsyncOff})
	for ts := int64(1); ts <= 5; ts++ {
		if err := e.Append(writeReq(0, ts, "v")); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	path := newestWAL(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	// Lifetime 2 tolerates the tear and writes a newer generation.
	e2, stores := open(t, dir, Options{Mode: FsyncOff})
	if got := stores[0].Reg(types.WriterReg).W; got != pair(4, "v") {
		t.Fatalf("lifetime 2: W = %v, want the 4 intact records", got)
	}
	if err := e2.Append(writeReq(0, 9, "newer-gen")); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	// Lifetime 3: the once-torn file is no longer the newest generation;
	// it must replay cleanly because lifetime 2 truncated it.
	e3, rec := open(t, dir, Options{Mode: FsyncOff})
	defer e3.Close()
	if got := rec[0].Reg(types.WriterReg).W; got != pair(9, "newer-gen") {
		t.Fatalf("lifetime 3: W = %v, want both generations replayed", got)
	}
}

// TestAppendLatchesAfterWriteFailure: once a WAL write fails, a partial
// frame may sit mid-file; further appends must refuse rather than land
// acked records after the damage (replay would silently drop them).
func TestAppendLatchesAfterWriteFailure(t *testing.T) {
	e, _ := open(t, t.TempDir(), Options{Mode: FsyncOff})
	defer e.Close()
	if err := e.Append(writeReq(0, 1, "v")); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.f.Close() // simulate the disk failing out from under the engine
	e.mu.Unlock()
	if err := e.Append(writeReq(0, 2, "v")); err == nil {
		t.Fatal("append to failed file succeeded")
	}
	err := e.Append(writeReq(0, 3, "v"))
	if err == nil {
		t.Fatal("append after failure succeeded")
	}
	if !strings.Contains(err.Error(), "latched") {
		t.Errorf("failure not latched: %v", err)
	}
}

// TestCorruptOlderGenerationRefused: damage anywhere but the newest
// generation means unreachable acknowledged records; recovery must refuse
// rather than silently regress.
func TestCorruptOlderGenerationRefused(t *testing.T) {
	dir := t.TempDir()
	e, _ := open(t, dir, Options{Mode: FsyncOff})
	for ts := int64(1); ts <= 4; ts++ {
		if err := e.Append(writeReq(0, ts, "v")); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	older := newestWAL(t, dir)
	// A second lifetime writes a newer generation.
	e2, _ := open(t, dir, Options{Mode: FsyncOff})
	if err := e2.Append(writeReq(0, 5, "v")); err != nil {
		t.Fatal(err)
	}
	e2.Close()
	data, err := os.ReadFile(older)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(older, data, 0o644); err != nil {
		t.Fatal(err)
	}
	e3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e3.Close()
	if _, err := e3.Recover(); err == nil {
		t.Fatal("recovery accepted a corrupt older generation")
	}
}

func TestCompactionPrunesAndRecovers(t *testing.T) {
	dir := t.TempDir()
	e, stores := open(t, dir, Options{Mode: FsyncOff})
	for ts := int64(1); ts <= 6; ts++ {
		req := writeReq(2, ts, fmt.Sprintf("v%d", ts))
		if err := e.Append(req); err != nil {
			t.Fatal(err)
		}
		if stores[2] == nil {
			stores[2] = server.NewStore()
		}
		stores[2].Handle(req.From, req.Msg)
	}
	// Compaction cycle: rotate, snapshot the (quiesced) state, commit under
	// the rotated generation.
	gen, err := e.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	snap, err := EncodeStores(stores)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Commit(gen, snap); err != nil {
		t.Fatal(err)
	}
	// Records after the cycle land in the new generation and survive too.
	if err := e.Append(writeReq(2, 7, "v7")); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	// The sealed pre-compaction generation must be pruned.
	walPaths, _ := filepath.Glob(filepath.Join(dir, "wal-*"+walSuffix))
	if len(walPaths) != 1 {
		t.Errorf("wal files after compaction = %v, want just the live generation", walPaths)
	}
	e2, rec := open(t, dir, Options{})
	defer e2.Close()
	if got := rec[2].Reg(types.WriterReg).W; got != pair(7, "v7") {
		t.Errorf("post-compaction recovery W = %v, want (7,v7)", got)
	}
}

// TestCrashMidCompaction covers the two crash windows of a compaction
// cycle: after Rotate but before Commit (both generations replay), and a
// torn snapshot temp file (ignored; the WAL generations still replay).
func TestCrashMidCompaction(t *testing.T) {
	t.Run("after-rotate-before-commit", func(t *testing.T) {
		dir := t.TempDir()
		e, _ := open(t, dir, Options{Mode: FsyncOff})
		if err := e.Append(writeReq(0, 1, "old-gen")); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Rotate(); err != nil {
			t.Fatal(err)
		}
		if err := e.Append(writeReq(0, 2, "new-gen")); err != nil {
			t.Fatal(err)
		}
		// Crash before Commit: no snapshot written, both generations remain.
		e2, stores := open(t, dir, Options{})
		defer e2.Close()
		if got := stores[0].Reg(types.WriterReg).W; got != pair(2, "new-gen") {
			t.Errorf("W = %v, want both generations replayed in order", got)
		}
	})
	t.Run("torn-snapshot-tmp", func(t *testing.T) {
		dir := t.TempDir()
		e, _ := open(t, dir, Options{Mode: FsyncOff})
		if err := e.Append(writeReq(0, 1, "v")); err != nil {
			t.Fatal(err)
		}
		e.Close()
		tmp := snapPath(dir, 99) + tmpSuffix
		if err := os.WriteFile(tmp, []byte("half-written snapsh"), 0o644); err != nil {
			t.Fatal(err)
		}
		e2, stores := open(t, dir, Options{})
		defer e2.Close()
		if got := stores[0].Reg(types.WriterReg).W; got != pair(1, "v") {
			t.Errorf("W = %v after tmp-file cleanup", got)
		}
		if _, err := os.Stat(tmp); !os.IsNotExist(err) {
			t.Error("crashed snapshot tmp file not cleaned up")
		}
	})
	t.Run("corrupt-snapshot-refused", func(t *testing.T) {
		dir := t.TempDir()
		e, stores := open(t, dir, Options{Mode: FsyncOff})
		req := writeReq(0, 1, "v")
		if err := e.Append(req); err != nil {
			t.Fatal(err)
		}
		stores[0] = server.NewStore()
		stores[0].Handle(req.From, req.Msg)
		gen, err := e.Rotate()
		if err != nil {
			t.Fatal(err)
		}
		snap, _ := EncodeStores(stores)
		if err := e.Commit(gen, snap); err != nil {
			t.Fatal(err)
		}
		if err := e.Append(writeReq(0, 2, "w")); err != nil {
			t.Fatal(err)
		}
		e.Close()
		// Rot the committed snapshot: the WAL generations it covered are
		// pruned, so booting from the surviving suffix would silently
		// regress acknowledged state. Open must refuse (the operator
		// reconstitutes from a live quorum instead).
		snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*"+snapSuffix))
		if len(snaps) != 1 {
			t.Fatalf("snapshots = %v", snaps)
		}
		data, _ := os.ReadFile(snaps[0])
		data[0] ^= 0xff
		os.WriteFile(snaps[0], data, 0o644)
		if _, err := Open(dir, Options{}); err == nil {
			t.Fatal("Open accepted a data dir whose every snapshot is corrupt")
		}
	})
}

// TestGroupCommitConcurrentAppends hammers FsyncAlways from many
// goroutines (run with -race): every acknowledged append must replay, and
// the group-commit leader handoff must not lose or duplicate records.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	e, _ := open(t, dir, Options{Mode: FsyncAlways})
	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= perG; i++ {
				if err := e.Append(writeReq(g, int64(i), fmt.Sprintf("g%d-%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2, stores := open(t, dir, Options{})
	defer e2.Close()
	if e2.Records() != goroutines*perG {
		t.Errorf("replayed %d records, want %d", e2.Records(), goroutines*perG)
	}
	for g := 0; g < goroutines; g++ {
		if got := stores[g].Reg(types.WriterReg).W; got != pair(perG, fmt.Sprintf("g%d-%d", g, perG)) {
			t.Errorf("instance %d: W = %v", g, got)
		}
	}
}

func TestEncodeStoresRoundTrip(t *testing.T) {
	stores := map[int]*server.Store{}
	for reg := 0; reg < 4; reg++ {
		st := server.NewStore()
		st.Handle(types.Writer, types.Message{Kind: types.MsgWrite, Pair: pair(int64(reg+1), "x")})
		stores[reg] = st
	}
	b, err := EncodeStores(stores)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]*server.Store{}
	if err := decodeStores(b, got); err != nil {
		t.Fatal(err)
	}
	for reg, st := range stores {
		if got[reg] == nil || got[reg].Reg(types.WriterReg).W != st.Reg(types.WriterReg).W {
			t.Errorf("instance %d mismatch", reg)
		}
	}
	if b2, _ := EncodeStores(stores); string(b) != string(b2) {
		t.Error("EncodeStores not deterministic")
	}
	empty, err := EncodeStores(nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := decodeStores(empty, map[int]*server.Store{}); err != nil {
		t.Fatal(err)
	}
	for _, junk := range [][]byte{nil, {0x7f}, {storesVersion, 5}, append(append([]byte(nil), b...), 1)} {
		if err := decodeStores(junk, map[int]*server.Store{}); err == nil {
			t.Errorf("junk payload %v accepted", junk)
		}
	}
}

func TestAppendBeforeRecoverRefused(t *testing.T) {
	e, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if err := e.Append(writeReq(0, 1, "v")); err == nil {
		t.Fatal("Append before Recover accepted")
	}
	if _, err := e.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Recover(); err == nil {
		t.Fatal("second Recover accepted")
	}
}
