package persist

import (
	"encoding/binary"
	"hash/crc32"
)

// WAL record framing. Each record is one frame:
//
//	uvarint payload length | payload | 4-byte little-endian CRC32 (IEEE) of payload
//
// The payload bytes of consecutive frames in one WAL file form a single gob
// stream of wire.Request envelopes (one Encode per frame), so the per-record
// overhead is the frame header plus gob's incremental message cost — the
// type descriptors are transmitted once per file, not once per record.
//
// Framing exists for crash tolerance, not for decoding: a torn tail (the
// crash interrupted a write mid-frame) is detected by an unreadable length,
// a length overrunning the file, or a CRC mismatch, and replay stops at the
// last intact frame. Every frame is written with a single write(2), so a
// torn frame can only be the final one of a file.

// maxFrame bounds a single record's payload (a mutating request envelope).
// Anything larger is a corrupt length field, not a real record: the bound
// lets parseFrames reject forged lengths without touching the payload.
const maxFrame = 64 << 20

// appendFrame appends one framed record to dst.
func appendFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
}

// parseFrames walks the framed records in data, returning the concatenated
// payload stream (the file's gob stream), the file offset at which each
// frame ends, and the offset at which parsing stopped — len(data) when
// every byte framed cleanly, the start of the first damaged frame otherwise
// (a torn tail, or corruption). The per-frame end offsets let replay
// truncate a tolerated tear back to the last intact record boundary.
func parseFrames(data []byte) (stream []byte, ends []int, valid int) {
	stream = make([]byte, 0, len(data))
	for valid < len(data) {
		rest := data[valid:]
		size, w := binary.Uvarint(rest)
		if w <= 0 || size > maxFrame || uint64(len(rest)-w) < size+4 {
			return stream, ends, valid
		}
		payload := rest[w : w+int(size)]
		crc := binary.LittleEndian.Uint32(rest[w+int(size):])
		if crc32.ChecksumIEEE(payload) != crc {
			return stream, ends, valid
		}
		stream = append(stream, payload...)
		valid += w + int(size) + 4
		ends = append(ends, valid)
	}
	return stream, ends, valid
}
