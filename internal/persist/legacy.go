package persist

import (
	"bytes"
	"encoding/gob"

	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Legacy WAL decoding. PR 3-era WAL generations gob-encoded wire.Request
// envelopes whose types.Pair carried a scalar int64 timestamp; the
// multi-writer refactor changed Pair.TS to the (Seq, WriterID) struct, which
// gob refuses to decode a scalar into. The mirror types below reproduce the
// old shape field-for-field — gob matches struct fields by name, not by type
// name, so a legacy stream decodes into them unchanged — and convert to the
// current vocabulary with WriterID 0, the identity every pre-multi-writer
// timestamp implicitly had. This mirrors the legacy shard-table codec path
// of internal/shard: new software keeps replaying old data directories.
type legacyPair struct {
	TS  int64
	Val types.Value
}

func (p legacyPair) pair() types.Pair {
	return types.Pair{TS: types.At(p.TS), Val: p.Val}
}

type legacySubMsg struct {
	Reg types.RegID
	Msg legacyMessage
}

type legacyMessage struct {
	Kind    types.MsgKind
	Pair    legacyPair
	PW      legacyPair
	W       legacyPair
	Token   types.Token
	TokenPW types.Token
	Seq     int
	Sub     []legacySubMsg
}

func (m legacyMessage) message() types.Message {
	out := types.Message{
		Kind:    m.Kind,
		Pair:    m.Pair.pair(),
		PW:      m.PW.pair(),
		W:       m.W.pair(),
		Token:   m.Token,
		TokenPW: m.TokenPW,
		Seq:     m.Seq,
	}
	if m.Sub != nil {
		out.Sub = make([]types.SubMsg, len(m.Sub))
		for i, sub := range m.Sub {
			out.Sub[i] = types.SubMsg{Reg: sub.Reg, Msg: sub.Msg.message()}
		}
	}
	return out
}

type legacyRequest struct {
	From types.ProcID
	Reg  int
	Msg  legacyMessage
}

func (r legacyRequest) request() wire.Request {
	return wire.Request{From: r.From, Reg: r.Reg, Msg: r.Msg.message()}
}

// isLegacyStream probes whether a WAL payload stream is a PR 3-era gob
// stream: the current gob WAL decoder rejects its very first record (every
// logged record is a mutating request carrying a non-zero scalar timestamp,
// so the type mismatch always surfaces immediately), while the legacy
// mirror decodes it. A stream that fails both probes is corruption, handled
// by the caller's usual tear semantics. (The LIVE wire format moved on to a
// binary codec; the WAL deliberately stays on gob so every existing data
// directory remains current — see wire.GobEncoder.)
func isLegacyStream(stream []byte) bool {
	if _, err := wire.NewGobDecoder(bytes.NewReader(stream)).DecodeRequest(); err == nil {
		return false
	}
	var lr legacyRequest
	return gob.NewDecoder(bytes.NewReader(stream)).Decode(&lr) == nil
}

// legacyDecoder walks a legacy stream, yielding converted requests.
type legacyDecoder struct {
	dec *gob.Decoder
}

func newLegacyDecoder(stream []byte) *legacyDecoder {
	return &legacyDecoder{dec: gob.NewDecoder(bytes.NewReader(stream))}
}

func (d *legacyDecoder) DecodeRequest() (wire.Request, error) {
	var lr legacyRequest
	if err := d.dec.Decode(&lr); err != nil {
		return wire.Request{}, err
	}
	return lr.request(), nil
}
