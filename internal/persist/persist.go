// Package persist is the durability engine of a storage daemon: a
// write-ahead log plus snapshot/compaction machinery that makes every
// register instance a storage object hosts survive a crash or restart.
//
// The paper's resilience guarantee (wait-free atomicity over S = 3t+1
// objects, t Byzantine) silently assumes object state survives between
// rounds. Without durability, an honest daemon restart is indistinguishable
// from a Byzantine amnesia fault and permanently burns the fault budget;
// with it, a restarted daemon resumes exactly where it crashed and is merely
// slow — which asynchrony already accounts for.
//
// # On-disk layout
//
// A data directory holds numbered generations:
//
//	wal-<gen>.log    framed records (see wal.go), one gob stream per file
//	snap-<gen>.snap  state snapshot + CRC32 trailer, covering every
//	                 generation before <gen>
//
// Every Open starts a fresh WAL generation (a gob stream cannot be extended
// across process lifetimes), so recovery loads the newest intact snapshot
// and replays all WAL generations at or after it, in order. Compaction
// (Rotate + Commit) writes a new snapshot with an atomic rename and then
// prunes every older generation; a crash at any point between those steps
// recovers cleanly because the old snapshot and WAL files are only deleted
// after the new snapshot is durably in place.
//
// # Durability modes
//
// Every mode writes each record to the operating system before Append
// returns, so a killed *process* never loses an acknowledged write. The
// modes differ in when fsync makes records survive a killed *machine*:
// FsyncAlways group-commits (concurrent appends amortize one fsync, every
// append waits for it — the storeShard group-commit pattern applied to
// fsync), FsyncBatch syncs in the background every BatchInterval (bounded
// loss window), FsyncOff leaves flushing to the OS entirely.
package persist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"robustatomic/internal/obs"
	"robustatomic/internal/server"
	"robustatomic/internal/types"
	"robustatomic/internal/wire"
)

// Durability observability: append and fsync latency distributions (µs,
// recorded unconditionally — both are I/O-bound, so the two time.Now calls
// vanish in the noise), plus volume counters. Engines are per-daemon but
// the metrics aggregate: a storaged process hosts one engine, and
// multi-engine test processes just sum.
var (
	mWALAppends     = obs.Default.Counter("persist_wal_appends_total")
	mWALBytes       = obs.Default.Counter("persist_wal_bytes_total")
	mWALAppendLat   = obs.Default.Hist("persist_wal_append_us")
	mWALFsyncs      = obs.Default.Counter("persist_fsyncs_total")
	mWALFsyncLat    = obs.Default.Hist("persist_fsync_us")
	mWALCompactions = obs.Default.Counter("persist_compactions_total")
	mEngines        = obs.Default.Counter("persist_engines_opened_total")
)

// FsyncMode selects when appended records are fsynced. The zero value is
// FsyncBatch, the production default.
type FsyncMode int

// Fsync modes.
const (
	// FsyncBatch writes each record to the OS synchronously and fsyncs in
	// the background every BatchInterval: a machine crash can lose at most
	// the last interval's acknowledgements, a process crash loses nothing.
	FsyncBatch FsyncMode = iota
	// FsyncAlways fsyncs before Append returns. Concurrent appends share
	// one fsync (group commit), so the cost amortizes under load.
	FsyncAlways
	// FsyncOff never fsyncs on the append path (only on rotation and
	// close). Survives process crashes, not machine crashes.
	FsyncOff
)

// String implements fmt.Stringer.
func (m FsyncMode) String() string {
	switch m {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	default:
		return "fsync(" + strconv.Itoa(int(m)) + ")"
	}
}

// ParseFsyncMode parses the -fsync flag vocabulary: always | batch | off.
func ParseFsyncMode(s string) (FsyncMode, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch", "":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	default:
		return 0, fmt.Errorf("persist: unknown fsync mode %q (want always | batch | off)", s)
	}
}

// Options configures an Engine.
type Options struct {
	// Mode is the fsync policy. Default FsyncBatch.
	Mode FsyncMode
	// BatchInterval is the background fsync period of FsyncBatch (and the
	// bound on its loss window under a machine crash). Default 2ms.
	BatchInterval time.Duration
}

// walFile locates one recovered WAL generation.
type walFile struct {
	gen  uint64
	path string
}

// syncBatch is one group-commit fsync: every Append whose record it covers
// blocks on done; exactly one of them (or the previous leader, via lead)
// performs the fsync.
type syncBatch struct {
	done chan struct{}
	lead chan struct{} // capacity 1: handoff token making its receiver the syncer
	err  error
}

func newSyncBatch() *syncBatch {
	return &syncBatch{done: make(chan struct{}), lead: make(chan struct{}, 1)}
}

// Engine is the durability engine for one storage object's data directory.
// Append is safe for concurrent use. Recover must be called exactly once,
// before the first Append. Rotate and Commit must not race Append — the
// tcpnet server guarantees this by quiescing mutations around compaction.
type Engine struct {
	dir      string
	mode     FsyncMode
	interval time.Duration

	// Recovery inputs, fixed at Open and consumed by Recover.
	baseGen  uint64
	baseSnap []byte // validated snapshot payload; nil when no generation exists
	replays  []walFile

	mu        sync.Mutex
	gen       uint64
	f         *os.File
	buf       bytes.Buffer
	enc       *wire.GobEncoder
	frame     []byte // reusable frame build buffer
	walSize   int64
	records   int64
	recovered bool
	closed    bool
	failed    error      // latched after a WAL write/fsync failure: all appends refuse
	pending   *syncBatch // FsyncAlways: batch collecting appends for the next fsync
	syncing   bool       // FsyncAlways: a group-commit leader is running
	dirty     bool       // FsyncBatch: bytes written since the last background sync

	stopSync chan struct{}
	syncDone chan struct{}
}

const (
	walSuffix  = ".log"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d%s", gen, walSuffix))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016d%s", gen, snapSuffix))
}

// parseGen extracts the generation number from a data-dir file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	g, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return g, err == nil
}

// Open opens (or creates) the data directory, selects the recovery base
// (newest intact snapshot), prunes generations older than it, and starts a
// fresh WAL generation for this process lifetime. Call Recover next.
func Open(dir string, o Options) (*Engine, error) {
	if o.BatchInterval <= 0 {
		o.BatchInterval = 2 * time.Millisecond
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var wals []walFile
	var snapGens []uint64
	for _, ent := range entries {
		name := ent.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(dir, name)) // crashed mid-snapshot: the rename never happened
			continue
		}
		if g, ok := parseGen(name, "wal-", walSuffix); ok {
			wals = append(wals, walFile{gen: g, path: filepath.Join(dir, name)})
		}
		if g, ok := parseGen(name, "snap-", snapSuffix); ok {
			snapGens = append(snapGens, g)
		}
	}
	sort.Slice(wals, func(i, j int) bool { return wals[i].gen < wals[j].gen })
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })

	e := &Engine{
		dir:      dir,
		mode:     o.Mode,
		interval: o.BatchInterval,
		stopSync: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	// The base is the newest snapshot whose CRC validates; older or corrupt
	// snapshots are skipped (their WAL generations are then replayed
	// instead, if still present). If snapshots exist but none validates,
	// the WAL generations they covered are long pruned, so booting from the
	// surviving suffix would silently regress acknowledged state — refuse,
	// and let the operator reconstitute from a live quorum instead.
	for _, g := range snapGens {
		if payload, err := readSnapshotFile(snapPath(dir, g)); err == nil {
			e.baseGen, e.baseSnap = g, payload
			break
		}
	}
	if len(snapGens) > 0 && e.baseSnap == nil {
		return nil, fmt.Errorf("persist: %s: no intact snapshot among %d (reconstitute from a live quorum)", dir, len(snapGens))
	}
	maxGen := e.baseGen
	for _, w := range wals {
		if w.gen > maxGen {
			maxGen = w.gen
		}
		if w.gen < e.baseGen {
			os.Remove(w.path) // superseded by the base snapshot
			continue
		}
		if fi, err := os.Stat(w.path); err == nil && fi.Size() == 0 {
			os.Remove(w.path) // empty generation from an idle restart
			continue
		}
		e.replays = append(e.replays, w)
	}
	e.gen = maxGen + 1
	f, err := os.OpenFile(walPath(dir, e.gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: create wal: %w", err)
	}
	e.f = f
	e.enc = wire.NewGobEncoder(&e.buf)
	if e.mode == FsyncBatch {
		go e.syncLoop()
	} else {
		close(e.syncDone)
	}
	mEngines.Inc()
	return e, nil
}

// Recover loads the base snapshot and replays every surviving WAL
// generation in order, returning the reconstituted register-instance map
// (keyed by wire register instance). A torn tail in the newest generation
// is truncated silently — those records' acknowledgements never left.
// Damage in any older generation is an error: records after the damage are
// unreachable and replaying around them could durably regress acknowledged
// state; the operator should reconstitute the object from a live quorum
// (storctl repair) instead.
func (e *Engine) Recover() (map[int]*server.Store, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.recovered {
		return nil, fmt.Errorf("persist: Recover called twice")
	}
	e.recovered = true
	stores := make(map[int]*server.Store)
	if e.baseSnap != nil {
		if err := decodeStores(e.baseSnap, stores); err != nil {
			return nil, err
		}
		e.baseSnap = nil // one-shot; free the payload
	}
	for i, w := range e.replays {
		last := i == len(e.replays)-1
		n, err := replayWAL(w.path, last, func(req wire.Request) error {
			apply := func(reg int, msg types.Message) {
				st := stores[reg]
				if st == nil {
					st = server.NewStore()
					stores[reg] = st
				}
				st.Handle(req.From, msg)
			}
			if len(req.Subs) > 0 {
				// A batch envelope logs many register instances' mutations as
				// one record; replay each sub against its own instance (the
				// server sanitized instance numbers before appending).
				for _, sub := range req.Subs {
					apply(sub.Reg, sub.Msg)
				}
				return nil
			}
			apply(req.Reg, req.Msg)
			return nil
		})
		if err != nil {
			return nil, err
		}
		e.records += int64(n)
	}
	return stores, nil
}

// replayWAL replays one WAL file. tolerateTear permits a damaged tail (the
// newest generation may have been torn by the crash) — the file is then
// truncated back to its last intact record, so that on the next recovery,
// when this generation is no longer the newest, it replays cleanly instead
// of reading as corruption. In older generations damage is an error.
// Generations written by pre-multi-writer software (scalar gob timestamps)
// are detected by probing the first record and replayed through the legacy
// mirror types — crucially BEFORE tear handling, so an intact legacy
// generation is never mistaken for a torn tail and truncated away.
func replayWAL(path string, tolerateTear bool, apply func(wire.Request) error) (int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("persist: replay: %w", err)
	}
	stream, ends, valid := parseFrames(data)
	if valid != len(data) && !tolerateTear {
		return 0, fmt.Errorf("persist: %s: corrupt record at offset %d (not the newest generation; reconstitute from a live quorum)", path, valid)
	}
	var dec interface {
		DecodeRequest() (wire.Request, error)
	} = wire.NewGobDecoder(bytes.NewReader(stream))
	if len(ends) > 0 && isLegacyStream(stream) {
		dec = newLegacyDecoder(stream)
	}
	applied := 0
	for i := 0; i < len(ends); i++ {
		req, err := dec.DecodeRequest()
		if err != nil {
			if tolerateTear {
				break
			}
			return applied, fmt.Errorf("persist: %s: record %d: %w", path, i, err)
		}
		if err := apply(req); err != nil {
			return applied, err
		}
		applied++
	}
	if tolerateTear && (valid != len(data) || applied < len(ends)) {
		cut := int64(0)
		if applied > 0 {
			cut = int64(ends[applied-1])
		}
		if err := os.Truncate(path, cut); err != nil {
			return applied, fmt.Errorf("persist: %s: truncating torn tail: %w", path, err)
		}
	}
	return applied, nil
}

// Append durably logs one mutating request envelope. It returns once the
// record is on disk per the engine's fsync mode; the caller must not let
// the reply leave before then.
func (e *Engine) Append(req wire.Request) error {
	start := time.Now()
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return fmt.Errorf("persist: engine closed")
	}
	if !e.recovered {
		e.mu.Unlock()
		return fmt.Errorf("persist: Append before Recover")
	}
	if e.failed != nil {
		err := e.failed
		e.mu.Unlock()
		return fmt.Errorf("persist: wal latched after earlier failure: %w", err)
	}
	e.buf.Reset()
	if err := e.enc.Encode(req); err != nil {
		// The encoder's gob stream may now hold a partial message; no
		// further record could be framed coherently after it.
		e.failed = err
		e.mu.Unlock()
		return fmt.Errorf("persist: %w", err)
	}
	e.frame = appendFrame(e.frame[:0], e.buf.Bytes())
	if _, err := e.f.Write(e.frame); err != nil {
		// A partial frame may sit mid-file now. Without latching, later
		// appends would land after the damage and replay would silently
		// drop them at the torn frame — acked records lost, the amnesia
		// fault this engine exists to prevent. Refuse all further appends;
		// the object goes silent, which correct clients tolerate.
		e.failed = err
		e.mu.Unlock()
		return fmt.Errorf("persist: wal write: %w", err)
	}
	e.walSize += int64(len(e.frame))
	e.records++
	mWALAppends.Inc()
	mWALBytes.Add(int64(len(e.frame)))
	switch e.mode {
	case FsyncOff:
		e.mu.Unlock()
		mWALAppendLat.RecordSince(start)
		return nil
	case FsyncBatch:
		e.dirty = true
		e.mu.Unlock()
		mWALAppendLat.RecordSince(start)
		return nil
	}
	// FsyncAlways: group commit. Join (or start) the batch covering this
	// record; one member fsyncs for all of them.
	b := e.pending
	if b == nil {
		b = newSyncBatch()
		e.pending = b
	}
	if e.syncing {
		// A leader is fsyncing an earlier batch. Wait for ours — unless the
		// leader hands off, making us the next leader.
		e.mu.Unlock()
		select {
		case <-b.done:
			return b.err
		case <-b.lead:
			e.mu.Lock()
		}
	}
	e.syncing = true
	e.pending = nil
	f := e.f
	e.mu.Unlock()
	syncStart := time.Now()
	b.err = f.Sync()
	mWALFsyncs.Inc()
	mWALFsyncLat.RecordSince(syncStart)
	close(b.done)
	e.mu.Lock()
	if b.err != nil && e.f == f && !e.closed {
		e.failed = b.err // a disk that cannot fsync must stop acking
	}
	if e.pending != nil {
		e.pending.lead <- struct{}{}
	} else {
		e.syncing = false
	}
	e.mu.Unlock()
	if b.err != nil {
		return fmt.Errorf("persist: wal fsync: %w", b.err)
	}
	mWALAppendLat.RecordSince(start)
	return nil
}

// syncLoop is the FsyncBatch background syncer.
func (e *Engine) syncLoop() {
	defer close(e.syncDone)
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-e.stopSync:
			return
		case <-t.C:
			e.mu.Lock()
			if !e.dirty || e.closed {
				e.mu.Unlock()
				continue
			}
			e.dirty = false
			f := e.f
			e.mu.Unlock()
			syncStart := time.Now()
			err := f.Sync()
			mWALFsyncs.Inc()
			mWALFsyncLat.RecordSince(syncStart)
			if err != nil {
				// A rotation may have closed f concurrently (rotation
				// fsyncs the old file itself, so that loses nothing);
				// only a failure on the still-current file latches.
				e.mu.Lock()
				if e.f == f && !e.closed {
					e.failed = err
				}
				e.mu.Unlock()
			}
		}
	}
}

// WALSize returns the bytes appended to the current WAL generation — the
// compaction trigger input.
func (e *Engine) WALSize() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.walSize
}

// Records returns the total records appended and replayed (instrumentation).
func (e *Engine) Records() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.records
}

// Gen returns the current WAL generation (instrumentation and tests).
func (e *Engine) Gen() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.gen
}

// Rotate begins a compaction cycle: it seals the current WAL generation and
// starts a new one, so that a snapshot taken now (with mutations quiesced)
// covers every sealed generation. It returns the new generation number,
// which the caller must pass to Commit along with that snapshot — pairing
// them explicitly, so that if another cycle rotates in between, each
// snapshot is still installed under the generation whose sealed prefix it
// actually covers (a stale snapshot under a newer number would prune WAL
// records it lacks). Callers must quiesce Append around Rotate and the
// state capture.
func (e *Engine) Rotate() (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return 0, fmt.Errorf("persist: engine closed")
	}
	if err := e.f.Sync(); err != nil {
		return 0, fmt.Errorf("persist: rotate sync: %w", err)
	}
	if err := e.f.Close(); err != nil {
		return 0, fmt.Errorf("persist: rotate close: %w", err)
	}
	e.gen++
	f, err := os.OpenFile(walPath(e.dir, e.gen), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("persist: rotate: %w", err)
	}
	e.f = f
	e.walSize = 0
	e.dirty = false
	e.buf.Reset()
	e.enc = wire.NewGobEncoder(&e.buf) // each generation is its own gob stream
	return e.gen, nil
}

// Commit durably installs snap as the snapshot covering every generation
// before gen (the state captured at the matching Rotate), then prunes the
// generations it supersedes. The write is crash-atomic: the snapshot is
// fsynced under a temporary name and renamed into place, and old
// generations are deleted only afterwards, so a crash anywhere in between
// recovers from either the old base or the new one.
func (e *Engine) Commit(gen uint64, snap []byte) error {
	if err := writeSnapshotFile(snapPath(e.dir, gen), snap); err != nil {
		return err
	}
	mWALCompactions.Inc()
	// Prune: everything before gen is now covered by the snapshot.
	entries, err := os.ReadDir(e.dir)
	if err != nil {
		return nil // pruning is best-effort; recovery tolerates leftovers
	}
	for _, ent := range entries {
		name := ent.Name()
		if g, ok := parseGen(name, "wal-", walSuffix); ok && g < gen {
			os.Remove(filepath.Join(e.dir, name))
		}
		if g, ok := parseGen(name, "snap-", snapSuffix); ok && g < gen {
			os.Remove(filepath.Join(e.dir, name))
		}
	}
	return nil
}

// Close seals the WAL (final fsync) and releases the engine.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.stopSync)
	err := e.f.Sync()
	if cerr := e.f.Close(); err == nil {
		err = cerr
	}
	e.mu.Unlock()
	<-e.syncDone
	if err != nil {
		return fmt.Errorf("persist: close: %w", err)
	}
	return nil
}

// Snapshot files carry the payload followed by a 4-byte little-endian CRC32
// trailer; a file failing the check (torn by a crash racing the rename, or
// rotted) is skipped in favor of an older generation.

// writeSnapshotFile writes payload+CRC to path via fsynced temp file and
// atomic rename, fsyncing the directory so the rename itself is durable.
func writeSnapshotFile(path string, payload []byte) error {
	tmp := path + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	_, werr := f.Write(payload)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if werr == nil {
		_, werr = f.Write(crc[:])
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: snapshot: %w", err)
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

// readSnapshotFile reads and CRC-validates a snapshot file, returning the
// payload.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: snapshot: %w", err)
	}
	if len(data) < 4 {
		return nil, fmt.Errorf("persist: snapshot %s: truncated", path)
	}
	payload, crc := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, fmt.Errorf("persist: snapshot %s: CRC mismatch", path)
	}
	return payload, nil
}

// storesVersion heads the multi-register snapshot payload: a uvarint
// register-instance count, then per instance a uvarint instance number and
// a length-prefixed server.Store snapshot.
const storesVersion = 0x01

// EncodeStores captures every hosted register instance into one snapshot
// payload. Callers must quiesce mutations across the call (the tcpnet
// server holds its apply lock); the capture itself is cheap — the store
// snapshot codec neither sorts nor reflects.
func EncodeStores(stores map[int]*server.Store) ([]byte, error) {
	regs := make([]int, 0, len(stores))
	for reg := range stores {
		regs = append(regs, reg)
	}
	sort.Ints(regs)
	b := []byte{storesVersion}
	b = binary.AppendUvarint(b, uint64(len(regs)))
	for _, reg := range regs {
		snap, err := stores[reg].Snapshot()
		if err != nil {
			return nil, fmt.Errorf("persist: instance %d: %w", reg, err)
		}
		b = binary.AppendUvarint(b, uint64(reg))
		b = binary.AppendUvarint(b, uint64(len(snap)))
		b = append(b, snap...)
	}
	return b, nil
}

// decodeStores rebuilds register instances from a snapshot payload into
// dst.
func decodeStores(payload []byte, dst map[int]*server.Store) error {
	if len(payload) == 0 || payload[0] != storesVersion {
		return fmt.Errorf("persist: snapshot payload: bad header")
	}
	rest := payload[1:]
	n, w := binary.Uvarint(rest)
	if w <= 0 {
		return fmt.Errorf("persist: snapshot payload: truncated count")
	}
	rest = rest[w:]
	for i := uint64(0); i < n; i++ {
		reg, w := binary.Uvarint(rest)
		if w <= 0 {
			return fmt.Errorf("persist: snapshot payload: truncated instance %d", i)
		}
		rest = rest[w:]
		size, w := binary.Uvarint(rest)
		if w <= 0 || uint64(len(rest)-w) < size {
			return fmt.Errorf("persist: snapshot payload: truncated instance %d body", i)
		}
		st := server.NewStore()
		if err := st.Restore(rest[w : w+int(size)]); err != nil {
			return fmt.Errorf("persist: instance %d: %w", reg, err)
		}
		dst[int(reg)] = st
		rest = rest[w+int(size):]
	}
	if len(rest) != 0 {
		return fmt.Errorf("persist: snapshot payload: %d trailing bytes", len(rest))
	}
	return nil
}
