// Package hdr is a high-dynamic-range histogram for latency recording: a
// log-linear bucket layout (powers of two split into 32 linear sub-buckets)
// gives ≲3% relative error across the full int64 range with a fixed ~15KB
// footprint and allocation-free Record, the storbench load generator's
// requirement for recording inside the hot path. Values are unitless; the
// caller picks the resolution (storbench records microseconds).
package hdr

import (
	"fmt"
	"math/bits"
)

// subBits sets the linear sub-bucket count per power-of-two range: 2^5 = 32
// sub-buckets bound the relative error of a recorded value by 1/32.
const (
	subBits = 5
	subMask = (1 << subBits) - 1
	buckets = 64 - subBits
)

// Histogram records non-negative int64 values. The zero value is ready to
// use. Not safe for concurrent use: record into per-worker histograms and
// Merge them.
type Histogram struct {
	counts [buckets][1 << subBits]int64
	count  int64
	sum    int64
	max    int64
}

// index maps v to its (bucket, sub-bucket) cell.
func index(v int64) (int, int) {
	if v < 1<<subBits {
		return 0, int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // position of the leading bit, ≥ subBits
	return h - subBits + 1, int((v >> (h - subBits)) & subMask)
}

// cellTop returns the largest value mapping to cell (b, s) — the value a
// quantile in that cell reports, so quantiles never under-estimate.
func cellTop(b, s int) int64 {
	if b == 0 {
		return int64(s)
	}
	// Bucket b ≥ 1 holds values whose leading bit sits at subBits+b-1;
	// cell s spans [((1<<subBits)+s) << (b-1), ((1<<subBits)+s+1) << (b-1)).
	return (int64(1<<subBits)+int64(s)+1)<<(b-1) - 1
}

// Record adds one observation. Negative values clamp to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	b, s := index(v)
	h.counts[b][s]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.count }

// Max returns the largest recorded observation (0 when empty).
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound for the q-quantile (0 < q ≤ 1) within the
// histogram's resolution: the top of the cell holding the ⌈q·count⌉-th
// smallest observation. Empty histograms report 0.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(q*float64(h.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var seen int64
	for b := 0; b < buckets; b++ {
		for s := 0; s <= subMask; s++ {
			seen += h.counts[b][s]
			if seen >= rank {
				top := cellTop(b, s)
				if top > h.max {
					top = h.max // the cell's top may overshoot the true max
				}
				return top
			}
		}
	}
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for b := 0; b < buckets; b++ {
		for s := 0; s <= subMask; s++ {
			h.counts[b][s] += other.counts[b][s]
		}
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String summarizes the distribution (debugging aid).
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1f p50=%d p99=%d p99.9=%d max=%d",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.Quantile(0.999), h.max)
}
