package hdr

import (
	"math/rand"
	"sort"
	"testing"
)

func TestQuantileBoundsError(t *testing.T) {
	// Against an exact sorted copy, every reported quantile must be ≥ the
	// true order statistic and within the layout's ~3.2% relative error.
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	vals := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := int64(rng.ExpFloat64() * 50_000) // latency-shaped: long tail
		vals = append(vals, v)
		h.Record(v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		rank := int(q*float64(len(vals)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		exact := vals[rank-1]
		got := h.Quantile(q)
		if got < exact {
			t.Fatalf("q=%v: reported %d < exact %d (quantiles must not under-estimate)", q, got, exact)
		}
		if lim := exact + exact/16 + 1; got > lim {
			t.Fatalf("q=%v: reported %d exceeds error bound %d (exact %d)", q, got, lim, exact)
		}
	}
}

func TestRecordExtremes(t *testing.T) {
	var h Histogram
	h.Record(0)
	h.Record(-5) // clamps to 0
	h.Record(1)
	h.Record(1 << 62)
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Max() != 1<<62 {
		t.Fatalf("max = %d", h.Max())
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("p25 = %d, want 0", got)
	}
	if got := h.Quantile(1.0); got != 1<<62 {
		t.Fatalf("p100 = %d, want max (capped to recorded max)", got)
	}
}

func TestMergeMatchesCombinedRecording(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var a, b, whole Histogram
	for i := 0; i < 5000; i++ {
		v := int64(rng.Intn(1_000_000))
		whole.Record(v)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() || a.Max() != whole.Max() || a.Mean() != whole.Mean() {
		t.Fatalf("merge: count/max/mean diverge: %v vs %v", a.String(), whole.String())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if a.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("merge: q=%v: %d vs %d", q, a.Quantile(q), whole.Quantile(q))
		}
	}
}

func TestEmptyHistogram(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: %s", h.String())
	}
}

func TestIndexRoundTrip(t *testing.T) {
	// Every value lands in a cell whose top is ≥ it and within the error
	// bound — the invariant Quantile's accuracy rests on.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		b, s := index(v)
		top := cellTop(b, s)
		if top < v {
			t.Fatalf("v=%d: cellTop(%d,%d)=%d < v", v, b, s, top)
		}
		if v >= 64 && top > v+v/16 {
			t.Fatalf("v=%d: cellTop=%d exceeds 1/16 relative error", v, top)
		}
	}
}

// TestMergeMismatchedRanges merges histograms whose recorded magnitudes
// live in disjoint ranges — sub-microsecond ticks, millisecond-scale
// latencies, and multi-second outliers — the snapshot-time situation when
// obs merges stripes that saw very different traffic. The merged quantiles,
// count, sum and max must match recording everything into one histogram.
func TestMergeMismatchedRanges(t *testing.T) {
	var small, mid, huge, whole Histogram
	for i := int64(0); i < 1000; i++ {
		small.Record(i % 10) // 0..9
		whole.Record(i % 10)
		mid.Record(1_000 + i) // ~1e3
		whole.Record(1_000 + i)
		huge.Record(5_000_000_000 + i*1_000_000) // ~5e9, beyond int32
		whole.Record(5_000_000_000 + i*1_000_000)
	}
	var m Histogram
	m.Merge(&small)
	m.Merge(&mid)
	m.Merge(&huge)
	if m.Count() != whole.Count() || m.Max() != whole.Max() || m.Mean() != whole.Mean() {
		t.Fatalf("mismatched-range merge diverges: %v vs %v", m.String(), whole.String())
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		if m.Quantile(q) != whole.Quantile(q) {
			t.Fatalf("q=%v: merged %d vs whole %d", q, m.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty histogram is the identity.
	var empty Histogram
	before := m.String()
	m.Merge(&empty)
	if m.String() != before {
		t.Fatalf("empty merge changed state: %s vs %s", m.String(), before)
	}
}
