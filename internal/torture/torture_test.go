package torture

import (
	"flag"
	"testing"
)

// Replay and scale flags. Pass them after -args:
//
//	go test ./internal/torture/ -run TestTortureFull -v -args -torture.full
//	go test ./internal/torture/ -run TestTortureReplay -v -args -torture.seed=7 -torture.scenario=byzantine-mix -torture.mode=tcp
var (
	tortureSeed      = flag.Int64("torture.seed", 0, "replay: run TestTortureReplay with this schedule seed")
	tortureScenario  = flag.String("torture.scenario", string(PartitionHeal), "replay: schedule family")
	tortureMode      = flag.String("torture.mode", string(ModeLive), "replay: cluster mode (live | tcp)")
	tortureReadHeavy = flag.Bool("torture.readheavy", false, "replay: read-heavy workload (ReadFrac 0.85)")
	tortureFull      = flag.Bool("torture.full", false, "run the full-scale torture suite (make torture)")
)

// shortCfg is the CI-sized workload: all three scenarios in seconds, small
// enough for -race.
func shortCfg(sc Scenario, mode Mode, seed int64) Config {
	return Config{
		Seed: seed, Scenario: sc, Mode: mode,
		Clients: 32, OpsPerClient: 6, Keys: 16,
	}
}

// fullCfg is the acceptance-scale workload: ≥200 simulated clients per
// schedule (make torture / the nightly integration run).
func fullCfg(sc Scenario, mode Mode, seed int64) Config {
	return Config{
		Seed: seed, Scenario: sc, Mode: mode,
		Clients: 224, OpsPerClient: 8, Keys: 48,
	}
}

// runTorture runs one schedule and fails with the seed and a copy-pasteable
// replay command reproducing the identical event schedule.
func runTorture(t *testing.T, cfg Config, full bool) Result {
	t.Helper()
	cfg.Dir = t.TempDir()
	cfg.Logf = t.Logf
	res, err := Run(cfg)
	if err != nil {
		extraFlags := ""
		if cfg.ReadHeavy {
			extraFlags += " -torture.readheavy"
		}
		if full {
			extraFlags += " -torture.full"
		}
		t.Fatalf("torture failed (seed %d):\n%v\n\nreplay: go test ./internal/torture/ -run TestTortureReplay -v -args -torture.seed=%d -torture.scenario=%s -torture.mode=%s%s",
			cfg.Seed, err, cfg.Seed, cfg.Scenario, cfg.Mode, extraFlags)
	}
	if res.Checked == 0 {
		t.Fatalf("torture run checked 0 operations — the harness recorded nothing")
	}
	return res
}

// TestTortureShort drives every scenario family at CI scale with fixed
// seeds: partition+heal and the Byzantine mix against the in-process
// runtime, kill+restart+wipe+repair against real TCP daemons with persist
// data dirs (make torture-short).
func TestTortureShort(t *testing.T) {
	if testing.Short() {
		t.Skip("torture needs real rounds; skipped in -short")
	}
	for _, tc := range []struct {
		sc        Scenario
		mode      Mode
		seed      int64
		readHeavy bool
	}{
		{PartitionHeal, ModeLive, 101, false},
		{ByzantineMix, ModeLive, 103, false},
		// Read-heavy Byzantine mix: fault windows land mostly on Gets, so
		// the adaptive read path (elision, coalescing, table cache) soaks
		// the chaos instead of the committer.
		{ByzantineMix, ModeLive, 104, true},
		{KillRestartRepair, ModeTCP, 102, false},
		// Membership churn: vacancy (leave → join) and atomic live replace,
		// the per-key histories spanning every epoch change.
		{JoinLeave, ModeTCP, 105, false},
		{ReplaceLive, ModeTCP, 106, false},
	} {
		name := string(tc.sc) + "/" + string(tc.mode)
		if tc.readHeavy {
			name += "/readheavy"
		}
		t.Run(name, func(t *testing.T) {
			cfg := shortCfg(tc.sc, tc.mode, tc.seed)
			cfg.ReadHeavy = tc.readHeavy
			res := runTorture(t, cfg, false)
			t.Logf("%d ops (%d failed mid-fault), %d keys, %d checker-accepted",
				res.Ops, res.Failed, res.Keys, res.Checked)
		})
	}
}

// TestTortureFull is the acceptance run (make torture): three distinct
// seeded schedules, each over ≥200 simulated clients, every per-key history
// decided by the multi-writer atomicity checker. Gated behind -torture.full
// so the default `go test ./...` stays fast.
func TestTortureFull(t *testing.T) {
	if !*tortureFull {
		t.Skip("full-scale torture runs under -args -torture.full (make torture)")
	}
	for _, tc := range []struct {
		sc        Scenario
		mode      Mode
		seed      int64
		readHeavy bool
	}{
		{PartitionHeal, ModeLive, 201, false},
		{KillRestartRepair, ModeTCP, 202, false},
		{ByzantineMix, ModeTCP, 203, false},
		{ByzantineMix, ModeLive, 204, true},
		{JoinLeave, ModeTCP, 205, false},
		{ReplaceLive, ModeTCP, 206, false},
	} {
		name := string(tc.sc) + "/" + string(tc.mode)
		if tc.readHeavy {
			name += "/readheavy"
		}
		t.Run(name, func(t *testing.T) {
			cfg := fullCfg(tc.sc, tc.mode, tc.seed)
			cfg.ReadHeavy = tc.readHeavy
			res := runTorture(t, cfg, true)
			t.Logf("%d ops (%d failed mid-fault), %d keys, %d checker-accepted",
				res.Ops, res.Failed, res.Keys, res.Checked)
		})
	}
}

// TestTortureReplay re-runs one seeded schedule from the command line — the
// command every torture failure prints. It first proves the plan is the
// identical event schedule (byte-for-byte), then runs it.
func TestTortureReplay(t *testing.T) {
	if *tortureSeed == 0 {
		t.Skip("replay runs under -args -torture.seed=<seed> (printed by torture failures)")
	}
	mk := shortCfg
	if *tortureFull {
		mk = fullCfg
	}
	cfg := mk(Scenario(*tortureScenario), Mode(*tortureMode), *tortureSeed)
	cfg.ReadHeavy = *tortureReadHeavy
	a, err := Plan(cfg.Scenario, cfg.Mode, cfg.Seed, cfg.Clients*cfg.OpsPerClient, 3+1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Plan(cfg.Scenario, cfg.Mode, cfg.Seed, cfg.Clients*cfg.OpsPerClient, 3+1)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("replay planned a different schedule:\n%s\nvs\n%s", a, b)
	}
	t.Logf("replaying:\n%s", a)
	res := runTorture(t, cfg, *tortureFull)
	t.Logf("%d ops (%d failed mid-fault), %d keys, %d checker-accepted",
		res.Ops, res.Failed, res.Keys, res.Checked)
}
