// Package torture is the seeded, deterministic cluster torture harness: a
// schedule engine drives a real cluster — the in-process live runtime or
// real TCP daemons with persist data dirs — through composable fault events
// (partition/heal, message drop/duplication/delay, kill + restart from
// preserved data dirs, wipe + quorum Repair, and the Byzantine behaviors)
// while hundreds of simulated clients issue Put/Get/Delete against the
// Store. Every per-key history is decided by checker.CheckAtomicMW and
// quiescent-state agreement is verified at the end.
//
// Determinism model: the fault schedule is a pure function of (scenario,
// mode, seed, workload size) — Plan derives every event and its trigger
// point from a seeded rand stream. Events fire when the global count of
// completed client operations crosses the event's At threshold, not at wall
// times, so a replayed seed fires the identical event sequence at the same
// logical progress points even though goroutine interleaving varies run to
// run. Failures print the seed and a replay command reproducing the exact
// schedule (see Replay in the test harness).
package torture

import (
	"fmt"
	"math/rand"
)

// Mode selects the runtime under torture.
type Mode string

// Modes.
const (
	// ModeLive tortures the in-process runtime (goroutines + channels, seeded
	// message delays). Kill/restart map to partition/heal — a live object has
	// no disk, so cutting it off and reconnecting it IS a crash with
	// preserved state.
	ModeLive Mode = "live"
	// ModeTCP tortures real TCP daemons with persist data dirs: kill closes
	// the daemon and restart recovers it from its preserved WAL; wipe deletes
	// the data dir and Repair reconstitutes the blank replacement from the
	// live quorum.
	ModeTCP Mode = "tcp"
)

// Scenario names one seeded schedule family.
type Scenario string

// Scenarios.
const (
	// PartitionHeal cycles network faults: partition windows, netem
	// drop/dup(/delay) windows, always healed before the next window opens.
	PartitionHeal Scenario = "partition-heal"
	// KillRestartRepair cycles crash faults: kill + restart windows
	// (preserved data dirs), ending in a wipe + quorum-Repair window.
	KillRestartRepair Scenario = "kill-restart-repair"
	// ByzantineMix cycles the Byzantine behaviors (flaky, stale, equivocate,
	// batch-chaos) one object at a time, with a netem window mixed in.
	ByzantineMix Scenario = "byzantine-mix"
	// JoinLeave cycles membership vacancies: a daemon Leaves the active
	// configuration (and dies), the vacancy spending the fault budget, then a
	// fresh daemon on a NEW port Joins the vacant slot with migrated state.
	// Needs real daemons (tcp only): live objects have no membership plane.
	JoinLeave Scenario = "join-leave"
	// ReplaceLive cycles atomic slot replacement: each window Moves one slot
	// to a fresh daemon on a new port — state migrated first, the old daemon
	// killed after — with no vacancy at any point. Tcp only.
	ReplaceLive Scenario = "replace-live"
)

// Scenarios lists every schedule family, in the order `make torture` runs
// them.
func Scenarios() []Scenario {
	return []Scenario{PartitionHeal, KillRestartRepair, ByzantineMix, JoinLeave, ReplaceLive}
}

// ScenarioModes lists the runtimes scenario sc can torture: reconfiguration
// scenarios need real TCP daemons (the membership plane lives on the wire
// protocol's epoch stamps), everything else runs on both.
func ScenarioModes(sc Scenario) []Mode {
	switch sc {
	case JoinLeave, ReplaceLive:
		return []Mode{ModeTCP}
	default:
		return []Mode{ModeLive, ModeTCP}
	}
}

// EventKind is one fault-event verb.
type EventKind int

// Event kinds.
const (
	EvPartition  EventKind = iota + 1 // cut object Sid off the network
	EvHeal                            // reconnect object Sid
	EvKill                            // stop object Sid's daemon (data dir preserved)
	EvRestart                         // restart object Sid's daemon from its data dir
	EvWipe                            // kill Sid, delete its data dir, restart blank
	EvRepair                          // quorum-repair the blank object Sid
	EvChaos                           // install Byzantine behavior Behavior on Sid
	EvClearChaos                      // restore Sid to honest
	EvNetem                           // inject Drop/Dup/DelayUS link faults on Sid
	EvClearNetem                      // clear Sid's link faults
	EvLeave                           // vacate slot Sid from the configuration, kill its daemon
	EvJoin                            // join a fresh daemon (new port, blank dir) into the vacancy
	EvReplace                         // atomically Move slot Sid to a fresh daemon on a new port
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvPartition:
		return "partition"
	case EvHeal:
		return "heal"
	case EvKill:
		return "kill"
	case EvRestart:
		return "restart"
	case EvWipe:
		return "wipe"
	case EvRepair:
		return "repair"
	case EvChaos:
		return "chaos"
	case EvClearChaos:
		return "clear-chaos"
	case EvNetem:
		return "netem"
	case EvClearNetem:
		return "clear-netem"
	case EvLeave:
		return "leave"
	case EvJoin:
		return "join"
	case EvReplace:
		return "replace"
	}
	return fmt.Sprintf("event(%d)", int(k))
}

// Event is one scheduled fault. It fires when the global completed-operation
// counter reaches At.
type Event struct {
	At       int
	Kind     EventKind
	Sid      int
	Behavior string  // EvChaos: flaky | stale | equivocate | batch-chaos
	Drop     float64 // EvNetem: request drop probability
	Dup      float64 // EvNetem: reply duplication probability
	DelayUS  int     // EvNetem: reply delay in microseconds (tcp only)
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case EvChaos:
		return fmt.Sprintf("@%d %s s%d %s", e.At, e.Kind, e.Sid, e.Behavior)
	case EvNetem:
		return fmt.Sprintf("@%d %s s%d drop=%.2f dup=%.2f delay=%dus", e.At, e.Kind, e.Sid, e.Drop, e.Dup, e.DelayUS)
	default:
		return fmt.Sprintf("@%d %s s%d", e.At, e.Kind, e.Sid)
	}
}

// Schedule is a fully planned fault schedule: the deterministic product of
// its inputs, ordered by At.
type Schedule struct {
	Seed     int64
	Scenario Scenario
	Mode     Mode
	Events   []Event
}

// String renders the schedule one event per line (failure diagnostics and
// the determinism tests compare this form).
func (s Schedule) String() string {
	out := fmt.Sprintf("schedule seed=%d scenario=%s mode=%s", s.Seed, s.Scenario, s.Mode)
	for _, ev := range s.Events {
		out += "\n  " + ev.String()
	}
	return out
}

// Plan derives the fault schedule for one run: totalOps is the number of
// client operations the workload will attempt (events trigger at completed-
// operation counts strictly below it), s the object count. Plan is pure —
// identical inputs yield the identical schedule, which is the harness's
// replay guarantee.
func Plan(scenario Scenario, mode Mode, seed int64, totalOps, s int) (Schedule, error) {
	if totalOps < 10 {
		return Schedule{}, fmt.Errorf("torture: workload of %d ops is too small to schedule against", totalOps)
	}
	if s < 4 {
		return Schedule{}, fmt.Errorf("torture: need at least 4 objects, got %d", s)
	}
	modeOK := false
	for _, m := range ScenarioModes(scenario) {
		modeOK = modeOK || m == mode
	}
	if !modeOK {
		return Schedule{}, fmt.Errorf("torture: scenario %q does not run on mode %q", scenario, mode)
	}
	rng := rand.New(rand.NewSource(seed))
	sched := Schedule{Seed: seed, Scenario: scenario, Mode: mode}

	// Fault windows partition the run: at most one faulty object at a time
	// (the t=1 budget the workload keeps certifying against), every window
	// closed before the next opens, and the last window closed before the
	// final tenth of the workload so the run quiesces under its own schedule.
	span := totalOps * 9 / 10
	windows := span / 60
	if windows < 2 {
		windows = 2
	}
	if windows > 8 {
		windows = 8
	}
	wlen := span / windows
	jitter := func(lo, hi int) int { // uniform in [lo, hi)
		if hi <= lo+1 {
			return lo
		}
		return lo + rng.Intn(hi-lo)
	}
	for w := 0; w < windows; w++ {
		w0, w1 := w*wlen, (w+1)*wlen
		start := jitter(w0+1, w0+wlen/3)
		end := jitter(w0+2*wlen/3, w1)
		sid := 1 + rng.Intn(s)
		switch scenario {
		case PartitionHeal:
			if rng.Intn(3) == 0 {
				ev := Event{At: start, Kind: EvNetem, Sid: sid, Drop: 0.2 + 0.3*rng.Float64(), Dup: 0.2 * rng.Float64()}
				if mode == ModeTCP && rng.Intn(2) == 0 {
					ev.DelayUS = 500 + rng.Intn(2000)
				}
				sched.Events = append(sched.Events, ev, Event{At: end, Kind: EvClearNetem, Sid: sid})
			} else {
				sched.Events = append(sched.Events,
					Event{At: start, Kind: EvPartition, Sid: sid},
					Event{At: end, Kind: EvHeal, Sid: sid})
			}
		case KillRestartRepair:
			if w == windows-1 && mode == ModeTCP {
				// Machine replacement: the data dir is lost, a blank daemon
				// comes up on the old address, and the quorum repairs it.
				sched.Events = append(sched.Events,
					Event{At: start, Kind: EvWipe, Sid: sid},
					Event{At: end, Kind: EvRepair, Sid: sid})
			} else {
				sched.Events = append(sched.Events,
					Event{At: start, Kind: EvKill, Sid: sid},
					Event{At: end, Kind: EvRestart, Sid: sid})
			}
		case ByzantineMix:
			behaviors := []string{"flaky", "stale", "equivocate"}
			if mode == ModeTCP {
				behaviors = append(behaviors, "batch-chaos")
			}
			if rng.Intn(4) == 0 {
				sched.Events = append(sched.Events,
					Event{At: start, Kind: EvNetem, Sid: sid, Drop: 0.3, Dup: 0.2},
					Event{At: end, Kind: EvClearNetem, Sid: sid})
			} else {
				sched.Events = append(sched.Events,
					Event{At: start, Kind: EvChaos, Sid: sid, Behavior: behaviors[rng.Intn(len(behaviors))]},
					Event{At: end, Kind: EvClearChaos, Sid: sid})
			}
		case JoinLeave:
			// The vacancy IS the window's fault: between leave and join the
			// cluster runs S-1 live slots, exactly the budget's one crashed
			// object; the join closes it with a migrated fresh daemon.
			sched.Events = append(sched.Events,
				Event{At: start, Kind: EvLeave, Sid: sid},
				Event{At: end, Kind: EvJoin, Sid: sid})
		case ReplaceLive:
			// The atomic replace never opens a vacancy, so the event is a
			// point, not a window: the slot is always populated, and the
			// fault budget stays free for the handoff itself.
			sched.Events = append(sched.Events,
				Event{At: jitter(start, end), Kind: EvReplace, Sid: sid})
		default:
			return Schedule{}, fmt.Errorf("torture: unknown scenario %q", scenario)
		}
	}
	return sched, nil
}
