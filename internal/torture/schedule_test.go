package torture

import (
	"testing"
)

// TestPlanDeterministic: the schedule is a pure function of its inputs —
// the replay guarantee the harness's failure messages promise.
func TestPlanDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, mode := range ScenarioModes(sc) {
			a, err := Plan(sc, mode, 42, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Plan(sc, mode, 42, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("%s/%s: same seed planned different schedules:\n%s\nvs\n%s", sc, mode, a, b)
			}
			c, err := Plan(sc, mode, 43, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() == c.String() {
				t.Fatalf("%s/%s: seeds 42 and 43 planned the identical schedule", sc, mode)
			}
		}
	}
}

// TestPlanShape: events are ordered, stay inside the first 90% of the
// workload, target valid objects, and never fault two objects at once (the
// t=1 budget every scenario certifies against).
func TestPlanShape(t *testing.T) {
	opens := map[EventKind]bool{EvPartition: true, EvKill: true, EvWipe: true, EvChaos: true, EvNetem: true, EvLeave: true}
	// An atomic replace is a point event: the slot stays populated, so it
	// neither opens nor closes a fault window.
	neutral := map[EventKind]bool{EvReplace: true}
	for _, sc := range Scenarios() {
		for _, mode := range ScenarioModes(sc) {
			for seed := int64(1); seed <= 20; seed++ {
				sched, err := Plan(sc, mode, seed, 600, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(sched.Events) == 0 {
					t.Fatalf("%s/%s seed %d: empty schedule", sc, mode, seed)
				}
				faulted := 0
				for i, ev := range sched.Events {
					if i > 0 && ev.At < sched.Events[i-1].At {
						t.Fatalf("%s/%s seed %d: events out of order:\n%s", sc, mode, seed, sched)
					}
					if ev.At < 1 || ev.At >= 540 {
						t.Fatalf("%s/%s seed %d: event outside the fault span: %s", sc, mode, seed, ev)
					}
					if ev.Sid < 1 || ev.Sid > 4 {
						t.Fatalf("%s/%s seed %d: bad object id: %s", sc, mode, seed, ev)
					}
					switch {
					case opens[ev.Kind]:
						faulted++
					case neutral[ev.Kind]:
					default:
						faulted--
					}
					if faulted > 1 {
						t.Fatalf("%s/%s seed %d: two objects faulted at once:\n%s", sc, mode, seed, sched)
					}
				}
				if faulted != 0 {
					t.Fatalf("%s/%s seed %d: schedule ends with an open fault window:\n%s", sc, mode, seed, sched)
				}
			}
		}
	}
}

// TestPlanRepairOnlyOnTCP: the wipe + quorum-repair window needs real data
// dirs, so it must appear on tcp schedules (where the last window is the
// machine replacement) and never on live ones.
func TestPlanRepairOnlyOnTCP(t *testing.T) {
	count := func(sched Schedule, k EventKind) int {
		n := 0
		for _, ev := range sched.Events {
			if ev.Kind == k {
				n++
			}
		}
		return n
	}
	tcp, err := Plan(KillRestartRepair, ModeTCP, 7, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if count(tcp, EvWipe) != 1 || count(tcp, EvRepair) != 1 {
		t.Fatalf("tcp kill-restart-repair schedule lacks the wipe+repair window:\n%s", tcp)
	}
	lv, err := Plan(KillRestartRepair, ModeLive, 7, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if count(lv, EvWipe) != 0 || count(lv, EvRepair) != 0 {
		t.Fatalf("live schedule contains wipe/repair (no data dirs to wipe):\n%s", lv)
	}
}

// TestPlanReconfigTCPOnly: the membership scenarios need real daemons (the
// epoch plane lives on the wire protocol), so planning them against the
// in-process runtime must refuse, and tcp schedules must actually carry the
// reconfiguration events.
func TestPlanReconfigTCPOnly(t *testing.T) {
	for _, sc := range []Scenario{JoinLeave, ReplaceLive} {
		if _, err := Plan(sc, ModeLive, 7, 600, 4); err == nil {
			t.Errorf("%s planned against the live runtime, want refusal", sc)
		}
		sched, err := Plan(sc, ModeTCP, 7, 600, 4)
		if err != nil {
			t.Fatal(err)
		}
		got := map[EventKind]int{}
		for _, ev := range sched.Events {
			got[ev.Kind]++
		}
		switch sc {
		case JoinLeave:
			if got[EvLeave] == 0 || got[EvLeave] != got[EvJoin] {
				t.Errorf("%s schedule has %d leaves, %d joins; want paired ≥1:\n%s", sc, got[EvLeave], got[EvJoin], sched)
			}
		case ReplaceLive:
			if got[EvReplace] < 2 {
				t.Errorf("%s schedule has %d replaces, want ≥2:\n%s", sc, got[EvReplace], sched)
			}
		}
	}
}
