package torture

import (
	"testing"
)

// TestPlanDeterministic: the schedule is a pure function of its inputs —
// the replay guarantee the harness's failure messages promise.
func TestPlanDeterministic(t *testing.T) {
	for _, sc := range Scenarios() {
		for _, mode := range []Mode{ModeLive, ModeTCP} {
			a, err := Plan(sc, mode, 42, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Plan(sc, mode, 42, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() != b.String() {
				t.Fatalf("%s/%s: same seed planned different schedules:\n%s\nvs\n%s", sc, mode, a, b)
			}
			c, err := Plan(sc, mode, 43, 1000, 4)
			if err != nil {
				t.Fatal(err)
			}
			if a.String() == c.String() {
				t.Fatalf("%s/%s: seeds 42 and 43 planned the identical schedule", sc, mode)
			}
		}
	}
}

// TestPlanShape: events are ordered, stay inside the first 90% of the
// workload, target valid objects, and never fault two objects at once (the
// t=1 budget every scenario certifies against).
func TestPlanShape(t *testing.T) {
	opens := map[EventKind]bool{EvPartition: true, EvKill: true, EvWipe: true, EvChaos: true, EvNetem: true}
	for _, sc := range Scenarios() {
		for _, mode := range []Mode{ModeLive, ModeTCP} {
			for seed := int64(1); seed <= 20; seed++ {
				sched, err := Plan(sc, mode, seed, 600, 4)
				if err != nil {
					t.Fatal(err)
				}
				if len(sched.Events) == 0 {
					t.Fatalf("%s/%s seed %d: empty schedule", sc, mode, seed)
				}
				faulted := 0
				for i, ev := range sched.Events {
					if i > 0 && ev.At < sched.Events[i-1].At {
						t.Fatalf("%s/%s seed %d: events out of order:\n%s", sc, mode, seed, sched)
					}
					if ev.At < 1 || ev.At >= 540 {
						t.Fatalf("%s/%s seed %d: event outside the fault span: %s", sc, mode, seed, ev)
					}
					if ev.Sid < 1 || ev.Sid > 4 {
						t.Fatalf("%s/%s seed %d: bad object id: %s", sc, mode, seed, ev)
					}
					if opens[ev.Kind] {
						faulted++
					} else {
						faulted--
					}
					if faulted > 1 {
						t.Fatalf("%s/%s seed %d: two objects faulted at once:\n%s", sc, mode, seed, sched)
					}
				}
				if faulted != 0 {
					t.Fatalf("%s/%s seed %d: schedule ends with an open fault window:\n%s", sc, mode, seed, sched)
				}
			}
		}
	}
}

// TestPlanRepairOnlyOnTCP: the wipe + quorum-repair window needs real data
// dirs, so it must appear on tcp schedules (where the last window is the
// machine replacement) and never on live ones.
func TestPlanRepairOnlyOnTCP(t *testing.T) {
	count := func(sched Schedule, k EventKind) int {
		n := 0
		for _, ev := range sched.Events {
			if ev.Kind == k {
				n++
			}
		}
		return n
	}
	tcp, err := Plan(KillRestartRepair, ModeTCP, 7, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if count(tcp, EvWipe) != 1 || count(tcp, EvRepair) != 1 {
		t.Fatalf("tcp kill-restart-repair schedule lacks the wipe+repair window:\n%s", tcp)
	}
	lv, err := Plan(KillRestartRepair, ModeLive, 7, 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	if count(lv, EvWipe) != 0 || count(lv, EvRepair) != 0 {
		t.Fatalf("live schedule contains wipe/repair (no data dirs to wipe):\n%s", lv)
	}
}
