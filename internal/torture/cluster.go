package torture

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"time"

	"robustatomic"
	"robustatomic/internal/obs"
	"robustatomic/internal/persist"
	"robustatomic/internal/server"
	"robustatomic/internal/tcpnet"
)

// controller applies schedule events to a running cluster. The harness
// serializes apply calls (events fire under its mutex); quiesce restores
// every object to healthy-and-connected and waits until the cluster is
// reachable again, so the quiescent agreement reads run fault-free.
type controller interface {
	apply(ev Event) error
	quiesce() error
	close()
}

// liveCtl tortures the in-process runtime through the root cluster handle's
// fault passthroughs. Kill/restart map to partition/heal: a live object has
// no disk, so cutting it off and later reconnecting it is exactly a crash
// that preserved its state.
type liveCtl struct {
	root *robustatomic.Cluster
	s    int
}

func (c *liveCtl) apply(ev Event) error {
	switch ev.Kind {
	case EvPartition, EvKill:
		return c.root.Partition(ev.Sid)
	case EvHeal, EvRestart:
		err := c.root.Heal(ev.Sid)
		c.drainWindow()
		return err
	case EvChaos:
		return c.root.InjectFault(ev.Sid, ev.Behavior)
	case EvClearChaos:
		err := c.root.ClearFault(ev.Sid)
		c.drainWindow()
		return err
	case EvNetem:
		return c.root.SetNetem(ev.Sid, ev.Drop, ev.Dup)
	case EvClearNetem:
		err := c.root.SetNetem(ev.Sid, 0, 0)
		c.drainWindow()
		return err
	}
	return fmt.Errorf("torture: event %v unsupported on the live runtime", ev)
}

// drainWindow holds the event lock briefly after a fault window closes.
// Window boundaries are op counts, and under hundreds of concurrent
// clients the gap to the next window can be shorter in wall-clock than a
// round's in-flight message skew (injected delay + queueing): a round that
// already lost its request to the object of the CLOSING window (dropped,
// never retransmitted — down to 3 of 4 possible replies) would then lose a
// still-in-flight request to the NEXT window's object too, and sit below
// quorum until the round timeout. The pause lets in-flight messages land
// while the cluster is whole, so no round ever spans two windows.
func (c *liveCtl) drainWindow() { time.Sleep(20 * time.Millisecond) }

func (c *liveCtl) quiesce() error {
	for sid := 1; sid <= c.s; sid++ {
		if err := c.root.Heal(sid); err != nil {
			return err
		}
		if err := c.root.ClearFault(sid); err != nil {
			return err
		}
		if err := c.root.SetNetem(sid, 0, 0); err != nil {
			return err
		}
	}
	return nil
}

func (c *liveCtl) close() {} // the harness closes the root cluster

// tcpCtl tortures real TCP daemons. Kill closes a daemon (its data dir
// survives), restart recovers it from the preserved WAL on the same address,
// wipe deletes the data dir before the blank restart, and repair
// reconstitutes the blank object from the live quorum via the process-0
// client cluster.
type tcpCtl struct {
	mu      sync.Mutex
	seed    int64
	root    string   // base directory for data dirs
	addrs   []string // index sid-1; tracks the ACTIVE configuration's addresses
	dirs    []string
	gen     []int            // per-slot replacement generation (names fresh data dirs)
	servers []*tcpnet.Server // index sid-1; nil while killed
	repairC *robustatomic.Cluster
	shards  int
}

// chaosRng derives the seeded stream for one object's Byzantine/link
// behavior, so a replayed seed replays the same drop pattern.
func (c *tcpCtl) chaosRng(sid int, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(c.seed*1000003 + int64(sid)*8191 + salt))
}

func (c *tcpCtl) apply(ev Event) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.servers[ev.Sid-1]
	switch ev.Kind {
	case EvPartition:
		s.SetPartitioned(true)
	case EvHeal:
		s.SetPartitioned(false)
		// Same window-straddle hazard as liveCtl.drainWindow: let rounds
		// that lost a message to this window finish before the next opens.
		time.Sleep(20 * time.Millisecond)
	case EvKill:
		s.Close()
		c.servers[ev.Sid-1] = nil
	case EvRestart:
		if err := c.restart(ev.Sid); err != nil {
			return err
		}
		// Client muxes marked the killed daemon unreachable and redial only
		// after DialBackoff. The schedule's windows are op counts, not wall
		// times, and a fast workload can open the next fault window while
		// this backoff still holds — two objects effectively down, beyond
		// the t=1 budget the schedule promises. Hold the event lock for a
		// backoff window so the cluster is whole before the next fault.
		time.Sleep(tcpnet.DialBackoff + 200*time.Millisecond)
	case EvWipe:
		s.Close()
		c.servers[ev.Sid-1] = nil
		if err := os.RemoveAll(c.dirs[ev.Sid-1]); err != nil {
			return fmt.Errorf("torture: wipe s%d: %w", ev.Sid, err)
		}
		return c.restart(ev.Sid)
	case EvRepair:
		// Repair's quorum read runs over the repair cluster's shared mux,
		// which redials a restarted daemon only after DialBackoff — and a
		// fast workload can reach this event while earlier restarts are
		// still inside that backoff. Retry past a full backoff window
		// rather than failing the schedule on a read the mux will satisfy
		// moments later.
		var err error
		deadline := time.Now().Add(3*tcpnet.DialBackoff + time.Second)
		for {
			if _, err = c.repairC.Repair(ev.Sid, c.shards); err == nil {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("torture: repair s%d: %w", ev.Sid, err)
			}
			time.Sleep(250 * time.Millisecond)
		}
	case EvChaos:
		switch ev.Behavior {
		case "flaky":
			s.SetBehavior(server.Flaky{Rand: c.chaosRng(ev.Sid, 1), DropProb: 0.5})
		case "stale":
			s.SetBehavior(&server.Stale{})
		case "equivocate":
			s.SetBehavior(server.Equivocate{Readers: &server.Stale{}})
		case "batch-chaos":
			s.SetBatchChaos(c.chaosRng(ev.Sid, 2), 0.3, true)
		default:
			return fmt.Errorf("torture: unknown behavior %q", ev.Behavior)
		}
	case EvClearChaos:
		s.SetBehavior(nil)
		s.SetBatchChaos(nil, 0, false)
		time.Sleep(20 * time.Millisecond)
	case EvNetem:
		s.SetNetem(c.chaosRng(ev.Sid, 3), ev.Drop, ev.Dup, time.Duration(ev.DelayUS)*time.Microsecond)
	case EvClearNetem:
		s.SetNetem(nil, 0, 0, 0)
		time.Sleep(20 * time.Millisecond)
	case EvLeave:
		// Vacate the slot first — the config write still counts the leaving
		// daemon toward its quorum — then kill it for real. Clients at the
		// old epoch chase the wrong-epoch redirect to the vacancy config.
		if _, err := c.repairC.Leave(ev.Sid); err != nil {
			return fmt.Errorf("torture: leave s%d: %w", ev.Sid, err)
		}
		s.Close()
		c.servers[ev.Sid-1] = nil
		time.Sleep(20 * time.Millisecond)
	case EvJoin:
		// A genuinely fresh machine: blank data dir, new port. Join migrates
		// every register instance to it before the config admits it.
		srv, err := c.freshDaemon(ev.Sid)
		if err != nil {
			return err
		}
		// The migration's quorum reads ride the repair cluster's mux, which
		// may still hold dial backoff from this window's kill; let it heal.
		time.Sleep(tcpnet.DialBackoff + 200*time.Millisecond)
		if _, _, err := c.repairC.Join(srv.Addr(), c.shards); err != nil {
			srv.Close()
			return fmt.Errorf("torture: join %s: %w", srv.Addr(), err)
		}
		c.servers[ev.Sid-1] = srv
		c.addrs[ev.Sid-1] = srv.Addr()
	case EvReplace:
		// Live replace: fresh daemon up, state migrated, the single-slot Move
		// decided, and only then the departing daemon killed — the slot is
		// populated throughout and the fault budget never pays for it.
		srv, err := c.freshDaemon(ev.Sid)
		if err != nil {
			return err
		}
		if _, _, err := c.repairC.Move(ev.Sid, srv.Addr(), c.shards); err != nil {
			srv.Close()
			return fmt.Errorf("torture: replace s%d with %s: %w", ev.Sid, srv.Addr(), err)
		}
		s.Close()
		c.servers[ev.Sid-1] = srv
		c.addrs[ev.Sid-1] = srv.Addr()
		time.Sleep(20 * time.Millisecond)
	default:
		return fmt.Errorf("torture: event %v unsupported on tcp daemons", ev)
	}
	return nil
}

// freshDaemon starts slot sid's next-generation daemon: a new port and a
// blank data dir (the old daemon may still be running and holding the
// previous one). Callers hold c.mu and install the server on success.
func (c *tcpCtl) freshDaemon(sid int) (*tcpnet.Server, error) {
	c.gen[sid-1]++
	dir := filepath.Join(c.root, fmt.Sprintf("s%d.g%d", sid, c.gen[sid-1]))
	srv, err := tcpnet.NewServerWith(sid, "127.0.0.1:0", tcpnet.ServerOptions{
		DataDir: dir,
		Fsync:   persist.FsyncOff,
	})
	if err != nil {
		return nil, fmt.Errorf("torture: fresh daemon for slot %d: %w", sid, err)
	}
	c.dirs[sid-1] = dir
	return srv, nil
}

// restart brings daemon sid back on its original address, recovering
// whatever its data dir holds. The old listener may linger briefly after
// Close, so rebinding retries under a deadline. Callers hold c.mu.
func (c *tcpCtl) restart(sid int) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := tcpnet.NewServerWith(sid, c.addrs[sid-1], tcpnet.ServerOptions{
			DataDir: c.dirs[sid-1],
			Fsync:   persist.FsyncOff,
		})
		if err == nil {
			c.servers[sid-1] = s
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("torture: restart s%d on %s: %w", sid, c.addrs[sid-1], err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func (c *tcpCtl) quiesce() error {
	c.mu.Lock()
	for sid := 1; sid <= len(c.servers); sid++ {
		if c.servers[sid-1] == nil {
			if err := c.restart(sid); err != nil {
				c.mu.Unlock()
				return err
			}
		}
		s := c.servers[sid-1]
		s.SetPartitioned(false)
		s.SetBehavior(nil)
		s.SetBatchChaos(nil, 0, false)
		s.SetNetem(nil, 0, 0, 0)
	}
	c.mu.Unlock()
	// Client muxes to a restarted daemon redial only after DialBackoff;
	// wait it out so the agreement reads run against the full quorum.
	time.Sleep(2 * tcpnet.DialBackoff)
	return nil
}

func (c *tcpCtl) close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.servers {
		if s != nil {
			s.Close()
		}
	}
}

// rig is a running cluster under torture: one client cluster handle per
// logical process plus the fault controller. Every process traces every op
// into the shared tracer, so a run failure dumps the round-level anatomy of
// the ops that died next to the seed-replay command.
type rig struct {
	procs  []*robustatomic.Cluster
	ctrl   controller
	tracer *obs.Tracer
}

func (r *rig) close() {
	r.ctrl.close()
	// Close siblings before the root (procs[0] owns the live runtime).
	for i := len(r.procs) - 1; i >= 0; i-- {
		r.procs[i].Close()
	}
}

// readersPerProc is each logical process's private reader-identity count;
// identity 1 is reserved for Repair's hardcoded reader.
const readersPerProc = 4

// procReaders returns process p's disjoint reader identities.
func procReaders(p int) []int {
	ids := make([]int, readersPerProc)
	for i := range ids {
		ids[i] = 2 + p*readersPerProc + i
	}
	return ids
}

// setup builds the cluster under torture for cfg: mode live starts the
// in-process runtime with seeded message delays and a Sibling second
// process; mode tcp starts S daemons with persist data dirs under dir and
// Connects each process separately.
func setup(cfg Config, dir string) (*rig, error) {
	nProcs := 2
	totalReaders := 1 + nProcs*readersPerProc
	tracer := obs.NewTracer(64, 1)
	opts := func(p int) robustatomic.Options {
		return robustatomic.Options{
			Faults:   cfg.Faults,
			Readers:  totalReaders,
			WriterID: p + 1,
			Seed:     cfg.Seed + int64(p),
			Tracer:   tracer,
		}
	}

	switch cfg.Mode {
	case ModeLive:
		o := opts(0)
		o.MaxDelay = 200 * time.Microsecond // exercise the async delivery path
		root, err := robustatomic.NewCluster(o)
		if err != nil {
			return nil, err
		}
		sib, err := root.Sibling(opts(1))
		if err != nil {
			root.Close()
			return nil, err
		}
		return &rig{
			procs:  []*robustatomic.Cluster{root, sib},
			ctrl:   &liveCtl{root: root, s: root.Objects()},
			tracer: tracer,
		}, nil

	case ModeTCP:
		s := 3*cfg.Faults + 1
		ctl := &tcpCtl{
			seed:    cfg.Seed,
			root:    dir,
			addrs:   make([]string, s),
			dirs:    make([]string, s),
			gen:     make([]int, s),
			servers: make([]*tcpnet.Server, s),
			shards:  cfg.Shards,
		}
		for i := 0; i < s; i++ {
			ctl.dirs[i] = filepath.Join(dir, fmt.Sprintf("s%d", i+1))
			srv, err := tcpnet.NewServerWith(i+1, "127.0.0.1:0", tcpnet.ServerOptions{
				DataDir: ctl.dirs[i],
				Fsync:   persist.FsyncOff,
			})
			if err != nil {
				ctl.close()
				return nil, err
			}
			ctl.servers[i] = srv
			ctl.addrs[i] = srv.Addr()
		}
		procs := make([]*robustatomic.Cluster, nProcs)
		for p := 0; p < nProcs; p++ {
			c, err := robustatomic.Connect(ctl.addrs, opts(p))
			if err != nil {
				for _, pc := range procs {
					if pc != nil {
						pc.Close()
					}
				}
				ctl.close()
				return nil, err
			}
			procs[p] = c
		}
		ctl.repairC = procs[0]
		return &rig{procs: procs, ctrl: ctl, tracer: tracer}, nil
	}
	return nil, fmt.Errorf("torture: unknown mode %q", cfg.Mode)
}
