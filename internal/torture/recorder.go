package torture

import (
	"fmt"
	"sort"
	"sync"

	"robustatomic/internal/checker"
	"robustatomic/internal/types"
)

// ghostBase offsets the writer indices of ghost clients (see abandon) far
// above any real client identity.
const ghostBase = 1 << 20

// recorder captures every client operation across all keys under one global
// logical clock, then projects per-key checker histories. It exists because
// checker.History assigns clocks at Invoke/Respond call time: a failed
// operation must be RE-TAGGED to a fresh client identity after the fact
// (see abandon), which the History API cannot do in place.
type recorder struct {
	mu  sync.Mutex
	seq int64
	ops []recOp
}

type recOp struct {
	key     string
	client  types.ProcID
	kind    checker.OpKind
	arg     types.Value
	ret     types.Value
	invoke  int64
	respond int64 // -1 while pending
}

// invoke records an operation start and returns its id.
func (r *recorder) invoke(key string, client types.ProcID, kind checker.OpKind, arg types.Value) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.ops = append(r.ops, recOp{
		key: key, client: client, kind: kind, arg: arg,
		invoke: r.seq, respond: -1,
	})
	return len(r.ops) - 1
}

// respond completes operation id with its result (returned value for reads).
func (r *recorder) respond(id int, ret types.Value) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.ops[id].respond = r.seq
	r.ops[id].ret = ret
}

// abandon marks a failed operation as pending forever and moves it to its
// own single-op ghost client. The client goroutine continues with its next
// operation; had the failed op stayed on the client's queue, the history
// would violate per-client sequentiality (the checker's queues must be
// sequential threads). Re-tagging is exact, not a weakening: linearizability
// constrains operations only by real-time precedence, and a never-responding
// operation precedes nothing — a singleton queue encodes precisely the
// constraints the op still carries (it may take effect at any point after
// its invocation, or never; the Store's uncommitted-batch re-apply can land
// it arbitrarily late).
func (r *recorder) abandon(id int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops[id].client = types.WriterID(ghostBase + id)
}

// histories projects the record into one checker.History per key, replaying
// invokes and responds in global clock order so the checker sees the true
// real-time precedence.
func (r *recorder) histories() map[string]*checker.History {
	r.mu.Lock()
	ops := make([]recOp, len(r.ops))
	copy(ops, r.ops)
	r.mu.Unlock()

	type event struct {
		seq     int64
		op      int
		respond bool
	}
	events := make([]event, 0, 2*len(ops))
	for i, op := range ops {
		events = append(events, event{seq: op.invoke, op: i})
		if op.respond >= 0 {
			events = append(events, event{seq: op.respond, op: i, respond: true})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].seq < events[j].seq })

	hists := make(map[string]*checker.History)
	ids := make([]int, len(ops))
	for _, ev := range events {
		op := ops[ev.op]
		h := hists[op.key]
		if h == nil {
			h = &checker.History{}
			hists[op.key] = h
		}
		if ev.respond {
			h.Respond(ids[ev.op], op.ret)
		} else {
			ids[ev.op] = h.Invoke(op.client, op.kind, op.arg)
		}
	}
	return hists
}

// checkAll runs the budgeted multi-writer atomicity check on every per-key
// history, returning the first failure (with its key) and counting checked
// operations.
func checkAll(hists map[string]*checker.History, budget checker.Budget) (opsChecked int, err error) {
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys) // deterministic failure order
	for _, k := range keys {
		h := hists[k]
		opsChecked += h.Len()
		if cerr := checker.CheckAtomicMWBudget(h, budget); cerr != nil {
			return opsChecked, fmt.Errorf("key %q: %w\nhistory (%d ops):\n%s", k, cerr, h.Len(), dumpOps(h))
		}
	}
	return opsChecked, nil
}

// dumpOps renders a history for failure output, capped so a torture-scale
// history does not flood the log.
func dumpOps(h *checker.History) string {
	const maxDump = 64
	out := ""
	for i, op := range h.Ops() {
		if i == maxDump {
			out += fmt.Sprintf("  … %d more\n", h.Len()-maxDump)
			break
		}
		out += "  " + op.String() + "\n"
	}
	return out
}
