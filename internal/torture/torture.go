package torture

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"robustatomic"
	"robustatomic/internal/checker"
	"robustatomic/internal/retry"
	"robustatomic/internal/types"
)

// Config parameterizes one torture run. Seed, Scenario and Mode fully
// determine the fault schedule; the workload shape determines its trigger
// points.
type Config struct {
	Seed     int64
	Scenario Scenario
	Mode     Mode
	// Faults is t (the cluster runs S = 3t+1 objects). Default 1.
	Faults int
	// Shards is the Store's register count; it must comfortably exceed Keys
	// (the workload puts every key on its own shard, see pickKeys). Default
	// 4×Keys.
	Shards int
	// Keys is the workload's key-space size. Default 16.
	Keys int
	// Clients is the number of concurrent simulated clients, split across
	// two logical processes (distinct WriterIDs, disjoint readers).
	Clients int
	// OpsPerClient is each client's operation count.
	OpsPerClient int
	// ReadFrac is the probability an operation is a Get; of the rest,
	// DeleteFrac are Deletes and the remainder Puts. Defaults 0.4 and 0.15.
	ReadFrac, DeleteFrac float64
	// ReadHeavy flips the default ReadFrac to 0.85, concentrating the
	// schedule's fault windows on the adaptive read path: write-back
	// elision (and its refusal under partial writes), shard read
	// coalescing under concurrent Gets, and certified-table cache
	// invalidation all get exercised while the faults fire. An explicit
	// ReadFrac overrides it.
	ReadHeavy bool
	// Budget bounds each per-key linearization search. Zero selects the
	// harness default (2M nodes, 30s) rather than an unlimited search.
	Budget checker.Budget
	// Dir is where ModeTCP daemons put their persist data dirs (required
	// for tcp; ignored live).
	Dir string
	// Logf, when set, receives progress lines (schedule, fired events,
	// summary).
	Logf func(format string, args ...any)
}

func (c *Config) defaults() {
	if c.Faults == 0 {
		c.Faults = 1
	}
	if c.Keys == 0 {
		c.Keys = 16
	}
	if c.Shards == 0 {
		c.Shards = 4 * c.Keys
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.4
		if c.ReadHeavy {
			c.ReadFrac = 0.85
		}
	}
	if c.DeleteFrac == 0 {
		c.DeleteFrac = 0.15
	}
	if c.Budget == (checker.Budget{}) {
		c.Budget = checker.Budget{MaxNodes: 2_000_000, Deadline: 30 * time.Second}
	}
}

// Result summarizes a passed torture run.
type Result struct {
	Schedule Schedule
	Ops      int // operations attempted by the workload
	Failed   int // operations that errored mid-fault (recorded as pending)
	Keys     int // distinct keys with non-empty histories
	Checked  int // operations decided by the per-key atomicity checks
}

// pickKeys chooses n workload keys that hash onto n DISTINCT shards.
// One-key-per-shard keeps the cross-process workload inside the Store's
// guarantee envelope: contending writes to the SAME key are atomically
// ordered register writes, but a process's writes to OTHER keys sharing a
// shard can lose a cross-process flush race (shard-granularity LWW — the
// Store documents that cross-process write isolation requires partitioning
// across shards). Single-shard keys make per-key atomicity exactly
// per-register atomicity, which is what the checker decides.
func pickKeys(st *robustatomic.Store, n int) ([]string, error) {
	if st.Shards() < n {
		return nil, fmt.Errorf("torture: %d keys need ≥%d shards, store has %d", n, n, st.Shards())
	}
	keys := make([]string, 0, n)
	used := make(map[int]bool, n)
	for i := 0; len(keys) < n; i++ {
		if i > 256*n {
			return nil, fmt.Errorf("torture: could not place %d keys on distinct shards (got %d of %d)", n, len(keys), st.Shards())
		}
		key := fmt.Sprintf("k%03d", i)
		if sh := st.ShardOf(key); !used[sh] {
			used[sh] = true
			keys = append(keys, key)
		}
	}
	return keys, nil
}

// Run executes one seeded torture schedule against a real cluster and
// decides every per-key history. It returns a non-nil error if any history
// is non-atomic (or undecidable within the budget), if the quiesced
// processes disagree on any key's value, or if the cluster breaks in a way
// the fault schedule does not license. The returned error embeds the seed
// and the full schedule; the test harness prints the replay command.
func Run(cfg Config) (res Result, err error) {
	cfg.defaults()
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	totalOps := cfg.Clients * cfg.OpsPerClient
	sched, err := Plan(cfg.Scenario, cfg.Mode, cfg.Seed, totalOps, 3*cfg.Faults+1)
	if err != nil {
		return Result{}, err
	}
	logf("%s", sched)

	r, err := setup(cfg, cfg.Dir)
	if err != nil {
		return Result{Schedule: sched}, fmt.Errorf("torture: setup: %w", err)
	}
	defer r.close()
	// Dump-on-failure: every op of both processes is traced, so any failed
	// run carries the round-level anatomy of the ops that died (which rounds
	// ran, which objects answered, what each reply bundle carried) next to
	// the schedule the replay command reproduces.
	defer func() {
		if err != nil {
			err = fmt.Errorf("%w\n== failed-op round traces (dump-on-failure)\n%s", err, r.tracer.FormatFailed())
		}
	}()

	stores := make([]*robustatomic.Store, len(r.procs))
	for p, c := range r.procs {
		st, err := c.NewStore(robustatomic.StoreOptions{Shards: cfg.Shards, Readers: procReaders(p)})
		if err != nil {
			return Result{Schedule: sched}, fmt.Errorf("torture: store %d: %w", p, err)
		}
		stores[p] = st
	}
	keys, err := pickKeys(stores[0], cfg.Keys)
	if err != nil {
		return Result{Schedule: sched}, err
	}

	var (
		rec     recorder
		done    atomic.Int64 // completed operation attempts (success or failure)
		failed  atomic.Int64
		aborted atomic.Bool

		evMu   sync.Mutex
		evNext int
		evErr  error
	)
	// fire applies every event whose threshold the global op counter has
	// crossed. The crossing client's goroutine applies them, serialized by
	// evMu; an event that cannot be applied aborts the whole run (the
	// schedule IS the experiment — a half-applied schedule proves nothing).
	fire := func(count int64) {
		evMu.Lock()
		defer evMu.Unlock()
		for evNext < len(sched.Events) && int64(sched.Events[evNext].At) <= count && evErr == nil {
			ev := sched.Events[evNext]
			evNext++
			logf("op %d: firing %s", count, ev)
			if err := r.ctrl.apply(ev); err != nil {
				evErr = err
				aborted.Store(true)
			}
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			proc := ci % len(r.procs)
			st := stores[proc]
			self := types.WriterID(10 + ci)
			rng := rand.New(rand.NewSource(cfg.Seed ^ int64(1+ci)*0x9e3779b9))
			bo := retry.Backoff{Base: time.Millisecond, Cap: 30 * time.Millisecond, Rng: rand.New(rand.NewSource(int64(ci)))}
			for op := 0; op < cfg.OpsPerClient && !aborted.Load(); op++ {
				key := keys[rng.Intn(len(keys))]
				var err error
				switch {
				case rng.Float64() < cfg.ReadFrac:
					id := rec.invoke(key, self, checker.OpRead, "")
					var v string
					if v, err = st.Get(key); err != nil {
						rec.abandon(id)
					} else {
						rec.respond(id, types.Value(v))
					}
				case rng.Float64() < cfg.DeleteFrac:
					id := rec.invoke(key, self, checker.OpWrite, types.Bottom)
					if err = st.Delete(key); err != nil {
						rec.abandon(id)
					} else {
						rec.respond(id, "")
					}
				default:
					// Values are unique per attempt (writer-tagged), never
					// retried, so the checker's distinct-values precondition
					// holds by construction.
					val := types.Value(fmt.Sprintf("c%d-%d", ci, op))
					id := rec.invoke(key, self, checker.OpWrite, val)
					if err = st.Put(key, string(val)); err != nil {
						rec.abandon(id)
					} else {
						rec.respond(id, "")
					}
				}
				if err != nil {
					if n := failed.Add(1); n <= 16 {
						logf("op failure %d (client %d, key %s): %v", n, ci, key, err)
					}
					time.Sleep(bo.Next(err))
				} else {
					bo.Reset()
				}
				fire(done.Add(1))
			}
		}(i)
	}
	wg.Wait()

	if evErr != nil {
		return Result{Schedule: sched}, fmt.Errorf("torture: schedule event failed: %w\n%s", evErr, sched)
	}
	fire(int64(totalOps)) // defensive: nothing may be left pending
	if err := r.ctrl.quiesce(); err != nil {
		return Result{Schedule: sched}, fmt.Errorf("torture: quiesce: %w\n%s", err, sched)
	}

	// Quiescent agreement: with every fault healed, each process reads every
	// key sequentially; the reads join the per-key histories (so atomicity
	// covers them too) and the processes' views must agree exactly.
	final := make([]map[string]string, len(r.procs))
	for p := range r.procs {
		final[p] = make(map[string]string, len(keys))
		self := types.Reader(1000 + p)
		for _, key := range keys {
			id := rec.invoke(key, self, checker.OpRead, "")
			v, err := stores[p].Get(key)
			if err != nil {
				return Result{Schedule: sched}, fmt.Errorf("torture: quiescent read of %q by process %d failed on a healed cluster: %w\n%s", key, p, err, sched)
			}
			rec.respond(id, types.Value(v))
			final[p][key] = v
		}
	}
	for _, key := range keys {
		if final[0][key] != final[1][key] {
			return Result{Schedule: sched}, fmt.Errorf(
				"torture: quiescent disagreement on %q: process 0 reads %q, process 1 reads %q\n%s",
				key, final[0][key], final[1][key], sched)
		}
	}

	hists := rec.histories()
	checked, err := checkAll(hists, cfg.Budget)
	if err != nil {
		return Result{Schedule: sched}, fmt.Errorf("torture: %w\n%s", err, sched)
	}
	res = Result{
		Schedule: sched,
		Ops:      totalOps,
		Failed:   int(failed.Load()),
		Keys:     len(hists),
		Checked:  checked,
	}
	logf("torture pass: %d ops (%d failed mid-fault), %d keys, %d ops checker-accepted",
		res.Ops, res.Failed, res.Keys, res.Checked)
	return res, nil
}
